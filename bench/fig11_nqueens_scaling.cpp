// Figure 11: strong-scaling speedup of 17-Queens on the uGNI-based
// (threshold 7) and MPI-based (threshold 6, its best) CHARM++ (paper §V-C).
#include "bench_util.hpp"
#include "nqueens_bench_util.hpp"

using namespace ugnirt;
using namespace ugnirt::apps::nqueens;

int main() {
  benchtool::NqModels models;
  benchtool::Table table("fig11_nqueens_scaling", "cores");
  table.add_column("uGNI_speedup");
  table.add_column("MPI_speedup");
  table.add_column("uGNI_time_s");
  table.add_column("MPI_time_s");

  const int n = 17;
  auto run = [&](converse::LayerKind layer, int cores, int threshold) {
    converse::MachineOptions o;
    o.pes = cores;
    o.layer = layer;
    NQueensConfig cfg;
    cfg.n = n;
    cfg.threshold = threshold;
    cfg.model = models.get(n, threshold);
    return run_nqueens(o, cfg);
  };

  for (int cores : {32, 64, 128, 256, 512, 1024, 2048, 3840}) {
    NQueensResult ug = run(converse::LayerKind::kUgni, cores,
                           benchtool::nq_threshold(n));
    NQueensResult mp = run(converse::LayerKind::kMpi, cores,
                           benchtool::nq_threshold(n) - 1);
    table.add_row(std::to_string(cores),
                  {ug.speedup, mp.speedup, to_s(ug.elapsed), to_s(mp.elapsed)});
    std::fflush(stdout);
  }
  table.print();
  std::printf("Paper shape: uGNI keeps scaling almost perfectly to 3840\n"
              "cores with threshold 7; MPI stops scaling around 384 cores.\n");
  return 0;
}
