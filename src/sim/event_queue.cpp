#include "sim/event_queue.hpp"

#include <algorithm>
#include <cassert>
#include <cstdlib>
#include <queue>
#include <utility>
#include <vector>

namespace ugnirt::sim {

namespace {

/// Strict (time, seq) order; no two events share a seq, so this is total.
bool earlier(const Event& a, const Event& b) {
  if (a.time != b.time) return a.time < b.time;
  return a.seq < b.seq;
}

// ---- HeapQueue ----------------------------------------------------------

class HeapQueue final : public EventQueue {
 public:
  void push(Event ev) override { queue_.push(std::move(ev)); }

  Event pop_earliest() override {
    assert(!queue_.empty());
    // The priority_queue's top is const; move out via const_cast, which is
    // safe because we pop immediately and never compare the moved-from
    // event.
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    return ev;
  }

  const Event* peek_earliest() override {
    return queue_.empty() ? nullptr : &queue_.top();
  }

  bool empty() const override { return queue_.empty(); }
  std::size_t size() const override { return queue_.size(); }
  const char* name() const override { return "heap"; }

 private:
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      return earlier(b, a);
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

// ---- CalendarQueue ------------------------------------------------------

class CalendarQueue final : public EventQueue {
 public:
  CalendarQueue() { reinit(kMinBuckets, /*width=*/1, /*floor=*/0); }

  void push(Event ev) override {
    if (size_ == 0) {
      // Empty queue: re-anchor the day cursor on the event so pop finds
      // it without walking the ring from a stale position.
      cursor_ = bucket_of(ev.time);
      day_end_ = day_end_for(ev.time);
    } else if (ev.time < day_end_ - width_) {
      // The engine only inserts at/after the last popped time, but
      // earliest_time() may have advanced the cursor past empty days;
      // rewind so the scan cannot skip this event.
      cursor_ = bucket_of(ev.time);
      day_end_ = day_end_for(ev.time);
    }
    insert_sorted(std::move(ev));
    ++size_;
    if (size_ > nbuckets_ * 2 && nbuckets_ < kMaxBuckets) resize(nbuckets_ * 2);
  }

  Event pop_earliest() override {
    assert(size_ > 0);
    Bucket& b = buckets_[locate_earliest()];
    if (b.size() > 1) std::pop_heap(b.begin(), b.end(), Later{});
    Event ev = std::move(b.back());
    b.pop_back();
    --size_;
    // Shrink lazily (4x band below the 2x grow trigger): a workload whose
    // pending set oscillates around a power of two must not pay a full
    // rebuild on every swing.
    if (size_ < nbuckets_ / 4 && nbuckets_ > kMinBuckets) resize(nbuckets_ / 2);
    return ev;
  }

  const Event* peek_earliest() override {
    if (size_ == 0) return nullptr;
    return &buckets_[locate_earliest()].front();
  }

  bool empty() const override { return size_ == 0; }
  std::size_t size() const override { return size_; }
  const char* name() const override { return "calendar"; }

 private:
  // Each bucket is a binary min-heap on (time, seq): front() is the
  // earliest, and both insert and pop are O(log bucket).  A sorted vector
  // would make the common case (tiny buckets) marginally cheaper, but
  // collapses to O(bucket) memmoves per insert when thousands of events
  // share one instant — exactly what a whole-machine barrier (every PE
  // starting at t=0) produces.  The heap's pop order is the exact
  // (time, seq) minimum either way, so the backend equivalence guarantee
  // is unaffected.
  using Bucket = std::vector<Event>;

  // Functor (not a function pointer) so push_heap/pop_heap inline the
  // comparison -- the indirect call showed up at ~20% of queue CPU.
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      return earlier(b, a);
    }
  };

  static constexpr std::size_t kMinBuckets = 8;
  static constexpr std::size_t kMaxBuckets = std::size_t{1} << 20;
  static constexpr std::size_t kWidthSample = 64;

  std::size_t bucket_of(SimTime t) const {
    return (static_cast<std::size_t>(t) >> width_shift_) & (nbuckets_ - 1);
  }

  /// Exclusive upper bound of the day (bucket window) containing `t`.
  SimTime day_end_for(SimTime t) const {
    return ((t >> width_shift_) + 1) << width_shift_;
  }

  void insert_sorted(Event ev) {
    Bucket& b = buckets_[bucket_of(ev.time)];
    b.push_back(std::move(ev));
    // Steady state keeps ~1-2 events per bucket; skipping the heap
    // machinery (and its temp-value moves) for the singleton case is a
    // measurable win on the hold-model microbenchmark.
    if (b.size() > 1) std::push_heap(b.begin(), b.end(), Later{});
  }

  /// Advance (cursor_, day_end_) to the bucket holding the earliest
  /// event and return its index.  Invariant on entry and exit: no
  /// pending event is earlier than the current day's start
  /// (day_end_ - width_); within one day, all candidate times map to
  /// exactly one bucket, so that bucket's back() is the global
  /// (time, seq) minimum.
  std::size_t locate_earliest() {
    for (std::size_t steps = 0; steps < nbuckets_; ++steps) {
      const Bucket& b = buckets_[cursor_];
      if (!b.empty() && b.front().time < day_end_) return cursor_;
      cursor_ = (cursor_ + 1) & (nbuckets_ - 1);
      day_end_ += width_;
    }
    // A whole year of empty days: the next event is far away.  Find it
    // directly and jump the calendar there instead of spinning.
    const Event* min = nullptr;
    std::size_t min_idx = 0;
    for (std::size_t i = 0; i < nbuckets_; ++i) {
      if (buckets_[i].empty()) continue;
      if (!min || earlier(buckets_[i].front(), *min)) {
        min = &buckets_[i].front();
        min_idx = i;
      }
    }
    assert(min && "locate_earliest on empty calendar");
    cursor_ = min_idx;
    day_end_ = day_end_for(min->time);
    return cursor_;
  }

  /// Mean gap between the `kWidthSample` earliest DISTINCT pending times —
  /// the classic width estimate, restricted to the head so one far-future
  /// timeout cannot smear every near event into a single bucket, and
  /// deduplicated so a same-instant burst (a whole-machine barrier) cannot
  /// drive the estimated gap to zero.  Pure function of queue content:
  /// resizes are deterministic.
  SimTime estimate_width_of(const std::vector<Event>& events) const {
    std::vector<SimTime> times;
    times.reserve(events.size());
    for (const Event& ev : events) times.push_back(ev.time);
    if (times.size() < 2) return width_;
    // Only the head of the distribution matters; partition the smallest
    // 4*sample candidates first so the sort below never touches the tail.
    const std::size_t cand = std::min(times.size(), 4 * kWidthSample);
    if (cand < times.size()) {
      std::nth_element(times.begin(), times.begin() + (cand - 1),
                       times.end());
      times.resize(cand);
    }
    std::sort(times.begin(), times.end());
    times.erase(std::unique(times.begin(), times.end()), times.end());
    const std::size_t k = std::min(times.size(), kWidthSample);
    if (k < 2) return width_;
    const SimTime lo = times[0];
    const SimTime hi = times[k - 1];
    // 2x the mean head gap keeps ~1-3 distinct instants per day in
    // steady state.
    const SimTime w = 2 * (hi - lo) / static_cast<SimTime>(k - 1);
    return std::max<SimTime>(w, 1);
  }

  void resize(std::size_t new_nbuckets) {
    // Flatten into the reusable scratch buffer, then clear() each bucket
    // in place: clear() keeps the slot's heap storage, so reinsertion
    // below does not re-malloc every touched bucket.  (Rebuilding the
    // bucket array from scratch made malloc/memmove churn the dominant
    // cost of the push path at 150k+ pending events.)
    scratch_.clear();
    scratch_.reserve(size_);
    for (Bucket& b : buckets_) {
      for (Event& ev : b) scratch_.push_back(std::move(ev));
      b.clear();
    }
    buckets_.resize(new_nbuckets);  // grow keeps old slots' capacity
    nbuckets_ = new_nbuckets;
    set_width(estimate_width_of(scratch_));
    SimTime floor = kNever;
    for (const Event& ev : scratch_) floor = std::min(floor, ev.time);
    if (floor == kNever) floor = 0;
    cursor_ = bucket_of(floor);
    day_end_ = day_end_for(floor);
    for (Event& ev : scratch_) insert_sorted(std::move(ev));
    scratch_.clear();
  }

  void reinit(std::size_t nbuckets, SimTime width, SimTime floor) {
    nbuckets_ = nbuckets;
    set_width(width);
    buckets_.assign(nbuckets_, Bucket{});
    size_ = 0;
    cursor_ = bucket_of(floor);
    day_end_ = day_end_for(floor);
  }

  /// Round the day length up to a power of two so the hot time->bucket
  /// mapping is a shift-and-mask instead of a 64-bit division.
  void set_width(SimTime width) {
    unsigned shift = 0;
    while ((SimTime{1} << shift) < width && shift < 62) ++shift;
    width_shift_ = shift;
    width_ = SimTime{1} << shift;
  }

  std::vector<Bucket> buckets_;
  std::vector<Event> scratch_;  // resize staging; capacity reused across resizes
  std::size_t nbuckets_ = kMinBuckets;  // always a power of two
  SimTime width_ = 1;                   // day length, ns (power of two)
  unsigned width_shift_ = 0;            // log2(width_)
  std::size_t cursor_ = 0;              // bucket of the current day
  SimTime day_end_ = 1;                 // exclusive end of the current day
  std::size_t size_ = 0;
};

}  // namespace

const char* to_string(QueueKind kind) {
  switch (kind) {
    case QueueKind::kHeap:
      return "heap";
    case QueueKind::kCalendar:
      return "calendar";
  }
  return "heap";
}

bool queue_kind_from_string(std::string_view name, QueueKind* out) {
  if (name == "heap") {
    *out = QueueKind::kHeap;
    return true;
  }
  if (name == "calendar") {
    *out = QueueKind::kCalendar;
    return true;
  }
  return false;
}

QueueKind queue_kind_from_env() {
  QueueKind kind = QueueKind::kHeap;
  if (const char* env = std::getenv("UGNIRT_SIM_QUEUE")) {
    queue_kind_from_string(env, &kind);
  }
  return kind;
}

std::unique_ptr<EventQueue> make_event_queue(QueueKind kind) {
  switch (kind) {
    case QueueKind::kCalendar:
      return std::make_unique<CalendarQueue>();
    case QueueKind::kHeap:
      break;
  }
  return std::make_unique<HeapQueue>();
}

}  // namespace ugnirt::sim
