// Cross-layer integration and property tests: every protocol regime of
// both machine layers must deliver bytes intact, in order per pair, with
// balanced QD counters and deterministic virtual time.
#include <gtest/gtest.h>

#include <cstring>
#include <tuple>
#include <vector>

#include "charm/charm.hpp"
#include "lrts/runtime.hpp"
#include "lrts/ugni_layer.hpp"

namespace ugnirt {
namespace {

using converse::CmiAlloc;
using converse::CmiFree;
using converse::CmiMyPe;
using converse::CmiSetHandler;
using converse::CmiSyncSendAndFree;
using converse::kCmiHeaderBytes;
using converse::LayerKind;
using converse::MachineOptions;

// Sweep: (layer, payload bytes, pes-per-node) — crossing every protocol:
// SMSG/E0, FMA GET/E1, BTE GET/rendezvous, intra-node shm paths.
using SweepParam = std::tuple<LayerKind, std::uint32_t, int>;

class ProtocolSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(ProtocolSweep, BytesSurviveEveryPath) {
  auto [layer, payload, ppn] = GetParam();
  MachineOptions o;
  o.pes = 4;
  o.pes_per_node = ppn;
  auto m = lrts::make_machine(layer, o);

  const std::uint32_t total = payload + kCmiHeaderBytes;
  int received = 0;
  int h = m->register_handler([&](void* msg) {
    auto* bytes = static_cast<std::uint8_t*>(converse::payload_of(msg));
    std::uint32_t src =
        static_cast<std::uint32_t>(converse::header_of(msg)->src_pe);
    for (std::uint32_t i = 0; i < payload; ++i) {
      ASSERT_EQ(bytes[i], static_cast<std::uint8_t>((i * 13 + src) & 0xff))
          << "corruption at byte " << i;
    }
    ++received;
    CmiFree(msg);
  });

  // Every PE sends to every other PE.
  for (int pe = 0; pe < 4; ++pe) {
    m->start(pe, [&, pe, h] {
      for (int dest = 0; dest < 4; ++dest) {
        if (dest == pe) continue;
        void* msg = CmiAlloc(total);
        auto* bytes = static_cast<std::uint8_t*>(converse::payload_of(msg));
        for (std::uint32_t i = 0; i < payload; ++i) {
          bytes[i] = static_cast<std::uint8_t>((i * 13 + pe) & 0xff);
        }
        CmiSetHandler(msg, h);
        CmiSyncSendAndFree(dest, total, msg);
      }
    });
  }
  m->run();
  EXPECT_EQ(received, 12);
  // QD bookkeeping balances.
  std::uint64_t created = 0, processed = 0;
  for (int pe = 0; pe < 4; ++pe) {
    created += m->qd_created(pe);
    processed += m->qd_processed(pe);
  }
  EXPECT_EQ(created, processed);
}

std::string sweep_name(const ::testing::TestParamInfo<SweepParam>& info) {
  return std::string(std::get<0>(info.param) == LayerKind::kUgni ? "uGNI"
                                                                 : "MPI") +
         "_b" + std::to_string(std::get<1>(info.param)) + "_ppn" +
         std::to_string(std::get<2>(info.param));
}

INSTANTIATE_TEST_SUITE_P(
    AllRegimes, ProtocolSweep,
    ::testing::Combine(
        ::testing::Values(LayerKind::kUgni, LayerKind::kMpi),
        ::testing::Values(1u, 88u, 1000u, 1025u, 4096u, 9000u, 262144u),
        ::testing::Values(1, 2, 4)),
    sweep_name);

// ---------------------------------------------------------------------------

class LayerFeatureMatrix
    : public ::testing::TestWithParam<std::tuple<bool, bool, bool>> {};

TEST_P(LayerFeatureMatrix, UgniOptimizationTogglesAllDeliver) {
  auto [pool, pxshm, single] = GetParam();
  MachineOptions o;
  o.pes = 6;
  o.pes_per_node = 3;
  o.use_mempool = pool;
  o.use_pxshm = pxshm;
  o.pxshm_single_copy = single;
  auto m = lrts::make_machine(LayerKind::kUgni, o);
  int got = 0;
  int h = m->register_handler([&](void* msg) {
    ++got;
    CmiFree(msg);
  });
  m->start(0, [&, h] {
    for (int dest = 1; dest < 6; ++dest) {
      for (std::uint32_t payload : {64u, 2048u, 65536u}) {
        void* msg = CmiAlloc(payload + kCmiHeaderBytes);
        CmiSetHandler(msg, h);
        CmiSyncSendAndFree(dest, payload + kCmiHeaderBytes, msg);
      }
    }
  });
  m->run();
  EXPECT_EQ(got, 15);
}

INSTANTIATE_TEST_SUITE_P(Toggles, LayerFeatureMatrix,
                         ::testing::Combine(::testing::Bool(),
                                            ::testing::Bool(),
                                            ::testing::Bool()));

// ---------------------------------------------------------------------------

TEST(Integration, LargeFanInDoesNotDropMessages) {
  // 63 PEs flood PE 0 with mixed sizes; backpressure, rendezvous and
  // intra-node paths all active simultaneously.
  MachineOptions o;
  o.pes = 64;
  auto m = lrts::make_machine(LayerKind::kUgni, o);
  int got = 0;
  std::uint64_t byte_sum = 0;
  int h = m->register_handler([&](void* msg) {
    ++got;
    byte_sum += converse::header_of(msg)->size;
    CmiFree(msg);
  });
  std::uint64_t sent_bytes = 0;
  for (int pe = 1; pe < 64; ++pe) {
    std::uint32_t payload = 32u << (pe % 9);  // 32 B .. 8 KiB
    sent_bytes += payload + kCmiHeaderBytes;
    m->start(pe, [&, pe, h, payload] {
      void* msg = CmiAlloc(payload + kCmiHeaderBytes);
      CmiSetHandler(msg, h);
      CmiSyncSendAndFree(0, payload + kCmiHeaderBytes, msg);
    });
  }
  m->run();
  EXPECT_EQ(got, 63);
  EXPECT_EQ(byte_sum, sent_bytes);
}

TEST(Integration, WholeRunDeterminismAcrossProcessRestarts) {
  // Same seed, same program -> bit-identical virtual end time and stats,
  // including the charm layer, QD and both comm layers.
  auto run = [](LayerKind layer) {
    MachineOptions o;
    o.pes = 24;
      o.seed = 777;
    auto m = lrts::make_machine(layer, o);
    charm::Charm charm(*m);
    std::uint64_t work_done = 0;
    int task = -1;
    task = charm.register_task([&](const void* p, std::uint32_t) {
      int ttl = *static_cast<const int*>(p);
      converse::CmiChargeWork(1000 + ttl * 10);
      ++work_done;
      if (ttl > 0) {
        for (int c = 0; c < (ttl % 3) + 1; ++c) {
          int next = ttl - 1;
          charm.seed_task(task, &next, sizeof(next));
        }
      }
    });
    SimTime qd_at = 0;
    m->start(0, [&] {
      int ttl = 8;
      charm.seed_task(task, &ttl, sizeof(ttl));
      charm.start_quiescence([&] {
        qd_at = converse::Machine::running()->current_pe().ctx().now();
      });
    });
    m->run();
    return std::make_tuple(qd_at, work_done, m->stats().msgs_sent);
  };
  EXPECT_EQ(run(LayerKind::kUgni), run(LayerKind::kUgni));
  EXPECT_EQ(run(LayerKind::kMpi), run(LayerKind::kMpi));
}

TEST(Integration, MailboxAccountingGrowsWithActivePairs) {
  MachineOptions o;
  o.pes = 32;
  o.use_pxshm = false;
  o.pes_per_node = 1;
  auto m = lrts::make_machine(LayerKind::kUgni, o);
  auto* layer = dynamic_cast<lrts::UgniLayer*>(&m->layer());
  ASSERT_NE(layer, nullptr);
  EXPECT_EQ(layer->total_mailbox_bytes(), 0u);

  int h = m->register_handler([&](void* msg) { CmiFree(msg); });
  m->start(0, [&, h] {
    for (int dest = 1; dest <= 4; ++dest) {
      void* msg = CmiAlloc(kCmiHeaderBytes + 16);
      CmiSetHandler(msg, h);
      CmiSyncSendAndFree(dest, kCmiHeaderBytes + 16, msg);
    }
  });
  m->run();
  std::uint64_t after4 = layer->total_mailbox_bytes();
  EXPECT_GT(after4, 0u);
  // 4 channel pairs = 8 mailboxes; each pair costs the same.
  EXPECT_EQ(after4 % 8, 0u);
}

TEST(Integration, EnvironmentOverridesReachTheMachineModel) {
  ::setenv("UGNIRT_GEMINI_BTE_BW", "11.5", 1);
  Config cfg;
  gemini::MachineConfig defaults;
  defaults.export_to(cfg);
  cfg.apply_env_overrides();
  gemini::MachineConfig m = gemini::MachineConfig::from(cfg);
  EXPECT_DOUBLE_EQ(m.bte_bw, 11.5);
  ::unsetenv("UGNIRT_GEMINI_BTE_BW");
}

TEST(Integration, VirtualWallTimerAdvancesMonotonically) {
  MachineOptions o;
  o.pes = 2;
  auto m = lrts::make_machine(LayerKind::kUgni, o);
  std::vector<double> stamps;
  int h = -1;
  h = m->register_handler([&](void* msg) {
    stamps.push_back(converse::CmiWallTimer());
    CmiFree(msg);
    if (stamps.size() < 6) {
      void* next = CmiAlloc(kCmiHeaderBytes + 8);
      CmiSetHandler(next, h);
      CmiSyncSendAndFree(1 - CmiMyPe(), kCmiHeaderBytes + 8, next);
    }
  });
  m->start(0, [&, h] {
    void* msg = CmiAlloc(kCmiHeaderBytes + 8);
    CmiSetHandler(msg, h);
    CmiSyncSendAndFree(1, kCmiHeaderBytes + 8, msg);
  });
  m->run();
  ASSERT_EQ(stamps.size(), 6u);
  for (std::size_t i = 1; i < stamps.size(); ++i) {
    EXPECT_GT(stamps[i], stamps[i - 1]);
  }
  EXPECT_GT(stamps.back(), 5e-6);  // at least 5 one-way flights
}

TEST(Integration, TreeHelpersFormAValidTree) {
  MachineOptions o;
  o.pes = 100;
  auto m = lrts::make_machine(LayerKind::kUgni, o);
  std::vector<int> children;
  int counted = 0;
  for (int pe = 0; pe < 100; ++pe) {
    m->tree_children(pe, children);
    for (int c : children) {
      EXPECT_EQ(m->tree_parent(c), pe);
      ++counted;
    }
  }
  EXPECT_EQ(counted, 99);  // every PE except the root has one parent
  EXPECT_EQ(m->tree_parent(0), -1);
}

}  // namespace
}  // namespace ugnirt
