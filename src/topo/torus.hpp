// 3D torus topology with dimension-ordered routing.
//
// Gemini builds "a three-dimensional torus of connected nodes" (paper §II-A).
// We auto-factor a node count into X*Y*Z dimensions (as close to cubic as
// possible, matching how XE6 jobs see a folded torus slice), enumerate the
// six directional links per node, and produce deterministic dimension-ordered
// routes.  The network model layers link occupancy on top of these routes.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace ugnirt::topo {

struct Coord {
  int x = 0;
  int y = 0;
  int z = 0;

  bool operator==(const Coord&) const = default;
};

/// Identifies one directional link: the link leaving `node` along dimension
/// `dim` (0=x, 1=y, 2=z) in direction `positive`.
struct LinkId {
  std::int32_t node = 0;
  std::uint8_t dim = 0;
  bool positive = true;

  bool operator==(const LinkId&) const = default;
};

/// Dense index for a LinkId, suitable for vector-indexed occupancy tables.
/// There are exactly 6 directional links per node.
constexpr std::size_t link_index(const LinkId& l) {
  return static_cast<std::size_t>(l.node) * 6 +
         static_cast<std::size_t>(l.dim) * 2 + (l.positive ? 1 : 0);
}

class Torus3D {
 public:
  /// Build a torus with the given dimensions (each >= 1).
  Torus3D(int dim_x, int dim_y, int dim_z);

  /// Build a torus for `nodes` nodes, factored as close to cubic as possible.
  /// The product of the dimensions always equals `nodes`.
  static Torus3D for_nodes(int nodes);

  int nodes() const { return dims_[0] * dims_[1] * dims_[2]; }
  std::array<int, 3> dims() const { return dims_; }
  std::size_t total_links() const {
    return static_cast<std::size_t>(nodes()) * 6;
  }

  Coord coord_of(int node) const;
  int node_of(const Coord& c) const;

  /// Minimal hop count between two nodes (shortest wrap-aware distance
  /// summed over dimensions).
  int hops(int from, int to) const;

  /// Dimension-ordered (x, then y, then z) minimal route; returns the
  /// sequence of directional links traversed.  Empty when from == to.
  std::vector<LinkId> route(int from, int to) const;

  /// Minimal route correcting dimensions in the given permutation of
  /// {0, 1, 2}.  Every permutation yields a route of exactly hops(from,
  /// to) links; route() is route_order with {0, 1, 2}.  Congestion-aware
  /// adaptive routing picks among these by estimated link load.
  std::vector<LinkId> route_order(int from, int to,
                                  const std::array<int, 3>& order) const;

  /// Neighbor of `node` along `dim` in direction `positive`.
  int neighbor(int node, int dim, bool positive) const;

  /// Network diameter (max over dimension half-spans).
  int diameter() const;

 private:
  /// Signed shortest displacement from a to b along a ring of size n,
  /// preferring the positive direction on ties (deterministic routes).
  static int ring_delta(int a, int b, int n);

  std::array<int, 3> dims_;
};

}  // namespace ugnirt::topo
