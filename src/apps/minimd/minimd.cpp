#include "apps/minimd/minimd.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstring>
#include <map>
#include <memory>
#include <set>

#include "charm/array.hpp"
#include "charm/charm.hpp"
#include "lrts/runtime.hpp"
#include "util/rng.hpp"

namespace ugnirt::apps::minimd {

namespace {

struct Atom {
  Vec3 pos;
  Vec3 vel;  // half-step velocity between integrations
};

// Method ids on the patch array.
constexpr int kMethodStart = 0;
constexpr int kMethodPositions = 1;
constexpr int kMethodMigrants = 2;

struct PosHead {
  std::int32_t step;
  std::int32_t count;
  // Vec3[count] follows
};

struct MigHead {
  std::int32_t step;
  std::int32_t count;
  // Atom[count] follows
};

struct Shared;  // forward

/// One spatial patch: owns atoms, exchanges ghosts, integrates.
class Patch final : public charm::ArrayElement {
 public:
  Patch(Shared& shared, int idx);

  void receive(int method, const void* payload, std::uint32_t bytes) override;
  std::uint32_t pack_size() const override {
    return static_cast<std::uint32_t>(atoms_.size() * sizeof(Atom) + 64);
  }

  void begin_step();  // send positions for current step

  std::vector<Atom> atoms_;
  Vec3 lo_;  // box corner of this patch

 private:
  void on_positions(const PosHead& head, const Vec3* pos);
  void on_migrants(const MigHead& head, const Atom* atoms);
  void try_compute();
  void try_finish();
  void compute_and_integrate();

  Shared* s_;
  int step_ = 0;
  bool computed_ = false;   // forces/integration done for step_
  bool first_step_ = true;
  std::vector<Vec3> prev_force_;  // F(t) for the velocity completion
  // Ghost positions buffered per step.
  std::map<int, std::pair<int, std::vector<Vec3>>> ghosts_;  // step -> (senders, coords)
  std::map<int, std::pair<int, std::vector<Atom>>> migrants_;  // step -> (senders, atoms)
  double pending_energy_ = 0;
};

/// Run-wide shared state (host-side; per-patch data stays in the patches).
struct Shared {
  MdConfig cfg;
  converse::Machine* machine = nullptr;
  charm::Charm* charm = nullptr;
  charm::ArrayManager* patches = nullptr;
  int npatches = 0;
  std::vector<std::vector<int>> neighbors;  // deduplicated, excludes self
  Vec3 box;
  int energy_red = -1;
  MdResult result;
  double e0 = 0;
  bool have_e0 = false;
  SimTime t_start = 0;
  // Per-PE round bookkeeping for the energy reduction.
  std::vector<int> pe_patches;           // patches hosted per PE
  std::vector<std::map<int, std::pair<int, double>>> pe_round;  // pe -> step -> (done, E)

  int patch_of(double x, double y, double z) const {
    auto wrap = [](double v, double span) {
      double w = std::fmod(v, span);
      return w < 0 ? w + span : w;
    };
    int ix = static_cast<int>(wrap(x, box.x) / cfg.patch_len);
    int iy = static_cast<int>(wrap(y, box.y) / cfg.patch_len);
    int iz = static_cast<int>(wrap(z, box.z) / cfg.patch_len);
    ix = std::min(ix, cfg.patches_x - 1);
    iy = std::min(iy, cfg.patches_y - 1);
    iz = std::min(iz, cfg.patches_z - 1);
    return ix + cfg.patches_x * (iy + cfg.patches_y * iz);
  }

  Vec3 min_image(Vec3 d) const {
    auto fold = [](double v, double span) {
      if (v > span / 2) return v - span;
      if (v < -span / 2) return v + span;
      return v;
    };
    return Vec3{fold(d.x, box.x), fold(d.y, box.y), fold(d.z, box.z)};
  }

  void patch_done_step(int pe, int step, double energy);
};

Patch::Patch(Shared& shared, int idx) : s_(&shared) {
  const MdConfig& c = s_->cfg;
  int ix = idx % c.patches_x;
  int iy = (idx / c.patches_x) % c.patches_y;
  int iz = idx / (c.patches_x * c.patches_y);
  lo_ = Vec3{ix * c.patch_len, iy * c.patch_len, iz * c.patch_len};

  // Jittered lattice fill with Maxwell-ish velocities, net momentum zeroed
  // per patch so the global momentum starts at exactly zero.
  Rng rng(c.seed ^ (static_cast<std::uint64_t>(idx) * 0x9e3779b97f4a7c15ULL));
  int side = 1;
  while (side * side * side < c.atoms_per_patch) ++side;
  double cell = c.patch_len / side;
  Vec3 mom{};
  for (int a = 0; a < c.atoms_per_patch; ++a) {
    Atom atom;
    int ax = a % side, ay = (a / side) % side, az = a / (side * side);
    atom.pos = Vec3{lo_.x + (ax + 0.3 + 0.4 * rng.next_double()) * cell,
                    lo_.y + (ay + 0.3 + 0.4 * rng.next_double()) * cell,
                    lo_.z + (az + 0.3 + 0.4 * rng.next_double()) * cell};
    double scale = std::sqrt(c.initial_temp);
    atom.vel = Vec3{scale * (rng.next_double() - 0.5) * 2,
                    scale * (rng.next_double() - 0.5) * 2,
                    scale * (rng.next_double() - 0.5) * 2};
    mom.x += atom.vel.x;
    mom.y += atom.vel.y;
    mom.z += atom.vel.z;
    atoms_.push_back(atom);
  }
  if (!atoms_.empty()) {
    for (auto& a : atoms_) {
      a.vel.x -= mom.x / static_cast<double>(atoms_.size());
      a.vel.y -= mom.y / static_cast<double>(atoms_.size());
      a.vel.z -= mom.z / static_cast<double>(atoms_.size());
    }
  }
}

void Patch::begin_step() {
  // Ship current positions to every neighbor patch.
  const auto& nbrs = s_->neighbors[static_cast<std::size_t>(index())];
  std::vector<std::uint8_t> buf(sizeof(PosHead) + atoms_.size() * sizeof(Vec3));
  auto* head = reinterpret_cast<PosHead*>(buf.data());
  head->step = step_;
  head->count = static_cast<std::int32_t>(atoms_.size());
  auto* out = reinterpret_cast<Vec3*>(buf.data() + sizeof(PosHead));
  for (std::size_t i = 0; i < atoms_.size(); ++i) out[i] = atoms_[i].pos;
  for (int nb : nbrs) {
    s_->patches->invoke(nb, kMethodPositions, buf.data(),
                        static_cast<std::uint32_t>(buf.size()));
  }
  if (nbrs.empty()) try_compute();
}

void Patch::receive(int method, const void* payload, std::uint32_t bytes) {
  if (method == kMethodStart) {
    (void)payload;
    (void)bytes;
    begin_step();
  } else if (method == kMethodPositions) {
    PosHead head;
    std::memcpy(&head, payload, sizeof(head));
    assert(bytes == sizeof(PosHead) + sizeof(Vec3) * static_cast<std::uint32_t>(head.count));
    on_positions(head, reinterpret_cast<const Vec3*>(
                           static_cast<const std::uint8_t*>(payload) +
                           sizeof(PosHead)));
  } else if (method == kMethodMigrants) {
    MigHead head;
    std::memcpy(&head, payload, sizeof(head));
    assert(bytes == sizeof(MigHead) + sizeof(Atom) * static_cast<std::uint32_t>(head.count));
    on_migrants(head, reinterpret_cast<const Atom*>(
                          static_cast<const std::uint8_t*>(payload) +
                          sizeof(MigHead)));
  } else {
    assert(false && "unknown patch method");
  }
}

void Patch::on_positions(const PosHead& head, const Vec3* pos) {
  auto& slot = ghosts_[head.step];
  slot.first += 1;
  slot.second.insert(slot.second.end(), pos, pos + head.count);
  try_compute();
}

void Patch::on_migrants(const MigHead& head, const Atom* in) {
  auto& slot = migrants_[head.step];
  slot.first += 1;
  slot.second.insert(slot.second.end(), in, in + head.count);
  try_finish();
}

void Patch::try_compute() {
  if (computed_) return;
  const int needed =
      static_cast<int>(s_->neighbors[static_cast<std::size_t>(index())].size());
  auto it = ghosts_.find(step_);
  int have = it == ghosts_.end() ? 0 : it->second.first;
  if (have < needed) return;
  compute_and_integrate();
  computed_ = true;
  try_finish();
}

void Patch::compute_and_integrate() {
  const MdConfig& c = s_->cfg;
  const double rc2 = c.patch_len * c.patch_len;
  const double sig2 = c.sigma * c.sigma;

  std::vector<Vec3> others;
  if (auto it = ghosts_.find(step_); it != ghosts_.end()) {
    others = std::move(it->second.second);
    ghosts_.erase(it);
  }

  const std::size_t own = atoms_.size();
  std::vector<Vec3> force(own, Vec3{});
  double pe = 0;
  std::uint64_t pairs = 0;

  auto accumulate = [&](std::size_t i, const Vec3& other, bool half_pe) {
    Vec3 d = s_->min_image(Vec3{atoms_[i].pos.x - other.x,
                                atoms_[i].pos.y - other.y,
                                atoms_[i].pos.z - other.z});
    double r2 = d.x * d.x + d.y * d.y + d.z * d.z;
    ++pairs;
    if (r2 >= rc2 || r2 < 1e-12) return;
    double inv2 = sig2 / r2;
    double inv6 = inv2 * inv2 * inv2;
    double inv12 = inv6 * inv6;
    // F = 24 eps (2 s^12/r^13 - s^6/r^7) rhat = 24 eps (2 inv12 - inv6)/r2 * d
    double f = 24.0 * c.epsilon * (2.0 * inv12 - inv6) / r2;
    force[i].x += f * d.x;
    force[i].y += f * d.y;
    force[i].z += f * d.z;
    double e = 4.0 * c.epsilon * (inv12 - inv6);
    pe += half_pe ? 0.5 * e : 0.5 * e;  // every pair seen from both sides
  };

  for (std::size_t i = 0; i < own; ++i) {
    for (std::size_t j = 0; j < own; ++j) {
      if (i == j) continue;
      accumulate(i, atoms_[j].pos, true);
    }
    for (const Vec3& g : others) accumulate(i, g, true);
  }
  s_->result.pair_interactions += pairs;
  converse::CmiChargeWork(static_cast<SimTime>(pairs) * c.ns_per_pair);

  // Velocity Verlet: finish last step's kick, record energy, kick + drift.
  if (!first_step_) {
    for (std::size_t i = 0; i < own; ++i) {
      atoms_[i].vel.x += force[i].x * c.dt / 2;
      atoms_[i].vel.y += force[i].y * c.dt / 2;
      atoms_[i].vel.z += force[i].z * c.dt / 2;
    }
  }
  double ke = 0;
  for (const Atom& a : atoms_) {
    ke += 0.5 * (a.vel.x * a.vel.x + a.vel.y * a.vel.y + a.vel.z * a.vel.z);
  }
  pending_energy_ = ke + pe;

  for (std::size_t i = 0; i < own; ++i) {
    atoms_[i].vel.x += force[i].x * c.dt / 2;
    atoms_[i].vel.y += force[i].y * c.dt / 2;
    atoms_[i].vel.z += force[i].z * c.dt / 2;
    atoms_[i].pos.x += atoms_[i].vel.x * c.dt;
    atoms_[i].pos.y += atoms_[i].vel.y * c.dt;
    atoms_[i].pos.z += atoms_[i].vel.z * c.dt;
    // Wrap into the global box.
    auto wrap = [](double v, double span) {
      double w = std::fmod(v, span);
      return w < 0 ? w + span : w;
    };
    atoms_[i].pos.x = wrap(atoms_[i].pos.x, s_->box.x);
    atoms_[i].pos.y = wrap(atoms_[i].pos.y, s_->box.y);
    atoms_[i].pos.z = wrap(atoms_[i].pos.z, s_->box.z);
  }
  first_step_ = false;

  // Migrate atoms that left the patch; one message per neighbor always, so
  // receivers can count completion.
  const auto& nbrs = s_->neighbors[static_cast<std::size_t>(index())];
  std::vector<std::vector<Atom>> outgoing(nbrs.size());
  std::vector<Atom> keep;
  keep.reserve(atoms_.size());
  for (const Atom& a : atoms_) {
    int dest = s_->patch_of(a.pos.x, a.pos.y, a.pos.z);
    if (dest == index()) {
      keep.push_back(a);
      continue;
    }
    auto it = std::find(nbrs.begin(), nbrs.end(), dest);
    assert(it != nbrs.end() && "atom moved beyond the neighbor shell");
    outgoing[static_cast<std::size_t>(it - nbrs.begin())].push_back(a);
    ++s_->result.migrations;
  }
  atoms_ = std::move(keep);
  for (std::size_t k = 0; k < nbrs.size(); ++k) {
    std::vector<std::uint8_t> buf(sizeof(MigHead) +
                                  outgoing[k].size() * sizeof(Atom));
    auto* head = reinterpret_cast<MigHead*>(buf.data());
    head->step = step_;
    head->count = static_cast<std::int32_t>(outgoing[k].size());
    if (!outgoing[k].empty()) {
      std::memcpy(buf.data() + sizeof(MigHead), outgoing[k].data(),
                  outgoing[k].size() * sizeof(Atom));
    }
    s_->patches->invoke(nbrs[k], kMethodMigrants, buf.data(),
                        static_cast<std::uint32_t>(buf.size()));
  }
}

void Patch::try_finish() {
  if (!computed_) return;
  const int needed =
      static_cast<int>(s_->neighbors[static_cast<std::size_t>(index())].size());
  auto it = migrants_.find(step_);
  int have = it == migrants_.end() ? 0 : it->second.first;
  if (have < needed) return;
  if (it != migrants_.end()) {
    for (const Atom& a : it->second.second) atoms_.push_back(a);
    migrants_.erase(it);
  }
  // Step complete: report energy and either advance or stop.
  s_->patch_done_step(converse::CmiMyPe(), step_, pending_energy_);
  computed_ = false;
  ++step_;
  if (step_ < s_->cfg.steps) begin_step();
}

void Shared::patch_done_step(int pe, int step, double energy) {
  auto& slot = pe_round[static_cast<std::size_t>(pe)][step];
  slot.first += 1;
  slot.second += energy;
  if (slot.first < pe_patches[static_cast<std::size_t>(pe)]) return;
  double total = slot.second;
  pe_round[static_cast<std::size_t>(pe)].erase(step);
  charm->contribute_d(energy_red, total);
}

}  // namespace

MdResult run_minimd(const converse::MachineOptions& options,
                    const MdConfig& config) {
  auto machine = lrts::make_machine(options.layer, options);
  charm::Charm charm(*machine);

  Shared shared;
  shared.cfg = config;
  shared.machine = machine.get();
  shared.charm = &charm;
  shared.npatches =
      config.patches_x * config.patches_y * config.patches_z;
  assert(options.pes <= shared.npatches &&
         "minimd needs at least one patch per PE");
  shared.box = Vec3{config.patches_x * config.patch_len,
                    config.patches_y * config.patch_len,
                    config.patches_z * config.patch_len};

  // Deduplicated 26-neighborhood (wraps can alias on tiny grids).
  shared.neighbors.resize(static_cast<std::size_t>(shared.npatches));
  for (int idx = 0; idx < shared.npatches; ++idx) {
    int ix = idx % config.patches_x;
    int iy = (idx / config.patches_x) % config.patches_y;
    int iz = idx / (config.patches_x * config.patches_y);
    std::set<int> uniq;
    for (int dx = -1; dx <= 1; ++dx) {
      for (int dy = -1; dy <= 1; ++dy) {
        for (int dz = -1; dz <= 1; ++dz) {
          int nx = (ix + dx + config.patches_x) % config.patches_x;
          int ny = (iy + dy + config.patches_y) % config.patches_y;
          int nz = (iz + dz + config.patches_z) % config.patches_z;
          int n = nx + config.patches_x * (ny + config.patches_y * nz);
          if (n != idx) uniq.insert(n);
        }
      }
    }
    shared.neighbors[static_cast<std::size_t>(idx)]
        .assign(uniq.begin(), uniq.end());
  }

  charm::ArrayManager patches(charm, shared.npatches, [&](int idx) {
    return std::make_unique<Patch>(shared, idx);
  });
  shared.patches = &patches;

  shared.pe_patches.assign(static_cast<std::size_t>(options.pes), 0);
  for (int i = 0; i < shared.npatches; ++i) {
    shared.pe_patches[static_cast<std::size_t>(patches.location_of(i))]++;
  }
  for (int pe = 0; pe < options.pes; ++pe) {
    assert(shared.pe_patches[static_cast<std::size_t>(pe)] > 0);
  }
  shared.pe_round.resize(static_cast<std::size_t>(options.pes));

  SimTime t_end = 0;
  shared.energy_red = charm.register_reduction_sum_d([&](double total) {
    shared.result.energy.push_back(total);
    if (!shared.have_e0) {
      shared.e0 = total;
      shared.have_e0 = true;
    } else if (shared.e0 != 0) {
      double drift = std::abs(total - shared.e0) / std::abs(shared.e0);
      shared.result.max_energy_drift =
          std::max(shared.result.max_energy_drift, drift);
    }
    t_end = machine->current_pe().ctx().now();
  });

  machine->start(0, [&] {
    shared.t_start = machine->current_pe().ctx().now();
    // Kick off step 0 on every patch, on its home PE.
    patches.invoke_all(kMethodStart, nullptr, 0);
  });
  machine->run();

  MdResult result = std::move(shared.result);
  result.steps = config.steps;
  result.elapsed = t_end - shared.t_start;
  result.per_step =
      config.steps > 0 ? result.elapsed / config.steps : 0;
  // Total momentum from final atom states.
  for (int i = 0; i < shared.npatches; ++i) {
    for (const Atom& a : static_cast<Patch*>(patches.element(i))->atoms_) {
      result.total_momentum.x += a.vel.x;
      result.total_momentum.y += a.vel.y;
      result.total_momentum.z += a.vel.z;
    }
  }
  return result;
}

}  // namespace ugnirt::apps::minimd
