#!/usr/bin/env bash
# Lint: no application-facing code may call the deprecated MachineLayer
# send virtuals.  Everything outside the runtime core (src/converse,
# src/lrts) must go through the unified path — Machine::submit()/send()/
# broadcast()/send_persistent() or the Cmi* wrappers — so that every
# message is eligible for aggregation and the per-layer protocol choice
# stays behind MachineLayer::submit().
#
# Usage: check_deprecated_sends.sh [repo-root]
# Exits non-zero and prints offending lines if any bench / example / app /
# test target calls a deprecated send entry point.
set -u

root="${1:-$(cd "$(dirname "$0")/.." && pwd)}"
cd "$root" || exit 2

# The deprecated surface: the old per-layer virtuals.  `sync_send` only
# exists on MachineLayer (Machine never had it), so any match outside the
# runtime core is a violation.  Layer-level `send_persistent` was renamed;
# the public Machine::send_persistent API remains fine, so we only flag
# explicit layer()-qualified calls.
pattern='(\.|->)sync_send[[:space:]]*\(|layer\(\)\.send_persistent[[:space:]]*\('

violations=$(grep -rEn "$pattern" \
    --include='*.cpp' --include='*.hpp' --include='*.h' \
    bench examples tests src/apps 2>/dev/null)

if [ -n "$violations" ]; then
  echo "error: deprecated MachineLayer send virtual called outside the" >&2
  echo "runtime core; use Machine::submit()/send() or the Cmi* API:" >&2
  echo "$violations" >&2
  exit 1
fi

echo "check_deprecated_sends: OK (no deprecated send calls outside src/converse + src/lrts)"
exit 0
