// dmapp_histogram: the *other* Gemini programming model (paper §II-A).
//
// DMAPP serves "a logically shared, distributed memory programming model
// ... a good match for SHMEM and PGAS languages".  This example builds a
// distributed histogram the SHMEM way: every PE owns a slice of the bins
// in its symmetric heap, classifies local data, and updates remote bins
// with one-sided atomic fetch-adds — no receiver-side code at all, the
// defining contrast with the message-driven CHARM++ model the paper
// targets at uGNI instead.
//
// Usage: ./dmapp_histogram [pes] [items_per_pe] [bins]
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "sim/context.hpp"
#include "sim/engine.hpp"
#include "ugni/dmapp.hpp"
#include "util/rng.hpp"

using namespace ugnirt;

int main(int argc, char** argv) {
  const int pes = argc > 1 ? std::atoi(argv[1]) : 8;
  const int items = argc > 2 ? std::atoi(argv[2]) : 5000;
  const int bins = argc > 3 ? std::atoi(argv[3]) : 64;

  sim::Engine engine{sim::EngineOptions::from_env()};
  gemini::Network network(engine.scheduler(), topo::Torus3D::for_nodes((pes + 1) / 2),
                          gemini::MachineConfig{});
  ugni::Domain domain(network);

  std::vector<std::unique_ptr<sim::Context>> ctx;
  for (int pe = 0; pe < pes; ++pe) {
    ctx.push_back(std::make_unique<sim::Context>(engine.scheduler(), pe));
  }

  sim::ScopedContext boot(*ctx[0]);
  dmapp::DmappJob job(domain, pes, /*sheap_bytes=*/64 * 1024);

  // Symmetric allocation: each PE holds bins_per_pe counters.
  const int bins_per_pe = (bins + pes - 1) / pes;
  std::uint64_t bins_off = 0;
  if (job.sheap_malloc(static_cast<std::uint64_t>(bins_per_pe) * 8,
                       &bins_off) != dmapp::DMAPP_RC_SUCCESS) {
    std::fprintf(stderr, "symmetric heap exhausted\n");
    return 1;
  }
  for (int pe = 0; pe < pes; ++pe) {
    auto* slice =
        static_cast<std::int64_t*>(job.addr_of(pe, bins_off));
    for (int b = 0; b < bins_per_pe; ++b) slice[b] = 0;
  }

  // Each PE classifies its items and atomically bumps the owning PE's bin.
  std::uint64_t total_updates = 0;
  for (int pe = 0; pe < pes; ++pe) {
    sim::ScopedContext guard(*ctx[pe]);
    Rng rng(0x415701ull ^ static_cast<std::uint64_t>(pe));
    for (int i = 0; i < items; ++i) {
      int bin = static_cast<int>(rng.next_below(
          static_cast<std::uint32_t>(bins)));
      int owner = bin / bins_per_pe;
      std::uint64_t off = bins_off +
                          static_cast<std::uint64_t>(bin % bins_per_pe) * 8;
      std::int64_t before = 0;
      dmapp::dmapp_return_t rc =
          job.afadd_qw(pe, owner, off, 1, &before);
      if (rc != dmapp::DMAPP_RC_SUCCESS) {
        std::fprintf(stderr, "afadd failed\n");
        return 1;
      }
      ++total_updates;
    }
  }
  engine.run();

  // Validate: the histogram total must equal the number of updates.
  std::int64_t sum = 0;
  std::int64_t max_bin = 0;
  for (int pe = 0; pe < pes; ++pe) {
    auto* slice =
        static_cast<std::int64_t*>(job.addr_of(pe, bins_off));
    for (int b = 0; b < bins_per_pe; ++b) {
      if (pe * bins_per_pe + b >= bins) break;
      sum += slice[b];
      max_bin = std::max(max_bin, slice[b]);
    }
  }
  SimTime worst = 0;
  for (int pe = 0; pe < pes; ++pe) {
    worst = std::max(worst, ctx[pe]->now());
  }

  std::printf("dmapp histogram: %d PEs x %d items into %d bins\n", pes,
              items, bins);
  std::printf("  updates       : %llu one-sided fetch-adds\n",
              static_cast<unsigned long long>(total_updates));
  std::printf("  histogram sum : %lld (%s)\n", static_cast<long long>(sum),
              sum == static_cast<std::int64_t>(total_updates) ? "MATCH"
                                                              : "MISMATCH");
  std::printf("  heaviest bin  : %lld\n", static_cast<long long>(max_bin));
  std::printf("  virtual time  : %.3f ms on the busiest PE\n", to_ms(worst));
  return sum == static_cast<std::int64_t>(total_updates) ? 0 : 2;
}
