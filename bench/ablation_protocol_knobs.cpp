// Ablation: the design knobs DESIGN.md calls out.
//  (1) FMA->BTE crossover (rdma_threshold): mid-size latency as the GET
//      mechanism switch point moves.
//  (2) Registration cost sensitivity: how much the memory pool buys as
//      per-page pinning cost varies (the pool's advantage grows with it).
//  (3) Mailbox credit count: small-message throughput under back-pressure.
#include "apps/microbench/microbench.hpp"
#include "bench_util.hpp"
#include "lrts/runtime.hpp"

using namespace ugnirt;
using namespace ugnirt::apps;

namespace {

SimTime pingpong_with(converse::MachineOptions o, std::uint32_t payload,
                      bool reuse = true) {
  bench::PingPongOptions pp;
  pp.payload = payload;
  pp.reuse_buffer = reuse;
  return bench::charm_pingpong(o, pp);
}

}  // namespace

int main() {
  // (1) Crossover sweep at 4 KiB and 16 KiB messages.
  benchtool::Table xo("ablation_crossover", "rdma_threshold");
  xo.add_column("lat_4K_us");
  xo.add_column("lat_16K_us");
  for (std::uint32_t thr : {1024u, 2048u, 4096u, 8192u, 16384u, 65536u}) {
    converse::MachineOptions o;
    o.pes_per_node = 1;
    o.mc.rdma_threshold = thr;
    xo.add_row(std::to_string(thr), {to_us(pingpong_with(o, 4096)),
                                     to_us(pingpong_with(o, 16384))});
  }
  xo.print();
  std::printf("Takeaway: small GETs suffer when forced onto the BTE (high\n"
              "startup), large GETs suffer on FMA (CPU-limited bandwidth);\n"
              "the sweet spot sits in the paper's 2-8 KiB window.\n\n");

  // (2) Registration-cost sensitivity: pool on/off at 64 KiB.
  benchtool::Table reg("ablation_regcost", "reg_ns_per_page");
  reg.add_column("no_pool_us");
  reg.add_column("pool_us");
  reg.add_column("pool_speedup");
  for (SimTime per_page : {50, 130, 260, 520, 1040}) {
    converse::MachineOptions base;
    base.layer = converse::LayerKind::kUgni;
    base.pes_per_node = 1;
    base.mc.mem_reg_per_page_ns = per_page;
    converse::MachineOptions no_pool = base;
    no_pool.use_mempool = false;
    SimTime without = pingpong_with(no_pool, 65536, /*reuse=*/false);
    SimTime with = pingpong_with(base, 65536, /*reuse=*/false);
    reg.add_row(std::to_string(per_page),
                {to_us(without), to_us(with),
                 static_cast<double>(without) / static_cast<double>(with)});
  }
  reg.print();
  std::printf("Takeaway: the memory pool's advantage scales with pinning\n"
              "cost — exactly why registration caches (uDREG) were not\n"
              "enough for the MPI path (paper §IV-B).\n\n");

  // (3) Mailbox credits under a burst of small messages.
  benchtool::Table cr("ablation_credits", "mbox_credits");
  cr.add_column("burst_200_msgs_us");
  for (std::uint32_t credits : {2u, 4u, 8u, 16u, 32u}) {
    converse::MachineOptions o;
    o.pes = 2;
    o.pes_per_node = 1;
    o.mc.smsg_mailbox_credits = credits;
    auto m = lrts::make_machine(converse::LayerKind::kUgni, o);
    int got = 0;
    SimTime done = 0;
    int h = m->register_handler([&](void* msg) {
      converse::CmiFree(msg);
      if (++got == 200) {
        done = converse::Machine::running()->current_pe().ctx().now();
      }
    });
    m->start(0, [&, h] {
      for (int i = 0; i < 200; ++i) {
        void* msg = converse::CmiAlloc(converse::kCmiHeaderBytes + 64);
        converse::CmiSetHandler(msg, h);
        converse::CmiSyncSendAndFree(1, converse::kCmiHeaderBytes + 64, msg);
      }
    });
    m->run();
    cr.add_row(std::to_string(credits), {to_us(done)});
  }
  cr.print();
  std::printf("Takeaway: too few mailbox credits serialize bursts on the\n"
              "credit round-trip; more credits buy throughput at the cost\n"
              "of mailbox memory (the §II-B trade again).\n");
  return 0;
}
