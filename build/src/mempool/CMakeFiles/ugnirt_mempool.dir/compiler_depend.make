# Empty compiler generated dependencies file for ugnirt_mempool.
# This may be replaced when dependencies are built.
