#include "util/config.hpp"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace ugnirt {

namespace {

std::string trim(const std::string& s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string to_env_name(const std::string& key) {
  std::string out = "UGNIRT_";
  for (char c : key) {
    if (c == '.' || c == '-') {
      out.push_back('_');
    } else {
      out.push_back(
          static_cast<char>(std::toupper(static_cast<unsigned char>(c))));
    }
  }
  return out;
}

}  // namespace

bool Config::parse_string(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    line = trim(line);
    if (line.empty()) continue;
    auto eq = line.find('=');
    if (eq == std::string::npos) {
      error_ = "line " + std::to_string(lineno) + ": missing '='";
      return false;
    }
    std::string key = trim(line.substr(0, eq));
    std::string value = trim(line.substr(eq + 1));
    if (key.empty()) {
      error_ = "line " + std::to_string(lineno) + ": empty key";
      return false;
    }
    values_[key] = value;
  }
  return true;
}

bool Config::parse_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    error_ = "cannot open " + path;
    return false;
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  return parse_string(ss.str());
}

void Config::apply_env_overrides(const std::vector<std::string>& extra_keys) {
  std::vector<std::string> keys;
  keys.reserve(values_.size() + extra_keys.size());
  for (const auto& [k, _] : values_) keys.push_back(k);
  keys.insert(keys.end(), extra_keys.begin(), extra_keys.end());
  for (const auto& key : keys) {
    if (const char* v = std::getenv(to_env_name(key).c_str())) {
      values_[key] = v;
    }
  }
}

void Config::set(const std::string& key, const std::string& value) {
  values_[key] = value;
}

bool Config::contains(const std::string& key) const {
  return values_.count(key) != 0;
}

std::optional<std::string> Config::get_string(const std::string& key) const {
  auto it = values_.find(key);
  if (it == values_.end()) return std::nullopt;
  return it->second;
}

std::optional<std::int64_t> Config::get_int(const std::string& key) const {
  auto s = get_string(key);
  if (!s) return std::nullopt;
  errno = 0;
  char* end = nullptr;
  long long v = std::strtoll(s->c_str(), &end, 0);
  if (errno != 0 || end == s->c_str() || *end != '\0') return std::nullopt;
  return static_cast<std::int64_t>(v);
}

std::optional<double> Config::get_double(const std::string& key) const {
  auto s = get_string(key);
  if (!s) return std::nullopt;
  errno = 0;
  char* end = nullptr;
  double v = std::strtod(s->c_str(), &end);
  if (errno != 0 || end == s->c_str() || *end != '\0') return std::nullopt;
  return v;
}

std::optional<bool> Config::get_bool(const std::string& key) const {
  auto s = get_string(key);
  if (!s) return std::nullopt;
  std::string v = *s;
  std::transform(v.begin(), v.end(), v.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  if (v == "1" || v == "true" || v == "yes" || v == "on") return true;
  if (v == "0" || v == "false" || v == "no" || v == "off") return false;
  return std::nullopt;
}

std::string Config::get_string_or(const std::string& key,
                                  const std::string& fallback) const {
  return get_string(key).value_or(fallback);
}

std::int64_t Config::get_int_or(const std::string& key,
                                std::int64_t fallback) const {
  return get_int(key).value_or(fallback);
}

double Config::get_double_or(const std::string& key, double fallback) const {
  return get_double(key).value_or(fallback);
}

bool Config::get_bool_or(const std::string& key, bool fallback) const {
  return get_bool(key).value_or(fallback);
}

std::string Config::dump() const {
  std::ostringstream out;
  for (const auto& [k, v] : values_) out << k << " = " << v << "\n";
  return out.str();
}

}  // namespace ugnirt
