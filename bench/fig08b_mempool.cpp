// Figure 8(b): single-message latency with and without the memory pool,
// plus pure uGNI, 1 KiB .. 512 KiB (paper §IV-B).
//
// Buffers are NOT reused between iterations here (fresh CmiAlloc per
// message): that is the case the pool accelerates.
#include "apps/microbench/microbench.hpp"
#include "bench_util.hpp"

using namespace ugnirt;
using namespace ugnirt::apps;

int main() {
  gemini::MachineConfig mc;
  benchtool::Table table("fig08b_mempool", "msg_bytes");
  table.add_column("wo_mempool_us");
  table.add_column("w_mempool_us");
  table.add_column("pure_uGNI_us");

  converse::MachineOptions with_pool;
  with_pool.layer = converse::LayerKind::kUgni;
  with_pool.pes_per_node = 1;
  converse::MachineOptions without = with_pool;
  without.use_mempool = false;

  for (std::uint64_t size : benchtool::size_sweep(1024, 512 * 1024)) {
    bench::PingPongOptions pp;
    pp.payload = static_cast<std::uint32_t>(size);
    pp.reuse_buffer = false;  // allocate fresh buffers, as applications do
    table.add_row(
        benchtool::size_label(size),
        {to_us(bench::charm_pingpong(without, pp)),
         to_us(bench::charm_pingpong(with_pool, pp)),
         to_us(bench::pure_ugni_pingpong(mc, static_cast<std::uint32_t>(size)))});
  }
  table.print();
  std::printf("Paper shape: the pool removes Tmalloc+Tregister and cuts\n"
              "large-message latency by ~50%%, approaching pure uGNI.\n");
  return 0;
}
