#include "lrts/mpi_layer.hpp"

#include <cassert>
#include <cstring>
#include <deque>

#include "lrts/span_marks.hpp"
#include "trace/spans.hpp"

namespace ugnirt::lrts {

using converse::header_of;

namespace {
/// All Converse traffic travels under one MPI tag (the real layer uses a
/// small tag space; one is enough here).
constexpr int kCharmTag = 7;
}  // namespace

struct MpiLayer::PeState final : converse::LayerPeState {
  // Rendezvous sends whose buffers MPI still needs.
  struct OutSend {
    std::unique_ptr<mpilite::Request> req;
    void* msg = nullptr;
  };
  std::deque<OutSend> outstanding;
};

MpiLayer::~MpiLayer() = default;

MpiLayer::PeState& MpiLayer::state(converse::Pe& pe) {
  return *static_cast<PeState*>(pe.layer_state());
}

void MpiLayer::ensure_comm(converse::Machine& m) {
  if (comm_) return;
  machine_ = &m;
  comm_ = std::make_unique<mpilite::MpiComm>(
      m.network(), m.num_pes(), [&m](int rank) { return m.node_of_pe(rank); });
  comm_->set_retry_policy(m.options().retry);
}

void MpiLayer::init_pe(converse::Pe& pe) {
  ensure_comm(pe.machine());
  comm_->init_rank(pe.id());
  converse::Pe* p = &pe;
  comm_->set_wake(pe.id(), [p](SimTime t) { p->wake(t); });
  pe.set_layer_state(std::make_unique<PeState>());
}

void* MpiLayer::alloc(sim::Context& ctx, converse::Pe&, std::size_t bytes) {
  // The MPI-based CHARM++ allocates messages with plain malloc; there is no
  // registered pool to draw from (paper §I: "an extra memory copy between
  // CHARM++ and MPI memory space may be needed").
  ctx.charge(machine_->options().mc.malloc_cost(bytes));
  return ::operator new[](bytes, std::align_val_t{16});
}

void MpiLayer::free_msg(sim::Context& ctx, converse::Pe& pe, void* msg) {
  // CHARM++ frees every message buffer after execution; the registration
  // cache must drop entries covering freed memory (uDREG correctness),
  // which is why the MPI-based runtime keeps re-registering large buffers.
  const std::uint32_t size = converse::header_of(msg)->size;
  if (size > machine_->options().mc.mpi_eager_threshold) {
    comm_->udreg_invalidate(pe.id(), msg, size);
  }
  ctx.charge(machine_->options().mc.free_base_ns);
  ::operator delete[](msg, std::align_val_t{16});
}

void MpiLayer::submit(sim::Context& ctx, converse::Pe& src, int dest_pe,
                      converse::MsgView mv, const converse::SendOptions& opts) {
  assert(!opts.persistent_handle.valid() &&
         "MPI layer has no persistent channels");
  (void)opts;
  PeState& s = state(src);
  auto req = std::make_unique<mpilite::Request>();
  comm_->isend(src.id(), dest_pe, kCharmTag, mv.msg, mv.size, req.get());
  if (trace::spans_enabled()) {
    mark_msg_spans(mv.msg, trace::Stage::kTransportPost, src.id(), ctx.now());
  }
  if (req->done) {
    // Buffered (eager / shm): MPI copied what it needs.
    free_msg(ctx, src, mv.msg);
    return;
  }
  s.outstanding.push_back(PeState::OutSend{std::move(req), mv.msg});
}

std::uint32_t MpiLayer::recommended_batch_bytes(converse::Pe& src,
                                                int dest_pe) const {
  (void)src;
  (void)dest_pe;
  // An eager isend is one buffered transaction; past the threshold MPI
  // switches to rendezvous and a batch would pin the buffer instead.
  return static_cast<std::uint32_t>(
      machine_->options().mc.mpi_eager_threshold);
}

void MpiLayer::advance(sim::Context& ctx, converse::Pe& pe) {
  PeState& s = state(pe);
  const auto& mc = machine_->options().mc;

  // Complete rendezvous sends so their buffers can be released.
  while (!s.outstanding.empty()) {
    PeState::OutSend& os = s.outstanding.front();
    if (!comm_->test(pe.id(), os.req.get())) break;
    free_msg(ctx, pe, os.msg);
    s.outstanding.pop_front();
  }

  // The paper's progress engine: probe, malloc, blocking receive, deliver.
  for (;;) {
    mpilite::Status status;
    if (!comm_->iprobe(pe.id(), mpilite::MPI_ANY_SOURCE, kCharmTag,
                       &status)) {
      break;
    }
    void* buf = alloc(ctx, pe, status.count);
    comm_->recv(pe.id(), status.source, kCharmTag, buf, status.count,
                &status);
    converse::CmiMsgHeader* h = header_of(buf);
    h->alloc_pe = pe.id();
    (void)mc;
    if (trace::spans_enabled()) {
      // MPI surfaces the message only at receive time, so wire arrival and
      // completion coincide here.
      mark_msg_spans(buf, trace::Stage::kRxArrive, pe.id(), ctx.now());
      mark_msg_spans(buf, trace::Stage::kCqComplete, pe.id(), ctx.now());
    }
    pe.enqueue(buf, ctx.now());
  }
}

bool MpiLayer::has_backlog(const converse::Pe& pe) const {
  // Outstanding rendezvous sends complete via ACK arrivals, which wake the
  // PE through the CQ notify hook; only credit-stalled control messages
  // need active retry.
  return comm_ && comm_->has_send_backlog(pe.id());
}

void MpiLayer::collect_metrics(trace::MetricsRegistry& reg) {
  if (!comm_) return;
  const mpilite::MpiStats& s = comm_->stats();
  reg.counter("mpi.sends_e0").set(s.sends_e0);
  reg.counter("mpi.sends_e1").set(s.sends_e1);
  reg.counter("mpi.sends_rndv").set(s.sends_rndv);
  reg.counter("mpi.unexpected").set(s.unexpected);
  reg.counter("retry_smsg").set(s.smsg_retries);
  reg.counter("retry_mem_register").set(s.reg_retries);
  reg.counter("retry_escalations").set(s.escalations);
  reg.counter("cq_overrun_recovered").set(s.cq_overruns_recovered);
  const mpilite::UdregStats& u = comm_->udreg_stats();
  reg.counter("mpi.udreg_hits").set(u.hits);
  reg.counter("mpi.udreg_misses").set(u.misses);
  reg.counter("mpi.udreg_evictions").set(u.evictions);
}

}  // namespace ugnirt::lrts
