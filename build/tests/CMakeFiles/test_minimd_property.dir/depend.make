# Empty dependencies file for test_minimd_property.
# This may be replaced when dependencies are built.
