// Shared machine-layer statistics snapshot.
//
// Historically each LRTS layer kept its own private stats struct with its
// own field set; they are unified here as one snapshot type backed by the
// machine's trace::MetricsRegistry.  Layers bump registry counters on the
// hot path (cached Counter pointers, one increment each) and materialize
// this struct on demand in stats().  Fields a layer does not produce stay
// zero.
#pragma once

#include <cstdint>

namespace ugnirt::lrts {

struct LayerStats {
  // uGNI layer (single-PE processes).
  std::uint64_t smsg_sends = 0;        // mailbox sends that left this PE
  std::uint64_t rendezvous_gets = 0;   // GETs posted for INIT_TAG messages
  std::uint64_t persistent_puts = 0;   // persistent-channel PUTs
  std::uint64_t pxshm_msgs = 0;        // intra-node shm deliveries
  std::uint64_t credit_stalls = 0;     // sends deferred on mailbox credits
  std::uint64_t registrations = 0;     // MemRegister calls on send paths

  // SMP layer (node-wide processes with a comm thread).
  std::uint64_t intra_node_ptr_msgs = 0;     // zero-copy worker-to-worker
  std::uint64_t comm_thread_sends = 0;
  std::uint64_t comm_thread_busy_defers = 0;
};

}  // namespace ugnirt::lrts
