file(REMOVE_RECURSE
  "CMakeFiles/ugnirt_topo.dir/torus.cpp.o"
  "CMakeFiles/ugnirt_topo.dir/torus.cpp.o.d"
  "libugnirt_topo.a"
  "libugnirt_topo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ugnirt_topo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
