# Empty dependencies file for nqueens.
# This may be replaced when dependencies are built.
