# Empty compiler generated dependencies file for test_nqueens.
# This may be replaced when dependencies are built.
