#include "sim/engine.hpp"

#include <utility>

namespace ugnirt::sim {

void EventHandle::cancel() {
  if (auto alive = token_.lock()) *alive = false;
}

EventHandle Engine::schedule_at(SimTime when, std::function<void()> fn) {
  if (when < now_) when = now_;
  auto alive = std::make_shared<bool>(true);
  EventHandle handle{std::weak_ptr<bool>(alive)};
  queue_.push(Event{when, next_seq_++, std::move(fn), std::move(alive)});
  return handle;
}

bool Engine::pop_and_run() {
  // The priority_queue's top is const; move out via const_cast, which is
  // safe because we pop immediately and never compare the moved-from event.
  Event ev = std::move(const_cast<Event&>(queue_.top()));
  queue_.pop();
  now_ = ev.time;
  if (*ev.alive) {
    ++executed_;
    ev.fn();
    return true;
  }
  return false;
}

std::uint64_t Engine::run() {
  stopped_ = false;
  std::uint64_t ran = 0;
  while (!queue_.empty() && !stopped_) {
    if (pop_and_run()) ++ran;
  }
  return ran;
}

std::uint64_t Engine::run_until(SimTime until) {
  stopped_ = false;
  std::uint64_t ran = 0;
  while (!queue_.empty() && !stopped_ && queue_.top().time <= until) {
    if (pop_and_run()) ++ran;
  }
  if (now_ < until && (queue_.empty() || queue_.top().time > until)) {
    now_ = until;
  }
  return ran;
}

}  // namespace ugnirt::sim
