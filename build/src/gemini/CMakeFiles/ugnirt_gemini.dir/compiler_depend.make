# Empty compiler generated dependencies file for ugnirt_gemini.
# This may be replaced when dependencies are built.
