// N-Queens on the message-driven runtime (paper §V-C).
//
// Counts all solutions with a task-parallel state-space search: tasks above
// the threshold depth expand and fire child tasks at random PEs (the seed
// balancer); tasks at the threshold solve their subtree sequentially.
// Completion is detected with quiescence detection.
//
// Usage: ./nqueens [N] [threshold] [pes] [ugni|mpi]
// Default: 12-Queens, threshold 4, 64 PEs, uGNI layer.
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "apps/nqueens/parallel.hpp"
#include "apps/nqueens/solver.hpp"

using namespace ugnirt;
using namespace ugnirt::apps::nqueens;

int main(int argc, char** argv) {
  NQueensConfig cfg;
  cfg.n = argc > 1 ? std::atoi(argv[1]) : 12;
  cfg.threshold = argc > 2 ? std::atoi(argv[2]) : 4;

  converse::MachineOptions options;
  options.pes = argc > 3 ? std::atoi(argv[3]) : 64;
  options.layer = (argc > 4 && std::strcmp(argv[4], "mpi") == 0)
                      ? converse::LayerKind::kMpi
                      : converse::LayerKind::kUgni;

  if (cfg.n < 4 || cfg.n > 15) {
    std::fprintf(stderr,
                 "N must be in [4, 15] for exact in-process solving "
                 "(the benchmarks use sampled models beyond that)\n");
    return 1;
  }
  if (cfg.threshold >= cfg.n) cfg.threshold = cfg.n - 1;

  std::printf("%d-Queens, threshold %d, %d PEs, %s machine layer\n", cfg.n,
              cfg.threshold, options.pes,
              options.layer == converse::LayerKind::kUgni ? "uGNI" : "MPI");

  NQueensResult r = run_nqueens(options, cfg);

  std::printf("  solutions : %llu",
              static_cast<unsigned long long>(r.solutions));
  if (cfg.n <= 18) {
    std::printf("  (known: %llu %s)",
                static_cast<unsigned long long>(known_solutions(cfg.n)),
                r.solutions == known_solutions(cfg.n) ? "MATCH" : "MISMATCH");
  }
  std::printf("\n  tasks     : %llu (%s-byte seeds)\n",
              static_cast<unsigned long long>(r.tasks), "88");
  std::printf("  tree nodes: %llu\n",
              static_cast<unsigned long long>(r.nodes));
  std::printf("  time      : %.3f ms of virtual time\n", to_ms(r.elapsed));
  std::printf("  speedup   : %.1fx over one core (%.1f%% efficiency)\n",
              r.speedup, 100.0 * r.speedup / options.pes);
  return r.solutions == known_solutions(cfg.n) ? 0 : 2;
}
