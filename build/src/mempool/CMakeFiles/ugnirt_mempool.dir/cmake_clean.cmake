file(REMOVE_RECURSE
  "CMakeFiles/ugnirt_mempool.dir/mempool.cpp.o"
  "CMakeFiles/ugnirt_mempool.dir/mempool.cpp.o.d"
  "libugnirt_mempool.a"
  "libugnirt_mempool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ugnirt_mempool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
