file(REMOVE_RECURSE
  "libugnirt_mpilite.a"
)
