file(REMOVE_RECURSE
  "CMakeFiles/fig08c_intranode.dir/fig08c_intranode.cpp.o"
  "CMakeFiles/fig08c_intranode.dir/fig08c_intranode.cpp.o.d"
  "fig08c_intranode"
  "fig08c_intranode.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08c_intranode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
