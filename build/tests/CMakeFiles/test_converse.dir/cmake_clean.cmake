file(REMOVE_RECURSE
  "CMakeFiles/test_converse.dir/converse_test.cpp.o"
  "CMakeFiles/test_converse.dir/converse_test.cpp.o.d"
  "test_converse"
  "test_converse.pdb"
  "test_converse[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_converse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
