# Empty dependencies file for dmapp_histogram.
# This may be replaced when dependencies are built.
