// Small-buffer-optimized move-only callable for the engine's event
// callbacks.
//
// Every scheduled event used to carry a std::function<void()>.  That is
// the right type for an API boundary, but the wrong one for a hot loop:
// libstdc++'s inline buffer is 16 bytes, so any capture beyond two
// pointers (a `this` plus a timestamp plus a payload pointer is already
// over) silently heap-allocates — one malloc/free per simulated event,
// millions of times per full-machine sweep.  SmallFn fixes the capacity,
// not the idea: kInlineBytes of in-place storage sized so that every
// in-tree event callback (PE step closures, NIC delivery events, retry
// timers, aggregation deadlines) constructs inline, with a heap fallback
// for oversized captures so correctness never depends on the audit.
//
// The dispatch surface is three raw function pointers (call / relocate /
// destroy) rather than a vtable or a shared ops struct: invoking an event
// is one load + one indirect call, with no second indirection through an
// ops table.  SmallFn is move-only — events are scheduled exactly once
// and the engine is the only owner, so copyability would only invite
// accidental capture copies.
//
// heap_fallbacks() counts oversized constructions process-wide; the event
// arena tests pin it at zero across the in-tree schedulers, which is the
// "no allocation for all in-tree callers" guarantee in executable form.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

namespace ugnirt::sim {

class SmallFn {
 public:
  /// Inline capture capacity.  72 bytes holds a std::function (32), the
  /// fattest in-tree lambda (machine start closures: this + Pe* +
  /// std::function payload = 48), and leaves headroom for a cache-line-
  /// friendly EventRecord (SmallFn + bookkeeping = 128 bytes).
  static constexpr std::size_t kInlineBytes = 72;

  SmallFn() noexcept = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, SmallFn> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  SmallFn(F&& f) {  // NOLINT(google-explicit-constructor): drop-in for
                    // the std::function parameters it replaces
    emplace(std::forward<F>(f));
  }

  SmallFn(SmallFn&& other) noexcept { move_from(other); }
  SmallFn& operator=(SmallFn&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }
  SmallFn(const SmallFn&) = delete;
  SmallFn& operator=(const SmallFn&) = delete;
  ~SmallFn() { reset(); }

  /// Invoke.  Precondition: non-empty.
  void operator()() { call_(buf_); }

  explicit operator bool() const noexcept { return call_ != nullptr; }

  /// Destroy the held callable (no-op when empty).
  void reset() noexcept {
    if (destroy_) destroy_(buf_);
    call_ = nullptr;
    relocate_ = nullptr;
    destroy_ = nullptr;
  }

  /// Process-wide count of constructions that overflowed the inline
  /// buffer.  All in-tree event callbacks fit; tests assert it stays 0.
  static std::uint64_t heap_fallbacks() noexcept {
    return heap_fallbacks_.load(std::memory_order_relaxed);
  }

 private:
  template <typename F>
  void emplace(F&& f) {
    using Fn = std::decay_t<F>;
    if constexpr (sizeof(Fn) <= kInlineBytes &&
                  alignof(Fn) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
      call_ = [](void* p) { (*std::launder(reinterpret_cast<Fn*>(p)))(); };
      relocate_ = [](void* dst, void* src) noexcept {
        Fn* s = std::launder(reinterpret_cast<Fn*>(src));
        ::new (dst) Fn(std::move(*s));
        s->~Fn();
      };
      destroy_ = [](void* p) noexcept {
        std::launder(reinterpret_cast<Fn*>(p))->~Fn();
      };
    } else {
      // Oversized (or throwing-move) capture: own it on the heap, store
      // only the pointer inline.  Correct for any callable; counted so
      // the zero-alloc guarantee stays testable.
      heap_fallbacks_.fetch_add(1, std::memory_order_relaxed);
      Fn* heap = new Fn(std::forward<F>(f));
      std::memcpy(buf_, &heap, sizeof(heap));
      call_ = [](void* p) {
        Fn* h;
        std::memcpy(&h, p, sizeof(h));
        (*h)();
      };
      relocate_ = [](void* dst, void* src) noexcept {
        std::memcpy(dst, src, sizeof(Fn*));
      };
      destroy_ = [](void* p) noexcept {
        Fn* h;
        std::memcpy(&h, p, sizeof(h));
        delete h;
      };
    }
  }

  void move_from(SmallFn& other) noexcept {
    call_ = other.call_;
    relocate_ = other.relocate_;
    destroy_ = other.destroy_;
    if (relocate_) relocate_(buf_, other.buf_);
    other.call_ = nullptr;
    other.relocate_ = nullptr;
    other.destroy_ = nullptr;
  }

  inline static std::atomic<std::uint64_t> heap_fallbacks_{0};

  void (*call_)(void*) = nullptr;
  void (*relocate_)(void*, void*) noexcept = nullptr;
  void (*destroy_)(void*) noexcept = nullptr;
  alignas(std::max_align_t) unsigned char buf_[kInlineBytes];
};

}  // namespace ugnirt::sim
