#include "charm/lb.hpp"

#include <algorithm>
#include <cassert>
#include <numeric>
#include <queue>

namespace ugnirt::charm {

std::vector<double> pe_loads(const std::vector<double>& loads,
                             const std::vector<int>& assignment, int pes) {
  std::vector<double> out(static_cast<std::size_t>(pes), 0.0);
  for (std::size_t i = 0; i < loads.size(); ++i) {
    out[static_cast<std::size_t>(assignment[i])] += loads[i];
  }
  return out;
}

namespace {

double max_of(const std::vector<double>& v) {
  return v.empty() ? 0.0 : *std::max_element(v.begin(), v.end());
}

int count_moves(const std::vector<int>& a, const std::vector<int>& b) {
  int moves = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] != b[i]) ++moves;
  }
  return moves;
}

}  // namespace

LbResult greedy_lb(const std::vector<double>& loads,
                   const std::vector<int>& current, int pes) {
  assert(loads.size() == current.size());
  LbResult r;
  r.max_load_before = max_of(pe_loads(loads, current, pes));

  std::vector<std::size_t> order(loads.size());
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (loads[a] != loads[b]) return loads[a] > loads[b];
    return a < b;  // deterministic ties
  });

  // Min-heap of (pe_load, pe).
  using Slot = std::pair<double, int>;
  std::priority_queue<Slot, std::vector<Slot>, std::greater<>> heap;
  for (int p = 0; p < pes; ++p) heap.emplace(0.0, p);

  r.assignment.assign(loads.size(), 0);
  for (std::size_t i : order) {
    auto [load, pe] = heap.top();
    heap.pop();
    r.assignment[i] = pe;
    heap.emplace(load + loads[i], pe);
  }
  r.max_load_after = max_of(pe_loads(loads, r.assignment, pes));
  r.migrations = count_moves(current, r.assignment);
  return r;
}

LbResult refine_lb(const std::vector<double>& loads,
                   const std::vector<int>& current, int pes,
                   double tolerance) {
  assert(loads.size() == current.size());
  LbResult r;
  r.assignment = current;
  std::vector<double> pl = pe_loads(loads, current, pes);
  r.max_load_before = max_of(pl);

  double total = std::accumulate(pl.begin(), pl.end(), 0.0);
  double target = pes > 0 ? total / pes * tolerance : 0.0;

  // Objects on each PE, heaviest first.
  std::vector<std::vector<std::size_t>> objs(static_cast<std::size_t>(pes));
  for (std::size_t i = 0; i < loads.size(); ++i) {
    objs[static_cast<std::size_t>(current[i])].push_back(i);
  }
  for (auto& v : objs) {
    std::sort(v.begin(), v.end(), [&](std::size_t a, std::size_t b) {
      if (loads[a] != loads[b]) return loads[a] > loads[b];
      return a < b;
    });
  }

  for (int p = 0; p < pes; ++p) {
    auto& mine = objs[static_cast<std::size_t>(p)];
    std::size_t next = 0;
    while (pl[static_cast<std::size_t>(p)] > target && next < mine.size()) {
      std::size_t obj = mine[next++];
      // Lightest-loaded PE that can take it without exceeding the target.
      int best = -1;
      double best_load = target;
      for (int q = 0; q < pes; ++q) {
        if (q == p) continue;
        double after = pl[static_cast<std::size_t>(q)] + loads[obj];
        if (after <= best_load) {
          best_load = after;
          best = q;
        }
      }
      if (best < 0) continue;
      r.assignment[obj] = best;
      pl[static_cast<std::size_t>(p)] -= loads[obj];
      pl[static_cast<std::size_t>(best)] += loads[obj];
    }
  }
  r.max_load_after = max_of(pl);
  r.migrations = count_moves(current, r.assignment);
  return r;
}

}  // namespace ugnirt::charm
