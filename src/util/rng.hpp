// Deterministic pseudo-random number generation.
//
// The simulator must be bit-reproducible across runs, so every stochastic
// decision (seed-balancer target PEs, sampled N-Queens subtrees, synthetic
// workload jitter) draws from an explicitly-seeded xoshiro256** stream.
// Streams are derived per-PE via SplitMix64 so adding a PE never perturbs
// another PE's sequence.
#pragma once

#include <cstdint>

namespace ugnirt {

/// SplitMix64: used to expand a single seed into independent stream seeds.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256**: fast, high-quality generator for simulation decisions.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5eed'cafe'f00d'd00dULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : s_) s = sm.next();
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform in [0, bound) without modulo bias (Lemire's method).
  std::uint32_t next_below(std::uint32_t bound) {
    if (bound == 0) return 0;
    std::uint64_t m =
        static_cast<std::uint64_t>(static_cast<std::uint32_t>(next_u64())) *
        bound;
    std::uint32_t lo = static_cast<std::uint32_t>(m);
    if (lo < bound) {
      const std::uint32_t threshold = (0u - bound) % bound;
      while (lo < threshold) {
        m = static_cast<std::uint64_t>(static_cast<std::uint32_t>(next_u64())) *
            bound;
        lo = static_cast<std::uint32_t>(m);
      }
    }
    return static_cast<std::uint32_t>(m >> 32);
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Exponential variate with the given mean (for synthetic workload jitter).
  double next_exponential(double mean);

  /// Derive an independent stream (e.g. one per PE).
  Rng derive(std::uint64_t stream_id) const {
    SplitMix64 sm(s_[0] ^ (stream_id * 0x9e3779b97f4a7c15ULL) ^ s_[3]);
    Rng r(sm.next());
    return r;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4] = {};
};

}  // namespace ugnirt
