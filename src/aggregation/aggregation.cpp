#include "aggregation/aggregation.hpp"

#include <algorithm>
#include <cassert>
#include <string>

#include "converse/machine.hpp"
#include "converse/message.hpp"
#include "trace/events.hpp"
#include "trace/metrics.hpp"
#include "trace/spans.hpp"

namespace ugnirt::aggregation {

// ---------------------------------------------------------------------------
// AggregationConfig <-> Config ("agg.*" keys / UGNIRT_AGG_* env)
// ---------------------------------------------------------------------------

namespace {
std::string akey(const char* k) { return std::string("agg.") + k; }

constexpr const char* kAggKeys[] = {
    "agg.enable",       "agg.threshold",     "agg.buffer_bytes",
    "agg.max_delay_ns", "agg.flush_on_idle",
};
}  // namespace

AggregationConfig AggregationConfig::from(const Config& cfg) {
  AggregationConfig a;
  a.enable = cfg.get_bool_or(akey("enable"), a.enable);
  a.threshold = static_cast<std::uint32_t>(
      cfg.get_int_or(akey("threshold"), a.threshold));
  a.buffer_bytes = static_cast<std::uint32_t>(
      cfg.get_int_or(akey("buffer_bytes"), a.buffer_bytes));
  a.max_delay_ns = cfg.get_int_or(akey("max_delay_ns"), a.max_delay_ns);
  a.flush_on_idle = cfg.get_bool_or(akey("flush_on_idle"), a.flush_on_idle);
  return a;
}

void AggregationConfig::export_to(Config& cfg) const {
  cfg.set(akey("enable"), enable ? "true" : "false");
  cfg.set(akey("threshold"), std::to_string(threshold));
  cfg.set(akey("buffer_bytes"), std::to_string(buffer_bytes));
  cfg.set(akey("max_delay_ns"), std::to_string(max_delay_ns));
  cfg.set(akey("flush_on_idle"), flush_on_idle ? "true" : "false");
}

const char* const* AggregationConfig::config_keys(std::size_t* count) {
  *count = sizeof(kAggKeys) / sizeof(kAggKeys[0]);
  return kAggKeys;
}

// ---------------------------------------------------------------------------
// Aggregator
// ---------------------------------------------------------------------------

using converse::header_of;
using converse::kCmiHeaderBytes;

Aggregator::Aggregator(converse::Machine& machine,
                       const AggregationConfig& cfg)
    : machine_(machine), cfg_(cfg) {
  per_pe_.resize(static_cast<std::size_t>(machine.num_pes()));
  trace::MetricsRegistry& reg = machine.metrics();
  c_batched_ = &reg.counter("agg.batched");
  c_bypass_ = &reg.counter("agg.bypass");
  c_flushes_ = &reg.counter("agg.flushes");
  c_flush_full_ = &reg.counter("agg.flush_full");
  c_flush_timeout_ = &reg.counter("agg.flush_timeout");
  c_flush_idle_ = &reg.counter("agg.flush_idle");
  s_flush_msgs_ = &reg.stat("agg.flush_size_hist");
  s_flush_bytes_ = &reg.stat("agg.flush_bytes_hist");
}

Aggregator::~Aggregator() {
  // A machine torn down mid-run (Machine::stop from a handler) can leave
  // leased buffers behind; return them so the pool's outstanding count —
  // and LeakSanitizer — stay clean.  Virtual-time charges here land after
  // the run and are harmless.
  for (std::size_t pe = 0; pe < per_pe_.size(); ++pe) {
    for (auto& [dest, buf] : per_pe_[pe].bufs) {
      converse::Pe& owner = machine_.pe(static_cast<int>(pe));
      machine_.layer().free_msg(owner.ctx(), owner, buf.msg);
    }
    per_pe_[pe].bufs.clear();
  }
}

bool Aggregator::enqueue(sim::Context& ctx, converse::Pe& src, int dest_pe,
                         void* msg) {
  PeAgg& pa = per_pe_[static_cast<std::size_t>(src.id())];
  converse::CmiMsgHeader* h = header_of(msg);
  const std::uint32_t len = h->size;

  auto it = pa.bufs.find(dest_pe);
  if (it != pa.bufs.end() && !it->second.writer->fits(len)) {
    ship(ctx, src, dest_pe, it->second, FlushReason::kFull);
    pa.bufs.erase(it);
    it = pa.bufs.end();
  }

  if (it == pa.bufs.end()) {
    // How much one transaction can carry to this destination; 0 means the
    // layer wants the pair left alone (e.g. same-address-space pointer
    // handoff, where packing would add two copies to a zero-copy path).
    const std::uint32_t txn =
        machine_.layer().recommended_batch_bytes(src, dest_pe);
    const std::uint32_t total = std::min(txn, cfg_.buffer_bytes);
    if (total < kCmiHeaderBytes + sizeof(FrameHeader)) {
      c_bypass_->inc();
      return false;
    }
    const std::uint32_t cap =
        total - static_cast<std::uint32_t>(kCmiHeaderBytes);
    if (sizeof(FrameHeader) + record_bytes(len) > cap) {
      // Can never fit even an empty buffer: send it directly.
      c_bypass_->inc();
      return false;
    }
    Buf buf;
    buf.msg = machine_.layer().alloc(ctx, src, total);
    converse::CmiMsgHeader* bh = header_of(buf.msg);
    *bh = converse::CmiMsgHeader{};
    bh->alloc_pe = src.id();
    bh->flags = converse::kMsgFlagSystem | converse::kMsgFlagAggBatch;
    buf.writer.emplace(converse::payload_of(buf.msg), cap);
    buf.deadline = ctx.now() + cfg_.max_delay_ns;
    it = pa.bufs.emplace(dest_pe, buf).first;
    // Arm the flush timer: ensure the owning PE takes a scheduler step at
    // the deadline (run_step calls flush_expired).
    src.wake(buf.deadline);
    // The fixed memcpy startup cost is paid once per batch: successive
    // appends stream into the same warm, pinned buffer, so each item below
    // pays only the per-byte portion.
    ctx.charge(machine_.options().mc.memcpy_base_ns);
  }

  bool ok = it->second.writer->append(msg, len);
  assert(ok && "append must succeed after the fits() check");
  (void)ok;
  const auto& mc = machine_.options().mc;
  ctx.charge(mc.memcpy_cost(len) - mc.memcpy_base_ns);
  c_batched_->inc();
  if (trace::spans_enabled() && h->span_id != 0) {
    trace::span_mark(h->span_id, trace::Stage::kAggEnqueue, src.id(),
                     ctx.now());
  }
  if (!(h->flags & converse::kMsgFlagNoFree)) {
    machine_.layer().free_msg(ctx, src, msg);
  }
  return true;
}

void Aggregator::ship(sim::Context& ctx, converse::Pe& src, int dest_pe,
                      Buf& buf, FlushReason reason) {
  converse::CmiMsgHeader* bh = header_of(buf.msg);
  bh->size =
      static_cast<std::uint32_t>(kCmiHeaderBytes) + buf.writer->bytes();
  bh->src_pe = src.id();

  c_flushes_->inc();
  switch (reason) {
    case FlushReason::kFull:
      c_flush_full_->inc();
      break;
    case FlushReason::kTimeout:
      c_flush_timeout_->inc();
      break;
    case FlushReason::kIdle:
    case FlushReason::kBarrier:
      c_flush_idle_->inc();
      break;
  }
  s_flush_msgs_->add(static_cast<double>(buf.writer->count()));
  s_flush_bytes_->add(static_cast<double>(bh->size));
  if (trace::enabled()) {
    trace::emit(trace::Ev::kAggFlush, ctx.now(), 0, dest_pe, bh->size);
  }
  if (trace::spans_enabled()) {
    // Sampled sub-messages ride inside the frame with their span ids in
    // their packed envelopes; stamp the flush instant on each.
    for_each_submessage(converse::payload_of(buf.msg), buf.writer->bytes(),
                        [&](const void* sub, std::uint32_t) {
                          const std::uint32_t sid = header_of(sub)->span_id;
                          if (sid != 0) {
                            trace::span_mark(sid, trace::Stage::kAggFlush,
                                             src.id(), ctx.now());
                          }
                        });
  }

  converse::SendOptions opts;
  opts.allow_aggregation = false;  // the batch itself must not re-enter
  machine_.layer().submit(ctx, src, dest_pe,
                          converse::MsgView{buf.msg, bh->size}, opts);
}

void Aggregator::flush_dest(sim::Context& ctx, converse::Pe& src,
                            int dest_pe, FlushReason reason) {
  PeAgg& pa = per_pe_[static_cast<std::size_t>(src.id())];
  auto it = pa.bufs.find(dest_pe);
  if (it == pa.bufs.end()) return;
  ship(ctx, src, dest_pe, it->second, reason);
  pa.bufs.erase(it);
}

void Aggregator::flush_expired(sim::Context& ctx, converse::Pe& src) {
  PeAgg& pa = per_pe_[static_cast<std::size_t>(src.id())];
  for (auto it = pa.bufs.begin(); it != pa.bufs.end();) {
    if (it->second.deadline <= ctx.now()) {
      ship(ctx, src, it->first, it->second, FlushReason::kTimeout);
      it = pa.bufs.erase(it);
    } else {
      ++it;
    }
  }
}

void Aggregator::flush_all(sim::Context& ctx, converse::Pe& src,
                           FlushReason reason) {
  PeAgg& pa = per_pe_[static_cast<std::size_t>(src.id())];
  for (auto& [dest, buf] : pa.bufs) {
    ship(ctx, src, dest, buf, reason);
  }
  pa.bufs.clear();
}

SimTime Aggregator::earliest_deadline(int pe_id) const {
  const PeAgg& pa = per_pe_[static_cast<std::size_t>(pe_id)];
  SimTime earliest = kNever;
  for (const auto& [dest, buf] : pa.bufs) {
    earliest = std::min(earliest, buf.deadline);
  }
  return earliest;
}

bool Aggregator::has_pending(int pe_id) const {
  return !per_pe_[static_cast<std::size_t>(pe_id)].bufs.empty();
}

}  // namespace ugnirt::aggregation
