#include "apps/nqueens/subtree_model.hpp"

#include <algorithm>
#include <cassert>

namespace ugnirt::apps::nqueens {

namespace {

struct Prefix {
  std::uint32_t cols, diag_l, diag_r;
};

/// Enumerate all valid placements of the first `depth` rows.
void enumerate(std::uint32_t all, int depth, std::uint32_t cols,
               std::uint32_t diag_l, std::uint32_t diag_r,
               std::vector<Prefix>& out) {
  if (depth == 0) {
    out.push_back(Prefix{cols, diag_l, diag_r});
    return;
  }
  std::uint32_t free = all & ~(cols | diag_l | diag_r);
  while (free) {
    std::uint32_t bit = free & (0u - free);
    free ^= bit;
    enumerate(all, depth - 1, cols | bit, ((diag_l | bit) << 1) & all,
              (diag_r | bit) >> 1, out);
  }
}

/// SplitMix-style avalanche for prefix hashing.
std::uint64_t mix(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

std::uint64_t prefix_key(int row, std::uint32_t cols, std::uint32_t diag_l,
                         std::uint32_t diag_r) {
  std::uint64_t k = static_cast<std::uint64_t>(row);
  k = mix(k ^ (static_cast<std::uint64_t>(cols) << 8));
  k = mix(k ^ (static_cast<std::uint64_t>(diag_l) << 16));
  k = mix(k ^ (static_cast<std::uint64_t>(diag_r) << 24));
  return k;
}

std::unique_ptr<SampledModel> SampledModel::build(int n, int threshold,
                                                  int samples,
                                                  std::uint64_t seed) {
  assert(n >= 1 && n < 32 && threshold >= 1 && threshold < n);
  auto model = std::make_unique<SampledModel>();
  model->n_ = n;
  model->threshold_ = threshold;

  const std::uint32_t all = (1u << n) - 1;
  std::vector<Prefix> prefixes;
  enumerate(all, threshold, 0, 0, 0, prefixes);
  model->prefix_count_ = prefixes.size();
  if (prefixes.empty()) return model;

  // Deterministic sample without replacement (partial Fisher–Yates).
  Rng rng(seed ^ (static_cast<std::uint64_t>(n) << 8) ^
          static_cast<std::uint64_t>(threshold));
  std::size_t k = std::min<std::size_t>(static_cast<std::size_t>(samples),
                                        prefixes.size());
  for (std::size_t i = 0; i < k; ++i) {
    std::size_t j = i + rng.next_below(static_cast<std::uint32_t>(
                            prefixes.size() - i));
    std::swap(prefixes[i], prefixes[j]);
  }

  long double node_sum = 0, sol_sum = 0;
  for (std::size_t i = 0; i < k; ++i) {
    const Prefix& p = prefixes[i];
    SolveResult r = solve(n, threshold, p.cols, p.diag_l, p.diag_r);
    model->sampled_.emplace_back(
        prefix_key(threshold, p.cols, p.diag_l, p.diag_r), r);
    model->empirical_.push_back(r);
    node_sum += static_cast<long double>(r.nodes);
    sol_sum += static_cast<long double>(r.solutions);
  }
  std::sort(model->sampled_.begin(), model->sampled_.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::sort(model->empirical_.begin(), model->empirical_.end(),
            [](const SolveResult& a, const SolveResult& b) {
              return a.nodes < b.nodes;
            });
  model->est_nodes_ = static_cast<std::uint64_t>(
      node_sum / static_cast<long double>(k) *
      static_cast<long double>(prefixes.size()));
  model->est_solutions_ = static_cast<std::uint64_t>(
      sol_sum / static_cast<long double>(k) *
      static_cast<long double>(prefixes.size()));
  return model;
}

SolveResult SampledModel::subtree(int n, int row, std::uint32_t cols,
                                  std::uint32_t diag_l,
                                  std::uint32_t diag_r) const {
  assert(n == n_ && row == threshold_ &&
         "sampled model built for a different (n, threshold)");
  std::uint64_t key = prefix_key(row, cols, diag_l, diag_r);
  auto it = std::lower_bound(
      sampled_.begin(), sampled_.end(), key,
      [](const auto& a, std::uint64_t k) { return a.first < k; });
  if (it != sampled_.end() && it->first == key) return it->second;
  // Unsampled: deterministic draw from the empirical distribution.
  assert(!empirical_.empty());
  std::uint64_t draw = mix(key ^ 0x9e3779b97f4a7c15ULL);
  return empirical_[static_cast<std::size_t>(draw % empirical_.size())];
}

}  // namespace ugnirt::apps::nqueens
