// Figure 12: time profiles (useful compute / runtime overhead / idle) of
// 17-Queens on 384 cores in three configurations (paper §V-C):
//   (a) MPI-based CHARM++, threshold 6
//   (b) MPI-based CHARM++, threshold 7 (worse: communication overhead)
//   (c) uGNI-based CHARM++, threshold 7 (best: fine grains stay cheap)
//
// The paper shows Projections screenshots; this prints per-run aggregates
// and always writes the full per-interval profile as CSV
// (fig12_<case>.csv: time_ms, app_pct, overhead_pct, idle_pct).
#include <fstream>

#include "bench_util.hpp"
#include "nqueens_bench_util.hpp"
#include "trace/tracer.hpp"

using namespace ugnirt;
using namespace ugnirt::apps::nqueens;

int main() {
  benchtool::NqModels models;
  benchtool::Table table("fig12_nqueens_profile", "case");
  table.add_column("time_s");
  table.add_column("useful_pct");
  table.add_column("overhead_pct");
  table.add_column("idle_pct");

  struct Case {
    const char* name;
    converse::LayerKind layer;
    int threshold;
  };
  // "thr6"/"thr7" are the paper's ParSSSE thresholds; our equivalent
  // expansion depths generating the same task-count magnitudes are 4 and 5
  // (see nqueens_bench_util.hpp).
  const int fine = benchtool::nq_threshold(17);
  const Case cases[] = {
      {"MPI_thr6", converse::LayerKind::kMpi, fine - 1},
      {"MPI_thr7", converse::LayerKind::kMpi, fine},
      {"uGNI_thr7", converse::LayerKind::kUgni, fine},
  };

  for (const Case& c : cases) {
    converse::MachineOptions o;
    o.pes = 384;
    o.layer = c.layer;
    NQueensConfig cfg;
    cfg.n = 17;
    cfg.threshold = c.threshold;
    cfg.model = models.get(17, c.threshold);
    trace::Tracer tracer(/*bin=*/500'000);  // 0.5 ms intervals
    NQueensResult r = run_nqueens(o, cfg, &tracer);
    table.add_row(c.name, {to_s(r.elapsed), tracer.total_app_pct(),
                           tracer.total_overhead_pct(),
                           tracer.total_idle_pct()});
    std::ofstream csv(std::string("fig12_") + c.name + ".csv");
    tracer.write_csv(csv);
    std::printf("  [%s] tasks=%llu solutions=%llu -> fig12_%s.csv\n", c.name,
                static_cast<unsigned long long>(r.tasks),
                static_cast<unsigned long long>(r.solutions), c.name);
    std::fflush(stdout);
  }
  table.print();
  std::printf("Paper shape: MPI/thr6 shows an idle tail (load imbalance);\n"
              "MPI/thr7 trades idle for heavy black overhead; uGNI/thr7\n"
              "keeps overhead small AND the tail short.\n");
  return 0;
}
