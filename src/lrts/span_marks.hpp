// Batch-aware span stamping shared by the machine layers.
//
// A message handed to a layer is either a plain Converse envelope or an
// aggregation batch (kMsgFlagAggBatch) whose payload packs many envelopes;
// sampled sub-messages keep their span ids inside the packed frames, so a
// transport-level event (post, wire arrival, completion) must fan the stamp
// out to every rider.  Callers gate on trace::spans_enabled() so the
// disabled path costs one inline pointer test.
#pragma once

#include "aggregation/frame.hpp"
#include "converse/message.hpp"
#include "sim/engine.hpp"
#include "trace/spans.hpp"

namespace ugnirt::lrts {

inline void mark_msg_spans(const void* msg, trace::Stage stage, int pe,
                           SimTime t) {
  const converse::CmiMsgHeader* h = converse::header_of(msg);
  if (h->flags & converse::kMsgFlagAggBatch) {
    aggregation::for_each_submessage(
        converse::payload_of(msg),
        h->size - static_cast<std::uint32_t>(converse::kCmiHeaderBytes),
        [&](const void* sub, std::uint32_t) {
          const std::uint32_t sid = converse::header_of(sub)->span_id;
          if (sid != 0) trace::span_mark(sid, stage, pe, t);
        });
    return;
  }
  if (h->span_id != 0) trace::span_mark(h->span_id, stage, pe, t);
}

}  // namespace ugnirt::lrts
