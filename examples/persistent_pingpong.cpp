// Persistent messages (paper §IV-A): set up a persistent channel once,
// then send fixed-size messages through it (ack-paced, as a real iterative
// application would) and compare with plain rendezvous sends — the two
// protocols of Figures 5 and 7(a).
//
// Usage: ./persistent_pingpong [payload_bytes]
#include <cassert>
#include <cstdio>
#include <cstdlib>

#include "converse/machine.hpp"
#include "lrts/runtime.hpp"

using namespace ugnirt;
using namespace ugnirt::converse;

namespace {

SimTime run(bool persistent, std::uint32_t payload, int count) {
  MachineOptions options;
  options.pes = 2;
  options.pes_per_node = 1;
  // Compare against the pre-pool runtime, as the paper's Fig 8(a) does:
  // each plain rendezvous then pays malloc+registration on both sides.
  options.use_mempool = false;

  auto machine = lrts::make_machine(LayerKind::kUgni, options);
  const std::uint32_t total = payload + kCmiHeaderBytes;
  const std::uint32_t ack_total = kCmiHeaderBytes + 8;
  int received = 0;
  SimTime done = 0;
  PersistentHandle channel;
  void* reusable = nullptr;
  int data_handler = -1, ack_handler = -1;

  auto send_data = [&] {
    if (persistent) {
      CmiSetHandler(reusable, data_handler);
      Machine::running()->send_persistent(channel, reusable);
    } else {
      void* msg = CmiAlloc(total);
      CmiSetHandler(msg, data_handler);
      CmiSyncSendAndFree(1, total, msg);
    }
  };

  data_handler = machine->register_handler([&](void* msg) {
    CmiFree(msg);  // no-op for the runtime-owned persistent landing buffer
    void* ack = CmiAlloc(ack_total);
    CmiSetHandler(ack, ack_handler);
    CmiSyncSendAndFree(0, ack_total, ack);
  });
  ack_handler = machine->register_handler([&](void* msg) {
    CmiFree(msg);
    if (++received == count) {
      done = Machine::running()->current_pe().ctx().now();
      return;
    }
    send_data();
  });

  machine->start(0, [&] {
    if (persistent) {
      // LrtsCreatePersistent: the receiver pre-allocates a registered
      // landing buffer; every send becomes one PUT + one notify (Fig 7a).
      channel = Machine::running()->create_persistent(1, total);
      assert(channel.valid());
      reusable = CmiAlloc(total);
      header_of(reusable)->flags |= kMsgFlagNoFree;  // app-owned buffer
    }
    send_data();
  });
  machine->run();
  return done;
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint32_t payload =
      argc > 1 ? static_cast<std::uint32_t>(std::atol(argv[1])) : 65536;
  const int count = 16;

  SimTime plain = run(false, payload, count);
  SimTime persist = run(true, payload, count);

  std::printf("%d ack-paced %u-byte messages over one channel:\n", count,
              payload);
  std::printf("  plain rendezvous : %10.3f us\n", to_us(plain));
  std::printf("  persistent       : %10.3f us\n", to_us(persist));
  std::printf("  improvement      : %10.1f%%\n",
              100.0 * (1.0 - static_cast<double>(persist) /
                                 static_cast<double>(plain)));
  std::printf("\nPersistent channels drop the INIT_TAG control message and\n"
              "all per-message registration: Tcost = Trdma + Tsmsg.\n");
  return persist < plain ? 0 : 2;
}
