file(REMOVE_RECURSE
  "libugnirt_topo.a"
)
