# Empty compiler generated dependencies file for test_dmapp.
# This may be replaced when dependencies are built.
