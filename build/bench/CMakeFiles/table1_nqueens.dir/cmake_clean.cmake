file(REMOVE_RECURSE
  "CMakeFiles/table1_nqueens.dir/table1_nqueens.cpp.o"
  "CMakeFiles/table1_nqueens.dir/table1_nqueens.cpp.o.d"
  "table1_nqueens"
  "table1_nqueens.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_nqueens.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
