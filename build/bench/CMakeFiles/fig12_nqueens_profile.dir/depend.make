# Empty dependencies file for fig12_nqueens_profile.
# This may be replaced when dependencies are built.
