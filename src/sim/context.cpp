#include "sim/context.hpp"
#include <cstdio>
#include <cstdlib>

#include "util/log.hpp"

namespace ugnirt::sim {

namespace {
Context* g_current = nullptr;

bool log_context(long long* t_ns, int* pe) {
  if (!g_current) return false;
  *t_ns = static_cast<long long>(g_current->now());
  *pe = g_current->pe();
  return true;
}

// Wire the logger's time/PE prefix to the active simulation context as
// soon as this translation unit is loaded.
struct LogContextInstaller {
  LogContextInstaller() { set_log_context_provider(&log_context); }
} g_log_context_installer;
}  // namespace

Context* current() { return g_current; }

ScopedContext::ScopedContext(Context& ctx) : prev_(g_current) {
  g_current = &ctx;
}

ScopedContext::~ScopedContext() { g_current = prev_; }


void Context::charge(SimTime ns) {
  assert(ns >= 0);
  if (ns > 500000 && ::getenv("UGNIRT_WAITDBG")) {
    std::fprintf(stderr, "BIGCHARGE pe=%d %lld us\n", pe_, (long long)ns / 1000);
  }
  cursor_ += ns;
  overhead_total_ += ns;
}

}  // namespace ugnirt::sim

namespace ugnirt::sim {
void Context::wait_until(SimTime t) {
  if (t > cursor_) {
    if (t - cursor_ > 500000 && ::getenv("UGNIRT_WAITDBG")) {
      std::fprintf(stderr, "BIGWAIT pe=%d %lld us\n", pe_,
                   (long long)(t - cursor_) / 1000);
    }
    overhead_total_ += t - cursor_;
    cursor_ = t;
  }
}
}  // namespace ugnirt::sim
