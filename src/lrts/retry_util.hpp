// Retry/backoff helpers shared by the LRTS machine layers.
//
// All three layers recover from the same transient uGNI failures the same
// way: retry with exponential backoff in virtual time, escalate (log +
// count) once the polite phase of the RetryPolicy is exhausted, then keep
// retrying at the capped interval — the injected fault processes are
// transient by construction, so persistence preserves the zero-loss
// guarantee the fault-matrix tests assert.  A hard cap of ~1000 attempts
// turns a permanently-failing call (p = 1.0 misconfiguration) into a loud
// abort instead of an unbounded virtual-time spin.
#pragma once

#include <cstdint>

#include "fault/retry.hpp"
#include "trace/metrics.hpp"
#include "ugni/ugni.hpp"

namespace ugnirt::lrts::detail {

/// Counters a retry loop reports into (any may be nullptr).
struct RetryCounters {
  trace::Counter* retries = nullptr;
  trace::Counter* escalations = nullptr;
};

/// GNI_MemRegister with backoff on GNI_RC_ERROR_RESOURCE.  Returns
/// GNI_RC_SUCCESS (eventually) or aborts via ugni::check on a contract
/// violation / permanent failure.
ugni::gni_return_t register_with_retry(
    sim::Context& ctx, const fault::RetryPolicy& policy,
    ugni::gni_nic_handle_t nic, std::uint64_t addr, std::uint64_t len,
    ugni::gni_cq_handle_t dst_cq, ugni::gni_mem_handle_t* hndl_out,
    const RetryCounters& n);

/// GNI_PostFma / GNI_PostRdma with backoff on GNI_RC_TRANSACTION_ERROR.
ugni::gni_return_t post_with_retry(sim::Context& ctx,
                                   const fault::RetryPolicy& policy,
                                   ugni::gni_ep_handle_t ep,
                                   ugni::gni_post_descriptor_t* desc,
                                   bool is_rdma, const RetryCounters& n);

/// Handle a GNI_RC_ERROR_RESOURCE from a CQ poll: run GNI_CqErrorRecover
/// and count the recovery.  Returns the number of re-synthesized events.
std::uint32_t recover_cq(ugni::gni_cq_handle_t cq, trace::Counter* recovered);

}  // namespace ugnirt::lrts::detail
