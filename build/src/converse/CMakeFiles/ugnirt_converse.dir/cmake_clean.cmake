file(REMOVE_RECURSE
  "CMakeFiles/ugnirt_converse.dir/machine.cpp.o"
  "CMakeFiles/ugnirt_converse.dir/machine.cpp.o.d"
  "libugnirt_converse.a"
  "libugnirt_converse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ugnirt_converse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
