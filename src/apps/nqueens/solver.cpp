#include "apps/nqueens/solver.hpp"

#include <cassert>

namespace ugnirt::apps::nqueens {

namespace {

struct Counter {
  std::uint64_t solutions = 0;
  std::uint64_t nodes = 0;
};

void descend(std::uint32_t all, int rows_left, std::uint32_t cols,
             std::uint32_t diag_l, std::uint32_t diag_r, Counter& c) {
  ++c.nodes;
  if (rows_left == 0) {
    ++c.solutions;
    return;
  }
  std::uint32_t free = all & ~(cols | diag_l | diag_r);
  while (free) {
    std::uint32_t bit = free & (0u - free);  // lowest set bit
    free ^= bit;
    descend(all, rows_left - 1, cols | bit, ((diag_l | bit) << 1) & all,
            (diag_r | bit) >> 1, c);
  }
}

}  // namespace

SolveResult solve(int n, int row, std::uint32_t cols, std::uint32_t diag_l,
                  std::uint32_t diag_r) {
  assert(n >= 1 && n < 32);
  assert(row >= 0 && row <= n);
  const std::uint32_t all = (n == 31) ? 0x7fffffffu : ((1u << n) - 1);
  Counter c;
  descend(all, n - row, cols & all, diag_l & all, diag_r & all, c);
  SolveResult r;
  r.solutions = c.solutions;
  r.nodes = c.nodes;  // descend() calls == visited placements (root incl.)
  return r;
}

SolveResult solve_all(int n) { return solve(n, 0, 0, 0, 0); }

std::uint64_t known_solutions(int n) {
  // OEIS A000170.
  static constexpr std::uint64_t kCounts[] = {
      0,          1,         0,        0,       2,       10,
      4,          40,        92,       352,     724,     2680,
      14200,      73712,     365596,   2279184, 14772512, 95815104,
      666090624};
  assert(n >= 1 && n <= 18);
  return kCounts[n];
}

}  // namespace ugnirt::apps::nqueens
