// Figure 9(b): bandwidth of uGNI-based vs MPI-based CHARM++,
// 16 KiB .. 4 MiB (paper §V-A).
#include "apps/microbench/microbench.hpp"
#include "bench_util.hpp"

using namespace ugnirt;
using namespace ugnirt::apps;

int main() {
  benchtool::Table table("fig09b_bandwidth", "msg_bytes");
  table.add_column("uGNI_CHARM_MBps");
  table.add_column("MPI_CHARM_MBps");

  converse::MachineOptions ugni_charm;
  ugni_charm.layer = converse::LayerKind::kUgni;
  ugni_charm.pes_per_node = 1;
  converse::MachineOptions mpi_charm = ugni_charm;
  mpi_charm.layer = converse::LayerKind::kMpi;

  for (std::uint64_t size : benchtool::size_sweep(16 * 1024, 4 * 1024 * 1024)) {
    table.add_row(benchtool::size_label(size),
                  {bench::charm_bandwidth(ugni_charm,
                                          static_cast<std::uint32_t>(size)),
                   bench::charm_bandwidth(mpi_charm,
                                          static_cast<std::uint32_t>(size))});
  }
  table.print();
  std::printf("Paper shape: a gap below ~1 MiB (MPI layer overhead), with\n"
              "both converging toward ~6 GB/s at 4 MiB.\n");
  return 0;
}
