// Shared plumbing for the per-figure/per-table benchmark binaries.
//
// Every binary prints a human-readable table shaped like the paper's plot
// (one row per x-value, one column per curve) and, when UGNIRT_CSV=1,
// additionally writes `<bench>.csv` next to the working directory.
// UGNIRT_JSON=1 additionally writes `<bench>.json` (same rows, keyed by
// column label) for machine consumers such as tools/bench_report.py.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "trace/session.hpp"
#include "util/units.hpp"

namespace ugnirt::benchtool {

inline bool csv_enabled() {
  const char* v = std::getenv("UGNIRT_CSV");
  return v && v[0] == '1';
}

inline bool json_enabled() {
  const char* v = std::getenv("UGNIRT_JSON");
  return v && v[0] == '1';
}

inline void json_escape_to(std::ostream& out, const std::string& s) {
  for (char c : s) {
    if (c == '"' || c == '\\') out << '\\';
    out << c;
  }
}

/// Column-oriented result table; prints aligned text and optional CSV.
class Table {
 public:
  Table(std::string name, std::string x_label)
      : name_(std::move(name)), x_label_(std::move(x_label)) {
    // When UGNIRT_TRACE is on, name the trace output after the benchmark so
    // each figure gets its own <name>.trace.json / .metrics.csv set.
    if (trace::TraceSession* session = trace::TraceSession::active())
      session->set_output_base(name_);
  }

  void add_column(std::string label) { columns_.push_back(std::move(label)); }

  void add_row(std::string x, const std::vector<double>& values) {
    rows_.push_back({std::move(x), values});
  }

  void print() const {
    std::printf("== %s ==\n", name_.c_str());
    std::printf("%-12s", x_label_.c_str());
    for (const auto& c : columns_) std::printf(" %16s", c.c_str());
    std::printf("\n");
    for (const auto& row : rows_) {
      std::printf("%-12s", row.x.c_str());
      for (double v : row.values) std::printf(" %16.3f", v);
      std::printf("\n");
    }
    std::printf("\n");
    if (csv_enabled()) write_csv();
    if (json_enabled()) write_json(name_ + ".json");
  }

  /// Machine-readable dump: one object per row, values keyed by column
  /// label.  `{"name": ..., "x_label": ..., "rows": [{"x": "32", "values":
  /// {"col": 1.25, ...}}, ...]}`.
  void write_json(const std::string& path) const {
    std::ofstream out(path);
    out << "{\"name\":\"";
    json_escape_to(out, name_);
    out << "\",\"x_label\":\"";
    json_escape_to(out, x_label_);
    out << "\",\"rows\":[";
    for (std::size_t r = 0; r < rows_.size(); ++r) {
      if (r) out << ',';
      out << "{\"x\":\"";
      json_escape_to(out, rows_[r].x);
      out << "\",\"values\":{";
      for (std::size_t c = 0;
           c < rows_[r].values.size() && c < columns_.size(); ++c) {
        if (c) out << ',';
        out << '"';
        json_escape_to(out, columns_[c]);
        char buf[40];
        std::snprintf(buf, sizeof(buf), "%.9g", rows_[r].values[c]);
        out << "\":" << buf;
      }
      out << "}}";
    }
    out << "]}\n";
  }

 private:
  void write_csv() const {
    std::ofstream out(name_ + ".csv");
    out << x_label_;
    for (const auto& c : columns_) out << ',' << c;
    out << '\n';
    for (const auto& row : rows_) {
      out << row.x;
      for (double v : row.values) out << ',' << v;
      out << '\n';
    }
  }

  struct Row {
    std::string x;
    std::vector<double> values;
  };
  std::string name_;
  std::string x_label_;
  std::vector<std::string> columns_;
  std::vector<Row> rows_;
};

inline std::string size_label(std::uint64_t bytes) {
  char buf[32];
  if (bytes >= 1024 * 1024 && bytes % (1024 * 1024) == 0) {
    std::snprintf(buf, sizeof(buf), "%lluM",
                  static_cast<unsigned long long>(bytes / (1024 * 1024)));
  } else if (bytes >= 1024 && bytes % 1024 == 0) {
    std::snprintf(buf, sizeof(buf), "%lluK",
                  static_cast<unsigned long long>(bytes / 1024));
  } else {
    std::snprintf(buf, sizeof(buf), "%llu",
                  static_cast<unsigned long long>(bytes));
  }
  return buf;
}

/// Geometric size sweep [lo, hi], factor 2.
inline std::vector<std::uint64_t> size_sweep(std::uint64_t lo,
                                             std::uint64_t hi) {
  std::vector<std::uint64_t> out;
  for (std::uint64_t s = lo; s <= hi; s *= 2) out.push_back(s);
  return out;
}

}  // namespace ugnirt::benchtool
