file(REMOVE_RECURSE
  "CMakeFiles/fig01_pingpong_layers.dir/fig01_pingpong_layers.cpp.o"
  "CMakeFiles/fig01_pingpong_layers.dir/fig01_pingpong_layers.cpp.o.d"
  "fig01_pingpong_layers"
  "fig01_pingpong_layers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_pingpong_layers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
