// The MPI-based LRTS machine layer — the paper's baseline.
//
// Converse runs on (simulated Cray) MPI exactly as the pre-Gemini CHARM++
// port did:
//   * LrtsSyncSend -> MPI_Isend of the CHARM++ buffer (tagged); eager sends
//     copy into MPI's internal space, rendezvous sends pin the buffer until
//     the ACK (the extra copies / registration the paper §I blames).
//   * LrtsNetworkEngine -> MPI_Iprobe(ANY_SOURCE) loop; every probe hit
//     mallocs a fresh CHARM++ buffer and calls *blocking* MPI_Recv into it.
//     For rendezvous messages that receive stalls the progress engine for
//     the whole transfer — the behavior the paper observes makes kNeighbor
//     on MPI twice as slow (§V-B).
#pragma once

#include <memory>
#include <vector>

#include "converse/machine.hpp"
#include "mpilite/mpilite.hpp"

namespace ugnirt::lrts {

class MpiLayer final : public converse::MachineLayer {
 public:
  MpiLayer() = default;
  ~MpiLayer() override;

  const char* name() const override { return "MPI"; }

  void init_pe(converse::Pe& pe) override;
  void* alloc(sim::Context& ctx, converse::Pe& pe, std::size_t bytes) override;
  void free_msg(sim::Context& ctx, converse::Pe& pe, void* msg) override;
  void submit(sim::Context& ctx, converse::Pe& src, int dest_pe,
              converse::MsgView msg,
              const converse::SendOptions& opts) override;
  std::uint32_t recommended_batch_bytes(converse::Pe& src,
                                        int dest_pe) const override;
  void advance(sim::Context& ctx, converse::Pe& pe) override;
  bool has_backlog(const converse::Pe& pe) const override;

  mpilite::MpiComm* comm() { return comm_.get(); }

  void collect_metrics(trace::MetricsRegistry& reg) override;

 private:
  struct PeState;
  PeState& state(converse::Pe& pe);
  void ensure_comm(converse::Machine& m);

  converse::Machine* machine_ = nullptr;
  std::unique_ptr<mpilite::MpiComm> comm_;
};

}  // namespace ugnirt::lrts
