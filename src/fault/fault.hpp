// Deterministic, seeded fault injection for the simulated Gemini stack.
//
// A FaultInjector sits between the uGNI emulation / network model and the
// machine layers and can force every transient failure mode the paper's
// runtime has to survive on real hardware:
//
//   * GNI_RC_TRANSACTION_ERROR on FMA/BTE posts (link-level CRC retry
//     exhaustion — the initiator must re-post);
//   * GNI_RC_ERROR_RESOURCE on GNI_MemRegister (MDD/TLB entries exhausted);
//   * GNI_RC_ERROR_RESOURCE on GNI_SmsgSendWTag (SSID pool exhausted);
//   * CQ overruns (an event is dropped and the CQ latches overrun until
//     the owner runs GNI_CqErrorRecover);
//   * SMSG credit-starvation windows (a peer's mailbox stays "full" for a
//     span of virtual time — sends see GNI_RC_NOT_DONE);
//   * per-link degradation (bandwidth cut by `link_slowdown`) and
//     blackouts (the route is unavailable; transfers queue behind the
//     blackout) inside gemini::Network.
//
// Determinism: every injection site draws from its own Rng stream derived
// from (plan.seed, site, actor), so the decision sequence seen by one NIC
// or link never depends on how other actors interleave.  Same seed + same
// workload => identical fault schedule => identical event trace.
//
// Config keys live under "fault.*" and are overridable via UGNIRT_FAULT_*
// environment variables; `lrts::make_machine` applies them automatically.
#pragma once

#include <cstdint>
#include <map>

#include "fault/retry.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace ugnirt::trace {
class MetricsRegistry;
}

namespace ugnirt::fault {

struct FaultPlan {
  /// Master switch; when false the injector is never installed and every
  /// fault path costs a single null-pointer test.
  bool enabled = false;
  /// Seed for all injection streams (independent of the workload seed so
  /// the same traffic can be replayed under a different fault schedule).
  std::uint64_t seed = 0xFA17;

  /// P(transient GNI_RC_TRANSACTION_ERROR) per FMA/BTE post.
  double p_post_error = 0.0;
  /// P(GNI_RC_ERROR_RESOURCE) per GNI_MemRegister call.
  double p_reg_error = 0.0;
  /// P(GNI_RC_ERROR_RESOURCE) per GNI_SmsgSendWTag call.
  double p_smsg_error = 0.0;
  /// P(forced drop + overrun latch) per CQ event delivery.
  double p_cq_overrun = 0.0;

  /// P(a send opens a credit-starvation window on its channel).
  double p_smsg_starve = 0.0;
  /// Length of a starvation window, virtual ns.
  SimTime smsg_starve_ns = 20000;

  /// P(a transfer opens a degraded window on its route).
  double p_link_degrade = 0.0;
  /// Bandwidth divisor while a route is degraded.
  double link_slowdown = 4.0;
  /// Length of a degraded window, virtual ns.
  SimTime link_degrade_ns = 50000;
  /// P(a transfer opens a blackout window on its route).
  double p_link_blackout = 0.0;
  /// Length of a blackout window, virtual ns.
  SimTime link_blackout_ns = 100000;

  /// True when any probability is nonzero (the plan can actually fire).
  bool any() const {
    return p_post_error > 0 || p_reg_error > 0 || p_smsg_error > 0 ||
           p_cq_overrun > 0 || p_smsg_starve > 0 || p_link_degrade > 0 ||
           p_link_blackout > 0;
  }

  /// Read "fault.*" keys, falling back to the defaults above.
  static FaultPlan from(const Config& cfg);
  /// Write every knob back as "fault.*" (for env-override round trips).
  void export_to(Config& cfg) const;
  /// The "fault.*" key list, for Config::apply_env_overrides.
  static const char* const* config_keys(std::size_t* count);
};

/// What a link fault does to one transfer: wait out `delay` ns before the
/// route can be reserved, then move bytes `slowdown`x slower.
struct LinkFault {
  SimTime delay = 0;
  double slowdown = 1.0;
};

class FaultInjector {
 public:
  explicit FaultInjector(const FaultPlan& plan);

  const FaultPlan& plan() const { return plan_; }

  /// Per-call Bernoulli draws, one independent stream per (site, NIC).
  bool inject_post_error(std::int32_t inst);
  bool inject_reg_error(std::int32_t inst);
  bool inject_smsg_error(std::int32_t inst);
  bool inject_cq_overrun(std::int32_t inst);

  /// True while the (inst -> peer) SMSG channel is inside a starvation
  /// window; each call may also open a new window.
  bool smsg_starved(std::int32_t inst, std::int32_t peer, SimTime now);

  /// Degradation/blackout state of the directed route from -> to at `now`;
  /// each call may open a new window.
  LinkFault link_fault(int from_node, int to_node, SimTime now);

  /// Publish "fault.*" counters (faults *injected*; the layers publish
  /// what they *recovered*).
  void collect_metrics(trace::MetricsRegistry& reg) const;

  std::uint64_t injected_total() const;

 private:
  enum Site : std::uint64_t {
    kSitePost = 1,
    kSiteReg,
    kSiteSmsgError,
    kSiteCq,
    kSiteStarve,
    kSiteLink,
  };

  Rng& stream(Site site, std::uint64_t actor);
  bool draw(Site site, std::uint64_t actor, double p);

  struct LinkState {
    SimTime degraded_until = 0;
    SimTime blackout_until = 0;
  };

  FaultPlan plan_;
  Rng base_;
  // std::map keeps iteration (metrics, debugging) deterministic.
  std::map<std::uint64_t, Rng> streams_;
  std::map<std::uint64_t, SimTime> starve_until_;
  std::map<std::uint64_t, LinkState> links_;

  struct {
    std::uint64_t post_errors = 0;
    std::uint64_t reg_errors = 0;
    std::uint64_t smsg_errors = 0;
    std::uint64_t cq_overruns = 0;
    std::uint64_t starve_windows = 0;
    std::uint64_t starved_sends = 0;
    std::uint64_t degrade_windows = 0;
    std::uint64_t blackout_windows = 0;
  } n_;
};

}  // namespace ugnirt::fault
