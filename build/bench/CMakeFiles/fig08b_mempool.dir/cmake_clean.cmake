file(REMOVE_RECURSE
  "CMakeFiles/fig08b_mempool.dir/fig08b_mempool.cpp.o"
  "CMakeFiles/fig08b_mempool.dir/fig08b_mempool.cpp.o.d"
  "fig08b_mempool"
  "fig08b_mempool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08b_mempool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
