file(REMOVE_RECURSE
  "CMakeFiles/ugnirt_lrts.dir/__/lrts/mpi_layer.cpp.o"
  "CMakeFiles/ugnirt_lrts.dir/__/lrts/mpi_layer.cpp.o.d"
  "CMakeFiles/ugnirt_lrts.dir/__/lrts/runtime.cpp.o"
  "CMakeFiles/ugnirt_lrts.dir/__/lrts/runtime.cpp.o.d"
  "CMakeFiles/ugnirt_lrts.dir/__/lrts/smp_layer.cpp.o"
  "CMakeFiles/ugnirt_lrts.dir/__/lrts/smp_layer.cpp.o.d"
  "CMakeFiles/ugnirt_lrts.dir/__/lrts/ugni_layer.cpp.o"
  "CMakeFiles/ugnirt_lrts.dir/__/lrts/ugni_layer.cpp.o.d"
  "libugnirt_lrts.a"
  "libugnirt_lrts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ugnirt_lrts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
