file(REMOVE_RECURSE
  "CMakeFiles/ablation_smsg_memory.dir/ablation_smsg_memory.cpp.o"
  "CMakeFiles/ablation_smsg_memory.dir/ablation_smsg_memory.cpp.o.d"
  "ablation_smsg_memory"
  "ablation_smsg_memory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_smsg_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
