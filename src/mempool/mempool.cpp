#include "mempool/mempool.hpp"

#include <bit>
#include <cassert>
#include <stdexcept>

#include "trace/events.hpp"
#include "util/log.hpp"

namespace ugnirt::mempool {

namespace {

sim::Context& ctx() {
  sim::Context* c = sim::current();
  assert(c && "MemPool calls must run inside a simulated PE context");
  return *c;
}

}  // namespace

MemPool::MemPool(ugni::gni_nic_handle_t nic, std::uint64_t initial_bytes)
    : nic_(nic) {
  add_slab(initial_bytes);
}

MemPool::~MemPool() {
  // Slabs deregister with the NIC; charge nothing (teardown is outside the
  // measured protocol paths).
  for (auto& slab : slabs_) {
    if (sim::current()) {
      ugni::GNI_MemDeregister(nic_, &slab.handle);
    }
  }
}

std::size_t MemPool::bin_of(std::size_t bytes) {
  std::size_t need = bytes < kMinBlock ? kMinBlock : std::bit_ceil(bytes);
  if (need > kMaxBlock) {
    throw std::length_error("MemPool: allocation exceeds max block size");
  }
  return static_cast<std::size_t>(std::countr_zero(need)) -
         static_cast<std::size_t>(std::countr_zero(kMinBlock));
}

std::size_t MemPool::bin_block_size(std::size_t bin) {
  return kMinBlock << bin;
}

std::size_t MemPool::usable_size(std::size_t bytes) {
  return bin_block_size(bin_of(bytes));
}

bool MemPool::add_slab(std::size_t min_bytes) {
  // Grow geometrically, and always leave room for several blocks of the
  // triggering size so steady-state traffic of one size class stops
  // expanding after one or two slabs (each expansion pays registration).
  std::size_t size = slabs_.empty() ? min_bytes : slabs_.back().size * 2;
  if (size < 4 * min_bytes) size = std::bit_ceil(4 * min_bytes);
  if (size < kMinBlock + kHeaderSize) size = 4096;

  const auto& mc = nic_->domain()->config();
  sim::Context& c = ctx();
  c.charge(mc.malloc_cost(size));

  Slab slab;
  // Default-initialized (new[] without value-init): make_unique would
  // memset the whole slab, and at full-machine scale (150k pools x
  // geometric slabs, tens of GB) that zeroing dominated host CPU.  Block
  // headers are written on carve; payload bytes are caller-owned.
  slab.memory.reset(new std::uint8_t[size]);
  slab.size = size;
  ugni::gni_return_t rc = ugni::GNI_MemRegister(
      nic_, reinterpret_cast<std::uint64_t>(slab.memory.get()), size,
      /*dst_cq=*/nullptr, 0, &slab.handle);
  if (rc != ugni::GNI_RC_SUCCESS) {
    // Registration refused (MDD/TLB pressure, or an injected fault): the
    // allocation that triggered the expansion falls back to the caller's
    // heap path; the pool itself stays usable with its existing slabs.
    UGNIRT_WARN("mempool slab registration failed (rc=" << rc << ", "
                                                        << size << " B)");
    return false;
  }
  slabs_.push_back(std::move(slab));
  stats_.slab_bytes += size;
  ++stats_.expansions;
  if (trace::enabled()) {
    trace::emit(trace::Ev::kPoolExpand, ctx().now(), 0, /*peer=*/-1,
                static_cast<std::uint32_t>(size));
  }
  UGNIRT_DEBUG("mempool slab +" << size << " B (total "
                                << stats_.slab_bytes << " B, "
                                << stats_.expansions << " expansions)");
  return true;
}

void* MemPool::carve(std::size_t bin, std::size_t block) {
  const std::size_t need = block + kHeaderSize;
  // Find a slab with room (newest first: older slabs are likely full).
  for (std::size_t i = slabs_.size(); i-- > 0;) {
    Slab& slab = slabs_[i];
    if (slab.size - slab.used >= need) {
      std::uint8_t* base = slab.memory.get() + slab.used;
      slab.used += need;
      Header* h = reinterpret_cast<Header*>(base);
      h->bin = static_cast<std::uint16_t>(bin);
      h->slab = static_cast<std::uint16_t>(i);
      h->magic = kMagicLive;
      return base + kHeaderSize;
    }
  }
  if (!add_slab(need)) return nullptr;
  return carve(bin, block);
}

void* MemPool::alloc(std::size_t bytes) {
  const auto& mc = nic_->domain()->config();
  ctx().charge(mc.mempool_alloc_ns);
  std::size_t bin = bin_of(bytes);
  // The size class resolves in O(1) (bit_ceil + countr_zero, no search);
  // the counter lets tests and the registry assert the fast path held
  // (bin_lookups == allocs: never more than one resolution per alloc).
  ++stats_.bin_lookups;
  ++stats_.allocs;
  ++stats_.outstanding;
  if (void* p = free_head_[bin]) {
    Header* h = header_of(p);
    free_head_[bin] = h->next_free;
    h->next_free = nullptr;
    h->magic = kMagicLive;
    ++stats_.freelist_hits;
    if (trace::enabled()) {
      trace::emit(trace::Ev::kPoolHit, ctx().now(), 0, /*peer=*/-1,
                  static_cast<std::uint32_t>(bytes));
    }
    return p;
  }
  if (trace::enabled()) {
    trace::emit(trace::Ev::kPoolMiss, ctx().now(), 0, /*peer=*/-1,
                static_cast<std::uint32_t>(bytes));
  }
  void* p = carve(bin, bin_block_size(bin));
  if (!p) {
    --stats_.allocs;
    --stats_.outstanding;
  }
  return p;
}

void MemPool::free(void* p) {
  const auto& mc = nic_->domain()->config();
  ctx().charge(mc.mempool_free_ns);
  Header* h = header_of(p);
  assert(h->magic == kMagicLive && "MemPool::free of invalid/double pointer");
  h->magic = kMagicFree;
  h->next_free = free_head_[h->bin];
  free_head_[h->bin] = p;
  ++stats_.frees;
  --stats_.outstanding;
}

ugni::gni_mem_handle_t MemPool::handle_of(const void* p) const {
  const Header* h = header_of(p);
  assert(h->magic == kMagicLive);
  return slabs_[h->slab].handle;
}

bool MemPool::owns(const void* p) const {
  if (!p) return false;
  const auto* bytes = static_cast<const std::uint8_t*>(p);
  for (const auto& slab : slabs_) {
    if (bytes >= slab.memory.get() + kHeaderSize &&
        bytes < slab.memory.get() + slab.size) {
      return header_of(p)->magic == kMagicLive;
    }
  }
  return false;
}

std::size_t MemPool::block_size(const void* p) const {
  const Header* h = header_of(p);
  assert(h->magic == kMagicLive);
  return bin_block_size(h->bin);
}

}  // namespace ugnirt::mempool
