#include "converse/machine.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <ostream>

#include "trace/events.hpp"
#include "trace/session.hpp"
#include "trace/tracer.hpp"

namespace ugnirt::converse {

namespace {
Machine* g_running = nullptr;
}  // namespace

// ---------------------------------------------------------------------------
// MachineLayer defaults
// ---------------------------------------------------------------------------

PersistentHandle MachineLayer::create_persistent(sim::Context&, Pe&, int,
                                                 std::uint32_t) {
  return PersistentHandle{};  // not supported by this layer
}

void MachineLayer::send_persistent(sim::Context&, Pe&, PersistentHandle,
                                   std::uint32_t, void*) {
  assert(false && "persistent sends need a layer that supports them");
}

void MachineLayer::collect_metrics(trace::MetricsRegistry&) {}

// ---------------------------------------------------------------------------
// Pe
// ---------------------------------------------------------------------------

Pe::Pe(Machine& machine, int id, int node)
    : machine_(&machine),
      id_(id),
      node_(node),
      ctx_(machine.engine(), id),
      rng_(Rng(machine.options().seed).derive(static_cast<std::uint64_t>(id))) {
}

void Pe::enqueue(void* msg, SimTime t) {
  sched_q_.push_back(msg);
  wake(t);
}

void Pe::wake(SimTime t) {
  SimTime when = std::max(t, avail_at_);
  if (step_scheduled_) {
    if (when >= scheduled_at_) {
      // A step is already pending, but it will run *before* this wake's
      // cause becomes visible — remember the later time so run_step can
      // re-arm instead of stranding the event.
      pending_wake_ = std::min(pending_wake_, when);
      return;
    }
    step_event_.cancel();
  }
  step_scheduled_ = true;
  scheduled_at_ = when;
  step_event_ = machine_->engine().schedule_at(
      when, [this, when] { run_step(when); });
}

void Pe::run_step(SimTime t) {
  step_scheduled_ = false;
  Machine& m = *machine_;
  // A wake issued while the previous step was still executing can carry a
  // stale availability; never start before the PE is actually free.
  t = std::max(t, avail_at_);
  ctx_.set_now(t);
  SimTime app_before = ctx_.app_total();

  Pe* prev_pe = m.current_pe_;
  m.current_pe_ = this;
  {
    sim::ScopedContext guard(ctx_);
    m.layer_->advance(ctx_, *this);
    ctx_.charge(m.options().mc.sched_loop_ns);
    if (!sched_q_.empty()) {
      void* msg = sched_q_.front();
      sched_q_.pop_front();
      const SimTime exec_start = ctx_.now();
      const std::uint32_t msg_size = header_of(msg)->size;
      const std::int32_t msg_src = header_of(msg)->src_pe;
      m.dispatch(*this, msg);
      ++msgs_executed_;
      ++m.stats_.msgs_executed;
      if (trace::enabled()) {
        trace::emit(trace::Ev::kMsgExec, exec_start, ctx_.now() - exec_start,
                    msg_src, msg_size);
      }
    }
  }
  m.current_pe_ = prev_pe;
  ++m.stats_.steps;

  avail_at_ = ctx_.now();
  if (trace::Tracer* tr = m.tracer()) {
    SimTime app_delta = ctx_.app_total() - app_before;
    SimTime total = avail_at_ - t;
    // Attribute the app portion at the end of the step (handlers run after
    // the progress engine), overhead before it.
    tr->record(id_, t, avail_at_ - app_delta, trace::SpanKind::kOverhead);
    tr->record(id_, avail_at_ - app_delta, avail_at_, trace::SpanKind::kApp);
    (void)total;
  }

  if (!sched_q_.empty()) {
    wake(avail_at_);
  } else if (m.layer_->has_backlog(*this)) {
    // Backlogged sends with no local work: retry on a small backoff so a
    // full remote queue doesn't turn into a dense busy-wait of steps.
    wake(avail_at_ + 500);
  }
  if (pending_wake_ != kNever) {
    SimTime w = pending_wake_;
    pending_wake_ = kNever;
    wake(w);
  }
}

// ---------------------------------------------------------------------------
// Machine
// ---------------------------------------------------------------------------

Machine::Machine(MachineOptions options, std::unique_ptr<MachineLayer> layer)
    : options_(options), layer_(std::move(layer)) {
  assert(options_.pes >= 1);
  network_ = std::make_unique<gemini::Network>(
      engine_, topo::Torus3D::for_nodes(options_.nodes()), options_.mc);
  if (options_.fault.enabled) {
    fault_ = std::make_unique<fault::FaultInjector>(options_.fault);
    network_->set_fault_injector(fault_.get());
  }
  qd_created_.assign(static_cast<std::size_t>(options_.pes), 0);
  qd_processed_.assign(static_cast<std::size_t>(options_.pes), 0);
  pes_.reserve(static_cast<std::size_t>(options_.pes));
  for (int i = 0; i < options_.pes; ++i) {
    pes_.push_back(std::make_unique<Pe>(*this, i, node_of_pe(i)));
  }
  // Layer init runs inside each PE's context so setup costs are charged.
  for (auto& pe : pes_) {
    current_pe_ = pe.get();
    sim::ScopedContext guard(pe->ctx());
    layer_->init_pe(*pe);
    pe->avail_at_ = pe->ctx().now();
  }
  current_pe_ = nullptr;
}

Machine::~Machine() {
  // Hand this machine's metrics to the session aggregate (if tracing is
  // on) so short-lived machines inside bench loops are not lost.
  if (trace::TraceSession* session = trace::TraceSession::active()) {
    collect_metrics();
    session->absorb(metrics_);
  }
  if (g_running == this) g_running = nullptr;
}

void Machine::collect_metrics() {
  layer_->collect_metrics(metrics_);
  network_->collect_metrics(metrics_);
  metrics_.counter("converse.msgs_sent").set(stats_.msgs_sent);
  metrics_.counter("converse.msgs_executed").set(stats_.msgs_executed);
  metrics_.counter("converse.bytes_sent").set(stats_.bytes_sent);
  metrics_.counter("converse.sched_steps").set(stats_.steps);
}

void Machine::dump_metrics(std::ostream& out) {
  collect_metrics();
  metrics_.dump_table(out);
}

int Machine::register_handler(CmiHandler fn) {
  handlers_.push_back(std::move(fn));
  return static_cast<int>(handlers_.size()) - 1;
}

Machine* Machine::running() { return g_running; }

Pe& Machine::current_pe() {
  assert(current_pe_ && "no PE is executing");
  return *current_pe_;
}

void Machine::tree_children(int pe, std::vector<int>& out) const {
  out.clear();
  for (int k = 1; k <= kTreeFanout; ++k) {
    int child = pe * kTreeFanout + k;
    if (child < options_.pes) out.push_back(child);
  }
}

void* Machine::alloc_msg(std::uint32_t total) {
  assert(total >= kCmiHeaderBytes);
  Pe& pe = current_pe();
  void* msg = layer_->alloc(pe.ctx(), pe, total);
  CmiMsgHeader* h = header_of(msg);
  *h = CmiMsgHeader{};
  h->size = total;
  h->alloc_pe = pe.id();
  return msg;
}

void Machine::free_msg(void* msg) {
  Pe& pe = current_pe();
  layer_->free_msg(pe.ctx(), pe, msg);
}

void Machine::send(int dest_pe, void* msg) {
  assert(dest_pe >= 0 && dest_pe < options_.pes);
  Pe& src = current_pe();
  CmiMsgHeader* h = header_of(msg);
  h->src_pe = src.id();
  if (!(h->flags & kMsgFlagSystem)) {
    ++qd_created_[static_cast<std::size_t>(src.id())];
  }
  ++stats_.msgs_sent;
  stats_.bytes_sent += h->size;
  src.ctx().charge(options_.mc.charm_send_overhead_ns);
  if (dest_pe == src.id()) {
    // Local short-circuit: straight into our own scheduler queue.
    src.enqueue(msg, src.ctx().now());
    return;
  }
  layer_->sync_send(src.ctx(), src, dest_pe, h->size, msg);
}

void Machine::broadcast(void* msg) {
  Pe& src = current_pe();
  CmiMsgHeader* h = header_of(msg);
  h->flags |= kMsgFlagBcast;
  h->bcast_root = static_cast<std::uint32_t>(src.id());
  h->src_pe = src.id();
  // The root participates like any tree node: forward to children, then
  // deliver the local copy through the scheduler.
  forward_broadcast(src, msg);
  if (!(h->flags & kMsgFlagSystem)) {
    ++qd_created_[static_cast<std::size_t>(src.id())];
  }
  ++stats_.msgs_sent;
  src.enqueue(msg, src.ctx().now());
}

void Machine::forward_broadcast(Pe& pe, void* msg) {
  CmiMsgHeader* h = header_of(msg);
  const int root = static_cast<int>(h->bcast_root);
  const int pes = options_.pes;
  // Virtual rank so the tree is rooted at the broadcast origin.
  const int vrank = (pe.id() - root + pes) % pes;
  for (int k = 1; k <= kTreeFanout; ++k) {
    int vchild = vrank * kTreeFanout + k;
    if (vchild >= pes) break;
    int child = (vchild + root) % pes;
    void* copy = layer_->alloc(pe.ctx(), pe, h->size);
    pe.ctx().charge(options_.mc.memcpy_cost(h->size));
    std::memcpy(copy, msg, h->size);
    CmiMsgHeader* ch = header_of(copy);
    ch->alloc_pe = pe.id();
    ch->flags &= static_cast<std::uint16_t>(~kMsgFlagNoFree);
    send(child, copy);
  }
}

void Machine::dispatch(Pe& pe, void* msg) {
  CmiMsgHeader* h = header_of(msg);
  if ((h->flags & kMsgFlagBcast) &&
      static_cast<int>(h->bcast_root) != pe.id()) {
    forward_broadcast(pe, msg);
  }
  if (!(h->flags & kMsgFlagSystem)) {
    ++qd_processed_[static_cast<std::size_t>(pe.id())];
  }
  pe.ctx().charge(options_.mc.charm_recv_overhead_ns);
  assert(h->handler < handlers_.size());
  handlers_[h->handler](msg);
}

PersistentHandle Machine::create_persistent(int dest_pe,
                                            std::uint32_t max_bytes) {
  Pe& src = current_pe();
  return layer_->create_persistent(src.ctx(), src, dest_pe, max_bytes);
}

void Machine::send_persistent(PersistentHandle handle, void* msg) {
  Pe& src = current_pe();
  CmiMsgHeader* h = header_of(msg);
  h->src_pe = src.id();
  if (!(h->flags & kMsgFlagSystem)) {
    ++qd_created_[static_cast<std::size_t>(src.id())];
  }
  ++stats_.msgs_sent;
  stats_.bytes_sent += h->size;
  src.ctx().charge(options_.mc.charm_send_overhead_ns);
  layer_->send_persistent(src.ctx(), src, handle, h->size, msg);
}

void Machine::start(int pe_id, std::function<void()> fn) {
  Pe& pe = *pes_[static_cast<std::size_t>(pe_id)];
  engine_.schedule_at(0, [this, &pe, fn = std::move(fn)] {
    pe.ctx().set_now(std::max(engine_.now(), pe.avail_at_));
    Pe* prev = current_pe_;
    current_pe_ = &pe;
    {
      sim::ScopedContext guard(pe.ctx());
      fn();
    }
    current_pe_ = prev;
    pe.avail_at_ = pe.ctx().now();
    pe.wake(pe.avail_at_);
  });
}

SimTime Machine::run() {
  Machine* prev = g_running;
  g_running = this;
  engine_.run();
  g_running = prev;
  return engine_.now();
}

// ---------------------------------------------------------------------------
// Converse-style free functions
// ---------------------------------------------------------------------------

int CmiMyPe() { return Machine::running()->current_pe().id(); }

int CmiNumPes() { return Machine::running()->num_pes(); }

double CmiWallTimer() {
  return to_s(Machine::running()->current_pe().ctx().now());
}

void* CmiAlloc(std::uint32_t total_bytes) {
  return Machine::running()->alloc_msg(total_bytes);
}

void CmiFree(void* msg) {
  CmiMsgHeader* h = header_of(msg);
  if (h->flags & kMsgFlagNoFree) return;  // runtime-owned (persistent buffer)
  Machine::running()->free_msg(msg);
}

void CmiSetHandler(void* msg, int handler_idx) {
  header_of(msg)->handler = static_cast<std::uint16_t>(handler_idx);
}

void CmiSyncSendAndFree(int dest_pe, std::uint32_t total_bytes, void* msg) {
  assert(header_of(msg)->size == total_bytes);
  (void)total_bytes;
  Machine::running()->send(dest_pe, msg);
}

void CmiSyncBroadcastAllAndFree(std::uint32_t total_bytes, void* msg) {
  assert(header_of(msg)->size == total_bytes);
  (void)total_bytes;
  Machine::running()->broadcast(msg);
}

void CmiChargeWork(SimTime ns) {
  Machine::running()->current_pe().ctx().charge_app(ns);
}

}  // namespace ugnirt::converse
