file(REMOVE_RECURSE
  "CMakeFiles/ugnirt_trace.dir/tracer.cpp.o"
  "CMakeFiles/ugnirt_trace.dir/tracer.cpp.o.d"
  "libugnirt_trace.a"
  "libugnirt_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ugnirt_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
