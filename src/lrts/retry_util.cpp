#include "lrts/retry_util.hpp"

#include "trace/events.hpp"
#include "util/log.hpp"

namespace ugnirt::lrts::detail {

namespace {

/// Attempts after which a permanently-failing call aborts (a fault plan
/// with p = 1.0 on a required resource cannot make progress).
constexpr int kHardCap = 1000;

/// Shared backoff loop: `attempt` is how many failures have occurred.
/// Charges the backoff to the caller's context and does the escalation
/// bookkeeping; returns false once the hard cap is reached.
bool back_off(sim::Context& ctx, const fault::RetryPolicy& policy,
              int attempt, const char* what, const RetryCounters& n) {
  if (attempt > kHardCap) return false;
  if (n.retries) n.retries->inc();
  if (attempt == policy.max_retries + 1) {
    if (n.escalations) n.escalations->inc();
    UGNIRT_WARN(what << " still failing after " << policy.max_retries
                     << " retries; continuing at capped backoff");
  }
  const SimTime pause = policy.backoff_for(attempt);
  if (trace::enabled()) {
    trace::emit(trace::Ev::kRetryBackoff, ctx.now(), pause, /*peer=*/-1,
                static_cast<std::uint32_t>(attempt));
  }
  ctx.charge(pause);
  return true;
}

}  // namespace

ugni::gni_return_t register_with_retry(
    sim::Context& ctx, const fault::RetryPolicy& policy,
    ugni::gni_nic_handle_t nic, std::uint64_t addr, std::uint64_t len,
    ugni::gni_cq_handle_t dst_cq, ugni::gni_mem_handle_t* hndl_out,
    const RetryCounters& n) {
  int failures = 0;
  for (;;) {
    ugni::gni_return_t rc = ugni::check(
        ugni::GNI_MemRegister(nic, addr, len, dst_cq, 0, hndl_out),
        "GNI_MemRegister", ugni::GNI_RC_ERROR_RESOURCE);
    if (rc == ugni::GNI_RC_SUCCESS) return rc;
    if (!back_off(ctx, policy, ++failures, "GNI_MemRegister", n)) {
      ugni::detail::check_fail(rc, "GNI_MemRegister (retries exhausted)");
    }
  }
}

ugni::gni_return_t post_with_retry(sim::Context& ctx,
                                   const fault::RetryPolicy& policy,
                                   ugni::gni_ep_handle_t ep,
                                   ugni::gni_post_descriptor_t* desc,
                                   bool is_rdma, const RetryCounters& n) {
  int failures = 0;
  for (;;) {
    ugni::gni_return_t rc = ugni::check(
        is_rdma ? ugni::GNI_PostRdma(ep, desc) : ugni::GNI_PostFma(ep, desc),
        "GNI_Post", ugni::GNI_RC_TRANSACTION_ERROR);
    if (rc == ugni::GNI_RC_SUCCESS) return rc;
    if (!back_off(ctx, policy, ++failures, "GNI_Post", n)) {
      ugni::detail::check_fail(rc, "GNI_Post (retries exhausted)");
    }
  }
}

std::uint32_t recover_cq(ugni::gni_cq_handle_t cq, trace::Counter* recovered) {
  std::uint32_t resynthesized = 0;
  ugni::check(ugni::GNI_CqErrorRecover(cq, &resynthesized),
              "GNI_CqErrorRecover");
  if (recovered) recovered->inc();
  return resynthesized;
}

}  // namespace ugnirt::lrts::detail
