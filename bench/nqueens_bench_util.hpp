// Shared setup for the N-Queens benchmarks (Fig 11, Fig 12, Table I).
//
// Board sizes >= 16 default to the deterministic sampled subtree model
// (full enumeration of 17..19-Queens is hours of CPU on this container;
// see DESIGN.md).  Environment knobs:
//   UGNIRT_NQ_FULL=1      exact subtree solving everywhere
//   UGNIRT_NQ_SAMPLES=n   sampled-model sample count (default 1000)
#pragma once

#include <cstdlib>
#include <map>
#include <memory>

#include "apps/nqueens/parallel.hpp"
#include "apps/nqueens/subtree_model.hpp"

namespace ugnirt::benchtool {

inline bool nq_full() {
  const char* v = std::getenv("UGNIRT_NQ_FULL");
  return v && v[0] == '1';
}

inline int nq_samples() {
  const char* v = std::getenv("UGNIRT_NQ_SAMPLES");
  return v ? std::atoi(v) : 1000;
}

/// Parallelization depth per board size, chosen so task counts match the
/// paper's reported message counts: ParSSSE's "threshold 7" generated
/// ~123K tasks for 17-Queens; our depth-5 expansion generates ~217K
/// (depth 4: ~27K, like their "threshold 6"'s ~15K).  ParSSSE counts its
/// threshold differently from raw expansion depth.
inline int nq_threshold(int n) {
  static const std::map<int, int> kThresholds = {
      {14, 4}, {15, 4}, {16, 5}, {17, 5}, {18, 5}, {19, 5}};
  auto it = kThresholds.find(n);
  return it != kThresholds.end() ? it->second : std::max(3, n - 10);
}

/// Cost-model cache: exact below 16 (cheap enough to solve in-process),
/// sampled above unless UGNIRT_NQ_FULL=1.
class NqModels {
 public:
  /// Returns nullptr when the run should solve exactly.
  const apps::nqueens::SubtreeCostModel* get(int n, int threshold) {
    if (n < 16 || nq_full()) return nullptr;
    auto key = std::make_pair(n, threshold);
    auto it = cache_.find(key);
    if (it == cache_.end()) {
      it = cache_
               .emplace(key, apps::nqueens::SampledModel::build(
                                 n, threshold, nq_samples()))
               .first;
    }
    return it->second.get();
  }

 private:
  std::map<std::pair<int, int>, std::unique_ptr<apps::nqueens::SampledModel>>
      cache_;
};

}  // namespace ugnirt::benchtool
