// Conservative parallel discrete-event engine with deterministic replay.
//
// Everything in the reproduction runs on virtual time: simulated PEs,
// the Gemini NIC model, and the runtime protocol state machines schedule
// callbacks here.  Events with equal timestamps fire in scheduling order
// (a monotonically increasing sequence number breaks ties), which makes
// every run bit-reproducible.
//
// The pending-event set is PARTITIONED: EngineOptions::shards splits it
// into independent per-shard queues (each backed by sim::EventQueue — a
// binary-heap oracle or an O(1) calendar queue), each with its own local
// virtual clock.  The converse::Machine maps contiguous torus node slabs
// onto shards, so a shard holds the events of one slab of PEs.  Two
// drives execute the sharded set:
//
//  * kReplay (default) — pops the globally (time, seq)-minimal event
//    across all shard queues (a k-way tournament; with one shard this IS
//    the classic sequential engine).  The execution order is bit-exact
//    the same for any shard count, which is why a seeded machine run
//    traces identically at shards = 1, 2, 8: replay is the determinism
//    oracle, and it is what the full runtime uses (the network model and
//    trace buffers are shared state that requires the global order).
//
//  * kWindow — conservative null-message-free barrier rounds: each round
//    computes the global floor (earliest pending time over all shards)
//    and drains every shard independently up to floor + lookahead_ns,
//    exclusive.  Cross-shard schedules travel through per-shard
//    mailboxes merged at the round barrier; the conservative contract is
//    that a cross-shard event is never scheduled closer than `lookahead`
//    after the scheduling shard's clock (the Machine derives lookahead
//    from the Gemini link-latency floor, so message latencies satisfy it
//    by construction).  Violations are counted and clamped, never lost.
//    Within a round shards are independent, so they may be drained by
//    worker threads (EngineOptions::threads) — or in-place on one core,
//    where the win is architectural anyway: each shard pops from a small
//    hot queue (log(n/S) levels, L2-resident) instead of one giant heap,
//    which is worth >1.5x events/sec at 64k+ pending events.  Sequence
//    numbers in this drive are striped (seq = local * shards + shard) so
//    cross-shard ties break by (time, seq) deterministically no matter
//    how rounds interleave on wall-clock: window runs are reproducible
//    run-to-run, and for shard-confined workloads execute the exact
//    per-shard sequences replay would.
//
// Scheduling-facing code never sees this class: protocol state machines
// hold the narrow sim::Scheduler interface (scheduler.hpp), which Engine
// implements globally (events land on the currently executing shard) and
// per shard via scheduler(i).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/scheduler.hpp"
#include "util/units.hpp"

namespace ugnirt::sim {

/// How run() executes the sharded pending set.
enum class DriveMode {
  kReplay,  ///< exact global (time, seq) order — the determinism oracle
  kWindow,  ///< conservative lookahead rounds — the parallel drive
};

const char* to_string(DriveMode mode);

/// Explicit engine construction knobs.  There is deliberately no
/// env-sniffing default Engine constructor any more: a default-constructed
/// EngineOptions is the hermetic sequential engine, and the one place that
/// reads the environment is from_env() — call sites choose which they
/// mean.
struct EngineOptions {
  /// Per-shard pending-set backend ("sim.queue" / UGNIRT_SIM_QUEUE).
  QueueKind queue = QueueKind::kHeap;
  /// Pending-set partitions ("sim.shards" / UGNIRT_SIM_SHARDS).  Clamped
  /// to >= 1.
  int shards = 1;
  /// Conservative synchronization window of the kWindow drive
  /// ("sim.lookahead_ns" / UGNIRT_SIM_LOOKAHEAD_NS): a lower bound on the
  /// virtual delay of any cross-shard interaction.  Clamped to >= 1 so a
  /// round always makes progress.  Ignored by kReplay (which needs no
  /// lookahead: it never reorders).
  SimTime lookahead_ns = 1;
  /// Drive for run()/run_until().  The runtime always uses kReplay;
  /// kWindow is for shard-confined workloads (engine benches/tests).
  DriveMode mode = DriveMode::kReplay;
  /// kWindow only: worker threads draining shards within a round.  0 =
  /// drain in-place on the calling thread (the right choice on one core);
  /// clamped to <= shards.  Requires the workload's events to touch only
  /// shard-local state.
  int threads = 0;

  /// Options with UGNIRT_SIM_QUEUE / UGNIRT_SIM_SHARDS /
  /// UGNIRT_SIM_LOOKAHEAD_NS applied over the defaults — the explicit
  /// successor of the old env-sniffing Engine default constructor.
  static EngineOptions from_env();
};

class Engine final : public Scheduler {
 public:
  explicit Engine(const EngineOptions& options);
  ~Engine() override;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  // ---- Scheduler (the engine as a whole) ----
  /// Committed global virtual time: the last executed event's time under
  /// kReplay; the high-water mark of completed rounds under kWindow.
  SimTime now() const override { return now_; }
  /// Schedules onto the shard currently executing (shard 0 outside event
  /// execution) — implicit-context protocol code lands its follow-up
  /// events next to the state they touch.
  EventHandle schedule_at(SimTime when, std::function<void()> fn) override;

  // ---- sharding surface ----
  int shards() const { return static_cast<int>(shards_.size()); }
  /// The per-shard Scheduler: now() is the shard's local clock;
  /// schedule_at targets the shard (cross-shard calls are mailboxed under
  /// the kWindow drive).
  Scheduler& scheduler(int shard);
  /// A shard's local virtual clock (== now() under kReplay).
  SimTime shard_now(int shard) const;
  /// The shard currently executing an event, or -1.
  int current_shard() const;
  SimTime lookahead() const { return lookahead_; }
  DriveMode mode() const { return mode_; }
  /// kWindow: the current (or last) round's global floor — the earliest
  /// pending time when the round was cut.  Every shard clock is bounded
  /// by round_floor() + lookahead() while a round drains.
  SimTime round_floor() const { return round_floor_; }

  // ---- driving ----
  /// Run until the pending set drains or stop() is called.
  /// Returns the number of events executed.
  std::uint64_t run();
  /// Run until virtual time exceeds `until` (events at exactly `until`
  /// run).
  std::uint64_t run_until(SimTime until);
  /// Request run()/run_until() to return after the current event (under
  /// kWindow with threads, after the current round).
  void stop() { stopped_.store(true, std::memory_order_relaxed); }

  // ---- introspection ----
  bool empty() const { return pending() == 0; }
  /// Live scheduled events only: cancelled-but-unpopped tombstones are
  /// excluded (they are not pending work — idle-flush heuristics must not
  /// see them).
  std::size_t pending() const;
  std::uint64_t executed() const {
    return executed_.load(std::memory_order_relaxed);
  }
  QueueKind queue_kind() const { return queue_kind_; }
  /// kWindow: completed synchronization rounds.
  std::uint64_t rounds() const { return rounds_; }
  /// Events that crossed shards (mailboxed under kWindow; direct-pushed
  /// under kReplay).
  std::uint64_t cross_shard_events() const { return cross_shard_events_; }
  /// Cross-shard schedules that violated the conservative lookahead
  /// contract (kWindow only; the event is clamped to the target shard's
  /// clock at the next barrier, never lost or reordered within its shard).
  std::uint64_t lookahead_violations() const { return lookahead_violations_; }

 private:
  /// One pending-set partition.  Implements the per-shard Scheduler.
  class Shard final : public Scheduler {
   public:
    Shard(Engine& engine, int index, QueueKind kind);

    SimTime now() const override;
    EventHandle schedule_at(SimTime when, std::function<void()> fn) override;

   private:
    friend class Engine;
    Engine* engine_;
    int index_;
    SimTime now_ = 0;             // local clock: last executed event's time
    std::uint64_t local_seq_ = 0; // kWindow striped-seq stream
    std::unique_ptr<EventQueue> queue_;
    std::shared_ptr<std::atomic<std::int64_t>> live_;
    std::mutex mailbox_mu_;            // kWindow cross-shard arrivals
    std::vector<Event> mailbox_;
  };

  EventHandle schedule_on(int target, SimTime when, std::function<void()> fn);
  std::uint64_t next_seq(int scheduling_shard);
  Shard* earliest_shard();
  SimTime earliest_time_global();
  bool pop_and_run(Shard& shard);
  std::uint64_t run_replay(SimTime until);
  std::uint64_t run_window(SimTime until);
  std::uint64_t drain_shard_to(Shard& shard, SimTime horizon);
  void merge_mailboxes();

  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;  // kReplay global stream
  std::atomic<std::uint64_t> executed_{0};
  std::atomic<bool> stopped_{false};
  QueueKind queue_kind_;
  DriveMode mode_;
  SimTime lookahead_;
  int threads_;
  SimTime round_floor_ = 0;
  SimTime round_horizon_ = 0;  // exclusive; valid while a round drains
  std::uint64_t rounds_ = 0;
  std::uint64_t cross_shard_events_ = 0;
  std::atomic<std::uint64_t> lookahead_violations_{0};
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace ugnirt::sim
