# Empty compiler generated dependencies file for fig06_initial_ugni.
# This may be replaced when dependencies are built.
