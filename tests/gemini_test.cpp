#include <gtest/gtest.h>

#include "gemini/machine_config.hpp"
#include "gemini/network.hpp"
#include "sim/engine.hpp"
#include "util/config.hpp"

namespace ugnirt::gemini {
namespace {

Network make_net(int nodes = 8) {
  static sim::Engine* engine = new sim::Engine(sim::EngineOptions{});  // shared across cases
  return Network(engine->scheduler(), topo::Torus3D::for_nodes(nodes), MachineConfig{});
}

TransferTimes do_transfer(Network& net, Mechanism mech, std::uint64_t bytes,
                          SimTime issue = 0, int from = 0, int to = 1) {
  TransferRequest req;
  req.mech = mech;
  req.initiator_node = from;
  req.remote_node = to;
  req.bytes = bytes;
  req.issue = issue;
  return net.transfer(req);
}

// ------------------------------------------------------------- config ----

TEST(MachineConfig, DefaultsMatchPaperAnchors) {
  MachineConfig m;
  EXPECT_EQ(m.smsg_max_bytes, 1024u);   // §III-C default SMSG cap
  EXPECT_EQ(m.cores_per_node, 24);      // Hopper XE6 nodes
  EXPECT_EQ(m.mpi_eager_threshold, 8192u);
  // BTE beats FMA somewhere in the 2-8 KiB window (§II-A).
  double fma_8k = static_cast<double>(m.fma_put_startup_ns) + 8192 / m.fma_bw;
  double bte_8k = static_cast<double>(m.bte_put_startup_ns) + 8192 / m.bte_bw;
  double fma_2k = static_cast<double>(m.fma_put_startup_ns) + 2048 / m.fma_bw;
  double bte_2k = static_cast<double>(m.bte_put_startup_ns) + 2048 / m.bte_bw;
  EXPECT_GT(fma_8k, bte_8k) << "BTE must win by 8 KiB";
  EXPECT_LT(fma_2k, bte_2k) << "FMA must win at 2 KiB";
}

TEST(MachineConfig, SmsgCapShrinksWithJobSize) {
  MachineConfig m;
  EXPECT_EQ(m.smsg_max_for_job(24), 1024u);
  EXPECT_EQ(m.smsg_max_for_job(1024), 1024u);
  EXPECT_EQ(m.smsg_max_for_job(2048), 512u);
  EXPECT_EQ(m.smsg_max_for_job(15360), 256u);
  EXPECT_EQ(m.smsg_max_for_job(120000), 128u);
}

TEST(MachineConfig, CostHelpers) {
  MachineConfig m;
  EXPECT_EQ(m.pages(1), 1u);
  EXPECT_EQ(m.pages(4096), 1u);
  EXPECT_EQ(m.pages(4097), 2u);
  EXPECT_EQ(m.reg_cost(4096), m.mem_reg_base_ns + m.mem_reg_per_page_ns);
  EXPECT_GT(m.reg_cost(1 << 20), m.reg_cost(4096));
  EXPECT_GT(m.memcpy_cost(1 << 20), m.memcpy_cost(1024));
}

TEST(MachineConfig, ConfigOverridesApply) {
  Config cfg;
  ASSERT_TRUE(cfg.parse_string(
      "gemini.hop_ns = 500\n"
      "gemini.bte_bw = 12.5\n"
      "gemini.smsg_max_bytes = 2048\n"));
  MachineConfig m = MachineConfig::from(cfg);
  EXPECT_EQ(m.hop_ns, 500);
  EXPECT_DOUBLE_EQ(m.bte_bw, 12.5);
  EXPECT_EQ(m.smsg_max_bytes, 2048u);
  // Untouched values keep defaults.
  EXPECT_EQ(m.cq_poll_ns, MachineConfig{}.cq_poll_ns);
}

TEST(MachineConfig, ExportRoundTrips) {
  MachineConfig m;
  m.hop_ns = 777;
  m.fma_bw = 3.25;
  Config cfg;
  m.export_to(cfg);
  MachineConfig back = MachineConfig::from(cfg);
  EXPECT_EQ(back.hop_ns, 777);
  EXPECT_DOUBLE_EQ(back.fma_bw, 3.25);
  EXPECT_EQ(back.smsg_max_bytes, m.smsg_max_bytes);
}

// ------------------------------------------------------------ network ----

TEST(Network, SmallSmsgLatencyNearPaperAnchor) {
  Network net = make_net();
  auto t = do_transfer(net, Mechanism::kSmsg, 8 + 16);
  // Pure uGNI 8-byte one-way latency is ~1.2 us on Hopper (Fig 9a); the
  // receive-side CPU cost is paid by the poller, so wire-side arrival must
  // land around 1.0-1.2 us.
  EXPECT_GT(t.data_arrival, 800);
  EXPECT_LT(t.data_arrival, 1400);
}

TEST(Network, LatencyMonotonicInSize) {
  for (Mechanism m : {Mechanism::kSmsg, Mechanism::kFmaPut,
                      Mechanism::kBtePut, Mechanism::kFmaGet,
                      Mechanism::kBteGet}) {
    Network net = make_net();
    SimTime prev = 0;
    for (std::uint64_t size : {64ull, 1024ull, 16384ull, 262144ull}) {
      auto t = do_transfer(net, m, size, /*issue=*/1'000'000'000 + 10'000'000 *
                            static_cast<SimTime>(size));
      SimTime lat = t.data_arrival - (1'000'000'000 + 10'000'000 *
                    static_cast<SimTime>(size));
      EXPECT_GE(lat, prev) << mechanism_name(m) << " size " << size;
      prev = lat;
    }
  }
}

TEST(Network, FmaOccupiesCpuButBteDoesNot) {
  Network net = make_net();
  const std::uint64_t size = 1 << 20;
  auto fma = do_transfer(net, Mechanism::kFmaPut, size, 0);
  auto bte = do_transfer(net, Mechanism::kBtePut, size, 1'000'000'000);
  // FMA: CPU busy for the whole push (>= size/fma_bw).
  EXPECT_GT(fma.cpu_done, static_cast<SimTime>(size / 3));
  // BTE: CPU free almost immediately (descriptor cost only).
  EXPECT_LT(bte.cpu_done - 1'000'000'000, 1000);
  // Both eventually deliver.
  EXPECT_GT(bte.data_arrival, bte.cpu_done);
}

TEST(Network, BteBeatsFmaForLargeAndLosesForSmall) {
  Network net1 = make_net();
  Network net2 = make_net();
  auto fma_small = do_transfer(net1, Mechanism::kFmaPut, 1024);
  auto bte_small = do_transfer(net2, Mechanism::kBtePut, 1024);
  EXPECT_LT(fma_small.data_arrival, bte_small.data_arrival);

  Network net3 = make_net();
  Network net4 = make_net();
  auto fma_big = do_transfer(net3, Mechanism::kFmaPut, 1 << 20);
  auto bte_big = do_transfer(net4, Mechanism::kBtePut, 1 << 20);
  EXPECT_GT(fma_big.data_arrival, bte_big.data_arrival);
}

TEST(Network, BandwidthApproachesConfiguredPeak) {
  Network net = make_net();
  const std::uint64_t size = 4 << 20;
  auto t = do_transfer(net, Mechanism::kBtePut, size);
  double bw = static_cast<double>(size) /
              static_cast<double>(t.data_arrival);  // bytes/ns
  EXPECT_GT(bw, net.config().bte_bw * 0.9);
  EXPECT_LE(bw, net.config().bte_bw * 1.01);
}

TEST(Network, BteEngineSerializesBackToBackTransfers) {
  Network net = make_net();
  const std::uint64_t size = 1 << 20;
  auto a = do_transfer(net, Mechanism::kBtePut, size, 0, 0, 1);
  // Second DMA from the same node posted immediately after must queue
  // behind the first on the BTE engine even though it goes elsewhere.
  auto b = do_transfer(net, Mechanism::kBtePut, size, 10, 0, 2);
  EXPECT_GE(b.data_arrival, a.data_arrival);
  EXPECT_GT(b.data_arrival - b.cpu_done, a.data_arrival - a.cpu_done);
}

TEST(Network, SharedLinksContend) {
  // Two big transfers sharing a route between different ASICs must queue
  // on the wire (ASIC-sibling pairs 0/1 bypass the torus entirely).
  Network net = make_net(8);
  const std::uint64_t size = 1 << 20;
  auto a = do_transfer(net, Mechanism::kFmaPut, size, 0, 0, 2);
  auto b = do_transfer(net, Mechanism::kFmaPut, size, 0, 0, 2);
  EXPECT_GT(net.stats().link_conflicts, 0u);
  // The second transfer is delayed by at least the first's link occupancy.
  EXPECT_GE(b.data_arrival,
            a.data_arrival + transfer_time(size, net.config().link_bw) / 2);
}

TEST(Network, AsicSiblingsBypassTorusLinks) {
  Network net = make_net(8);
  const std::uint64_t size = 1 << 20;
  do_transfer(net, Mechanism::kFmaPut, size, 0, 0, 1);  // same ASIC
  do_transfer(net, Mechanism::kFmaPut, size, 0, 0, 1);
  EXPECT_EQ(net.stats().link_conflicts, 0u);
}

TEST(Network, LoopbackUsesNoLinks) {
  Network net = make_net();
  auto t = do_transfer(net, Mechanism::kBtePut, 4096, 0, 2, 2);
  EXPECT_EQ(net.stats().link_conflicts, 0u);
  EXPECT_GT(t.data_arrival, 0);
  // And again: no queueing against torus links.
  do_transfer(net, Mechanism::kBtePut, 4096, 1, 2, 2);
  EXPECT_EQ(net.stats().link_conflicts, 0u);
}

TEST(Network, StatsAccumulateByMechanism) {
  Network net = make_net();
  do_transfer(net, Mechanism::kSmsg, 100);
  do_transfer(net, Mechanism::kFmaPut, 200);
  do_transfer(net, Mechanism::kBteGet, 300);
  EXPECT_EQ(net.stats().transfers, 3u);
  EXPECT_EQ(net.stats().bytes_smsg, 100u);
  EXPECT_EQ(net.stats().bytes_fma, 200u);
  EXPECT_EQ(net.stats().bytes_bte, 300u);
}

TEST(Network, GetRoundTripCostsMoreThanPut) {
  Network net1 = make_net();
  Network net2 = make_net();
  auto put = do_transfer(net1, Mechanism::kFmaPut, 4096);
  auto get = do_transfer(net2, Mechanism::kFmaGet, 4096);
  EXPECT_GT(get.data_arrival, put.data_arrival);
}

TEST(Network, BackfillLetsEarlyTransfersPassFutureReservations) {
  // A transfer issued with a far-future cursor must not block the link for
  // traffic that happens before it.
  Network net = make_net(8);
  const std::uint64_t size = 1 << 20;
  auto future = do_transfer(net, Mechanism::kFmaPut, size,
                            /*issue=*/5'000'000, 0, 2);
  auto early = do_transfer(net, Mechanism::kFmaPut, size, /*issue=*/0, 0, 2);
  // The early transfer backfills the idle gap and completes first.
  EXPECT_LT(early.data_arrival, future.data_arrival);
  EXPECT_LT(early.data_arrival, 2'000'000);
}

TEST(Network, SmsgChannelStaysFifoUnderCongestion) {
  // Even when link occupancy could let a later SMSG overtake, per-channel
  // FIFO must hold (verified at the uGNI level).
  sim::Engine engine{sim::EngineOptions{}};
  Network net(engine.scheduler(), topo::Torus3D::for_nodes(8), MachineConfig{});
  // Covered end-to-end by UgniPropertyFixture FIFO test; here we at least
  // confirm SMSG arrivals are monotonic for back-to-back sends.
  SimTime prev = 0;
  for (int i = 0; i < 10; ++i) {
    TransferRequest req;
    req.mech = Mechanism::kSmsg;
    req.initiator_node = 0;
    req.remote_node = 2;
    req.bytes = 64 + static_cast<std::uint64_t>(i) * 1000;
    req.issue = i;  // nearly simultaneous
    auto t = net.transfer(req);
    EXPECT_GE(t.data_arrival, prev - 2000)
        << "gross reordering at message " << i;
    prev = t.data_arrival;
  }
}

TEST(Network, DeterministicTransferTimes) {
  auto run = [] {
    Network net = make_net();
    std::vector<SimTime> v;
    for (int i = 0; i < 20; ++i) {
      auto t = do_transfer(net, i % 2 ? Mechanism::kBtePut
                                      : Mechanism::kFmaGet,
                           1024u << (i % 5), i * 100, i % 4, (i + 1) % 4);
      v.push_back(t.data_arrival);
    }
    return v;
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace ugnirt::gemini
