// Table II: ApoA1 (92,224 atoms) NAMD-model strong scaling, ms/step on the
// MPI-based and uGNI-based CHARM++ (paper §V-D).
#include "apps/namdmodel/namdmodel.hpp"
#include "bench_util.hpp"

using namespace ugnirt;
using namespace ugnirt::apps::namdmodel;

int main() {
  benchtool::Table table("table2_namd_strong", "cores");
  table.add_column("MPI_ms_step");
  table.add_column("uGNI_ms_step");
  table.add_column("paper_MPI");
  table.add_column("paper_uGNI");

  struct Row {
    int cores;
    double paper_mpi, paper_ugni;
  };
  const Row rows[] = {{2, 987, 979},     {12, 172, 168},  {48, 45.1, 38.2},
                      {120, 20.2, 16.7}, {240, 10.8, 8.8}, {480, 6.2, 5.1},
                      {1920, 3.3, 2.7},  {3840, 3.06, 2.78}};

  for (const Row& row : rows) {
    auto run = [&](converse::LayerKind layer) {
      converse::MachineOptions o;
      o.pes = row.cores;
      o.layer = layer;
      NamdConfig cfg;
      cfg.system = apoa1();
      return run_namd_model(o, cfg).ms_per_step;
    };
    table.add_row(std::to_string(row.cores),
                  {run(converse::LayerKind::kMpi),
                   run(converse::LayerKind::kUgni), row.paper_mpi,
                   row.paper_ugni});
    std::fflush(stdout);
  }
  table.print();
  std::printf("Paper shape: uGNI-based NAMD wins at every scale, by ~10%%\n"
              "in the mid range, with both flattening near 3 ms/step at\n"
              "3840 cores (fine-grain limit).\n");
  return 0;
}
