# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_config_file[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_topo[1]_include.cmake")
include("/root/repo/build/tests/test_gemini[1]_include.cmake")
include("/root/repo/build/tests/test_ugni[1]_include.cmake")
include("/root/repo/build/tests/test_mempool[1]_include.cmake")
include("/root/repo/build/tests/test_mpilite[1]_include.cmake")
include("/root/repo/build/tests/test_converse[1]_include.cmake")
include("/root/repo/build/tests/test_charm[1]_include.cmake")
include("/root/repo/build/tests/test_collectives[1]_include.cmake")
include("/root/repo/build/tests/test_nqueens[1]_include.cmake")
include("/root/repo/build/tests/test_nqueens_property[1]_include.cmake")
include("/root/repo/build/tests/test_minimd_property[1]_include.cmake")
include("/root/repo/build/tests/test_apps[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_ugni_property[1]_include.cmake")
include("/root/repo/build/tests/test_msgq[1]_include.cmake")
include("/root/repo/build/tests/test_dmapp[1]_include.cmake")
include("/root/repo/build/tests/test_smp[1]_include.cmake")
