file(REMOVE_RECURSE
  "CMakeFiles/fig09c_onetoall.dir/fig09c_onetoall.cpp.o"
  "CMakeFiles/fig09c_onetoall.dir/fig09c_onetoall.cpp.o.d"
  "fig09c_onetoall"
  "fig09c_onetoall.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09c_onetoall.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
