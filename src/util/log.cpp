#include "util/log.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace ugnirt {

namespace {

LogLevel initial_threshold() {
  const char* env = std::getenv("UGNIRT_LOG");
  if (!env) return LogLevel::kWarn;
  if (std::strcmp(env, "debug") == 0) return LogLevel::kDebug;
  if (std::strcmp(env, "info") == 0) return LogLevel::kInfo;
  if (std::strcmp(env, "warn") == 0) return LogLevel::kWarn;
  if (std::strcmp(env, "error") == 0) return LogLevel::kError;
  if (std::strcmp(env, "off") == 0) return LogLevel::kOff;
  return LogLevel::kWarn;
}

LogLevel& threshold_ref() {
  static LogLevel level = initial_threshold();
  return level;
}

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

}  // namespace

LogLevel log_threshold() { return threshold_ref(); }

void set_log_threshold(LogLevel level) { threshold_ref() = level; }

void log_message(LogLevel level, const std::string& msg) {
  std::fprintf(stderr, "[ugnirt %s] %s\n", level_name(level), msg.c_str());
}

}  // namespace ugnirt
