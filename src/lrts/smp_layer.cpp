#include "lrts/smp_layer.hpp"

#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "lrts/pool_metrics.hpp"
#include "lrts/span_marks.hpp"
#include "trace/events.hpp"
#include "trace/spans.hpp"
#include "util/log.hpp"

namespace ugnirt::lrts {

using converse::CmiMsgHeader;
using converse::header_of;

namespace {

// Protocol tags, mirroring the non-SMP layer's rendezvous (paper Fig 5).
constexpr std::uint8_t kTagData = 1;
constexpr std::uint8_t kTagInit = 2;
constexpr std::uint8_t kTagAck = 3;

struct InitCtrl {
  std::uint64_t send_id = 0;
  std::uint64_t addr = 0;
  ugni::gni_mem_handle_t hndl{};
  std::uint32_t size = 0;
  std::int32_t dest_pe = -1;  // final worker on the receiving node
};

struct AckCtrl {
  std::uint64_t send_id = 0;
};

/// Worker-side cost of handing a message to the comm thread (lock + queue).
constexpr SimTime kSmpEnqueueNs = 120;
/// Comm-thread cost per handled item (dequeue + dispatch).
constexpr SimTime kSmpDequeueNs = 90;
/// Worker-to-worker pointer handoff (lock + enqueue into peer scheduler).
constexpr SimTime kSmpPtrSendNs = 150;

}  // namespace

// ---------------------------------------------------------------------------
// State
// ---------------------------------------------------------------------------

/// One node: NIC + comm-thread actor + node-shared message pool.
struct SmpLayer::NodeState {
  int node = -1;
  ugni::gni_nic_handle_t nic = nullptr;
  ugni::gni_cq_handle_t rx_cq = nullptr;
  ugni::gni_cq_handle_t tx_cq = nullptr;
  // Per-remote-node endpoints live in the NIC's peer table (lazy,
  // first-touch; see ugni::Nic::get_or_connect) — no N-sized map here.
  std::unique_ptr<mempool::MemPool> pool;  // node-shared, pre-registered

  // The communication thread: an actor with its own virtual-time cursor.
  std::unique_ptr<sim::Context> comm_ctx;
  bool comm_scheduled = false;
  SimTime comm_sched_at = 0;
  SimTime comm_pending_wake = kNever;
  sim::EventHandle comm_event;
  SimTime comm_avail = 0;

  // Outgoing messages queued by workers.
  struct Out {
    int dest_pe = -1;
    void* msg = nullptr;
    std::uint32_t size = 0;
    SimTime ready = 0;  // when the worker finished enqueueing
  };
  std::deque<Out> outq;

  // Credit-stalled control/data messages (per remote-node channel).
  struct Pending {
    int dest_node = -1;
    int dest_pe = -1;
    std::uint8_t tag = 0;
    std::vector<std::uint8_t> ctrl;
    void* msg = nullptr;
  };
  std::deque<Pending> backlog;
  int backlog_attempts = 0;      // consecutive failed flush attempts
  SimTime backlog_retry_at = 0;  // no flush retry before this instant

  // Rendezvous bookkeeping (node-level).
  struct LargeSend {
    void* msg = nullptr;
  };
  std::unordered_map<std::uint64_t, LargeSend> sends;
  std::uint64_t next_send_id = 1;

  struct LargeRecv {
    void* buf = nullptr;
    std::unique_ptr<ugni::gni_post_descriptor_t> desc;
    std::uint64_t send_id = 0;
    std::int32_t src_node = -1;
    std::int32_t dest_pe = -1;
  };
  std::unordered_map<std::uint64_t, LargeRecv> recvs;
  std::uint64_t next_recv_id = 1;
};

// ---------------------------------------------------------------------------
// Setup
// ---------------------------------------------------------------------------

SmpLayer::SmpLayer() = default;
SmpLayer::~SmpLayer() {
  if (std::getenv("UGNIRT_SMPDBG")) {
    for (auto& n : nodes_) {
      if (!n) continue;
      std::fprintf(stderr,
                   "node %d: outq=%zu backlog=%zu sends=%zu recvs=%zu\n",
                   n->node, n->outq.size(), n->backlog.size(),
                   n->sends.size(), n->recvs.size());
    }
  }
}

void SmpLayer::ensure_domain(converse::Machine& m) {
  if (domain_) return;
  machine_ = &m;
  trace::MetricsRegistry& reg = m.metrics();
  c_intra_node_ptr_msgs_ = &reg.counter("smp.intra_node_ptr_msgs");
  c_comm_thread_sends_ = &reg.counter("smp.comm_thread_sends");
  c_rendezvous_gets_ = &reg.counter("smp.rendezvous_gets");
  c_comm_thread_busy_defers_ = &reg.counter("smp.comm_thread_busy_defers");
  c_retry_smsg_ = &reg.counter("retry_smsg");
  c_retry_post_ = &reg.counter("retry_post");
  c_retry_mem_register_ = &reg.counter("retry_mem_register");
  c_retry_escalations_ = &reg.counter("retry_escalations");
  c_fallback_rendezvous_ = &reg.counter("fallback_rendezvous");
  c_fallback_heap_ = &reg.counter("fallback_heap_send");
  c_cq_recovered_ = &reg.counter("cq_overrun_recovered");
  retry_ = m.options().retry;
  domain_ = std::make_unique<ugni::Domain>(m.network());
  smsg_cap_ = m.options().mc.smsg_max_for_job(m.options().nodes());
  const std::uint32_t mc_cq_entries = m.options().mc.cq_entries;
  nodes_.resize(static_cast<std::size_t>(m.options().nodes()));
  for (int n = 0; n < m.options().nodes(); ++n) {
    auto ns = std::make_unique<NodeState>();
    ns->node = n;
    ugni::gni_return_t rc =
        ugni::GNI_CdmAttach(domain_.get(), n, n, &ns->nic);
    assert(rc == ugni::GNI_RC_SUCCESS);
    rc = ugni::GNI_CqCreate(ns->nic, mc_cq_entries, &ns->rx_cq);
    assert(rc == ugni::GNI_RC_SUCCESS);
    rc = ugni::GNI_CqCreate(ns->nic, mc_cq_entries, &ns->tx_cq);
    assert(rc == ugni::GNI_RC_SUCCESS);
    (void)rc;
    ns->nic->set_smsg_rx_cq(ns->rx_cq);
    ns->nic->set_default_tx_cq(ns->tx_cq);
    ugni::gni_smsg_attr_t attr;
    attr.msg_maxsize = smsg_cap_;
    attr.mbox_maxcredit = m.options().mc.smsg_mailbox_credits;
    ns->nic->set_smsg_attr(attr);
    // The comm thread lives on its node's shard, like the worker PEs it
    // serves: its CQ-notify and retry events stay shard-local.
    ns->comm_ctx =
        std::make_unique<sim::Context>(m.scheduler_for_node(n), -1000 - n);

    NodeState* np = ns.get();
    auto wake_hook = [this, np](SimTime t) { comm_wake(*np, t); };
    ns->rx_cq->set_notify(wake_hook);
    ns->tx_cq->set_notify(wake_hook);
    ns->nic->set_credit_notify(wake_hook);
    nodes_[static_cast<std::size_t>(n)] = std::move(ns);
  }
  UGNIRT_DEBUG("SMP layer up: " << m.options().nodes()
                                << " nodes, smsg cap " << smsg_cap_ << " B");
}

void SmpLayer::init_pe(converse::Pe& pe) {
  ensure_domain(pe.machine());
  NodeState& n = node_state(pe.node());
  if (pe.machine().options().use_mempool && !n.pool) {
    // Node-shared pool: created once per node, charged to the first PE.
    n.pool = std::make_unique<mempool::MemPool>(
        n.nic, pe.machine().options().mc.mempool_init_bytes);
  }
  pe.set_layer_state(nullptr);
}

ugni::gni_ep_handle_t SmpLayer::connect(NodeState& src, int dest_node) {
  ugni::gni_ep_handle_t ep = src.nic->get_or_connect(dest_node);
  assert(ep && "get_or_connect failed: unknown node or NIC not configured");
  return ep;
}

std::uint64_t SmpLayer::total_mailbox_bytes() const {
  return domain_ ? domain_->total_mailbox_bytes() : 0;
}

LayerStats SmpLayer::stats() const {
  LayerStats out;
  if (!c_intra_node_ptr_msgs_) return out;  // counters not bound yet
  out.intra_node_ptr_msgs = c_intra_node_ptr_msgs_->value();
  out.comm_thread_sends = c_comm_thread_sends_->value();
  out.rendezvous_gets = c_rendezvous_gets_->value();
  out.comm_thread_busy_defers = c_comm_thread_busy_defers_->value();
  return out;
}

void SmpLayer::collect_metrics(trace::MetricsRegistry& reg) {
  if (domain_) domain_->collect_metrics(reg);
  collect_pool_metrics(reg, nodes_);
}

// ---------------------------------------------------------------------------
// Allocation: node-shared pool (or modeled malloc)
// ---------------------------------------------------------------------------

void* SmpLayer::alloc(sim::Context& ctx, converse::Pe& pe,
                      std::size_t bytes) {
  NodeState& n = node_state(pe.node());
  if (n.pool) {
    if (void* p = n.pool->alloc(bytes)) return p;
    // Pool expansion lost its slab registration: heap fallback.
    c_fallback_heap_->inc();
    if (trace::enabled()) {
      trace::emit(trace::Ev::kFallback, ctx.now(), 0, /*peer=*/-1,
                  static_cast<std::uint32_t>(bytes));
    }
  }
  ctx.charge(machine_->options().mc.malloc_cost(bytes));
  return ::operator new[](bytes, std::align_val_t{16});
}

void SmpLayer::free_msg(sim::Context& ctx, converse::Pe& pe, void* msg) {
  NodeState& n = node_state(pe.node());
  if (n.pool) {
    if (n.pool->owns(msg)) {
      n.pool->free(msg);
      return;
    }
    // Allocated on another node's pool (can only happen for messages the
    // comm thread delivered; those are always node-local) — or on the
    // alloc_pe's node.
    int owner = header_of(msg)->alloc_pe;
    if (owner >= 0) {
      NodeState& o = node_state(machine_->node_of_pe(owner));
      if (o.pool && o.pool->owns(msg)) {
        o.pool->free(msg);
        return;
      }
    }
    // No pool owns it: a heap-fallback buffer from alloc() after a failed
    // slab registration.
    ctx.charge(machine_->options().mc.free_base_ns);
    ::operator delete[](msg, std::align_val_t{16});
    return;
  }
  ctx.charge(machine_->options().mc.free_base_ns);
  ::operator delete[](msg, std::align_val_t{16});
}

// ---------------------------------------------------------------------------
// Send path
// ---------------------------------------------------------------------------

void SmpLayer::submit(sim::Context& ctx, converse::Pe& src, int dest_pe,
                      converse::MsgView mv,
                      const converse::SendOptions& opts) {
  assert(!opts.persistent_handle.valid() &&
         "SMP layer has no persistent channels");
  (void)opts;
  converse::Machine& m = *machine_;
  NodeState& n = node_state(src.node());
  void* msg = mv.msg;
  const std::uint32_t size = mv.size;

  if (std::getenv("UGNIRT_SMPDBG"))
    std::fprintf(stderr, "SEND dest=%d size=%u t=%lld\n", dest_pe, size,
                 (long long)ctx.now());
  if (m.node_of_pe(dest_pe) == src.node()) {
    // Same address space: hand the pointer straight to the peer worker.
    ctx.charge(kSmpPtrSendNs);
    c_intra_node_ptr_msgs_->inc();
    m.pe(dest_pe).enqueue(msg, ctx.now());
    return;
  }
  // Lock-and-enqueue to the node's comm thread; the worker is done.
  ctx.charge(kSmpEnqueueNs);
  n.outq.push_back(NodeState::Out{dest_pe, msg, size, ctx.now()});
  comm_wake(n, ctx.now());
}

std::uint32_t SmpLayer::recommended_batch_bytes(converse::Pe& src,
                                                int dest_pe) const {
  if (machine_->node_of_pe(dest_pe) == src.node()) {
    // Intra-node messages pass by pointer — zero copies.  Packing them
    // into a batch would *add* two memcpys, so opt the pair out.
    return 0;
  }
  // One comm-thread SMSG is the transaction unit; it spends 4 payload
  // bytes on the worker routing prefix.
  return smsg_cap_ > 4 ? smsg_cap_ - 4 : 0;
}

// ---------------------------------------------------------------------------
// Comm-thread actor
// ---------------------------------------------------------------------------

void SmpLayer::comm_wake(NodeState& n, SimTime t) {
  SimTime when = std::max(t, n.comm_avail);
  if (n.comm_scheduled) {
    if (when >= n.comm_sched_at) {
      // Defer rather than drop: the pending step runs too early to see
      // this wake's cause (see Pe::wake).
      n.comm_pending_wake = std::min(n.comm_pending_wake, when);
      return;
    }
    n.comm_event.cancel();
  }
  n.comm_scheduled = true;
  n.comm_sched_at = when;
  NodeState* np = &n;
  n.comm_event = n.comm_ctx->scheduler().schedule_at(
      when, [this, np, when] { comm_step(*np, when); });
}

void SmpLayer::comm_step(NodeState& n, SimTime t) {
  n.comm_scheduled = false;
  t = std::max(t, n.comm_avail);
  sim::Context& ctx = *n.comm_ctx;
  ctx.set_now(t);
  sim::ScopedContext guard(ctx);

  // 1. Network arrivals.  ERROR_RESOURCE is a CQ overrun: recover instead
  // of latching dead.
  for (;;) {
    ugni::gni_cq_entry_t ev;
    ugni::gni_return_t rc = ugni::GNI_CqGetEvent(n.rx_cq, &ev);
    if (rc == ugni::GNI_RC_ERROR_RESOURCE) {
      detail::recover_cq(n.rx_cq, c_cq_recovered_);
      continue;
    }
    if (rc != ugni::GNI_RC_SUCCESS) break;
    if (ev.type == ugni::CqEventType::kSmsg) {
      comm_handle_smsg(ctx, n, ev.source_inst);
    }
  }
  for (;;) {
    ugni::gni_cq_entry_t ev;
    ugni::gni_return_t rc = ugni::GNI_CqGetEvent(n.tx_cq, &ev);
    if (rc == ugni::GNI_RC_ERROR_RESOURCE) {
      detail::recover_cq(n.tx_cq, c_cq_recovered_);
      continue;
    }
    if (rc != ugni::GNI_RC_SUCCESS) break;
    if (ev.type == ugni::CqEventType::kPostLocal) {
      comm_handle_completion(ctx, n, ev);
    }
  }

  // 2. Stalled sends, then fresh worker traffic.  Workers enqueue with
  // their own cursors, so ready times are not monotonic across the queue:
  // scan for everything that is ready, keeping relative order.
  comm_flush(ctx, n);
  std::deque<NodeState::Out> later;
  while (!n.outq.empty()) {
    NodeState::Out out = n.outq.front();
    n.outq.pop_front();
    if (out.ready > ctx.now()) {
      later.push_back(out);
      continue;
    }
    ctx.charge(kSmpDequeueNs);
    c_comm_thread_sends_->inc();
    if (out.size + 4 <= smsg_cap_) {  // +4: worker routing prefix
      comm_send(ctx, n, out.dest_pe, kTagData, out.msg, out.size, out.msg);
      continue;
    }
    begin_node_rendezvous(ctx, n, out.dest_pe, out.size, out.msg);
  }
  n.outq.swap(later);

  n.comm_avail = ctx.now();
  if (!n.outq.empty() || !n.backlog.empty()) {
    c_comm_thread_busy_defers_->inc();
    SimTime next = n.comm_avail + (n.backlog.empty() ? 0 : 500);
    // A backed-off backlog must not busy-spin before its retry instant.
    if (!n.backlog.empty()) next = std::max(next, n.backlog_retry_at);
    for (const auto& out : n.outq) next = std::min(next, out.ready);
    comm_wake(n, std::max(next, n.comm_avail));
  }
  if (n.comm_pending_wake != kNever) {
    SimTime w = n.comm_pending_wake;
    n.comm_pending_wake = kNever;
    comm_wake(n, w);
  }
}

void SmpLayer::begin_node_rendezvous(sim::Context& ctx, NodeState& n,
                                     int dest_pe, std::uint32_t size,
                                     void* msg) {
  // Rendezvous: the buffer lives in the node pool (pre-registered) or is
  // registered here by the comm thread (with backoff on transient
  // resource exhaustion).
  ugni::gni_mem_handle_t hndl{};
  if (n.pool && n.pool->owns(msg)) {
    hndl = n.pool->handle_of(msg);
  } else {
    detail::register_with_retry(ctx, retry_, n.nic,
                                reinterpret_cast<std::uint64_t>(msg), size,
                                nullptr, &hndl,
                                {c_retry_mem_register_, c_retry_escalations_});
  }
  std::uint64_t id = n.next_send_id++;
  n.sends.emplace(id, NodeState::LargeSend{msg});
  InitCtrl ctrl;
  ctrl.send_id = id;
  ctrl.addr = reinterpret_cast<std::uint64_t>(msg);
  ctrl.hndl = hndl;
  ctrl.size = size;
  ctrl.dest_pe = dest_pe;
  if (trace::enabled())
    trace::emit(trace::Ev::kRdvInit, ctx.now(), 0, dest_pe, size);
  comm_send(ctx, n, dest_pe, kTagInit, &ctrl, sizeof(ctrl), nullptr);
}

void SmpLayer::comm_send(sim::Context& ctx, NodeState& n, int dest_pe,
                         std::uint8_t tag, const void* bytes,
                         std::uint32_t len, void* owned_msg) {
  const int dest_node = machine_->node_of_pe(dest_pe);
  ugni::gni_ep_handle_t ep = connect(n, dest_node);
  // The worker-level destination rides in the first payload bytes for
  // kTagData (the Converse envelope) and inside InitCtrl otherwise, so the
  // SMSG itself needs no extra routing field — but data messages must tell
  // the remote comm thread which worker to hand off to.  We prepend a
  // 4-byte dest for data messages.
  if (tag == kTagData) {
    std::vector<std::uint8_t> wire(4 + len);
    std::int32_t d32 = dest_pe;
    std::memcpy(wire.data(), &d32, 4);
    std::memcpy(wire.data() + 4, bytes, len);
    if (n.backlog.empty()) {
      ugni::gni_return_t rc = ugni::GNI_SmsgSendWTag(
          ep, wire.data(), static_cast<std::uint32_t>(wire.size()), nullptr,
          0, 0, tag);
      if (rc == ugni::GNI_RC_SUCCESS) {
        if (trace::spans_enabled()) {
          // -1: the node's comm thread posts, not a worker PE.
          mark_msg_spans(bytes, trace::Stage::kTransportPost, -1, ctx.now());
        }
        if (owned_msg && n.pool && n.pool->owns(owned_msg)) {
          n.pool->free(owned_msg);
        } else if (owned_msg) {
          ::operator delete[](owned_msg, std::align_val_t{16});
        }
        return;
      }
      ugni::check(rc, "GNI_SmsgSendWTag", ugni::GNI_RC_NOT_DONE,
                  ugni::GNI_RC_ERROR_RESOURCE);
    }
    NodeState::Pending p;
    p.dest_node = dest_node;
    p.dest_pe = dest_pe;
    p.tag = tag;
    p.ctrl = std::move(wire);
    p.msg = owned_msg;
    n.backlog.push_back(std::move(p));
    return;
  }
  if (n.backlog.empty()) {
    ugni::gni_return_t rc =
        ugni::GNI_SmsgSendWTag(ep, bytes, len, nullptr, 0, 0, tag);
    if (rc == ugni::GNI_RC_SUCCESS) return;
    ugni::check(rc, "GNI_SmsgSendWTag", ugni::GNI_RC_NOT_DONE,
                ugni::GNI_RC_ERROR_RESOURCE);
  }
  NodeState::Pending p;
  p.dest_node = dest_node;
  p.dest_pe = dest_pe;
  p.tag = tag;
  p.ctrl.assign(static_cast<const std::uint8_t*>(bytes),
                static_cast<const std::uint8_t*>(bytes) + len);
  n.backlog.push_back(std::move(p));
}

void SmpLayer::comm_flush(sim::Context& ctx, NodeState& n) {
  if (n.backlog.empty()) return;
  // See UgniLayer::flush_backlog: the backoff/demotion machinery engages
  // only under an active fault plan; otherwise stalls are plain credit
  // exhaustion and the credit-return notify is the exact wake.
  const bool faulty = machine_->fault_injector() != nullptr;
  if (faulty && ctx.now() < n.backlog_retry_at) return;
  while (!n.backlog.empty()) {
    NodeState::Pending& p = n.backlog.front();
    ugni::gni_ep_handle_t ep = connect(n, p.dest_node);
    ugni::gni_return_t rc = ugni::GNI_SmsgSendWTag(
        ep, p.ctrl.data(), static_cast<std::uint32_t>(p.ctrl.size()),
        nullptr, 0, 0, p.tag);
    if (rc != ugni::GNI_RC_SUCCESS) {
      ugni::check(rc, "GNI_SmsgSendWTag (backlog)", ugni::GNI_RC_NOT_DONE,
                  ugni::GNI_RC_ERROR_RESOURCE);
      if (!faulty) return;
      ++n.backlog_attempts;
      c_retry_smsg_->inc();
      if (n.backlog_attempts == retry_.max_retries + 1) {
        c_retry_escalations_->inc();
        UGNIRT_WARN("node " << n.node
                            << ": smsg backlog still stalled after "
                            << retry_.max_retries
                            << " retries; continuing at capped backoff");
      }
      // Sustained starvation: route the stalled data message around the
      // SMSG credits entirely via the rendezvous path.
      if (n.backlog_attempts >= retry_.demote_after && p.tag == kTagData &&
          p.msg) {
        void* msg = p.msg;
        const int dest_pe = p.dest_pe;
        const std::uint32_t size = header_of(msg)->size;
        n.backlog.pop_front();
        n.backlog_attempts = 0;
        c_fallback_rendezvous_->inc();
        if (trace::enabled()) {
          trace::emit(trace::Ev::kFallback, ctx.now(), 0, dest_pe, size);
        }
        begin_node_rendezvous(ctx, n, dest_pe, size, msg);
        continue;
      }
      const SimTime pause = retry_.backoff_for(n.backlog_attempts);
      if (trace::enabled()) {
        trace::emit(trace::Ev::kRetryBackoff, ctx.now(), pause, p.dest_pe,
                    static_cast<std::uint32_t>(n.backlog_attempts));
      }
      n.backlog_retry_at = ctx.now() + pause;
      return;
    }
    n.backlog_attempts = 0;
    if (p.tag == kTagData && trace::spans_enabled()) {
      // Wire bytes carry the 4-byte worker-routing prefix before the
      // envelope (see comm_send).
      mark_msg_spans(p.ctrl.data() + 4, trace::Stage::kTransportPost, -1,
                     ctx.now());
    }
    if (p.msg) {
      if (n.pool && n.pool->owns(p.msg)) {
        n.pool->free(p.msg);
      } else {
        ::operator delete[](p.msg, std::align_val_t{16});
      }
    }
    n.backlog.pop_front();
  }
}

void SmpLayer::deliver_to_worker(NodeState& n, int pe, void* msg,
                                 SimTime t) {
  (void)n;
  header_of(msg)->alloc_pe = pe;
  if (trace::spans_enabled()) {
    mark_msg_spans(msg, trace::Stage::kCqComplete, pe, t);
  }
  machine_->pe(pe).enqueue(msg, t);
}

void SmpLayer::comm_handle_smsg(sim::Context& ctx, NodeState& n,
                                int src_inst) {
  const auto& mc = machine_->options().mc;
  ugni::gni_ep_handle_t ep = n.nic->ep_for_peer(src_inst);
  void* data = nullptr;
  std::uint8_t tag = 0;
  SimTime arrival = ctx.now();
  if (ugni::GNI_SmsgGetNextWTag(ep, &data, &tag, &arrival) !=
      ugni::GNI_RC_SUCCESS) {
    return;
  }
  switch (tag) {
    case kTagData: {
      std::int32_t dest_pe = 0;
      std::memcpy(&dest_pe, data, 4);
      const auto* h = header_of(static_cast<std::uint8_t*>(data) + 4);
      std::uint32_t size = h->size;
      void* buf = n.pool ? n.pool->alloc(size) : nullptr;
      if (!buf) {
        if (n.pool) {
          c_fallback_heap_->inc();
          if (trace::enabled()) {
            trace::emit(trace::Ev::kFallback, ctx.now(), 0, dest_pe, size);
          }
        }
        ctx.charge(mc.malloc_cost(size));
        buf = ::operator new[](size, std::align_val_t{16});
      }
      ctx.charge(mc.memcpy_cost(size));
      std::memcpy(buf, static_cast<std::uint8_t*>(data) + 4, size);
      if (trace::spans_enabled()) {
        mark_msg_spans(buf, trace::Stage::kRxArrive, dest_pe, arrival);
      }
      deliver_to_worker(n, dest_pe, buf, ctx.now());
      break;
    }
    case kTagInit: {
      InitCtrl ctrl;
      std::memcpy(&ctrl, data, sizeof(ctrl));
      if (std::getenv("UGNIRT_SMPDBG"))
        std::fprintf(stderr, "INIT node=%d id=%llu size=%u dest=%d t=%lld\n",
                     n.node, (unsigned long long)ctrl.send_id, ctrl.size,
                     ctrl.dest_pe, (long long)ctx.now());
      NodeState::LargeRecv lr;
      lr.send_id = ctrl.send_id;
      lr.src_node = node_state(src_inst).node;
      lr.dest_pe = ctrl.dest_pe;
      ugni::gni_mem_handle_t local{};
      void* pooled = n.pool ? n.pool->alloc(ctrl.size) : nullptr;
      if (pooled) {
        lr.buf = pooled;
        local = n.pool->handle_of(pooled);
      } else {
        if (n.pool) {
          c_fallback_heap_->inc();
          if (trace::enabled()) {
            trace::emit(trace::Ev::kFallback, ctx.now(), 0, ctrl.dest_pe,
                        ctrl.size);
          }
        }
        ctx.charge(mc.malloc_cost(ctrl.size));
        lr.buf = ::operator new[](ctrl.size, std::align_val_t{16});
        detail::register_with_retry(
            ctx, retry_, n.nic, reinterpret_cast<std::uint64_t>(lr.buf),
            ctrl.size, nullptr, &local,
            {c_retry_mem_register_, c_retry_escalations_});
      }
      lr.desc = std::make_unique<ugni::gni_post_descriptor_t>();
      lr.desc->type = ctrl.size < mc.rdma_threshold
                          ? ugni::GNI_POST_FMA_GET
                          : ugni::GNI_POST_RDMA_GET;
      lr.desc->local_addr = reinterpret_cast<std::uint64_t>(lr.buf);
      lr.desc->local_mem_hndl = local;
      lr.desc->remote_addr = ctrl.addr;
      lr.desc->remote_mem_hndl = ctrl.hndl;
      lr.desc->length = ctrl.size;
      std::uint64_t rid = n.next_recv_id++;
      lr.desc->post_id = rid;
      ugni::gni_ep_handle_t back = connect(n, lr.src_node);
      detail::post_with_retry(ctx, retry_, back, lr.desc.get(),
                              lr.desc->type == ugni::GNI_POST_RDMA_GET,
                              {c_retry_post_, c_retry_escalations_});
      c_rendezvous_gets_->inc();
      if (trace::enabled())
        trace::emit(trace::Ev::kRdvGet, ctx.now(), 0, lr.src_node, ctrl.size);
      n.recvs.emplace(rid, std::move(lr));
      break;
    }
    case kTagAck: {
      AckCtrl ack;
      std::memcpy(&ack, data, sizeof(ack));
      auto it = n.sends.find(ack.send_id);
      assert(it != n.sends.end());
      void* msg = it->second.msg;
      if (n.pool && n.pool->owns(msg)) {
        n.pool->free(msg);
      } else {
        ::operator delete[](msg, std::align_val_t{16});
      }
      n.sends.erase(it);
      break;
    }
    default:
      assert(false && "SMP layer: unknown tag");
  }
  ugni::GNI_SmsgRelease(ep);
}

void SmpLayer::comm_handle_completion(sim::Context& ctx, NodeState& n,
                                      const ugni::gni_cq_entry_t& ev) {
  ugni::gni_post_descriptor_t* desc = nullptr;
  ugni::check(ugni::GNI_GetCompleted(n.tx_cq, ev, &desc),
              "GNI_GetCompleted");
  auto it = n.recvs.find(desc->post_id);
  assert(it != n.recvs.end());
  NodeState::LargeRecv& lr = it->second;
  if (std::getenv("UGNIRT_SMPDBG"))
    std::fprintf(stderr, "GETDONE node=%d id=%llu dest=%d t=%lld\n", n.node,
                 (unsigned long long)lr.send_id, lr.dest_pe,
                 (long long)ctx.now());
  AckCtrl ack{lr.send_id};
  if (trace::enabled())
    trace::emit(trace::Ev::kRdvAck, ctx.now(), 0, lr.src_node,
                static_cast<std::uint32_t>(desc->length));
  // Route the ACK back via a worker-agnostic control message to any PE of
  // the source node (only the node matters for ACKs).
  int dest_pe_on_src_node =
      lr.src_node * machine_->options().effective_pes_per_node();
  comm_send(ctx, n, dest_pe_on_src_node, kTagAck, &ack, sizeof(ack),
            nullptr);
  deliver_to_worker(n, lr.dest_pe, lr.buf, ctx.now());
  n.recvs.erase(it);
}

// ---------------------------------------------------------------------------
// Worker-side progress (nothing to do: the comm thread owns the network)
// ---------------------------------------------------------------------------

void SmpLayer::advance(sim::Context&, converse::Pe&) {}

bool SmpLayer::has_backlog(const converse::Pe&) const { return false; }

}  // namespace ugnirt::lrts
