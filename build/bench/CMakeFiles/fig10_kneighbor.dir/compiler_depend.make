# Empty compiler generated dependencies file for fig10_kneighbor.
# This may be replaced when dependencies are built.
