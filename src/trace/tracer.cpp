#include "trace/tracer.hpp"

#include <algorithm>
#include <ostream>

namespace ugnirt::trace {

void Tracer::record(int /*pe*/, SimTime t0, SimTime t1, SpanKind kind) {
  // Late spans (recorded after finalize, e.g. by a machine torn down after
  // the bench summarized) are ignored rather than corrupting the bins.
  if (finalized_) return;
  if (t1 <= t0) return;
  auto& series = kind == SpanKind::kApp ? app_ : overhead_;
  std::size_t first = static_cast<std::size_t>(t0 / bin_ns_);
  std::size_t last = static_cast<std::size_t>((t1 - 1) / bin_ns_);
  if (last >= series.size()) {
    app_.resize(last + 1, 0.0);
    overhead_.resize(last + 1, 0.0);
  }
  auto& target = kind == SpanKind::kApp ? app_ : overhead_;
  for (std::size_t b = first; b <= last; ++b) {
    SimTime bin_start = static_cast<SimTime>(b) * bin_ns_;
    SimTime lo = std::max(t0, bin_start);
    SimTime hi = std::min(t1, bin_start + bin_ns_);
    target[b] += static_cast<double>(hi - lo);
  }
}

double Tracer::bin_capacity(std::size_t bin) const {
  SimTime bin_start = static_cast<SimTime>(bin) * bin_ns_;
  SimTime width = std::min(bin_ns_, std::max<SimTime>(end_ - bin_start, 0));
  return static_cast<double>(width) * pes_;
}

void Tracer::finalize(SimTime end) {
  end_ = end;
  std::size_t nbins = end > 0
      ? static_cast<std::size_t>((end + bin_ns_ - 1) / bin_ns_)
      : 0;
  app_.resize(std::max(app_.size(), nbins), 0.0);
  overhead_.resize(app_.size(), 0.0);
  idle_.assign(app_.size(), 0.0);
  for (std::size_t b = 0; b < idle_.size(); ++b) {
    idle_[b] = std::max(0.0, bin_capacity(b) - app_[b] - overhead_[b]);
  }
  finalized_ = true;
}

double Tracer::app_pct(std::size_t bin) const {
  double cap = bin_capacity(bin);
  return cap > 0 ? 100.0 * app_.at(bin) / cap : 0.0;
}

double Tracer::overhead_pct(std::size_t bin) const {
  double cap = bin_capacity(bin);
  return cap > 0 ? 100.0 * overhead_.at(bin) / cap : 0.0;
}

double Tracer::idle_pct(std::size_t bin) const {
  double cap = bin_capacity(bin);
  return cap > 0 ? 100.0 * idle_.at(bin) / cap : 0.0;
}

namespace {
double safe_pct(double part, double whole) {
  return whole > 0 ? 100.0 * part / whole : 0.0;
}
}  // namespace

double Tracer::total_app_pct() const {
  double total = static_cast<double>(end_) * pes_;
  double app = 0;
  for (double v : app_) app += v;
  return safe_pct(app, total);
}

double Tracer::total_overhead_pct() const {
  double total = static_cast<double>(end_) * pes_;
  double ov = 0;
  for (double v : overhead_) ov += v;
  return safe_pct(ov, total);
}

double Tracer::total_idle_pct() const {
  double total = static_cast<double>(end_) * pes_;
  double idle = 0;
  for (double v : idle_) idle += v;
  return safe_pct(idle, total);
}

void Tracer::write_csv(std::ostream& out) const {
  out << "time_ms,app_pct,overhead_pct,idle_pct\n";
  for (std::size_t b = 0; b < bins(); ++b) {
    double t_ms = static_cast<double>(b) * static_cast<double>(bin_ns_) / 1e6;
    out << t_ms << ',' << app_pct(b) << ',' << overhead_pct(b) << ','
        << idle_pct(b) << '\n';
  }
}

}  // namespace ugnirt::trace
