# Empty compiler generated dependencies file for ugnirt_charm.
# This may be replaced when dependencies are built.
