// Shared mempool -> metrics aggregation for the LRTS machine layers.
//
// Every layer that owns per-PE (or per-node) MemPools publishes the same
// job-wide "mempool.*" registry keys; the summation and the key names
// live here once so the uGNI and SMP layers cannot drift apart.
#pragma once

#include "mempool/mempool.hpp"
#include "trace/metrics.hpp"

namespace ugnirt::lrts {

/// Aggregate + publish the "mempool.*" registry entries over any range of
/// state holders exposing a `pool` member (unique_ptr/raw pointer to a
/// mempool::MemPool, null when the pool is disabled).  Holders themselves
/// may be null (PE slots not yet initialized).
template <typename Range>
void collect_pool_metrics(trace::MetricsRegistry& reg, const Range& holders) {
  mempool::MemPoolStats pool;
  for (const auto& h : holders) {
    if (!h || !h->pool) continue;
    const mempool::MemPoolStats& p = h->pool->stats();
    pool.allocs += p.allocs;
    pool.frees += p.frees;
    pool.expansions += p.expansions;
    pool.slab_bytes += p.slab_bytes;
    pool.outstanding += p.outstanding;
    pool.freelist_hits += p.freelist_hits;
    pool.bin_lookups += p.bin_lookups;
  }
  reg.counter("mempool.allocs").set(pool.allocs);
  reg.counter("mempool.frees").set(pool.frees);
  reg.counter("mempool.expansions").set(pool.expansions);
  reg.counter("mempool.freelist_hits").set(pool.freelist_hits);
  reg.counter("mempool.bin_lookups").set(pool.bin_lookups);
  reg.gauge("mempool.slab_bytes").set(static_cast<double>(pool.slab_bytes));
  reg.gauge("mempool.outstanding").set(static_cast<double>(pool.outstanding));
}

}  // namespace ugnirt::lrts
