#include "trace/session.hpp"

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>

#include "util/log.hpp"

namespace ugnirt::trace {

namespace {

bool env_truthy(const char* name) {
  const char* v = std::getenv(name);
  return v != nullptr && v[0] != '\0' && !(v[0] == '0' && v[1] == '\0');
}

std::size_t env_size(const char* name, std::size_t fallback) {
  const char* v = std::getenv(name);
  if (!v || !*v) return fallback;
  char* end = nullptr;
  unsigned long long n = std::strtoull(v, &end, 10);
  if (end == v || n == 0) return fallback;
  return static_cast<std::size_t>(n);
}

}  // namespace

TraceSession::TraceSession(std::size_t ring_capacity, std::string output_base,
                           bool base_from_env, SpanConfig span_cfg)
    : events_(ring_capacity),
      output_base_(std::move(output_base)),
      base_from_env_(base_from_env) {
  set_tracer(&events_);
  if (span_cfg.sample > 0) {
    spans_ = std::make_unique<SpanCollector>(span_cfg);
    set_span_collector(spans_.get());
  }
}

TraceSession* TraceSession::active() {
  // Function-local static: first caller pays the env parse; the session
  // lives until static destruction, whose dtor flushes output files.
  static std::unique_ptr<TraceSession> session = [] {
    SpanConfig span_cfg;
    span_cfg.sample = env_size("UGNIRT_SPAN_SAMPLE", 0);
    span_cfg.max_spans = env_size("UGNIRT_SPAN_MAX_SPANS", span_cfg.max_spans);
    // Span sampling activates the session on its own: breakdowns need the
    // metrics/flush machinery even when event tracing stays off.
    if (!env_truthy("UGNIRT_TRACE") && span_cfg.sample == 0) {
      return std::unique_ptr<TraceSession>();
    }
    const char* base = std::getenv("UGNIRT_TRACE_FILE");
    std::size_t ring = env_size("UGNIRT_TRACE_RING", 1u << 16);
    bool base_from_env = base && *base;
    return std::unique_ptr<TraceSession>(
        new TraceSession(ring, base_from_env ? base : "ugnirt_trace",
                         base_from_env, span_cfg));
  }();
  return session.get();
}

void TraceSession::flush() {
  flushed_ = true;
  // Surface per-kind event loss (ring evictions + rate-limited emission
  // sites) as counters so capped telemetry is visible in the export.
  for (int i = 0; i < kEvCount; ++i) {
    const Ev type = static_cast<Ev>(i);
    if (const std::uint64_t n = events_.dropped_of(type)) {
      metrics_.counter(std::string("trace.dropped.") + event_name(type))
          .set(n);
    }
  }
  if (spans_) spans_->fill_histograms(metrics_);
  bool ok = true;
  {
    std::ofstream json(output_base_ + ".trace.json");
    events_.write_chrome_json(json);
    ok = ok && json.good();
  }
  {
    std::ofstream csv(output_base_ + ".events.csv");
    events_.write_csv(csv);
    ok = ok && csv.good();
  }
  {
    std::ofstream csv(output_base_ + ".metrics.csv");
    metrics_.write_csv(csv);
    ok = ok && csv.good();
  }
  {
    std::ofstream json(output_base_ + ".metrics.json");
    metrics_.write_json(json);
    ok = ok && json.good();
  }
  if (spans_) {
    std::ofstream json(output_base_ + ".spans.json");
    spans_->write_chrome_json(json);
    ok = ok && json.good();
  }
  if (!ok) {
    std::cerr << "[ugnirt trace] ERROR: could not write trace files at base '"
              << output_base_ << "'\n";
    metrics_.dump_table(std::cerr);
    return;
  }
  std::cerr << "[ugnirt trace] wrote " << output_base_ << ".trace.json ("
            << events_.total_events() << " events, "
            << events_.total_dropped() << " dropped), " << output_base_
            << ".metrics.csv (" << metrics_.size() << " metrics)";
  if (spans_) {
    std::cerr << ", " << output_base_ << ".spans.json ("
              << spans_->span_count() << " spans)";
  }
  std::cerr << "\n";
  metrics_.dump_table(std::cerr);
  if (spans_) spans_->write_breakdown(std::cerr);
}

TraceSession::~TraceSession() {
  if (!flushed_) flush();
  set_span_collector(nullptr);
  set_tracer(nullptr);
}

}  // namespace ugnirt::trace
