file(REMOVE_RECURSE
  "CMakeFiles/fig04_fma_bte.dir/fig04_fma_bte.cpp.o"
  "CMakeFiles/fig04_fma_bte.dir/fig04_fma_bte.cpp.o.d"
  "fig04_fma_bte"
  "fig04_fma_bte.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_fma_bte.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
