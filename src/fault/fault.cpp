#include "fault/fault.hpp"

#include <string>

#include "trace/metrics.hpp"
#include "util/config.hpp"

namespace ugnirt::fault {

namespace {

std::string rkey(const char* name) { return std::string("retry.") + name; }
std::string fkey(const char* name) { return std::string("fault.") + name; }

constexpr const char* kRetryKeys[] = {
    "retry.max_retries",    "retry.backoff_base_ns", "retry.backoff_mult",
    "retry.backoff_max_ns", "retry.demote_after",
};

constexpr const char* kFaultKeys[] = {
    "fault.enabled",         "fault.seed",
    "fault.p_post_error",    "fault.p_reg_error",
    "fault.p_smsg_error",    "fault.p_cq_overrun",
    "fault.p_smsg_starve",   "fault.smsg_starve_ns",
    "fault.p_link_degrade",  "fault.link_slowdown",
    "fault.link_degrade_ns", "fault.p_link_blackout",
    "fault.link_blackout_ns",
};

}  // namespace

RetryPolicy RetryPolicy::from(const Config& cfg) {
  RetryPolicy p;
  p.max_retries =
      static_cast<int>(cfg.get_int_or(rkey("max_retries"), p.max_retries));
  p.backoff_base_ns = cfg.get_int_or(rkey("backoff_base_ns"), p.backoff_base_ns);
  p.backoff_mult = cfg.get_double_or(rkey("backoff_mult"), p.backoff_mult);
  p.backoff_max_ns = cfg.get_int_or(rkey("backoff_max_ns"), p.backoff_max_ns);
  p.demote_after =
      static_cast<int>(cfg.get_int_or(rkey("demote_after"), p.demote_after));
  return p;
}

void RetryPolicy::export_to(Config& cfg) const {
  cfg.set(rkey("max_retries"), std::to_string(max_retries));
  cfg.set(rkey("backoff_base_ns"), std::to_string(backoff_base_ns));
  cfg.set(rkey("backoff_mult"), std::to_string(backoff_mult));
  cfg.set(rkey("backoff_max_ns"), std::to_string(backoff_max_ns));
  cfg.set(rkey("demote_after"), std::to_string(demote_after));
}

const char* const* RetryPolicy::config_keys(std::size_t* count) {
  *count = sizeof(kRetryKeys) / sizeof(kRetryKeys[0]);
  return kRetryKeys;
}

FaultPlan FaultPlan::from(const Config& cfg) {
  FaultPlan p;
  p.enabled = cfg.get_bool_or(fkey("enabled"), p.enabled);
  p.seed = static_cast<std::uint64_t>(
      cfg.get_int_or(fkey("seed"), static_cast<std::int64_t>(p.seed)));
  p.p_post_error = cfg.get_double_or(fkey("p_post_error"), p.p_post_error);
  p.p_reg_error = cfg.get_double_or(fkey("p_reg_error"), p.p_reg_error);
  p.p_smsg_error = cfg.get_double_or(fkey("p_smsg_error"), p.p_smsg_error);
  p.p_cq_overrun = cfg.get_double_or(fkey("p_cq_overrun"), p.p_cq_overrun);
  p.p_smsg_starve = cfg.get_double_or(fkey("p_smsg_starve"), p.p_smsg_starve);
  p.smsg_starve_ns = cfg.get_int_or(fkey("smsg_starve_ns"), p.smsg_starve_ns);
  p.p_link_degrade =
      cfg.get_double_or(fkey("p_link_degrade"), p.p_link_degrade);
  p.link_slowdown = cfg.get_double_or(fkey("link_slowdown"), p.link_slowdown);
  p.link_degrade_ns =
      cfg.get_int_or(fkey("link_degrade_ns"), p.link_degrade_ns);
  p.p_link_blackout =
      cfg.get_double_or(fkey("p_link_blackout"), p.p_link_blackout);
  p.link_blackout_ns =
      cfg.get_int_or(fkey("link_blackout_ns"), p.link_blackout_ns);
  return p;
}

void FaultPlan::export_to(Config& cfg) const {
  cfg.set(fkey("enabled"), enabled ? "true" : "false");
  cfg.set(fkey("seed"), std::to_string(seed));
  cfg.set(fkey("p_post_error"), std::to_string(p_post_error));
  cfg.set(fkey("p_reg_error"), std::to_string(p_reg_error));
  cfg.set(fkey("p_smsg_error"), std::to_string(p_smsg_error));
  cfg.set(fkey("p_cq_overrun"), std::to_string(p_cq_overrun));
  cfg.set(fkey("p_smsg_starve"), std::to_string(p_smsg_starve));
  cfg.set(fkey("smsg_starve_ns"), std::to_string(smsg_starve_ns));
  cfg.set(fkey("p_link_degrade"), std::to_string(p_link_degrade));
  cfg.set(fkey("link_slowdown"), std::to_string(link_slowdown));
  cfg.set(fkey("link_degrade_ns"), std::to_string(link_degrade_ns));
  cfg.set(fkey("p_link_blackout"), std::to_string(p_link_blackout));
  cfg.set(fkey("link_blackout_ns"), std::to_string(link_blackout_ns));
}

const char* const* FaultPlan::config_keys(std::size_t* count) {
  *count = sizeof(kFaultKeys) / sizeof(kFaultKeys[0]);
  return kFaultKeys;
}

FaultInjector::FaultInjector(const FaultPlan& plan)
    : plan_(plan), base_(plan.seed) {}

Rng& FaultInjector::stream(Site site, std::uint64_t actor) {
  const std::uint64_t id = (static_cast<std::uint64_t>(site) << 48) ^ actor;
  auto it = streams_.find(id);
  if (it == streams_.end()) {
    it = streams_.emplace(id, base_.derive(id)).first;
  }
  return it->second;
}

bool FaultInjector::draw(Site site, std::uint64_t actor, double p) {
  if (p <= 0.0) return false;
  return stream(site, actor).next_double() < p;
}

bool FaultInjector::inject_post_error(std::int32_t inst) {
  const bool hit =
      draw(kSitePost, static_cast<std::uint64_t>(inst), plan_.p_post_error);
  if (hit) ++n_.post_errors;
  return hit;
}

bool FaultInjector::inject_reg_error(std::int32_t inst) {
  const bool hit =
      draw(kSiteReg, static_cast<std::uint64_t>(inst), plan_.p_reg_error);
  if (hit) ++n_.reg_errors;
  return hit;
}

bool FaultInjector::inject_smsg_error(std::int32_t inst) {
  const bool hit = draw(kSiteSmsgError, static_cast<std::uint64_t>(inst),
                        plan_.p_smsg_error);
  if (hit) ++n_.smsg_errors;
  return hit;
}

bool FaultInjector::inject_cq_overrun(std::int32_t inst) {
  const bool hit =
      draw(kSiteCq, static_cast<std::uint64_t>(inst), plan_.p_cq_overrun);
  if (hit) ++n_.cq_overruns;
  return hit;
}

bool FaultInjector::smsg_starved(std::int32_t inst, std::int32_t peer,
                                 SimTime now) {
  const std::uint64_t chan = (static_cast<std::uint64_t>(
                                  static_cast<std::uint32_t>(inst))
                              << 32) |
                             static_cast<std::uint32_t>(peer);
  auto it = starve_until_.find(chan);
  if (it != starve_until_.end() && now < it->second) {
    ++n_.starved_sends;
    return true;
  }
  if (draw(kSiteStarve, chan, plan_.p_smsg_starve)) {
    starve_until_[chan] = now + plan_.smsg_starve_ns;
    ++n_.starve_windows;
    ++n_.starved_sends;
    return true;
  }
  return false;
}

LinkFault FaultInjector::link_fault(int from_node, int to_node, SimTime now) {
  LinkFault f;
  if (plan_.p_link_degrade <= 0.0 && plan_.p_link_blackout <= 0.0) return f;
  const std::uint64_t route = (static_cast<std::uint64_t>(
                                   static_cast<std::uint32_t>(from_node))
                               << 32) |
                              static_cast<std::uint32_t>(to_node);
  LinkState& ls = links_[route];
  if (now >= ls.blackout_until &&
      draw(kSiteLink, route, plan_.p_link_blackout)) {
    ls.blackout_until = now + plan_.link_blackout_ns;
    ++n_.blackout_windows;
  }
  if (now >= ls.degraded_until &&
      draw(kSiteLink, route, plan_.p_link_degrade)) {
    ls.degraded_until = now + plan_.link_degrade_ns;
    ++n_.degrade_windows;
  }
  if (now < ls.blackout_until) f.delay = ls.blackout_until - now;
  if (now < ls.degraded_until && plan_.link_slowdown > 1.0) {
    f.slowdown = plan_.link_slowdown;
  }
  return f;
}

void FaultInjector::collect_metrics(trace::MetricsRegistry& reg) const {
  reg.counter("fault.post_errors").set(n_.post_errors);
  reg.counter("fault.reg_errors").set(n_.reg_errors);
  reg.counter("fault.smsg_errors").set(n_.smsg_errors);
  reg.counter("fault.cq_overruns").set(n_.cq_overruns);
  reg.counter("fault.smsg_starve_windows").set(n_.starve_windows);
  reg.counter("fault.smsg_starved_sends").set(n_.starved_sends);
  reg.counter("fault.link_degrade_windows").set(n_.degrade_windows);
  reg.counter("fault.link_blackout_windows").set(n_.blackout_windows);
}

std::uint64_t FaultInjector::injected_total() const {
  return n_.post_errors + n_.reg_errors + n_.smsg_errors + n_.cq_overruns +
         n_.starve_windows + n_.degrade_windows + n_.blackout_windows;
}

}  // namespace ugnirt::fault
