// Real-time component benchmarks (google-benchmark): hot paths of the
// simulator itself — event engine, memory pool, torus routing, and the
// N-Queens kernel.  These measure *host* performance, unlike the figure
// benches which report virtual time.
#include <benchmark/benchmark.h>

#include "apps/nqueens/solver.hpp"
#include "gemini/network.hpp"
#include "mempool/mempool.hpp"
#include "sim/context.hpp"
#include "sim/engine.hpp"
#include "topo/torus.hpp"

namespace {

using namespace ugnirt;

void BM_EngineScheduleRun(benchmark::State& state) {
  const int events = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Engine engine{sim::EngineOptions::from_env()};
    std::uint64_t sink = 0;
    for (int i = 0; i < events; ++i) {
      engine.schedule_at((i * 7919) % 100000,
                         [&sink, i] { sink += static_cast<std::uint64_t>(i); });
    }
    engine.run();
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * events);
}
BENCHMARK(BM_EngineScheduleRun)->Arg(1000)->Arg(100000);

void BM_TorusRoute(benchmark::State& state) {
  topo::Torus3D torus(16, 12, 8);
  int a = 0;
  for (auto _ : state) {
    a = (a + 577) % torus.nodes();
    int b = (a * 31 + 7) % torus.nodes();
    auto route = torus.route(a, b);
    benchmark::DoNotOptimize(route.data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TorusRoute);

void BM_NetworkTransfer(benchmark::State& state) {
  sim::Engine engine{sim::EngineOptions::from_env()};
  gemini::Network net(engine.scheduler(), topo::Torus3D::for_nodes(64),
                      gemini::MachineConfig{});
  SimTime t = 0;
  int i = 0;
  for (auto _ : state) {
    gemini::TransferRequest req;
    req.mech = (i & 1) ? gemini::Mechanism::kBtePut : gemini::Mechanism::kSmsg;
    req.initiator_node = i % 64;
    req.remote_node = (i * 13 + 1) % 64;
    req.bytes = 1024;
    req.issue = t;
    auto res = net.transfer(req);
    t = res.cpu_done;
    ++i;
    benchmark::DoNotOptimize(res);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NetworkTransfer);

void BM_MemPoolAllocFree(benchmark::State& state) {
  sim::Engine engine{sim::EngineOptions::from_env()};
  gemini::Network net(engine.scheduler(), topo::Torus3D::for_nodes(2),
                      gemini::MachineConfig{});
  ugni::Domain dom(net);
  sim::Context ctx(engine.scheduler(), 0);
  sim::ScopedContext guard(ctx);
  ugni::gni_nic_handle_t nic = nullptr;
  ugni::GNI_CdmAttach(&dom, 0, 0, &nic);
  mempool::MemPool pool(nic, 1 << 20);
  const std::size_t size = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    void* p = pool.alloc(size);
    benchmark::DoNotOptimize(p);
    pool.free(p);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MemPoolAllocFree)->Arg(88)->Arg(4096)->Arg(65536);

void BM_NQueensSolver(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto r = ugnirt::apps::nqueens::solve_all(n);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_NQueensSolver)->Arg(8)->Arg(10)->Arg(12);

}  // namespace

BENCHMARK_MAIN();
