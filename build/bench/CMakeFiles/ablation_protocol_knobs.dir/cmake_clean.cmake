file(REMOVE_RECURSE
  "CMakeFiles/ablation_protocol_knobs.dir/ablation_protocol_knobs.cpp.o"
  "CMakeFiles/ablation_protocol_knobs.dir/ablation_protocol_knobs.cpp.o.d"
  "ablation_protocol_knobs"
  "ablation_protocol_knobs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_protocol_knobs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
