file(REMOVE_RECURSE
  "CMakeFiles/table2_namd_strong.dir/table2_namd_strong.cpp.o"
  "CMakeFiles/table2_namd_strong.dir/table2_namd_strong.cpp.o.d"
  "table2_namd_strong"
  "table2_namd_strong.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_namd_strong.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
