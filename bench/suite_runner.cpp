// Machine-readable benchmark suite for regression tracking.
//
// Runs the core paper scenarios (ping-pong, bandwidth, one-to-all,
// kNeighbor, small-message flood) plus a kNeighbor PE-count sweep
// (1k -> 16k PEs) and writes two JSON files for tools/bench_report.py:
//
//   BENCH_core.json   one metrics object (latency/bandwidth/throughput and
//                     per-stage span percentiles of an instrumented
//                     ping-pong)
//   BENCH_scale.json  one metrics object per sweep point (virtual elapsed,
//                     msgs/sec, simulator events/sec, SMSG mailbox
//                     bytes/PE)
//
// Every metric carries a "better" direction ("lower" / "higher" / "info");
// the comparator gates on the first two and reports the rest.  Virtual-time
// results are deterministic, so the committed baselines are exact; wall-
// clock numbers are machine-dependent and always informational.
//
// Usage: suite_runner [core|scale|all]   (default: all)
#include <array>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "sim/engine.hpp"
#include "apps/microbench/microbench.hpp"
#include "bench_util.hpp"
#include "converse/machine.hpp"
#include "lrts/runtime.hpp"
#include "lrts/ugni_layer.hpp"
#include "trace/metrics.hpp"
#include "trace/spans.hpp"

using namespace ugnirt;

namespace {

struct Metric {
  std::string name;
  double value = 0;
  std::string unit;
  const char* better = "lower";  // "lower" | "higher" | "info"
};

void write_metrics(std::ostream& out, const std::vector<Metric>& ms,
                   const char* indent) {
  for (std::size_t i = 0; i < ms.size(); ++i) {
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.9g", ms[i].value);
    out << indent << '"';
    benchtool::json_escape_to(out, ms[i].name);
    out << "\": {\"value\": " << buf << ", \"unit\": \"" << ms[i].unit
        << "\", \"better\": \"" << ms[i].better << "\"}";
    if (i + 1 < ms.size()) out << ',';
    out << '\n';
  }
}

double wall_ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

converse::MachineOptions ugni_options(int pes = 2) {
  converse::MachineOptions o;
  o.layer = converse::LayerKind::kUgni;
  o.pes = pes;
  o.pes_per_node = 1;  // all traffic crosses the NIC (one-to-all needs
                       // remote nodes; keeps every scenario apples-to-apples)
  return o;
}

// ---- core suite ---------------------------------------------------------

/// Run `fn` with every submit sampled into a private SpanCollector and
/// append `<prefix>.<stage>.{p50,p99}_ns` metrics for each stage that saw
/// traffic, plus the end-to-end total.
template <typename Fn>
void with_span_metrics(const std::string& prefix, std::vector<Metric>& out,
                       Fn&& fn) {
  trace::SpanCollector col(trace::SpanConfig{/*sample=*/1});
  trace::set_span_collector(&col);
  fn();
  trace::set_span_collector(nullptr);

  trace::MetricsRegistry reg;
  col.fill_histograms(reg);
  for (int s = 0; s < trace::kStageCount; ++s) {
    const char* name = trace::stage_name(static_cast<trace::Stage>(s));
    const trace::Histogram* h =
        reg.find_histogram(std::string("span.stage.") + name);
    if (!h || h->count() == 0) continue;
    out.push_back({prefix + "." + name + ".p50_ns", h->p50(), "ns", "lower"});
    out.push_back({prefix + "." + name + ".p99_ns", h->p99(), "ns", "lower"});
  }
  if (const trace::Histogram* t = reg.find_histogram("span.total_ns")) {
    if (t->count() > 0) {
      out.push_back({prefix + ".total.p50_ns", t->p50(), "ns", "lower"});
      out.push_back({prefix + ".total.p99_ns", t->p99(), "ns", "lower"});
    }
  }
}

double find_value(const std::vector<Metric>& ms, const std::string& name) {
  for (const Metric& m : ms) {
    if (m.name == name) return m.value;
  }
  return 0;
}

std::vector<Metric> run_hold_point(int held, sim::QueueKind queue,
                                   int shards, int threads = 0,
                                   bool arena = true);

std::vector<Metric> run_core() {
  std::vector<Metric> ms;

  apps::bench::PingPongOptions small;
  small.payload = 8;
  ms.push_back({"pingpong_8b_ns",
                static_cast<double>(
                    apps::bench::charm_pingpong(ugni_options(), small)),
                "ns", "lower"});

  apps::bench::PingPongOptions large;
  large.payload = 64 * 1024;
  ms.push_back({"pingpong_64k_ns",
                static_cast<double>(
                    apps::bench::charm_pingpong(ugni_options(), large)),
                "ns", "lower"});

  ms.push_back({"bandwidth_1m_mbps",
                apps::bench::charm_bandwidth(ugni_options(), 1024 * 1024),
                "MB/s", "higher"});

  ms.push_back({"onetoall_1k_ns",
                static_cast<double>(apps::bench::charm_onetoall(
                    ugni_options(16), 1024)),
                "ns", "lower"});

  ms.push_back({"kneighbor_1k_ns",
                static_cast<double>(apps::bench::charm_kneighbor(
                    ugni_options(16), 1024)),
                "ns", "lower"});

  const auto t0 = std::chrono::steady_clock::now();
  apps::bench::KNeighborFloodResult flood =
      apps::bench::charm_kneighbor_flood(ugni_options(16), 64);
  const double flood_wall = wall_ms_since(t0);
  ms.push_back({"flood_msgs_per_sec", flood.msgs_per_sec, "msgs/s",
                "higher"});
  ms.push_back({"flood_wall_ms", flood_wall, "ms", "info"});
  ms.push_back(
      {"flood_sim_msgs_per_wall_sec",
       flood_wall > 0
           ? static_cast<double>(flood.messages) / (flood_wall / 1000.0)
           : 0,
       "msgs/s", "info"});

  // Per-stage critical path of a small-message ping-pong, every message
  // sampled (paper Fig 6's question, asked of the simulator itself).
  with_span_metrics("pingpong_span", ms, [] {
    apps::bench::PingPongOptions pp;
    pp.payload = 8;
    apps::bench::charm_pingpong(ugni_options(), pp);
  });

  // Host hot-path A/Bs (micro_dispatch's headline numbers, captured as
  // informational trend lines): slab-recycling event arena vs fresh-carve
  // records on the hold model, and flat kind-table dispatch vs the classic
  // branch path on the flood.  Virtual-time results are identical across
  // variants by construction — only the wall-clock rates move.
  {
    const std::vector<Metric> on = run_hold_point(
        16384, sim::QueueKind::kCalendar, 1, 0, /*arena=*/true);
    const std::vector<Metric> off = run_hold_point(
        16384, sim::QueueKind::kCalendar, 1, 0, /*arena=*/false);
    const double r_on = find_value(on, "sim_events_per_wall_sec");
    const double r_off = find_value(off, "sim_events_per_wall_sec");
    ms.push_back(
        {"hold_arena_events_per_wall_sec", r_on, "events/s", "info"});
    ms.push_back(
        {"hold_freshcarve_events_per_wall_sec", r_off, "events/s", "info"});
    ms.push_back(
        {"arena_speedup_x", r_off > 0 ? r_on / r_off : 0, "x", "info"});
  }
  {
    converse::MachineOptions classic_opts = ugni_options(16);
    classic_opts.flat_dispatch = false;
    const auto c0 = std::chrono::steady_clock::now();
    apps::bench::charm_kneighbor_flood(classic_opts, 64);
    const double classic_wall = wall_ms_since(c0);
    ms.push_back({"flood_classic_wall_ms", classic_wall, "ms", "info"});
    ms.push_back({"flat_dispatch_speedup_x",
                  flood_wall > 0 ? classic_wall / flood_wall : 0, "x",
                  "info"});
  }

  return ms;
}

// ---- scale sweep --------------------------------------------------------

/// One sweep point: `pattern` traffic at `pes` PEs on the `queue` engine
/// backend.  Patterns:
///
///   ring       every PE fires kBurst 1 KiB messages at each ring
///              neighbor (left and right)
///   kneighbor  every PE fires kBurst 1 KiB messages at each of its
///              k=2 neighbors on both sides (4 destinations)
///
/// Direct machine build so the point can report simulator events/sec and
/// the layer's mailbox bytes/PE (the full-machine memory curve).
std::vector<Metric> run_scale_point(int pes, const std::string& pattern,
                                    sim::QueueKind queue, int shards = 1) {
  constexpr int kBurst = 4;
  constexpr std::uint32_t kBytes = 1024;
  const int k = pattern == "kneighbor" ? 2 : 1;

  converse::MachineOptions o = ugni_options(pes);
  o.pes_per_node = 1;
  o.use_pxshm = false;
  o.sim_queue = queue;
  o.sim_shards = shards;
  auto m = lrts::make_machine(converse::LayerKind::kUgni, o);
  int h = m->register_handler([](void* msg) { converse::CmiFree(msg); });

  const std::uint32_t total = kBytes + converse::kCmiHeaderBytes;
  const auto t0 = std::chrono::steady_clock::now();
  for (int pe = 0; pe < pes; ++pe) {
    m->start(pe, [&m, pe, pes, k, h, total] {
      for (int i = 0; i < kBurst; ++i) {
        for (int d = 1; d <= k; ++d) {
          for (int dest : {(pe + d) % pes, (pe + pes - d) % pes}) {
            void* msg = converse::CmiAlloc(total);
            converse::CmiSetHandler(msg, h);
            converse::CmiSyncSendAndFree(dest, total, msg);
          }
        }
      }
    });
  }
  m->run();
  const double wall = wall_ms_since(t0);

  const double elapsed_ns = static_cast<double>(m->engine().now());
  const double events = static_cast<double>(m->engine().executed());
  const std::uint64_t msgs =
      static_cast<std::uint64_t>(pes) * 2 * k * kBurst;
  auto* layer = dynamic_cast<lrts::UgniLayer*>(&m->layer());
  const double mailbox_per_pe =
      layer ? static_cast<double>(layer->total_mailbox_bytes()) / pes : 0;

  std::vector<Metric> ms;
  ms.push_back({"elapsed_ns", elapsed_ns, "ns", "lower"});
  ms.push_back({"msgs_per_sec",
                elapsed_ns > 0
                    ? static_cast<double>(msgs) / (elapsed_ns * 1e-9)
                    : 0,
                "msgs/s", "higher"});
  ms.push_back({"mailbox_bytes_per_pe", mailbox_per_pe, "B", "lower"});
  ms.push_back({"sim_events", events, "events", "info"});
  ms.push_back({"wall_ms", wall, "ms", "info"});
  ms.push_back({"sim_events_per_wall_sec",
                wall > 0 ? events / (wall / 1000.0) : 0, "events/s",
                "info"});
  return ms;
}

/// Hold-model engine benchmark: `held` self-rescheduling timers (the
/// classic event-queue workload — pending size stays constant at `held`)
/// driven by the conservative window drive.  This is the pure
/// events-per-wall-second view of sharding: each shard pops from a small
/// L2-resident queue instead of one giant pending set, so shards=8 beats
/// shards=1 on a single core — the speedup is algorithmic (cache + heap
/// depth), not thread parallelism.  Timers are shard-confined (slab
/// placement, like the machine's PEs), strides are a deterministic LCG.
std::vector<Metric> run_hold_point(int held, sim::QueueKind queue,
                                   int shards, int threads, bool arena) {
  // 16-byte functor: rescheduling stays in SmallFn's inline buffer.
  struct Timer {
    sim::Engine* eng;
    int shard;
    std::uint32_t state;
    void operator()() {
      state = state * 1664525u + 1013904223u;
      // Stride 64..2111 ns (mean ~1088): several hundred pops per shard
      // per 1 us window at 64k+ timers, so barrier costs amortize.
      eng->scheduler(shard).schedule_after(64 + (state >> 21), *this);
    }
  };

  // Wall-clock on a shared 1-core builder is noisy (2-4x swings between
  // back-to-back runs), so take best-of-3; the virtual-time metrics are
  // deterministic and identical across repetitions.
  constexpr int kReps = 3;
  double best_wall = 0;
  double events = 0, rounds = 0, violations = 0;
  for (int rep = 0; rep < kReps; ++rep) {
    sim::EngineOptions eo;
    eo.queue = queue;
    eo.shards = shards;
    eo.mode = sim::DriveMode::kWindow;
    eo.lookahead_ns = 1024;
    eo.threads = threads;
    eo.arena = arena;
    sim::Engine e(eo);
    for (int i = 0; i < held; ++i) {
      const int shard = static_cast<int>(
          static_cast<long long>(i) * e.shards() / held);
      e.scheduler(shard).schedule_at(
          i % 977,
          Timer{&e, shard, static_cast<std::uint32_t>(i) * 2654435761u});
    }
    const auto t0 = std::chrono::steady_clock::now();
    e.run_until(20'000);  // ~18 rounds, ~20 events per timer
    const double wall = wall_ms_since(t0);
    if (rep == 0 || wall < best_wall) best_wall = wall;
    events = static_cast<double>(e.executed());
    rounds = static_cast<double>(e.rounds());
    violations = static_cast<double>(e.lookahead_violations());
  }
  const double wall = best_wall;

  std::vector<Metric> ms;
  ms.push_back({"sim_events", events, "events", "info"});
  ms.push_back({"rounds", rounds, "rounds", "info"});
  ms.push_back({"lookahead_violations", violations, "events", "lower"});
  ms.push_back({"wall_ms", wall, "ms", "info"});
  ms.push_back({"sim_events_per_wall_sec",
                wall > 0 ? events / (wall / 1000.0) : 0, "events/s",
                "info"});
  return ms;
}

// ---- output -------------------------------------------------------------

void write_core(const char* path) {
  std::vector<Metric> ms = run_core();
  std::ofstream out(path);
  out << "{\n  \"suite\": \"core\",\n  \"schema\": 1,\n  \"metrics\": {\n";
  write_metrics(out, ms, "    ");
  out << "  }\n}\n";
  std::printf("wrote %s (%zu metrics)\n", path, ms.size());
}

/// The committed sweep: 1k -> full Hopper (153,216 PEs).  Ring runs on
/// both queue backends (the heap column is the calendar's speedup
/// denominator); the heavier kNeighbor pattern runs on the calendar
/// backend the big points need.
struct SweepPoint {
  int pes;
  const char* pattern;
  sim::QueueKind queue;
  int shards = 1;
};

constexpr std::array<int, 5> kSweepPes = {1024, 4096, 16384, 65536, 153216};

std::vector<SweepPoint> sweep_points() {
  std::vector<SweepPoint> pts;
  for (int pes : kSweepPes) {
    pts.push_back({pes, "ring", sim::QueueKind::kHeap});
    pts.push_back({pes, "ring", sim::QueueKind::kCalendar});
    pts.push_back({pes, "kneighbor", sim::QueueKind::kCalendar});
  }
  // Shard speedup curves (ISSUE: conservative parallel engine): the hold
  // model at the two big sweep sizes, shards=1 as the denominator.  The
  // shards=8 rows carry speedup_vs_shards1_x, gated >= 1.5 in CI via
  // `bench_report.py check`.
  for (int pes : {65536, 153216}) {
    for (sim::QueueKind queue :
         {sim::QueueKind::kHeap, sim::QueueKind::kCalendar}) {
      pts.push_back({pes, "hold", queue, 1});
      pts.push_back({pes, "hold", queue, 8});
    }
  }
  return pts;
}

void write_scale(const char* path) {
  std::ofstream out(path);
  out << "{\n  \"suite\": \"scale\",\n  \"schema\": 1,\n  \"sweep\": [\n";
  const std::vector<SweepPoint> pts = sweep_points();
  // events/wall-sec of the most recent shards=1 hold row per (pes, queue),
  // consumed by the matching shards=8 row's speedup metric.
  double hold_base = 0;
  for (std::size_t i = 0; i < pts.size(); ++i) {
    const SweepPoint& p = pts[i];
    const bool hold = std::strcmp(p.pattern, "hold") == 0;
    std::vector<Metric> ms = hold
        ? run_hold_point(p.pes, p.queue, p.shards)
        : run_scale_point(p.pes, p.pattern, p.queue, p.shards);
    if (hold) {
      const double rate = find_value(ms, "sim_events_per_wall_sec");
      if (p.shards == 1) {
        hold_base = rate;
      } else {
        ms.push_back({"speedup_vs_shards1_x",
                      hold_base > 0 ? rate / hold_base : 0, "x", "info"});
      }
    }
    out << "    {\"pes\": " << p.pes << ", \"pattern\": \"" << p.pattern
        << "\", \"queue\": \"" << sim::to_string(p.queue) << '"';
    if (p.shards != 1) out << ", \"shards\": " << p.shards;
    out << ", \"metrics\": {\n";
    write_metrics(out, ms, "      ");
    out << "    }}";
    if (i + 1 < pts.size()) out << ',';
    out << '\n';
    std::printf("scale: %d PEs %s/%s shards=%d done\n", p.pes, p.pattern,
                sim::to_string(p.queue), p.shards);
    std::fflush(stdout);
  }
  out << "  ]\n}\n";
  std::printf("wrote %s\n", path);
}

}  // namespace

int main(int argc, char** argv) {
  const std::string which = argc > 1 ? argv[1] : "all";
  if (which == "core" || which == "all") write_core("BENCH_core.json");
  if (which == "scale" || which == "all") write_scale("BENCH_scale.json");
  if (which == "scalepoint") {
    // One point, metrics to stdout — for profiling and ad-hoc probing.
    // Usage: suite_runner scalepoint <pes> [ring|kneighbor|hold]
    //                     [heap|calendar] [shards] [threads]
    // Machine patterns also honor UGNIRT_SIM_SHARDS via make_machine.
    const int pes = argc > 2 ? std::atoi(argv[2]) : 16384;
    const std::string pattern = argc > 3 ? argv[3] : "ring";
    sim::QueueKind queue = sim::QueueKind::kCalendar;
    if (argc > 4 && !sim::queue_kind_from_string(argv[4], &queue)) {
      std::fprintf(stderr, "unknown queue '%s'\n", argv[4]);
      return 2;
    }
    const int shards = argc > 5 ? std::atoi(argv[5]) : 1;
    const int threads = argc > 6 ? std::atoi(argv[6]) : 0;
    const std::vector<Metric> ms =
        pattern == "hold" ? run_hold_point(pes, queue, shards, threads)
                          : run_scale_point(pes, pattern, queue, shards);
    for (const Metric& m : ms) {
      std::printf("%s = %.9g %s\n", m.name.c_str(), m.value, m.unit.c_str());
    }
    return 0;
  }
  if (which != "core" && which != "scale" && which != "all") {
    std::fprintf(stderr,
                 "usage: suite_runner [core|scale|all|scalepoint ...]\n");
    return 2;
  }
  return 0;
}
