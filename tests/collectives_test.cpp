// Barrier / gather / section-multicast collectives, across machine layers.
#include <gtest/gtest.h>

#include <cstring>
#include <numeric>
#include <set>

#include "charm/collectives.hpp"
#include "lrts/runtime.hpp"

namespace ugnirt::charm {
namespace {

using converse::LayerKind;
using converse::MachineOptions;

MachineOptions opts(int pes) {
  MachineOptions o;
  o.pes = pes;
  return o;
}

class CollectivesBothLayers : public ::testing::TestWithParam<LayerKind> {};

TEST_P(CollectivesBothLayers, BarrierReleasesEveryPeEveryRound) {
  auto m = lrts::make_machine(GetParam(), opts(13));
  Charm charm(*m);
  Collectives coll(charm);

  std::vector<int> releases(13, 0);
  int bar = -1;
  bar = coll.register_barrier([&] {
    int me = converse::CmiMyPe();
    if (++releases[static_cast<std::size_t>(me)] < 3) {
      coll.arrive(bar);  // next round
    }
  });
  for (int pe = 0; pe < 13; ++pe) {
    m->start(pe, [&coll, bar] { coll.arrive(bar); });
  }
  m->run();
  for (int pe = 0; pe < 13; ++pe) {
    EXPECT_EQ(releases[static_cast<std::size_t>(pe)], 3) << "pe " << pe;
  }
}

TEST_P(CollectivesBothLayers, BarrierSeparatesPhases) {
  // No PE may observe the release before every PE arrived.
  auto m = lrts::make_machine(GetParam(), opts(9));
  Charm charm(*m);
  Collectives coll(charm);
  std::vector<SimTime> arrive_at(9, 0), release_at(9, 0);
  int bar = coll.register_barrier([&] {
    release_at[static_cast<std::size_t>(converse::CmiMyPe())] =
        converse::Machine::running()->current_pe().ctx().now();
  });
  for (int pe = 0; pe < 9; ++pe) {
    m->start(pe, [&, pe] {
      // Staggered arrival: later PEs do fake work first.
      converse::CmiChargeWork(pe * 50'000);
      arrive_at[static_cast<std::size_t>(pe)] =
          converse::Machine::running()->current_pe().ctx().now();
      coll.arrive(bar);
    });
  }
  m->run();
  SimTime last_arrival =
      *std::max_element(arrive_at.begin(), arrive_at.end());
  for (int pe = 0; pe < 9; ++pe) {
    EXPECT_GE(release_at[static_cast<std::size_t>(pe)], last_arrival)
        << "pe " << pe << " released before the barrier was full";
  }
}

TEST_P(CollectivesBothLayers, GatherCollectsPerPeBlobs) {
  auto m = lrts::make_machine(GetParam(), opts(7));
  Charm charm(*m);
  Collectives coll(charm);
  bool done = false;
  int g = coll.register_gather(
      [&](const std::vector<std::vector<std::uint8_t>>& blobs) {
        ASSERT_EQ(blobs.size(), 7u);
        for (int pe = 0; pe < 7; ++pe) {
          const auto& b = blobs[static_cast<std::size_t>(pe)];
          ASSERT_EQ(b.size(), static_cast<std::size_t>(pe + 1));
          for (std::uint8_t byte : b) {
            EXPECT_EQ(byte, static_cast<std::uint8_t>(0x40 + pe));
          }
        }
        done = true;
      });
  for (int pe = 0; pe < 7; ++pe) {
    m->start(pe, [&, pe] {
      std::vector<std::uint8_t> blob(static_cast<std::size_t>(pe + 1),
                                     static_cast<std::uint8_t>(0x40 + pe));
      coll.contribute_blob(g, blob.data(),
                           static_cast<std::uint32_t>(blob.size()));
    });
  }
  m->run();
  EXPECT_TRUE(done);
}

TEST_P(CollectivesBothLayers, SectionMulticastHitsExactlyTheSection) {
  auto m = lrts::make_machine(GetParam(), opts(16));
  Charm charm(*m);
  Collectives coll(charm);
  std::vector<int> hits(16, 0);
  int h = coll.register_section_handler([&](const void* payload,
                                            std::uint32_t len) {
    ASSERT_EQ(len, 5u);
    EXPECT_EQ(std::memcmp(payload, "hello", 5), 0);
    hits[static_cast<std::size_t>(converse::CmiMyPe())]++;
  });
  int section = coll.create_section({2, 3, 5, 7, 11, 13});
  m->start(4, [&] { coll.multicast(section, h, "hello", 5); });
  m->run();
  std::set<int> members{2, 3, 5, 7, 11, 13};
  for (int pe = 0; pe < 16; ++pe) {
    EXPECT_EQ(hits[static_cast<std::size_t>(pe)], members.count(pe) ? 1 : 0)
        << "pe " << pe;
  }
}

TEST_P(CollectivesBothLayers, RepeatedMulticastsDeliverInOrderPerMember) {
  auto m = lrts::make_machine(GetParam(), opts(8));
  Charm charm(*m);
  Collectives coll(charm);
  std::vector<std::vector<int>> seen(8);
  int h = coll.register_section_handler(
      [&](const void* payload, std::uint32_t) {
        int v;
        std::memcpy(&v, payload, sizeof(v));
        seen[static_cast<std::size_t>(converse::CmiMyPe())].push_back(v);
      });
  int section = coll.create_section({1, 4, 6});
  m->start(0, [&] {
    for (int i = 0; i < 10; ++i) {
      coll.multicast(section, h, &i, sizeof(i));
    }
  });
  m->run();
  for (int pe : {1, 4, 6}) {
    const auto& s = seen[static_cast<std::size_t>(pe)];
    ASSERT_EQ(s.size(), 10u) << "pe " << pe;
    for (int i = 0; i < 10; ++i) EXPECT_EQ(s[static_cast<std::size_t>(i)], i);
  }
}

INSTANTIATE_TEST_SUITE_P(Layers, CollectivesBothLayers,
                         ::testing::Values(LayerKind::kUgni, LayerKind::kMpi),
                         [](const auto& info) {
                           return info.param == LayerKind::kUgni ? "uGNI"
                                                                 : "MPI";
                         });

TEST(CollectivesSmp, AllCollectivesWorkInSmpMode) {
  MachineOptions o = opts(12);
  o.smp_mode = true;
  o.pes_per_node = 4;
  auto m = lrts::make_machine(LayerKind::kUgni, o);
  Charm charm(*m);
  Collectives coll(charm);
  int released = 0, gathered = 0, mcast = 0;
  int bar = coll.register_barrier([&] { ++released; });
  int g = coll.register_gather(
      [&](const std::vector<std::vector<std::uint8_t>>& blobs) {
        gathered = static_cast<int>(blobs.size());
      });
  int h = coll.register_section_handler(
      [&](const void*, std::uint32_t) { ++mcast; });
  int section = coll.create_section({0, 5, 10});
  for (int pe = 0; pe < 12; ++pe) {
    m->start(pe, [&, pe] {
      coll.arrive(bar);
      std::uint8_t byte = static_cast<std::uint8_t>(pe);
      coll.contribute_blob(g, &byte, 1);
      if (pe == 3) coll.multicast(section, h, "x", 1);
    });
  }
  m->run();
  EXPECT_EQ(released, 12);
  EXPECT_EQ(gathered, 12);
  EXPECT_EQ(mcast, 3);
}

}  // namespace
}  // namespace ugnirt::charm
