file(REMOVE_RECURSE
  "CMakeFiles/fig08a_persistent.dir/fig08a_persistent.cpp.o"
  "CMakeFiles/fig08a_persistent.dir/fig08a_persistent.cpp.o.d"
  "fig08a_persistent"
  "fig08a_persistent.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08a_persistent.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
