#include "mpilite/mpilite.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "trace/events.hpp"
#include "util/log.hpp"

namespace ugnirt::mpilite {

namespace {

// SMSG tags of the internal MPI protocol.
constexpr std::uint8_t kMpiE0 = 10;    // envelope + inline payload
constexpr std::uint8_t kMpiE1 = 11;    // envelope + bounce buffer info
constexpr std::uint8_t kMpiRts = 12;   // envelope + user buffer info
constexpr std::uint8_t kMpiAck = 13;   // req_id: sender resources free

struct CtrlE1 {
  std::int32_t src;
  std::int32_t tag;
  std::uint32_t size;
  std::uint64_t req_id;
  std::uint64_t addr;
  ugni::gni_mem_handle_t hndl;
};

struct CtrlAck {
  std::uint64_t req_id;
};

sim::Context& ctx_now() {
  sim::Context* c = sim::current();
  assert(c && "mpilite calls must run inside a simulated context");
  return *c;
}

/// Attempts after which a permanently-failing call aborts (a fault plan
/// with p = 1.0 on a required resource cannot make progress).
constexpr int kHardCap = 1000;

}  // namespace

// ---------------------------------------------------------------------------
// Per-rank state
// ---------------------------------------------------------------------------

struct MpiComm::RankState {
  int rank = -1;
  ugni::gni_nic_handle_t nic = nullptr;
  ugni::gni_cq_handle_t rx_cq = nullptr;
  ugni::gni_cq_handle_t tx_cq = nullptr;
  std::function<void(SimTime)> wake;

  // Pre-registered bounce pool for E1 sends (and E1 receive landings).
  // MPI registers these once at init, so eager traffic never pays
  // registration (the advantage the memory pool then matches).
  std::unique_ptr<std::uint8_t[]> bounce_mem;
  std::uint64_t bounce_bytes = 0;
  ugni::gni_mem_handle_t bounce_hndl{};
  std::vector<std::uint8_t*> bounce_free;  // fixed-size slots

  // Outstanding E1/rendezvous sends awaiting ACK: req_id -> bounce slot
  // (E1, may be null for rendezvous) + request pointer + uDREG handle.
  struct OutSend {
    Request* req = nullptr;
    std::uint8_t* bounce_slot = nullptr;
  };
  std::unordered_map<std::uint64_t, OutSend> outstanding;

  // Arrived messages not yet received.
  std::list<InMsg> unexpected;

  // Credit-stalled control messages, retried from the progress engine.
  struct PendingCtrl {
    int dest = -1;
    std::uint8_t tag = 0;
    std::vector<std::uint8_t> bytes;
  };
  std::deque<PendingCtrl> backlog;
  int backlog_attempts = 0;      // consecutive failed flush attempts
  SimTime backlog_retry_at = 0;  // no flush retry before this instant

  // uDREG registration cache: page-rounded (addr,len) -> handle, LRU.
  struct UdregEntry {
    std::uint64_t key = 0;
    ugni::gni_mem_handle_t hndl{};
    std::uint64_t base = 0;
    std::uint64_t len = 0;
  };
  std::list<UdregEntry> udreg_lru;  // front = most recent
  std::unordered_map<std::uint64_t, std::list<UdregEntry>::iterator> udreg;
};

// ---------------------------------------------------------------------------
// Setup
// ---------------------------------------------------------------------------

MpiComm::MpiComm(gemini::Network& network, int ranks,
                 std::function<int(int)> node_of)
    : network_(&network), ranks_(ranks), node_of_(std::move(node_of)) {
  domain_ = std::make_unique<ugni::Domain>(network);
  ranks_state_.resize(static_cast<std::size_t>(ranks));
}

MpiComm::~MpiComm() = default;

void MpiComm::init_rank(int rank) {
  assert(rank >= 0 && rank < ranks_);
  auto s = std::make_unique<RankState>();
  s->rank = rank;
  const auto& mc = network_->config();
  ugni::gni_return_t rc =
      ugni::GNI_CdmAttach(domain_.get(), rank, node_of_(rank), &s->nic);
  assert(rc == ugni::GNI_RC_SUCCESS);
  rc = ugni::GNI_CqCreate(s->nic, mc.cq_entries, &s->rx_cq);
  assert(rc == ugni::GNI_RC_SUCCESS);
  rc = ugni::GNI_CqCreate(s->nic, mc.cq_entries, &s->tx_cq);
  assert(rc == ugni::GNI_RC_SUCCESS);
  s->nic->set_smsg_rx_cq(s->rx_cq);
  s->nic->set_default_tx_cq(s->tx_cq);
  ugni::gni_smsg_attr_t attr;
  // MPI mailboxes are sized for envelopes + small eager payloads.
  attr.msg_maxsize = mc.smsg_max_bytes + 64;
  attr.mbox_maxcredit = mc.mpi_mailbox_credits;
  s->nic->set_smsg_attr(attr);

  (void)rc;
  ranks_state_[static_cast<std::size_t>(rank)] = std::move(s);
}

void MpiComm::ensure_bounce_pool(RankState& s) {
  if (s.bounce_mem) return;
  // Eager bounce pool: 64 slots x eager_threshold.  The real library
  // registers this at MPI_Init; allocating it lazily (first E1 traffic)
  // keeps memory proportional to ranks that actually move eager data,
  // which matters when simulating >10k ranks in one process.  The modeled
  // registration cost is charged at init time semantics: nothing extra.
  const auto& mc = network_->config();
  const std::uint32_t slot = mc.mpi_eager_threshold;
  const std::uint32_t slots = 64;
  s.bounce_bytes = static_cast<std::uint64_t>(slot) * slots;
  s.bounce_mem = std::make_unique<std::uint8_t[]>(s.bounce_bytes);
  register_with_retry(ctx_now(), s,
                      reinterpret_cast<std::uint64_t>(s.bounce_mem.get()),
                      s.bounce_bytes, &s.bounce_hndl);
  for (std::uint32_t i = 0; i < slots; ++i) {
    s.bounce_free.push_back(s.bounce_mem.get() + i * slot);
  }
}

void MpiComm::register_with_retry(sim::Context& ctx, RankState& s,
                                  std::uint64_t addr, std::uint64_t len,
                                  ugni::gni_mem_handle_t* hndl_out) {
  int failures = 0;
  for (;;) {
    ugni::gni_return_t rc =
        ugni::check(ugni::GNI_MemRegister(s.nic, addr, len, nullptr, 0,
                                          hndl_out),
                    "GNI_MemRegister", ugni::GNI_RC_ERROR_RESOURCE);
    if (rc == ugni::GNI_RC_SUCCESS) return;
    if (++failures > kHardCap) {
      ugni::detail::check_fail(rc, "GNI_MemRegister (retries exhausted)");
    }
    ++stats_.reg_retries;
    if (failures == retry_.max_retries + 1) {
      ++stats_.escalations;
      UGNIRT_WARN("mpilite rank " << s.rank
                                  << ": GNI_MemRegister still failing after "
                                  << retry_.max_retries
                                  << " retries; continuing at capped backoff");
    }
    const SimTime pause = retry_.backoff_for(failures);
    if (trace::enabled()) {
      trace::emit(trace::Ev::kRetryBackoff, ctx.now(), pause, /*peer=*/-1,
                  static_cast<std::uint32_t>(failures));
    }
    ctx.charge(pause);
  }
}

void MpiComm::set_wake(int rank, std::function<void(SimTime)> fn) {
  RankState& s = st(rank);
  s.wake = std::move(fn);
  auto hook = [&s](SimTime t) {
    if (s.wake) s.wake(t);
  };
  s.rx_cq->set_notify(hook);
  s.tx_cq->set_notify(hook);
  s.nic->set_credit_notify(hook);  // retry stalled sends on credit return
}

ugni::gni_ep_handle_t MpiComm::connect(RankState& src, int dest) {
  ugni::gni_ep_handle_t ep = src.nic->get_or_connect(dest);
  assert(ep && "get_or_connect failed: unknown rank or NIC not configured");
  return ep;
}

void MpiComm::smsg_send_ctrl(sim::Context& /*ctx*/, RankState& s, int dest,
                             std::uint8_t tag, const void* bytes,
                             std::uint32_t len) {
  ugni::gni_ep_handle_t ep = connect(s, dest);
  if (s.backlog.empty()) {
    ugni::gni_return_t rc =
        ugni::GNI_SmsgSendWTag(ep, bytes, len, nullptr, 0, 0, tag);
    if (rc == ugni::GNI_RC_SUCCESS) return;
    // NOT_DONE: out of mailbox credits (or an injected starvation window);
    // ERROR_RESOURCE: an injected transient send failure.  Both go to the
    // internal send queue and retry from the progress engine.
    ugni::check(rc, "GNI_SmsgSendWTag", ugni::GNI_RC_NOT_DONE,
                ugni::GNI_RC_ERROR_RESOURCE);
  }
  // Out of mailbox credits: queue and retry from the progress engine (the
  // library keeps internal send queues for exactly this).
  RankState::PendingCtrl p;
  p.dest = dest;
  p.tag = tag;
  p.bytes.assign(static_cast<const std::uint8_t*>(bytes),
                 static_cast<const std::uint8_t*>(bytes) + len);
  s.backlog.push_back(std::move(p));
}

void MpiComm::flush_backlog(sim::Context& ctx, RankState& s) {
  if (s.backlog.empty()) return;
  // Injected starvation windows consume no credits, so the credit-return
  // notify cannot be relied on to retry; with a fault plan active the
  // backlog backs off exponentially and re-arms its own wake instead.
  const bool faulty = network_->fault_injector() != nullptr;
  if (faulty && ctx.now() < s.backlog_retry_at) return;
  while (!s.backlog.empty()) {
    RankState::PendingCtrl& p = s.backlog.front();
    ugni::gni_ep_handle_t ep = connect(s, p.dest);
    ugni::gni_return_t rc = ugni::GNI_SmsgSendWTag(
        ep, p.bytes.data(), static_cast<std::uint32_t>(p.bytes.size()),
        nullptr, 0, 0, p.tag);
    if (rc != ugni::GNI_RC_SUCCESS) {
      ugni::check(rc, "GNI_SmsgSendWTag (backlog)", ugni::GNI_RC_NOT_DONE,
                  ugni::GNI_RC_ERROR_RESOURCE);
      if (!faulty) return;
      ++s.backlog_attempts;
      ++stats_.smsg_retries;
      if (s.backlog_attempts == retry_.max_retries + 1) {
        ++stats_.escalations;
        UGNIRT_WARN("mpilite rank " << s.rank
                                    << ": send backlog still stalled after "
                                    << retry_.max_retries
                                    << " retries; continuing at capped "
                                       "backoff");
      }
      const SimTime pause = retry_.backoff_for(s.backlog_attempts);
      if (trace::enabled()) {
        trace::emit(trace::Ev::kRetryBackoff, ctx.now(), pause, p.dest,
                    static_cast<std::uint32_t>(s.backlog_attempts));
      }
      s.backlog_retry_at = ctx.now() + pause;
      RankState* sp = &s;
      const SimTime at = s.backlog_retry_at;
      network_->scheduler().schedule_at(at, [sp, at] {
        if (sp->wake) sp->wake(at);
      });
      return;
    }
    s.backlog_attempts = 0;
    s.backlog.pop_front();
  }
}

// ---------------------------------------------------------------------------
// uDREG
// ---------------------------------------------------------------------------

ugni::gni_mem_handle_t MpiComm::udreg_lookup(sim::Context& ctx, RankState& s,
                                             const void* addr,
                                             std::uint32_t len) {
  const auto& mc = network_->config();
  const std::uint64_t page = mc.page_bytes;
  std::uint64_t base = reinterpret_cast<std::uint64_t>(addr) & ~(page - 1);
  std::uint64_t end =
      (reinterpret_cast<std::uint64_t>(addr) + len + page - 1) & ~(page - 1);
  // Key on the page-rounded range (good enough for cache behavior).
  std::uint64_t key = base ^ (end << 1);

  if (auto it = s.udreg.find(key); it != s.udreg.end()) {
    ctx.charge(mc.udreg_hit_ns);
    ++udreg_.hits;
    s.udreg_lru.splice(s.udreg_lru.begin(), s.udreg_lru, it->second);
    return it->second->hndl;
  }
  ++udreg_.misses;
  RankState::UdregEntry entry;
  entry.key = key;
  entry.base = base;
  entry.len = end - base;
  register_with_retry(ctx, s, base, entry.len, &entry.hndl);
  s.udreg_lru.push_front(entry);
  s.udreg[key] = s.udreg_lru.begin();
  if (s.udreg_lru.size() > mc.udreg_capacity) {
    RankState::UdregEntry& victim = s.udreg_lru.back();
    ugni::GNI_MemDeregister(s.nic, &victim.hndl);
    ++udreg_.evictions;
    s.udreg.erase(victim.key);
    s.udreg_lru.pop_back();
  }
  return s.udreg.at(key)->hndl;
}

// ---------------------------------------------------------------------------
// Send
// ---------------------------------------------------------------------------

void MpiComm::isend(int rank, int dest, int tag, const void* buf,
                    std::uint32_t bytes, Request* req) {
  sim::Context& ctx = ctx_now();
  const auto& mc = network_->config();
  RankState& s = st(rank);
  ctx.charge(mc.mpi_call_overhead_ns);
  req->id = next_req_id_++;
  req->done = false;

  Envelope env;
  env.src = rank;
  env.tag = tag;
  env.size = bytes;
  env.req_id = req->id;

  if (node_of_(dest) == node_of_(rank) && dest != rank) {
    // Intra-node: user-space shared memory (double copy) below the XPMEM
    // threshold, kernel-assisted single copy above it (§IV-C).
    RankState& d = st(dest);
    InMsg m;
    m.env = env;
    bool buffered = true;
    if (bytes < mc.mpi_xpmem_threshold) {
      m.proto = InMsg::Proto::kShm;
      m.inline_data.resize(bytes);
      ctx.charge(mc.memcpy_cost(bytes));  // sender copy into shm
      std::memcpy(m.inline_data.data(), buf, bytes);
    } else {
      // XPMEM single copy reads straight from the sender's pages, so the
      // send cannot complete until the receive-side copy happens — the
      // "additional synchronization points" of §IV-C.
      m.proto = InMsg::Proto::kShmX;
      m.raddr = reinterpret_cast<std::uint64_t>(buf);
      s.outstanding[req->id] = RankState::OutSend{req, nullptr};
      buffered = false;
    }
    m.data_ready = ctx.now() + mc.mpi_shm_notify_ns;
    d.unexpected.push_back(std::move(m));
    ++stats_.unexpected;
    if (d.wake) {
      SimTime at = d.unexpected.back().data_ready;
      network_->scheduler().schedule_at(at, [&d, at] {
        if (d.wake) d.wake(at);
      });
    }
    req->done = buffered;
    return;
  }

  if (bytes <= mc.smsg_max_bytes) {
    // E0: envelope + payload inline in one SMSG.
    ++stats_.sends_e0;
    std::vector<std::uint8_t> wire(sizeof(Envelope) + bytes);
    std::memcpy(wire.data(), &env, sizeof(env));
    ctx.charge(mc.memcpy_cost(bytes));
    std::memcpy(wire.data() + sizeof(env), buf, bytes);
    smsg_send_ctrl(ctx, s, dest, kMpiE0, wire.data(),
                   static_cast<std::uint32_t>(wire.size()));
    req->done = true;  // buffered
    return;
  }

  if (bytes <= mc.mpi_eager_threshold) {
    ensure_bounce_pool(s);
    // When all bounce slots are in flight the library falls back to the
    // rendezvous path until ACKs recycle them (as MPICH does when eager
    // resources run out).
    if (!s.bounce_free.empty()) {
      // E1: copy to a pre-registered bounce slot; receiver will GET it.
      ++stats_.sends_e1;
      std::uint8_t* slot = s.bounce_free.back();
      s.bounce_free.pop_back();
      ctx.charge(mc.memcpy_cost(bytes));
      std::memcpy(slot, buf, bytes);

      CtrlE1 ctrl;
      ctrl.src = rank;
      ctrl.tag = tag;
      ctrl.size = bytes;
      ctrl.req_id = req->id;
      ctrl.addr = reinterpret_cast<std::uint64_t>(slot);
      ctrl.hndl = s.bounce_hndl;
      smsg_send_ctrl(ctx, s, dest, kMpiE1, &ctrl, sizeof(ctrl));
      // Request is "buffered-complete": user buffer reusable now; the slot
      // returns to the pool on ACK.
      s.outstanding[req->id] = RankState::OutSend{nullptr, slot};
      req->done = true;
      return;
    }
  }

  // R0 rendezvous: register the user buffer (uDREG) and send RTS.
  ++stats_.sends_rndv;
  CtrlE1 ctrl;
  ctrl.src = rank;
  ctrl.tag = tag;
  ctrl.size = bytes;
  ctrl.req_id = req->id;
  ctrl.addr = reinterpret_cast<std::uint64_t>(buf);
  ctrl.hndl = udreg_lookup(ctx, s, buf, bytes);
  smsg_send_ctrl(ctx, s, dest, kMpiRts, &ctrl, sizeof(ctrl));
  s.outstanding[req->id] = RankState::OutSend{req, nullptr};
}

void MpiComm::send(int rank, int dest, int tag, const void* buf,
                   std::uint32_t bytes) {
  Request req;
  isend(rank, dest, tag, buf, bytes, &req);
  // Rendezvous completion arrives via ACK; the ACK time is already known
  // once the receiver GETs, but a *blocking* standard send may legally
  // complete as soon as the buffer is reusable — for rendezvous that is
  // the ACK.  The benchmarks only block on sends in ping-pong patterns
  // where the ACK precedes any further progress, so test() in a loop is
  // equivalent to waiting; assert forward progress instead of spinning.
  if (!req.done) {
    // The paper's drivers never rely on blocking rendezvous sends
    // completing before the matching receive; treat as buffered-after-RTS.
    RankState& s = st(rank);
    auto it = s.outstanding.find(req.id);
    if (it != s.outstanding.end()) it->second.req = nullptr;
  }
}

bool MpiComm::test(int rank, Request* req) {
  sim::Context& ctx = ctx_now();
  RankState& s = st(rank);
  drain(ctx, s);
  return req->done;
}

// ---------------------------------------------------------------------------
// Receive / probe
// ---------------------------------------------------------------------------

void MpiComm::drain(sim::Context& ctx, RankState& s) {
  for (;;) {
    ugni::gni_cq_entry_t ev;
    ugni::gni_return_t rc = ugni::GNI_CqGetEvent(s.rx_cq, &ev);
    if (rc == ugni::GNI_RC_ERROR_RESOURCE) {
      // CQ overrun: drain + resynthesize instead of latching dead.
      std::uint32_t recovered = 0;
      ugni::check(ugni::GNI_CqErrorRecover(s.rx_cq, &recovered),
                  "GNI_CqErrorRecover");
      ++stats_.cq_overruns_recovered;
      continue;
    }
    if (rc != ugni::GNI_RC_SUCCESS) break;
    if (ev.type == ugni::CqEventType::kSmsg) {
      handle_smsg(ctx, s, ev.source_inst);
    }
  }
  flush_backlog(ctx, s);
}

void MpiComm::handle_smsg(sim::Context& ctx, RankState& s, int src_inst) {
  const auto& mc = network_->config();
  ugni::gni_ep_handle_t ep = s.nic->ep_for_peer(src_inst);
  void* data = nullptr;
  std::uint8_t tag = 0;
  ugni::gni_return_t rc = ugni::GNI_SmsgGetNextWTag(ep, &data, &tag);
  if (rc != ugni::GNI_RC_SUCCESS) return;

  switch (tag) {
    case kMpiE0: {
      InMsg m;
      std::memcpy(&m.env, data, sizeof(Envelope));
      m.proto = InMsg::Proto::kE0;
      m.inline_data.resize(m.env.size);
      ctx.charge(mc.memcpy_cost(m.env.size));
      std::memcpy(m.inline_data.data(),
                  static_cast<std::uint8_t*>(data) + sizeof(Envelope),
                  m.env.size);
      m.data_ready = ctx.now();
      ugni::GNI_SmsgRelease(ep);
      s.unexpected.push_back(std::move(m));
      ++stats_.unexpected;
      break;
    }
    case kMpiE1: {
      CtrlE1 ctrl;
      std::memcpy(&ctrl, data, sizeof(ctrl));
      ugni::GNI_SmsgRelease(ep);
      InMsg m;
      m.env = Envelope{ctrl.src, ctrl.tag, ctrl.size, ctrl.req_id};
      m.proto = InMsg::Proto::kE1;
      // GET the payload into a local landing buffer right away (eager).
      // The landing slots are part of the pre-registered bounce region, so
      // this costs no registration; the FMA GET occupies the receiving CPU
      // (it runs inside the MPI progress engine).
      m.landing.resize(ctrl.size);
      gemini::TransferRequest treq;
      treq.mech = gemini::Mechanism::kFmaGet;
      treq.initiator_node = node_of_(s.rank);
      treq.remote_node = node_of_(ctrl.src);
      treq.bytes = ctrl.size;
      treq.issue = ctx.now();
      gemini::TransferTimes tt = network_->transfer(treq);
      ctx.wait_until(tt.cpu_done);
      std::memcpy(m.landing.data(), reinterpret_cast<void*>(ctrl.addr),
                  ctrl.size);
      m.data_ready = tt.data_arrival;
      // ACK so the sender's bounce slot recycles.
      CtrlAck ack{ctrl.req_id};
      smsg_send_ctrl(ctx, s, ctrl.src, kMpiAck, &ack, sizeof(ack));
      s.unexpected.push_back(std::move(m));
      ++stats_.unexpected;
      break;
    }
    case kMpiRts: {
      CtrlE1 ctrl;
      std::memcpy(&ctrl, data, sizeof(ctrl));
      ugni::GNI_SmsgRelease(ep);
      InMsg m;
      m.env = Envelope{ctrl.src, ctrl.tag, ctrl.size, ctrl.req_id};
      m.proto = InMsg::Proto::kRndv;
      m.raddr = ctrl.addr;
      m.rhndl = ctrl.hndl;
      m.data_ready = 0;  // transferred at recv()
      s.unexpected.push_back(std::move(m));
      ++stats_.unexpected;
      break;
    }
    case kMpiAck: {
      CtrlAck ack;
      std::memcpy(&ack, data, sizeof(ack));
      ugni::GNI_SmsgRelease(ep);
      auto it = s.outstanding.find(ack.req_id);
      assert(it != s.outstanding.end());
      if (it->second.bounce_slot) s.bounce_free.push_back(it->second.bounce_slot);
      if (it->second.req) it->second.req->done = true;
      s.outstanding.erase(it);
      break;
    }
    default:
      assert(false && "unknown MPI smsg tag");
  }
}

MpiComm::InMsg* MpiComm::find_match(RankState& s, int source, int tag,
                                    SimTime now) {
  for (auto& m : s.unexpected) {
    // Intra-node envelopes become visible at their shm notify time; NIC
    // envelopes were already gated by CQ arrival when drained.
    if ((m.proto == InMsg::Proto::kShm || m.proto == InMsg::Proto::kShmX) &&
        m.data_ready > now) {
      continue;
    }
    if ((source == MPI_ANY_SOURCE || m.env.src == source) &&
        (tag == MPI_ANY_TAG || m.env.tag == tag)) {
      return &m;
    }
  }
  return nullptr;
}

bool MpiComm::wait_probe(int rank, int source, int tag, Status* status) {
  sim::Context& ctx = ctx_now();
  RankState& s = st(rank);
  for (;;) {
    if (iprobe(rank, source, tag, status)) return true;
    // Earliest thing that could become visible: a queued CQ event or an
    // intra-node message whose notify time has not passed yet.
    SimTime next = s.rx_cq->next_arrival();
    for (const auto& m : s.unexpected) {
      if (m.data_ready > ctx.now()) next = std::min(next, m.data_ready);
    }
    if (next == kNever || next <= ctx.now()) return false;
    ctx.wait_until(next);
  }
}

bool MpiComm::iprobe(int rank, int source, int tag, Status* status) {
  sim::Context& ctx = ctx_now();
  const auto& mc = network_->config();
  RankState& s = st(rank);
  // Probing walks the library's internal unexpected structures and sweeps
  // per-connection mailbox state, so its cost grows with the backlog and
  // with the peer count — the paper's "prolonged MPI_Iprobe".
  SimTime conn_sweep = 0;
  const std::size_t conns = s.nic->connected_peers();
  if (conns > mc.mpi_iprobe_conn_free) {
    conn_sweep = static_cast<SimTime>(conns -
                                      mc.mpi_iprobe_conn_free) *
                 mc.mpi_iprobe_conn_ns;
  }
  ctx.charge(mc.mpi_iprobe_ns + conn_sweep +
             static_cast<SimTime>(s.unexpected.size()) *
                 mc.mpi_iprobe_scan_ns);
  drain(ctx, s);
  InMsg* m = find_match(s, source, tag, ctx.now());
  if (!m) return false;
  if (status) {
    status->source = m->env.src;
    status->tag = m->env.tag;
    status->count = m->env.size;
  }
  return true;
}

void MpiComm::recv(int rank, int source, int tag, void* buf,
                   std::uint32_t max_bytes, Status* status) {
  sim::Context& ctx = ctx_now();
  const auto& mc = network_->config();
  RankState& s = st(rank);
  ctx.charge(mc.mpi_call_overhead_ns + mc.mpi_match_ns);
  drain(ctx, s);
  InMsg* m = find_match(s, source, tag, ctx.now());
  assert(m && "mpilite recv requires an already-probed message");
  assert(m->env.size <= max_bytes);
  (void)max_bytes;

  switch (m->proto) {
    case InMsg::Proto::kE0:
      ctx.charge(mc.memcpy_cost(m->env.size));
      std::memcpy(buf, m->inline_data.data(), m->env.size);
      break;
    case InMsg::Proto::kShm:
      ctx.wait_until(m->data_ready);
      ctx.charge(mc.memcpy_cost(m->env.size));  // receiver copy out of shm
      std::memcpy(buf, m->inline_data.data(), m->env.size);
      break;
    case InMsg::Proto::kShmX: {
      ctx.wait_until(m->data_ready);
      // Single copy straight from the mapped sender pages, plus the XPMEM
      // attach/synchronization overhead.
      ctx.charge(mc.mpi_xpmem_overhead_ns + mc.memcpy_cost(m->env.size));
      std::memcpy(buf, reinterpret_cast<void*>(m->raddr), m->env.size);
      // The copy releases the sender's buffer: complete its request.
      RankState& snd = st(m->env.src);
      if (auto it = snd.outstanding.find(m->env.req_id);
          it != snd.outstanding.end()) {
        if (it->second.req) it->second.req->done = true;
        snd.outstanding.erase(it);
      }
      break;
    }
    case InMsg::Proto::kE1:
      // Payload may still be streaming into the landing buffer.
      ctx.wait_until(m->data_ready);
      ctx.charge(mc.memcpy_cost(m->env.size));
      std::memcpy(buf, m->landing.data(), m->env.size);
      break;
    case InMsg::Proto::kRndv: {
      // Register the user buffer, BTE GET, and *block* until done.
      ugni::gni_mem_handle_t lh = udreg_lookup(ctx, s, buf, m->env.size);
      (void)lh;
      gemini::TransferRequest treq;
      treq.mech = m->env.size >= mc.mpi_rdma_threshold
                      ? gemini::Mechanism::kBteGet
                      : gemini::Mechanism::kFmaGet;
      treq.initiator_node = node_of_(rank);
      treq.remote_node = node_of_(m->env.src);
      treq.bytes = m->env.size;
      treq.issue = ctx.now();
      gemini::TransferTimes tt = network_->transfer(treq);
      std::memcpy(buf, reinterpret_cast<void*>(m->raddr), m->env.size);
      ctx.wait_until(tt.data_arrival);  // blocking MPI_Recv (paper §V-B)
      CtrlAck ack{m->env.req_id};
      smsg_send_ctrl(ctx, s, m->env.src, kMpiAck, &ack, sizeof(ack));
      break;
    }
  }
  if (status) {
    status->source = m->env.src;
    status->tag = m->env.tag;
    status->count = m->env.size;
  }
  for (auto it = s.unexpected.begin(); it != s.unexpected.end(); ++it) {
    if (&*it == m) {
      s.unexpected.erase(it);
      break;
    }
  }
}

void MpiComm::advance(int rank) {
  sim::Context& ctx = ctx_now();
  drain(ctx, st(rank));
}

void MpiComm::udreg_invalidate(int rank, const void* addr,
                               std::uint32_t len) {
  RankState& s = st(rank);
  const std::uint64_t lo = reinterpret_cast<std::uint64_t>(addr);
  const std::uint64_t hi = lo + len;
  for (auto it = s.udreg_lru.begin(); it != s.udreg_lru.end();) {
    if (it->base < hi && lo < it->base + it->len) {
      ugni::GNI_MemDeregister(s.nic, &it->hndl);
      ++udreg_.evictions;
      s.udreg.erase(it->key);
      it = s.udreg_lru.erase(it);
    } else {
      ++it;
    }
  }
}

bool MpiComm::has_pending(int rank) const {
  const RankState& s = *ranks_state_[static_cast<std::size_t>(rank)];
  return !s.unexpected.empty();
}

bool MpiComm::has_send_backlog(int rank) const {
  const RankState& s = *ranks_state_[static_cast<std::size_t>(rank)];
  return !s.backlog.empty();
}

}  // namespace ugnirt::mpilite
