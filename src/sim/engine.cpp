#include "sim/engine.hpp"

#include <utility>

namespace ugnirt::sim {

void EventHandle::cancel() {
  if (auto alive = token_.lock()) *alive = false;
}

Engine::Engine(QueueKind kind) : kind_(kind), queue_(make_event_queue(kind)) {}

EventHandle Engine::schedule_at(SimTime when, std::function<void()> fn) {
  if (when < now_) when = now_;
  auto alive = std::make_shared<bool>(true);
  EventHandle handle{std::weak_ptr<bool>(alive)};
  queue_->push(Event{when, next_seq_++, std::move(fn), std::move(alive)});
  return handle;
}

bool Engine::pop_and_run() {
  Event ev = queue_->pop_earliest();
  now_ = ev.time;
  if (*ev.alive) {
    ++executed_;
    ev.fn();
    return true;
  }
  return false;
}

std::uint64_t Engine::run() {
  stopped_ = false;
  std::uint64_t ran = 0;
  while (!queue_->empty() && !stopped_) {
    if (pop_and_run()) ++ran;
  }
  return ran;
}

std::uint64_t Engine::run_until(SimTime until) {
  stopped_ = false;
  std::uint64_t ran = 0;
  while (!queue_->empty() && !stopped_ && queue_->earliest_time() <= until) {
    if (pop_and_run()) ++ran;
  }
  if (now_ < until && queue_->earliest_time() > until) {
    now_ = until;
  }
  return ran;
}

}  // namespace ugnirt::sim
