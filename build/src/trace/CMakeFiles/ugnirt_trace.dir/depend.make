# Empty dependencies file for ugnirt_trace.
# This may be replaced when dependencies are built.
