// Ablation: SMP mode (paper §VII future work) vs the per-PE uGNI layer.
//
// Three angles: intra-node latency (pointer handoff vs pxshm copies),
// mailbox memory (node pairs vs PE pairs), and the comm-thread
// serialization cost under concurrent inter-node traffic.
#include "apps/microbench/microbench.hpp"
#include "bench_util.hpp"
#include "lrts/runtime.hpp"
#include "lrts/smp_layer.hpp"
#include "lrts/ugni_layer.hpp"

using namespace ugnirt;
using namespace ugnirt::apps;

namespace {

converse::MachineOptions base_opts(bool smp, int pes, int ppn) {
  converse::MachineOptions o;
  o.pes = pes;
  o.layer = converse::LayerKind::kUgni;
  o.smp_mode = smp;
  o.pes_per_node = ppn;
  return o;
}

}  // namespace

int main() {
  // (1) Intra-node ping-pong latency.
  benchtool::Table intra("ablation_smp_intranode", "msg_bytes");
  intra.add_column("pxshm_single_us");
  intra.add_column("smp_pointer_us");
  for (std::uint64_t size : benchtool::size_sweep(1024, 512 * 1024)) {
    bench::PingPongOptions pp;
    pp.payload = static_cast<std::uint32_t>(size);
    auto pxshm = base_opts(false, 2, 2);
    auto smp = base_opts(true, 2, 2);
    intra.add_row(benchtool::size_label(size),
                  {to_us(bench::charm_pingpong(pxshm, pp)),
                   to_us(bench::charm_pingpong(smp, pp))});
  }
  intra.print();
  std::printf("Takeaway: zero-copy pointer delivery removes the last memcpy\n"
              "from the intra-node path — the §VII motivation.\n\n");

  // (2) Mailbox memory for an all-to-all communicating job.
  benchtool::Table mem("ablation_smp_mailboxes", "pes(x24/node)");
  mem.add_column("per_PE_pairs_MB");
  mem.add_column("per_node_pairs_MB");
  for (int pes : {48, 96, 192}) {
    auto measure = [&](bool smp) {
      auto o = base_opts(smp, pes, 24);
      o.use_pxshm = false;
      auto m = lrts::make_machine(converse::LayerKind::kUgni, o);
      int h = m->register_handler(
          [&](void* msg) { converse::CmiFree(msg); });
      for (int pe = 0; pe < pes; ++pe) {
        m->start(pe, [&, pe, h] {
          for (int dest = 0; dest < pes; ++dest) {
            if (dest == pe) continue;
            void* msg = converse::CmiAlloc(converse::kCmiHeaderBytes + 16);
            converse::CmiSetHandler(msg, h);
            converse::CmiSyncSendAndFree(
                dest, converse::kCmiHeaderBytes + 16, msg);
          }
        });
      }
      m->run();
      std::uint64_t bytes =
          smp ? dynamic_cast<lrts::SmpLayer*>(&m->layer())
                    ->total_mailbox_bytes()
              : dynamic_cast<lrts::UgniLayer*>(&m->layer())
                    ->total_mailbox_bytes();
      return static_cast<double>(bytes) / (1024.0 * 1024.0);
    };
    mem.add_row(std::to_string(pes), {measure(false), measure(true)});
  }
  mem.print();
  std::printf("Takeaway: SMP mode's per-node-pair channels cut mailbox\n"
              "memory by ~(cores/node)^2 for all-to-all patterns.\n\n");

  // (3) Comm-thread serialization: concurrent inter-node kNeighbor.
  benchtool::Table ser("ablation_smp_commthread", "msg_bytes");
  ser.add_column("per_PE_NIC_us");
  ser.add_column("smp_commthread_us");
  for (std::uint64_t size : {512ull, 8192ull, 131072ull}) {
    auto per_pe = base_opts(false, 6, 3);
    auto smp = base_opts(true, 6, 3);
    ser.add_row(
        benchtool::size_label(size),
        {to_us(bench::charm_kneighbor(per_pe, static_cast<std::uint32_t>(size),
                                      1, 6)),
         to_us(bench::charm_kneighbor(smp, static_cast<std::uint32_t>(size),
                                      1, 6))});
  }
  ser.print();
  std::printf("Takeaway: with 3 workers/node the zero-copy intra-node pairs\n"
              "dominate and SMP wins; the shared comm thread only becomes\n"
              "the bottleneck at higher per-node fan-out (it serializes all\n"
              "of a node's inter-node sends through one actor).\n");
  return 0;
}
