// Parallel N-Queens over the CHARM++ layer (paper §V-C).
//
// Task-based state-space search in the ParSSSE style: a task owns a partial
// placement; above the threshold depth it expands children and fires them
// as seeds at random PEs (the seed balancer); at the threshold it solves
// its subtree sequentially.  Completion is detected by quiescence
// detection, after which solution counts are totaled.
//
// Each task message is 88 bytes — the size the paper reports ("the size of
// messages are quite small (around 88 bytes), but the number of messages is
// large").
#pragma once

#include <cstdint>

#include "apps/nqueens/subtree_model.hpp"
#include "converse/machine.hpp"
#include "trace/tracer.hpp"

namespace ugnirt::apps::nqueens {

struct NQueensConfig {
  int n = 12;
  int threshold = 4;
  /// Sequential node cost; 13 ns/node calibrates the 2.1 GHz Magny-Cours
  /// running ParSSSE against the paper's Table I absolute times.
  SimTime ns_per_node = 13;
  /// Cost model for threshold subtrees; nullptr = exact in-process solving.
  const SubtreeCostModel* model = nullptr;
};

struct NQueensResult {
  std::uint64_t solutions = 0;
  std::uint64_t nodes = 0;
  std::uint64_t tasks = 0;       // task messages spawned
  SimTime elapsed = 0;           // virtual time to quiescence
  int qd_waves = 0;
  double speedup = 0;            // vs nodes * ns_per_node on one core
};

/// Run the search on a machine built from `options`; optionally tracing
/// per-bin utilization into `tracer` (for the Figure 12 profiles).
NQueensResult run_nqueens(const converse::MachineOptions& options,
                          const NQueensConfig& config,
                          trace::Tracer* tracer = nullptr);

}  // namespace ugnirt::apps::nqueens
