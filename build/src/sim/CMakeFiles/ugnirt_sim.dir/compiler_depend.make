# Empty compiler generated dependencies file for ugnirt_sim.
# This may be replaced when dependencies are built.
