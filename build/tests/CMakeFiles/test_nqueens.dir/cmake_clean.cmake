file(REMOVE_RECURSE
  "CMakeFiles/test_nqueens.dir/nqueens_test.cpp.o"
  "CMakeFiles/test_nqueens.dir/nqueens_test.cpp.o.d"
  "test_nqueens"
  "test_nqueens.pdb"
  "test_nqueens[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nqueens.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
