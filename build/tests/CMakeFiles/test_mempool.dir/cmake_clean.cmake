file(REMOVE_RECURSE
  "CMakeFiles/test_mempool.dir/mempool_test.cpp.o"
  "CMakeFiles/test_mempool.dir/mempool_test.cpp.o.d"
  "test_mempool"
  "test_mempool.pdb"
  "test_mempool[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mempool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
