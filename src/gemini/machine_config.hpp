// Calibrated cost model for the simulated Gemini interconnect and the
// software stacked on it.
//
// Every constant is an anchor taken from the paper's measurements on Hopper
// (Cray XE6) or from the Gemini hardware description [Alverson et al.,
// HOTI'10], and can be overridden through util::Config for ablations:
//
//   * 8-byte one-way latency: ~1.2 us pure uGNI, ~1.6 us uGNI-CHARM++,
//     ~3 us MPI-based CHARM++ (paper Fig 1 / Fig 9a).
//   * SMSG maximum message size 1024 bytes, shrinking as the job grows
//     (paper §III-C).
//   * FMA->BTE crossover between 2 KiB and 8 KiB (paper §II-A).
//   * Peak point-to-point bandwidth ~6 GB/s (paper Fig 9b).
//   * Registration/malloc overheads large enough that the no-pool runtime
//     loses to MPI for large messages (paper Fig 6) and the memory pool
//     halves large-message latency (paper Fig 8b).
#pragma once

#include <cstdint>

#include "util/config.hpp"
#include "util/units.hpp"

namespace ugnirt::gemini {

struct MachineConfig {
  // ---- Topology ----
  int cores_per_node = 24;       // XE6: 2x 12-core Magny-Cours (paper §V)

  // ---- Router / links ----
  SimTime hop_ns = 105;          // per-router traversal
  double link_bw = 9.4;          // bytes/ns (GB/s) per directional link

  // ---- SMSG (small-message mailboxes over FMA) ----
  SimTime smsg_cpu_send_ns = 180;    // sender CPU: build header + FMA store
  SimTime smsg_wire_startup_ns = 620;  // NIC pipeline + SSID/ORB tracking
  double smsg_per_byte_ns = 0.85;    // payload streaming cost per byte
  SimTime smsg_cpu_recv_ns = 160;    // CQ event decode + mailbox bookkeeping
  std::uint32_t smsg_max_bytes = 1024;   // default per-message cap (§III-C)
  std::uint32_t smsg_mailbox_credits = 8;  // in-flight messages per channel

  // ---- Completion queues ----
  std::uint32_t cq_entries = 1u << 16;  // RX/TX CQ depth per NIC

  // ---- FMA (CPU-driven window stores/loads) ----
  SimTime fma_put_startup_ns = 1000;
  SimTime fma_get_startup_ns = 1450;
  double fma_bw = 2.5;           // bytes/ns; CPU-limited pipeline
  SimTime fma_desc_ns = 150;     // CPU cost of writing the FMA descriptor

  // ---- BTE (offloaded DMA engine) ----
  SimTime bte_put_startup_ns = 2500;
  SimTime bte_get_startup_ns = 3000;
  double bte_bw = 5.9;           // bytes/ns; NIC DMA at near link rate
  SimTime bte_desc_ns = 250;     // CPU cost of posting the RDMA descriptor

  // ---- Memory operations (the terms of the paper's Equation 1) ----
  SimTime malloc_base_ns = 500;
  SimTime malloc_per_page_ns = 40;
  SimTime free_base_ns = 300;
  SimTime mem_reg_base_ns = 700;
  SimTime mem_reg_per_page_ns = 260;
  SimTime mem_dereg_base_ns = 500;
  SimTime mem_dereg_per_page_ns = 30;
  std::uint32_t page_bytes = 4096;

  // ---- CPU-side data movement ----
  SimTime memcpy_base_ns = 80;
  double memcpy_bw = 4.0;        // bytes/ns; single-stream on Magny-Cours

  // ---- Completion queues ----
  SimTime cq_poll_ns = 60;       // one GNI_CqGetEvent poll
  SimTime cq_event_ns = 90;      // dequeue + decode a present event

  // ---- Memory pool (uGNI-CHARM++ optimization, §IV-B) ----
  SimTime mempool_alloc_ns = 120;
  SimTime mempool_free_ns = 90;
  std::uint64_t mempool_init_bytes = 16 * 1024;

  // ---- CHARM++ runtime layer ----
  SimTime charm_send_overhead_ns = 220;   // envelope + scheduler enqueue
  SimTime charm_recv_overhead_ns = 250;   // handler dispatch + bookkeeping
  SimTime sched_loop_ns = 50;             // one empty scheduler iteration
  /// Per sub-message delivery cost when unpacking an aggregated batch in
  /// place (envelope check + handler lookup); the full recv overhead is
  /// paid once per batch, not once per item — that amortization is the
  /// whole point of TRAM-style coalescing.
  SimTime agg_item_overhead_ns = 60;
  std::uint32_t rdma_threshold = 4096;    // FMA GET below, BTE GET at/above

  // ---- MPI library model (Cray MPI over the same uGNI) ----
  SimTime mpi_call_overhead_ns = 150;     // per MPI_* entry (matching, argchk)
  SimTime mpi_match_ns = 120;             // queue search per probe/recv
  SimTime mpi_iprobe_ns = 280;
  /// Extra MPI_Iprobe cost per unexpected-queue entry — the "prolonged
  /// MPI_Iprobe" the paper blames in §I: probing slows down as unexpected
  /// small messages pile up, which is what throttles the MPI-based
  /// runtime in fine-grain task floods (Fig 11/12).
  SimTime mpi_iprobe_scan_ns = 40;
  /// Second prolonged-Iprobe component: the library sweeps per-connection
  /// mailbox state, so probe cost grows with the number of established
  /// peers.  The first `mpi_iprobe_conn_free` connections are covered by
  /// the base cost (batched CQ polling); each one beyond that adds
  /// `mpi_iprobe_conn_ns`.  This is what makes the MPI-based runtime
  /// unable to exploit fine-grain tasks at scale (paper Fig 12b).
  SimTime mpi_iprobe_conn_ns = 300;
  std::uint32_t mpi_iprobe_conn_free = 128;
  std::uint32_t mpi_eager_threshold = 8192;
  /// LMT switch inside the MPI library: rendezvous transfers below this use
  /// FMA GET on the receiving rank's CPU; at/above it they use the
  /// (node-shared) BTE.  Mirrors Cray MPI's RDMA threshold default.
  std::uint32_t mpi_rdma_threshold = 65536;
  std::uint32_t udreg_capacity = 512;     // registration-cache entries
  SimTime udreg_hit_ns = 60;
  // Intra-node MPI: user-space double copy below the XPMEM threshold,
  // kernel-assisted single copy (with its synchronization overhead, §IV-C)
  // at or above it.
  std::uint32_t mpi_xpmem_threshold = 16384;
  SimTime mpi_xpmem_overhead_ns = 2800;
  SimTime mpi_shm_notify_ns = 200;
  /// SMSG mailbox credits for the MPI library's internal channels (Cray
  /// MPI runs deeper mailboxes than the bare uGNI layer's
  /// smsg_mailbox_credits; tune both in one place for credit-pressure
  /// experiments).
  std::uint32_t mpi_mailbox_credits = 16;

  // ---- Intra-node shared memory (pxshm, §IV-C) ----
  SimTime pxshm_notify_ns = 250;          // fence + flag + queue bookkeeping
  SimTime pxshm_poll_ns = 120;            // receiver-side queue check

  /// Lower bound on the virtual latency of ANY effect crossing nodes: even
  /// a single-hop zero-byte SMSG pays one router traversal before it can
  /// touch remote state.  This is the conservative-parallel engine's
  /// lookahead (sim::EngineOptions::lookahead_ns): events on different
  /// torus slabs closer together than this cannot causally interact, so
  /// shards may execute a window of that width independently.
  SimTime min_remote_latency_ns() const { return hop_ns; }

  /// Effective SMSG per-message cap for a job of `pes` PEs: Cray's runtime
  /// shrinks mailboxes as the job grows to bound per-pair memory (§III-C).
  std::uint32_t smsg_max_for_job(int pes) const {
    if (pes <= 1024) return smsg_max_bytes;
    if (pes <= 4096) return smsg_max_bytes / 2;
    if (pes <= 16384) return smsg_max_bytes / 4;
    return smsg_max_bytes / 8;
  }

  /// Time to register `bytes` of memory with the NIC.
  SimTime reg_cost(std::uint64_t bytes) const {
    return mem_reg_base_ns +
           static_cast<SimTime>(pages(bytes)) * mem_reg_per_page_ns;
  }

  SimTime dereg_cost(std::uint64_t bytes) const {
    return mem_dereg_base_ns +
           static_cast<SimTime>(pages(bytes)) * mem_dereg_per_page_ns;
  }

  SimTime malloc_cost(std::uint64_t bytes) const {
    return malloc_base_ns +
           static_cast<SimTime>(pages(bytes)) * malloc_per_page_ns;
  }

  SimTime memcpy_cost(std::uint64_t bytes) const {
    return memcpy_base_ns + transfer_time(bytes, memcpy_bw);
  }

  std::uint64_t pages(std::uint64_t bytes) const {
    return (bytes + page_bytes - 1) / page_bytes;
  }

  /// Load overrides from a Config (keys named like "gemini.hop_ns").
  static MachineConfig from(const Config& cfg);

  /// Export all values to a Config (for logging experiment provenance).
  void export_to(Config& cfg) const;
};

}  // namespace ugnirt::gemini
