// Virtual-time units used throughout the simulator.
//
// All simulated time is kept in integer nanoseconds (SimTime).  Helper
// constructors make cost-model code read like the paper's equations
// ("Tregister = 600ns + pages * 350ns").
#pragma once

#include <cstdint>

namespace ugnirt {

/// Virtual time in nanoseconds.  Signed so durations/differences are safe.
using SimTime = std::int64_t;

constexpr SimTime kNever = INT64_MAX;

constexpr SimTime nanoseconds(std::int64_t v) { return v; }
constexpr SimTime microseconds(double v) {
  return static_cast<SimTime>(v * 1000.0);
}
constexpr SimTime milliseconds(double v) {
  return static_cast<SimTime>(v * 1000.0 * 1000.0);
}
constexpr SimTime seconds(double v) {
  return static_cast<SimTime>(v * 1e9);
}

/// Convert back for reporting.
constexpr double to_us(SimTime t) { return static_cast<double>(t) / 1e3; }
constexpr double to_ms(SimTime t) { return static_cast<double>(t) / 1e6; }
constexpr double to_s(SimTime t) { return static_cast<double>(t) / 1e9; }

namespace literals {
constexpr SimTime operator""_ns(unsigned long long v) {
  return static_cast<SimTime>(v);
}
constexpr SimTime operator""_us(unsigned long long v) {
  return static_cast<SimTime>(v) * 1000;
}
constexpr SimTime operator""_us(long double v) {
  return static_cast<SimTime>(v * 1000.0L);
}
constexpr SimTime operator""_ms(unsigned long long v) {
  return static_cast<SimTime>(v) * 1000 * 1000;
}
}  // namespace literals

/// Bytes-per-nanosecond bandwidth helper: GB/s -> bytes/ns is the identity
/// (1 GB/s == 1 byte/ns), which makes config values pleasantly readable.
constexpr double gb_per_s(double v) { return v; }

/// Time to move `bytes` at `bw` bytes/ns, rounded up, never negative.
inline SimTime transfer_time(std::uint64_t bytes, double bytes_per_ns) {
  if (bytes_per_ns <= 0.0) return 0;
  double t = static_cast<double>(bytes) / bytes_per_ns;
  return static_cast<SimTime>(t + 0.999999);
}

}  // namespace ugnirt
