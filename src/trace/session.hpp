// Process-wide trace session, driven by environment knobs:
//
//   UGNIRT_TRACE=1           enable tracing (unset / empty / "0" = off)
//   UGNIRT_TRACE_FILE=base   output file base (default "ugnirt_trace")
//   UGNIRT_TRACE_RING=N      per-PE event-ring capacity (default 65536)
//
// When active, the session installs a global EventTracer (see events.hpp)
// and accumulates per-Machine MetricsRegistry snapshots that Machines
// absorb into it at destruction.  At process exit — or on an explicit
// flush() — it writes:
//
//   <base>.trace.json    Chrome trace_event JSON (Perfetto-loadable)
//   <base>.events.csv    flat event rows
//   <base>.metrics.csv   metric,kind,count,sum,mean,min,max
//
// plus a human-readable metrics table on stderr.  benchtool::Table points
// the base at the bench name so each figure gets its own trace files.
#pragma once

#include <iosfwd>
#include <string>

#include "trace/events.hpp"
#include "trace/metrics.hpp"

namespace ugnirt::trace {

class TraceSession {
 public:
  /// The singleton, or nullptr when UGNIRT_TRACE is off.  The first call
  /// reads the environment; later calls are a plain pointer load.
  static TraceSession* active();

  EventTracer& events() { return events_; }
  MetricsRegistry& metrics() { return metrics_; }

  /// Fold a Machine's registry into the session-wide aggregate.
  void absorb(const MetricsRegistry& m) { metrics_.merge_from(m); }

  /// Redirect output files to `<base>.trace.json` etc.  An explicit
  /// UGNIRT_TRACE_FILE in the environment wins over this, so a user's
  /// chosen name is not overridden by the bench harness.  No effect on
  /// anything already flushed.
  void set_output_base(const std::string& base) {
    if (!base_from_env_) output_base_ = base;
  }
  const std::string& output_base() const { return output_base_; }

  /// Write all output files and the stderr table now.  Idempotent per
  /// accumulated state; called automatically at process exit.
  void flush();

  ~TraceSession();

  TraceSession(const TraceSession&) = delete;
  TraceSession& operator=(const TraceSession&) = delete;

 private:
  TraceSession(std::size_t ring_capacity, std::string output_base,
               bool base_from_env);

  EventTracer events_;
  MetricsRegistry metrics_;
  std::string output_base_;
  bool base_from_env_ = false;
  bool flushed_ = false;
};

}  // namespace ugnirt::trace
