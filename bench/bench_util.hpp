// Shared plumbing for the per-figure/per-table benchmark binaries.
//
// Every binary prints a human-readable table shaped like the paper's plot
// (one row per x-value, one column per curve) and, when UGNIRT_CSV=1,
// additionally writes `<bench>.csv` next to the working directory.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "trace/session.hpp"
#include "util/units.hpp"

namespace ugnirt::benchtool {

inline bool csv_enabled() {
  const char* v = std::getenv("UGNIRT_CSV");
  return v && v[0] == '1';
}

/// Column-oriented result table; prints aligned text and optional CSV.
class Table {
 public:
  Table(std::string name, std::string x_label)
      : name_(std::move(name)), x_label_(std::move(x_label)) {
    // When UGNIRT_TRACE is on, name the trace output after the benchmark so
    // each figure gets its own <name>.trace.json / .metrics.csv set.
    if (trace::TraceSession* session = trace::TraceSession::active())
      session->set_output_base(name_);
  }

  void add_column(std::string label) { columns_.push_back(std::move(label)); }

  void add_row(std::string x, const std::vector<double>& values) {
    rows_.push_back({std::move(x), values});
  }

  void print() const {
    std::printf("== %s ==\n", name_.c_str());
    std::printf("%-12s", x_label_.c_str());
    for (const auto& c : columns_) std::printf(" %16s", c.c_str());
    std::printf("\n");
    for (const auto& row : rows_) {
      std::printf("%-12s", row.x.c_str());
      for (double v : row.values) std::printf(" %16.3f", v);
      std::printf("\n");
    }
    std::printf("\n");
    if (csv_enabled()) write_csv();
  }

 private:
  void write_csv() const {
    std::ofstream out(name_ + ".csv");
    out << x_label_;
    for (const auto& c : columns_) out << ',' << c;
    out << '\n';
    for (const auto& row : rows_) {
      out << row.x;
      for (double v : row.values) out << ',' << v;
      out << '\n';
    }
  }

  struct Row {
    std::string x;
    std::vector<double> values;
  };
  std::string name_;
  std::string x_label_;
  std::vector<std::string> columns_;
  std::vector<Row> rows_;
};

inline std::string size_label(std::uint64_t bytes) {
  char buf[32];
  if (bytes >= 1024 * 1024 && bytes % (1024 * 1024) == 0) {
    std::snprintf(buf, sizeof(buf), "%lluM",
                  static_cast<unsigned long long>(bytes / (1024 * 1024)));
  } else if (bytes >= 1024 && bytes % 1024 == 0) {
    std::snprintf(buf, sizeof(buf), "%lluK",
                  static_cast<unsigned long long>(bytes / 1024));
  } else {
    std::snprintf(buf, sizeof(buf), "%llu",
                  static_cast<unsigned long long>(bytes));
  }
  return buf;
}

/// Geometric size sweep [lo, hi], factor 2.
inline std::vector<std::uint64_t> size_sweep(std::uint64_t lo,
                                             std::uint64_t hi) {
  std::vector<std::uint64_t> out;
  for (std::uint64_t s = lo; s <= hi; s *= 2) out.push_back(s);
  return out;
}

}  // namespace ugnirt::benchtool
