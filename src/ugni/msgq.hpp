// MSGQ: the shared message-queue facility (paper §II-B).
//
// "MSGQ overcomes the [SMSG] scalability issue due to memory cost, but at
// the expense of lower performance.  Setup of MSGQs is done on a per-node
// rather than per-peer basis, so the memory only grows as the number of
// nodes in the job."
//
// Emulated semantics:
//   * One shared receive queue per NIC, created once with a fixed-size
//     registered pool (GNI_MsgqInit) — memory is independent of how many
//     peers ever talk to this NIC.
//   * Any attached NIC may send into it (GNI_MsgqSend) without per-pair
//     mailboxes; the shared queue is a serialization point, so concurrent
//     senders queue behind each other (modeled via per-queue occupancy),
//     and every message pays an extra protocol cost over SMSG.
//   * The receiver polls with GNI_MsgqProgress, which returns the next
//     delivered message (source + tag + bytes).
//   * Back-pressure: when the pool is full of undelivered bytes, sends
//     fail with GNI_RC_NOT_DONE until the receiver drains.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "ugni/ugni.hpp"

namespace ugnirt::ugni {

class Msgq;
using gni_msgq_handle_t = Msgq*;

/// Create the per-NIC shared message queue with a registered pool of
/// `pool_bytes`.  Charges the registration to the calling PE.
gni_return_t GNI_MsgqInit(gni_nic_handle_t nic, std::uint32_t pool_bytes,
                          gni_msgq_handle_t* msgq_out);

/// Send header+data into `remote_inst`'s shared queue.  No per-pair setup
/// required; fails with GNI_RC_NOT_DONE when the remote pool is full and
/// GNI_RC_SIZE_ERROR when the message exceeds the remote pool.
gni_return_t GNI_MsgqSend(gni_nic_handle_t nic, std::int32_t remote_inst,
                          const void* header, std::uint32_t header_len,
                          const void* data, std::uint32_t data_len,
                          std::uint8_t tag);

/// Dequeue the next arrived message, or GNI_RC_NOT_DONE.  The returned
/// pointer is valid until the next GNI_MsgqProgress call on this queue.
gni_return_t GNI_MsgqProgress(gni_msgq_handle_t msgq, void** data_out,
                              std::uint32_t* len_out, std::uint8_t* tag_out,
                              std::int32_t* source_out);

/// Shared queue state.
class Msgq {
 public:
  Msgq(Nic* nic, std::uint32_t pool_bytes)
      : nic_(nic), pool_bytes_(pool_bytes) {}

  Nic* nic() const { return nic_; }
  std::uint32_t pool_bytes() const { return pool_bytes_; }
  std::uint32_t used_bytes() const { return used_bytes_; }
  std::size_t depth() const { return rx_.size(); }

  /// Virtual arrival time of the earliest queued message (kNever if none).
  SimTime next_arrival() const { return rx_.empty() ? kNever : rx_.front().at; }

  /// Invoked (at arrival virtual time) when a message lands.
  void set_notify(std::function<void(SimTime)> fn) { notify_ = std::move(fn); }

 private:
  friend gni_return_t GNI_MsgqInit(gni_nic_handle_t, std::uint32_t,
                                   gni_msgq_handle_t*);
  friend gni_return_t GNI_MsgqSend(gni_nic_handle_t, std::int32_t,
                                   const void*, std::uint32_t, const void*,
                                   std::uint32_t, std::uint8_t);
  friend gni_return_t GNI_MsgqProgress(gni_msgq_handle_t, void**,
                                       std::uint32_t*, std::uint8_t*,
                                       std::int32_t*);

  struct Msg {
    std::vector<std::uint8_t> bytes;
    std::uint8_t tag = 0;
    std::int32_t source = -1;
    SimTime at = 0;
  };

  Nic* nic_;
  std::uint32_t pool_bytes_;
  std::uint32_t used_bytes_ = 0;
  std::deque<Msg> rx_;
  std::vector<std::uint8_t> last_delivered_;
  // Shared-queue serialization point for concurrent senders.
  SimTime enqueue_free_ = 0;
  std::function<void(SimTime)> notify_;
};

}  // namespace ugnirt::ugni
