file(REMOVE_RECURSE
  "CMakeFiles/persistent_pingpong.dir/persistent_pingpong.cpp.o"
  "CMakeFiles/persistent_pingpong.dir/persistent_pingpong.cpp.o.d"
  "persistent_pingpong"
  "persistent_pingpong.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/persistent_pingpong.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
