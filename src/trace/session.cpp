#include "trace/session.hpp"

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>

#include "util/log.hpp"

namespace ugnirt::trace {

namespace {

bool env_truthy(const char* name) {
  const char* v = std::getenv(name);
  return v != nullptr && v[0] != '\0' && !(v[0] == '0' && v[1] == '\0');
}

std::size_t env_size(const char* name, std::size_t fallback) {
  const char* v = std::getenv(name);
  if (!v || !*v) return fallback;
  char* end = nullptr;
  unsigned long long n = std::strtoull(v, &end, 10);
  if (end == v || n == 0) return fallback;
  return static_cast<std::size_t>(n);
}

}  // namespace

TraceSession::TraceSession(std::size_t ring_capacity, std::string output_base,
                           bool base_from_env)
    : events_(ring_capacity),
      output_base_(std::move(output_base)),
      base_from_env_(base_from_env) {
  set_tracer(&events_);
}

TraceSession* TraceSession::active() {
  // Function-local static: first caller pays the env parse; the session
  // lives until static destruction, whose dtor flushes output files.
  static std::unique_ptr<TraceSession> session = [] {
    if (!env_truthy("UGNIRT_TRACE")) return std::unique_ptr<TraceSession>();
    const char* base = std::getenv("UGNIRT_TRACE_FILE");
    std::size_t ring = env_size("UGNIRT_TRACE_RING", 1u << 16);
    bool base_from_env = base && *base;
    return std::unique_ptr<TraceSession>(new TraceSession(
        ring, base_from_env ? base : "ugnirt_trace", base_from_env));
  }();
  return session.get();
}

void TraceSession::flush() {
  flushed_ = true;
  bool ok = true;
  {
    std::ofstream json(output_base_ + ".trace.json");
    events_.write_chrome_json(json);
    ok = ok && json.good();
  }
  {
    std::ofstream csv(output_base_ + ".events.csv");
    events_.write_csv(csv);
    ok = ok && csv.good();
  }
  {
    std::ofstream csv(output_base_ + ".metrics.csv");
    metrics_.write_csv(csv);
    ok = ok && csv.good();
  }
  if (!ok) {
    std::cerr << "[ugnirt trace] ERROR: could not write trace files at base '"
              << output_base_ << "'\n";
    metrics_.dump_table(std::cerr);
    return;
  }
  std::cerr << "[ugnirt trace] wrote " << output_base_ << ".trace.json ("
            << events_.total_events() << " events, "
            << events_.total_dropped() << " dropped), " << output_base_
            << ".metrics.csv (" << metrics_.size() << " metrics)\n";
  metrics_.dump_table(std::cerr);
}

TraceSession::~TraceSession() {
  if (!flushed_) flush();
  set_tracer(nullptr);
}

}  // namespace ugnirt::trace
