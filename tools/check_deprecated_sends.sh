#!/usr/bin/env bash
# Lint: the deprecated MachineLayer send virtuals are GONE.  The
# `sync_send` / layer-level `send_persistent` shims were deleted from
# MachineLayer once every caller had moved to the unified
# Machine::submit()/send()/broadcast() path, so today the symbol
# `sync_send` must not exist anywhere in the tree — not as a
# declaration, not as a call, not behind a typedef.  The public
# Machine::send_persistent API remains; only layer-qualified calls
# (the old per-layer virtual) are forbidden.
#
# Usage: check_deprecated_sends.sh [repo-root]
# Exits non-zero and prints offending lines if the dead symbols resurface.
set -u

root="${1:-$(cd "$(dirname "$0")/.." && pwd)}"
cd "$root" || exit 2

status=0

# 1. `sync_send` is a dead symbol: zero occurrences allowed anywhere
#    (runtime core included).  Mentioning it in a comment would only
#    confuse readers about an API that no longer exists, so comments
#    are not exempt.
dead=$(grep -rEn '\bsync_send\b' \
    --include='*.cpp' --include='*.hpp' --include='*.h' \
    src bench examples tests 2>/dev/null)
if [ -n "$dead" ]; then
  echo "error: 'sync_send' was removed from MachineLayer; the symbol" >&2
  echo "must not reappear (use Machine::submit()/send() or Cmi*):" >&2
  echo "$dead" >&2
  status=1
fi

# 2. The layer-level send_persistent virtual is equally dead: no code may
#    invoke send_persistent through a MachineLayer (layer()-qualified).
#    Machine::send_persistent — the public API used by benches and tests —
#    is fine and not matched here.
layer_calls=$(grep -rEn 'layer\(\)(\.|->)send_persistent[[:space:]]*\(' \
    --include='*.cpp' --include='*.hpp' --include='*.h' \
    src bench examples tests 2>/dev/null)
if [ -n "$layer_calls" ]; then
  echo "error: layer-level send_persistent was removed; call" >&2
  echo "Machine::send_persistent (persistent channels) instead:" >&2
  echo "$layer_calls" >&2
  status=1
fi

# 3. Belt and braces: MachineLayer itself must not re-grow the virtual.
#    A declaration would slip past rule 2 (no call site) and rule 1 only
#    covers sync_send.
decl=$(grep -En 'virtual[^;]*send_persistent' src/converse/machine.hpp 2>/dev/null)
if [ -n "$decl" ]; then
  echo "error: MachineLayer declares a send_persistent virtual again;" >&2
  echo "the per-layer send surface is submit() only:" >&2
  echo "$decl" >&2
  status=1
fi

# 4. `ensure_channel` is a dead symbol: the eager per-layer channel-setup
#    helpers were deleted when lazy first-touch connection moved into
#    ugni::Nic::get_or_connect.  Re-introducing a layer-side setup path
#    would quietly bring back O(N^2) job-wide endpoint state, so zero
#    occurrences are allowed anywhere (comments included, same rationale
#    as rule 1).
eager=$(grep -rEn '\bensure_channel\b' \
    --include='*.cpp' --include='*.hpp' --include='*.h' \
    src bench examples tests 2>/dev/null)
if [ -n "$eager" ]; then
  echo "error: 'ensure_channel' was removed; per-peer channels are" >&2
  echo "established lazily by ugni::Nic::get_or_connect (first touch):" >&2
  echo "$eager" >&2
  status=1
fi

if [ "$status" -ne 0 ]; then
  exit 1
fi

echo "check_deprecated_sends: OK (deprecated send symbols absent from the tree)"
exit 0
