// Tests for minimd, the NAMD-shaped workload, the micro-benchmark drivers
// and the tracer.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "apps/microbench/microbench.hpp"
#include "apps/minimd/minimd.hpp"
#include "apps/namdmodel/namdmodel.hpp"
#include "trace/tracer.hpp"

namespace ugnirt::apps {
namespace {

using converse::LayerKind;
using converse::MachineOptions;

MachineOptions opts(int pes, LayerKind layer = LayerKind::kUgni) {
  MachineOptions o;
  o.pes = pes;
  o.layer = layer;
  return o;
}

// ---------------------------------------------------------------- minimd ----

TEST(MiniMd, ConservesEnergyAndMomentum) {
  minimd::MdConfig cfg;
  cfg.steps = 30;
  cfg.atoms_per_patch = 8;
  minimd::MdResult r = run_minimd(opts(4), cfg);
  ASSERT_EQ(static_cast<int>(r.energy.size()), cfg.steps);
  EXPECT_LT(r.max_energy_drift, 0.05);
  EXPECT_LT(std::abs(r.total_momentum.x), 1e-9);
  EXPECT_LT(std::abs(r.total_momentum.y), 1e-9);
  EXPECT_LT(std::abs(r.total_momentum.z), 1e-9);
  EXPECT_GT(r.pair_interactions, 0u);
}

TEST(MiniMd, AtomsMigrateBetweenPatches) {
  minimd::MdConfig cfg;
  cfg.steps = 400;
  cfg.atoms_per_patch = 8;
  cfg.initial_temp = 3.0;  // hot enough to cross patch boundaries
  minimd::MdResult r = run_minimd(opts(2), cfg);
  EXPECT_GT(r.migrations, 0u);
  EXPECT_LT(r.max_energy_drift, 0.15);
}

TEST(MiniMd, SameResultOnBothLayersAndAnyPeCount) {
  minimd::MdConfig cfg;
  cfg.steps = 10;
  cfg.atoms_per_patch = 6;
  minimd::MdResult a = run_minimd(opts(1), cfg);
  minimd::MdResult b = run_minimd(opts(9), cfg);
  minimd::MdResult c = run_minimd(opts(9, LayerKind::kMpi), cfg);
  ASSERT_EQ(a.energy.size(), b.energy.size());
  for (std::size_t i = 0; i < a.energy.size(); ++i) {
    EXPECT_NEAR(a.energy[i], b.energy[i], 1e-9 * std::abs(a.energy[i]) + 1e-12);
    EXPECT_NEAR(a.energy[i], c.energy[i], 1e-9 * std::abs(a.energy[i]) + 1e-12);
  }
}

TEST(MiniMd, VirtualTimeScalesDownWithMorePes) {
  minimd::MdConfig cfg;
  cfg.steps = 10;
  cfg.atoms_per_patch = 12;
  minimd::MdResult p1 = run_minimd(opts(1), cfg);
  minimd::MdResult p9 = run_minimd(opts(9), cfg);
  EXPECT_LT(p9.elapsed, p1.elapsed);
}

// --------------------------------------------------------------- namd model ----

TEST(NamdModel, SystemsHavePaperAtomCounts) {
  EXPECT_EQ(namdmodel::apoa1().atoms, 92224);
  EXPECT_EQ(namdmodel::dhfr().atoms, 23558);
  EXPECT_EQ(namdmodel::iapp().atoms, 5570);
}

TEST(NamdModel, TwoCoreApoa1NearPaperBaseline) {
  namdmodel::NamdConfig cfg;
  cfg.system = namdmodel::apoa1();
  cfg.warmup_steps = 1;
  cfg.steps = 2;
  namdmodel::NamdResult r = run_namd_model(opts(2), cfg);
  // Paper Table II: 979-987 ms/step on 2 cores.
  EXPECT_GT(r.ms_per_step, 800.0);
  EXPECT_LT(r.ms_per_step, 1200.0);
  EXPECT_GT(r.patches, 100);  // ApoA1-scale decomposition
}

TEST(NamdModel, StrongScalingReducesStepTime) {
  namdmodel::NamdConfig cfg;
  cfg.system = namdmodel::iapp();
  cfg.warmup_steps = 1;
  cfg.steps = 2;
  namdmodel::NamdResult r2 = run_namd_model(opts(2), cfg);
  namdmodel::NamdResult r16 = run_namd_model(opts(16), cfg);
  EXPECT_LT(r16.ms_per_step, r2.ms_per_step / 4);
}

TEST(NamdModel, LoadBalancerReducesImbalance) {
  namdmodel::NamdConfig cfg;
  cfg.system = namdmodel::iapp();
  cfg.warmup_steps = 1;
  cfg.steps = 1;
  namdmodel::NamdResult r = run_namd_model(opts(12), cfg);
  EXPECT_GT(r.migrations, 0);
  EXPECT_LE(r.lb_max_after, r.lb_max_before);
}

TEST(NamdModel, UgniLayerFasterThanMpiFineGrain) {
  // Fine-grain regime (few objects per PE, PME every step): the uGNI layer
  // must win, as in the paper's Table II mid-range.  (At tiny scale — one
  // ASIC — the eager MPI path is legitimately competitive.)
  namdmodel::NamdConfig cfg;
  cfg.system = namdmodel::iapp();
  cfg.warmup_steps = 1;
  cfg.steps = 2;
  namdmodel::NamdResult ug = run_namd_model(opts(240), cfg);
  namdmodel::NamdResult mp = run_namd_model(opts(240, LayerKind::kMpi), cfg);
  EXPECT_LT(ug.ms_per_step, mp.ms_per_step);
}

// ------------------------------------------------------------ microbench ----

TEST(Microbench, RawMechanismOrderingMatchesFig4) {
  gemini::MachineConfig mc;
  // Small: FMA put fastest, BTE put slowest of the puts.
  SimTime fma_s = bench::raw_mechanism_latency(mc, gemini::Mechanism::kFmaPut, 64);
  SimTime bte_s = bench::raw_mechanism_latency(mc, gemini::Mechanism::kBtePut, 64);
  EXPECT_LT(fma_s, bte_s);
  // Large: BTE wins.
  SimTime fma_l = bench::raw_mechanism_latency(mc, gemini::Mechanism::kFmaPut, 1 << 20);
  SimTime bte_l = bench::raw_mechanism_latency(mc, gemini::Mechanism::kBtePut, 1 << 20);
  EXPECT_GT(fma_l, bte_l);
  // GETs cost more than PUTs at equal size.
  EXPECT_GT(bench::raw_mechanism_latency(mc, gemini::Mechanism::kFmaGet, 4096),
            bench::raw_mechanism_latency(mc, gemini::Mechanism::kFmaPut, 4096));
}

TEST(Microbench, PureUgniPingPongNearHardwareFloor) {
  gemini::MachineConfig mc;
  SimTime t8 = bench::pure_ugni_pingpong(mc, 8);
  EXPECT_GT(t8, microseconds(0.8));
  EXPECT_LT(t8, microseconds(1.6));  // paper: ~1.2 us
  SimTime t64k = bench::pure_ugni_pingpong(mc, 64 * 1024);
  EXPECT_GT(t64k, t8);
}

TEST(Microbench, PureMpiSameBufferBeatsDifferentBuffersLarge) {
  gemini::MachineConfig mc;
  SimTime same = bench::pure_mpi_pingpong(mc, 256 * 1024, true);
  SimTime diff = bench::pure_mpi_pingpong(mc, 256 * 1024, false);
  EXPECT_LT(same, diff);  // uDREG hits vs misses (Fig 9a)
  // Small messages: no registration either way, so nearly identical.
  SimTime s_same = bench::pure_mpi_pingpong(mc, 64, true);
  SimTime s_diff = bench::pure_mpi_pingpong(mc, 64, false);
  EXPECT_NEAR(static_cast<double>(s_same), static_cast<double>(s_diff),
              static_cast<double>(s_same) * 0.05);
}

TEST(Microbench, CharmLatencyLadderMatchesFig1) {
  // MPI-based CHARM++ > pure MPI > pure uGNI for small messages.
  gemini::MachineConfig mc;
  SimTime ugni = bench::pure_ugni_pingpong(mc, 32);
  SimTime mpi = bench::pure_mpi_pingpong(mc, 32, true);
  MachineOptions o = opts(2, LayerKind::kMpi);
  o.pes_per_node = 1;
  bench::PingPongOptions pp;
  pp.payload = 32;
  SimTime mpi_charm = bench::charm_pingpong(o, pp);
  EXPECT_LT(ugni, mpi);
  EXPECT_LT(mpi, mpi_charm);
}

TEST(Microbench, PersistentReducesCharmLatency) {
  MachineOptions o = opts(2, LayerKind::kUgni);
  o.pes_per_node = 1;
  bench::PingPongOptions plain;
  plain.payload = 64 * 1024;
  bench::PingPongOptions persist = plain;
  persist.persistent = true;
  EXPECT_LT(bench::charm_pingpong(o, persist),
            bench::charm_pingpong(o, plain));
}

TEST(Microbench, BandwidthIncreasesWithMessageSize) {
  MachineOptions o = opts(2, LayerKind::kUgni);
  o.pes_per_node = 1;
  double bw_64k = bench::charm_bandwidth(o, 64 * 1024);
  double bw_4m = bench::charm_bandwidth(o, 4 * 1024 * 1024);
  EXPECT_GT(bw_4m, bw_64k);
  EXPECT_LT(bw_4m, 6500.0);  // can't beat the configured BTE rate
  EXPECT_GT(bw_4m, 3000.0);
}

TEST(Microbench, OneToAllUgniBeatsMpi) {
  auto run = [&](LayerKind layer) {
    MachineOptions o = opts(16, layer);
    o.pes_per_node = 1;  // 16 nodes, one core each (paper Fig 9c setup)
    return bench::charm_onetoall(o, 512, 4);
  };
  EXPECT_LT(run(LayerKind::kUgni), run(LayerKind::kMpi));
}

TEST(Microbench, KNeighborUgniRoughlyHalvesMpiLatency) {
  auto run = [&](LayerKind layer, std::uint32_t bytes) {
    MachineOptions o = opts(3, layer);
    o.pes_per_node = 1;  // 3 cores on 3 nodes (paper Fig 10 setup)
    return bench::charm_kneighbor(o, bytes, 1, 4);
  };
  // Paper: uGNI kNeighbor latency is about half of MPI even at 1 MB.
  SimTime ug = run(LayerKind::kUgni, 1 << 20);
  SimTime mp = run(LayerKind::kMpi, 1 << 20);
  EXPECT_LT(ug, mp);
  SimTime ug_small = run(LayerKind::kUgni, 1024);
  SimTime mp_small = run(LayerKind::kMpi, 1024);
  EXPECT_LT(ug_small, mp_small);
}

// ---------------------------------------------------------------- tracer ----

TEST(Tracer, BinsAndPercentagesAddUp) {
  trace::Tracer t(1000);
  t.set_pe_count(2);
  t.record(0, 0, 1500, trace::SpanKind::kApp);       // crosses bins 0,1
  t.record(1, 500, 900, trace::SpanKind::kOverhead);
  t.finalize(2000);
  ASSERT_EQ(t.bins(), 2u);
  EXPECT_DOUBLE_EQ(t.app_ns(0), 1000.0);
  EXPECT_DOUBLE_EQ(t.app_ns(1), 500.0);
  EXPECT_DOUBLE_EQ(t.overhead_ns(0), 400.0);
  for (std::size_t b = 0; b < t.bins(); ++b) {
    EXPECT_NEAR(t.app_pct(b) + t.overhead_pct(b) + t.idle_pct(b), 100.0, 1e-9);
  }
}

TEST(Tracer, CsvHasHeaderAndRows) {
  trace::Tracer t(1'000'000);
  t.set_pe_count(1);
  t.record(0, 0, 500'000, trace::SpanKind::kApp);
  t.finalize(3'000'000);
  std::ostringstream out;
  t.write_csv(out);
  std::string csv = out.str();
  EXPECT_NE(csv.find("time_ms,app_pct,overhead_pct,idle_pct"), std::string::npos);
  int lines = 0;
  for (char c : csv) {
    if (c == '\n') ++lines;
  }
  EXPECT_EQ(lines, 4);  // header + 3 bins
}

TEST(Tracer, PartialFinalBinUsesReducedCapacity) {
  trace::Tracer t(1000);
  t.set_pe_count(1);
  t.record(0, 2000, 2500, trace::SpanKind::kApp);
  t.finalize(2500);  // final bin only 500ns wide
  EXPECT_NEAR(t.app_pct(2), 100.0, 1e-9);
}

}  // namespace
}  // namespace ugnirt::apps
