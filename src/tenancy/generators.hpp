// Deterministic background-traffic generators for multi-tenant runs.
//
// Each generator drives one placed job's PEs through the ordinary
// Machine::submit path (CmiAlloc / CmiSyncSendAndFree from start fns and
// handlers) — jobs are indistinguishable from applications as far as the
// runtime is concerned.  Three shapes cover the interference classes the
// congestion literature measures on Gemini systems:
//
//   * kKNeighborHalo — steady state: every rank exchanges payloads with
//     its k nearest job-local ranks each side, advancing an iteration
//     once its halo arrives.  The latency-sensitive "victim" shape.
//   * kAllToAllShuffle — storm: every rank sends to every other rank in
//     a seeded-permuted order, one full exchange per iteration.  The
//     link-flooding aggressor shape.
//   * kCheckpointBurst — bursty I/O: all ranks dump payloads at their
//     job's designated IO ranks, then think (CmiChargeWork) before the
//     next burst.  The periodic-spike aggressor shape.
//
// Every send carries its virtual send timestamp; receive handlers fold
// the delivery latency into the job's `job.<id>.delivery_us` histogram,
// so per-job p50/p90/p99 come out of the standard metrics exports.  All
// randomness derives from (machine seed, job id, rank), so runs are
// bit-reproducible across shard counts and queue backends.
#pragma once

#include <cstdint>
#include <memory>

#include "tenancy/tenancy.hpp"

namespace ugnirt::tenancy {

enum class TrafficPattern : std::uint8_t {
  kKNeighborHalo,
  kAllToAllShuffle,
  kCheckpointBurst,
};

const char* pattern_name(TrafficPattern p);
bool pattern_from_string(const std::string& s, TrafficPattern* out);

struct GeneratorOptions {
  TrafficPattern pattern = TrafficPattern::kKNeighborHalo;
  /// Iterations (halo/shuffle rounds, checkpoint bursts).
  int iterations = 4;
  /// Per-message payload bytes (>= 16: the timestamp frame).  Above the
  /// SMSG cap this traffic is rendezvous and thus governor-paced — the
  /// regime QoS isolation acts on.
  std::uint32_t payload = 4096;
  /// Halo depth: neighbors each side (clamped to (job_size-1)/2).
  int k = 2;
  /// Checkpoint: how many leading job-local ranks act as IO targets.
  int io_ranks = 1;
  /// Checkpoint: modeled think time between bursts (virtual ns).
  SimTime burst_gap_ns = 200'000;
  /// Shuffle-order seed; 0 derives from machine seed ^ job id.
  std::uint64_t seed = 0;
};

/// Drives one job's traffic.  Construct after JobManager::place(), call
/// launch() before Machine::run(), and keep the generator alive until the
/// run ends (handlers share state with it).
class TrafficGenerator {
 public:
  TrafficGenerator(JobManager& jobs, JobId job, GeneratorOptions opts);

  /// Register the handler and schedule every rank's opening sends.
  void launch();

  /// Messages this job will deliver over the whole run — the zero-loss
  /// oracle for fault soaks.
  std::uint64_t expected_messages() const;
  /// Messages delivered so far (== expected after a clean run).
  std::uint64_t received() const;

  JobId job() const { return job_; }
  const GeneratorOptions& options() const { return opts_; }

 private:
  struct State;
  JobManager* jobs_;
  JobId job_;
  GeneratorOptions opts_;
  std::shared_ptr<State> state_;
};

}  // namespace ugnirt::tenancy
