file(REMOVE_RECURSE
  "CMakeFiles/fig09b_bandwidth.dir/fig09b_bandwidth.cpp.o"
  "CMakeFiles/fig09b_bandwidth.dir/fig09b_bandwidth.cpp.o.d"
  "fig09b_bandwidth"
  "fig09b_bandwidth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09b_bandwidth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
