// The engine's pending-event set, extracted behind a first-class
// interface so the queue discipline is swappable (`sim.queue` /
// UGNIRT_SIM_QUEUE) without touching scheduling semantics.
//
// Contract (what every backend must provide):
//
//  * Strict total order.  pop_earliest() returns pending events ordered
//    by (time, seq) — earliest virtual time first, and FIFO scheduling
//    order (the monotonically increasing `seq`) among equal times.  This
//    is the property that makes seeded runs bit-identical across
//    backends: the engine executes the exact same event sequence no
//    matter which queue holds it.
//
//  * Monotone inserts.  The engine clamps schedule times to now(), and
//    now() only advances to popped-event times, so an inserted event is
//    never earlier than the last one popped.  Backends may rely on this
//    (the calendar queue does) but must stay correct when an insert
//    lands inside the current bucket window.
//
//  * Cancellation is NOT a queue operation.  EventHandle::cancel() flips
//    the record's `alive` tombstone; the dead event stays queued and is
//    skipped (not executed, not counted) when popped.  Lazy deletion
//    keeps every backend O(1) for cancel and preserves the handle
//    contract: cancel after fire is a no-op, cancel twice is a no-op.
//    Backends never inspect the record.
//
// Backends:
//
//  * HeapQueue     std::priority_queue binary heap, O(log n) per op.
//                  The reference oracle: simple enough to be obviously
//                  correct, kept as the default and as the comparison
//                  baseline for the calendar backend's equivalence tests.
//
//  * CalendarQueue Brown's calendar queue (CACM 1988): a ring of
//                  `nbuckets` day-buckets of `width` ns; an event at
//                  time t lives in bucket (t / width) % nbuckets.  Pop
//                  scans forward from the current day and pops the
//                  bucket head while it falls inside the current year;
//                  insert appends into the target bucket in sorted
//                  order.  With width tracking the mean inter-event gap
//                  (re-estimated on resize), buckets hold O(1) events
//                  and both operations are amortized O(1) — the engine
//                  stops being the bottleneck at full-machine (153,216
//                  PE) sweeps where the heap's O(log n) pops on a
//                  multi-hundred-MB array are all cache misses.
#pragma once

#include <cstdint>
#include <memory>
#include <string_view>

#include "util/units.hpp"

namespace ugnirt::sim {

struct EventRecord;

/// A scheduled callback: 24 trivially-copyable bytes.  The callback and
/// its cancellation tombstone live in `rec`, an arena-owned EventRecord
/// (sim/event_arena.hpp) the engine acquires at schedule time and
/// releases at pop time.  Queues store the pointer opaquely — moving an
/// event between buckets or heap levels is a POD copy, never a
/// std::function relocation.
struct Event {
  SimTime time;
  std::uint64_t seq;
  EventRecord* rec;
};

/// Selects the Engine's queue backend (MachineOptions::sim_queue,
/// config key "sim.queue", env UGNIRT_SIM_QUEUE).
enum class QueueKind {
  kHeap,      ///< binary heap oracle (default)
  kCalendar,  ///< O(1) calendar queue for full-machine sweeps
};

const char* to_string(QueueKind kind);

/// Parse "heap" / "calendar"; returns false (out untouched) otherwise.
bool queue_kind_from_string(std::string_view name, QueueKind* out);

/// Backend chosen by UGNIRT_SIM_QUEUE, or kHeap when unset/unparsable.
QueueKind queue_kind_from_env();

/// Pending-event container.  Not a public scheduling API — Engine is the
/// only caller; everything else schedules through Engine/EventHandle.
class EventQueue {
 public:
  virtual ~EventQueue() = default;

  /// Add an event.  Events with equal `time` must pop in `seq` order.
  virtual void push(Event ev) = 0;

  /// Remove and return the (time, seq)-minimal event.  Precondition:
  /// !empty().
  virtual Event pop_earliest() = 0;

  /// The (time, seq)-minimal pending event, or nullptr when empty.  The
  /// sharded engine's replay drive merges shard queues by (time, seq),
  /// so it must see the head's seq — time alone cannot break cross-shard
  /// ties.  May advance internal cursors (calendar day/year) but never
  /// alters the pop sequence; the pointer is invalidated by the next
  /// push/pop.
  virtual const Event* peek_earliest() = 0;

  /// Time of the earliest pending event, or kNever when empty.
  SimTime earliest_time() {
    const Event* ev = peek_earliest();
    return ev ? ev->time : kNever;
  }

  virtual bool empty() const = 0;
  virtual std::size_t size() const = 0;
  virtual const char* name() const = 0;
};

std::unique_ptr<EventQueue> make_event_queue(QueueKind kind);

}  // namespace ugnirt::sim
