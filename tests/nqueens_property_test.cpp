// Property-style sweeps for the parallel N-Queens search: exactness across
// the (board, threshold, layer, PE-count) grid, work invariance, and the
// statistical behavior of the sampled subtree model.
#include <gtest/gtest.h>

#include <tuple>

#include "apps/nqueens/parallel.hpp"
#include "apps/nqueens/solver.hpp"
#include "apps/nqueens/subtree_model.hpp"

namespace ugnirt::apps::nqueens {
namespace {

using converse::LayerKind;
using converse::MachineOptions;

// ---- exactness grid: every configuration counts every solution ----

using GridParam = std::tuple<int, int, int, LayerKind>;  // n, thr, pes

class ExactGrid : public ::testing::TestWithParam<GridParam> {};

TEST_P(ExactGrid, CountsAreExact) {
  auto [n, threshold, pes, layer] = GetParam();
  MachineOptions o;
  o.pes = pes;
  o.layer = layer;
  NQueensConfig cfg;
  cfg.n = n;
  cfg.threshold = threshold;
  NQueensResult r = run_nqueens(o, cfg);
  EXPECT_EQ(r.solutions, known_solutions(n));
  EXPECT_GT(r.elapsed, 0);
}

std::string grid_name(const ::testing::TestParamInfo<GridParam>& info) {
  auto [n, thr, pes, layer] = info.param;
  return "n" + std::to_string(n) + "_t" + std::to_string(thr) + "_p" +
         std::to_string(pes) +
         (layer == LayerKind::kUgni ? "_uGNI" : "_MPI");
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ExactGrid,
    ::testing::Combine(::testing::Values(8, 10, 11),
                       ::testing::Values(2, 4),
                       ::testing::Values(3, 24),
                       ::testing::Values(LayerKind::kUgni, LayerKind::kMpi)),
    grid_name);

// ---- invariants across configurations ----

TEST(NQueensInvariants, NodeCountIndependentOfParallelism) {
  // Total visited nodes == sequential tree size regardless of PEs/threshold.
  const std::uint64_t seq_nodes = solve_all(10).nodes;
  for (int threshold : {1, 3, 5}) {
    for (int pes : {1, 5, 17}) {
      NQueensConfig cfg;
      cfg.n = 10;
      cfg.threshold = threshold;
      MachineOptions o;
      o.pes = pes;
      NQueensResult r = run_nqueens(o, cfg);
      EXPECT_EQ(r.nodes, seq_nodes)
          << "threshold " << threshold << " pes " << pes;
    }
  }
}

TEST(NQueensInvariants, TaskCountEqualsPrefixTreeSize) {
  // Tasks = all placements of depth <= threshold (the expansion tree),
  // plus the root task.
  NQueensConfig cfg;
  cfg.n = 9;
  cfg.threshold = 3;
  MachineOptions o;
  o.pes = 8;
  NQueensResult r = run_nqueens(o, cfg);
  // Count prefixes of depth 1..3 exactly.
  std::uint64_t prefixes = 0;
  const std::uint32_t all = (1u << 9) - 1;
  std::function<void(int, std::uint32_t, std::uint32_t, std::uint32_t)> rec =
      [&](int depth, std::uint32_t cols, std::uint32_t dl, std::uint32_t dr) {
        if (depth == 3) return;
        std::uint32_t free = all & ~(cols | dl | dr);
        while (free) {
          std::uint32_t bit = free & (0u - free);
          free ^= bit;
          ++prefixes;
          rec(depth + 1, cols | bit, ((dl | bit) << 1) & all,
              (dr | bit) >> 1);
        }
      };
  rec(0, 0, 0, 0);
  EXPECT_EQ(r.tasks, prefixes + 1);  // + root
}

TEST(NQueensInvariants, SpeedupNeverExceedsPeCount) {
  for (int pes : {2, 8, 32}) {
    NQueensConfig cfg;
    cfg.n = 11;
    cfg.threshold = 3;
    MachineOptions o;
    o.pes = pes;
    NQueensResult r = run_nqueens(o, cfg);
    EXPECT_LE(r.speedup, pes + 0.01) << pes;
    EXPECT_GT(r.speedup, 0.3) << pes;
  }
}

// ---- sampled model statistics ----

TEST(SampledModelStats, EstimateTightensWithSampleSize) {
  const double truth = static_cast<double>(known_solutions(12));
  double err_small = 0, err_big = 0;
  for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
    auto small = SampledModel::build(12, 4, 30, seed);
    auto big = SampledModel::build(12, 4, 2000, seed);
    err_small += std::abs(small->est_total_solutions() - truth) / truth;
    err_big += std::abs(big->est_total_solutions() - truth) / truth;
  }
  EXPECT_LT(err_big, err_small)
      << "2000-sample estimates must beat 30-sample estimates on average";
  EXPECT_LT(err_big / 3, 0.25);
}

TEST(SampledModelStats, FullSamplingIsExactEverywhere) {
  for (int n : {9, 10}) {
    for (int thr : {2, 3}) {
      auto model = SampledModel::build(n, thr, 1 << 22);
      EXPECT_EQ(model->est_total_solutions(), known_solutions(n))
          << "n=" << n << " thr=" << thr;
      // And a run using the model is exact too.
      NQueensConfig cfg;
      cfg.n = n;
      cfg.threshold = thr;
      cfg.model = model.get();
      MachineOptions o;
      o.pes = 6;
      NQueensResult r = run_nqueens(o, cfg);
      EXPECT_EQ(r.solutions, known_solutions(n));
    }
  }
}

TEST(SampledModelStats, PrefixCountsMatchEnumeration) {
  auto model = SampledModel::build(13, 4, 10);
  // Depth-4 prefix count for 13 queens (independent recomputation).
  std::uint64_t prefixes = 0;
  const std::uint32_t all = (1u << 13) - 1;
  std::function<void(int, std::uint32_t, std::uint32_t, std::uint32_t)> rec =
      [&](int depth, std::uint32_t cols, std::uint32_t dl, std::uint32_t dr) {
        if (depth == 4) {
          ++prefixes;
          return;
        }
        std::uint32_t free = all & ~(cols | dl | dr);
        while (free) {
          std::uint32_t bit = free & (0u - free);
          free ^= bit;
          rec(depth + 1, cols | bit, ((dl | bit) << 1) & all,
              (dr | bit) >> 1);
        }
      };
  rec(0, 0, 0, 0);
  EXPECT_EQ(model->prefix_count(), prefixes);
}

}  // namespace
}  // namespace ugnirt::apps::nqueens
