# Empty compiler generated dependencies file for fig01_pingpong_layers.
# This may be replaced when dependencies are built.
