#include "lrts/ugni_layer.hpp"

#include <cassert>
#include <cstring>

#include "aggregation/frame.hpp"
#include "lrts/pool_metrics.hpp"
#include "lrts/span_marks.hpp"
#include "trace/events.hpp"
#include "trace/spans.hpp"
#include "ugni/msgq.hpp"
#include "util/log.hpp"

namespace ugnirt::lrts {

using converse::CmiMsgHeader;
using converse::header_of;
using converse::kCmiHeaderBytes;
using converse::kMsgFlagNoFree;

namespace {

// SMSG tags of the machine-layer protocol (paper Fig 5 / Fig 7).
constexpr std::uint8_t kTagData = 1;          // whole small message inline
constexpr std::uint8_t kTagInit = 2;          // INIT_TAG: rendezvous control
constexpr std::uint8_t kTagAck = 3;           // ACK_TAG: sender may free
constexpr std::uint8_t kTagPersistData = 4;   // PERSISTENT_TAG: data landed

// Aggregation-batch bound for the intra-node pxshm path: a shm queue slot
// carries any size, so cap batches at one page-ish lease from the pool.
constexpr std::uint32_t kPxshmBatchBytes = 4096;

/// INIT_TAG payload: everything the receiver needs to GET the message.
struct InitCtrl {
  std::uint64_t send_id = 0;
  std::uint64_t addr = 0;
  ugni::gni_mem_handle_t hndl{};
  std::uint32_t size = 0;
  std::int32_t src_pe = -1;
  std::uint32_t span = 0;  // lifecycle-span id of the payload message
};

struct AckCtrl {
  std::uint64_t send_id = 0;
};

/// PERSISTENT_TAG payload.
struct PersistCtrl {
  std::int32_t channel = -1;
  std::uint32_t size = 0;
  std::int32_t src_pe = -1;
};

}  // namespace

// ---------------------------------------------------------------------------
// Per-PE and per-node state
// ---------------------------------------------------------------------------

struct UgniLayer::PeState final : converse::LayerPeState {
  converse::Pe* pe = nullptr;
  ugni::gni_nic_handle_t nic = nullptr;
  ugni::gni_cq_handle_t rx_cq = nullptr;  // SMSG arrivals
  ugni::gni_cq_handle_t tx_cq = nullptr;  // FMA/BTE local completions
  ugni::gni_msgq_handle_t msgq = nullptr; // shared queue (use_msgq mode)
  // No per-peer endpoint map here: the NIC's own peer table (populated
  // lazily by ugni::Nic::get_or_connect) is the single source of truth.
  std::unique_ptr<mempool::MemPool> pool;  // null when use_mempool = false

  // In-flight rendezvous sends: waiting for ACK_TAG.
  struct LargeSend {
    void* msg = nullptr;
    ugni::gni_mem_handle_t hndl{};
    bool registered = false;  // true when we must deregister on ACK
  };
  std::unordered_map<std::uint64_t, LargeSend> sends;
  std::uint64_t next_send_id = 1;

  // In-flight rendezvous receives: GET posted, waiting for completion.
  struct LargeRecv {
    void* buf = nullptr;
    std::unique_ptr<ugni::gni_post_descriptor_t> desc;
    std::uint64_t send_id = 0;
    std::int32_t src_pe = -1;
    std::uint32_t span = 0;  // lifecycle-span id from the INIT control
    bool registered = false;
    ugni::gni_mem_handle_t local_hndl{};
  };
  std::unordered_map<std::uint64_t, LargeRecv> recvs;
  std::uint64_t next_recv_id = 1;

  // Persistent channels where this PE is the *receiver*.
  struct PersistRx {
    void* buf = nullptr;
    std::uint32_t max_bytes = 0;
    ugni::gni_mem_handle_t hndl{};
  };
  std::vector<PersistRx> persist_rx;

  // Persistent channels where this PE is the *sender*.
  struct PersistTx {
    int dest_pe = -1;
    std::int32_t remote_channel = -1;
    std::uint64_t remote_addr = 0;
    ugni::gni_mem_handle_t remote_hndl{};
    std::uint32_t max_bytes = 0;
  };
  std::vector<PersistTx> persist_tx;

  // PUTs in flight for persistent sends, keyed by descriptor post_id.
  struct PersistSend {
    void* msg = nullptr;
    std::unique_ptr<ugni::gni_post_descriptor_t> desc;
    std::int32_t tx_index = -1;
    std::uint32_t size = 0;
    bool app_owned = false;  // app reuses this buffer; don't free it
  };
  std::unordered_map<std::uint64_t, PersistSend> persist_sends;
  std::uint64_t next_persist_id = 1;

  // Persistent send buffers stay registered across iterations (the
  // "persistent memory for sending message" of Fig 7a); registration is
  // paid once per buffer and cached here in the no-pool configuration.
  std::unordered_map<const void*, ugni::gni_mem_handle_t> persist_send_reg;

  // Credit-stalled SMSG sends, retried from advance().
  struct Pending {
    int dest_pe = -1;
    std::uint8_t tag = 0;
    std::vector<std::uint8_t> ctrl;  // control payload (ctrl tags)
    void* msg = nullptr;             // data payload (kTagData), owned
  };
  std::deque<Pending> backlog;
  int backlog_attempts = 0;      // consecutive failed flush attempts
  SimTime backlog_retry_at = 0;  // no flush retry before this instant

  // Rendezvous GETs admitted into `recvs` but deferred by the injection
  // governor (AIMD window full); drained FIFO from advance().
  std::deque<std::uint64_t> deferred_gets;

  // One-entry endpoint memo for the rx drain loop: bursts of SMSG events
  // from one peer resolve the endpoint once instead of one hash lookup
  // per event.  Endpoints are never destroyed while the domain lives, so
  // the memo cannot dangle.
  std::int32_t last_peer = -1;
  ugni::gni_ep_handle_t last_ep = nullptr;

  ~PeState() override {
    for (auto& p : backlog) {
      if (p.msg) ::operator delete[](p.msg, std::align_val_t{16});
    }
  }
};

/// Intra-node pxshm: one receive queue per local PE.
struct UgniLayer::NodeShm {
  struct Entry {
    void* msg = nullptr;
    std::uint32_t size = 0;
    SimTime at = 0;
  };
  std::vector<std::deque<Entry>> rx;  // indexed by pe-on-node rank
};

// ---------------------------------------------------------------------------
// Setup
// ---------------------------------------------------------------------------

UgniLayer::UgniLayer() = default;
UgniLayer::~UgniLayer() = default;

std::uint64_t UgniLayer::total_mailbox_bytes() const {
  return domain_ ? domain_->total_mailbox_bytes() : 0;
}

LayerStats UgniLayer::stats() const {
  LayerStats out;
  if (!c_smsg_sends_) return out;  // init_pe has not bound the counters
  out.smsg_sends = c_smsg_sends_->value();
  out.rendezvous_gets = c_rendezvous_gets_->value();
  out.persistent_puts = c_persistent_puts_->value();
  out.pxshm_msgs = c_pxshm_msgs_->value();
  out.credit_stalls = c_credit_stalls_->value();
  out.registrations = c_registrations_->value();
  return out;
}

void UgniLayer::collect_metrics(trace::MetricsRegistry& reg) {
  if (domain_) domain_->collect_metrics(reg);
  if (governor_) governor_->collect_metrics(reg);
  collect_pool_metrics(reg, states_);
}

UgniLayer::PeState& UgniLayer::state(converse::Pe& pe) {
  return *static_cast<PeState*>(pe.layer_state());
}

UgniLayer::PeState& UgniLayer::state_of(int pe_id) {
  return *states_[static_cast<std::size_t>(pe_id)];
}

void UgniLayer::ensure_domain(converse::Machine& m) {
  if (domain_) return;
  machine_ = &m;
  trace::MetricsRegistry& reg = m.metrics();
  c_smsg_sends_ = &reg.counter("ugni.smsg_sends");
  c_rendezvous_gets_ = &reg.counter("ugni.rendezvous_gets");
  c_persistent_puts_ = &reg.counter("ugni.persistent_puts");
  c_pxshm_msgs_ = &reg.counter("ugni.pxshm_msgs");
  c_credit_stalls_ = &reg.counter("ugni.credit_stalls");
  c_registrations_ = &reg.counter("ugni.registrations");
  c_retry_smsg_ = &reg.counter("retry_smsg");
  c_retry_post_ = &reg.counter("retry_post");
  c_retry_mem_register_ = &reg.counter("retry_mem_register");
  c_retry_escalations_ = &reg.counter("retry_escalations");
  c_fallback_rendezvous_ = &reg.counter("fallback_rendezvous");
  c_fallback_heap_ = &reg.counter("fallback_heap_send");
  c_cq_recovered_ = &reg.counter("cq_overrun_recovered");
  retry_ = m.options().retry;
  if (m.options().flow.enable) {
    // Through the factory (not direct construction — the deprecated-send
    // lint enforces this) so tenancy QoS classes bind to every governor.
    governor_ = flowcontrol::make_governor(
        m.options().flow, m.congestion_estimator(), m.num_pes());
  }
  domain_ = std::make_unique<ugni::Domain>(m.network());
  states_.resize(static_cast<std::size_t>(m.num_pes()), nullptr);
  node_shm_.resize(static_cast<std::size_t>(m.options().nodes()));
  for (auto& shm : node_shm_) {
    shm = std::make_unique<NodeShm>();
    shm->rx.resize(static_cast<std::size_t>(
        m.options().effective_pes_per_node()));
  }
  smsg_cap_ = m.options().mc.smsg_max_for_job(m.num_pes());
  use_pxshm_ = m.options().use_pxshm;
  use_msgq_ = m.options().use_msgq;
  UGNIRT_DEBUG("uGNI layer up: " << m.num_pes() << " PEs, smsg cap "
                                 << smsg_cap_ << " B");
}

void UgniLayer::init_pe(converse::Pe& pe) {
  ensure_domain(pe.machine());
  auto st = std::make_unique<PeState>();
  PeState* s = st.get();
  s->pe = &pe;
  ugni::gni_return_t rc =
      ugni::GNI_CdmAttach(domain_.get(), pe.id(), pe.node(), &s->nic);
  assert(rc == ugni::GNI_RC_SUCCESS);
  const std::uint32_t mc_cq_entries = pe.machine().options().mc.cq_entries;
  rc = ugni::GNI_CqCreate(s->nic, mc_cq_entries, &s->rx_cq);
  assert(rc == ugni::GNI_RC_SUCCESS);
  rc = ugni::GNI_CqCreate(s->nic, mc_cq_entries, &s->tx_cq);
  assert(rc == ugni::GNI_RC_SUCCESS);
  (void)rc;
  s->nic->set_smsg_rx_cq(s->rx_cq);
  s->nic->set_default_tx_cq(s->tx_cq);
  // Channel setup is fully lazy: init only records the mailbox geometry
  // every future get_or_connect will use.  Nothing here is O(npes).
  ugni::gni_smsg_attr_t attr;
  attr.msg_maxsize = smsg_cap_;
  attr.mbox_maxcredit = pe.machine().options().mc.smsg_mailbox_credits;
  s->nic->set_smsg_attr(attr);

  converse::Pe* pptr = &pe;
  s->rx_cq->set_notify([pptr](SimTime t) { pptr->wake(t); });
  s->tx_cq->set_notify([pptr](SimTime t) { pptr->wake(t); });
  s->nic->set_credit_notify([pptr](SimTime t) { pptr->wake(t); });

  if (pe.machine().options().use_msgq) {
    rc = ugni::GNI_MsgqInit(s->nic, 256 * 1024, &s->msgq);
    assert(rc == ugni::GNI_RC_SUCCESS);
    s->msgq->set_notify([pptr](SimTime t) { pptr->wake(t); });
  }

  if (pe.machine().options().use_mempool) {
    s->pool = std::make_unique<mempool::MemPool>(
        s->nic, pe.machine().options().mc.mempool_init_bytes);
  }
  states_[static_cast<std::size_t>(pe.id())] = s;
  pe.set_layer_state(std::move(st));
}

ugni::gni_ep_handle_t UgniLayer::connect(PeState& src, int dest_pe) {
  bool established = false;
  ugni::gni_ep_handle_t ep = src.nic->get_or_connect(dest_pe, &established);
  assert(ep && "get_or_connect failed: unknown peer or NIC not configured");
  // get_or_connect charged the initiator for both mailbox pins (nothing
  // in MSGQ mode); mirror the two registrations into the layer counter.
  if (established && !use_msgq_) {
    c_registrations_->inc(2);
  }
  return ep;
}

// ---------------------------------------------------------------------------
// Allocation
// ---------------------------------------------------------------------------

void* UgniLayer::alloc(sim::Context& ctx, converse::Pe& pe,
                       std::size_t bytes) {
  PeState& s = state(pe);
  if (s.pool) {
    if (void* p = s.pool->alloc(bytes)) return p;
    // Pool expansion lost its slab registration (resource fault): fall
    // back to a plain heap buffer; free_msg routes it back to the heap.
    c_fallback_heap_->inc();
    if (trace::enabled()) {
      trace::emit(trace::Ev::kFallback, ctx.now(), 0, /*peer=*/-1,
                  static_cast<std::uint32_t>(bytes));
    }
  }
  // "Original" path: modeled system malloc.
  ctx.charge(machine_->options().mc.malloc_cost(bytes));
  return ::operator new[](bytes, std::align_val_t{16});
}

void UgniLayer::free_msg(sim::Context& ctx, converse::Pe& pe, void* msg) {
  PeState& s = state(pe);
  if (s.pool) {
    if (s.pool->owns(msg)) {
      s.pool->free(msg);
      return;
    }
    // pxshm single-copy delivers buffers owned by a same-node peer's pool.
    int owner = header_of(msg)->alloc_pe;
    if (owner >= 0 && owner != pe.id()) {
      PeState& o = state_of(owner);
      if (o.pool && o.pool->owns(msg)) {
        o.pool->free(msg);
        return;
      }
    }
    // No pool owns it: a heap-fallback buffer from alloc() after a failed
    // slab registration.
    ctx.charge(machine_->options().mc.free_base_ns);
    ::operator delete[](msg, std::align_val_t{16});
    return;
  }
  ctx.charge(machine_->options().mc.free_base_ns);
  ::operator delete[](msg, std::align_val_t{16});
}

// ---------------------------------------------------------------------------
// SMSG with backlog
// ---------------------------------------------------------------------------

void UgniLayer::smsg_send(sim::Context& ctx, PeState& src, int dest_pe,
                          std::uint8_t tag, const void* bytes,
                          std::uint32_t len, void* owned_msg) {
  const bool msgq_mode = use_msgq_;
  ugni::gni_ep_handle_t ep = nullptr;
  if (!msgq_mode) ep = connect(src, dest_pe);
  if (src.backlog.empty()) {
    ugni::gni_return_t rc =
        msgq_mode
            ? ugni::GNI_MsgqSend(src.nic, dest_pe, bytes, len, nullptr, 0,
                                 tag)
            : ugni::GNI_SmsgSendWTag(ep, bytes, len, nullptr, 0, 0, tag);
    if (rc == ugni::GNI_RC_SUCCESS) {
      c_smsg_sends_->inc();
      if (owned_msg) {
        if (trace::spans_enabled()) {
          mark_msg_spans(owned_msg, trace::Stage::kTransportPost,
                         src.pe->id(), ctx.now());
        }
        free_msg(ctx, *src.pe, owned_msg);
      }
      return;
    }
    // NOT_DONE: out of credits or a starvation window; ERROR_RESOURCE: an
    // injected transient send failure.  Both queue and retry from
    // flush_backlog; anything else is a contract violation.
    ugni::check(rc, "GNI_SmsgSendWTag", ugni::GNI_RC_NOT_DONE,
                ugni::GNI_RC_ERROR_RESOURCE);
  }
  // Out of credits (or draining in order behind earlier stalls): queue.
  c_credit_stalls_->inc();
  if (trace::enabled()) {
    trace::emit(trace::Ev::kCreditStall, ctx.now(), 0, dest_pe, len);
  }
  UGNIRT_TRACELOG("smsg credit stall -> pe " << dest_pe << " (" << len
                                             << " B queued)");
  PeState::Pending p;
  p.dest_pe = dest_pe;
  p.tag = tag;
  if (owned_msg) {
    p.msg = owned_msg;  // payload lives in the message itself
  } else {
    p.ctrl.assign(static_cast<const std::uint8_t*>(bytes),
                  static_cast<const std::uint8_t*>(bytes) + len);
  }
  src.backlog.push_back(std::move(p));
}

void UgniLayer::flush_backlog(sim::Context& ctx, PeState& s) {
  if (s.backlog.empty()) return;
  // With a fault plan active the backlog retries under the RetryPolicy:
  // stalls may be injected starvation windows that consume no credits, so
  // the credit-return notify alone cannot be relied on to wake us.
  // Without faults, stalls are genuine credit exhaustion and the notify
  // is the precise (and cheapest) wake — keep the seed behavior exactly.
  const bool faulty = machine_->fault_injector() != nullptr;
  if (faulty && ctx.now() < s.backlog_retry_at) {
    s.pe->wake(s.backlog_retry_at);
    return;
  }
  const bool msgq_mode = use_msgq_;
  while (!s.backlog.empty()) {
    PeState::Pending& p = s.backlog.front();
    const void* bytes = p.msg ? p.msg : p.ctrl.data();
    std::uint32_t len = p.msg ? header_of(p.msg)->size
                              : static_cast<std::uint32_t>(p.ctrl.size());
    ugni::gni_return_t rc;
    if (msgq_mode) {
      rc = ugni::GNI_MsgqSend(s.nic, p.dest_pe, bytes, len, nullptr, 0,
                              p.tag);
    } else {
      ugni::gni_ep_handle_t ep = connect(s, p.dest_pe);
      rc = ugni::GNI_SmsgSendWTag(ep, bytes, len, nullptr, 0, 0, p.tag);
    }
    if (rc != ugni::GNI_RC_SUCCESS) {  // still stalled
      ugni::check(rc, "GNI_SmsgSendWTag (backlog)", ugni::GNI_RC_NOT_DONE,
                  ugni::GNI_RC_ERROR_RESOURCE);
      if (!faulty) return;
      ++s.backlog_attempts;
      c_retry_smsg_->inc();
      if (s.backlog_attempts == retry_.max_retries + 1) {
        c_retry_escalations_->inc();
        UGNIRT_WARN("pe " << s.pe->id()
                          << ": smsg backlog still stalled after "
                          << retry_.max_retries
                          << " retries; continuing at capped backoff");
      }
      // After sustained starvation, stop competing for SMSG credits:
      // demote the stalled data message to the credit-free rendezvous
      // path (large-message protocol, any size).
      if (s.backlog_attempts >= retry_.demote_after &&
          demote_front_to_rendezvous(ctx, s)) {
        s.backlog_attempts = 0;
        continue;
      }
      const SimTime pause = retry_.backoff_for(s.backlog_attempts);
      if (trace::enabled()) {
        trace::emit(trace::Ev::kRetryBackoff, ctx.now(), pause, p.dest_pe,
                    static_cast<std::uint32_t>(s.backlog_attempts));
      }
      s.backlog_retry_at = ctx.now() + pause;
      s.pe->wake(s.backlog_retry_at);
      return;
    }
    s.backlog_attempts = 0;
    c_smsg_sends_->inc();
    if (p.msg) {
      if (trace::spans_enabled()) {
        mark_msg_spans(p.msg, trace::Stage::kTransportPost, s.pe->id(),
                       ctx.now());
      }
      free_msg(ctx, *s.pe, p.msg);
    }
    s.backlog.pop_front();
  }
}

bool UgniLayer::demote_front_to_rendezvous(sim::Context& ctx, PeState& s) {
  PeState::Pending& p = s.backlog.front();
  // Only whole data messages can demote; control messages ARE the
  // rendezvous protocol and must stay on the SMSG path.
  if (!p.msg || p.tag != kTagData) return false;
  void* msg = p.msg;
  const int dest_pe = p.dest_pe;
  const std::uint32_t size = header_of(msg)->size;
  s.backlog.pop_front();
  c_fallback_rendezvous_->inc();
  if (trace::enabled()) {
    trace::emit(trace::Ev::kFallback, ctx.now(), 0, dest_pe, size);
  }
  UGNIRT_TRACELOG("smsg starvation: demoting " << size << " B -> pe "
                                               << dest_pe
                                               << " to rendezvous");
  begin_rendezvous(ctx, s, dest_pe, size, msg);
  return true;
}

// ---------------------------------------------------------------------------
// Send path (the unified LRTS submit entry)
// ---------------------------------------------------------------------------

void UgniLayer::submit(sim::Context& ctx, converse::Pe& src, int dest_pe,
                       converse::MsgView msg,
                       const converse::SendOptions& opts) {
  if (opts.persistent_handle.valid()) {
    persistent_send(ctx, src, opts.persistent_handle, msg.size, msg.msg);
    return;
  }
  converse::Machine& m = *machine_;
  PeState& s = state(src);

  const bool same_node = m.node_of_pe(dest_pe) == src.node();
  if (same_node && use_pxshm_) {
    pxshm_send(ctx, src, dest_pe, msg.size, msg.msg);
    return;
  }

  // Under hotspot load the governor shrinks the eager window for the hot
  // destination, steering mid-size messages onto the (receiver-paced)
  // rendezvous path instead of stuffing its SMSG mailboxes.
  const std::uint32_t eager =
      governor_ ? governor_->eager_cap(smsg_cap_, m.node_of_pe(dest_pe))
                : smsg_cap_;
  if (msg.size <= eager) {
    smsg_send(ctx, s, dest_pe, kTagData, msg.msg, msg.size,
              /*owned_msg=*/msg.msg);
    return;
  }

  // Rendezvous (Fig 5): register / resolve the send buffer, ship INIT_TAG.
  begin_rendezvous(ctx, s, dest_pe, msg.size, msg.msg);
}

std::uint32_t UgniLayer::recommended_batch_bytes(converse::Pe& src,
                                                 int dest_pe) const {
  converse::Machine& m = *machine_;
  if (m.node_of_pe(dest_pe) == src.node() && use_pxshm_) {
    // pxshm moves any size in one queue slot; batching saves per-message
    // enqueue/notify overhead.  Round the lease up to a full mempool size
    // class so no registered bytes are wasted.
    return static_cast<std::uint32_t>(
        mempool::MemPool::usable_size(kPxshmBatchBytes));
  }
  // One SMSG mailbox write is the single-transaction ceiling.
  return smsg_cap_;
}

void UgniLayer::begin_rendezvous(sim::Context& ctx, PeState& s, int dest_pe,
                                 std::uint32_t size, void* msg) {
  PeState::LargeSend ls;
  ls.msg = msg;
  if (s.pool && s.pool->owns(msg)) {
    ls.hndl = s.pool->handle_of(msg);
    ls.registered = false;
  } else {
    // Heap buffer (no pool, or a heap-fallback allocation): register it,
    // retrying under the policy on transient resource exhaustion.
    detail::register_with_retry(ctx, retry_, s.nic,
                                reinterpret_cast<std::uint64_t>(msg), size,
                                nullptr, &ls.hndl,
                                {c_retry_mem_register_, c_retry_escalations_});
    ls.registered = true;
    c_registrations_->inc();
  }
  std::uint64_t id = s.next_send_id++;
  s.sends.emplace(id, ls);
  if (trace::enabled()) {
    trace::emit(trace::Ev::kRdvInit, ctx.now(), 0, dest_pe, size);
  }

  InitCtrl ctrl;
  ctrl.send_id = id;
  ctrl.addr = reinterpret_cast<std::uint64_t>(msg);
  ctrl.hndl = ls.hndl;
  ctrl.size = size;
  ctrl.src_pe = s.pe->id();
  ctrl.span = header_of(msg)->span_id;
  smsg_send(ctx, s, dest_pe, kTagInit, &ctrl, sizeof(ctrl), nullptr);
}

// ---------------------------------------------------------------------------
// Progress engine (LrtsNetworkEngine)
// ---------------------------------------------------------------------------

void UgniLayer::advance(sim::Context& ctx, converse::Pe& pe) {
  PeState& s = state(pe);

  // Drain SMSG arrivals.  ERROR_RESOURCE means the CQ overran: recover
  // (drain + resynthesize from mailbox state) instead of latching dead.
  for (;;) {
    ugni::gni_cq_entry_t ev;
    ugni::gni_return_t rc = ugni::GNI_CqGetEvent(s.rx_cq, &ev);
    if (rc == ugni::GNI_RC_ERROR_RESOURCE) {
      detail::recover_cq(s.rx_cq, c_cq_recovered_);
      continue;
    }
    if (rc != ugni::GNI_RC_SUCCESS) break;
    if (ev.type == ugni::CqEventType::kSmsg) {
      handle_smsg(ctx, pe, s, ev.source_inst);
    }
  }

  // Drain the shared message queue (MSGQ mode).
  if (s.msgq) {
    for (;;) {
      void* data = nullptr;
      std::uint32_t len = 0;
      std::uint8_t tag = 0;
      std::int32_t source = -1;
      ugni::gni_return_t rc =
          ugni::GNI_MsgqProgress(s.msgq, &data, &len, &tag, &source);
      if (rc != ugni::GNI_RC_SUCCESS) break;
      handle_protocol_msg(ctx, pe, s, tag, data, ctx.now());
    }
  }

  // Drain FMA/BTE completions, with the same overrun recovery.
  for (;;) {
    ugni::gni_cq_entry_t ev;
    ugni::gni_return_t rc = ugni::GNI_CqGetEvent(s.tx_cq, &ev);
    if (rc == ugni::GNI_RC_ERROR_RESOURCE) {
      detail::recover_cq(s.tx_cq, c_cq_recovered_);
      continue;
    }
    if (rc != ugni::GNI_RC_SUCCESS) break;
    if (ev.type == ugni::CqEventType::kPostLocal) {
      handle_completion(ctx, pe, s, ev);
    }
  }

  if (use_pxshm_) pxshm_poll(ctx, pe);
  if (governor_) drain_deferred_gets(ctx, s);
  flush_backlog(ctx, s);
}

bool UgniLayer::has_backlog(const converse::Pe& pe) const {
  const auto* s = static_cast<const PeState*>(pe.layer_state());
  return s && (!s->backlog.empty() || !s->deferred_gets.empty());
}

void UgniLayer::handle_smsg(sim::Context& ctx, converse::Pe& pe, PeState& s,
                            int src_inst) {
  ugni::gni_ep_handle_t ep;
  if (src_inst == s.last_peer) {
    ep = s.last_ep;  // burst from one peer: skip the per-event hash lookup
  } else {
    ep = s.nic->ep_for_peer(src_inst);
    if (ep) {
      s.last_peer = src_inst;
      s.last_ep = ep;
    }
  }
  void* data = nullptr;
  std::uint8_t tag = 0;
  SimTime arrival = ctx.now();
  ugni::gni_return_t rc = ugni::GNI_SmsgGetNextWTag(ep, &data, &tag,
                                                    &arrival);
  if (rc != ugni::GNI_RC_SUCCESS) return;
  handle_protocol_msg(ctx, pe, s, tag, data, arrival);
  ugni::GNI_SmsgRelease(ep);
}

const UgniLayer::TagFn UgniLayer::kTagTable[5] = {
    nullptr,  // tag 0: never sent
    &UgniLayer::on_tag_data,
    &UgniLayer::on_tag_init,
    &UgniLayer::on_tag_ack,
    &UgniLayer::on_tag_persist,
};

void UgniLayer::handle_protocol_msg(sim::Context& ctx, converse::Pe& pe,
                                    PeState& s, std::uint8_t tag,
                                    const void* data, SimTime arrival) {
  static_assert(kTagData == 1 && kTagInit == 2 && kTagAck == 3 &&
                kTagPersistData == 4);
  assert(tag >= kTagData && tag <= kTagPersistData && "unknown SMSG tag");
  (this->*kTagTable[tag])(ctx, pe, s, data, arrival);
}

void UgniLayer::on_tag_data(sim::Context& ctx, converse::Pe& pe, PeState& s,
                            const void* data, SimTime arrival) {
  (void)s;
  const auto& mc = machine_->options().mc;
  // Copy out of the mailbox/queue slot into a runtime buffer.
  const CmiMsgHeader* h = header_of(data);
  std::uint32_t size = h->size;
  if (trace::spans_enabled()) {
    // rx_arrive at the wire-arrival instant, cq_complete now: the gap
    // is how long the event waited for this PE to poll its CQ.
    mark_msg_spans(data, trace::Stage::kRxArrive, pe.id(), arrival);
    mark_msg_spans(data, trace::Stage::kCqComplete, pe.id(), ctx.now());
  }
  void* buf = alloc(ctx, pe, size);
  ctx.charge(mc.memcpy_cost(size));
  std::memcpy(buf, data, size);
  header_of(buf)->alloc_pe = pe.id();
  pe.enqueue(buf, ctx.now());
}

void UgniLayer::on_tag_init(sim::Context& ctx, converse::Pe& pe, PeState& s,
                            const void* data, SimTime arrival) {
  const auto& mc = machine_->options().mc;
  InitCtrl ctrl;
  std::memcpy(&ctrl, data, sizeof(ctrl));
  if (trace::spans_enabled() && ctrl.span != 0) {
    trace::span_mark(ctrl.span, trace::Stage::kRxArrive, pe.id(), arrival);
  }

  PeState::LargeRecv lr;
      lr.send_id = ctrl.send_id;
      lr.src_pe = ctrl.src_pe;
      lr.span = ctrl.span;
      void* pooled = s.pool ? s.pool->alloc(ctrl.size) : nullptr;
      if (pooled) {
        lr.buf = pooled;
        lr.local_hndl = s.pool->handle_of(pooled);
        lr.registered = false;
      } else {
        if (s.pool) {
          // Pool expansion failed: heap-registered landing buffer instead.
          c_fallback_heap_->inc();
          if (trace::enabled()) {
            trace::emit(trace::Ev::kFallback, ctx.now(), 0, ctrl.src_pe,
                        ctrl.size);
          }
        }
        ctx.charge(mc.malloc_cost(ctrl.size));
        lr.buf = ::operator new[](ctrl.size, std::align_val_t{16});
        detail::register_with_retry(
            ctx, retry_, s.nic, reinterpret_cast<std::uint64_t>(lr.buf),
            ctrl.size, nullptr, &lr.local_hndl,
            {c_retry_mem_register_, c_retry_escalations_});
        lr.registered = true;
        c_registrations_->inc();
      }
      lr.desc = std::make_unique<ugni::gni_post_descriptor_t>();
      // A hot NIC switches to the offloaded BTE engine earlier, freeing
      // the CPU to drain completions (stock threshold when flow is off).
      const std::uint32_t rdma_thr =
          governor_ ? governor_->rdma_threshold(mc.rdma_threshold, pe.node())
                    : mc.rdma_threshold;
      lr.desc->type = ctrl.size < rdma_thr ? ugni::GNI_POST_FMA_GET
                                           : ugni::GNI_POST_RDMA_GET;
      lr.desc->local_addr = reinterpret_cast<std::uint64_t>(lr.buf);
      lr.desc->local_mem_hndl = lr.local_hndl;
      lr.desc->remote_addr = ctrl.addr;
      lr.desc->remote_mem_hndl = ctrl.hndl;
      lr.desc->length = ctrl.size;
  std::uint64_t rid = s.next_recv_id++;
  lr.desc->post_id = rid;
  s.recvs.emplace(rid, std::move(lr));

  // AIMD admission: a full window defers the GET (the sender's buffer
  // stays pinned behind the INIT/ACK protocol, so deferral is safe);
  // drain_deferred_gets re-admits as completions free slots.
  if (governor_ &&
      !governor_->try_acquire(pe.id(), ctrl.src_pe, ctrl.size, ctx.now())) {
    if (trace::spans_enabled() && ctrl.span != 0) {
      trace::span_mark(ctrl.span, trace::Stage::kGovDefer, pe.id(),
                       ctx.now());
    }
    s.deferred_gets.push_back(rid);
    return;
  }
  if (governor_ && trace::spans_enabled() && ctrl.span != 0) {
    trace::span_mark(ctrl.span, trace::Stage::kGovAdmit, pe.id(), ctx.now());
  }
  issue_rendezvous_get(ctx, s, rid);
}

void UgniLayer::on_tag_ack(sim::Context& ctx, converse::Pe& pe, PeState& s,
                           const void* data, SimTime arrival) {
  (void)arrival;
  AckCtrl ack;
  std::memcpy(&ack, data, sizeof(ack));
  auto it = s.sends.find(ack.send_id);
  assert(it != s.sends.end());
  PeState::LargeSend& ls = it->second;
  if (ls.registered) {
    ugni::GNI_MemDeregister(s.nic, &ls.hndl);
  }
  free_msg(ctx, pe, ls.msg);
  s.sends.erase(it);
}

void UgniLayer::on_tag_persist(sim::Context& ctx, converse::Pe& pe,
                               PeState& s, const void* data,
                               SimTime arrival) {
  PersistCtrl pc;
  std::memcpy(&pc, data, sizeof(pc));
  PeState::PersistRx& rx =
      s.persist_rx.at(static_cast<std::size_t>(pc.channel));
  // Deliver the landing buffer in place: zero copy, runtime-owned.
  CmiMsgHeader* h = header_of(rx.buf);
  h->flags |= kMsgFlagNoFree;
  h->alloc_pe = pe.id();
  if (trace::spans_enabled() && h->span_id != 0) {
    // The PUT copied the whole envelope into the landing buffer, so
    // the sampled span id arrived with the data.
    trace::span_mark(h->span_id, trace::Stage::kRxArrive, pe.id(), arrival);
  }
  pe.enqueue(rx.buf, ctx.now());
}

void UgniLayer::issue_rendezvous_get(sim::Context& ctx, PeState& s,
                                     std::uint64_t rid) {
  PeState::LargeRecv& lr = s.recvs.at(rid);
  ugni::gni_ep_handle_t back = connect(s, lr.src_pe);
  detail::post_with_retry(ctx, retry_, back, lr.desc.get(),
                          lr.desc->type == ugni::GNI_POST_RDMA_GET,
                          {c_retry_post_, c_retry_escalations_});
  c_rendezvous_gets_->inc();
  if (trace::enabled()) {
    trace::emit(trace::Ev::kRdvGet, ctx.now(), 0, lr.src_pe,
                static_cast<std::uint32_t>(lr.desc->length));
  }
  if (trace::spans_enabled() && lr.span != 0) {
    trace::span_mark(lr.span, trace::Stage::kTransportPost, s.pe->id(),
                     ctx.now());
  }
}

void UgniLayer::drain_deferred_gets(sim::Context& ctx, PeState& s) {
  if (s.deferred_gets.empty()) return;
  // The span gate is run-constant; test it once per batch of re-admitted
  // GETs rather than per item.
  const bool spans = trace::spans_enabled();
  // Tenancy QoS weighted admission: bulk/scavenger jobs re-admit at most
  // `quota` deferred GETs per drain pass (0 = stock unbounded drain), so
  // a storm's backlog trickles out instead of bursting the moment the
  // window opens.
  const std::uint32_t quota = governor_->drain_quota(s.pe->id());
  std::uint32_t admitted = 0;
  while (!s.deferred_gets.empty()) {
    if (quota != 0 && admitted >= quota) return;
    // would_admit first: drain retries must not inflate the stall count
    // (each deferral already recorded its kInjectionStall at INIT time).
    if (!governor_->would_admit(s.pe->id())) return;
    const std::uint64_t rid = s.deferred_gets.front();
    s.deferred_gets.pop_front();
    PeState::LargeRecv& lr = s.recvs.at(rid);
    governor_->try_acquire(s.pe->id(), lr.src_pe,
                           static_cast<std::uint32_t>(lr.desc->length),
                           ctx.now());
    if (spans && lr.span != 0) {
      trace::span_mark(lr.span, trace::Stage::kGovAdmit, s.pe->id(),
                       ctx.now());
    }
    issue_rendezvous_get(ctx, s, rid);
    ++admitted;
  }
}

void UgniLayer::handle_completion(sim::Context& ctx, converse::Pe& pe,
                                  PeState& s,
                                  const ugni::gni_cq_entry_t& ev) {
  ugni::gni_post_descriptor_t* desc = nullptr;
  ugni::check(ugni::GNI_GetCompleted(s.tx_cq, ev, &desc),
              "GNI_GetCompleted");

  if (auto it = s.recvs.find(desc->post_id); it != s.recvs.end()) {
    // Our GET finished: ACK the sender, deliver the message (Fig 5).
    if (governor_) governor_->on_complete(pe.id(), pe.node(), ctx.now());
    PeState::LargeRecv& lr = it->second;
    if (trace::spans_enabled() && lr.span != 0) {
      trace::span_mark(lr.span, trace::Stage::kCqComplete, pe.id(),
                       ctx.now());
    }
    AckCtrl ack{lr.send_id};
    if (trace::enabled()) {
      trace::emit(trace::Ev::kRdvAck, ctx.now(), 0, lr.src_pe,
                  static_cast<std::uint32_t>(desc->length));
    }
    smsg_send(ctx, s, lr.src_pe, kTagAck, &ack, sizeof(ack), nullptr);
    if (lr.registered) {
      ugni::GNI_MemDeregister(s.nic, &lr.local_hndl);
    }
    header_of(lr.buf)->alloc_pe = pe.id();
    pe.enqueue(lr.buf, ctx.now());
    s.recvs.erase(it);
    return;
  }
  if (auto it = s.persist_sends.find(desc->post_id);
      it != s.persist_sends.end()) {
    // Persistent PUT landed: notify the receiver, release our buffer
    // (unless the application owns and reuses it, Fig 7a).
    if (governor_) governor_->on_complete(pe.id(), pe.node(), ctx.now());
    PeState::PersistSend& ps = it->second;
    if (trace::spans_enabled()) {
      mark_msg_spans(ps.msg, trace::Stage::kCqComplete, pe.id(), ctx.now());
    }
    PeState::PersistTx& tx =
        s.persist_tx.at(static_cast<std::size_t>(ps.tx_index));
    PersistCtrl pc;
    pc.channel = tx.remote_channel;
    pc.size = ps.size;
    pc.src_pe = pe.id();
    smsg_send(ctx, s, tx.dest_pe, kTagPersistData, &pc, sizeof(pc), nullptr);
    if (!ps.app_owned) {
      header_of(ps.msg)->flags &=
          static_cast<std::uint16_t>(~kMsgFlagNoFree);
      free_msg(ctx, pe, ps.msg);
    }
    s.persist_sends.erase(it);
    return;
  }
  assert(false && "completion for unknown descriptor");
}

// ---------------------------------------------------------------------------
// Persistent messages (paper §IV-A)
// ---------------------------------------------------------------------------

converse::PersistentHandle UgniLayer::create_persistent(
    sim::Context& ctx, converse::Pe& src, int dest_pe,
    std::uint32_t max_bytes) {
  // Setup handshake: one control round trip plus the receiver-side
  // allocation and registration, all charged to the initiating PE (setup
  // happens once, off the critical path).
  converse::Machine& m = *machine_;
  const auto& mc = m.options().mc;
  PeState& s = state(src);
  PeState& d = state_of(dest_pe);

  PeState::PersistRx rx;
  rx.max_bytes = max_bytes;
  void* pooled = d.pool ? d.pool->alloc(max_bytes) : nullptr;
  if (pooled) {
    rx.buf = pooled;
    rx.hndl = d.pool->handle_of(pooled);
  } else {
    if (d.pool) {
      c_fallback_heap_->inc();
      if (trace::enabled()) {
        trace::emit(trace::Ev::kFallback, ctx.now(), 0, dest_pe, max_bytes);
      }
    }
    ctx.charge(mc.malloc_cost(max_bytes));
    rx.buf = ::operator new[](max_bytes, std::align_val_t{16});
    detail::register_with_retry(ctx, retry_, d.nic,
                                reinterpret_cast<std::uint64_t>(rx.buf),
                                max_bytes, nullptr, &rx.hndl,
                                {c_retry_mem_register_, c_retry_escalations_});
  }
  d.persist_rx.push_back(rx);

  PeState::PersistTx tx;
  tx.dest_pe = dest_pe;
  tx.remote_channel = static_cast<std::int32_t>(d.persist_rx.size()) - 1;
  tx.remote_addr = reinterpret_cast<std::uint64_t>(rx.buf);
  tx.remote_hndl = rx.hndl;
  tx.max_bytes = max_bytes;
  s.persist_tx.push_back(tx);

  connect(s, dest_pe);
  // Round-trip control exchange.
  int hops = m.network().hops(src.node(), m.node_of_pe(dest_pe));
  ctx.charge(2 * (mc.smsg_wire_startup_ns + hops * mc.hop_ns));

  return converse::PersistentHandle{
      static_cast<std::int32_t>(s.persist_tx.size()) - 1};
}

void UgniLayer::persistent_send(sim::Context& ctx, converse::Pe& src,
                                converse::PersistentHandle handle,
                                std::uint32_t size, void* msg) {
  assert(handle.valid());
  const auto& mc = machine_->options().mc;
  PeState& s = state(src);
  PeState::PersistTx& tx =
      s.persist_tx.at(static_cast<std::size_t>(handle.id));
  assert(size <= tx.max_bytes && "persistent message exceeds channel size");

  PeState::PersistSend ps;
  ps.msg = msg;
  ps.size = size;
  ps.tx_index = handle.id;
  ps.app_owned =
      (header_of(msg)->flags & kMsgFlagNoFree) != 0;  // app reuses buffer
  ugni::gni_mem_handle_t local_hndl{};
  if (s.pool && s.pool->owns(msg)) {
    local_hndl = s.pool->handle_of(msg);
  } else if (auto it = s.persist_send_reg.find(msg);
             it != s.persist_send_reg.end()) {
    local_hndl = it->second;  // registered on an earlier iteration
  } else {
    detail::register_with_retry(
        ctx, retry_, s.nic, reinterpret_cast<std::uint64_t>(msg),
        std::max<std::uint32_t>(size, tx.max_bytes), nullptr, &local_hndl,
        {c_retry_mem_register_, c_retry_escalations_});
    s.persist_send_reg.emplace(msg, local_hndl);
  }

  ps.desc = std::make_unique<ugni::gni_post_descriptor_t>();
  ps.desc->type = size < mc.rdma_threshold ? ugni::GNI_POST_FMA_PUT
                                           : ugni::GNI_POST_RDMA_PUT;
  ps.desc->local_addr = reinterpret_cast<std::uint64_t>(msg);
  ps.desc->local_mem_hndl = local_hndl;
  ps.desc->remote_addr = tx.remote_addr;
  ps.desc->remote_mem_hndl = tx.remote_hndl;
  ps.desc->length = size;
  std::uint64_t pid = s.next_persist_id++ | (1ull << 63);
  ps.desc->post_id = pid;

  // Keep the sender buffer stable until the PUT completes.
  header_of(msg)->flags |= kMsgFlagNoFree;

  ugni::gni_ep_handle_t ep = connect(s, tx.dest_pe);
  detail::post_with_retry(ctx, retry_, ep, ps.desc.get(),
                          ps.desc->type == ugni::GNI_POST_RDMA_PUT,
                          {c_retry_post_, c_retry_escalations_});
  // Persistent PUTs are latency-critical and never deferred, but they
  // count against the window so their completions drive AIMD too.
  if (governor_) governor_->note_post(src.id());
  c_persistent_puts_->inc();
  if (trace::enabled()) {
    trace::emit(trace::Ev::kPersistPut, ctx.now(), 0, tx.dest_pe, size);
  }
  if (trace::spans_enabled()) {
    mark_msg_spans(msg, trace::Stage::kTransportPost, src.id(), ctx.now());
  }
  s.persist_sends.emplace(pid, std::move(ps));
}

// ---------------------------------------------------------------------------
// Intra-node pxshm (paper §IV-C)
// ---------------------------------------------------------------------------

void UgniLayer::pxshm_send(sim::Context& ctx, converse::Pe& src, int dest_pe,
                           std::uint32_t size, void* msg) {
  converse::Machine& m = *machine_;
  const auto& mc = m.options().mc;
  const int node = src.node();
  const int local_rank = dest_pe % m.options().effective_pes_per_node();

  // Sender-side copy into the shared region (both modes copy in).
  ctx.charge(mc.memcpy_cost(size) + mc.pxshm_notify_ns);
  c_pxshm_msgs_->inc();
  if (trace::enabled()) {
    trace::emit(trace::Ev::kPxshmEnq, ctx.now(), 0, dest_pe, size);
  }
  if (trace::spans_enabled()) {
    mark_msg_spans(msg, trace::Stage::kTransportPost, src.id(), ctx.now());
  }

  NodeShm::Entry e;
  e.size = size;
  e.at = ctx.now();
  // In both modes the shm block carries the sender's buffer; single copy
  // delivers it in place, double copy re-copies at the receiver.
  e.msg = msg;
  auto& q = node_shm_[static_cast<std::size_t>(node)]
                ->rx[static_cast<std::size_t>(local_rank)];
  // Keep the queue ordered by arrival (senders' clocks are not aligned).
  auto it = q.end();
  while (it != q.begin() && std::prev(it)->at > e.at) --it;
  q.insert(it, e);
  m.pe(dest_pe).wake(e.at);
}

void UgniLayer::pxshm_poll(sim::Context& ctx, converse::Pe& pe) {
  converse::Machine& m = *machine_;
  const auto& mc = m.options().mc;
  auto& q = node_shm_[static_cast<std::size_t>(pe.node())]
                ->rx[static_cast<std::size_t>(
                    pe.id() % m.options().effective_pes_per_node())];
  if (q.empty()) return;
  ctx.charge(mc.pxshm_poll_ns);
  // Trace gates and the copy-mode knob are run-constant: one test per
  // poll batch, not per dequeued message.
  const bool ev_on = trace::enabled();
  const bool spans_on = trace::spans_enabled();
  const bool single_copy = m.options().pxshm_single_copy;
  while (!q.empty() && q.front().at <= ctx.now()) {
    NodeShm::Entry e = q.front();
    q.pop_front();
    if (ev_on) {
      trace::emit(trace::Ev::kPxshmDeq, ctx.now(), 0,
                  header_of(e.msg)->src_pe, e.size);
    }
    if (spans_on) {
      mark_msg_spans(e.msg, trace::Stage::kRxArrive, pe.id(), e.at);
    }
    if (single_copy) {
      // alloc_pe stays the sender: CmiFree routes back to its pool.
      pe.enqueue(e.msg, ctx.now());
    } else {
      void* buf = alloc(ctx, pe, e.size);
      ctx.charge(mc.memcpy_cost(e.size));
      std::memcpy(buf, e.msg, e.size);
      header_of(buf)->alloc_pe = pe.id();
      // Free the sender-side buffer (the shm slot becomes reusable).
      free_msg(ctx, pe, e.msg);
      pe.enqueue(buf, ctx.now());
    }
  }
  // Entries still in flight: this step may have started before their
  // notify instant — re-arm the wake so they are not stranded.
  if (!q.empty()) pe.wake(q.front().at);
}

}  // namespace ugnirt::lrts
