// DMAPP: Cray's one-sided library for logically-shared memory (paper
// §II-A).
//
// "DMAPP is a communication library which supports a logically shared,
// distributed memory programming model.  It is a good match for
// implementing parallel programming models such as SHMEM, and PGAS
// languages."  The paper targets uGNI instead because CHARM++ is
// message-passing in nature; this thin layer exists to demonstrate (and
// test) that the simulated Gemini supports the *other* programming model
// too, the way the real ASIC did.
//
// Emulated subset, SHMEM-flavored:
//   * a symmetric heap: every attached PE allocates the same-size
//     registered segment, and remote addresses are symmetric offsets;
//   * blocking dmapp_put / dmapp_get (FMA under the hood for short
//     transfers, BTE beyond the paper's crossover);
//   * non-blocking dmapp_put_nbi + dmapp_gsync_wait (gather-style fence);
//   * dmapp_afadd_qw: atomic fetch-add on a remote 64-bit word.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "ugni/ugni.hpp"

namespace ugnirt::dmapp {

enum dmapp_return_t : int {
  DMAPP_RC_SUCCESS = 0,
  DMAPP_RC_INVALID_PARAM = 1,
  DMAPP_RC_NO_SPACE = 2,
  DMAPP_RC_NOT_DONE = 3,
};

class DmappJob;
using dmapp_jobhandle_t = DmappJob*;

/// One PE's view of the DMAPP job.
class DmappPe {
 public:
  int pe() const { return pe_; }
  /// Base of this PE's symmetric-heap segment.
  void* sheap_base() const { return sheap_.get() ? sheap_.get() : nullptr; }
  std::uint64_t sheap_bytes() const { return sheap_bytes_; }

 private:
  friend class DmappJob;
  int pe_ = -1;
  ugni::gni_nic_handle_t nic = nullptr;
  ugni::gni_cq_handle_t cq = nullptr;
  std::unique_ptr<std::uint8_t[]> sheap_;
  std::uint64_t sheap_bytes_ = 0;
  std::uint64_t sheap_used_ = 0;
  ugni::gni_mem_handle_t sheap_hndl_{};
  // Lazily bound endpoints, keyed by target PE.  A hash map (not a
  // dense pes-sized vector) so an idle PE costs O(1) memory even in a
  // full-machine job (153,216 PEs).
  std::unordered_map<int, ugni::gni_ep_handle_t> eps;
  SimTime nbi_fence_ = 0;  // completion horizon of outstanding NBI puts
};

/// The DMAPP job: `pes` PEs each with a `sheap_bytes` symmetric heap.
class DmappJob {
 public:
  /// Attach all PEs up front (dmapp_init across the job).  Each PE's
  /// segment is allocated and registered, charged to the calling context.
  DmappJob(ugni::Domain& domain, int pes, std::uint64_t sheap_bytes,
           int inst_base = 1000);
  ~DmappJob();
  DmappJob(const DmappJob&) = delete;
  DmappJob& operator=(const DmappJob&) = delete;

  int pes() const { return static_cast<int>(pes_.size()); }
  DmappPe& pe(int i) { return *pes_[static_cast<std::size_t>(i)]; }

  /// Symmetric allocation: reserves `bytes` at the same offset on every
  /// PE; returns the offset (use addr_of to translate per PE).
  /// DMAPP_RC_NO_SPACE when any segment is exhausted.
  dmapp_return_t sheap_malloc(std::uint64_t bytes, std::uint64_t* offset_out);

  void* addr_of(int pe, std::uint64_t offset) {
    return pes_[static_cast<std::size_t>(pe)]->sheap_.get() + offset;
  }

  // ---- data movement (run inside the calling PE's sim context) ----

  /// Blocking put of `bytes` from local memory into `target_pe`'s
  /// symmetric heap at `target_off`.
  dmapp_return_t put(int my_pe, int target_pe, std::uint64_t target_off,
                     const void* source, std::uint64_t bytes);

  /// Blocking get from `source_pe`'s symmetric heap into local memory.
  dmapp_return_t get(int my_pe, int source_pe, std::uint64_t source_off,
                     void* target, std::uint64_t bytes);

  /// Non-blocking implicit put: returns after initiation; completion is
  /// awaited by gsync_wait.
  dmapp_return_t put_nbi(int my_pe, int target_pe, std::uint64_t target_off,
                         const void* source, std::uint64_t bytes);

  /// Fence: block until every outstanding NBI put from `my_pe` completed.
  dmapp_return_t gsync_wait(int my_pe);

  /// Atomic fetch-add on a 64-bit word in `target_pe`'s symmetric heap;
  /// the previous value lands in *fetched.
  dmapp_return_t afadd_qw(int my_pe, int target_pe, std::uint64_t target_off,
                          std::int64_t addend, std::int64_t* fetched);

 private:
  ugni::gni_ep_handle_t ep_to(DmappPe& me, int target_pe);
  dmapp_return_t xfer(int my_pe, int remote_pe, std::uint64_t remote_off,
                      void* local, std::uint64_t bytes, bool is_get,
                      bool blocking);

  ugni::Domain* domain_;
  std::vector<std::unique_ptr<DmappPe>> pes_;
  std::uint64_t sheap_cursor_ = 0;
};

}  // namespace ugnirt::dmapp
