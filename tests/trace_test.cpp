// Unit tests for the trace module: metrics registry, event rings, the
// Chrome-trace exporter and the Projections-lite utilization tracer.
#include <cctype>
#include <cstdint>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "converse/machine.hpp"
#include "lrts/runtime.hpp"
#include "sim/context.hpp"
#include "sim/engine.hpp"
#include "trace/events.hpp"
#include "trace/metrics.hpp"
#include "trace/spans.hpp"
#include "trace/tracer.hpp"
#include "util/config.hpp"
#include "util/stats.hpp"

#include <algorithm>
#include <cstdlib>
#include <vector>

namespace ugnirt {
namespace {

// ---------------------------------------------------------------------------
// Minimal JSON well-formedness checker (recursive descent, values only).
// ---------------------------------------------------------------------------

class JsonChecker {
 public:
  explicit JsonChecker(const std::string& s) : s_(s) {}

  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{':
        return object();
      case '[':
        return array();
      case '"':
        return string();
      case 't':
        return literal("true");
      case 'f':
        return literal("false");
      case 'n':
        return literal("null");
      default:
        return number();
    }
  }

  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return true;
    }
    for (;;) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == '}') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return true;
    }
    for (;;) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == ']') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') ++pos_;
      ++pos_;
    }
    if (pos_ >= s_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }

  bool number() {
    std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }

  bool literal(const char* word) {
    std::string w(word);
    if (s_.compare(pos_, w.size(), w) != 0) return false;
    pos_ += w.size();
    return true;
  }

  char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// MetricsRegistry
// ---------------------------------------------------------------------------

TEST(Metrics, CounterFindOrCreateAndCachedPointer) {
  trace::MetricsRegistry reg;
  trace::Counter* c = &reg.counter("ugni.smsg_sends");
  c->inc();
  c->inc(4);
  // Lookup by the same name returns the same node (map addresses stable).
  EXPECT_EQ(&reg.counter("ugni.smsg_sends"), c);
  EXPECT_EQ(reg.counter("ugni.smsg_sends").value(), 5u);
  EXPECT_EQ(reg.counter_count(), 1u);
  ASSERT_NE(reg.find_counter("ugni.smsg_sends"), nullptr);
  EXPECT_EQ(reg.find_counter("no.such.metric"), nullptr);
}

TEST(Metrics, GaugeTracksHighWaterMark) {
  trace::MetricsRegistry reg;
  trace::Gauge& g = reg.gauge("cq.max_depth");
  g.set(3.0);
  g.set(10.0);
  g.set(2.0);
  EXPECT_DOUBLE_EQ(g.value(), 2.0);
  EXPECT_DOUBLE_EQ(g.max(), 10.0);
}

TEST(Metrics, MergeSemantics) {
  trace::MetricsRegistry a;
  trace::MetricsRegistry b;
  a.counter("c").inc(3);
  b.counter("c").inc(4);
  a.gauge("g").set(5.0);
  b.gauge("g").set(2.0);
  a.stat("s").add(1.0);
  a.stat("s").add(3.0);
  b.stat("s").add(5.0);

  a.merge_from(b);
  EXPECT_EQ(a.counter("c").value(), 7u);       // counters add
  EXPECT_DOUBLE_EQ(a.gauge("g").max(), 5.0);   // gauges keep the max
  EXPECT_EQ(a.stat("s").count(), 3u);          // stats merge samples
  EXPECT_DOUBLE_EQ(a.stat("s").mean(), 3.0);
  // Metrics only present in `b` appear after the merge.
  b.counter("only_b").inc();
  a.merge_from(b);
  ASSERT_NE(a.find_counter("only_b"), nullptr);
}

TEST(Metrics, CsvHeaderAndRows) {
  trace::MetricsRegistry reg;
  reg.counter("x.count").inc(2);
  reg.gauge("x.depth").set(7.0);
  reg.stat("x.lat").add(10.0);
  std::ostringstream out;
  reg.write_csv(out);
  std::istringstream in(out.str());
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line, "metric,kind,count,sum,mean,min,max,p50,p90,p99");
  int rows = 0;
  while (std::getline(in, line)) ++rows;
  EXPECT_EQ(rows, 3);
}

TEST(RunningStatMerge, MatchesSequentialAccumulation) {
  RunningStat all, left, right;
  for (int i = 0; i < 40; ++i) {
    double x = 0.37 * i * i - 3.0 * i + 1.5;
    all.add(x);
    (i % 2 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-6);
  EXPECT_DOUBLE_EQ(left.min(), all.min());
  EXPECT_DOUBLE_EQ(left.max(), all.max());
  EXPECT_NEAR(left.sum(), all.sum(), 1e-9);
}

TEST(RunningStatMerge, EmptySidesAreIdentity) {
  RunningStat a, empty;
  a.add(2.0);
  a.add(4.0);
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 3.0);
  RunningStat b;
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 3.0);
}

// ---------------------------------------------------------------------------
// EventRing
// ---------------------------------------------------------------------------

trace::Event make_event(SimTime t) {
  trace::Event ev;
  ev.t = t;
  ev.type = trace::Ev::kSmsgSend;
  return ev;
}

TEST(EventRing, FillsToCapacityWithoutDropping) {
  trace::EventRing ring(4);
  for (SimTime t = 0; t < 4; ++t) ring.push(make_event(t));
  EXPECT_EQ(ring.size(), 4u);
  EXPECT_EQ(ring.dropped(), 0u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(ring.at(i).t, static_cast<SimTime>(i));
  }
}

TEST(EventRing, WrapsOverwritingOldestAndCountsDrops) {
  trace::EventRing ring(4);
  for (SimTime t = 0; t < 10; ++t) ring.push(make_event(t));
  EXPECT_EQ(ring.size(), 4u);
  EXPECT_EQ(ring.dropped(), 6u);
  // Retained entries are the newest four, oldest-first.
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(ring.at(i).t, static_cast<SimTime>(6 + i));
  }
}

TEST(EventRing, ZeroCapacityClampsToOne) {
  trace::EventRing ring(0);
  ring.push(make_event(1));
  ring.push(make_event(2));
  EXPECT_EQ(ring.capacity(), 1u);
  EXPECT_EQ(ring.size(), 1u);
  EXPECT_EQ(ring.dropped(), 1u);
  EXPECT_EQ(ring.at(0).t, 2);
}

// ---------------------------------------------------------------------------
// EventTracer + exporters
// ---------------------------------------------------------------------------

TEST(EventTracer, RecordsPerPeAndCountsTypes) {
  trace::EventTracer tracer(16);
  tracer.record(0, trace::Ev::kSmsgSend, 100, 50, 1, 64);
  tracer.record(0, trace::Ev::kSmsgRecv, 200);
  tracer.record(1, trace::Ev::kRdvGet, 300, 0, 0, 4096);
  tracer.record(-1001, trace::Ev::kRdvAck, 400);  // comm-thread actor

  EXPECT_EQ(tracer.pe_count(), 3u);
  EXPECT_EQ(tracer.total_events(), 4u);
  EXPECT_EQ(tracer.count_of(trace::Ev::kSmsgSend), 1u);
  EXPECT_EQ(tracer.count_of(trace::Ev::kRdvGet), 1u);
  EXPECT_EQ(tracer.count_of(trace::Ev::kBtePost), 0u);
  ASSERT_NE(tracer.ring(0), nullptr);
  EXPECT_EQ(tracer.ring(0)->size(), 2u);
  EXPECT_EQ(tracer.ring(42), nullptr);
}

TEST(EventTracer, ChromeJsonIsWellFormed) {
  trace::EventTracer tracer(8);
  tracer.record(0, trace::Ev::kSmsgSend, 1000, 500, 1, 64);
  tracer.record(1, trace::Ev::kMemReg, 2000, 250, -1, 8192);
  tracer.record(-1000, trace::Ev::kRdvGet, 3000, 0, 0, 1 << 20);
  std::ostringstream out;
  tracer.write_chrome_json(out);
  std::string json = out.str();
  EXPECT_TRUE(JsonChecker(json).valid()) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"smsg_send\""), std::string::npos);
  EXPECT_NE(json.find("\"mem_register\""), std::string::npos);
  // Complete events carry microsecond timestamps: 1000 ns -> 1 us.
  EXPECT_NE(json.find("\"ts\":1"), std::string::npos);
}

TEST(EventTracer, EmptyTracerStillEmitsValidJson) {
  trace::EventTracer tracer(8);
  std::ostringstream out;
  tracer.write_chrome_json(out);
  EXPECT_TRUE(JsonChecker(out.str()).valid()) << out.str();
}

TEST(EventTracer, CsvHeaderAndRowCount) {
  trace::EventTracer tracer(8);
  tracer.record(0, trace::Ev::kPoolHit, 10, 0, -1, 256);
  tracer.record(0, trace::Ev::kPoolMiss, 20, 0, -1, 512);
  std::ostringstream out;
  tracer.write_csv(out);
  std::istringstream in(out.str());
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line, "pe,t_ns,dur_ns,event,peer,size");
  int rows = 0;
  while (std::getline(in, line)) ++rows;
  EXPECT_EQ(rows, 2);
}

TEST(EventTracer, AllEventTypesHaveDistinctNames) {
  for (int i = 0; i < trace::kEvCount; ++i) {
    for (int j = i + 1; j < trace::kEvCount; ++j) {
      EXPECT_STRNE(trace::event_name(static_cast<trace::Ev>(i)),
                   trace::event_name(static_cast<trace::Ev>(j)));
    }
  }
}

TEST(EmitGuard, DisabledByDefaultAndNoopWithoutContext) {
  ASSERT_FALSE(trace::enabled());
  trace::EventTracer tracer(8);
  trace::set_tracer(&tracer);
  EXPECT_TRUE(trace::enabled());
  // No sim context installed: emit must drop the event, not crash.
  trace::emit(trace::Ev::kSmsgSend, 100);
  EXPECT_EQ(tracer.total_events(), 0u);

  // With a context, emit records under the context's PE id.
  sim::Engine engine{sim::EngineOptions{}};
  sim::Context ctx(engine.scheduler(), 7);
  {
    sim::ScopedContext guard(ctx);
    trace::emit(trace::Ev::kSmsgSend, 100, 40, 3, 96);
  }
  EXPECT_EQ(tracer.total_events(), 1u);
  ASSERT_NE(tracer.ring(7), nullptr);
  EXPECT_EQ(tracer.ring(7)->at(0).peer, 3);

  trace::set_tracer(nullptr);
  EXPECT_FALSE(trace::enabled());
}

// ---------------------------------------------------------------------------
// Projections-lite utilization tracer
// ---------------------------------------------------------------------------

TEST(Tracer, SpanCrossingBinsIsApportioned) {
  trace::Tracer tr(1000);  // 1 us bins
  tr.set_pe_count(1);
  // 500 ns in bin 0, all of bin 1, 250 ns in bin 2.
  tr.record(0, 500, 2250, trace::SpanKind::kApp);
  tr.finalize(3000);
  ASSERT_EQ(tr.bins(), 3u);
  EXPECT_DOUBLE_EQ(tr.app_ns(0), 500.0);
  EXPECT_DOUBLE_EQ(tr.app_ns(1), 1000.0);
  EXPECT_DOUBLE_EQ(tr.app_ns(2), 250.0);
  EXPECT_DOUBLE_EQ(tr.idle_ns(2), 750.0);
}

TEST(Tracer, ZeroLengthSpanIsIgnored) {
  trace::Tracer tr(1000);
  tr.set_pe_count(1);
  tr.record(0, 400, 400, trace::SpanKind::kOverhead);
  tr.finalize(1000);
  EXPECT_DOUBLE_EQ(tr.overhead_ns(0), 0.0);
  EXPECT_DOUBLE_EQ(tr.idle_ns(0), 1000.0);
}

TEST(Tracer, RecordAfterFinalizeIsIgnored) {
  trace::Tracer tr(1000);
  tr.set_pe_count(1);
  tr.record(0, 0, 600, trace::SpanKind::kApp);
  tr.finalize(1000);
  double before = tr.app_ns(0);
  tr.record(0, 0, 400, trace::SpanKind::kApp);  // must be a no-op
  EXPECT_DOUBLE_EQ(tr.app_ns(0), before);
}

TEST(Tracer, PercentagesStackToHundred) {
  trace::Tracer tr(1000);
  tr.set_pe_count(2);
  tr.record(0, 0, 600, trace::SpanKind::kApp);
  tr.record(1, 200, 900, trace::SpanKind::kOverhead);
  tr.record(0, 1100, 1900, trace::SpanKind::kApp);
  tr.finalize(2000);
  for (std::size_t b = 0; b < tr.bins(); ++b) {
    EXPECT_NEAR(tr.app_pct(b) + tr.overhead_pct(b) + tr.idle_pct(b), 100.0,
                1e-9);
  }
  EXPECT_NEAR(tr.total_app_pct() + tr.total_overhead_pct() +
                  tr.total_idle_pct(),
              100.0, 1e-9);
}

TEST(Tracer, CsvHasHeaderAndOneRowPerBin) {
  trace::Tracer tr(1000);
  tr.set_pe_count(1);
  tr.record(0, 0, 1500, trace::SpanKind::kApp);
  tr.finalize(2000);
  std::ostringstream out;
  tr.write_csv(out);
  std::istringstream in(out.str());
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line, "time_ms,app_pct,overhead_pct,idle_pct");
  int rows = 0;
  while (std::getline(in, line)) ++rows;
  EXPECT_EQ(rows, 2);
}


// ---------------------------------------------------------------------------
// Histogram (log-bucketed)
// ---------------------------------------------------------------------------

TEST(Histogram, EmptyIsAllZero) {
  trace::Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0.0);
  EXPECT_EQ(h.p50(), 0.0);
  EXPECT_EQ(h.p99(), 0.0);
}

TEST(Histogram, ExactForSingleValue) {
  trace::Histogram h;
  h.add(1234.0);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min(), 1234.0);
  EXPECT_EQ(h.max(), 1234.0);
  // A one-element histogram clamps every quantile to [min, max].
  EXPECT_EQ(h.p50(), 1234.0);
  EXPECT_EQ(h.p99(), 1234.0);
}

TEST(Histogram, QuantilesWithinBucketResolution) {
  // 8 sub-buckets per octave bound the relative width of any bucket by
  // 1/8 = 12.5%; interpolation keeps the estimate inside the bucket, so
  // the estimate can never be off by more than one bucket width.
  trace::Histogram h;
  std::vector<double> vals;
  std::uint64_t x = 88172645463325252ull;  // xorshift64, fixed seed
  for (int i = 0; i < 20000; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    // Span ~6 decades, heavily skewed like latency data.
    double v = 1.0 + static_cast<double>(x % 1000000u);
    vals.push_back(v);
    h.add(v);
  }
  std::sort(vals.begin(), vals.end());
  for (double p : {50.0, 90.0, 99.0}) {
    const double exact =
        vals[static_cast<std::size_t>(p / 100.0 * (vals.size() - 1))];
    const double est = h.quantile(p);
    EXPECT_NEAR(est, exact, 0.125 * exact)
        << "p" << p << ": est " << est << " vs exact " << exact;
  }
  EXPECT_EQ(h.count(), vals.size());
  EXPECT_EQ(h.min(), vals.front());
  EXPECT_EQ(h.max(), vals.back());
}

TEST(Histogram, MergeMatchesSequentialAndIsAssociative) {
  auto fill = [](trace::Histogram& h, int lo, int n, double scale) {
    for (int i = 0; i < n; ++i) h.add(scale * (lo + i));
  };
  trace::Histogram a, b, c, seq;
  fill(a, 1, 100, 1.0);
  fill(b, 50, 200, 3.5);
  fill(c, 1, 50, 1000.0);
  fill(seq, 1, 100, 1.0);
  fill(seq, 50, 200, 3.5);
  fill(seq, 1, 50, 1000.0);

  trace::Histogram ab_c = a;   // (a + b) + c
  ab_c.merge(b);
  ab_c.merge(c);
  trace::Histogram bc = b;     // a + (b + c)
  bc.merge(c);
  trace::Histogram a_bc = a;
  a_bc.merge(bc);

  for (const trace::Histogram* m : {&ab_c, &a_bc}) {
    EXPECT_EQ(m->count(), seq.count());
    EXPECT_DOUBLE_EQ(m->sum(), seq.sum());
    EXPECT_EQ(m->min(), seq.min());
    EXPECT_EQ(m->max(), seq.max());
    // Bucket-exact merge: every quantile matches, not just within error.
    for (double p : {10.0, 50.0, 90.0, 99.0, 99.9}) {
      EXPECT_DOUBLE_EQ(m->quantile(p), seq.quantile(p)) << "p" << p;
    }
  }
}

TEST(Histogram, RegistryExportsCsvAndJson) {
  trace::MetricsRegistry reg;
  trace::Histogram& h = reg.histogram("lat");
  for (int i = 1; i <= 100; ++i) h.add(i);
  std::ostringstream csv;
  reg.write_csv(csv);
  EXPECT_NE(csv.str().find("lat,histogram,100,"), std::string::npos)
      << csv.str();
  std::ostringstream js;
  reg.write_json(js);
  EXPECT_TRUE(JsonChecker(js.str()).valid()) << js.str();
  EXPECT_NE(js.str().find("\"histograms\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// SpanCollector
// ---------------------------------------------------------------------------

TEST(Spans, SamplesEveryNthSubmit) {
  trace::SpanCollector col(trace::SpanConfig{/*sample=*/3});
  int sampled = 0;
  for (int i = 0; i < 9; ++i) {
    std::uint32_t id = col.begin(0, 1, 64, 100 * i);
    if (i % 3 == 0) {
      EXPECT_NE(id, 0u) << i;
      ++sampled;
    } else {
      EXPECT_EQ(id, 0u) << i;
    }
  }
  EXPECT_EQ(sampled, 3);
  EXPECT_EQ(col.span_count(), 3u);
  EXPECT_EQ(col.submits_seen(), 9u);
}

TEST(Spans, SampleZeroNeverRetainsAnything) {
  trace::SpanCollector col;  // sample defaults to 0: off
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(col.begin(0, 1, 64, i), 0u);
  }
  EXPECT_EQ(col.span_count(), 0u);
}

TEST(Spans, MaxSpansCapStopsSampling) {
  trace::SpanCollector col(trace::SpanConfig{1, /*max_spans=*/2});
  EXPECT_NE(col.begin(0, 1, 8, 0), 0u);
  EXPECT_NE(col.begin(0, 1, 8, 1), 0u);
  EXPECT_EQ(col.begin(0, 1, 8, 2), 0u);
  EXPECT_EQ(col.span_count(), 2u);
}

TEST(Spans, MarkOnUnknownIdIsNoop) {
  trace::SpanCollector col(trace::SpanConfig{1});
  col.mark(0, trace::Stage::kDeliver, 0, 10);    // id 0: unsampled
  col.mark(999, trace::Stage::kDeliver, 0, 10);  // never issued
  EXPECT_EQ(col.span_count(), 0u);
}

TEST(Spans, TelescopedStageSumsReconcileWithTotal) {
  trace::SpanCollector col(trace::SpanConfig{1});
  std::uint32_t id = col.begin(0, 1, 64, 100);
  col.mark(id, trace::Stage::kTransportPost, 0, 150);
  col.mark(id, trace::Stage::kRxArrive, 1, 400);
  col.mark(id, trace::Stage::kDeliver, 1, 450);
  trace::MetricsRegistry reg;
  col.fill_histograms(reg);
  double stage_sum = 0;
  for (int s = 0; s < trace::kStageCount; ++s) {
    const trace::Histogram* h = reg.find_histogram(
        std::string("span.stage.") +
        trace::stage_name(static_cast<trace::Stage>(s)));
    if (h) stage_sum += h->sum();
  }
  const trace::Histogram* total = reg.find_histogram("span.total_ns");
  ASSERT_NE(total, nullptr);
  EXPECT_DOUBLE_EQ(total->sum(), 450 - 100);
  EXPECT_DOUBLE_EQ(stage_sum, total->sum());
}

TEST(Spans, ChromeJsonIsWellFormed) {
  trace::SpanCollector col(trace::SpanConfig{1});
  std::uint32_t id = col.begin(0, 3, 128, 10);
  col.mark(id, trace::Stage::kTransportPost, 0, 20);
  col.mark(id, trace::Stage::kDeliver, 3, 55);
  std::ostringstream out;
  col.write_chrome_json(out);
  EXPECT_TRUE(JsonChecker(out.str()).valid()) << out.str();
  EXPECT_NE(out.str().find("\"ph\":\"b\""), std::string::npos);
  EXPECT_NE(out.str().find("\"ph\":\"e\""), std::string::npos);
}

TEST(Spans, ConfigRoundTripAndEnvOverride) {
  trace::SpanConfig sc;
  sc.sample = 7;
  sc.max_spans = 12345;
  Config cfg;
  sc.export_to(cfg);
  trace::SpanConfig rt = trace::SpanConfig::from(cfg);
  EXPECT_EQ(rt.sample, 7u);
  EXPECT_EQ(rt.max_spans, 12345u);

  // UGNIRT_SPAN_SAMPLE must override the exported value via the standard
  // "span.sample" -> env-name mapping.
  std::size_t nkeys = 0;
  const char* const* keys = trace::SpanConfig::config_keys(&nkeys);
  ASSERT_EQ(nkeys, 2u);
  EXPECT_STREQ(keys[0], "span.sample");
  setenv("UGNIRT_SPAN_SAMPLE", "31", 1);
  cfg.apply_env_overrides({keys, keys + nkeys});
  unsetenv("UGNIRT_SPAN_SAMPLE");
  EXPECT_EQ(trace::SpanConfig::from(cfg).sample, 31u);
  EXPECT_EQ(trace::SpanConfig::from(cfg).max_spans, 12345u);
}

// ---------------------------------------------------------------------------
// Spans end-to-end on a real machine
// ---------------------------------------------------------------------------

namespace spane2e {

struct RunResult {
  SimTime end_time = 0;
  std::uint64_t events = 0;
};

/// 4-PE inter-node ping-pong across the SMSG (64 B) and rendezvous
/// (256 KiB) regimes; identical seeds and traffic every call.
RunResult run_traffic() {
  converse::MachineOptions o;
  o.pes = 4;
  o.pes_per_node = 2;
  auto m = lrts::make_machine(converse::LayerKind::kUgni, o);
  int bounces = 0;
  int h = m->register_handler([&](void* msg) {
    ++bounces;
    std::uint32_t total = converse::header_of(msg)->size;
    int me = converse::CmiMyPe();
    if (bounces < 8) {
      void* reply = converse::CmiAlloc(total);
      converse::CmiSetHandler(reply, h);
      converse::CmiSyncSendAndFree(3 - me, total, reply);
    }
    converse::CmiFree(msg);
  });
  for (std::uint32_t payload : {64u, 262144u}) {
    bounces = 0;
    const std::uint32_t total = payload + converse::kCmiHeaderBytes;
    m->start(0, [&, total] {
      void* msg = converse::CmiAlloc(total);
      converse::CmiSetHandler(msg, h);
      converse::CmiSyncSendAndFree(3, total, msg);
    });
    m->run();
  }
  return {m->engine().now(), m->engine().executed()};
}

}  // namespace spane2e

TEST(SpanE2E, StagesAreOrderedAndSpansComplete) {
  trace::SpanCollector col(trace::SpanConfig{/*sample=*/1});
  trace::set_span_collector(&col);
  spane2e::run_traffic();
  trace::set_span_collector(nullptr);

  ASSERT_GT(col.span_count(), 0u);
  std::size_t delivered = 0, with_transport = 0;
  for (std::uint32_t id = 1; id <= col.span_count(); ++id) {
    const trace::Span* sp = col.find(id);
    ASSERT_NE(sp, nullptr);
    ASSERT_FALSE(sp->marks.empty());
    EXPECT_EQ(sp->marks.front().stage, trace::Stage::kSubmit);
    // Virtual time is monotone along the journey.  (Stage enum values are
    // NOT monotone for rendezvous: the INIT control arrives at the
    // receiver before the GET is posted, so rx_arrive precedes
    // transport_post there.)
    for (std::size_t i = 1; i < sp->marks.size(); ++i) {
      EXPECT_GE(sp->marks[i].t, sp->marks[i - 1].t) << "span " << id;
      EXPECT_NE(sp->marks[i].stage, trace::Stage::kSubmit) << "span " << id;
    }
    if (sp->marks.back().stage == trace::Stage::kDeliver) ++delivered;
    for (const trace::SpanMark& mk : sp->marks) {
      if (mk.stage == trace::Stage::kTransportPost) ++with_transport;
    }
  }
  // Every ping-pong leg is a real delivery; all cross the NIC.
  EXPECT_GT(delivered, 0u);
  EXPECT_GT(with_transport, 0u);
}

TEST(SpanE2E, SamplingOffLeavesVirtualTimeBitIdentical) {
  // Run the identical seeded workload with spans fully off and with every
  // message sampled: the instrumentation must add zero virtual-time
  // charges and zero extra events.
  ASSERT_FALSE(trace::spans_enabled());
  spane2e::RunResult off = spane2e::run_traffic();

  trace::SpanCollector col(trace::SpanConfig{/*sample=*/1});
  trace::set_span_collector(&col);
  spane2e::RunResult on = spane2e::run_traffic();
  trace::set_span_collector(nullptr);

  EXPECT_GT(col.span_count(), 0u);
  EXPECT_EQ(off.end_time, on.end_time);
  EXPECT_EQ(off.events, on.events);
}

}  // namespace
}  // namespace ugnirt

