# CMake generated Testfile for 
# Source directory: /root/repo/src/ugni
# Build directory: /root/repo/build/src/ugni
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
