# Empty compiler generated dependencies file for ugnirt_apps.
# This may be replaced when dependencies are built.
