#include <gtest/gtest.h>

#include <cstdint>
#include <utility>
#include <vector>

#include "sim/context.hpp"
#include "sim/engine.hpp"
#include "sim/event_queue.hpp"

namespace ugnirt::sim {
namespace {

// ------------------------------------------------------------- selection ----

TEST(QueueKindNames, RoundTrip) {
  QueueKind k = QueueKind::kHeap;
  EXPECT_TRUE(queue_kind_from_string("calendar", &k));
  EXPECT_EQ(k, QueueKind::kCalendar);
  EXPECT_TRUE(queue_kind_from_string("heap", &k));
  EXPECT_EQ(k, QueueKind::kHeap);
  EXPECT_STREQ(to_string(QueueKind::kHeap), "heap");
  EXPECT_STREQ(to_string(QueueKind::kCalendar), "calendar");
}

TEST(QueueKindNames, RejectsUnknown) {
  QueueKind k = QueueKind::kCalendar;
  EXPECT_FALSE(queue_kind_from_string("splay", &k));
  EXPECT_FALSE(queue_kind_from_string("", &k));
  EXPECT_EQ(k, QueueKind::kCalendar);  // untouched on failure
}

// ------------------------------------------- heap-vs-calendar equivalence ---

/// Deterministic xorshift so the workload is identical across runs.
struct Rng {
  std::uint64_t s = 0x9e3779b97f4a7c15ull;
  std::uint64_t next() {
    s ^= s << 13;
    s ^= s >> 7;
    s ^= s << 17;
    return s;
  }
};

Event make_event(SimTime t, std::uint64_t seq) {
  return Event{t, seq, nullptr};  // queues never inspect the record
}

/// Push the same workload into both backends, interleaving pops the way the
/// engine does (monotone: a pushed time is never before the last pop), and
/// require the exact same (time, seq) pop sequence.
void expect_equivalent(const std::vector<int>& batch_sizes,
                       std::uint64_t gap_mask) {
  auto heap = make_event_queue(QueueKind::kHeap);
  auto cal = make_event_queue(QueueKind::kCalendar);
  Rng rng;
  std::uint64_t seq = 0;
  SimTime now = 0;
  std::vector<std::pair<SimTime, std::uint64_t>> popped_heap, popped_cal;
  for (int batch : batch_sizes) {
    for (int i = 0; i < batch; ++i) {
      SimTime t = now + static_cast<SimTime>(rng.next() & gap_mask);
      heap->push(make_event(t, seq));
      cal->push(make_event(t, seq));
      ++seq;
    }
    // Drain half of what is pending, tracking `now` like the engine.
    std::size_t drain = heap->size() / 2;
    for (std::size_t i = 0; i < drain; ++i) {
      Event a = heap->pop_earliest();
      Event b = cal->pop_earliest();
      popped_heap.emplace_back(a.time, a.seq);
      popped_cal.emplace_back(b.time, b.seq);
      now = a.time;
    }
  }
  while (!heap->empty()) {
    Event a = heap->pop_earliest();
    Event b = cal->pop_earliest();
    popped_heap.emplace_back(a.time, a.seq);
    popped_cal.emplace_back(b.time, b.seq);
  }
  EXPECT_TRUE(cal->empty());
  ASSERT_EQ(popped_heap.size(), popped_cal.size());
  EXPECT_EQ(popped_heap, popped_cal);
  // Sanity: the shared sequence really is (time, seq)-sorted.
  for (std::size_t i = 1; i < popped_heap.size(); ++i) {
    const auto& p = popped_heap[i - 1];
    const auto& q = popped_heap[i];
    EXPECT_TRUE(p.first < q.first ||
                (p.first == q.first && p.second < q.second));
  }
}

TEST(CalendarQueue, MatchesHeapOnDenseWorkload) {
  expect_equivalent({500, 500, 500, 500}, 0x3ff);  // gaps 0..1023 ns
}

TEST(CalendarQueue, MatchesHeapOnSparseWorkload) {
  expect_equivalent({200, 200, 200}, 0xfffff);  // gaps up to ~1 ms
}

TEST(CalendarQueue, MatchesHeapOnMixedScales) {
  // Alternating dense bursts and sparse tails force width re-estimation
  // and bucket resizes in both directions.
  expect_equivalent({2000, 10, 2000, 10, 1000}, 0xffff);
}

TEST(CalendarQueue, ManyEqualTimesPopInFifoOrder) {
  auto cal = make_event_queue(QueueKind::kCalendar);
  for (std::uint64_t s = 0; s < 1000; ++s) cal->push(make_event(42, s));
  for (std::uint64_t s = 0; s < 1000; ++s) {
    Event e = cal->pop_earliest();
    EXPECT_EQ(e.time, 42);
    EXPECT_EQ(e.seq, s);
  }
  EXPECT_TRUE(cal->empty());
}

TEST(CalendarQueue, SurvivesYearJumps) {
  // A huge time jump lands many "years" ahead of the cursor; the direct
  // search fallback must find it without scanning every empty day.
  auto cal = make_event_queue(QueueKind::kCalendar);
  cal->push(make_event(10, 0));
  EXPECT_EQ(cal->pop_earliest().seq, 0u);
  cal->push(make_event(1'000'000'000'000, 1));  // ~17 min of virtual time
  EXPECT_EQ(cal->earliest_time(), 1'000'000'000'000);
  Event e = cal->pop_earliest();
  EXPECT_EQ(e.time, 1'000'000'000'000);
  EXPECT_TRUE(cal->empty());
  EXPECT_EQ(cal->earliest_time(), kNever);
}

TEST(CalendarQueue, ChurnAcrossResizes) {
  auto heap = make_event_queue(QueueKind::kHeap);
  auto cal = make_event_queue(QueueKind::kCalendar);
  Rng rng;
  SimTime now = 0;
  std::uint64_t seq = 0;
  // Grow to 20k (multiple doublings), drain to near-empty (shrinks), twice.
  for (int round = 0; round < 2; ++round) {
    for (int i = 0; i < 20000; ++i) {
      SimTime t = now + static_cast<SimTime>(rng.next() & 0xfff);
      heap->push(make_event(t, seq));
      cal->push(make_event(t, seq));
      ++seq;
    }
    while (heap->size() > 16) {
      Event a = heap->pop_earliest();
      Event b = cal->pop_earliest();
      ASSERT_EQ(a.time, b.time);
      ASSERT_EQ(a.seq, b.seq);
      now = a.time;
    }
  }
  while (!heap->empty()) {
    Event a = heap->pop_earliest();
    Event b = cal->pop_earliest();
    EXPECT_EQ(a.seq, b.seq);
  }
  EXPECT_TRUE(cal->empty());
}

// ------------------------------------------- engine over both backends ------

class EngineBackend : public ::testing::TestWithParam<QueueKind> {};

TEST_P(EngineBackend, RunsEventsInTimeOrder) {
  Engine e{EngineOptions{.queue = GetParam()}};
  EXPECT_STREQ(to_string(e.queue_kind()), to_string(GetParam()));
  std::vector<int> order;
  e.schedule_at(30, [&] { order.push_back(3); });
  e.schedule_at(10, [&] { order.push_back(1); });
  e.schedule_at(20, [&] { order.push_back(2); });
  EXPECT_EQ(e.run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(e.now(), 30);
}

TEST_P(EngineBackend, TiesBreakInSchedulingOrder) {
  Engine e{EngineOptions{.queue = GetParam()}};
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    e.schedule_at(5, [&order, i] { order.push_back(i); });
  }
  e.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST_P(EngineBackend, CancelPreventsExecution) {
  Engine e{EngineOptions{.queue = GetParam()}};
  bool ran = false;
  auto h = e.schedule_at(10, [&] { ran = true; });
  h.cancel();
  e.run();
  EXPECT_FALSE(ran);
}

TEST_P(EngineBackend, RunUntilStopsAtBoundary) {
  Engine e{EngineOptions{.queue = GetParam()}};
  std::vector<SimTime> fired;
  for (SimTime t = 100; t <= 1000; t += 100) {
    e.schedule_at(t, [&fired, t] { fired.push_back(t); });
  }
  e.run_until(500);
  EXPECT_EQ(fired.size(), 5u);
  EXPECT_EQ(e.now(), 500);
  e.run();
  EXPECT_EQ(fired.size(), 10u);
}

TEST_P(EngineBackend, EventsCanScheduleMoreEvents) {
  Engine e{EngineOptions{.queue = GetParam()}};
  int count = 0;
  std::function<void()> chain = [&] {
    if (++count < 100) e.schedule_after(7, chain);
  };
  e.schedule_at(0, chain);
  e.run();
  EXPECT_EQ(count, 100);
  EXPECT_EQ(e.now(), 99 * 7);
}

INSTANTIATE_TEST_SUITE_P(Backends, EngineBackend,
                         ::testing::Values(QueueKind::kHeap,
                                           QueueKind::kCalendar),
                         [](const auto& info) {
                           return std::string(to_string(info.param));
                         });

// ------------------------------------------- event arena (zero-alloc path) --

TEST(EventArena, SteadyChurnRecyclesOneSlab) {
  Engine e{EngineOptions{}};
  ASSERT_TRUE(e.arena_enabled());
  ASSERT_TRUE(e.arena(0).recycling());
  int count = 0;
  const int kEvents = static_cast<int>(EventArena::kSlabRecords) * 5;
  std::function<void()> chain = [&] {
    if (++count < kEvents) e.schedule_after(3, chain);
  };
  e.schedule_at(0, chain);
  e.run();
  EXPECT_EQ(count, kEvents);
  // Sequential churn far past one slab's capacity: every record recycled
  // through the freelist, the heap untouched after the first slab.
  EXPECT_EQ(e.arena(0).slabs(), 1u);
  EXPECT_EQ(e.arena(0).in_use(), 0u);
  EXPECT_EQ(e.arena(0).acquires(), static_cast<std::uint64_t>(kEvents));
}

TEST(EventArena, GrowsPastOneSlabUnderPendingLoad) {
  Engine e{EngineOptions{}};
  const int kPending = static_cast<int>(EventArena::kSlabRecords) + 100;
  int ran = 0;
  for (int i = 0; i < kPending; ++i) {
    e.schedule_at(i, [&ran] { ++ran; });
  }
  EXPECT_GE(e.arena(0).slabs(), 2u);
  EXPECT_EQ(e.arena(0).in_use(), static_cast<std::size_t>(kPending));
  e.run();
  EXPECT_EQ(ran, kPending);
  EXPECT_EQ(e.arena(0).in_use(), 0u);
  // Slabs are never returned: the high-water footprint is stable and a
  // second burst of the same size reuses it without growing further.
  const std::size_t high_water = e.arena(0).slabs();
  for (int i = 0; i < kPending; ++i) {
    e.schedule_after(1, [&ran] { ++ran; });
  }
  e.run();
  EXPECT_EQ(e.arena(0).slabs(), high_water);
}

TEST(EventArena, FreshCarveModeNeverReuses) {
  EngineOptions eo;
  eo.arena = false;
  Engine e{eo};
  EXPECT_FALSE(e.arena_enabled());
  EXPECT_FALSE(e.arena(0).recycling());
  int count = 0;
  const int kEvents = static_cast<int>(EventArena::kSlabRecords) + 50;
  std::function<void()> chain = [&] {
    if (++count < kEvents) e.schedule_after(2, chain);
  };
  e.schedule_at(0, chain);
  e.run();
  EXPECT_EQ(count, kEvents);
  // The A/B baseline carves a fresh record per event even though the
  // pending set never exceeds one: slab growth tracks total events.
  EXPECT_GE(e.arena(0).slabs(), 2u);
  EXPECT_EQ(e.arena(0).in_use(), 0u);
}

TEST(EventArena, CancelFromInsideHandlerTombstones) {
  Engine e{EngineOptions{}};
  bool late = false;
  EventHandle victim;
  e.schedule_at(10, [&] { victim.cancel(); });
  victim = e.schedule_at(20, [&late] { late = true; });
  e.run();
  EXPECT_FALSE(late);
  // The tombstoned record is still released when it surfaces.
  EXPECT_EQ(e.arena(0).in_use(), 0u);
  EXPECT_FALSE(victim.valid());
}

TEST(EventArena, SelfCancelDuringDispatchIsNoOp) {
  Engine e{EngineOptions{}};
  int runs = 0;
  EventHandle self;
  self = e.schedule_at(5, [&] {
    ++runs;
    self.cancel();  // already firing: alive was flipped before dispatch
  });
  e.run();
  EXPECT_EQ(runs, 1);
  EXPECT_FALSE(self.valid());
  EXPECT_EQ(e.arena(0).in_use(), 0u);
}

TEST(EventArena, StaleHandleCannotCancelRecycledRecord) {
  Engine e{EngineOptions{}};
  bool first = false, second = false;
  EventHandle h = e.schedule_at(10, [&first] { first = true; });
  e.run();
  EXPECT_TRUE(first);
  EXPECT_FALSE(h.valid());
  // The LIFO freelist hands the very same record to the next schedule,
  // one generation later; the stale handle must not kill it.
  e.schedule_at(20, [&second] { second = true; });
  h.cancel();
  e.run();
  EXPECT_TRUE(second);
}

TEST(EventArena, EngineCallbacksStayInline) {
  const std::uint64_t before = SmallFn::heap_fallbacks();
  Engine e{EngineOptions{}};
  std::uint64_t sink = 0;
  struct Timer {
    Engine* eng;
    std::uint64_t* sink;
    std::uint32_t lcg;
    int left;
    void operator()() {
      *sink += lcg;
      lcg = lcg * 1664525u + 1013904223u;
      if (--left > 0) eng->scheduler(0).schedule_after(1 + (lcg >> 27), *this);
    }
  };
  for (int i = 0; i < 64; ++i) {
    e.schedule_at(i, Timer{&e, &sink, static_cast<std::uint32_t>(i), 100});
  }
  e.run();
  EXPECT_GT(sink, 0u);
  // Engine-typical captures (a couple of pointers + scalars) must fit the
  // inline buffer — the zero-alloc claim dies if they spill to the heap.
  EXPECT_EQ(SmallFn::heap_fallbacks(), before);
}

}  // namespace
}  // namespace ugnirt::sim
