// Conservative parallel discrete-event engine with deterministic replay.
//
// Everything in the reproduction runs on virtual time: simulated PEs,
// the Gemini NIC model, and the runtime protocol state machines schedule
// callbacks here.  Events with equal timestamps fire in scheduling order
// (a monotonically increasing sequence number breaks ties), which makes
// every run bit-reproducible.
//
// The hot path is allocation-free: each shard owns a slab-recycling
// EventArena (event_arena.hpp) of EventRecords — a SmallFn callback plus
// cancellation state — and the queues move 24-byte POD Events that point
// into it.  schedule_at acquires a record from the freelist, pop releases
// it back; the heap is touched only when the pending set grows past every
// slab ever carved (and in the UGNIRT_SIM_ARENA=0 measurement baseline,
// which carves a fresh record per event).
//
// The pending-event set is PARTITIONED: EngineOptions::shards splits it
// into independent per-shard queues (each backed by sim::EventQueue — a
// binary-heap oracle or an O(1) calendar queue), each with its own local
// virtual clock.  The converse::Machine maps contiguous torus node slabs
// onto shards, so a shard holds the events of one slab of PEs.  Two
// drives execute the sharded set:
//
//  * kReplay (default) — pops the globally (time, seq)-minimal event
//    across all shard queues (a k-way tournament; with one shard this IS
//    the classic sequential engine).  The execution order is bit-exact
//    the same for any shard count, which is why a seeded machine run
//    traces identically at shards = 1, 2, 8: replay is the determinism
//    oracle, and it is what the full runtime uses (the network model and
//    trace buffers are shared state that requires the global order).
//
//  * kWindow — conservative null-message-free barrier rounds: each round
//    computes the global floor (earliest pending time over all shards)
//    and drains every shard independently up to floor + lookahead_ns,
//    exclusive.  Cross-shard schedules travel through per-shard
//    mailboxes merged at the round barrier; the conservative contract is
//    that a cross-shard event is never scheduled closer than `lookahead`
//    after the scheduling shard's clock (the Machine derives lookahead
//    from the Gemini link-latency floor, so message latencies satisfy it
//    by construction).  Violations are counted and clamped, never lost.
//    Within a round shards are independent, so they may be drained by
//    worker threads (EngineOptions::threads) — or in-place on one core,
//    where the win is architectural anyway: each shard pops from a small
//    hot queue (log(n/S) levels, L2-resident) instead of one giant heap,
//    which is worth >1.5x events/sec at 64k+ pending events.  Sequence
//    numbers in this drive are striped (seq = local * shards + shard) so
//    cross-shard ties break by (time, seq) deterministically no matter
//    how rounds interleave on wall-clock: window runs are reproducible
//    run-to-run, and for shard-confined workloads execute the exact
//    per-shard sequences replay would.  Cross-shard mailbox events use
//    per-shard mutex-guarded record pools, NOT the target's arena — the
//    arena is single-owner by contract.
//
// Scheduling-facing code never sees this class: protocol state machines
// hold the concrete sim::Scheduler handle (scheduler.hpp), minted by
// scheduler() (events land on the currently executing shard) and
// scheduler(i) (pinned to shard i).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "sim/event_arena.hpp"
#include "sim/event_queue.hpp"
#include "sim/scheduler.hpp"
#include "sim/small_fn.hpp"
#include "util/units.hpp"

namespace ugnirt::sim {

/// How run() executes the sharded pending set.
enum class DriveMode {
  kReplay,  ///< exact global (time, seq) order — the determinism oracle
  kWindow,  ///< conservative lookahead rounds — the parallel drive
};

const char* to_string(DriveMode mode);

/// Explicit engine construction knobs.  There is deliberately no
/// env-sniffing default Engine constructor any more: a default-constructed
/// EngineOptions is the hermetic sequential engine, and the one place that
/// reads the environment is from_env() — call sites choose which they
/// mean.
struct EngineOptions {
  /// Per-shard pending-set backend ("sim.queue" / UGNIRT_SIM_QUEUE).
  QueueKind queue = QueueKind::kHeap;
  /// Pending-set partitions ("sim.shards" / UGNIRT_SIM_SHARDS).  Clamped
  /// to >= 1.
  int shards = 1;
  /// Conservative synchronization window of the kWindow drive
  /// ("sim.lookahead_ns" / UGNIRT_SIM_LOOKAHEAD_NS): a lower bound on the
  /// virtual delay of any cross-shard interaction.  Clamped to >= 1 so a
  /// round always makes progress.  Ignored by kReplay (which needs no
  /// lookahead: it never reorders).
  SimTime lookahead_ns = 1;
  /// Drive for run()/run_until().  The runtime always uses kReplay;
  /// kWindow is for shard-confined workloads (engine benches/tests).
  DriveMode mode = DriveMode::kReplay;
  /// kWindow only: worker threads draining shards within a round.  0 =
  /// drain in-place on the calling thread (the right choice on one core);
  /// clamped to <= shards.  Requires the workload's events to touch only
  /// shard-local state.
  int threads = 0;
  /// Recycle event records through the per-shard slab arenas ("sim.arena"
  /// / UGNIRT_SIM_ARENA).  false is the A/B measurement baseline: one
  /// fresh record per event (retained until teardown so stale
  /// EventHandles stay safe), i.e. the old allocation-per-event cost.
  /// Scheduling semantics are bit-identical either way.
  bool arena = true;

  /// Options with UGNIRT_SIM_QUEUE / UGNIRT_SIM_SHARDS /
  /// UGNIRT_SIM_LOOKAHEAD_NS / UGNIRT_SIM_ARENA applied over the defaults
  /// — the explicit successor of the old env-sniffing Engine default
  /// constructor.
  static EngineOptions from_env();
};

class Engine final {
 public:
  explicit Engine(const EngineOptions& options);
  ~Engine();
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  // ---- scheduling surface ----
  /// Committed global virtual time: the last executed event's time under
  /// kReplay; the high-water mark of completed rounds under kWindow.
  SimTime now() const { return now_; }
  /// Schedules onto the shard currently executing (shard 0 outside event
  /// execution) — implicit-context protocol code lands its follow-up
  /// events next to the state they touch.
  EventHandle schedule_at(SimTime when, SmallFn fn);
  EventHandle schedule_after(SimTime delay, SmallFn fn) {
    return schedule_at(now_ + delay, std::move(fn));
  }

  // ---- sharding surface ----
  int shards() const { return static_cast<int>(shards_.size()); }
  /// The engine-wide Scheduler handle: now() is the global clock, events
  /// land on the shard currently executing.  What Machine::scheduler()
  /// and the network model hold.
  Scheduler& scheduler() { return global_sched_; }
  /// The per-shard Scheduler: now() is the shard's local clock;
  /// schedule_at targets the shard (cross-shard calls are mailboxed under
  /// the kWindow drive).
  Scheduler& scheduler(int shard);
  /// A shard's local virtual clock (== now() under kReplay).
  SimTime shard_now(int shard) const;
  /// The shard currently executing an event, or -1.
  int current_shard() const;
  SimTime lookahead() const { return lookahead_; }
  DriveMode mode() const { return mode_; }
  /// kWindow: the current (or last) round's global floor — the earliest
  /// pending time when the round was cut.  Every shard clock is bounded
  /// by round_floor() + lookahead() while a round drains.
  SimTime round_floor() const { return round_floor_; }

  // ---- driving ----
  /// Run until the pending set drains or stop() is called.
  /// Returns the number of events executed.
  std::uint64_t run();
  /// Run until virtual time exceeds `until` (events at exactly `until`
  /// run).
  std::uint64_t run_until(SimTime until);
  /// Request run()/run_until() to return after the current event (under
  /// kWindow with threads, after the current round).
  void stop() { stopped_.store(true, std::memory_order_relaxed); }

  // ---- introspection ----
  bool empty() const { return pending() == 0; }
  /// Live scheduled events only: cancelled-but-unpopped tombstones are
  /// excluded (they are not pending work — idle-flush heuristics must not
  /// see them).
  std::size_t pending() const;
  std::uint64_t executed() const {
    return executed_.load(std::memory_order_relaxed);
  }
  QueueKind queue_kind() const { return queue_kind_; }
  /// kWindow: completed synchronization rounds.
  std::uint64_t rounds() const { return rounds_; }
  /// Events that crossed shards (mailboxed under kWindow; direct-pushed
  /// under kReplay).
  std::uint64_t cross_shard_events() const { return cross_shard_events_; }
  /// Cross-shard schedules that violated the conservative lookahead
  /// contract (kWindow only; the event is clamped to the target shard's
  /// clock at the next barrier, never lost or reordered within its shard).
  std::uint64_t lookahead_violations() const { return lookahead_violations_; }
  /// Whether records recycle through the slab arenas (UGNIRT_SIM_ARENA).
  bool arena_enabled() const { return arena_enabled_; }
  /// Arena occupancy of one shard, for tests and the micro bench.
  const EventArena& arena(int shard) const;

 private:
  friend class Scheduler;

  /// One pending-set partition.
  struct Shard {
    Shard(Engine& engine, int index, QueueKind kind, bool arena);

    Engine* engine_;
    int index_;
    SimTime now_ = 0;              // local clock: last executed event's time
    std::uint64_t local_seq_ = 0;  // kWindow striped-seq stream
    std::unique_ptr<EventQueue> queue_;
    std::shared_ptr<std::atomic<std::int64_t>> live_;
    EventArena arena_;  // single-owner: the thread driving this shard

    // kWindow cross-shard arrivals.  Records for mailboxed events come
    // from this mutex-guarded pool, not the arena — the sender's worker
    // must not race the owner's freelist.  Pooled records are stable for
    // the engine's lifetime, so EventHandles to them stay safe.
    std::mutex mailbox_mu_;
    std::vector<Event> mailbox_;
    std::vector<std::unique_ptr<EventRecord>> mailbox_records_;
    EventRecord* mailbox_free_ = nullptr;

    EventRecord* acquire_mailbox_record();  // caller holds mailbox_mu_
    void release_record(EventRecord* rec);  // routes arena vs mailbox pool
  };

  SimTime scheduler_now(int shard) const;
  EventHandle schedule_from(int shard, SimTime when, SmallFn fn);
  EventHandle schedule_on(int target, SimTime when, SmallFn fn);
  std::uint64_t next_seq(int scheduling_shard);
  Shard* earliest_shard();
  SimTime earliest_time_global();
  bool pop_and_run(Shard& shard);
  std::uint64_t run_replay(SimTime until);
  std::uint64_t run_window(SimTime until);
  std::uint64_t drain_shard_to(Shard& shard, SimTime horizon);
  void merge_mailboxes();

  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;  // kReplay global stream
  std::atomic<std::uint64_t> executed_{0};
  std::atomic<bool> stopped_{false};
  QueueKind queue_kind_;
  DriveMode mode_;
  SimTime lookahead_;
  int threads_;
  bool arena_enabled_;
  SimTime round_floor_ = 0;
  SimTime round_horizon_ = 0;  // exclusive; valid while a round drains
  std::uint64_t rounds_ = 0;
  std::uint64_t cross_shard_events_ = 0;
  std::atomic<std::uint64_t> lookahead_violations_{0};
  std::vector<std::unique_ptr<Shard>> shards_;
  // Stable Scheduler handles (two words each); references returned by
  // scheduler() stay valid for the engine's lifetime.
  std::vector<Scheduler> shard_scheds_;
  Scheduler global_sched_;
};

}  // namespace ugnirt::sim
