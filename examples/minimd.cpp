// minimd: Lennard-Jones molecular dynamics on the message-driven runtime —
// the runnable stand-in for NAMD (paper §V-D; see DESIGN.md).
//
// Patches exchange atom positions with their 26 neighbors every step,
// compute real LJ forces, integrate with velocity Verlet, and migrate
// atoms across patch boundaries.  Energy is reduced across PEs each step.
//
// Usage: ./minimd [steps] [pes] [ugni|mpi]
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "apps/minimd/minimd.hpp"

using namespace ugnirt;
using namespace ugnirt::apps::minimd;

int main(int argc, char** argv) {
  MdConfig cfg;
  cfg.steps = argc > 1 ? std::atoi(argv[1]) : 50;
  cfg.atoms_per_patch = 12;

  converse::MachineOptions options;
  options.pes = argc > 2 ? std::atoi(argv[2]) : 9;
  options.layer = (argc > 3 && std::strcmp(argv[3], "mpi") == 0)
                      ? converse::LayerKind::kMpi
                      : converse::LayerKind::kUgni;

  const int patches = cfg.patches_x * cfg.patches_y * cfg.patches_z;
  if (options.pes > patches) options.pes = patches;

  std::printf("minimd: %d patches, %d atoms, %d steps, %d PEs, %s layer\n",
              patches, patches * cfg.atoms_per_patch, cfg.steps, options.pes,
              options.layer == converse::LayerKind::kUgni ? "uGNI" : "MPI");

  MdResult r = run_minimd(options, cfg);

  std::printf("\n%8s %18s\n", "step", "total energy");
  for (std::size_t i = 0; i < r.energy.size();
       i += std::max<std::size_t>(1, r.energy.size() / 10)) {
    std::printf("%8zu %18.6f\n", i, r.energy[i]);
  }
  std::printf("\n  energy drift    : %.4f%% (conservation check)\n",
              100.0 * r.max_energy_drift);
  std::printf("  net momentum    : (%.2e, %.2e, %.2e)\n", r.total_momentum.x,
              r.total_momentum.y, r.total_momentum.z);
  std::printf("  atom migrations : %llu\n",
              static_cast<unsigned long long>(r.migrations));
  std::printf("  pair interactions: %llu\n",
              static_cast<unsigned long long>(r.pair_interactions));
  std::printf("  virtual time    : %.3f ms (%.3f ms/step)\n", to_ms(r.elapsed),
              to_ms(r.per_step));
  return r.max_energy_drift < 0.1 ? 0 : 2;
}
