#include "converse/machine.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <ostream>

#include "aggregation/aggregation.hpp"
#include "aggregation/frame.hpp"
#include "flowcontrol/flowcontrol.hpp"
#include "trace/events.hpp"
#include "trace/session.hpp"
#include "trace/spans.hpp"
#include "trace/tracer.hpp"

namespace ugnirt::converse {

namespace {
Machine* g_running = nullptr;
}  // namespace

// ---------------------------------------------------------------------------
// MachineLayer defaults
// ---------------------------------------------------------------------------

PersistentHandle MachineLayer::create_persistent(sim::Context&, Pe&, int,
                                                 std::uint32_t) {
  return PersistentHandle{};  // not supported by this layer
}

std::uint32_t MachineLayer::recommended_batch_bytes(Pe&, int) const {
  return 0;  // conservative default: no batching unless the layer opts in
}

void MachineLayer::collect_metrics(trace::MetricsRegistry&) {}

// ---------------------------------------------------------------------------
// Pe
// ---------------------------------------------------------------------------

Pe::Pe(Machine& machine, int id, int node)
    : machine_(&machine),
      id_(id),
      node_(node),
      ctx_(machine.scheduler_for_pe(id), id),
      rng_(Rng(machine.options().seed).derive(static_cast<std::uint64_t>(id))) {
}

void Pe::enqueue(void* msg, SimTime t) {
  sched_q_.push_back(msg);
  wake(t);
}

void Pe::wake(SimTime t) {
  SimTime when = std::max(t, avail_at_);
  if (step_scheduled_) {
    if (when >= scheduled_at_) {
      // A step is already pending, but it will run *before* this wake's
      // cause becomes visible — remember the later time so run_step can
      // re-arm instead of stranding the event.
      pending_wake_ = std::min(pending_wake_, when);
      return;
    }
    step_event_.cancel();
  }
  step_scheduled_ = true;
  scheduled_at_ = when;
  // Through the PE's own shard scheduler: a PE's steps are the textbook
  // shard-local workload, and under the replay drive this is bit-identical
  // to scheduling on the global engine.
  step_event_ = ctx_.scheduler().schedule_at(
      when, [this, when] { run_step(when); });
}

void Pe::run_step(SimTime t) {
  step_scheduled_ = false;
  Machine& m = *machine_;
  // A wake issued while the previous step was still executing can carry a
  // stale availability; never start before the PE is actually free.
  t = std::max(t, avail_at_);
  ctx_.set_now(t);
  SimTime app_before = ctx_.app_total();

  Pe* prev_pe = m.current_pe_;
  m.current_pe_ = this;
  {
    sim::ScopedContext guard(ctx_);
    m.layer_->advance(ctx_, *this);
    ctx_.charge(m.options().mc.sched_loop_ns);
    if (!sched_q_.empty()) {
      void* msg = sched_q_.front();
      sched_q_.pop_front();
      const SimTime exec_start = ctx_.now();
      const std::uint32_t msg_size = header_of(msg)->size;
      const std::int32_t msg_src = header_of(msg)->src_pe;
      m.dispatch(*this, msg);
      ++msgs_executed_;
      ++m.stats_.msgs_executed;
      if (trace::enabled()) {
        trace::emit(trace::Ev::kMsgExec, exec_start, ctx_.now() - exec_start,
                    msg_src, msg_size);
      }
    }
    if (m.aggregator_) {
      // Ship buffers whose max-delay timer expired; when the PE has
      // nothing else queued, holding messages back buys no batching —
      // flush everything rather than make an idle PE's peers wait.
      m.aggregator_->flush_expired(ctx_, *this);
      if (sched_q_.empty() && m.options().aggregation.flush_on_idle) {
        m.aggregator_->flush_all(ctx_, *this);
      }
    }
  }
  m.current_pe_ = prev_pe;
  ++m.stats_.steps;

  avail_at_ = ctx_.now();
  if (trace::Tracer* tr = m.tracer()) {
    SimTime app_delta = ctx_.app_total() - app_before;
    SimTime total = avail_at_ - t;
    // Attribute the app portion at the end of the step (handlers run after
    // the progress engine), overhead before it.
    tr->record(id_, t, avail_at_ - app_delta, trace::SpanKind::kOverhead);
    tr->record(id_, avail_at_ - app_delta, avail_at_, trace::SpanKind::kApp);
    (void)total;
  }

  if (!sched_q_.empty()) {
    wake(avail_at_);
  } else if (m.layer_->has_backlog(*this)) {
    // Backlogged sends with no local work: retry on a small backoff so a
    // full remote queue doesn't turn into a dense busy-wait of steps.
    wake(avail_at_ + 500);
  } else if (m.aggregator_) {
    // Keep the flush timer armed: an earlier wake may have replaced the
    // deadline step, so re-ensure one while buffers are outstanding.
    SimTime d = m.aggregator_->earliest_deadline(id_);
    if (d != kNever) wake(std::max(avail_at_, d));
  }
  if (pending_wake_ != kNever) {
    SimTime w = pending_wake_;
    pending_wake_ = kNever;
    wake(w);
  }
}

// ---------------------------------------------------------------------------
// Machine
// ---------------------------------------------------------------------------

namespace {
sim::EngineOptions engine_options_for(const MachineOptions& o) {
  sim::EngineOptions eo;
  eo.queue = o.sim_queue;
  eo.shards = o.effective_shards();
  eo.lookahead_ns = o.effective_lookahead_ns();
  // The runtime layers share state across PEs (the Network's link
  // schedules, tracer buffers, metrics), so the machine always drives the
  // engine in replay mode: exact global (time, seq) order, bit-identical
  // for any shard count.
  eo.mode = sim::DriveMode::kReplay;
  eo.arena = o.sim_arena;
  return eo;
}
}  // namespace

Machine::Machine(MachineOptions options, std::unique_ptr<MachineLayer> layer)
    : options_(options),
      engine_(engine_options_for(options)),
      layer_(std::move(layer)) {
  assert(options_.pes >= 1);
  network_ = std::make_unique<gemini::Network>(
      engine_.scheduler(), topo::Torus3D::for_nodes(options_.nodes()),
      options_.mc);
  if (options_.fault.enabled) {
    fault_ = std::make_unique<fault::FaultInjector>(options_.fault);
    network_->set_fault_injector(fault_.get());
  }
  if (options_.flow.enable) {
    flow_ = std::make_unique<flowcontrol::CongestionEstimator>(
        options_.flow, network_->torus().total_links(),
        static_cast<std::size_t>(network_->torus().nodes()));
    network_->set_congestion_estimator(flow_.get());
  }
  qd_created_.assign(static_cast<std::size_t>(options_.pes), 0);
  qd_processed_.assign(static_cast<std::size_t>(options_.pes), 0);
  pes_.reserve(static_cast<std::size_t>(options_.pes));
  for (int i = 0; i < options_.pes; ++i) {
    pes_.push_back(std::make_unique<Pe>(*this, i, node_of_pe(i)));
  }
  // Layer init runs inside each PE's context so setup costs are charged.
  for (auto& pe : pes_) {
    current_pe_ = pe.get();
    sim::ScopedContext guard(pe->ctx());
    layer_->init_pe(*pe);
    pe->avail_at_ = pe->ctx().now();
  }
  current_pe_ = nullptr;
  if (options_.aggregation.enable) {
    aggregator_ = std::make_unique<aggregation::Aggregator>(
        *this, options_.aggregation);
  }
}

Machine::~Machine() {
  // Hand this machine's metrics to the session aggregate (if tracing is
  // on) so short-lived machines inside bench loops are not lost.
  if (trace::TraceSession* session = trace::TraceSession::active()) {
    collect_metrics();
    session->absorb(metrics_);
  }
  if (g_running == this) g_running = nullptr;
}

void Machine::collect_metrics() {
  layer_->collect_metrics(metrics_);
  network_->collect_metrics(metrics_);
  metrics_.counter("converse.msgs_sent").set(stats_.msgs_sent);
  metrics_.counter("converse.msgs_executed").set(stats_.msgs_executed);
  metrics_.counter("converse.bytes_sent").set(stats_.bytes_sent);
  metrics_.counter("converse.sched_steps").set(stats_.steps);
}

void Machine::dump_metrics(std::ostream& out) {
  collect_metrics();
  metrics_.dump_table(out);
}

int Machine::register_handler(CmiHandler fn) {
  handlers_.push_back(std::move(fn));
  return static_cast<int>(handlers_.size()) - 1;
}

Machine* Machine::running() { return g_running; }

Pe& Machine::current_pe() {
  assert(current_pe_ && "no PE is executing");
  return *current_pe_;
}

void Machine::tree_children(int pe, std::vector<int>& out) const {
  out.clear();
  for (int k = 1; k <= kTreeFanout; ++k) {
    int child = pe * kTreeFanout + k;
    if (child < options_.pes) out.push_back(child);
  }
}

void* Machine::alloc_msg(std::uint32_t total) {
  assert(total >= kCmiHeaderBytes);
  Pe& pe = current_pe();
  void* msg = layer_->alloc(pe.ctx(), pe, total);
  CmiMsgHeader* h = header_of(msg);
  *h = CmiMsgHeader{};
  h->size = total;
  h->alloc_pe = pe.id();
  return msg;
}

void Machine::free_msg(void* msg) {
  Pe& pe = current_pe();
  layer_->free_msg(pe.ctx(), pe, msg);
}

void Machine::submit(int dest_pe, void* msg, const SendOptions& opts) {
  Pe& src = current_pe();
  CmiMsgHeader* h = header_of(msg);
  h->src_pe = src.id();
  if (trace::spans_enabled()) {
    // Every submit starts a fresh journey: a relayed message (batch
    // sub-message, forwarded broadcast leg) gets its own span rather than
    // extending one that already completed at delivery.
    h->span_id = trace::span_begin(src.id(), dest_pe, h->size,
                                   src.ctx().now());
  }
  if (!(h->flags & kMsgFlagSystem)) {
    ++qd_created_[static_cast<std::size_t>(src.id())];
  }
  ++stats_.msgs_sent;
  stats_.bytes_sent += h->size;
  src.ctx().charge(options_.mc.charm_send_overhead_ns);

  if (opts.persistent_handle.valid()) {
    // Persistent channels bypass aggregation: the receiver's registered
    // landing buffer expects exactly the message that was negotiated.
    SendOptions o = opts;
    o.allow_aggregation = false;
    layer_->submit(src.ctx(), src, dest_pe, MsgView{msg, h->size}, o);
    return;
  }

  assert(dest_pe >= 0 && dest_pe < options_.pes);
  if (dest_pe == src.id()) {
    // Local short-circuit: straight into our own scheduler queue.  A
    // runtime-owned buffer (an in-place batch sub-message being relayed
    // by its handler) dies when the batch is freed, so it must be cloned
    // before it can outlive the handler call.
    if (h->flags & kMsgFlagNoFree) msg = clone_runtime_owned(src, msg);
    src.enqueue(msg, src.ctx().now());
    return;
  }
  if (aggregator_) {
    if (opts.allow_aggregation && h->size < options_.aggregation.threshold &&
        aggregator_->enqueue(src.ctx(), src, dest_pe, msg)) {
      // The aggregator copied the bytes into its frame synchronously, so
      // even a runtime-owned (NoFree) buffer needed no clone here.
      return;
    }
    // Bypass send (too big, == threshold, or opted out): flush anything
    // already coalesced for this destination first so the bypass cannot
    // overtake earlier traffic — per-(src,dest) FIFO holds either way.
    aggregator_->flush_dest(src.ctx(), src, dest_pe);
  }
  // The layer takes ownership of non-persistent submissions and frees the
  // buffer after transmission — a runtime-owned batch sub-message must be
  // cloned so the layer never frees an interior pointer.
  if (h->flags & kMsgFlagNoFree) msg = clone_runtime_owned(src, msg);
  layer_->submit(src.ctx(), src, dest_pe, MsgView{msg, header_of(msg)->size},
                 opts);
}

void* Machine::clone_runtime_owned(Pe& src, void* msg) {
  CmiMsgHeader* h = header_of(msg);
  void* copy = layer_->alloc(src.ctx(), src, h->size);
  src.ctx().charge(options_.mc.memcpy_cost(h->size));
  std::memcpy(copy, msg, h->size);
  CmiMsgHeader* ch = header_of(copy);
  ch->alloc_pe = src.id();
  ch->flags &= static_cast<std::uint16_t>(~kMsgFlagNoFree);
  return copy;
}

void Machine::send(int dest_pe, void* msg) {
  submit(dest_pe, msg, SendOptions{});
}

void Machine::flush_aggregation() {
  if (!aggregator_) return;
  Pe& pe = current_pe();
  aggregator_->flush_all(pe.ctx(), pe, aggregation::FlushReason::kBarrier);
}

void Machine::broadcast(void* msg) {
  Pe& src = current_pe();
  CmiMsgHeader* h = header_of(msg);
  h->flags |= kMsgFlagBcast;
  h->bcast_root = static_cast<std::uint32_t>(src.id());
  h->src_pe = src.id();
  // The root participates like any tree node: forward to children, then
  // deliver the local copy through the scheduler.
  forward_broadcast(src, msg);
  if (!(h->flags & kMsgFlagSystem)) {
    ++qd_created_[static_cast<std::size_t>(src.id())];
  }
  ++stats_.msgs_sent;
  src.enqueue(msg, src.ctx().now());
}

void Machine::forward_broadcast(Pe& pe, void* msg) {
  CmiMsgHeader* h = header_of(msg);
  const int root = static_cast<int>(h->bcast_root);
  const int pes = options_.pes;
  // Virtual rank so the tree is rooted at the broadcast origin.
  const int vrank = (pe.id() - root + pes) % pes;
  for (int k = 1; k <= kTreeFanout; ++k) {
    int vchild = vrank * kTreeFanout + k;
    if (vchild >= pes) break;
    int child = (vchild + root) % pes;
    void* copy = layer_->alloc(pe.ctx(), pe, h->size);
    pe.ctx().charge(options_.mc.memcpy_cost(h->size));
    std::memcpy(copy, msg, h->size);
    CmiMsgHeader* ch = header_of(copy);
    ch->alloc_pe = pe.id();
    ch->flags &= static_cast<std::uint16_t>(~kMsgFlagNoFree);
    send(child, copy);
  }
}

void Machine::dispatch(Pe& pe, void* msg) {
  if (!options_.flat_dispatch) {
    dispatch_classic(pe, msg);
    return;
  }
  // Message kind — three flag bits compressed to a table index: the whole
  // classify-then-branch chain becomes one indexed member call whose
  // instantiation has the decisions baked in.
  const std::uint16_t flags = header_of(msg)->flags;
  const unsigned kind = (flags & 1u)          // kMsgFlagSystem  -> bit 0
                        | ((flags & 4u) >> 1)  // kMsgFlagBcast   -> bit 1
                        | ((flags & 8u) >> 1);  // kMsgFlagAggBatch -> bit 2
  static_assert(kMsgFlagSystem == 1 && kMsgFlagBcast == 4 &&
                kMsgFlagAggBatch == 8);
  (this->*kDispatchTable[kind])(pe, msg);
}

template <bool kSystem, bool kBcast, bool kBatch>
void Machine::dispatch_kind(Pe& pe, void* msg) {
  if constexpr (kBatch) {
    // Batch framing overrides the outer flags entirely; per-item flags
    // are runtime data, handled inside.
    dispatch_batch(pe, msg);
    return;
  }
  CmiMsgHeader* h = header_of(msg);
  if constexpr (kBcast) {
    if (static_cast<int>(h->bcast_root) != pe.id()) {
      forward_broadcast(pe, msg);
    }
  }
  if constexpr (!kSystem) {
    ++qd_processed_[static_cast<std::size_t>(pe.id())];
  }
  pe.ctx().charge(options_.mc.charm_recv_overhead_ns);
  if (trace::spans_enabled() && h->span_id != 0) {
    trace::span_mark(h->span_id, trace::Stage::kDeliver, pe.id(),
                     pe.ctx().now());
  }
  assert(h->handler < handlers_.size());
  handlers_[h->handler](msg);
}

const Machine::DispatchFn Machine::kDispatchTable[8] = {
    &Machine::dispatch_kind<false, false, false>,
    &Machine::dispatch_kind<true, false, false>,
    &Machine::dispatch_kind<false, true, false>,
    &Machine::dispatch_kind<true, true, false>,
    &Machine::dispatch_kind<false, false, true>,
    &Machine::dispatch_kind<true, false, true>,
    &Machine::dispatch_kind<false, true, true>,
    &Machine::dispatch_kind<true, true, true>,
};

void Machine::dispatch_batch(Pe& pe, void* msg) {
  // An aggregation batch: deliver every sub-message IN PLACE, inside this
  // one scheduler step (the paper's receive-side aggregation win: recv
  // overhead paid once per batch, items cost only the per-item dispatch
  // overhead, zero copies).  Sub-messages are flagged kMsgFlagNoFree —
  // they live inside the batch buffer and are valid only for their
  // handler call.  Pack order == arrival order, so per-(src,dest) FIFO
  // holds.  Trace/span gates are hoisted to one check per batch — the
  // gates are run-constant, so the charge/mark sequence is identical to
  // checking per item.
  CmiMsgHeader* h = header_of(msg);
  pe.ctx().charge(options_.mc.charm_recv_overhead_ns);
  const bool spans = trace::spans_enabled();
  const SimTime item_ns = options_.mc.agg_item_overhead_ns;
  const bool ok = aggregation::for_each_submessage(
      payload_of(msg),
      h->size - static_cast<std::uint32_t>(kCmiHeaderBytes),
      [&](const void* sub, std::uint32_t len) {
        (void)len;
        void* smsg = const_cast<void*>(sub);
        CmiMsgHeader* sh = header_of(smsg);
        sh->flags |= kMsgFlagNoFree;
        pe.ctx().charge(item_ns);
        if (spans && sh->span_id != 0) {
          trace::span_mark(sh->span_id, trace::Stage::kDeliver, pe.id(),
                           pe.ctx().now());
        }
        if ((sh->flags & kMsgFlagBcast) &&
            static_cast<int>(sh->bcast_root) != pe.id()) {
          forward_broadcast(pe, smsg);
        }
        if (!(sh->flags & kMsgFlagSystem)) {
          ++qd_processed_[static_cast<std::size_t>(pe.id())];
        }
        assert(sh->handler < handlers_.size());
        handlers_[sh->handler](smsg);
        ++stats_.msgs_executed;
      });
  assert(ok && "malformed aggregation frame");
  (void)ok;
  layer_->free_msg(pe.ctx(), pe, msg);
}

void Machine::dispatch_classic(Pe& pe, void* msg) {
  CmiMsgHeader* h = header_of(msg);
  if (h->flags & kMsgFlagAggBatch) {
    // An aggregation batch: deliver every sub-message IN PLACE, inside
    // this one scheduler step.  This is where the receive-side win comes
    // from — the full recv overhead (and the scheduler loop that led
    // here) is paid once per batch; each item costs only the small
    // per-item dispatch overhead, with zero copies.  Sub-messages are
    // flagged kMsgFlagNoFree: they live inside the batch buffer, are
    // runtime-owned, and are valid only for the duration of their
    // handler call (handlers that retain or relay them go through
    // Machine::submit, which clones NoFree buffers).  Pack order ==
    // arrival order, so per-(src,dest) FIFO delivery is preserved.
    pe.ctx().charge(options_.mc.charm_recv_overhead_ns);
    const bool ok = aggregation::for_each_submessage(
        payload_of(msg),
        h->size - static_cast<std::uint32_t>(kCmiHeaderBytes),
        [&](const void* sub, std::uint32_t len) {
          (void)len;
          void* smsg = const_cast<void*>(sub);
          CmiMsgHeader* sh = header_of(smsg);
          sh->flags |= kMsgFlagNoFree;
          pe.ctx().charge(options_.mc.agg_item_overhead_ns);
          if (trace::spans_enabled() && sh->span_id != 0) {
            trace::span_mark(sh->span_id, trace::Stage::kDeliver, pe.id(),
                             pe.ctx().now());
          }
          if ((sh->flags & kMsgFlagBcast) &&
              static_cast<int>(sh->bcast_root) != pe.id()) {
            forward_broadcast(pe, smsg);
          }
          if (!(sh->flags & kMsgFlagSystem)) {
            ++qd_processed_[static_cast<std::size_t>(pe.id())];
          }
          assert(sh->handler < handlers_.size());
          handlers_[sh->handler](smsg);
          ++stats_.msgs_executed;
        });
    assert(ok && "malformed aggregation frame");
    (void)ok;
    layer_->free_msg(pe.ctx(), pe, msg);
    return;
  }
  if ((h->flags & kMsgFlagBcast) &&
      static_cast<int>(h->bcast_root) != pe.id()) {
    forward_broadcast(pe, msg);
  }
  if (!(h->flags & kMsgFlagSystem)) {
    ++qd_processed_[static_cast<std::size_t>(pe.id())];
  }
  pe.ctx().charge(options_.mc.charm_recv_overhead_ns);
  if (trace::spans_enabled() && h->span_id != 0) {
    trace::span_mark(h->span_id, trace::Stage::kDeliver, pe.id(),
                     pe.ctx().now());
  }
  assert(h->handler < handlers_.size());
  handlers_[h->handler](msg);
}

PersistentHandle Machine::create_persistent(int dest_pe,
                                            std::uint32_t max_bytes) {
  Pe& src = current_pe();
  return layer_->create_persistent(src.ctx(), src, dest_pe, max_bytes);
}

void Machine::send_persistent(PersistentHandle handle, void* msg) {
  SendOptions opts;
  opts.allow_aggregation = false;
  opts.persistent_handle = handle;
  submit(/*dest_pe=*/-1, msg, opts);
}

void Machine::start(int pe_id, std::function<void()> fn) {
  Pe& pe = *pes_[static_cast<std::size_t>(pe_id)];
  scheduler_for_pe(pe_id).schedule_at(0, [this, &pe, fn = std::move(fn)] {
    pe.ctx().set_now(std::max(engine_.now(), pe.avail_at_));
    Pe* prev = current_pe_;
    current_pe_ = &pe;
    {
      sim::ScopedContext guard(pe.ctx());
      fn();
    }
    current_pe_ = prev;
    pe.avail_at_ = pe.ctx().now();
    pe.wake(pe.avail_at_);
  });
}

SimTime Machine::run() {
  Machine* prev = g_running;
  g_running = this;
  engine_.run();
  g_running = prev;
  return engine_.now();
}

// ---------------------------------------------------------------------------
// Converse-style free functions
// ---------------------------------------------------------------------------

int CmiMyPe() { return Machine::running()->current_pe().id(); }

int CmiNumPes() { return Machine::running()->num_pes(); }

double CmiWallTimer() {
  return to_s(Machine::running()->current_pe().ctx().now());
}

void* CmiAlloc(std::uint32_t total_bytes) {
  return Machine::running()->alloc_msg(total_bytes);
}

void CmiFree(void* msg) {
  CmiMsgHeader* h = header_of(msg);
  if (h->flags & kMsgFlagNoFree) return;  // runtime-owned (persistent buffer)
  Machine::running()->free_msg(msg);
}

void CmiSetHandler(void* msg, int handler_idx) {
  header_of(msg)->handler = static_cast<std::uint16_t>(handler_idx);
}

void CmiSyncSendAndFree(int dest_pe, std::uint32_t total_bytes, void* msg) {
  assert(header_of(msg)->size == total_bytes);
  (void)total_bytes;
  Machine::running()->send(dest_pe, msg);
}

void CmiSyncBroadcastAllAndFree(std::uint32_t total_bytes, void* msg) {
  assert(header_of(msg)->size == total_bytes);
  (void)total_bytes;
  Machine::running()->broadcast(msg);
}

void CmiChargeWork(SimTime ns) {
  Machine::running()->current_pe().ctx().charge_app(ns);
}

}  // namespace ugnirt::converse
