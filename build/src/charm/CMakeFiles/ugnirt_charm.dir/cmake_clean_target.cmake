file(REMOVE_RECURSE
  "libugnirt_charm.a"
)
