// Runtime-wide metrics registry (the "counters" half of Projections-full).
//
// Every machine layer, the mempool, the uGNI emulation and the Gemini
// network model publish named metrics here instead of keeping private
// ad-hoc stats structs.  Three metric flavors:
//
//   * Counter — monotonically increasing event count; cheap enough to stay
//     always-on (one pointer-indirect increment on the hot path).
//   * Gauge   — point-in-time value sampled at collection time (mailbox
//     bytes, CQ depth, pool slab bytes); tracks its high-water mark.
//   * Stat    — RunningStat-backed distribution (per-sample count / mean /
//     min / max), for quantities like per-link occupancy.
//
// Naming convention is dotted lowercase, `<subsystem>.<what>`:
// "ugni.smsg_sends", "mempool.freelist_hits", "net.link_conflicts",
// "cq.max_depth".  The registry dumps a sorted text table and a CSV with
// header `metric,kind,count,sum,mean,min,max` at end of run.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>

#include "util/stats.hpp"

namespace ugnirt::trace {

class Counter {
 public:
  void inc(std::uint64_t n = 1) { value_ += n; }
  void set(std::uint64_t v) { value_ = v; }
  std::uint64_t value() const { return value_; }
  void reset() { value_ = 0; }

 private:
  std::uint64_t value_ = 0;
};

class Gauge {
 public:
  void set(double v) {
    value_ = v;
    if (v > max_) max_ = v;
  }
  double value() const { return value_; }
  double max() const { return max_; }
  void reset() { value_ = max_ = 0.0; }

 private:
  double value_ = 0.0;
  double max_ = 0.0;
};

class MetricsRegistry {
 public:
  /// Find-or-create.  Returned references stay valid for the registry's
  /// lifetime (std::map nodes are address-stable), so hot paths cache the
  /// pointer once and increment without a lookup.
  Counter& counter(const std::string& name) { return counters_[name]; }
  Gauge& gauge(const std::string& name) { return gauges_[name]; }
  RunningStat& stat(const std::string& name) { return stats_[name]; }

  std::size_t size() const {
    return counters_.size() + gauges_.size() + stats_.size();
  }
  std::size_t counter_count() const { return counters_.size(); }

  const Counter* find_counter(const std::string& name) const;
  const Gauge* find_gauge(const std::string& name) const;

  /// Fold another registry into this one: counters add, gauges keep the
  /// maximum observed value, stats merge their sample moments.  Used by the
  /// trace session to aggregate per-Machine registries over a whole bench.
  void merge_from(const MetricsRegistry& other);

  /// Human-readable sorted table ("== metrics ==" plus one row per metric).
  void dump_table(std::ostream& out) const;

  /// Machine-readable dump: `metric,kind,count,sum,mean,min,max`.
  void write_csv(std::ostream& out) const;

  void reset();

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, RunningStat> stats_;
};

}  // namespace ugnirt::trace
