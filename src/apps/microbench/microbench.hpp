// Micro-benchmark drivers for every communication experiment in the paper.
//
// Each function builds the needed machinery (raw uGNI endpoints, an
// mpilite communicator, or a full CHARM++ machine on either LRTS layer),
// runs a warmed-up measurement loop in virtual time, and returns the
// metric the corresponding figure plots.
#pragma once

#include <cstdint>

#include "converse/machine.hpp"
#include "gemini/machine_config.hpp"
#include "gemini/network.hpp"

namespace ugnirt::apps::bench {

// ---- raw mechanism latency (Figure 4) ----

/// One-way latency of a single FMA/BTE PUT/GET between two pre-registered
/// buffers on adjacent nodes (time to data visibility at the destination,
/// local completion for GETs).
SimTime raw_mechanism_latency(const gemini::MachineConfig& mc,
                              gemini::Mechanism mech, std::uint64_t bytes);

// ---- pure uGNI ping-pong (Figures 1, 6, 9a) ----

/// Best-case uGNI ping-pong: SMSG for small messages, pre-registered
/// one-sided PUT with a remote CQ event for large ones.  Returns the
/// steady-state one-way latency.
SimTime pure_ugni_pingpong(const gemini::MachineConfig& mc,
                           std::uint32_t bytes, int iters = 20);

// ---- pure MPI ping-pong (Figures 1, 8c, 9a) ----

/// MPI ping-pong between two ranks.  `same_buffer` re-uses one buffer for
/// send and receive (uDREG hits after warmup, the paper's fast curve);
/// otherwise distinct buffers alternate (registration-cache misses, the
/// slow curve).  `intranode` places both ranks on one node.
SimTime pure_mpi_pingpong(const gemini::MachineConfig& mc,
                          std::uint32_t bytes, bool same_buffer,
                          bool intranode = false, int iters = 20);

// ---- CHARM++ ping-pong on either machine layer ----

struct PingPongOptions {
  std::uint32_t payload = 8;  // bytes after the Converse envelope
  int iters = 20;
  bool persistent = false;   // use the persistent-message API (Fig 8a)
  bool reuse_buffer = true;  // bounce the same message back (paper §V-A)
};

/// Steady-state one-way latency for a CHARM++ ping-pong.  All of the
/// paper's "uGNI-based / MPI-based CHARM++" latency curves come from this
/// with different MachineOptions (layer, mempool, pxshm) and sizes.
SimTime charm_pingpong(converse::MachineOptions options,
                       const PingPongOptions& pp);

/// Bandwidth (MB/s) derived from the same ping-pong (Figure 9b).
double charm_bandwidth(converse::MachineOptions options, std::uint32_t bytes,
                       int iters = 10);

// ---- one-to-all (Figure 9c) ----

/// PE 0 sends one message to a core on each remote node; every destination
/// acks.  Returns (time until all acks are back) / (number of peers) — the
/// per-message latency the figure reports.
SimTime charm_onetoall(converse::MachineOptions options, std::uint32_t bytes,
                       int iters = 8);

// ---- kNeighbor (Figure 10) ----

/// Every PE exchanges size-`bytes` messages with its k left and k right
/// ring neighbors; an iteration ends when each PE has its 2k acks back.
/// Returns average iteration time.
SimTime charm_kneighbor(converse::MachineOptions options, std::uint32_t bytes,
                        int k = 1, int iters = 10);

// ---- kNeighbor flood (small-message throughput / aggregation ablation) ----

struct KNeighborFloodResult {
  std::uint64_t messages = 0;  // payload messages delivered (asserted exact)
  SimTime elapsed_ns = 0;      // virtual time to drain everything
  double msgs_per_sec = 0;     // messages / elapsed
};

/// Throughput variant of kNeighbor for the fine-grained regime the
/// aggregation layer targets: every PE fires `burst` size-`bytes` messages
/// round-robin at its 2k ring neighbors per round, re-priming itself with
/// a self-message for `rounds` rounds (no per-message acks — the metric is
/// messages per second, not latency).  Asserts exactly
/// pes * burst * rounds deliveries, so it doubles as a loss check.
KNeighborFloodResult charm_kneighbor_flood(converse::MachineOptions options,
                                           std::uint32_t bytes, int k = 2,
                                           int burst = 64, int rounds = 20);

}  // namespace ugnirt::apps::bench
