#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "sim/engine.hpp"
#include "mpilite/mpilite.hpp"

namespace ugnirt::mpilite {
namespace {

/// Driver fixture: 4 ranks, 2 per node (ranks 0,1 on node 0; 2,3 on node 1).
class MpiFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    net_ = std::make_unique<gemini::Network>(
        engine_.scheduler(), topo::Torus3D::for_nodes(4), gemini::MachineConfig{});
    comm_ = std::make_unique<MpiComm>(*net_, 4,
                                      [](int rank) { return rank / 2; });
    for (int r = 0; r < 4; ++r) {
      ctx_.push_back(std::make_unique<sim::Context>(engine_.scheduler(), r));
      sim::ScopedContext guard(*ctx_[static_cast<std::size_t>(r)]);
      comm_->init_rank(r);
    }
  }

  sim::Context& rank_ctx(int r) { return *ctx_[static_cast<std::size_t>(r)]; }

  /// Wait (in virtual time) until iprobe matches, then recv.
  void probe_recv(int rank, int src, int tag, void* buf, std::uint32_t max,
                  Status* st) {
    sim::ScopedContext guard(rank_ctx(rank));
    for (int spins = 0; spins < 10000; ++spins) {
      if (comm_->iprobe(rank, src, tag, st)) {
        comm_->recv(rank, st->source, st->tag, buf, max, st);
        return;
      }
      rank_ctx(rank).wait_until(rank_ctx(rank).now() + 1000);
    }
    FAIL() << "message never arrived";
  }

  sim::Engine engine_{sim::EngineOptions{}};
  std::unique_ptr<gemini::Network> net_;
  std::unique_ptr<MpiComm> comm_;
  std::vector<std::unique_ptr<sim::Context>> ctx_;
};

std::vector<std::uint8_t> pattern(std::uint32_t n, std::uint8_t seed) {
  std::vector<std::uint8_t> v(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    v[i] = static_cast<std::uint8_t>(i * 7 + seed);
  }
  return v;
}

TEST_F(MpiFixture, EagerE0RoundTripIntact) {
  auto data = pattern(100, 1);
  {
    sim::ScopedContext guard(rank_ctx(0));
    comm_->send(0, 2, 5, data.data(), 100);
  }
  std::vector<std::uint8_t> out(100);
  Status st;
  probe_recv(2, 0, 5, out.data(), 100, &st);
  EXPECT_EQ(st.source, 0);
  EXPECT_EQ(st.tag, 5);
  EXPECT_EQ(st.count, 100u);
  EXPECT_EQ(out, data);
  EXPECT_EQ(comm_->stats().sends_e0, 1u);
}

TEST_F(MpiFixture, EagerE1UsesBouncePool) {
  auto data = pattern(4096, 2);
  {
    sim::ScopedContext guard(rank_ctx(0));
    comm_->send(0, 2, 1, data.data(), 4096);
  }
  std::vector<std::uint8_t> out(4096);
  Status st;
  probe_recv(2, MPI_ANY_SOURCE, MPI_ANY_TAG, out.data(), 4096, &st);
  EXPECT_EQ(out, data);
  EXPECT_EQ(comm_->stats().sends_e1, 1u);
  EXPECT_EQ(comm_->udreg_stats().misses, 0u);  // eager never registers
}

TEST_F(MpiFixture, RendezvousTransfersAndBlocksReceiver) {
  auto data = pattern(262144, 3);
  Request req;
  {
    sim::ScopedContext guard(rank_ctx(0));
    comm_->isend(0, 2, 9, data.data(), 262144, &req);
    EXPECT_FALSE(req.done);  // rendezvous: buffer pinned until ACK
  }
  std::vector<std::uint8_t> out(262144);
  Status st;
  sim::ScopedContext guard(rank_ctx(2));
  // Wait for the RTS.
  while (!comm_->iprobe(2, 0, 9, &st)) {
    rank_ctx(2).wait_until(rank_ctx(2).now() + 1000);
  }
  SimTime before = rank_ctx(2).now();
  comm_->recv(2, 0, 9, out.data(), 262144, &st);
  SimTime blocked = rank_ctx(2).now() - before;
  EXPECT_EQ(out, data);
  // 256 KiB at ~6 GB/s is >40 us: the receiver really blocked.
  EXPECT_GT(blocked, microseconds(30.0));
  EXPECT_EQ(comm_->stats().sends_rndv, 1u);
  EXPECT_GT(comm_->udreg_stats().misses, 0u);

  // The ACK completes the sender's request once the sender's clock passes
  // the ACK arrival (the receiver's clock bounds it from above).
  engine_.run();
  sim::ScopedContext g0(rank_ctx(0));
  rank_ctx(0).wait_until(rank_ctx(2).now() + milliseconds(1.0));
  EXPECT_TRUE(comm_->test(0, &req));
}

TEST_F(MpiFixture, UdregCachesRepeatedBuffers) {
  auto data = pattern(262144, 4);
  std::vector<std::uint8_t> out(262144);
  for (int i = 0; i < 5; ++i) {
    Request req;
    {
      sim::ScopedContext guard(rank_ctx(0));
      comm_->isend(0, 2, 3, data.data(), 262144, &req);
    }
    Status st;
    probe_recv(2, 0, 3, out.data(), 262144, &st);
  }
  // Same send buffer and same recv buffer: 2 misses total, rest hits.
  EXPECT_EQ(comm_->udreg_stats().misses, 2u);
  EXPECT_EQ(comm_->udreg_stats().hits, 8u);
}

TEST_F(MpiFixture, IntraNodeShmDoubleCopySmall) {
  auto data = pattern(1024, 5);
  {
    sim::ScopedContext guard(rank_ctx(0));
    comm_->send(0, 1, 2, data.data(), 1024);  // ranks 0,1 share node 0
  }
  std::vector<std::uint8_t> out(1024);
  Status st;
  probe_recv(1, 0, 2, out.data(), 1024, &st);
  EXPECT_EQ(out, data);
  // No NIC traffic for intra-node messages.
  EXPECT_EQ(net_->stats().transfers, 0u);
}

TEST_F(MpiFixture, IntraNodeXpmemSingleCopyLarge) {
  auto data = pattern(65536, 6);
  {
    sim::ScopedContext guard(rank_ctx(0));
    comm_->send(0, 1, 2, data.data(), 65536);
  }
  std::vector<std::uint8_t> out(65536);
  Status st;
  SimTime before;
  {
    sim::ScopedContext guard(rank_ctx(1));
    while (!comm_->iprobe(1, 0, 2, &st)) {
      rank_ctx(1).wait_until(rank_ctx(1).now() + 500);
    }
    before = rank_ctx(1).now();
    comm_->recv(1, 0, 2, out.data(), 65536, &st);
  }
  EXPECT_EQ(out, data);
  // Single copy: roughly one memcpy (16 us at 4 GB/s) plus XPMEM overhead,
  // well under two copies.
  SimTime cost = rank_ctx(1).now() - before;
  EXPECT_LT(cost, microseconds(16.0 + 2.8 + 8.0));
}

TEST_F(MpiFixture, TagAndSourceMatchingSelectsRightMessage) {
  auto a = pattern(64, 7);
  auto b = pattern(64, 8);
  {
    sim::ScopedContext guard(rank_ctx(0));
    comm_->send(0, 2, 1, a.data(), 64);
  }
  {
    sim::ScopedContext guard(rank_ctx(1));
    comm_->send(1, 2, 2, b.data(), 64);
  }
  std::vector<std::uint8_t> out(64);
  Status st;
  // Receive tag 2 first even though tag 1 arrived first.
  probe_recv(2, MPI_ANY_SOURCE, 2, out.data(), 64, &st);
  EXPECT_EQ(st.source, 1);
  EXPECT_EQ(out, b);
  probe_recv(2, MPI_ANY_SOURCE, 1, out.data(), 64, &st);
  EXPECT_EQ(st.source, 0);
  EXPECT_EQ(out, a);
}

TEST_F(MpiFixture, IprobeReturnsFalseWhenNothingMatches) {
  sim::ScopedContext guard(rank_ctx(3));
  Status st;
  EXPECT_FALSE(comm_->iprobe(3, MPI_ANY_SOURCE, MPI_ANY_TAG, &st));
  EXPECT_FALSE(comm_->has_pending(3));
}

TEST_F(MpiFixture, ManyMessagesPreserveOrderDespiteCreditStalls) {
  // 30 sends against 16 mailbox credits: the library's internal send queue
  // must kick in, and order must survive.  Interleave receiver progress
  // with sender progress the way two real processes would run.
  {
    sim::ScopedContext guard(rank_ctx(0));
    for (int i = 0; i < 30; ++i) {
      std::uint32_t v = static_cast<std::uint32_t>(i);
      comm_->send(0, 2, 4, &v, sizeof(v));
    }
    EXPECT_TRUE(comm_->has_send_backlog(0));
  }
  for (int i = 0; i < 30; ++i) {
    std::uint32_t v = 0;
    Status st;
    probe_recv(2, 0, 4, &v, sizeof(v), &st);
    EXPECT_EQ(v, static_cast<std::uint32_t>(i));
    // Let credit-return events fire, then give the sender a progress slice.
    engine_.run();
    sim::ScopedContext guard(rank_ctx(0));
    rank_ctx(0).wait_until(rank_ctx(2).now());
    comm_->advance(0);
  }
  EXPECT_FALSE(comm_->has_send_backlog(0));
}

}  // namespace
}  // namespace ugnirt::mpilite
