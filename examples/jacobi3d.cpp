// jacobi3d: 7-point stencil relaxation over a chare array — the classic
// CHARM++ halo-exchange mini-app, here as a third application domain on
// the reproduced runtime.
//
// The domain is split into blocks; every iteration each block ships its
// six faces to its neighbors, applies the Jacobi update for real (doubles),
// and reports its residual to a controller that stops at convergence.
// Works identically on the uGNI, MPI, and SMP machine layers.
//
// Usage: ./jacobi3d [blocks_per_dim] [block_n] [pes] [ugni|mpi|smp]
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <vector>

#include "charm/array.hpp"
#include "charm/charm.hpp"
#include "lrts/runtime.hpp"

using namespace ugnirt;
using namespace ugnirt::converse;

namespace {

constexpr int kFaceXlo = 0, kFaceXhi = 1, kFaceYlo = 2, kFaceYhi = 3,
              kFaceZlo = 4, kFaceZhi = 5;
constexpr int kMethodFace = 1;

struct FaceHead {
  std::int32_t step;
  std::int32_t face;  // which of MY faces this fills
  std::int32_t count;
};

struct Controller;

struct Grid {
  int bdim = 2;  // blocks per dimension
  int n = 16;    // interior points per block per dimension
  charm::ArrayManager* blocks = nullptr;
  Controller* controller = nullptr;
  int done_handler = -1;
  /// Modeled cost per point update (virtual ns); the arithmetic also runs
  /// for real.
  SimTime ns_per_point = 6;
};

/// One block: (n+2)^3 with ghost shell.
class Block final : public charm::ArrayElement {
 public:
  Block(Grid& g, int idx) : g_(&g), idx_(idx) {
    const int n2 = g.n + 2;
    cur_.assign(static_cast<std::size_t>(n2 * n2 * n2), 0.0);
    next_ = cur_;
    // Boundary condition: the global x=0 plane is held at 1.0.
    int bx = idx % g.bdim;
    if (bx == 0) {
      for (int z = 0; z < n2; ++z) {
        for (int y = 0; y < n2; ++y) at(cur_, 0, y, z) = 1.0;
      }
    }
  }

  void begin_step(int step) {
    step_ = step;
    faces_ = 0;
    send_faces();
    // Replay faces that arrived before our step broadcast did (a neighbor
    // that saw the broadcast earlier may already have sent).
    std::vector<std::vector<std::uint8_t>> replay;
    replay.swap(early_faces_);
    for (const auto& buf : replay) {
      receive(kMethodFace, buf.data(), static_cast<std::uint32_t>(buf.size()));
    }
  }

  void receive(int method, const void* payload, std::uint32_t bytes) override;

  double residual() const { return residual_; }

 private:
  double& at(std::vector<double>& v, int x, int y, int z) {
    const int n2 = g_->n + 2;
    return v[static_cast<std::size_t>(x + n2 * (y + n2 * z))];
  }
  double at(const std::vector<double>& v, int x, int y, int z) const {
    const int n2 = g_->n + 2;
    return v[static_cast<std::size_t>(x + n2 * (y + n2 * z))];
  }

  int neighbor(int dx, int dy, int dz) const {
    int b = g_->bdim;
    int bx = idx_ % b, by = (idx_ / b) % b, bz = idx_ / (b * b);
    int nx = bx + dx, ny = by + dy, nz = bz + dz;
    if (nx < 0 || nx >= b || ny < 0 || ny >= b || nz < 0 || nz >= b) {
      return -1;  // physical boundary
    }
    return nx + b * (ny + b * nz);
  }

  void send_faces();
  void maybe_compute();

  Grid* g_;
  int idx_;
  std::uint32_t bytes_len(const FaceHead& head) const {
    return static_cast<std::uint32_t>(sizeof(FaceHead)) +
           static_cast<std::uint32_t>(head.count) * 8;
  }

  int step_ = -1;
  int faces_ = 0;
  int faces_needed_ = 0;
  double residual_ = 0;
  std::vector<std::vector<std::uint8_t>> early_faces_;
  std::vector<double> cur_, next_;
};

struct Controller {
  Grid* g = nullptr;
  converse::Machine* machine = nullptr;
  int dones = 0;
  int step = 0;
  int max_steps = 50;
  double tol = 1e-4;
  double residual = 0;
  int start_handler = -1;
  SimTime t0 = 0, t1 = 0;

  void broadcast_step() {
    void* msg = CmiAlloc(kCmiHeaderBytes + 8);
    CmiSetHandler(msg, start_handler);
    CmiSyncBroadcastAllAndFree(kCmiHeaderBytes + 8, msg);
  }

  void block_done(double local_residual) {
    residual = std::max(residual, local_residual);
    int nblocks = g->bdim * g->bdim * g->bdim;
    if (++dones < nblocks) return;
    dones = 0;
    ++step;
    std::printf("  step %3d  residual %.6f\n", step, residual);
    if (residual < tol || step >= max_steps) {
      t1 = machine->current_pe().ctx().now();
      return;
    }
    residual = 0;
    broadcast_step();
  }
};

void Block::send_faces() {
  const int n = g_->n;
  faces_needed_ = 0;
  struct Dir {
    int dx, dy, dz;
    int their_face;
  };
  const Dir dirs[6] = {{-1, 0, 0, kFaceXhi}, {1, 0, 0, kFaceXlo},
                       {0, -1, 0, kFaceYhi}, {0, 1, 0, kFaceYlo},
                       {0, 0, -1, kFaceZhi}, {0, 0, 1, kFaceZlo}};
  for (const Dir& d : dirs) {
    int nb = neighbor(d.dx, d.dy, d.dz);
    if (nb < 0) continue;
    ++faces_needed_;
    std::vector<std::uint8_t> buf(sizeof(FaceHead) +
                                  static_cast<std::size_t>(n) * n * 8);
    auto* head = reinterpret_cast<FaceHead*>(buf.data());
    head->step = step_;
    head->face = d.their_face;
    head->count = n * n;
    auto* out = reinterpret_cast<double*>(buf.data() + sizeof(FaceHead));
    // Extract my boundary plane facing this neighbor.
    for (int b2 = 1; b2 <= n; ++b2) {
      for (int b1 = 1; b1 <= n; ++b1) {
        double v = 0;
        if (d.dx != 0) v = at(cur_, d.dx < 0 ? 1 : n, b1, b2);
        if (d.dy != 0) v = at(cur_, b1, d.dy < 0 ? 1 : n, b2);
        if (d.dz != 0) v = at(cur_, b1, b2, d.dz < 0 ? 1 : n);
        out[(b2 - 1) * n + (b1 - 1)] = v;
      }
    }
    g_->blocks->invoke(nb, kMethodFace, buf.data(),
                       static_cast<std::uint32_t>(buf.size()));
  }
  if (faces_needed_ == 0) maybe_compute();
}

void Block::receive(int method, const void* payload, std::uint32_t bytes) {
  (void)bytes;
  assert(method == kMethodFace);
  (void)method;
  FaceHead head;
  std::memcpy(&head, payload, sizeof(head));
  if (head.step == step_ + 1) {
    // Next-step face raced ahead of our step broadcast: hold it.
    const auto* bytes = static_cast<const std::uint8_t*>(payload);
    early_faces_.emplace_back(bytes, bytes + bytes_len(head));
    return;
  }
  assert(head.step == step_);
  const auto* in = reinterpret_cast<const double*>(
      static_cast<const std::uint8_t*>(payload) + sizeof(FaceHead));
  const int n = g_->n;
  for (int b2 = 1; b2 <= n; ++b2) {
    for (int b1 = 1; b1 <= n; ++b1) {
      double v = in[(b2 - 1) * n + (b1 - 1)];
      switch (head.face) {
        case kFaceXlo: at(cur_, 0, b1, b2) = v; break;
        case kFaceXhi: at(cur_, n + 1, b1, b2) = v; break;
        case kFaceYlo: at(cur_, b1, 0, b2) = v; break;
        case kFaceYhi: at(cur_, b1, n + 1, b2) = v; break;
        case kFaceZlo: at(cur_, b1, b2, 0) = v; break;
        case kFaceZhi: at(cur_, b1, b2, n + 1) = v; break;
        default: assert(false);
      }
    }
  }
  ++faces_;
  maybe_compute();
}

void Block::maybe_compute() {
  if (faces_ < faces_needed_) return;
  const int n = g_->n;
  double maxdiff = 0;
  for (int z = 1; z <= n; ++z) {
    for (int y = 1; y <= n; ++y) {
      for (int x = 1; x <= n; ++x) {
        double v = (at(cur_, x - 1, y, z) + at(cur_, x + 1, y, z) +
                    at(cur_, x, y - 1, z) + at(cur_, x, y + 1, z) +
                    at(cur_, x, y, z - 1) + at(cur_, x, y, z + 1)) /
                   6.0;
        maxdiff = std::max(maxdiff, std::abs(v - at(cur_, x, y, z)));
        at(next_, x, y, z) = v;
      }
    }
  }
  std::swap(cur_, next_);
  CmiChargeWork(static_cast<SimTime>(n) * n * n * g_->ns_per_point);

  // Report to the controller on PE 0.
  std::uint32_t total = kCmiHeaderBytes + sizeof(double);
  void* msg = CmiAlloc(total);
  std::memcpy(payload_of(msg), &maxdiff, sizeof(double));
  CmiSetHandler(msg, g_->done_handler);
  CmiSyncSendAndFree(0, total, msg);
}

}  // namespace

int main(int argc, char** argv) {
  Grid grid;
  grid.bdim = argc > 1 ? std::atoi(argv[1]) : 3;
  grid.n = argc > 2 ? std::atoi(argv[2]) : 12;

  MachineOptions options;
  options.pes = argc > 3 ? std::atoi(argv[3]) : 8;
  if (argc > 4 && std::strcmp(argv[4], "mpi") == 0) {
    options.layer = LayerKind::kMpi;
  } else if (argc > 4 && std::strcmp(argv[4], "smp") == 0) {
    options.smp_mode = true;
  }
  const int nblocks = grid.bdim * grid.bdim * grid.bdim;
  if (options.pes > nblocks) options.pes = nblocks;

  auto machine = lrts::make_machine(options.layer, options);
  charm::Charm charm(*machine);
  charm::ArrayManager blocks(charm, nblocks, [&](int idx) {
    return std::make_unique<Block>(grid, idx);
  });
  grid.blocks = &blocks;

  Controller ctl;
  ctl.g = &grid;
  ctl.machine = machine.get();
  grid.controller = &ctl;

  grid.done_handler = machine->register_handler([&](void* msg) {
    double r;
    std::memcpy(&r, payload_of(msg), sizeof(r));
    CmiFree(msg);
    ctl.block_done(r);
  });
  ctl.start_handler = machine->register_handler([&](void* msg) {
    CmiFree(msg);
    int me = CmiMyPe();
    for (int b = 0; b < nblocks; ++b) {
      if (blocks.location_of(b) == me) {
        static_cast<Block*>(blocks.element(b))->begin_step(ctl.step);
      }
    }
  });

  std::printf("jacobi3d: %d^3 blocks of %d^3 points on %d PEs (%s layer)\n",
              grid.bdim, grid.n, options.pes,
              options.smp_mode ? "uGNI-SMP"
              : options.layer == LayerKind::kUgni ? "uGNI" : "MPI");
  machine->start(0, [&] {
    ctl.t0 = machine->current_pe().ctx().now();
    ctl.broadcast_step();
  });
  machine->run();

  std::printf("\n  %d iterations, final residual %.6f\n", ctl.step,
              ctl.residual);
  std::printf("  virtual time %.3f ms (%.1f us/iteration)\n",
              to_ms(ctl.t1 - ctl.t0),
              to_us((ctl.t1 - ctl.t0) / std::max(1, ctl.step)));
  return ctl.step > 0 ? 0 : 2;
}
