#!/usr/bin/env python3
"""Compare BENCH_*.json suite results against committed baselines.

The suite runner (build/bench/suite_runner) writes BENCH_core.json and
BENCH_scale.json; every metric carries a "better" direction:

  "lower"  / "higher"  gated: a change past --tolerance in the worse
                       direction fails the run (exit 1)
  "info"               reported, never gated (wall-clock and other
                       machine-dependent numbers)

Virtual-time metrics are deterministic, so the committed baselines in
bench/baselines/ are exact values from a known-good revision; the
tolerance only absorbs intentional model changes small enough not to
matter.  Refresh baselines by copying fresh BENCH_*.json over them in the
same change that alters the model (and say why in the commit message).

Usage:
  bench_report.py report BENCH_core.json [BENCH_scale.json ...]
  bench_report.py compare --baseline bench/baselines --current . \
      [--tolerance 0.15] [BENCH_core.json BENCH_scale.json]
  bench_report.py check BENCH_scale.json \
      --min pes65536.hold.heap.shards8.speedup_vs_shards1_x=1.5
"""

import argparse
import json
import os
import sys

DEFAULT_FILES = ["BENCH_core.json", "BENCH_scale.json"]


def flatten(doc):
    """Yield (key, value, better, unit) rows from a suite document."""
    if "metrics" in doc:
        for name, m in doc["metrics"].items():
            yield name, m["value"], m.get("better", "info"), m.get("unit", "")
    for point in doc.get("sweep", []):
        # Scale sweep points are keyed by the full (pes, pattern, queue)
        # coordinate; older baselines carried only pes.
        prefix = "pes%d." % point["pes"]
        if "pattern" in point:
            prefix = "pes%d.%s.%s." % (
                point["pes"], point["pattern"], point.get("queue", "heap"))
            # Sharded points carry an extra coordinate; shards=1 rows omit
            # the field so pre-shard baseline keys stay stable.
            if "shards" in point:
                prefix += "shards%d." % point["shards"]
        for name, m in point["metrics"].items():
            yield (prefix + name, m["value"], m.get("better", "info"),
                   m.get("unit", ""))


def load(path):
    with open(path) as f:
        return dict(
            (k, (v, better, unit)) for k, v, better, unit in flatten(json.load(f))
        )


def cmd_report(args):
    for path in args.files or DEFAULT_FILES:
        if not os.path.exists(path):
            print("missing: %s" % path)
            continue
        print("== %s ==" % path)
        for key, (value, better, unit) in sorted(load(path).items()):
            print("  %-44s %14.3f %-8s (%s)" % (key, value, unit, better))
    return 0


def compare_one(name, base, cur, tolerance):
    """Return (regressions, lines) comparing two flattened metric dicts."""
    regressions = []
    lines = []
    for key in sorted(base):
        bval, better, unit = base[key]
        if key not in cur:
            regressions.append("%s: metric disappeared" % key)
            continue
        cval = cur[key][0]
        if bval == 0:
            delta = 0.0 if cval == 0 else float("inf")
        else:
            delta = (cval - bval) / abs(bval)
        worse = (better == "lower" and delta > tolerance) or (
            better == "higher" and delta < -tolerance
        )
        flag = "REGRESSION" if worse else ("   info" if better == "info" else "")
        lines.append(
            "  %-44s %14.3f -> %14.3f  %+7.1f%%  %s"
            % (key, bval, cval, delta * 100.0, flag)
        )
        if worse:
            regressions.append(
                "%s/%s: %.3f -> %.3f (%+.1f%%, better=%s)"
                % (name, key, bval, cval, delta * 100.0, better)
            )
    for key in sorted(set(cur) - set(base)):
        lines.append("  %-44s (new metric: %.3f)" % (key, cur[key][0]))
    return regressions, lines


def cmd_check(args):
    """Gate absolute metric floors: check FILE --min key=value [...]"""
    if not os.path.exists(args.file):
        print("MISSING: %s" % args.file)
        return 1
    metrics = load(args.file)
    failures = []
    for spec in args.min or []:
        key, _, floor_s = spec.partition("=")
        if not floor_s:
            print("bad --min spec (want key=value): %s" % spec)
            return 2
        floor = float(floor_s)
        if key not in metrics:
            failures.append("%s: metric missing (floor %.3f)" % (key, floor))
            continue
        value = metrics[key][0]
        ok = value >= floor
        print("  %-52s %14.3f >= %10.3f  %s"
              % (key, value, floor, "ok" if ok else "FAIL"))
        if not ok:
            failures.append("%s: %.3f below floor %.3f" % (key, value, floor))
    if failures:
        print("\nFAIL: %d floor(s) not met:" % len(failures))
        for f in failures:
            print("  " + f)
        return 1
    print("\nOK: all %d floor(s) met" % len(args.min or []))
    return 0


def cmd_compare(args):
    files = args.files or DEFAULT_FILES
    tolerance = args.tolerance
    all_regressions = []
    for fname in files:
        base_path = os.path.join(args.baseline, fname)
        cur_path = os.path.join(args.current, fname)
        if not os.path.exists(base_path):
            print("no baseline for %s (looked in %s); skipping" % (fname, base_path))
            continue
        if not os.path.exists(cur_path):
            all_regressions.append("%s: current result missing" % fname)
            print("MISSING current result: %s" % cur_path)
            continue
        regs, lines = compare_one(fname, load(base_path), load(cur_path), tolerance)
        print("== %s (tolerance %.0f%%) ==" % (fname, tolerance * 100.0))
        print("\n".join(lines))
        all_regressions.extend(regs)
    if all_regressions:
        print("\nFAIL: %d regression(s) beyond %.0f%%:" % (
            len(all_regressions), tolerance * 100.0))
        for r in all_regressions:
            print("  " + r)
        return 1
    print("\nOK: no gated metric regressed beyond %.0f%%" % (tolerance * 100.0))
    return 0


def main(argv):
    ap = argparse.ArgumentParser(description=__doc__)
    sub = ap.add_subparsers(dest="cmd", required=True)

    p_report = sub.add_parser("report", help="pretty-print suite JSONs")
    p_report.add_argument("files", nargs="*")
    p_report.set_defaults(func=cmd_report)

    p_cmp = sub.add_parser("compare", help="gate current results on baselines")
    p_cmp.add_argument("--baseline", default="bench/baselines")
    p_cmp.add_argument("--current", default=".")
    p_cmp.add_argument("--tolerance", type=float, default=0.15)
    p_cmp.add_argument("files", nargs="*")
    p_cmp.set_defaults(func=cmd_compare)

    p_chk = sub.add_parser(
        "check", help="gate absolute floors, e.g. shard speedups")
    p_chk.add_argument("file")
    p_chk.add_argument(
        "--min", action="append", metavar="KEY=VALUE",
        help="fail unless flattened metric KEY is >= VALUE (repeatable)")
    p_chk.set_defaults(func=cmd_check)

    args = ap.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
