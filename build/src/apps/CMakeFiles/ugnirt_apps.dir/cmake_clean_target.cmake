file(REMOVE_RECURSE
  "libugnirt_apps.a"
)
