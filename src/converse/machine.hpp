// The Converse runtime: message-driven scheduler over an LRTS machine layer.
//
// Mirrors the paper's Figure 3 layering: applications sit on CHARM++-style
// abstractions, which sit on this machine-independent Converse layer, which
// talks to the hardware exclusively through the Lower-level RunTime System
// (LRTS) interface (§III-B) — implemented here by two interchangeable
// machine layers (uGNI-based and MPI-based) exactly as in the paper's
// evaluation ("linked with either MPI- or uGNI-based message-driven runtime
// for comparison").
//
// Each simulated PE runs the classic CHARM++ scheduler loop: advance the
// network progress engine, then execute one message handler to completion.
// Virtual time flows through sim::Context cursors (handlers charge their
// modeled compute; the layers charge communication costs).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "aggregation/config.hpp"
#include "fault/fault.hpp"
#include "flowcontrol/config.hpp"
#include "gemini/machine_config.hpp"
#include "gemini/network.hpp"
#include "sim/context.hpp"
#include "sim/engine.hpp"
#include "converse/message.hpp"
#include "tenancy/config.hpp"
#include "trace/metrics.hpp"
#include "util/rng.hpp"

namespace ugnirt::trace {
class Tracer;
}
namespace ugnirt::aggregation {
class Aggregator;
}
namespace ugnirt::flowcontrol {
class CongestionEstimator;
class InjectionGovernor;
}

namespace ugnirt::converse {

class Machine;
class MachineLayer;
class Pe;

/// Which LRTS implementation a Machine runs on.
enum class LayerKind {
  kUgni,  // the paper's contribution: direct uGNI machine layer
  kMpi,   // the baseline: Converse over (simulated Cray) MPI
};

/// Handle returned by the persistent-message API (paper §IV-A).
struct PersistentHandle {
  std::int32_t id = -1;
  bool valid() const { return id >= 0; }
};

/// Non-owning view of a framed Converse message (envelope at the front).
/// `size` always equals header_of(msg)->size; it rides along so layers can
/// route without re-reading the header.
struct MsgView {
  void* msg = nullptr;
  std::uint32_t size = 0;
};

/// Per-send knobs for the unified submit() path.  Default-constructed
/// SendOptions reproduce the classic CmiSyncSendAndFree behavior.
struct SendOptions {
  /// Reserved for priority-aware scheduling; today all traffic is FIFO.
  int priority = 0;
  /// Allow the aggregation layer to coalesce this message (only messages
  /// under agg.threshold are affected; see aggregation/aggregation.hpp).
  bool allow_aggregation = true;
  /// When valid, the send rides the pre-negotiated persistent channel
  /// (paper §IV-A) and `dest_pe` is ignored — the channel pins it.
  PersistentHandle persistent_handle{};
};

struct MachineOptions {
  int pes = 2;
  LayerKind layer = LayerKind::kUgni;
  gemini::MachineConfig mc{};

  // uGNI-layer optimizations (paper §IV); each can be toggled for the
  // before/after experiments of Figures 6 and 8.
  bool use_mempool = true;
  bool use_pxshm = true;          // intra-node POSIX-shm transport
  bool pxshm_single_copy = true;  // sender-side single copy optimization

  /// Route small messages through the per-NIC shared MSGQ instead of
  /// per-pair SMSG mailboxes: memory stays flat in the peer count at the
  /// price of per-message latency (the §II-B trade; see ablation bench).
  bool use_msgq = false;

  /// SMP mode (paper §VII): one NIC + communication thread per node,
  /// worker PEs share the node address space (zero-copy intra-node
  /// pointer messaging, per-node-pair mailboxes).  uGNI layer only.
  bool smp_mode = false;

  std::uint64_t seed = 0x5eed;

  /// Engine event-queue backend ("sim.queue" config key / UGNIRT_SIM_QUEUE
  /// env): the binary-heap oracle or the O(1) calendar queue for
  /// full-machine sweeps.  Backends are bit-identical under a fixed seed;
  /// this knob only changes wall-clock speed.  Defaults are hermetic —
  /// environment overrides are applied by lrts::make_machine, not here.
  sim::QueueKind sim_queue = sim::QueueKind::kHeap;

  /// Pending-event-set shards ("sim.shards" / UGNIRT_SIM_SHARDS).  The
  /// machine maps contiguous torus node slabs onto shards (clamped to the
  /// node count) and pins every PE's scheduling to its slab's shard.  The
  /// runtime drives the engine in replay mode, so results are bit-identical
  /// for ANY value; >1 trades the one big event queue for several small
  /// hot ones (the full-machine-sweep wall-clock win).
  int sim_shards = 1;

  /// Conservative lookahead ("sim.lookahead_ns" / UGNIRT_SIM_LOOKAHEAD_NS)
  /// handed to the engine.  0 (default) derives it from the Gemini model:
  /// mc.min_remote_latency_ns(), the one-hop router traversal that lower-
  /// bounds any cross-node effect.
  SimTime sim_lookahead_ns = 0;

  /// Recycle engine event records through the per-shard slab arenas
  /// ("sim.arena" / UGNIRT_SIM_ARENA).  false is the A/B measurement
  /// baseline (one fresh record per event); scheduling semantics are
  /// bit-identical either way.
  bool sim_arena = true;

  /// Dispatch messages through the flat per-kind handler table
  /// ("sim.flat_dispatch" / UGNIRT_SIM_FLAT_DISPATCH).  false falls back
  /// to the classic branch chain; both paths charge and trace the exact
  /// same sequence — the toggle exists for the bit-identity guard test
  /// and A/B measurement.
  bool flat_dispatch = true;

  /// PEs per node; 0 means "use mc.cores_per_node".  Micro-benchmarks that
  /// place each rank on its own node set this to 1.
  int pes_per_node = 0;

  /// Shared retry/backoff policy for all LRTS layers ("retry.*" config
  /// keys / UGNIRT_RETRY_* env).
  fault::RetryPolicy retry{};
  /// Deterministic fault-injection plan ("fault.*" config keys /
  /// UGNIRT_FAULT_* env).  Installed on the network when `enabled`.
  fault::FaultPlan fault{};
  /// Small-message aggregation (TRAM-lite; "agg.*" config keys /
  /// UGNIRT_AGG_* env).  An Aggregator is installed when `enable`.
  aggregation::AggregationConfig aggregation{};
  /// Congestion control ("flow.*" config keys / UGNIRT_FLOW_* env).  A
  /// CongestionEstimator is installed on the network when `enable`; the
  /// uGNI layer additionally spins up its InjectionGovernor.
  flowcontrol::FlowConfig flow{};
  /// Multi-tenancy ("tenancy.*" config keys / UGNIRT_TENANCY_* env).
  /// Config only: drivers construct a tenancy::JobManager over the
  /// machine with these knobs (see src/tenancy); with `enable` false the
  /// machine is bit-identical to stock single-job runs.
  tenancy::TenancyConfig tenancy{};

  int effective_pes_per_node() const {
    return pes_per_node > 0 ? pes_per_node : mc.cores_per_node;
  }
  int nodes() const {
    int ppn = effective_pes_per_node();
    return (pes + ppn - 1) / ppn;
  }
  /// Shards the engine will actually run (>= 1, <= nodes: a shard owns at
  /// least one whole node so intra-node traffic never crosses shards).
  int effective_shards() const {
    int s = sim_shards < 1 ? 1 : sim_shards;
    return s > nodes() ? nodes() : s;
  }
  /// Lookahead handed to the engine: the explicit knob, or the Gemini
  /// link-latency floor.
  SimTime effective_lookahead_ns() const {
    return sim_lookahead_ns > 0 ? sim_lookahead_ns
                                : mc.min_remote_latency_ns();
  }
};

/// Base class for per-PE machine-layer state.
class LayerPeState {
 public:
  virtual ~LayerPeState() = default;
};

/// One simulated processing element.
class Pe {
 public:
  Pe(Machine& machine, int id, int node);

  int id() const { return id_; }
  int node() const { return node_; }
  Machine& machine() const { return *machine_; }
  sim::Context& ctx() { return ctx_; }

  /// Deliver a ready-to-execute message into the scheduler queue and make
  /// sure the PE will step at or after `t`.
  void enqueue(void* msg, SimTime t);

  /// Ensure a scheduler step runs at or after `t` (used by CQ notify hooks
  /// and backlog retries).
  void wake(SimTime t);

  std::size_t queue_depth() const { return sched_q_.size(); }
  Rng& rng() { return rng_; }

  LayerPeState* layer_state() const { return layer_state_.get(); }
  void set_layer_state(std::unique_ptr<LayerPeState> s) {
    layer_state_ = std::move(s);
  }

  // Scheduler statistics.
  std::uint64_t msgs_executed() const { return msgs_executed_; }
  SimTime busy_until() const { return avail_at_; }

 private:
  friend class Machine;

  void run_step(SimTime t);

  Machine* machine_;
  int id_;
  int node_;
  sim::Context ctx_;
  Rng rng_;
  std::deque<void*> sched_q_;
  bool step_scheduled_ = false;
  SimTime scheduled_at_ = 0;
  SimTime pending_wake_ = kNever;  // later wake deferred past a scheduled step
  sim::EventHandle step_event_;
  SimTime avail_at_ = 0;
  std::uint64_t msgs_executed_ = 0;
  std::unique_ptr<LayerPeState> layer_state_;
};

/// The LRTS interface (paper §III-B), object-flavored.  LrtsInit maps to
/// the constructor + init_pe; LrtsSyncSend to submit; LrtsNetworkEngine
/// to advance.
class MachineLayer {
 public:
  virtual ~MachineLayer() = default;

  virtual const char* name() const = 0;

  /// Per-PE initialization (attach NIC, create CQs, pools, shm regions).
  virtual void init_pe(Pe& pe) = 0;

  /// Allocate / release a message buffer on the current PE.
  virtual void* alloc(sim::Context& ctx, Pe& pe, std::size_t bytes) = 0;
  virtual void free_msg(sim::Context& ctx, Pe& pe, void* msg) = 0;

  /// The unified LRTS send entry (LrtsSyncSend + persistent sends, one
  /// virtual).  Non-blocking; ownership of `msg.msg` passes to the layer,
  /// which frees the buffer once delivery no longer needs it.  When
  /// `opts.persistent_handle` is valid the send rides the persistent
  /// channel and `dest_pe` may be -1 (the handle pins the destination);
  /// layers without persistent support assert.  `opts.allow_aggregation`
  /// is advisory above this interface — by the time a message reaches the
  /// layer the aggregation decision is already made.
  virtual void submit(sim::Context& ctx, Pe& src, int dest_pe, MsgView msg,
                      const SendOptions& opts) = 0;

  /// Largest message (total bytes) this layer moves to `dest_pe` in ONE
  /// transaction — the aggregation buffer bound for the (src, dest) pair.
  /// Return 0 to opt the pair out of batching entirely (e.g. intra-node
  /// pointer handoff, where packing would add copies to a zero-copy path).
  virtual std::uint32_t recommended_batch_bytes(Pe& src, int dest_pe) const;

  /// LrtsNetworkEngine: poll completion queues, run protocol state
  /// machines, deliver arrived messages to the scheduler.
  virtual void advance(sim::Context& ctx, Pe& pe) = 0;

  /// True when the layer still has deferred work for this PE (credit-
  /// stalled sends, pending acks) and wants more advance() calls.
  virtual bool has_backlog(const Pe& pe) const = 0;

  /// Publish point-in-time gauges (mailbox/pool/CQ state) into the
  /// registry.  Counters are bound at init and need no collection step.
  virtual void collect_metrics(trace::MetricsRegistry& reg);

  /// The layer's injection governor, or nullptr when the layer has none
  /// (flow control off, or a layer without pacing).  The tenancy
  /// subsystem pushes per-job QoS window bounds through this.
  virtual flowcontrol::InjectionGovernor* governor() { return nullptr; }

  // Persistent-message API (paper §IV-A).  Layers without support return an
  // invalid handle (callers fall back to plain sends).
  virtual PersistentHandle create_persistent(sim::Context& ctx, Pe& src,
                                             int dest_pe,
                                             std::uint32_t max_bytes);
};

/// Handler function; executes on the destination PE with sim::current()
/// set.  The handler owns `msg` (frees it with CmiFree unless kMsgFlagNoFree).
using CmiHandler = std::function<void(void* msg)>;

struct MachineStats {
  std::uint64_t msgs_sent = 0;
  std::uint64_t msgs_executed = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t steps = 0;
};

class Machine {
 public:
  Machine(MachineOptions options, std::unique_ptr<MachineLayer> layer);
  ~Machine();
  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;

  // ---- topology / identity ----
  int num_pes() const { return options_.pes; }
  int node_of_pe(int pe) const { return pe / options_.effective_pes_per_node(); }
  /// Engine shard owning `node`: contiguous torus slabs, so neighbor
  /// traffic mostly stays shard-local.
  int shard_of_node(int node) const {
    return static_cast<int>(static_cast<long long>(node) *
                            engine_.shards() / options_.nodes());
  }
  int shard_of_pe(int pe) const { return shard_of_node(node_of_pe(pe)); }
  Pe& pe(int i) { return *pes_[static_cast<std::size_t>(i)]; }
  const MachineOptions& options() const { return options_; }
  gemini::Network& network() { return *network_; }
  /// The installed fault injector, or nullptr when faults are disabled.
  fault::FaultInjector* fault_injector() { return fault_.get(); }
  /// The installed congestion estimator, or nullptr when flow control is
  /// disabled.
  flowcontrol::CongestionEstimator* congestion_estimator() {
    return flow_.get();
  }
  /// The whole engine — for DRIVERS only (benches, tests, the run() loop
  /// below).  Protocol code takes one of the Scheduler accessors instead;
  /// the deprecated-API lint enforces the split for schedule calls.
  sim::Engine& engine() { return engine_; }
  /// The engine's global scheduling surface (events land on the shard
  /// currently executing).
  sim::Scheduler& scheduler() { return engine_.scheduler(); }
  /// The per-shard scheduler a node's (or PE's) events belong to.
  sim::Scheduler& scheduler_for_node(int node) {
    return engine_.scheduler(shard_of_node(node));
  }
  sim::Scheduler& scheduler_for_pe(int pe) {
    return engine_.scheduler(shard_of_pe(pe));
  }
  MachineLayer& layer() { return *layer_; }
  trace::Tracer* tracer() { return tracer_; }
  void set_tracer(trace::Tracer* t) { tracer_ = t; }

  // ---- handlers ----
  int register_handler(CmiHandler fn);
  const CmiHandler& handler(int idx) const {
    return handlers_[static_cast<std::size_t>(idx)];
  }

  // ---- messaging (callable from inside handlers) ----
  /// Allocate a message of `total` bytes (header included) on the current PE.
  void* alloc_msg(std::uint32_t total);
  /// The unified send entry: every message — plain, broadcast leg,
  /// persistent — funnels through here and down to MachineLayer::submit,
  /// with the aggregation layer in between for eligible small messages.
  /// Ownership of `msg` passes to the runtime.
  void submit(int dest_pe, void* msg, const SendOptions& opts);
  /// CmiSyncSendAndFree: send `msg` to dest_pe; thin wrapper over submit().
  void send(int dest_pe, void* msg);
  /// CmiSyncBroadcastAllAndFree: deliver to every PE (including sender)
  /// via a spanning tree (each tree leg goes through submit(), so small
  /// broadcasts aggregate too).
  void broadcast(void* msg);
  void free_msg(void* msg);

  // ---- persistent messages ----
  PersistentHandle create_persistent(int dest_pe, std::uint32_t max_bytes);
  /// Thin wrapper: submit() with SendOptions::persistent_handle set.
  void send_persistent(PersistentHandle h, void* msg);

  // ---- aggregation ----
  /// The installed aggregator, or nullptr when aggregation is disabled.
  aggregation::Aggregator* aggregator() { return aggregator_.get(); }
  /// Explicit barrier flush of the current PE's aggregation buffers
  /// (no-op when aggregation is off).  Collectives and app barriers call
  /// this so coalesced stragglers never gate a dependency chain.
  void flush_aggregation();

  // ---- bootstrapping / running ----
  /// Schedule `fn` to run on `pe` at virtual time 0 (before any messages).
  void start(int pe, std::function<void()> fn);
  /// Run the simulation until the event queue drains; returns final time.
  SimTime run();
  /// Stop the machine (callable from a handler when the app is done).
  void stop() { engine_.stop(); }

  /// The machine currently executing (valid inside handlers/start fns).
  static Machine* running();
  /// The PE currently executing.
  Pe& current_pe();

  // ---- quiescence detection bookkeeping (used by collectives.cpp) ----
  std::uint64_t qd_created(int pe) const {
    return qd_created_[static_cast<std::size_t>(pe)];
  }
  std::uint64_t qd_processed(int pe) const {
    return qd_processed_[static_cast<std::size_t>(pe)];
  }

  const MachineStats& stats() const { return stats_; }

  // ---- observability ----
  /// This machine's metrics registry; layers bind their counters here.
  trace::MetricsRegistry& metrics() { return metrics_; }
  /// Refresh point-in-time gauges (layer + network) and dump the registry
  /// as a text table.
  void dump_metrics(std::ostream& out);
  /// collect_metrics() from the layer and network into the registry.
  void collect_metrics();

  /// Spanning-tree helpers shared by broadcast / reductions (k-ary tree).
  static constexpr int kTreeFanout = 4;
  int tree_parent(int pe) const { return pe == 0 ? -1 : (pe - 1) / kTreeFanout; }
  void tree_children(int pe, std::vector<int>& out) const;

 private:
  friend class Pe;

  void dispatch(Pe& pe, void* msg);
  /// The pre-flat-table dispatcher: a branch chain re-reading the flags
  /// word at every decision.  Kept as the independent reference the
  /// bit-identity guard test compares the flat table against
  /// (MachineOptions::flat_dispatch = false).
  void dispatch_classic(Pe& pe, void* msg);
  /// One flat-table entry: the System/Bcast/AggBatch decisions are baked
  /// into the instantiation, so dispatch costs one indexed indirect call
  /// instead of the chain.  Charges and trace marks are identical to
  /// dispatch_classic by construction.
  template <bool kSystem, bool kBcast, bool kBatch>
  void dispatch_kind(Pe& pe, void* msg);
  void dispatch_batch(Pe& pe, void* msg);
  using DispatchFn = void (Machine::*)(Pe&, void*);
  /// Indexed by message kind: bit0 = System, bit1 = Bcast, bit2 = AggBatch.
  static const DispatchFn kDispatchTable[8];
  void forward_broadcast(Pe& pe, void* msg);
  void* clone_runtime_owned(Pe& src, void* msg);

  MachineOptions options_;
  sim::Engine engine_;
  std::unique_ptr<gemini::Network> network_;
  std::unique_ptr<fault::FaultInjector> fault_;
  std::unique_ptr<flowcontrol::CongestionEstimator> flow_;
  std::unique_ptr<MachineLayer> layer_;
  std::vector<std::unique_ptr<Pe>> pes_;
  std::vector<CmiHandler> handlers_;
  std::vector<std::uint64_t> qd_created_;
  std::vector<std::uint64_t> qd_processed_;
  MachineStats stats_;
  trace::MetricsRegistry metrics_;
  trace::Tracer* tracer_ = nullptr;
  Pe* current_pe_ = nullptr;
  // Declared last: its destructor returns leased batch buffers through
  // layer_ while the PEs are still alive.
  std::unique_ptr<aggregation::Aggregator> aggregator_;
};

// ---- Converse-style free functions (valid inside handlers) ----

int CmiMyPe();
int CmiNumPes();
/// Virtual wall time in seconds.
double CmiWallTimer();
void* CmiAlloc(std::uint32_t total_bytes);
void CmiFree(void* msg);
void CmiSetHandler(void* msg, int handler_idx);
void CmiSyncSendAndFree(int dest_pe, std::uint32_t total_bytes, void* msg);
void CmiSyncBroadcastAllAndFree(std::uint32_t total_bytes, void* msg);
/// Charge modeled application compute to the current PE.
void CmiChargeWork(SimTime ns);

}  // namespace ugnirt::converse
