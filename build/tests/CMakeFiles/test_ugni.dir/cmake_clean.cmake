file(REMOVE_RECURSE
  "CMakeFiles/test_ugni.dir/ugni_test.cpp.o"
  "CMakeFiles/test_ugni.dir/ugni_test.cpp.o.d"
  "test_ugni"
  "test_ugni.pdb"
  "test_ugni[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ugni.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
