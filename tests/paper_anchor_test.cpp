// Paper-anchor regression suite: every figure's *shape claim* encoded as a
// test, so model refactoring cannot silently break the reproduction.
// EXPERIMENTS.md documents the same claims with measured numbers.
#include <gtest/gtest.h>

#include "apps/microbench/microbench.hpp"
#include "apps/namdmodel/namdmodel.hpp"
#include "apps/nqueens/parallel.hpp"
#include "apps/nqueens/subtree_model.hpp"

namespace ugnirt {
namespace {

using apps::bench::charm_bandwidth;
using apps::bench::charm_kneighbor;
using apps::bench::charm_onetoall;
using apps::bench::charm_pingpong;
using apps::bench::PingPongOptions;
using apps::bench::pure_mpi_pingpong;
using apps::bench::pure_ugni_pingpong;
using apps::bench::raw_mechanism_latency;
using converse::LayerKind;
using converse::MachineOptions;

MachineOptions layer_opts(LayerKind layer) {
  MachineOptions o;
  o.layer = layer;
  o.pes_per_node = 1;
  return o;
}

SimTime pp(LayerKind layer, std::uint32_t payload) {
  PingPongOptions p;
  p.payload = payload;
  return charm_pingpong(layer_opts(layer), p);
}

// ---- Figure 1: uGNI < MPI < MPI-based CHARM++ at every size ----

TEST(PaperFig1, LatencyLadderHoldsAcrossSizes) {
  gemini::MachineConfig mc;
  for (std::uint32_t size : {32u, 512u, 4096u, 65536u}) {
    SimTime ugni = pure_ugni_pingpong(mc, size);
    SimTime mpi = pure_mpi_pingpong(mc, size, true);
    SimTime mpi_charm = pp(LayerKind::kMpi, size);
    EXPECT_LT(ugni, mpi) << size;
    EXPECT_LT(mpi, mpi_charm) << size;
  }
}

// ---- Figure 4: FMA/BTE crossover inside the 2-8 KiB window ----

TEST(PaperFig4, CrossoverInsidePaperWindow) {
  gemini::MachineConfig mc;
  auto fma = [&](std::uint64_t s) {
    return raw_mechanism_latency(mc, gemini::Mechanism::kFmaPut, s);
  };
  auto bte = [&](std::uint64_t s) {
    return raw_mechanism_latency(mc, gemini::Mechanism::kBtePut, s);
  };
  EXPECT_LT(fma(2048), bte(2048));   // FMA still wins at 2 KiB
  EXPECT_GT(fma(8192), bte(8192));   // BTE wins by 8 KiB
}

// ---- Figure 6: the no-pool runtime loses to MPI-CHARM++ at large sizes
//      but tracks pure uGNI for SMSG sizes ----

TEST(PaperFig6, InitialRuntimeShape) {
  MachineOptions no_pool = layer_opts(LayerKind::kUgni);
  no_pool.use_mempool = false;
  PingPongOptions small;
  small.payload = 256;
  PingPongOptions big;
  big.payload = 262144;
  big.reuse_buffer = false;

  gemini::MachineConfig mc;
  SimTime small_charm = charm_pingpong(no_pool, small);
  EXPECT_LT(small_charm, pp(LayerKind::kMpi, 256));       // small: wins
  SimTime big_charm = charm_pingpong(no_pool, big);
  PingPongOptions big_mpi = big;
  EXPECT_GT(big_charm, charm_pingpong(layer_opts(LayerKind::kMpi), big_mpi))
      << "Equation 1 costs must make the initial runtime lose big messages";
  EXPECT_LT(small_charm, pure_ugni_pingpong(mc, 256) + microseconds(2.0));
}

// ---- Figure 8: each optimization pays off ----

TEST(PaperFig8a, PersistentHalvesNoPoolLatency) {
  MachineOptions o = layer_opts(LayerKind::kUgni);
  o.use_mempool = false;
  PingPongOptions plain;
  plain.payload = 65536;
  plain.reuse_buffer = false;
  PingPongOptions persist = plain;
  persist.persistent = true;
  SimTime t_plain = charm_pingpong(o, plain);
  SimTime t_persist = charm_pingpong(o, persist);
  EXPECT_LT(static_cast<double>(t_persist), 0.7 * t_plain);
}

TEST(PaperFig8b, MempoolNearsPureUgniLargeMessages) {
  MachineOptions pool = layer_opts(LayerKind::kUgni);
  PingPongOptions p;
  p.payload = 262144;
  p.reuse_buffer = false;
  gemini::MachineConfig mc;
  SimTime with_pool = charm_pingpong(pool, p);
  SimTime pure = pure_ugni_pingpong(mc, 262144);
  EXPECT_LT(static_cast<double>(with_pool), 1.15 * pure)
      << "pool path must land within ~15% of pure uGNI";
}

TEST(PaperFig8c, IntranodeOrdering) {
  auto charm_intranode = [&](bool single) {
    MachineOptions o;
    o.pes_per_node = 2;
    o.pxshm_single_copy = single;
    PingPongOptions p;
    p.payload = 131072;
    return charm_pingpong(o, p);
  };
  gemini::MachineConfig mc;
  SimTime dbl = charm_intranode(false);
  SimTime single = charm_intranode(true);
  SimTime mpi = pure_mpi_pingpong(mc, 131072, true, /*intranode=*/true);
  EXPECT_LT(single, mpi);  // CHARM++ single copy beats MPI overall
  EXPECT_GT(dbl, mpi);     // double copy loses beyond the XPMEM threshold
}

// ---- Figure 9 ----

TEST(PaperFig9a, EightByteAnchors) {
  gemini::MachineConfig mc;
  SimTime pure = pure_ugni_pingpong(mc, 8);
  SimTime ugni_charm = pp(LayerKind::kUgni, 8);
  SimTime mpi_charm = pp(LayerKind::kMpi, 8);
  // Paper: 1.2 us / 1.6 us / ~3 us.
  EXPECT_NEAR(to_us(pure), 1.2, 0.4);
  EXPECT_NEAR(to_us(ugni_charm), 1.8, 0.7);
  EXPECT_GT(to_us(mpi_charm), 2.8);
  EXPECT_LT(to_us(mpi_charm), 5.0);
}

TEST(PaperFig9b, BandwidthGapClosesWithSize) {
  double ug_64k = charm_bandwidth(layer_opts(LayerKind::kUgni), 65536);
  double mp_64k = charm_bandwidth(layer_opts(LayerKind::kMpi), 65536);
  double ug_4m = charm_bandwidth(layer_opts(LayerKind::kUgni), 4 << 20);
  double mp_4m = charm_bandwidth(layer_opts(LayerKind::kMpi), 4 << 20);
  EXPECT_GT(ug_64k / mp_64k, 1.25);            // visible gap in the middle
  EXPECT_LT(ug_4m / mp_4m, ug_64k / mp_64k);   // which narrows with size
  EXPECT_GT(ug_4m, 5000.0);                    // approaching ~6 GB/s
}

TEST(PaperFig9c, OneToAllSmallMessageGap) {
  auto run = [&](LayerKind layer) {
    MachineOptions o = layer_opts(layer);
    o.pes = 16;
    return charm_onetoall(o, 64, 4);
  };
  SimTime ug = run(LayerKind::kUgni);
  SimTime mp = run(LayerKind::kMpi);
  EXPECT_GT(static_cast<double>(mp), 1.8 * ug);  // wide small-message gap
}

// ---- Figure 10: kNeighbor, MPI ~2x even at 1 MiB ----

TEST(PaperFig10, KNeighborRatio) {
  auto run = [&](LayerKind layer) {
    MachineOptions o = layer_opts(layer);
    o.pes = 3;
    return charm_kneighbor(o, 1 << 20, 1, 4);
  };
  double ratio = static_cast<double>(run(LayerKind::kMpi)) /
                 static_cast<double>(run(LayerKind::kUgni));
  EXPECT_GT(ratio, 1.4);
  EXPECT_LT(ratio, 2.6);  // paper: about 2x
}

// ---- Figures 11/12: fine grain helps uGNI, hurts MPI ----

TEST(PaperFig12, ThresholdInteractionReproduces) {
  auto coarse = apps::nqueens::SampledModel::build(14, 3, 400);
  auto fine = apps::nqueens::SampledModel::build(14, 5, 400);
  auto run = [&](LayerKind layer, int depth,
                 const apps::nqueens::SubtreeCostModel* m) {
    MachineOptions o;
    o.pes = 96;
    o.layer = layer;
    apps::nqueens::NQueensConfig cfg;
    cfg.n = 14;
    cfg.threshold = depth;
    cfg.model = m;
    return apps::nqueens::run_nqueens(o, cfg).elapsed;
  };
  SimTime ug_coarse = run(LayerKind::kUgni, 3, coarse.get());
  SimTime ug_fine = run(LayerKind::kUgni, 5, fine.get());
  SimTime mp_coarse = run(LayerKind::kMpi, 3, coarse.get());
  SimTime mp_fine = run(LayerKind::kMpi, 5, fine.get());
  EXPECT_LT(ug_fine, ug_coarse) << "uGNI must exploit fine grains";
  EXPECT_GT(mp_fine, mp_coarse) << "MPI must choke on fine grains";
  EXPECT_LT(ug_fine, mp_coarse) << "uGNI's best beats MPI's best";
}

// ---- Table II / Fig 13: NAMD improvements in the paper's band ----

TEST(PaperNamd, ImprovementWithinPaperBand) {
  apps::namdmodel::NamdConfig cfg;
  cfg.system = apps::namdmodel::dhfr();
  cfg.warmup_steps = 1;
  cfg.steps = 2;
  auto run = [&](LayerKind layer) {
    MachineOptions o;
    o.pes = 240;
    o.layer = layer;
    return apps::namdmodel::run_namd_model(o, cfg).ms_per_step;
  };
  double mpi = run(LayerKind::kMpi);
  double ugni = run(LayerKind::kUgni);
  double improvement = 100.0 * (mpi - ugni) / mpi;
  EXPECT_GT(improvement, 3.0);
  EXPECT_LT(improvement, 40.0);  // paper: ~10-18%
}

}  // namespace
}  // namespace ugnirt
