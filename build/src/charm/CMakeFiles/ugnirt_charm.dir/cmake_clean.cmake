file(REMOVE_RECURSE
  "CMakeFiles/ugnirt_charm.dir/array.cpp.o"
  "CMakeFiles/ugnirt_charm.dir/array.cpp.o.d"
  "CMakeFiles/ugnirt_charm.dir/charm.cpp.o"
  "CMakeFiles/ugnirt_charm.dir/charm.cpp.o.d"
  "CMakeFiles/ugnirt_charm.dir/collectives.cpp.o"
  "CMakeFiles/ugnirt_charm.dir/collectives.cpp.o.d"
  "CMakeFiles/ugnirt_charm.dir/lb.cpp.o"
  "CMakeFiles/ugnirt_charm.dir/lb.cpp.o.d"
  "libugnirt_charm.a"
  "libugnirt_charm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ugnirt_charm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
