// The shipped machine-model config file must parse and agree with the
// built-in defaults (it documents them; drift would mislead experiments).
#include <gtest/gtest.h>

#include <fstream>

#include "gemini/machine_config.hpp"
#include "util/config.hpp"

namespace ugnirt {
namespace {

std::string find_hopper_cfg() {
  for (const char* candidate :
       {"configs/hopper.cfg", "../configs/hopper.cfg",
        "../../configs/hopper.cfg", "../../../configs/hopper.cfg"}) {
    std::ifstream f(candidate);
    if (f.good()) return candidate;
  }
  return {};
}

TEST(ConfigFile, HopperCfgParsesAndMatchesDefaults) {
  std::string path = find_hopper_cfg();
  if (path.empty()) GTEST_SKIP() << "configs/hopper.cfg not found from cwd";

  Config cfg;
  ASSERT_TRUE(cfg.parse_file(path)) << cfg.last_error();
  EXPECT_GT(cfg.size(), 30u);

  gemini::MachineConfig from_file = gemini::MachineConfig::from(cfg);
  gemini::MachineConfig defaults;

  // Spot-check a representative field from each section.
  EXPECT_EQ(from_file.cores_per_node, defaults.cores_per_node);
  EXPECT_EQ(from_file.hop_ns, defaults.hop_ns);
  EXPECT_DOUBLE_EQ(from_file.link_bw, defaults.link_bw);
  EXPECT_EQ(from_file.smsg_max_bytes, defaults.smsg_max_bytes);
  EXPECT_DOUBLE_EQ(from_file.fma_bw, defaults.fma_bw);
  EXPECT_DOUBLE_EQ(from_file.bte_bw, defaults.bte_bw);
  EXPECT_EQ(from_file.mem_reg_per_page_ns, defaults.mem_reg_per_page_ns);
  EXPECT_EQ(from_file.mempool_init_bytes, defaults.mempool_init_bytes);
  EXPECT_EQ(from_file.rdma_threshold, defaults.rdma_threshold);
  EXPECT_EQ(from_file.mpi_eager_threshold, defaults.mpi_eager_threshold);
  EXPECT_EQ(from_file.mpi_rdma_threshold, defaults.mpi_rdma_threshold);
  EXPECT_EQ(from_file.mpi_iprobe_conn_free, defaults.mpi_iprobe_conn_free);
  EXPECT_EQ(from_file.pxshm_notify_ns, defaults.pxshm_notify_ns);

  // Full-field agreement via the canonical dump.
  Config defaults_cfg, file_cfg;
  defaults.export_to(defaults_cfg);
  from_file.export_to(file_cfg);
  EXPECT_EQ(defaults_cfg.dump(), file_cfg.dump());
}

TEST(ConfigFile, ParseFileReportsMissingFile) {
  Config cfg;
  EXPECT_FALSE(cfg.parse_file("/nonexistent/path.cfg"));
  EXPECT_FALSE(cfg.last_error().empty());
}

}  // namespace
}  // namespace ugnirt
