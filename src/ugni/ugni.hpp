// Emulation of Cray's user-level Generic Network Interface (uGNI).
//
// The API surface mirrors the subset of "Using the GNI and DMAPP APIs"
// (Cray S-2446) that the paper's machine layer depends on (§II-B):
//
//   GNI_CqCreate / GNI_CqGetEvent            completion queues
//   GNI_MemRegister / GNI_MemDeregister      registration with real handles
//   GNI_EpCreate / GNI_EpBind                endpoints
//   GNI_SmsgInit / GNI_SmsgSendWTag /        mailbox-based short messages
//     GNI_SmsgGetNextWTag / GNI_SmsgRelease
//   GNI_PostFma / GNI_PostRdma               one-sided PUT/GET/AMO
//   GNI_GetCompleted                         retrieve a finished descriptor
//
// Semantics preserved from the real device:
//   * memory must be registered before it can be the target of FMA/BTE
//     transactions (posts against unregistered or stale handles fail),
//   * SMSG channels have per-peer mailboxes with finite credits: sends
//     return GNI_RC_NOT_DONE when the peer has not released older messages,
//   * completion events carry only limited data (msg id / post id), so a
//     runtime must keep its own descriptor table — exactly the constraint
//     that forces the paper's ACK_TAG control message design,
//   * CPU time: every call charges its modeled cost to the calling PE's
//     sim::Context, and FMA transactions occupy the CPU for the payload
//     duration while BTE posts return immediately (paper §II-A).
//
// Calls must run inside a simulated PE (sim::current() != nullptr).
#pragma once

#include <cstdint>
#include <cstring>
#include <deque>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "gemini/network.hpp"
#include "sim/context.hpp"

namespace ugnirt::ugni {

// ---------------------------------------------------------------------------
// Return codes (subset of gni_pub.h).
// ---------------------------------------------------------------------------
enum gni_return_t : int {
  GNI_RC_SUCCESS = 0,
  GNI_RC_NOT_DONE = 1,
  GNI_RC_INVALID_PARAM = 2,
  GNI_RC_ERROR_RESOURCE = 3,
  GNI_RC_ILLEGAL_OP = 4,
  GNI_RC_PERMISSION_ERROR = 5,
  GNI_RC_INVALID_STATE = 6,
  GNI_RC_TRANSACTION_ERROR = 7,
  GNI_RC_SIZE_ERROR = 8,
  GNI_RC_ALIGNMENT_ERROR = 9,
};

const char* gni_err_str(gni_return_t rc);

// Error contract.  Every emulated call documents the exact set of codes it
// can return (see each declaration below).  Three of them are *transient*
// and expected under resource pressure or injected faults — callers must
// handle them with retry/backoff rather than asserting:
//
//   GNI_RC_NOT_DONE           nothing to do yet (empty CQ / mailbox) or the
//                             SMSG channel is out of credits — retry later;
//   GNI_RC_ERROR_RESOURCE     NIC resource exhausted (MDD/TLB entries on
//                             MemRegister, SSID pool on SmsgSend) or a CQ
//                             overran — recover (GNI_CqErrorRecover) or
//                             back off and retry;
//   GNI_RC_TRANSACTION_ERROR  the adapter gave up on a posted FMA/BTE
//                             transaction (link-level retry exhaustion) —
//                             re-post the descriptor.
//
// Everything else (INVALID_PARAM, SIZE_ERROR, PERMISSION_ERROR, ILLEGAL_OP,
// INVALID_STATE, ALIGNMENT_ERROR) indicates a caller bug and is fatal.

namespace detail {
[[noreturn]] void check_fail(gni_return_t rc, const char* what);
}  // namespace detail

/// Contract-enforcement helper: returns `rc` when it is GNI_RC_SUCCESS or
/// one of the explicitly `allowed` transient codes, aborts with a
/// diagnostic otherwise.  Replaces open-coded `assert(rc == ...)` at call
/// sites so the allowed set is visible (and auditable) at each call:
///
///   rc = ugni::check(GNI_SmsgSendWTag(...), "smsg send",
///                    GNI_RC_NOT_DONE, GNI_RC_ERROR_RESOURCE);
template <typename... Allowed>
inline gni_return_t check(gni_return_t rc, const char* what,
                          Allowed... allowed) {
  const bool ok = rc == GNI_RC_SUCCESS || ((rc == allowed) || ...);
  if (!ok) detail::check_fail(rc, what);
  return rc;
}

// ---------------------------------------------------------------------------
// Handles.
// ---------------------------------------------------------------------------
class Nic;
class Cq;
class Ep;
class Domain;
class Msgq;  // shared message queue (msgq.hpp)

using gni_nic_handle_t = Nic*;
using gni_cq_handle_t = Cq*;
using gni_ep_handle_t = Ep*;

/// Opaque 128-bit memory handle, as in gni_pub.h.  Encodes the owning NIC
/// instance, a region id, and a generation counter so stale handles (used
/// after deregistration) are detected.
struct gni_mem_handle_t {
  std::uint64_t qword1 = 0;
  std::uint64_t qword2 = 0;

  bool operator==(const gni_mem_handle_t&) const = default;
};

// ---------------------------------------------------------------------------
// Post descriptors (FMA/BTE transactions).
// ---------------------------------------------------------------------------
enum gni_post_type_t : std::uint8_t {
  GNI_POST_FMA_PUT,
  GNI_POST_FMA_GET,
  GNI_POST_RDMA_PUT,
  GNI_POST_RDMA_GET,
  GNI_POST_AMO,
};

enum gni_amo_cmd_t : std::uint8_t {
  GNI_FMA_ATOMIC_FADD,   // fetch-and-add, returns old value
  GNI_FMA_ATOMIC_CSWAP,  // compare-and-swap, returns old value
  GNI_FMA_ATOMIC_AND,
  GNI_FMA_ATOMIC_OR,
};

// cq_mode flags
constexpr std::uint16_t GNI_CQMODE_LOCAL_EVENT = 1u << 0;
constexpr std::uint16_t GNI_CQMODE_REMOTE_EVENT = 1u << 1;

struct gni_post_descriptor_t {
  gni_post_type_t type = GNI_POST_FMA_PUT;
  std::uint16_t cq_mode = GNI_CQMODE_LOCAL_EVENT;
  std::uint64_t local_addr = 0;
  gni_mem_handle_t local_mem_hndl{};
  std::uint64_t remote_addr = 0;
  gni_mem_handle_t remote_mem_hndl{};
  std::uint64_t length = 0;
  std::uint64_t post_id = 0;  // echoed back in the local CQ event
  // AMO operands; for fetching AMOs the old value is stored to local_addr.
  std::uint64_t first_operand = 0;
  std::uint64_t second_operand = 0;
  gni_amo_cmd_t amo_cmd = GNI_FMA_ATOMIC_FADD;
};

// ---------------------------------------------------------------------------
// Completion-queue entries.
// ---------------------------------------------------------------------------
enum class CqEventType : std::uint8_t {
  kSmsg,        // incoming short message on some channel of this NIC
  kPostLocal,   // a local FMA/BTE transaction completed
  kPostRemote,  // remote event delivered by a transaction targeting us
};

struct gni_cq_entry_t {
  CqEventType type = CqEventType::kSmsg;
  std::uint64_t data = 0;      // post_id (local), remote data (remote events)
  std::int32_t source_inst = -1;  // sending NIC instance for SMSG events
};

// ---------------------------------------------------------------------------
// SMSG attributes (simplified gni_smsg_attr_t).
// ---------------------------------------------------------------------------
struct gni_smsg_attr_t {
  std::uint32_t msg_maxsize = 1024;   // payload cap per message
  std::uint32_t mbox_maxcredit = 8;   // in-flight messages before NOT_DONE
};

// ---------------------------------------------------------------------------
// API functions — signatures shaped after gni_pub.h.
// ---------------------------------------------------------------------------

/// GNI_CdmCreate+GNI_CdmAttach equivalent: create a NIC instance bound to a
/// torus node within the domain.  `inst_id` must be unique in the domain.
/// Returns: SUCCESS | INVALID_PARAM (null domain/out, bad node, duplicate
/// inst_id).
gni_return_t GNI_CdmAttach(Domain* domain, std::int32_t inst_id, int node,
                           gni_nic_handle_t* nic_out);

/// Returns: SUCCESS | INVALID_PARAM (null nic/out, zero entry_count).
gni_return_t GNI_CqCreate(gni_nic_handle_t nic, std::uint32_t entry_count,
                          gni_cq_handle_t* cq_out);
/// Returns: SUCCESS | INVALID_PARAM (null cq).
gni_return_t GNI_CqDestroy(gni_cq_handle_t cq);

/// Poll a CQ.  Charges cq_poll (plus cq_event when one is present).
/// Returns: SUCCESS | INVALID_PARAM (null args) | ERROR_RESOURCE (the CQ
/// overran: at least one event was dropped; run GNI_CqErrorRecover) |
/// NOT_DONE (no event has arrived yet).
gni_return_t GNI_CqGetEvent(gni_cq_handle_t cq, gni_cq_entry_t* event_out);

/// Batched poll: harvest up to `max_events` visible events in one call,
/// charge-exact with the equivalent GNI_CqGetEvent loop (one cq_poll per
/// attempt, plus cq_event per harvested event — the terminating empty
/// poll is charged too, exactly as the open-coded loop would).  Mirrors
/// GNI_CqVectorMonitor-era batching; callers that charge per-event
/// handling time BETWEEN polls (the machine layers) must keep the
/// open-coded loop — this entry is for drivers that drain first and
/// handle after.  `count_out` receives the number of events stored.
/// Returns: SUCCESS (harvested `max_events`) | ERROR_RESOURCE (overrun
/// hit; events before it are in `event_out`) | NOT_DONE (queue went
/// empty first) | INVALID_PARAM (null args, zero max_events).
gni_return_t GNI_CqGetEvents(gni_cq_handle_t cq, gni_cq_entry_t* event_out,
                             std::uint32_t max_events,
                             std::uint32_t* count_out);

/// Recover a CQ from overrun state, mirroring the real
/// GNI_CqErrorRecovery: clears the overrun latch and re-synthesizes the
/// events that were dropped from NIC-side state that survives the drop —
/// SMSG arrival events from undelivered mailbox messages and local-post
/// completions from the NIC's completed-descriptor table.  kPostRemote
/// events are not recoverable (the real hardware loses them too; runtimes
/// must not depend on remote events for correctness).  `recovered_out`
/// (optional) receives the number of re-synthesized events.
/// Returns: SUCCESS (including when the CQ was not overrun) |
/// INVALID_PARAM (null cq).
gni_return_t GNI_CqErrorRecover(gni_cq_handle_t cq,
                                std::uint32_t* recovered_out);

/// Blocking poll: if an event is in flight toward this CQ, spin (advance
/// the caller's virtual clock) until it arrives and return it; if the CQ
/// has no event pending at all, return GNI_RC_NOT_DONE (the emulation
/// cannot block on traffic that was never issued).  Mirrors the real
/// GNI_CqWaitEvent; used by the ping-pong style drivers behind the
/// paper's "pure uGNI" benchmarks.
/// Returns: SUCCESS | INVALID_PARAM | ERROR_RESOURCE (overrun; run
/// GNI_CqErrorRecover) | NOT_DONE (no event pending or in flight).
gni_return_t GNI_CqWaitEvent(gni_cq_handle_t cq, gni_cq_entry_t* event_out);

/// Returns: SUCCESS | INVALID_PARAM (null nic/out, zero length) |
/// ERROR_RESOURCE (NIC MDD/TLB entries exhausted — transient; back off and
/// retry, or fall back to an already-registered bounce buffer).
gni_return_t GNI_MemRegister(gni_nic_handle_t nic, std::uint64_t address,
                             std::uint64_t length, gni_cq_handle_t dst_cq,
                             std::uint32_t flags, gni_mem_handle_t* hndl_out);
/// Returns: SUCCESS | INVALID_PARAM (null/stale/foreign handle).
gni_return_t GNI_MemDeregister(gni_nic_handle_t nic, gni_mem_handle_t* hndl);

/// Returns: SUCCESS | INVALID_PARAM (null nic/out).
gni_return_t GNI_EpCreate(gni_nic_handle_t nic, gni_cq_handle_t tx_cq,
                          gni_ep_handle_t* ep_out);
/// Returns: SUCCESS | INVALID_PARAM (null ep, negative inst) |
/// INVALID_STATE (already bound).
gni_return_t GNI_EpBind(gni_ep_handle_t ep, std::int32_t remote_inst_id);
/// Returns: SUCCESS | INVALID_PARAM (null ep).
gni_return_t GNI_EpDestroy(gni_ep_handle_t ep);

/// Set up the SMSG channel on this endpoint (both sides must agree; the
/// emulation validates that attrs match when traffic first flows).
/// Returns: SUCCESS | INVALID_PARAM (null/unbound ep, zero-credit attrs) |
/// INVALID_STATE (already initialized).
gni_return_t GNI_SmsgInit(gni_ep_handle_t ep, const gni_smsg_attr_t& local,
                          const gni_smsg_attr_t& remote);

/// Send header+payload as one short message with a tag.
/// Returns: SUCCESS | INVALID_PARAM (null/unbound ep, missing peer) |
/// INVALID_STATE (channel not SmsgInit'ed) | SIZE_ERROR (hdr+data exceeds
/// msg_maxsize) | NOT_DONE (out of mailbox credits — transient; retry
/// after the peer releases, or demote to rendezvous) | ERROR_RESOURCE
/// (SSID pool exhausted — transient; back off and retry).
gni_return_t GNI_SmsgSendWTag(gni_ep_handle_t ep, const void* header,
                              std::uint32_t header_length, const void* data,
                              std::uint32_t data_length, std::uint32_t msg_id,
                              std::uint8_t tag);

/// Peek the next undelivered message on this endpoint's receive mailbox.
/// Returns a pointer into mailbox memory (valid until GNI_SmsgRelease).
/// `arrival_out` (optional) receives the message's virtual wire-arrival
/// time — the instant the Gemini model landed it in the mailbox, which can
/// be earlier than the CQ poll that discovered it (lifecycle spans use the
/// gap to separate link traversal from poll wait).
/// Returns: SUCCESS | INVALID_PARAM | INVALID_STATE (channel not
/// initialized) | NOT_DONE (no message has arrived yet).
gni_return_t GNI_SmsgGetNextWTag(gni_ep_handle_t ep, void** data_out,
                                 std::uint8_t* tag_out,
                                 SimTime* arrival_out = nullptr);

/// Release the mailbox slot of the last message returned by GetNextWTag,
/// returning a credit to the sender.
/// Returns: SUCCESS | INVALID_PARAM | INVALID_STATE (nothing delivered).
gni_return_t GNI_SmsgRelease(gni_ep_handle_t ep);

/// Post a CPU-driven (FMA) / DMA-offloaded (BTE) one-sided transaction.
/// Returns: SUCCESS | INVALID_PARAM (null/unbound ep, null desc, missing
/// peer) | PERMISSION_ERROR (local or remote memory handle invalid, stale,
/// or not covering [addr, addr+length)) | TRANSACTION_ERROR (the adapter
/// gave up on the transaction — transient; re-post the descriptor).
gni_return_t GNI_PostFma(gni_ep_handle_t ep, gni_post_descriptor_t* desc);
/// Same contract as GNI_PostFma.
gni_return_t GNI_PostRdma(gni_ep_handle_t ep, gni_post_descriptor_t* desc);

/// Retrieve the descriptor whose completion `event` (kPostLocal) reported.
/// Returns: SUCCESS | INVALID_PARAM (null args, wrong event type, unknown
/// post id).
gni_return_t GNI_GetCompleted(gni_cq_handle_t cq, const gni_cq_entry_t& event,
                              gni_post_descriptor_t** desc_out);

namespace detail {
/// Shared implementation of GNI_PostFma / GNI_PostRdma.
gni_return_t post_transaction(Ep* ep, gni_post_descriptor_t* desc,
                              bool is_rdma);
}  // namespace detail

// The API functions need access to emulation internals; granting friendship
// to the whole set in each class keeps the public surface identical to the
// real opaque-handle API.
#define UGNIRT_UGNI_API_FRIENDS                                              \
  friend gni_return_t GNI_CdmAttach(Domain*, std::int32_t, int,              \
                                    gni_nic_handle_t*);                      \
  friend gni_return_t GNI_CqCreate(gni_nic_handle_t, std::uint32_t,          \
                                   gni_cq_handle_t*);                        \
  friend gni_return_t GNI_CqGetEvent(gni_cq_handle_t, gni_cq_entry_t*);      \
  friend gni_return_t GNI_CqGetEvents(gni_cq_handle_t, gni_cq_entry_t*,      \
                                      std::uint32_t, std::uint32_t*);        \
  friend gni_return_t GNI_CqWaitEvent(gni_cq_handle_t, gni_cq_entry_t*);     \
  friend gni_return_t GNI_CqErrorRecover(gni_cq_handle_t, std::uint32_t*);   \
  friend gni_return_t GNI_MemRegister(gni_nic_handle_t, std::uint64_t,       \
                                      std::uint64_t, gni_cq_handle_t,        \
                                      std::uint32_t, gni_mem_handle_t*);     \
  friend gni_return_t GNI_MemDeregister(gni_nic_handle_t,                    \
                                        gni_mem_handle_t*);                  \
  friend gni_return_t GNI_EpCreate(gni_nic_handle_t, gni_cq_handle_t,        \
                                   gni_ep_handle_t*);                        \
  friend gni_return_t GNI_EpBind(gni_ep_handle_t, std::int32_t);             \
  friend gni_return_t GNI_EpDestroy(gni_ep_handle_t);                        \
  friend gni_return_t GNI_SmsgInit(gni_ep_handle_t, const gni_smsg_attr_t&,  \
                                   const gni_smsg_attr_t&);                  \
  friend gni_return_t GNI_SmsgSendWTag(gni_ep_handle_t, const void*,         \
                                       std::uint32_t, const void*,           \
                                       std::uint32_t, std::uint32_t,         \
                                       std::uint8_t);                        \
  friend gni_return_t GNI_SmsgGetNextWTag(gni_ep_handle_t, void**,           \
                                          std::uint8_t*, SimTime*);          \
  friend gni_return_t GNI_SmsgRelease(gni_ep_handle_t);                      \
  friend gni_return_t GNI_GetCompleted(gni_cq_handle_t,                      \
                                       const gni_cq_entry_t&,                \
                                       gni_post_descriptor_t**);             \
  friend gni_return_t detail::post_transaction(Ep*, gni_post_descriptor_t*,  \
                                               bool);

// ---------------------------------------------------------------------------
// Emulation objects.
// ---------------------------------------------------------------------------

/// A completion queue: a bounded FIFO of events plus an optional notify hook
/// so the simulated runtime can wake an idle PE when an event lands.
class Cq {
 public:
  Cq(Nic* nic, std::uint32_t capacity) : nic_(nic), capacity_(capacity) {}

  bool empty() const { return entries_.empty(); }
  std::size_t depth() const { return entries_.size(); }
  bool overrun() const { return overrun_; }
  Nic* nic() const { return nic_; }

  /// High-water mark of queued events (CQ sizing / introspection).
  std::size_t max_depth() const { return max_depth_; }
  /// Events dropped because the queue was full at push time.
  std::uint64_t dropped_events() const { return dropped_events_; }

  /// Virtual arrival time of the earliest queued event, or kNever when the
  /// queue is empty (driver support; carries no CPU charge).
  SimTime next_arrival() const {
    return entries_.empty() ? kNever : entries_.front().at;
  }

  /// Invoked (at event-arrival virtual time) whenever an entry is pushed.
  void set_notify(std::function<void(SimTime)> fn) { notify_ = std::move(fn); }

 private:
  UGNIRT_UGNI_API_FRIENDS

  void push(SimTime at, gni_cq_entry_t entry);

  struct Timed {
    SimTime at;
    gni_cq_entry_t entry;
  };

  Nic* nic_;
  std::uint32_t capacity_;
  bool overrun_ = false;
  std::size_t max_depth_ = 0;
  std::uint64_t dropped_events_ = 0;
  std::deque<Timed> entries_;  // kept sorted by arrival time
  std::function<void(SimTime)> notify_;
};

/// One side of a peer-to-peer SMSG channel.
struct SmsgChannelState {
  bool initialized = false;
  gni_smsg_attr_t local{};
  gni_smsg_attr_t remote{};
  std::uint32_t credits = 0;  // remaining send credits
  SimTime last_arrival = 0;   // FIFO: later sends never arrive earlier
  // Receive mailbox: messages that arrived and await GetNext/Release.
  struct Msg {
    std::vector<std::uint8_t> bytes;
    std::uint8_t tag = 0;
    SimTime at = 0;          // virtual arrival time
    bool delivered = false;  // returned by GetNextWTag, not yet Released
  };
  std::deque<Msg> rx;
};

/// Endpoint: the addressing object for one remote NIC instance.
class Ep {
 public:
  Ep(Nic* nic, Cq* tx_cq) : nic_(nic), tx_cq_(tx_cq) {}

  Nic* nic() const { return nic_; }
  Cq* tx_cq() const { return tx_cq_; }
  std::int32_t remote_inst() const { return remote_inst_; }
  bool bound() const { return remote_inst_ >= 0; }

 private:
  UGNIRT_UGNI_API_FRIENDS

  Nic* nic_;
  Cq* tx_cq_;
  std::int32_t remote_inst_ = -1;
  SmsgChannelState smsg_;
};

/// A NIC instance: one per simulated process (PE), attached to a torus node.
class Nic {
 public:
  Nic(Domain* domain, std::int32_t inst_id, int node)
      : domain_(domain), inst_id_(inst_id), node_(node) {}

  std::int32_t inst_id() const { return inst_id_; }
  int node() const { return node_; }
  Domain* domain() const { return domain_; }

  /// The CQ receiving SMSG arrival events for all channels of this NIC
  /// (set by the first GNI_SmsgInit; mirrors the shared smsg rx CQ in the
  /// real machine layer).
  Cq* smsg_rx_cq() const { return smsg_rx_cq_; }
  void set_smsg_rx_cq(Cq* cq) { smsg_rx_cq_ = cq; }

  /// Total mailbox memory this NIC has committed to SMSG channels — the
  /// linear-in-peers cost the paper calls out for SMSG vs MSGQ.  Under
  /// lazy connection setup this reflects only *established* channels:
  /// it grows at get_or_connect / GNI_SmsgInit time and shrinks when an
  /// initialized endpoint is destroyed, never at NIC init.
  std::uint64_t mailbox_bytes() const { return mailbox_bytes_; }

  std::uint64_t registered_bytes() const { return registered_bytes_; }
  std::size_t active_regions() const { return n_active_regions_; }

  /// Endpoint on this NIC bound to `remote_inst`, or nullptr.
  Ep* ep_for_peer(std::int32_t remote_inst) const;

  /// Defaults used by get_or_connect for lazily created channels: the TX
  /// CQ every new endpoint binds to and the SMSG mailbox attributes both
  /// sides agree on.  A machine layer sets these once per NIC at init
  /// time — O(1) per PE — instead of materializing N endpoints eagerly.
  void set_default_tx_cq(Cq* cq) { default_tx_cq_ = cq; }
  Cq* default_tx_cq() const { return default_tx_cq_; }
  void set_smsg_attr(const gni_smsg_attr_t& attr) { smsg_attr_ = attr; }
  const gni_smsg_attr_t& smsg_attr() const { return smsg_attr_; }

  /// First-touch connection setup — the ONLY way runtime layers obtain a
  /// send endpoint.  Returns the endpoint bound to `peer`, creating the
  /// channel on first use: forward and reverse endpoints, SMSG mailboxes
  /// on both NICs (skipped for NICs in MSGQ mode, whose whole point is
  /// pinning no per-pair memory), with both mailbox registrations
  /// charged to the *initiator's* virtual time — the out-of-band
  /// datagram handshake of the real dynamic setup.  Subsequent calls are
  /// an O(1) hash lookup with no charge.  `established_out` (optional)
  /// reports whether this call created the channel, so callers can count
  /// setup work.  Returns nullptr when `peer` is unknown or this NIC has
  /// no default TX CQ configured.  Requires a current sim context.
  Ep* get_or_connect(std::int32_t peer, bool* established_out = nullptr);

  bool connected(std::int32_t peer) const {
    return ep_for_peer(peer) != nullptr;
  }
  /// Channels this NIC has endpoints for (== active pairs, not job size).
  std::size_t connected_peers() const { return peer_eps_.size(); }

  /// The per-NIC shared message queue (nullptr until GNI_MsgqInit).
  Msgq* msgq() const { return msgq_; }
  void set_msgq(Msgq* q) { msgq_ = q; }

  /// Invoked (at credit-return virtual time) when a peer releases one of
  /// our in-flight SMSG messages, so a runtime with back-pressured sends
  /// can wake up and retry.
  void set_credit_notify(std::function<void(SimTime)> fn) {
    credit_notify_ = std::move(fn);
  }

 private:
  UGNIRT_UGNI_API_FRIENDS

  struct Region {
    std::uint64_t addr = 0;
    std::uint64_t length = 0;
    std::uint32_t generation = 0;
    bool valid = false;
    Cq* dst_cq = nullptr;  // receives remote events for transactions here
  };

  bool handle_valid(const gni_mem_handle_t& h, std::uint64_t addr,
                    std::uint64_t len) const;
  Region* region_of(const gni_mem_handle_t& h);
  const Region* region_of(const gni_mem_handle_t& h) const;

  Domain* domain_;
  std::int32_t inst_id_;
  int node_;
  Cq* smsg_rx_cq_ = nullptr;
  Cq* default_tx_cq_ = nullptr;  // TX CQ for get_or_connect endpoints
  gni_smsg_attr_t smsg_attr_{};  // mailbox attrs for lazy channels
  Msgq* msgq_ = nullptr;  // owned; released by Domain's destructor
  std::vector<Region> regions_;
  std::size_t n_active_regions_ = 0;
  std::uint64_t registered_bytes_ = 0;
  std::uint64_t mailbox_bytes_ = 0;
  std::unordered_map<std::int32_t, Ep*> peer_eps_;  // bound endpoints
  std::function<void(SimTime)> credit_notify_;
  // Descriptors completed but not yet claimed via GNI_GetCompleted.
  std::vector<std::pair<std::uint64_t, gni_post_descriptor_t*>> completed_;
  std::uint64_t next_internal_post_id_ = 1;
};

/// The communication domain: the collection of NIC instances sharing one
/// simulated Gemini network (the job, in Cray terms).
class Domain {
 public:
  explicit Domain(gemini::Network& network) : network_(&network) {}
  Domain(const Domain&) = delete;
  Domain& operator=(const Domain&) = delete;
  ~Domain();

  gemini::Network& network() const { return *network_; }
  const gemini::MachineConfig& config() const { return network_->config(); }
  sim::Scheduler& scheduler() const { return network_->scheduler(); }

  /// O(1) instance lookup (hash index) — on the per-send hot path, so it
  /// must not scan the NIC table (153k NICs at full-machine scale).
  Nic* nic_by_inst(std::int32_t inst_id) const;
  std::size_t nic_count() const { return nics_.size(); }

  /// Aggregate SMSG mailbox memory across the job (scalability metric).
  /// Maintained incrementally at SmsgInit/EpDestroy time, so it is O(1)
  /// to read and counts only currently established channels.
  std::uint64_t total_mailbox_bytes() const { return total_mailbox_bytes_; }

  /// Established SMSG channel *sides* job-wide (each connected pair
  /// contributes two).  Grows with traffic patterns, not with N².
  std::uint64_t smsg_channels() const { return smsg_channels_; }

  /// Publish domain-wide gauges: ugni.mailbox_bytes, ugni.registered_bytes,
  /// ugni.active_regions, cq.max_depth, cq.dropped_events, plus the
  /// network's own metrics (see Network::collect_metrics).
  void collect_metrics(trace::MetricsRegistry& reg) const;

 private:
  UGNIRT_UGNI_API_FRIENDS

  friend class Nic;  // get_or_connect maintains the channel accounting

  gemini::Network* network_;
  std::vector<std::unique_ptr<Nic>> nics_;
  std::unordered_map<std::int32_t, Nic*> nic_index_;  // inst_id -> NIC
  std::vector<std::unique_ptr<Ep>> eps_;
  std::vector<std::unique_ptr<Cq>> cqs_;
  std::uint64_t total_mailbox_bytes_ = 0;
  std::uint64_t smsg_channels_ = 0;
};

}  // namespace ugnirt::ugni
