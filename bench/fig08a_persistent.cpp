// Figure 8(a): single-message latency with and without persistent
// messages, plus pure uGNI, 1 KiB .. 512 KiB (paper §IV-A).
#include "apps/microbench/microbench.hpp"
#include "bench_util.hpp"

using namespace ugnirt;
using namespace ugnirt::apps;

int main() {
  gemini::MachineConfig mc;
  benchtool::Table table("fig08a_persistent", "msg_bytes");
  table.add_column("wo_persistent_us");
  table.add_column("w_persistent_us");
  table.add_column("pure_uGNI_us");

  // The paper evaluated persistent messages against the initial (no
  // memory pool) runtime, where plain sends pay Equation 1's
  // 2*(Tmalloc+Tregister); persistent channels bypass those terms.
  converse::MachineOptions o;
  o.layer = converse::LayerKind::kUgni;
  o.pes_per_node = 1;
  o.use_mempool = false;

  for (std::uint64_t size : benchtool::size_sweep(1024, 512 * 1024)) {
    bench::PingPongOptions plain;
    plain.payload = static_cast<std::uint32_t>(size);
    bench::PingPongOptions persist = plain;
    persist.persistent = true;
    table.add_row(
        benchtool::size_label(size),
        {to_us(bench::charm_pingpong(o, plain)),
         to_us(bench::charm_pingpong(o, persist)),
         to_us(bench::pure_ugni_pingpong(mc, static_cast<std::uint32_t>(size)))});
  }
  table.print();
  std::printf("Paper shape: persistent messages eliminate the control\n"
              "message and land near pure uGNI (Tcost = Trdma + Tsmsg).\n");
  return 0;
}
