// Sequential deterministic discrete-event engine.
//
// Everything in the reproduction runs on virtual time: simulated PEs,
// the Gemini NIC model, and the runtime protocol state machines schedule
// callbacks here.  Events with equal timestamps fire in scheduling order
// (a monotonically increasing sequence number breaks ties), which makes
// every run bit-reproducible.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <string>
#include <vector>

#include "util/units.hpp"

namespace ugnirt::sim {

class Engine;

/// Handle to a scheduled event; allows cancellation (e.g. timeouts that are
/// disarmed when the awaited completion arrives first).
class EventHandle {
 public:
  EventHandle() = default;

  /// Prevent the callback from running.  Safe to call multiple times and
  /// after the event fired (no-op).
  void cancel();

  bool valid() const { return !token_.expired(); }

 private:
  friend class Engine;
  explicit EventHandle(std::weak_ptr<bool> token) : token_(std::move(token)) {}
  std::weak_ptr<bool> token_;
};

class Engine {
 public:
  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  SimTime now() const { return now_; }

  /// Schedule `fn` at absolute virtual time `when` (clamped to now()).
  EventHandle schedule_at(SimTime when, std::function<void()> fn);

  /// Schedule `fn` after `delay` nanoseconds.
  EventHandle schedule_after(SimTime delay, std::function<void()> fn) {
    return schedule_at(now_ + delay, std::move(fn));
  }

  /// Run until the event queue drains or stop() is called.
  /// Returns the number of events executed.
  std::uint64_t run();

  /// Run until virtual time exceeds `until` (events at exactly `until` run).
  std::uint64_t run_until(SimTime until);

  /// Request run()/run_until() to return after the current event.
  void stop() { stopped_ = true; }

  bool empty() const { return queue_.empty(); }
  std::size_t pending() const { return queue_.size(); }
  std::uint64_t executed() const { return executed_; }

 private:
  struct Event {
    SimTime time;
    std::uint64_t seq;
    std::function<void()> fn;
    std::shared_ptr<bool> alive;
  };

  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  bool pop_and_run();

  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  bool stopped_ = false;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

}  // namespace ugnirt::sim
