# Empty dependencies file for test_msgq.
# This may be replaced when dependencies are built.
