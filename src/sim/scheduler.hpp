// The narrow scheduling surface protocol state machines are allowed to
// hold.
//
// Everything below the Converse scheduler — the Gemini network model, the
// uGNI CQ/SMSG emulation, the MPI library model, retry backoff timers —
// only ever needs four things: the current virtual time, absolute and
// relative scheduling, and cancellation.  They must never see the whole
// sim::Engine, whose run()/run_until()/stop() surface belongs to the code
// that *drives* the simulation (converse::Machine, benches, tests).
// Handing an FSM a Scheduler instead of an Engine makes that split a
// compile-time guarantee.
//
// sim::Engine implements this interface twice over: the engine itself is
// a Scheduler (events land on the shard currently executing, which is
// what implicit-context protocol code wants), and Engine::scheduler(i)
// exposes one Scheduler per shard whose now() is that shard's local
// clock (what per-PE code pinned to a shard wants).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>

#include "util/units.hpp"

namespace ugnirt::sim {

class Engine;

/// Handle to a scheduled event; allows cancellation (e.g. timeouts that are
/// disarmed when the awaited completion arrives first).
class EventHandle {
 public:
  EventHandle() = default;

  /// Prevent the callback from running.  Safe to call multiple times and
  /// after the event fired (no-op).  Cancellation never touches the
  /// queue: it flips the shared tombstone (and drops the owning shard's
  /// live-event count) and the engine skips the dead event when it
  /// surfaces.  Must be called from the shard that owns the event (in a
  /// threaded window drive, the worker draining it) — the tombstone is
  /// not synchronized against a concurrent pop.
  void cancel();

  bool valid() const { return !token_.expired(); }

 private:
  friend class Engine;
  EventHandle(std::weak_ptr<bool> token,
              std::weak_ptr<std::atomic<std::int64_t>> live)
      : token_(std::move(token)), live_(std::move(live)) {}
  std::weak_ptr<bool> token_;
  // The owning shard's live-event counter, decremented on a successful
  // cancel so Engine::pending() reports live events only (a cancelled-
  // but-unpopped tombstone is not pending work).
  std::weak_ptr<std::atomic<std::int64_t>> live_;
};

/// What a protocol state machine holds.  now()/schedule_at()/
/// schedule_after()/cancel() — nothing else; no run/stop controls.
class Scheduler {
 public:
  virtual ~Scheduler() = default;

  /// Current virtual time of this scheduling domain (the whole engine, or
  /// one shard's local clock).
  virtual SimTime now() const = 0;

  /// Schedule `fn` at absolute virtual time `when` (clamped to now()).
  virtual EventHandle schedule_at(SimTime when, std::function<void()> fn) = 0;

  /// Schedule `fn` after `delay` nanoseconds.
  EventHandle schedule_after(SimTime delay, std::function<void()> fn) {
    return schedule_at(now() + delay, std::move(fn));
  }

  /// Disarm a previously scheduled event (sugar over EventHandle::cancel
  /// so FSM code reads uniformly against the interface).
  void cancel(EventHandle& handle) { handle.cancel(); }
};

}  // namespace ugnirt::sim
