#include "sim/engine.hpp"
#include "apps/microbench/microbench.hpp"

#include <cassert>
#include <cstring>
#include <map>
#include <memory>
#include <vector>

#include "charm/charm.hpp"
#include "lrts/runtime.hpp"
#include "mpilite/mpilite.hpp"
#include "ugni/ugni.hpp"

namespace ugnirt::apps::bench {

using converse::CmiAlloc;
using converse::CmiFree;
using converse::CmiMyPe;
using converse::CmiSetHandler;
using converse::CmiSyncSendAndFree;
using converse::kCmiHeaderBytes;
using converse::Machine;

// ---------------------------------------------------------------------------
// Raw mechanism latency (Fig 4)
// ---------------------------------------------------------------------------

SimTime raw_mechanism_latency(const gemini::MachineConfig& mc,
                              gemini::Mechanism mech, std::uint64_t bytes) {
  sim::Engine engine{sim::EngineOptions::from_env()};
  gemini::Network net(engine.scheduler(), topo::Torus3D::for_nodes(8), mc);
  gemini::TransferRequest req;
  req.mech = mech;
  req.initiator_node = 0;
  req.remote_node = 1;
  req.bytes = bytes;
  req.issue = 0;
  gemini::TransferTimes t = net.transfer(req);
  const bool is_get = mech == gemini::Mechanism::kFmaGet ||
                      mech == gemini::Mechanism::kBteGet;
  // GET: data lands at the initiator (local completion); PUT/SMSG: data
  // visible at the remote end.
  return is_get ? t.initiator_complete : t.data_arrival;
}

// ---------------------------------------------------------------------------
// Pure uGNI ping-pong
// ---------------------------------------------------------------------------

SimTime pure_ugni_pingpong(const gemini::MachineConfig& mc,
                           std::uint32_t bytes, int iters) {
  sim::Engine engine{sim::EngineOptions::from_env()};
  gemini::Network net(engine.scheduler(), topo::Torus3D::for_nodes(8), mc);
  ugni::Domain dom(net);

  sim::Context ctx[2] = {sim::Context(engine.scheduler(), 0), sim::Context(engine.scheduler(), 1)};
  ugni::gni_nic_handle_t nic[2];
  ugni::gni_cq_handle_t rx[2], tx[2];
  ugni::gni_ep_handle_t ep[2];
  std::vector<std::uint8_t> buf[2];
  ugni::gni_mem_handle_t hndl[2];

  for (int i = 0; i < 2; ++i) {
    sim::ScopedContext g(ctx[i]);
    ugni::GNI_CdmAttach(&dom, i, i, &nic[i]);
    ugni::GNI_CqCreate(nic[i], 4096, &rx[i]);
    ugni::GNI_CqCreate(nic[i], 4096, &tx[i]);
    nic[i]->set_smsg_rx_cq(rx[i]);
    buf[i].resize(std::max<std::uint32_t>(bytes, 8));
    ugni::GNI_MemRegister(nic[i],
                          reinterpret_cast<std::uint64_t>(buf[i].data()),
                          buf[i].size(), rx[i], 0, &hndl[i]);
  }
  for (int i = 0; i < 2; ++i) {
    sim::ScopedContext g(ctx[i]);
    ugni::GNI_EpCreate(nic[i], tx[i], &ep[i]);
    ugni::GNI_EpBind(ep[i], 1 - i);
    ugni::gni_smsg_attr_t attr;
    attr.msg_maxsize = mc.smsg_max_bytes + 64;
    ugni::GNI_SmsgInit(ep[i], attr, attr);
  }

  const bool small = bytes <= mc.smsg_max_bytes;
  auto send_leg = [&](int from) {
    sim::ScopedContext g(ctx[from]);
    if (small) {
      ugni::gni_return_t rc = ugni::GNI_SmsgSendWTag(
          ep[from], buf[from].data(), bytes, nullptr, 0, 0, 1);
      assert(rc == ugni::GNI_RC_SUCCESS);
      (void)rc;
    } else {
      ugni::gni_post_descriptor_t d;
      d.type = bytes >= mc.rdma_threshold ? ugni::GNI_POST_RDMA_PUT
                                          : ugni::GNI_POST_FMA_PUT;
      d.cq_mode =
          ugni::GNI_CQMODE_LOCAL_EVENT | ugni::GNI_CQMODE_REMOTE_EVENT;
      d.local_addr = reinterpret_cast<std::uint64_t>(buf[from].data());
      d.local_mem_hndl = hndl[from];
      d.remote_addr = reinterpret_cast<std::uint64_t>(buf[1 - from].data());
      d.remote_mem_hndl = hndl[1 - from];
      d.length = bytes;
      ugni::gni_return_t rc = d.type == ugni::GNI_POST_RDMA_PUT
                                  ? ugni::GNI_PostRdma(ep[from], &d)
                                  : ugni::GNI_PostFma(ep[from], &d);
      assert(rc == ugni::GNI_RC_SUCCESS);
      (void)rc;
      // Drain our local completion later; remote event signals delivery.
      ugni::gni_cq_entry_t ev;
      ugni::GNI_CqWaitEvent(tx[from], &ev);
    }
  };
  auto recv_leg = [&](int at) {
    sim::ScopedContext g(ctx[at]);
    ugni::gni_cq_entry_t ev;
    ugni::gni_return_t rc = ugni::GNI_CqWaitEvent(rx[at], &ev);
    assert(rc == ugni::GNI_RC_SUCCESS);
    (void)rc;
    if (small) {
      void* data = nullptr;
      std::uint8_t tag = 0;
      rc = ugni::GNI_SmsgGetNextWTag(ep[at], &data, &tag);
      assert(rc == ugni::GNI_RC_SUCCESS);
      ugni::GNI_SmsgRelease(ep[at]);
    }
  };

  auto round_trip = [&] {
    send_leg(0);
    // The receiver's clock follows the sender's observable world.
    ctx[1].wait_until(std::max<SimTime>(ctx[1].now(), ctx[0].now()));
    recv_leg(1);
    send_leg(1);
    ctx[0].wait_until(std::max<SimTime>(ctx[0].now(), ctx[1].now()));
    recv_leg(0);
    engine.run();  // recycle credit events
    ctx[0].wait_until(engine.now());
    ctx[1].wait_until(engine.now());
  };

  round_trip();  // warmup
  SimTime start = ctx[0].now();
  for (int i = 0; i < iters; ++i) round_trip();
  return (ctx[0].now() - start) / (2 * iters);
}

// ---------------------------------------------------------------------------
// Pure MPI ping-pong
// ---------------------------------------------------------------------------

SimTime pure_mpi_pingpong(const gemini::MachineConfig& mc,
                          std::uint32_t bytes, bool same_buffer,
                          bool intranode, int iters) {
  sim::Engine engine{sim::EngineOptions::from_env()};
  gemini::Network net(engine.scheduler(), topo::Torus3D::for_nodes(4), mc);
  mpilite::MpiComm comm(net, 2, [intranode](int rank) {
    return intranode ? 0 : rank;
  });
  sim::Context ctx[2] = {sim::Context(engine.scheduler(), 0), sim::Context(engine.scheduler(), 1)};
  for (int i = 0; i < 2; ++i) {
    sim::ScopedContext g(ctx[i]);
    comm.init_rank(i);
  }
  // Two buffer sets: with same_buffer, send==recv buffer on each rank.
  std::vector<std::uint8_t> snd[2], rcv[2];
  for (int i = 0; i < 2; ++i) {
    snd[i].resize(bytes);
    rcv[i].resize(bytes);
  }
  auto* s0 = snd[0].data();
  auto* r0 = same_buffer ? snd[0].data() : rcv[0].data();
  auto* s1 = snd[1].data();
  auto* r1 = same_buffer ? snd[1].data() : rcv[1].data();

  auto leg = [&](int from, std::uint8_t* sbuf, std::uint8_t* rbuf) {
    {
      sim::ScopedContext g(ctx[from]);
      comm.send(from, 1 - from, 0, sbuf, bytes);
    }
    int to = 1 - from;
    sim::ScopedContext g(ctx[to]);
    ctx[to].wait_until(std::max<SimTime>(ctx[to].now(), ctx[from].now()));
    mpilite::Status st;
    bool ok = comm.wait_probe(to, from, 0, &st);
    assert(ok);
    (void)ok;
    comm.recv(to, from, 0, rbuf, bytes, &st);
    if (!same_buffer) {
      // The distinct-buffer benchmark frees and reallocates its receive
      // buffer each iteration; the registration cache must drop it
      // (correctness rule [21]) and re-register next time.
      comm.udreg_invalidate(to, rbuf, bytes);
    }
  };

  auto round_trip = [&] {
    leg(0, s0, r1);
    leg(1, s1, r0);
    engine.run();
    ctx[0].wait_until(engine.now());
    ctx[1].wait_until(engine.now());
  };

  round_trip();
  round_trip();  // second warmup fills the uDREG cache for same_buffer
  SimTime start = ctx[0].now();
  for (int i = 0; i < iters; ++i) round_trip();
  return (ctx[0].now() - start) / (2 * iters);
}

// ---------------------------------------------------------------------------
// CHARM++ ping-pong
// ---------------------------------------------------------------------------

SimTime charm_pingpong(converse::MachineOptions options,
                       const PingPongOptions& pp) {
  options.pes = 2;
  if (options.pes_per_node == 0) options.pes_per_node = 1;
  auto m = lrts::make_machine(options.layer, options);
  const std::uint32_t total = pp.payload + kCmiHeaderBytes;
  const int total_legs = 2 /*warmup*/ + 2 * pp.iters;

  converse::PersistentHandle to1{}, to0{};
  // Persistent mode keeps one application-owned send buffer per PE — the
  // fixed communication pattern the paper's §IV-A targets.
  void* persist_buf[2] = {nullptr, nullptr};
  int legs = 0;
  SimTime measure_start = 0, measure_end = 0;
  int h = -1;

  auto send_next = [&](int dest, void* reusable) {
    void* msg = nullptr;
    if (pp.persistent) {
      msg = persist_buf[1 - dest];
    } else if (pp.reuse_buffer && reusable &&
               !(converse::header_of(reusable)->flags &
                 converse::kMsgFlagNoFree)) {
      msg = reusable;
    } else {
      msg = CmiAlloc(total);
    }
    CmiSetHandler(msg, h);
    if (pp.persistent) {
      converse::PersistentHandle hnd = dest == 1 ? to1 : to0;
      Machine::running()->send_persistent(hnd, msg);
    } else {
      CmiSyncSendAndFree(dest, total, msg);
    }
  };

  h = m->register_handler([&](void* msg) {
    ++legs;
    if (legs == 2) {
      measure_start = Machine::running()->current_pe().ctx().now();
    }
    if (legs == total_legs) {
      measure_end = Machine::running()->current_pe().ctx().now();
      CmiFree(msg);
      return;
    }
    int me = CmiMyPe();
    void* reusable = msg;
    if (converse::header_of(msg)->flags & converse::kMsgFlagNoFree) {
      reusable = nullptr;  // persistent landing buffer: runtime-owned
    } else if (pp.persistent || !pp.reuse_buffer) {
      CmiFree(msg);  // fresh-buffer mode: release before reallocating
      reusable = nullptr;
    }
    send_next(1 - me, reusable);
  });

  auto setup_persist = [&](int me) {
    persist_buf[me] = CmiAlloc(total);
    converse::header_of(persist_buf[me])->flags |= converse::kMsgFlagNoFree;
    converse::PersistentHandle hnd =
        Machine::running()->create_persistent(1 - me, total);
    assert(hnd.valid() && "persistent API unsupported on this layer");
    if (me == 0) {
      to1 = hnd;
    } else {
      to0 = hnd;
    }
  };

  m->start(0, [&] {
    if (pp.persistent) setup_persist(0);
    send_next(1, nullptr);
  });
  if (pp.persistent) {
    m->start(1, [&] { setup_persist(1); });
  }
  m->run();
  assert(legs == total_legs);
  return (measure_end - measure_start) / (2 * pp.iters);
}

double charm_bandwidth(converse::MachineOptions options, std::uint32_t bytes,
                       int iters) {
  PingPongOptions pp;
  pp.payload = bytes;
  pp.iters = iters;
  SimTime one_way = charm_pingpong(options, pp);
  if (one_way <= 0) return 0;
  // MB/s with MB = 1e6 bytes (the unit of Fig 9b's axis).
  return static_cast<double>(bytes) / (static_cast<double>(one_way) / 1e9) /
         1e6;
}

// ---------------------------------------------------------------------------
// One-to-all (Fig 9c)
// ---------------------------------------------------------------------------

SimTime charm_onetoall(converse::MachineOptions options, std::uint32_t bytes,
                       int iters) {
  // 16 nodes, one designated core per node (paper: 16 nodes of Hopper).
  auto m = lrts::make_machine(options.layer, options);
  const int ppn = options.effective_pes_per_node();
  const int nodes = options.nodes();
  const int peers = nodes - 1;
  assert(peers >= 1);
  const std::uint32_t total = bytes + kCmiHeaderBytes;
  const std::uint32_t ack_total = kCmiHeaderBytes + 8;

  int acks = 0;
  int round = 0;
  SimTime measure_start = 0, measure_end = 0;
  int h_data = -1, h_ack = -1;

  auto fire_round = [&] {
    for (int node = 1; node < nodes; ++node) {
      void* msg = CmiAlloc(total);
      CmiSetHandler(msg, h_data);
      CmiSyncSendAndFree(node * ppn, total, msg);
    }
  };

  h_data = m->register_handler([&](void* msg) {
    CmiFree(msg);
    void* ack = CmiAlloc(ack_total);
    CmiSetHandler(ack, h_ack);
    CmiSyncSendAndFree(0, ack_total, ack);
  });
  h_ack = m->register_handler([&](void* msg) {
    CmiFree(msg);
    if (++acks < peers) return;
    acks = 0;
    ++round;
    if (round == 1) {
      measure_start = Machine::running()->current_pe().ctx().now();
    }
    if (round == 1 + iters) {
      measure_end = Machine::running()->current_pe().ctx().now();
      return;
    }
    fire_round();
  });

  m->start(0, fire_round);
  m->run();
  return (measure_end - measure_start) / (iters * peers);
}

// ---------------------------------------------------------------------------
// kNeighbor (Fig 10)
// ---------------------------------------------------------------------------

SimTime charm_kneighbor(converse::MachineOptions options, std::uint32_t bytes,
                        int k, int iters) {
  auto m = lrts::make_machine(options.layer, options);
  charm::Charm charm(*m);
  const int pes = options.pes;
  // Payload carries the round tag; a PE may legitimately receive traffic
  // for round r+1 before the round-r completion broadcast reaches it, so
  // counters are kept per round.
  const std::uint32_t total =
      std::max<std::uint32_t>(bytes, sizeof(std::int32_t)) + kCmiHeaderBytes;

  struct RoundState {
    int data_got = 0;
    int acks_got = 0;
    bool contributed = false;
  };
  std::vector<std::map<int, RoundState>> st(static_cast<std::size_t>(pes));
  int rounds_done = 0;
  SimTime measure_start = 0, measure_end = 0;
  int h_data = -1, h_ack = -1, red = -1;

  auto send_round = [&](int me, int round) {
    for (int d = 1; d <= k; ++d) {
      for (int dir : {-1, +1}) {
        int peer = ((me + dir * d) % pes + pes) % pes;
        void* msg = CmiAlloc(total);
        *converse::msg_payload<std::int32_t>(msg) = round;
        CmiSetHandler(msg, h_data);
        CmiSyncSendAndFree(peer, total, msg);
      }
    }
  };

  auto maybe_contribute = [&](int me, int round) {
    RoundState& s = st[static_cast<std::size_t>(me)][round];
    if (s.contributed || s.data_got < 2 * k || s.acks_got < 2 * k) return;
    s.contributed = true;
    st[static_cast<std::size_t>(me)].erase(round);
    charm.contribute(red, 1);
  };

  h_data = m->register_handler([&](void* msg) {
    int me = CmiMyPe();
    int round = *converse::msg_payload<std::int32_t>(msg);
    // Ack with the same buffer (the paper reuses the message buffer).
    CmiSetHandler(msg, h_ack);
    int src = converse::header_of(msg)->src_pe;
    st[static_cast<std::size_t>(me)][round].data_got++;
    CmiSyncSendAndFree(src, total, msg);
    maybe_contribute(me, round);
  });
  h_ack = m->register_handler([&](void* msg) {
    int me = CmiMyPe();
    int round = *converse::msg_payload<std::int32_t>(msg);
    CmiFree(msg);
    st[static_cast<std::size_t>(me)][round].acks_got++;
    maybe_contribute(me, round);
  });

  int bcast = -1;
  red = charm.register_reduction_sum([&](std::uint64_t count) {
    assert(count == static_cast<std::uint64_t>(pes));
    (void)count;
    ++rounds_done;
    if (rounds_done == 1) {
      measure_start = Machine::running()->current_pe().ctx().now();
    }
    if (rounds_done == 1 + iters) {
      measure_end = Machine::running()->current_pe().ctx().now();
      return;
    }
    void* msg = CmiAlloc(kCmiHeaderBytes + 8);
    *converse::msg_payload<std::int32_t>(msg) = rounds_done;  // next round
    CmiSetHandler(msg, bcast);
    converse::CmiSyncBroadcastAllAndFree(kCmiHeaderBytes + 8, msg);
  });
  bcast = m->register_handler([&](void* msg) {
    int round = *converse::msg_payload<std::int32_t>(msg);
    CmiFree(msg);
    send_round(CmiMyPe(), round);
  });

  for (int pe = 0; pe < pes; ++pe) {
    m->start(pe, [&, pe] { send_round(pe, 0); });
  }
  m->run();
  assert(measure_end > measure_start && "kNeighbor rounds did not complete");
  return (measure_end - measure_start) / iters;
}

KNeighborFloodResult charm_kneighbor_flood(converse::MachineOptions options,
                                           std::uint32_t bytes, int k,
                                           int burst, int rounds) {
  auto m = lrts::make_machine(options.layer, options);
  const int pes = options.pes;
  assert(pes > 2 * k && "ring needs more PEs than neighbors");
  const std::uint32_t total =
      std::max<std::uint32_t>(bytes, sizeof(std::int32_t)) + kCmiHeaderBytes;

  std::uint64_t delivered = 0;
  std::vector<int> rounds_left(static_cast<std::size_t>(pes), rounds);
  int h_data = -1, h_pump = -1;

  h_data = m->register_handler([&](void* msg) {
    ++delivered;
    CmiFree(msg);
  });
  // One round: `burst` messages sprayed round-robin over the 2k ring
  // neighbors, then a self-message re-primes the pump.  The self-message
  // keeps the scheduler queue busy, so coalesced traffic flushes on
  // buffer-full / timer — the regime aggregation is built for.
  auto pump_round = [&](int me) {
    for (int i = 0; i < burst; ++i) {
      const int slot = i % (2 * k);
      const int dist = slot / 2 + 1;            // 1..k
      const int dir = (slot % 2 == 0) ? 1 : -1; // alternate sides
      const int peer = ((me + dir * dist) % pes + pes) % pes;
      void* msg = CmiAlloc(total);
      *converse::msg_payload<std::int32_t>(msg) = i;
      CmiSetHandler(msg, h_data);
      CmiSyncSendAndFree(peer, total, msg);
    }
    if (--rounds_left[static_cast<std::size_t>(me)] > 0) {
      void* next = CmiAlloc(kCmiHeaderBytes + sizeof(std::int32_t));
      CmiSetHandler(next, h_pump);
      CmiSyncSendAndFree(me, kCmiHeaderBytes + sizeof(std::int32_t), next);
    }
  };
  h_pump = m->register_handler([&](void* msg) {
    CmiFree(msg);
    pump_round(CmiMyPe());
  });

  for (int pe = 0; pe < pes; ++pe) {
    m->start(pe, [&, pe] { pump_round(pe); });
  }
  KNeighborFloodResult r;
  r.elapsed_ns = m->run();
  r.messages = delivered;
  const std::uint64_t expected = static_cast<std::uint64_t>(pes) *
                                 static_cast<std::uint64_t>(burst) *
                                 static_cast<std::uint64_t>(rounds);
  assert(delivered == expected && "kNeighbor flood lost or duplicated");
  (void)expected;
  r.msgs_per_sec =
      static_cast<double>(r.messages) / to_s(r.elapsed_ns);
  return r;
}

}  // namespace ugnirt::apps::bench
