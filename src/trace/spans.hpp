// Sampled per-message lifecycle spans (the "critical path" half of
// Projections-full).
//
// Counters say HOW OFTEN each protocol action ran; event rings say WHEN.
// Neither answers the question the paper's Fig 6 asks — *where did one
// message spend its time* once submit(), aggregation, the AIMD injection
// governor, and the transport all sit on the send path.  A span follows a
// single sampled message from Machine::submit() to scheduler delivery,
// stamping virtual time at every stage it crosses:
//
//   submit ─► agg_enqueue ─► agg_flush ─► transport_post ─► rx_arrive
//        └──────────(bypass)──────► gov_defer ─► gov_admit ──┘    │
//                                        cq_complete ◄────────────┘
//                                             └─► deliver
//
// Stage durations telescope: each mark's duration is the gap back to the
// previous mark, so the per-stage sums reconcile *exactly* with the
// end-to-end latency (last mark minus first).
//
// Sampling is controlled by `UGNIRT_SPAN_SAMPLE=N` (every Nth submitted
// message starts a span; 0 = off) and is *zero-cost when off*: every
// emission site is guarded by `spans_enabled()`, one inlined pointer test,
// and no allocation or atomic happens on the unsampled path.  The span id
// rides in the Converse envelope (CmiMsgHeader::span_id), so it survives
// every memcpy-based hop — aggregation frame packing, mailbox copies,
// rendezvous GETs — without side tables.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "util/units.hpp"

namespace ugnirt {
class Config;
}

namespace ugnirt::trace {

class MetricsRegistry;

enum class Stage : std::uint8_t {
  kSubmit = 0,      // converse::Machine::submit accepted the message
  kAggEnqueue,      // aggregation packed it into a per-destination frame
  kAggFlush,        // the batch carrying it shipped to the layer
  kGovDefer,        // injection governor deferred the rendezvous GET
  kGovAdmit,        // injection governor (re-)admitted it into the window
  kTransportPost,   // SMSG/FMA/BTE/pxshm transaction issued at the NIC
  kRxArrive,        // message observed at the receiver NIC / shm queue
  kCqComplete,      // completion event consumed from the receiver's CQ
  kDeliver,         // scheduler handed the message to its handler
};
constexpr int kStageCount = static_cast<int>(Stage::kDeliver) + 1;

const char* stage_name(Stage s);

struct SpanConfig {
  std::uint64_t sample = 0;            // start a span every Nth submit; 0=off
  std::uint64_t max_spans = 1u << 20;  // retained-span cap (memory bound)

  static SpanConfig from(const Config& cfg);
  void export_to(Config& cfg) const;
  static const char* const* config_keys(std::size_t* count);
};

struct SpanMark {
  Stage stage = Stage::kSubmit;
  std::int32_t pe = -1;  // PE on which the stage executed
  SimTime t = 0;
};

struct Span {
  std::uint32_t id = 0;
  std::uint32_t bytes = 0;
  std::int32_t src_pe = -1;
  std::int32_t dst_pe = -1;
  std::vector<SpanMark> marks;  // in mark order (virtual time is monotone)
};

/// Owns every sampled span for a process.  Spans are identified by dense
/// 1-based ids (0 means "not sampled"), so lookup is an index, not a hash.
class SpanCollector {
 public:
  explicit SpanCollector(SpanConfig cfg = {}) : cfg_(cfg) {}

  /// Called once per Machine::submit.  Returns a fresh span id when this
  /// message is sampled, 0 otherwise (not sampled, sampling off, or the
  /// max_spans cap was reached).
  std::uint32_t begin(std::int32_t src_pe, std::int32_t dst_pe,
                      std::uint32_t bytes, SimTime t);

  /// Append a stage mark to span `id`; no-op for id 0 or unknown ids.
  void mark(std::uint32_t id, Stage stage, std::int32_t pe, SimTime t);

  const Span* find(std::uint32_t id) const;
  std::size_t span_count() const { return spans_.size(); }
  std::uint64_t submits_seen() const { return submit_seq_; }
  const SpanConfig& config() const { return cfg_; }

  /// Telescoped per-stage durations into `span.stage.<name>` histograms
  /// plus the end-to-end `span.total_ns` histogram.
  void fill_histograms(MetricsRegistry& reg) const;

  /// Chrome trace_event async spans: one "b"/"e" pair per span with an "n"
  /// instant per intermediate stage (load in chrome://tracing / Perfetto).
  void write_chrome_json(std::ostream& out) const;

  /// Human-readable critical-path breakdown: per-stage count, mean, p50,
  /// p99 and share of total sampled latency.
  void write_breakdown(std::ostream& out) const;

  void clear();

 private:
  SpanConfig cfg_;
  std::uint64_t submit_seq_ = 0;
  std::vector<Span> spans_;  // id -> spans_[id - 1]
};

// ---- global installation (mirrors events.hpp) --------------------------

namespace detail {
extern SpanCollector* g_spans;
}

/// True when a SpanCollector is installed; the one test hot paths make.
inline bool spans_enabled() { return detail::g_spans != nullptr; }

inline SpanCollector* spans() { return detail::g_spans; }

/// Install (or with nullptr, remove) the process-wide collector.  Not owned.
void set_span_collector(SpanCollector* c);

/// Convenience wrappers used by instrumentation sites; call only after
/// checking spans_enabled() so the disabled path stays free.
std::uint32_t span_begin(std::int32_t src_pe, std::int32_t dst_pe,
                         std::uint32_t bytes, SimTime t);
void span_mark(std::uint32_t id, Stage stage, std::int32_t pe, SimTime t);

}  // namespace ugnirt::trace
