// Aggregation layer (TRAM-lite) tests: the frame wire format, the flush
// policies (full / timer / idle / barrier), threshold bypass, delivery
// semantics (exactly-once, per-source FIFO, broadcast order), the fault
// matrix rerun with coalescing enabled, seeded determinism, and the
// observability surface (agg.* metrics + kAggFlush trace events).
#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "aggregation/aggregation.hpp"
#include "aggregation/frame.hpp"
#include "converse/machine.hpp"
#include "fault/fault.hpp"
#include "lrts/runtime.hpp"
#include "trace/events.hpp"
#include "trace/metrics.hpp"
#include "util/config.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace ugnirt {
namespace {

using converse::CmiAlloc;
using converse::CmiFree;
using converse::CmiMyPe;
using converse::CmiSetHandler;
using converse::CmiSyncBroadcastAllAndFree;
using converse::CmiSyncSendAndFree;
using converse::kCmiHeaderBytes;
using converse::LayerKind;
using converse::MachineOptions;

// ------------------------------------------------------------- the frame ----

// Property-style round-trip: random sub-message sizes pack into a frame
// and unpack byte-for-byte, in order, for many seeds.
TEST(AggFrame, PackUnpackRoundTripRandomSizes) {
  using namespace aggregation;
  for (std::uint64_t seed : {1ull, 2ull, 0xA66ull, 0xF00Dull}) {
    Rng rng(seed);
    std::vector<std::uint8_t> buf(2048);
    FrameWriter w(buf.data(), static_cast<std::uint32_t>(buf.size()));

    std::vector<std::vector<std::uint8_t>> packed;
    for (;;) {
      const std::uint32_t len =
          static_cast<std::uint32_t>(kCmiHeaderBytes) + rng.next_below(200);
      if (!w.fits(len)) break;
      std::vector<std::uint8_t> msg(len);
      for (auto& b : msg) b = static_cast<std::uint8_t>(rng.next_u64());
      ASSERT_TRUE(w.append(msg.data(), len));
      packed.push_back(std::move(msg));
    }
    ASSERT_GT(packed.size(), 2u);  // the buffer holds several records
    EXPECT_EQ(w.count(), packed.size());

    std::size_t i = 0;
    const bool ok = for_each_submessage(
        buf.data(), w.bytes(), [&](const void* sub, std::uint32_t len) {
          ASSERT_LT(i, packed.size());
          EXPECT_EQ(len, packed[i].size());
          EXPECT_EQ(std::memcmp(sub, packed[i].data(), len), 0);
          // Readers may inspect the envelope in place: every sub-message
          // is aligned for CmiMsgHeader access.
          EXPECT_EQ(reinterpret_cast<std::uintptr_t>(sub) %
                        alignof(converse::CmiMsgHeader),
                    0u);
          ++i;
        });
    EXPECT_TRUE(ok);
    EXPECT_EQ(i, packed.size());
  }
}

TEST(AggFrame, RejectsMalformedFrames) {
  using namespace aggregation;
  std::vector<std::uint8_t> buf(512);
  FrameWriter w(buf.data(), static_cast<std::uint32_t>(buf.size()));
  std::vector<std::uint8_t> msg(kCmiHeaderBytes + 16, 0xAB);
  ASSERT_TRUE(w.append(msg.data(), static_cast<std::uint32_t>(msg.size())));
  auto nop = [](const void*, std::uint32_t) {};

  // Truncated below the frame header.
  EXPECT_FALSE(for_each_submessage(buf.data(), 4, nop));
  // Truncated mid-record.
  EXPECT_FALSE(for_each_submessage(buf.data(), w.bytes() - 8, nop));
  // Bad magic.
  auto bad = buf;
  bad[0] ^= 0xFF;
  EXPECT_FALSE(for_each_submessage(bad.data(), w.bytes(), nop));
  // Unknown version.
  bad = buf;
  bad[4] = 0x7F;
  EXPECT_FALSE(for_each_submessage(bad.data(), w.bytes(), nop));
  // The intact frame still validates.
  EXPECT_TRUE(for_each_submessage(buf.data(), w.bytes(), nop));
}

// ----------------------------------------------------------------- config ----

TEST(AggConfig, RoundTrip) {
  aggregation::AggregationConfig p;
  p.enable = true;
  p.threshold = 192;
  p.buffer_bytes = 2048;
  p.max_delay_ns = 7500;
  p.flush_on_idle = false;
  Config cfg;
  p.export_to(cfg);
  aggregation::AggregationConfig q = aggregation::AggregationConfig::from(cfg);
  EXPECT_TRUE(q.enable);
  EXPECT_EQ(q.threshold, 192u);
  EXPECT_EQ(q.buffer_bytes, 2048u);
  EXPECT_EQ(q.max_delay_ns, 7500);
  EXPECT_FALSE(q.flush_on_idle);
}

TEST(AggConfig, EnvOverridesApplyInMakeMachine) {
  ::setenv("UGNIRT_AGG_ENABLE", "1", 1);
  ::setenv("UGNIRT_AGG_THRESHOLD", "128", 1);
  ::setenv("UGNIRT_AGG_MAX_DELAY_NS", "5000", 1);
  MachineOptions o;
  o.pes = 2;
  auto m = lrts::make_machine(LayerKind::kUgni, o);
  ::unsetenv("UGNIRT_AGG_ENABLE");
  ::unsetenv("UGNIRT_AGG_THRESHOLD");
  ::unsetenv("UGNIRT_AGG_MAX_DELAY_NS");
  EXPECT_TRUE(m->options().aggregation.enable);
  EXPECT_EQ(m->options().aggregation.threshold, 128u);
  EXPECT_EQ(m->options().aggregation.max_delay_ns, 5000);
  EXPECT_NE(m->aggregator(), nullptr);
}

// --------------------------------------------------------- traffic helper ----

MachineOptions agg_options(int pes, bool enable = true) {
  MachineOptions o;
  o.layer = LayerKind::kUgni;
  o.pes = pes;
  o.pes_per_node = 1;  // inter-node: the SMSG path the aggregator targets
  o.aggregation.enable = enable;
  return o;
}

/// k-neighbor exchange returning per-PE receive counts (loss/dup check).
std::vector<int> run_kneighbor(converse::Machine& m, int k, int msgs,
                               std::uint32_t payload) {
  const int pes = m.num_pes();
  std::vector<int> received(static_cast<std::size_t>(pes), 0);
  int h = m.register_handler([&](void* msg) {
    received[static_cast<std::size_t>(CmiMyPe())]++;
    CmiFree(msg);
  });
  const std::uint32_t total = payload + kCmiHeaderBytes;
  for (int pe = 0; pe < pes; ++pe) {
    m.start(pe, [&m, pe, pes, k, msgs, total, h] {
      for (int i = 0; i < msgs; ++i) {
        for (int d = 1; d <= k; ++d) {
          for (int dest : {(pe + d) % pes, (pe - d + pes) % pes}) {
            void* msg = CmiAlloc(total);
            CmiSetHandler(msg, h);
            CmiSyncSendAndFree(dest, total, msg);
          }
        }
      }
    });
  }
  m.run();
  return received;
}

// ------------------------------------------------------ threshold / flush ----

// Messages at or above agg.threshold bypass the aggregator entirely;
// below it they coalesce.  The boundary is exclusive: == threshold goes
// direct.
TEST(AggThreshold, BoundaryIsExclusive) {
  for (bool at_threshold : {true, false}) {
    auto o = agg_options(2);
    const std::uint32_t total =
        at_threshold ? o.aggregation.threshold : o.aggregation.threshold - 8;
    ASSERT_GE(total, kCmiHeaderBytes);
    auto m = lrts::make_machine(LayerKind::kUgni, o);
    int got = 0;
    int h = m->register_handler([&](void* msg) {
      ++got;
      CmiFree(msg);
    });
    m->start(0, [&, h] {
      for (int i = 0; i < 8; ++i) {
        void* msg = CmiAlloc(total);
        CmiSetHandler(msg, h);
        CmiSyncSendAndFree(1, total, msg);
      }
    });
    m->run();
    EXPECT_EQ(got, 8);
    const std::uint64_t batched = m->metrics().counter("agg.batched").value();
    if (at_threshold) {
      EXPECT_EQ(batched, 0u) << "== threshold must go direct";
    } else {
      EXPECT_GT(batched, 0u) << "< threshold must coalesce";
      EXPECT_GT(m->metrics().counter("agg.flushes").value(), 0u);
    }
  }
}

// A lone small message on a busy PE (never idle, buffer never full) must
// still leave within agg.max_delay_ns — the timer flush, measured in
// virtual time.
TEST(AggFlush, TimerBoundsStragglerLatency) {
  auto o = agg_options(2);
  const SimTime max_delay = o.aggregation.max_delay_ns;
  auto m = lrts::make_machine(LayerKind::kUgni, o);

  SimTime sent_at = -1, arrived_at = -1;
  const std::uint32_t total = kCmiHeaderBytes + 64;

  int h_recv = m->register_handler([&](void* msg) {
    arrived_at = static_cast<SimTime>(converse::CmiWallTimer() * 1e9);
    CmiFree(msg);
  });
  // Self-message pump: keeps PE0's scheduler queue non-empty for ~500us of
  // virtual time, so neither the idle flush nor run() draining can ship
  // the straggler — only the deadline timer can.
  int pump_left = 100;
  int h_pump = -1;
  h_pump = m->register_handler([&](void* msg) {
    CmiFree(msg);
    converse::CmiChargeWork(5000);
    if (--pump_left > 0) {
      void* next = CmiAlloc(kCmiHeaderBytes);
      CmiSetHandler(next, h_pump);
      CmiSyncSendAndFree(0, kCmiHeaderBytes, next);
    }
  });
  m->start(0, [&] {
    sent_at = static_cast<SimTime>(converse::CmiWallTimer() * 1e9);
    void* msg = CmiAlloc(total);
    CmiSetHandler(msg, h_recv);
    CmiSyncSendAndFree(1, total, msg);
    void* pump = CmiAlloc(kCmiHeaderBytes);
    CmiSetHandler(pump, h_pump);
    CmiSyncSendAndFree(0, kCmiHeaderBytes, pump);
  });
  m->run();

  ASSERT_GE(sent_at, 0);
  ASSERT_GE(arrived_at, 0);
  const SimTime latency = arrived_at - sent_at;
  // Cannot leave before the deadline (not full, never idle)...
  EXPECT_GE(latency, max_delay);
  // ...and must leave promptly once it fires (wire + delivery slack).
  EXPECT_LE(latency, max_delay + 20000);
  EXPECT_GE(m->metrics().counter("agg.flush_timeout").value(), 1u);
}

// ------------------------------------------------------ delivery semantics ---

// A handler that relays its (runtime-owned, in-place) sub-message onward
// exercises the clone guard: the relayed bytes must survive the batch
// buffer being freed.
TEST(AggDelivery, RelayedSubMessagesSurviveBatchFree) {
  auto m = lrts::make_machine(LayerKind::kUgni, agg_options(3));
  const std::uint32_t total = kCmiHeaderBytes + 48;
  constexpr int kMsgs = 12;
  int ok_at_2 = 0;
  int h_sink = m->register_handler([&](void* msg) {
    auto* p = static_cast<std::uint8_t*>(converse::payload_of(msg));
    bool ok = true;
    for (std::uint32_t i = 0; i < 48; ++i) ok = ok && p[i] == 0x5A;
    ok_at_2 += ok ? 1 : 0;
    CmiFree(msg);
  });
  int h_relay = m->register_handler([&, h_sink](void* msg) {
    // Forward the very same buffer; the runtime clones if it must.
    CmiSetHandler(msg, h_sink);
    CmiSyncSendAndFree(2, converse::header_of(msg)->size, msg);
  });
  m->start(0, [&, h_relay] {
    for (int i = 0; i < kMsgs; ++i) {
      void* msg = CmiAlloc(total);
      std::memset(converse::payload_of(msg), 0x5A, 48);
      CmiSetHandler(msg, h_relay);
      CmiSyncSendAndFree(1, total, msg);
    }
  });
  m->run();
  EXPECT_EQ(ok_at_2, kMsgs);
}

// Small broadcasts route through submit() and therefore aggregate; each
// PE must still observe every broadcast exactly once, in send order.
TEST(AggBroadcast, PerPeDeliveryOrderPreserved) {
  constexpr int kPes = 6, kBcasts = 20;
  auto m = lrts::make_machine(LayerKind::kUgni, agg_options(kPes));
  std::vector<std::vector<int>> seen(kPes);
  int h = m->register_handler([&](void* msg) {
    int seq;
    std::memcpy(&seq, converse::payload_of(msg), sizeof(seq));
    seen[static_cast<std::size_t>(CmiMyPe())].push_back(seq);
    CmiFree(msg);
  });
  const std::uint32_t total = kCmiHeaderBytes + sizeof(int);
  m->start(0, [&, h] {
    for (int seq = 0; seq < kBcasts; ++seq) {
      void* msg = CmiAlloc(total);
      std::memcpy(converse::payload_of(msg), &seq, sizeof(seq));
      CmiSetHandler(msg, h);
      CmiSyncBroadcastAllAndFree(total, msg);
    }
  });
  m->run();
  for (int pe = 0; pe < kPes; ++pe) {
    const auto& v = seen[static_cast<std::size_t>(pe)];
    ASSERT_EQ(v.size(), static_cast<std::size_t>(kBcasts)) << "pe " << pe;
    for (int seq = 0; seq < kBcasts; ++seq) {
      EXPECT_EQ(v[static_cast<std::size_t>(seq)], seq)
          << "pe " << pe << " position " << seq;
    }
  }
  EXPECT_GT(m->metrics().counter("agg.batched").value(), 0u);
}

// ------------------------------------------------------------ fault matrix ---

fault::FaultPlan base_plan() {
  fault::FaultPlan p;
  p.enabled = true;
  p.seed = 0xFA17;
  return p;
}

// The full fault matrix reruns with aggregation enabled: batches are
// ordinary messages, so retry/backoff/demotion must deliver every
// coalesced payload exactly once under every fault class.
TEST(AggFault, MatrixZeroLossWithAggregationEnabled) {
  struct Case {
    const char* label;
    fault::FaultPlan plan;
  };
  std::vector<Case> cases;
  {
    Case c{"post_error", base_plan()};
    c.plan.p_post_error = 0.3;
    cases.push_back(c);
  }
  {
    Case c{"reg_error", base_plan()};
    c.plan.p_reg_error = 0.3;
    cases.push_back(c);
  }
  {
    Case c{"smsg_error", base_plan()};
    c.plan.p_smsg_error = 0.3;
    cases.push_back(c);
  }
  {
    Case c{"cq_overrun", base_plan()};
    c.plan.p_cq_overrun = 0.05;
    cases.push_back(c);
  }
  {
    Case c{"smsg_starve", base_plan()};
    c.plan.p_smsg_starve = 0.2;
    c.plan.smsg_starve_ns = 20000;
    cases.push_back(c);
  }
  {
    Case c{"link_degrade", base_plan()};
    c.plan.p_link_degrade = 0.3;
    c.plan.link_slowdown = 8.0;
    cases.push_back(c);
  }
  {
    Case c{"link_blackout", base_plan()};
    c.plan.p_link_blackout = 0.2;
    c.plan.link_blackout_ns = 100000;
    cases.push_back(c);
  }
  for (const Case& fc : cases) {
    auto o = agg_options(8);
    o.pes_per_node = 2;
    o.fault = fc.plan;
    auto m = lrts::make_machine(LayerKind::kUgni, o);
    constexpr int kK = 2, kMsgs = 6;
    // 64-byte payloads: well under the threshold, so the faulted wire
    // carries aggregation batches, not singles.
    auto received = run_kneighbor(*m, kK, kMsgs, 64);
    for (int pe = 0; pe < 8; ++pe) {
      EXPECT_EQ(received[static_cast<std::size_t>(pe)], 2 * kK * kMsgs)
          << fc.label << " pe " << pe;
    }
    EXPECT_GT(m->metrics().counter("agg.batched").value(), 0u) << fc.label;
  }
}

// ------------------------------------------------------------ determinism ----

std::string traced_agg_run(std::uint64_t seed) {
  trace::EventTracer tracer(1u << 18);
  trace::set_tracer(&tracer);
  auto o = agg_options(6);
  o.pes_per_node = 2;
  o.fault = base_plan();
  o.fault.seed = seed;
  o.fault.p_post_error = 0.2;
  o.fault.p_smsg_error = 0.2;
  auto m = lrts::make_machine(LayerKind::kUgni, o);
  auto received = run_kneighbor(*m, 2, 4, 64);
  trace::set_tracer(nullptr);
  for (int pe = 0; pe < 6; ++pe) {
    EXPECT_EQ(received[static_cast<std::size_t>(pe)], 16) << "pe " << pe;
  }
  EXPECT_GT(tracer.count_of(trace::Ev::kAggFlush), 0u);
  std::ostringstream csv;
  tracer.write_csv(csv);
  return csv.str();
}

TEST(AggDeterminism, SameSeedSameEventTraceWithAggregation) {
  std::string a = traced_agg_run(0xFA17);
  std::string b = traced_agg_run(0xFA17);
  EXPECT_EQ(a, b);
}

// ---------------------------------------------------------- observability ----

TEST(AggObservability, MetricsAndChromeTraceCarryAggregation) {
  trace::EventTracer tracer(1u << 18);
  trace::set_tracer(&tracer);
  auto m = lrts::make_machine(LayerKind::kUgni, agg_options(4));
  auto received = run_kneighbor(*m, 1, 16, 32);
  for (int pe = 0; pe < 4; ++pe) {
    EXPECT_EQ(received[static_cast<std::size_t>(pe)], 32) << "pe " << pe;
  }
  m->collect_metrics();
  trace::set_tracer(nullptr);

  std::ostringstream csv;
  m->metrics().write_csv(csv);
  const std::string s = csv.str();
  for (const char* name : {"agg.batched", "agg.flushes", "agg.flush_full",
                           "agg.flush_timeout", "agg.flush_idle",
                           "agg.flush_size_hist", "agg.flush_bytes_hist"}) {
    EXPECT_NE(s.find(name), std::string::npos) << "metric " << name;
  }
  EXPECT_GT(m->metrics().counter("agg.batched").value(), 0u);

  EXPECT_GT(tracer.count_of(trace::Ev::kAggFlush), 0u);
  std::ostringstream chrome;
  tracer.write_chrome_json(chrome);
  EXPECT_NE(chrome.str().find("agg_flush"), std::string::npos);
}

}  // namespace
}  // namespace ugnirt
