// Aggregation (TRAM-lite) ablation: what coalescing buys fine-grained
// traffic, and what it must NOT cost everyone else.
//
//   1. kNeighbor flood, 16–64 B messages: messages/second with the
//      aggregation layer off vs on (the headline ≥2x for ≤64 B).
//   2. NQueens (88 B task messages, random seed balancing): end-to-end
//      virtual time off vs on.
//   3. Guard rail: fig09a-style large-message ping-pong latency must be
//      identical with aggregation enabled — messages at or above
//      agg.threshold bypass the aggregator entirely.
#include <cstdio>

#include "apps/microbench/microbench.hpp"
#include "apps/nqueens/parallel.hpp"
#include "bench_util.hpp"

using namespace ugnirt;
using namespace ugnirt::apps;

namespace {

converse::MachineOptions flood_options(bool aggregate) {
  converse::MachineOptions o;
  o.layer = converse::LayerKind::kUgni;
  o.pes = 8;
  o.pes_per_node = 1;  // every pair crosses the network: pure SMSG regime
  o.aggregation.enable = aggregate;
  return o;
}

}  // namespace

int main() {
  // 1. Small-message throughput.
  benchtool::Table flood("ablation_aggregation_flood", "msg_bytes");
  flood.add_column("off_msgs_per_s");
  flood.add_column("on_msgs_per_s");
  flood.add_column("speedup");
  for (std::uint32_t size : {16u, 32u, 64u}) {
    auto off = bench::charm_kneighbor_flood(flood_options(false), size,
                                            /*k=*/2, /*burst=*/64,
                                            /*rounds=*/20);
    auto on = bench::charm_kneighbor_flood(flood_options(true), size,
                                           /*k=*/2, /*burst=*/64,
                                           /*rounds=*/20);
    flood.add_row(benchtool::size_label(size),
                  {off.msgs_per_sec, on.msgs_per_sec,
                   on.msgs_per_sec / off.msgs_per_sec});
  }
  flood.print();

  // 2. NQueens: the paper's "many 88-byte messages" workload.
  benchtool::Table nq("ablation_aggregation_nqueens", "pes");
  nq.add_column("off_ms");
  nq.add_column("on_ms");
  nq.add_column("speedup");
  for (int pes : {8, 16}) {
    nqueens::NQueensConfig cfg;
    cfg.n = 12;
    cfg.threshold = 4;
    converse::MachineOptions o;
    o.layer = converse::LayerKind::kUgni;
    o.pes = pes;
    o.pes_per_node = 1;
    auto off = nqueens::run_nqueens(o, cfg);
    o.aggregation.enable = true;
    auto on = nqueens::run_nqueens(o, cfg);
    if (off.solutions != on.solutions) {
      std::printf("FAIL: aggregation changed NQueens solution count\n");
      return 1;
    }
    nq.add_row(std::to_string(pes),
               {to_ms(off.elapsed), to_ms(on.elapsed),
                static_cast<double>(off.elapsed) /
                    static_cast<double>(on.elapsed)});
  }
  nq.print();

  // 3. Large messages must not regress: >= threshold bypasses byte-for-
  // byte, so latency with aggregation enabled is exactly the off curve.
  benchtool::Table big("ablation_aggregation_latency_guard", "msg_bytes");
  big.add_column("off_us");
  big.add_column("on_us");
  bool guard_ok = true;
  for (std::uint32_t size : {4096u, 65536u, 1048576u}) {
    bench::PingPongOptions pp;
    pp.payload = size;
    auto run_lat = [&](bool aggregate) {
      converse::MachineOptions o;
      o.layer = converse::LayerKind::kUgni;
      o.pes = 2;
      o.pes_per_node = 1;
      o.aggregation.enable = aggregate;
      return bench::charm_pingpong(o, pp);
    };
    SimTime off = run_lat(false);
    SimTime on = run_lat(true);
    guard_ok = guard_ok && off == on;
    big.add_row(benchtool::size_label(size), {to_us(off), to_us(on)});
  }
  big.print();
  std::printf("Large-message latency guard: %s\n",
              guard_ok ? "unchanged (exact match)" : "FAIL: drift detected");

  std::printf(
      "\nShape: coalescing many sub-128B messages into one SMSG amortizes\n"
      "the per-transaction mailbox/CQ/scheduler cost, multiplying small-\n"
      "message throughput, while >= agg.threshold traffic bypasses the\n"
      "aggregator and is byte-for-byte unaffected.\n");
  return guard_ok ? 0 : 1;
}
