// Fault-injection matrix for the uGNI stack (ISSUE: deterministic faults +
// retry/backoff).  Each fault class the injector can force — transient
// post errors, registration failures, SMSG send errors, CQ overruns,
// credit-starvation windows, link degradation and blackouts — is swept
// through ping-pong and k-neighbor traffic on the uGNI layer (plus SMP and
// MPI spot checks), asserting the one property the runtime guarantees:
// every message is delivered exactly once, no matter what the fabric does.
#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "converse/machine.hpp"
#include "fault/fault.hpp"
#include "fault/retry.hpp"
#include "lrts/runtime.hpp"
#include "sim/context.hpp"
#include "sim/engine.hpp"
#include "trace/events.hpp"
#include "trace/metrics.hpp"
#include "ugni/ugni.hpp"
#include "util/config.hpp"

namespace ugnirt {
namespace {

using converse::CmiAlloc;
using converse::CmiFree;
using converse::CmiMyPe;
using converse::CmiSetHandler;
using converse::CmiSyncSendAndFree;
using converse::kCmiHeaderBytes;
using converse::LayerKind;
using converse::MachineOptions;

// --------------------------------------------------------------- policy ----

TEST(RetryPolicy, BackoffIsCappedExponential) {
  fault::RetryPolicy p;
  p.backoff_base_ns = 500;
  p.backoff_mult = 2.0;
  p.backoff_max_ns = 64000;
  EXPECT_EQ(p.backoff_for(1), 500);
  EXPECT_EQ(p.backoff_for(2), 1000);
  EXPECT_EQ(p.backoff_for(3), 2000);
  EXPECT_EQ(p.backoff_for(8), 64000);   // 500 * 2^7 = 64000, exactly the cap
  EXPECT_EQ(p.backoff_for(20), 64000);  // stays capped
  EXPECT_EQ(p.backoff_for(0), 500);     // clamped to attempt 1
}

TEST(RetryPolicy, ConfigRoundTrip) {
  fault::RetryPolicy p;
  p.max_retries = 3;
  p.backoff_base_ns = 250;
  p.backoff_mult = 3.0;
  p.backoff_max_ns = 9000;
  p.demote_after = 2;
  Config cfg;
  p.export_to(cfg);
  fault::RetryPolicy q = fault::RetryPolicy::from(cfg);
  EXPECT_EQ(q.max_retries, 3);
  EXPECT_EQ(q.backoff_base_ns, 250);
  EXPECT_DOUBLE_EQ(q.backoff_mult, 3.0);
  EXPECT_EQ(q.backoff_max_ns, 9000);
  EXPECT_EQ(q.demote_after, 2);
}

TEST(FaultPlan, ConfigRoundTrip) {
  fault::FaultPlan p;
  p.enabled = true;
  p.seed = 12345;
  p.p_post_error = 0.1;
  p.p_reg_error = 0.2;
  p.p_smsg_error = 0.3;
  p.p_cq_overrun = 0.05;
  p.p_smsg_starve = 0.15;
  p.smsg_starve_ns = 7000;
  p.p_link_degrade = 0.25;
  p.link_slowdown = 8.0;
  p.link_degrade_ns = 11000;
  p.p_link_blackout = 0.35;
  p.link_blackout_ns = 13000;
  Config cfg;
  p.export_to(cfg);
  fault::FaultPlan q = fault::FaultPlan::from(cfg);
  EXPECT_TRUE(q.enabled);
  EXPECT_EQ(q.seed, 12345u);
  EXPECT_DOUBLE_EQ(q.p_post_error, 0.1);
  EXPECT_DOUBLE_EQ(q.p_reg_error, 0.2);
  EXPECT_DOUBLE_EQ(q.p_smsg_error, 0.3);
  EXPECT_DOUBLE_EQ(q.p_cq_overrun, 0.05);
  EXPECT_DOUBLE_EQ(q.p_smsg_starve, 0.15);
  EXPECT_EQ(q.smsg_starve_ns, 7000);
  EXPECT_DOUBLE_EQ(q.p_link_degrade, 0.25);
  EXPECT_DOUBLE_EQ(q.link_slowdown, 8.0);
  EXPECT_EQ(q.link_degrade_ns, 11000);
  EXPECT_DOUBLE_EQ(q.p_link_blackout, 0.35);
  EXPECT_EQ(q.link_blackout_ns, 13000);
  EXPECT_TRUE(q.any());
}

TEST(FaultPlan, EnvOverridesApplyInMakeMachine) {
  ::setenv("UGNIRT_FAULT_ENABLED", "1", 1);
  ::setenv("UGNIRT_FAULT_P_SMSG_ERROR", "0.125", 1);
  ::setenv("UGNIRT_FAULT_SEED", "99", 1);
  ::setenv("UGNIRT_RETRY_MAX_RETRIES", "5", 1);
  MachineOptions o;
  o.pes = 2;
  auto m = lrts::make_machine(LayerKind::kUgni, o);
  ::unsetenv("UGNIRT_FAULT_ENABLED");
  ::unsetenv("UGNIRT_FAULT_P_SMSG_ERROR");
  ::unsetenv("UGNIRT_FAULT_SEED");
  ::unsetenv("UGNIRT_RETRY_MAX_RETRIES");
  EXPECT_TRUE(m->options().fault.enabled);
  EXPECT_DOUBLE_EQ(m->options().fault.p_smsg_error, 0.125);
  EXPECT_EQ(m->options().fault.seed, 99u);
  EXPECT_EQ(m->options().retry.max_retries, 5);
  EXPECT_NE(m->fault_injector(), nullptr);
}

// --------------------------------------------------------- traffic loops ----

/// Run a k-neighbor exchange: every PE sends `msgs` messages of `payload`
/// bytes to each of its k ring neighbors.  Returns per-PE receive counts.
std::vector<int> run_kneighbor(converse::Machine& m, int k, int msgs,
                               std::uint32_t payload) {
  const int pes = m.num_pes();
  std::vector<int> received(static_cast<std::size_t>(pes), 0);
  int h = m.register_handler([&](void* msg) {
    received[static_cast<std::size_t>(CmiMyPe())]++;
    CmiFree(msg);
  });
  const std::uint32_t total = payload + kCmiHeaderBytes;
  for (int pe = 0; pe < pes; ++pe) {
    m.start(pe, [&m, pe, pes, k, msgs, total, h] {
      for (int i = 0; i < msgs; ++i) {
        for (int d = 1; d <= k; ++d) {
          for (int dest : {(pe + d) % pes, (pe - d + pes) % pes}) {
            void* msg = CmiAlloc(total);
            CmiSetHandler(msg, h);
            CmiSyncSendAndFree(dest, total, msg);
          }
        }
      }
    });
  }
  m.run();
  return received;
}

/// One fault class of the matrix: a label plus the plan that arms it.
struct FaultCase {
  const char* label;
  fault::FaultPlan plan;
};

fault::FaultPlan base_plan() {
  fault::FaultPlan p;
  p.enabled = true;
  p.seed = 0xFA17;
  return p;
}

std::vector<FaultCase> fault_matrix() {
  std::vector<FaultCase> cases;
  {
    FaultCase c{"post_error", base_plan()};
    c.plan.p_post_error = 0.3;
    cases.push_back(c);
  }
  {
    FaultCase c{"reg_error", base_plan()};
    c.plan.p_reg_error = 0.3;
    cases.push_back(c);
  }
  {
    FaultCase c{"smsg_error", base_plan()};
    c.plan.p_smsg_error = 0.3;
    cases.push_back(c);
  }
  {
    FaultCase c{"cq_overrun", base_plan()};
    c.plan.p_cq_overrun = 0.05;
    cases.push_back(c);
  }
  {
    FaultCase c{"smsg_starve", base_plan()};
    c.plan.p_smsg_starve = 0.2;
    c.plan.smsg_starve_ns = 20000;
    cases.push_back(c);
  }
  {
    FaultCase c{"link_degrade", base_plan()};
    c.plan.p_link_degrade = 0.3;
    c.plan.link_slowdown = 8.0;
    cases.push_back(c);
  }
  {
    FaultCase c{"link_blackout", base_plan()};
    c.plan.p_link_blackout = 0.2;
    c.plan.link_blackout_ns = 100000;
    cases.push_back(c);
  }
  return cases;
}

class FaultMatrixUgni : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FaultMatrixUgni, PingPongDeliversEveryLeg) {
  const FaultCase& fc = fault_matrix()[GetParam()];
  MachineOptions o;
  o.pes = 2;
  o.pes_per_node = 1;  // inter-node so the NIC paths are exercised
  o.fault = fc.plan;
  auto m = lrts::make_machine(LayerKind::kUgni, o);
  // Small (eager SMSG) and large (rendezvous GET) legs under fault fire.
  for (std::uint32_t payload : {64u, 32768u}) {
    const std::uint32_t total = payload + kCmiHeaderBytes;
    constexpr int kLegs = 20;
    int legs = 0;
    int h = -1;
    h = m->register_handler([&](void* msg) {
      CmiFree(msg);
      if (++legs >= kLegs) return;
      void* next = CmiAlloc(total);
      CmiSetHandler(next, h);
      CmiSyncSendAndFree(1 - CmiMyPe(), total, next);
    });
    m->start(0, [&, h] {
      void* msg = CmiAlloc(total);
      CmiSetHandler(msg, h);
      CmiSyncSendAndFree(1, total, msg);
    });
    m->run();
    EXPECT_EQ(legs, kLegs) << fc.label << " payload " << payload;
  }
}

TEST_P(FaultMatrixUgni, KNeighborZeroLossZeroDuplication) {
  const FaultCase& fc = fault_matrix()[GetParam()];
  MachineOptions o;
  o.pes = 8;
  o.pes_per_node = 2;
  o.fault = fc.plan;
  auto m = lrts::make_machine(LayerKind::kUgni, o);
  constexpr int kK = 2, kMsgs = 6;
  auto received = run_kneighbor(*m, kK, kMsgs, 512);
  // Each PE receives from 2k neighbors, msgs each: exactly, no loss, no dup.
  for (int pe = 0; pe < 8; ++pe) {
    EXPECT_EQ(received[static_cast<std::size_t>(pe)], 2 * kK * kMsgs)
        << fc.label << " pe " << pe;
  }
}

INSTANTIATE_TEST_SUITE_P(AllClasses, FaultMatrixUgni,
                         ::testing::Range<std::size_t>(0,
                                                       fault_matrix().size()),
                         [](const auto& info) {
                           return fault_matrix()[info.param].label;
                         });

TEST(FaultSmp, KNeighborSurvivesCombinedFaults) {
  MachineOptions o;
  o.pes = 8;
  o.pes_per_node = 4;  // 2 nodes, comm-thread per node
  o.smp_mode = true;
  o.fault = base_plan();
  o.fault.p_post_error = 0.2;
  o.fault.p_smsg_error = 0.2;
  o.fault.p_cq_overrun = 0.02;
  auto m = lrts::make_machine(LayerKind::kUgni, o);
  auto received = run_kneighbor(*m, 2, 4, 4096);
  for (int pe = 0; pe < 8; ++pe) {
    EXPECT_EQ(received[static_cast<std::size_t>(pe)], 16) << "pe " << pe;
  }
}

TEST(FaultMpi, KNeighborSurvivesCombinedFaults) {
  MachineOptions o;
  o.pes = 6;
  o.pes_per_node = 1;
  o.fault = base_plan();
  o.fault.p_reg_error = 0.2;
  o.fault.p_smsg_error = 0.2;
  o.fault.p_cq_overrun = 0.02;
  auto m = lrts::make_machine(LayerKind::kMpi, o);
  auto received = run_kneighbor(*m, 1, 5, 512);
  for (int pe = 0; pe < 6; ++pe) {
    EXPECT_EQ(received[static_cast<std::size_t>(pe)], 10) << "pe " << pe;
  }
}

// ------------------------------------------------------------ CQ overrun ----

// Regression: a CQ overrun used to latch GNI_RC_ERROR_RESOURCE forever —
// the owner had no way to clear the overrun bit, so one dropped event
// wedged the NIC for the rest of the run.  GNI_CqErrorRecover must clear
// the latch and re-synthesize the dropped arrival events.
TEST(CqOverrun, RecoverUnlatchesAndResynthesizesDroppedEvents) {
  sim::Engine engine{sim::EngineOptions{}};
  gemini::Network net(engine.scheduler(), topo::Torus3D::for_nodes(8),
                      gemini::MachineConfig{});
  ugni::Domain dom(net);
  sim::Context ctx0(engine.scheduler(), 0), ctx1(engine.scheduler(), 1);
  ugni::gni_nic_handle_t nic0 = nullptr, nic1 = nullptr;
  ugni::gni_cq_handle_t rx1 = nullptr, tx0 = nullptr;
  sim::ScopedContext guard(ctx0);
  ASSERT_EQ(ugni::GNI_CdmAttach(&dom, 0, 0, &nic0), ugni::GNI_RC_SUCCESS);
  ASSERT_EQ(ugni::GNI_CdmAttach(&dom, 1, 1, &nic1), ugni::GNI_RC_SUCCESS);
  // A 2-entry receive CQ: the third in-flight SMSG arrival must overrun.
  ASSERT_EQ(ugni::GNI_CqCreate(nic1, 2, &rx1), ugni::GNI_RC_SUCCESS);
  ASSERT_EQ(ugni::GNI_CqCreate(nic0, 64, &tx0), ugni::GNI_RC_SUCCESS);
  nic1->set_smsg_rx_cq(rx1);
  ugni::gni_ep_handle_t ep01 = nullptr, ep10 = nullptr;
  ASSERT_EQ(ugni::GNI_EpCreate(nic0, tx0, &ep01), ugni::GNI_RC_SUCCESS);
  ASSERT_EQ(ugni::GNI_EpCreate(nic1, rx1, &ep10), ugni::GNI_RC_SUCCESS);
  ASSERT_EQ(ugni::GNI_EpBind(ep01, 1), ugni::GNI_RC_SUCCESS);
  ASSERT_EQ(ugni::GNI_EpBind(ep10, 0), ugni::GNI_RC_SUCCESS);
  ugni::gni_smsg_attr_t attr;
  ASSERT_EQ(ugni::GNI_SmsgInit(ep01, attr, attr), ugni::GNI_RC_SUCCESS);
  ASSERT_EQ(ugni::GNI_SmsgInit(ep10, attr, attr), ugni::GNI_RC_SUCCESS);

  const char payload[8] = "overrun";
  for (int i = 0; i < 3; ++i) {
    ASSERT_EQ(ugni::GNI_SmsgSendWTag(ep01, payload, sizeof(payload), nullptr,
                                     0, 0, static_cast<std::uint8_t>(i)),
              ugni::GNI_RC_SUCCESS);
  }

  sim::ScopedContext rguard(ctx1);
  ctx1.wait_until(1'000'000);  // all three arrivals are in, one dropped
  ugni::gni_cq_entry_t ev;
  // The latch: every poll reports ERROR_RESOURCE, nothing is deliverable.
  ASSERT_EQ(ugni::GNI_CqGetEvent(rx1, &ev), ugni::GNI_RC_ERROR_RESOURCE);
  ASSERT_EQ(ugni::GNI_CqGetEvent(rx1, &ev), ugni::GNI_RC_ERROR_RESOURCE);

  std::uint32_t recovered = 0;
  ASSERT_EQ(ugni::GNI_CqErrorRecover(rx1, &recovered), ugni::GNI_RC_SUCCESS);
  EXPECT_EQ(recovered, 1u);  // the one dropped arrival came back

  // All three messages drain: zero loss, zero duplication.
  int got = 0;
  while (ugni::GNI_CqGetEvent(rx1, &ev) == ugni::GNI_RC_SUCCESS) {
    void* data = nullptr;
    std::uint8_t tag = 0;
    ASSERT_EQ(ugni::GNI_SmsgGetNextWTag(ep10, &data, &tag),
              ugni::GNI_RC_SUCCESS);
    ASSERT_EQ(ugni::GNI_SmsgRelease(ep10), ugni::GNI_RC_SUCCESS);
    ++got;
  }
  EXPECT_EQ(got, 3);
  // Idempotent when not latched.
  ASSERT_EQ(ugni::GNI_CqErrorRecover(rx1, &recovered), ugni::GNI_RC_SUCCESS);
  EXPECT_EQ(recovered, 0u);
}

TEST(CqOverrun, MachineRecoversAndCountsOverruns) {
  MachineOptions o;
  o.pes = 4;
  o.pes_per_node = 1;
  o.fault = base_plan();
  o.fault.p_cq_overrun = 0.08;
  auto m = lrts::make_machine(LayerKind::kUgni, o);
  auto received = run_kneighbor(*m, 1, 8, 256);
  for (int pe = 0; pe < 4; ++pe) {
    EXPECT_EQ(received[static_cast<std::size_t>(pe)], 16) << "pe " << pe;
  }
  m->collect_metrics();
  EXPECT_GT(m->metrics().counter("cq_overrun_recovered").value(), 0u);
}

// -------------------------------------------------------------- demotion ----

TEST(Demotion, CreditStarvationFallsBackToRendezvous) {
  MachineOptions o;
  o.pes = 2;
  o.pes_per_node = 1;
  o.fault = base_plan();
  o.fault.p_smsg_starve = 0.5;
  o.fault.smsg_starve_ns = 200000;  // long windows: backoff alone can't win
  auto m = lrts::make_machine(LayerKind::kUgni, o);
  auto received = run_kneighbor(*m, 1, 40, 128);
  EXPECT_EQ(received[0], 80);
  EXPECT_EQ(received[1], 80);
  m->collect_metrics();
  // Retries happened and at least one starved send was demoted to the
  // credit-free rendezvous path.
  EXPECT_GT(m->metrics().counter("retry_smsg").value(), 0u);
  EXPECT_GT(m->metrics().counter("fallback_rendezvous").value(), 0u);
}

// ----------------------------------------------------------- determinism ----

/// Run the standard faulty k-neighbor with `seed` and return the full
/// event-trace CSV.
std::string traced_run(std::uint64_t seed) {
  trace::EventTracer tracer(1u << 18);
  trace::set_tracer(&tracer);
  MachineOptions o;
  o.pes = 6;
  o.pes_per_node = 2;
  o.fault = base_plan();
  o.fault.seed = seed;
  o.fault.p_post_error = 0.2;
  o.fault.p_smsg_error = 0.2;
  o.fault.p_smsg_starve = 0.1;
  o.fault.p_cq_overrun = 0.02;
  auto m = lrts::make_machine(LayerKind::kUgni, o);
  auto received = run_kneighbor(*m, 2, 4, 1024);
  trace::set_tracer(nullptr);
  for (int pe = 0; pe < 6; ++pe) {
    EXPECT_EQ(received[static_cast<std::size_t>(pe)], 16) << "pe " << pe;
  }
  EXPECT_GT(tracer.count_of(trace::Ev::kFaultInject), 0u);
  std::ostringstream csv;
  tracer.write_csv(csv);
  return csv.str();
}

TEST(Determinism, SameSeedSameEventTrace) {
  std::string a = traced_run(0xFA17);
  std::string b = traced_run(0xFA17);
  EXPECT_EQ(a, b);
}

TEST(Determinism, DifferentSeedDifferentFaultSchedule) {
  std::string a = traced_run(1);
  std::string b = traced_run(2);
  EXPECT_NE(a, b);
}

// ------------------------------------------------------------------ soak ----

TEST(Soak, AllFaultClassesKNeighborZeroLossAndMetricsPublished) {
  MachineOptions o;
  o.pes = 8;
  o.pes_per_node = 2;
  o.fault = base_plan();
  o.fault.p_post_error = 0.2;
  o.fault.p_reg_error = 0.2;
  o.fault.p_smsg_error = 0.2;
  o.fault.p_cq_overrun = 0.03;
  o.fault.p_smsg_starve = 0.15;
  o.fault.p_link_degrade = 0.2;
  o.fault.p_link_blackout = 0.05;
  auto m = lrts::make_machine(LayerKind::kUgni, o);
  constexpr int kK = 2, kMsgs = 8;
  auto received = run_kneighbor(*m, kK, kMsgs, 2048);
  for (int pe = 0; pe < 8; ++pe) {
    EXPECT_EQ(received[static_cast<std::size_t>(pe)], 2 * kK * kMsgs)
        << "pe " << pe;
  }
  ASSERT_NE(m->fault_injector(), nullptr);
  EXPECT_GT(m->fault_injector()->injected_total(), 0u);

  m->collect_metrics();
  std::ostringstream csv;
  m->metrics().write_csv(csv);
  const std::string s = csv.str();
  for (const char* name :
       {"retry_smsg", "retry_post", "retry_mem_register", "retry_escalations",
        "fallback_rendezvous", "fallback_heap_send", "cq_overrun_recovered",
        "fault.post_errors", "fault.smsg_errors"}) {
    EXPECT_NE(s.find(name), std::string::npos) << "metric " << name;
  }
  // Under this much fire the retry paths must actually have run.
  EXPECT_GT(m->metrics().counter("retry_smsg").value() +
                m->metrics().counter("retry_post").value() +
                m->metrics().counter("retry_mem_register").value(),
            0u);
}

}  // namespace
}  // namespace ugnirt
