// Aggregation (TRAM-lite) configuration.
//
// Lives in its own header so converse/machine.hpp can embed it in
// MachineOptions without pulling in the Aggregator engine (which itself
// depends on the Machine).  Keys live under "agg.*" and are overridable
// via UGNIRT_AGG_* environment variables; `lrts::make_machine` applies
// them automatically, same as the fault/retry/gemini knobs.
#pragma once

#include <cstdint>

#include "util/config.hpp"
#include "util/units.hpp"

namespace ugnirt::aggregation {

struct AggregationConfig {
  /// Master switch (UGNIRT_AGG_ENABLE).  Off by default: aggregation
  /// trades per-message latency for throughput, which is the right deal
  /// only for fine-grained traffic.
  bool enable = false;

  /// Messages strictly smaller than this (total bytes, envelope included)
  /// are eligible for coalescing; a message of exactly `threshold` bytes
  /// bypasses the aggregator (UGNIRT_AGG_THRESHOLD).
  std::uint32_t threshold = 256;

  /// Upper bound on one batch message (total bytes, envelope + frame).
  /// The effective per-destination buffer is the min of this and what the
  /// active layer can move in a single transaction (UGNIRT_AGG_BUFFER_BYTES).
  std::uint32_t buffer_bytes = 4096;

  /// A partially-filled buffer flushes at most this much virtual time
  /// after its first message was packed (UGNIRT_AGG_MAX_DELAY_NS).
  SimTime max_delay_ns = 20000;

  /// Flush all buffers whenever the owning PE's scheduler queue drains —
  /// an idle PE has nothing to gain by holding messages back
  /// (UGNIRT_AGG_FLUSH_ON_IDLE).
  bool flush_on_idle = true;

  /// Read "agg.*" keys, falling back to the defaults above.
  static AggregationConfig from(const Config& cfg);
  /// Write every knob back as "agg.*" (for env-override round trips).
  void export_to(Config& cfg) const;
  /// The "agg.*" key list, for Config::apply_env_overrides.
  static const char* const* config_keys(std::size_t* count);
};

}  // namespace ugnirt::aggregation
