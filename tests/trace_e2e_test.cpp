// End-to-end test of the UGNIRT_TRACE session: run real machine traffic
// with tracing enabled, flush, and validate the emitted artifacts.
//
// This binary has its own main() so it can set UGNIRT_TRACE in the
// environment before the lazily-initialized TraceSession first reads it.
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <set>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include <algorithm>

#include "converse/machine.hpp"
#include "lrts/runtime.hpp"
#include "trace/events.hpp"
#include "trace/metrics.hpp"
#include "trace/session.hpp"
#include "trace/spans.hpp"

namespace ugnirt::converse {
namespace {

constexpr const char* kOutputBase = "trace_e2e_out";

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "missing " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

/// Drive ping-pong traffic across both protocol regimes (SMSG and
/// GET-based rendezvous) on the uGNI layer, then destroy the machine so
/// its metrics are absorbed into the trace session.
void run_traffic() {
  MachineOptions o;
  o.pes = 4;
  o.pes_per_node = 2;  // two nodes; PE 0 <-> PE 3 is inter-node traffic
  auto m = lrts::make_machine(LayerKind::kUgni, o);
  int bounces = 0;
  int h = m->register_handler([&](void* msg) {
    ++bounces;
    std::uint32_t total = header_of(msg)->size;
    int me = CmiMyPe();
    if (bounces < 8) {
      void* reply = CmiAlloc(total);
      CmiSetHandler(reply, h);
      CmiSyncSendAndFree(3 - me, total, reply);
    }
    CmiFree(msg);
  });
  for (std::uint32_t payload : {64u, 262144u}) {
    bounces = 0;
    const std::uint32_t total = payload + kCmiHeaderBytes;
    m->start(0, [&, total] {
      void* msg = CmiAlloc(total);
      CmiSetHandler(msg, h);
      CmiSyncSendAndFree(3, total, msg);
    });
    m->run();
    EXPECT_EQ(bounces, 8);
  }
}

TEST(TraceE2E, SessionIsActiveAndRecords) {
  trace::TraceSession* session = trace::TraceSession::active();
  ASSERT_NE(session, nullptr) << "UGNIRT_TRACE=1 not honored";
  ASSERT_TRUE(trace::enabled());
  session->set_output_base(kOutputBase);

  run_traffic();

  // Protocol events from both regimes landed in the tracer.
  trace::EventTracer& ev = session->events();
  EXPECT_GT(ev.count_of(trace::Ev::kSmsgSend), 0u);
  EXPECT_GT(ev.count_of(trace::Ev::kRdvInit), 0u);
  EXPECT_GT(ev.count_of(trace::Ev::kRdvGet), 0u);
  EXPECT_GT(ev.count_of(trace::Ev::kRdvAck), 0u);
  EXPECT_GT(ev.count_of(trace::Ev::kMsgExec), 0u);
  EXPECT_GT(ev.count_of(trace::Ev::kMemReg), 0u);
}

// Self-sufficient (gtest_discover_tests may run it in its own process):
// generates traffic, flushes, then validates every artifact.
TEST(TraceE2E, FlushedArtifactsAreValid) {
  trace::TraceSession* session = trace::TraceSession::active();
  ASSERT_NE(session, nullptr);
  session->set_output_base(kOutputBase);
  run_traffic();
  session->flush();

  // ---- Chrome trace JSON: structural sanity (Perfetto-loadable shape).
  std::string json = slurp(std::string(kOutputBase) + ".trace.json");
  ASSERT_FALSE(json.empty());
  EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u) << json.substr(0, 40);
  std::int64_t braces = 0, brackets = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < json.size(); ++i) {
    char c = json[i];
    if (in_string) {
      if (c == '\\') ++i;
      else if (c == '"') in_string = false;
      continue;
    }
    if (c == '"') in_string = true;
    else if (c == '{') ++braces;
    else if (c == '}') --braces;
    else if (c == '[') ++brackets;
    else if (c == ']') --brackets;
    ASSERT_GE(braces, 0);
    ASSERT_GE(brackets, 0);
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
  EXPECT_FALSE(in_string);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"smsg_send\""), std::string::npos);

  // ---- Events CSV.
  std::string events = slurp(std::string(kOutputBase) + ".events.csv");
  EXPECT_EQ(events.rfind("pe,t_ns,dur_ns,event,peer,size", 0), 0u);

  // ---- Metrics CSV: header plus a broad counter set spanning the uGNI
  // layer, the mempool, the Gemini network model and the CQs.
  std::string metrics = slurp(std::string(kOutputBase) + ".metrics.csv");
  std::istringstream in(metrics);
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line, "metric,kind,count,sum,mean,min,max,p50,p90,p99");
  std::set<std::string> counters;
  std::set<std::string> categories;
  while (std::getline(in, line)) {
    std::size_t c1 = line.find(',');
    ASSERT_NE(c1, std::string::npos) << line;
    std::string name = line.substr(0, c1);
    std::size_t c2 = line.find(',', c1 + 1);
    if (line.substr(c1 + 1, c2 - c1 - 1) == "counter") {
      counters.insert(name);
    }
    categories.insert(name.substr(0, name.find('.')));
  }
  EXPECT_GE(counters.size(), 12u) << metrics;
  for (const char* want : {"ugni", "mempool", "net", "cq", "converse"}) {
    EXPECT_TRUE(categories.count(want)) << "no " << want << ".* metrics";
  }
  EXPECT_TRUE(counters.count("ugni.smsg_sends"));
  EXPECT_TRUE(counters.count("ugni.rendezvous_gets"));
  EXPECT_TRUE(counters.count("mempool.freelist_hits"));
  EXPECT_TRUE(counters.count("net.transfers"));
}

// Span sampling was enabled via UGNIRT_SPAN_SAMPLE=1 in main(), so the
// flushed session must additionally produce the span artifacts: the
// Chrome async-span JSON, the machine-readable metrics JSON, and
// span.stage.* histogram rows whose telescoped sums reconcile with the
// end-to-end total.
TEST(TraceE2E, SpanArtifactsReconcile) {
  trace::TraceSession* session = trace::TraceSession::active();
  ASSERT_NE(session, nullptr);
  ASSERT_TRUE(trace::spans_enabled()) << "UGNIRT_SPAN_SAMPLE=1 not honored";
  session->set_output_base(kOutputBase);
  run_traffic();
  session->flush();

  trace::SpanCollector* col = session->span_collector();
  ASSERT_NE(col, nullptr);
  EXPECT_GT(col->span_count(), 0u);
  // sample=1: every submit was sampled.
  EXPECT_EQ(col->span_count(),
            std::min<std::uint64_t>(col->submits_seen(),
                                    col->config().max_spans));

  std::string spans = slurp(std::string(kOutputBase) + ".spans.json");
  EXPECT_EQ(spans.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_NE(spans.find("\"ph\":\"b\""), std::string::npos);
  EXPECT_NE(spans.find("\"ph\":\"e\""), std::string::npos);
  EXPECT_NE(spans.find("\"deliver\""), std::string::npos);

  std::string mjson = slurp(std::string(kOutputBase) + ".metrics.json");
  EXPECT_NE(mjson.find("\"histograms\""), std::string::npos);
  EXPECT_NE(mjson.find("\"span.total_ns\""), std::string::npos);

  std::string metrics = slurp(std::string(kOutputBase) + ".metrics.csv");
  EXPECT_NE(metrics.find("span.stage.transport_post,histogram"),
            std::string::npos);
  EXPECT_NE(metrics.find("span.stage.deliver,histogram"),
            std::string::npos);

  // Telescoped per-stage sums reconcile exactly with the end-to-end sum.
  trace::MetricsRegistry reg;
  col->fill_histograms(reg);
  double stage_sum = 0;
  for (int st = 0; st < trace::kStageCount; ++st) {
    const trace::Histogram* h = reg.find_histogram(
        std::string("span.stage.") +
        trace::stage_name(static_cast<trace::Stage>(st)));
    if (h) stage_sum += h->sum();
  }
  const trace::Histogram* total = reg.find_histogram("span.total_ns");
  ASSERT_NE(total, nullptr);
  EXPECT_GT(total->count(), 0u);
  EXPECT_DOUBLE_EQ(stage_sum, total->sum());
}

}  // namespace
}  // namespace ugnirt::converse

int main(int argc, char** argv) {
  // Must happen before the first TraceSession::active() call anywhere.
  setenv("UGNIRT_TRACE", "1", 1);
  setenv("UGNIRT_TRACE_FILE", ugnirt::converse::kOutputBase, 1);
  setenv("UGNIRT_SPAN_SAMPLE", "1", 1);  // sample every message lifecycle
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
