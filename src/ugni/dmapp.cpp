#include "ugni/dmapp.hpp"

#include <cassert>
#include <cstring>

namespace ugnirt::dmapp {

namespace {

sim::Context& ctx() {
  sim::Context* c = sim::current();
  assert(c && "DMAPP calls must run inside a simulated PE context");
  return *c;
}

}  // namespace

DmappJob::DmappJob(ugni::Domain& domain, int pes, std::uint64_t sheap_bytes,
                   int inst_base)
    : domain_(&domain) {
  assert(pes >= 1);
  const int nodes = domain.network().torus().nodes();
  for (int i = 0; i < pes; ++i) {
    auto pe = std::make_unique<DmappPe>();
    pe->pe_ = i;
    ugni::gni_return_t rc = ugni::GNI_CdmAttach(
        domain_, inst_base + i, i % nodes, &pe->nic);
    assert(rc == ugni::GNI_RC_SUCCESS);
    rc = ugni::GNI_CqCreate(pe->nic, 1 << 12, &pe->cq);
    assert(rc == ugni::GNI_RC_SUCCESS);
    pe->sheap_bytes_ = sheap_bytes;
    pe->sheap_ = std::make_unique<std::uint8_t[]>(sheap_bytes);
    rc = ugni::GNI_MemRegister(
        pe->nic, reinterpret_cast<std::uint64_t>(pe->sheap_.get()),
        sheap_bytes, nullptr, 0, &pe->sheap_hndl_);
    assert(rc == ugni::GNI_RC_SUCCESS);
    (void)rc;
    pes_.push_back(std::move(pe));
  }
}

DmappJob::~DmappJob() = default;

dmapp_return_t DmappJob::sheap_malloc(std::uint64_t bytes,
                                      std::uint64_t* offset_out) {
  if (!offset_out || bytes == 0) return DMAPP_RC_INVALID_PARAM;
  std::uint64_t aligned = (bytes + 15) & ~15ull;
  if (sheap_cursor_ + aligned > pes_[0]->sheap_bytes_) {
    return DMAPP_RC_NO_SPACE;
  }
  *offset_out = sheap_cursor_;
  sheap_cursor_ += aligned;
  return DMAPP_RC_SUCCESS;
}

ugni::gni_ep_handle_t DmappJob::ep_to(DmappPe& me, int target_pe) {
  auto& slot = me.eps[target_pe];
  if (!slot) {
    ugni::gni_return_t rc = ugni::GNI_EpCreate(me.nic, me.cq, &slot);
    assert(rc == ugni::GNI_RC_SUCCESS);
    rc = ugni::GNI_EpBind(
        slot, pes_[static_cast<std::size_t>(target_pe)]->nic->inst_id());
    assert(rc == ugni::GNI_RC_SUCCESS);
    (void)rc;
  }
  return slot;
}

dmapp_return_t DmappJob::xfer(int my_pe, int remote_pe,
                              std::uint64_t remote_off, void* local,
                              std::uint64_t bytes, bool is_get,
                              bool blocking) {
  if (my_pe < 0 || my_pe >= pes() || remote_pe < 0 || remote_pe >= pes()) {
    return DMAPP_RC_INVALID_PARAM;
  }
  DmappPe& me = *pes_[static_cast<std::size_t>(my_pe)];
  DmappPe& other = *pes_[static_cast<std::size_t>(remote_pe)];
  if (remote_off + bytes > other.sheap_bytes_) return DMAPP_RC_INVALID_PARAM;

  // Local side: DMAPP registers user buffers transparently through its own
  // cache; transfers run against the symmetric heap handle when the local
  // buffer is inside it, otherwise we model the library's internal bounce.
  // For this subset we move the bytes directly and charge timing through
  // the mechanism the library would choose.
  const auto& mc = domain_->config();
  gemini::TransferRequest req;
  req.mech = bytes < mc.rdma_threshold
                 ? (is_get ? gemini::Mechanism::kFmaGet
                           : gemini::Mechanism::kFmaPut)
                 : (is_get ? gemini::Mechanism::kBteGet
                           : gemini::Mechanism::kBtePut);
  req.initiator_node = me.nic->node();
  req.remote_node = other.nic->node();
  req.bytes = bytes;
  sim::Context& c = ctx();
  req.issue = c.now();
  gemini::TransferTimes t = domain_->network().transfer(req);

  void* remote = other.sheap_.get() + remote_off;
  if (is_get) {
    std::memcpy(local, remote, bytes);
  } else {
    std::memcpy(remote, local, bytes);
  }
  c.wait_until(t.cpu_done);
  if (blocking) {
    c.wait_until(t.initiator_complete);
  } else {
    me.nbi_fence_ = std::max(me.nbi_fence_, t.initiator_complete);
  }
  return DMAPP_RC_SUCCESS;
}

dmapp_return_t DmappJob::put(int my_pe, int target_pe,
                             std::uint64_t target_off, const void* source,
                             std::uint64_t bytes) {
  return xfer(my_pe, target_pe, target_off, const_cast<void*>(source), bytes,
              /*is_get=*/false, /*blocking=*/true);
}

dmapp_return_t DmappJob::get(int my_pe, int source_pe,
                             std::uint64_t source_off, void* target,
                             std::uint64_t bytes) {
  return xfer(my_pe, source_pe, source_off, target, bytes, /*is_get=*/true,
              /*blocking=*/true);
}

dmapp_return_t DmappJob::put_nbi(int my_pe, int target_pe,
                                 std::uint64_t target_off, const void* source,
                                 std::uint64_t bytes) {
  return xfer(my_pe, target_pe, target_off, const_cast<void*>(source), bytes,
              /*is_get=*/false, /*blocking=*/false);
}

dmapp_return_t DmappJob::gsync_wait(int my_pe) {
  if (my_pe < 0 || my_pe >= pes()) return DMAPP_RC_INVALID_PARAM;
  DmappPe& me = *pes_[static_cast<std::size_t>(my_pe)];
  ctx().wait_until(me.nbi_fence_);
  return DMAPP_RC_SUCCESS;
}

dmapp_return_t DmappJob::afadd_qw(int my_pe, int target_pe,
                                  std::uint64_t target_off,
                                  std::int64_t addend,
                                  std::int64_t* fetched) {
  if (my_pe < 0 || my_pe >= pes() || target_pe < 0 || target_pe >= pes() ||
      (target_off & 7) != 0) {
    return DMAPP_RC_INVALID_PARAM;
  }
  DmappPe& me = *pes_[static_cast<std::size_t>(my_pe)];
  DmappPe& other = *pes_[static_cast<std::size_t>(target_pe)];
  if (target_off + 8 > other.sheap_bytes_) return DMAPP_RC_INVALID_PARAM;

  // AMO = FMA round trip.
  gemini::TransferRequest req;
  req.mech = gemini::Mechanism::kFmaGet;
  req.initiator_node = me.nic->node();
  req.remote_node = other.nic->node();
  req.bytes = 8;
  sim::Context& c = ctx();
  req.issue = c.now();
  gemini::TransferTimes t = domain_->network().transfer(req);

  auto* word =
      reinterpret_cast<std::int64_t*>(other.sheap_.get() + target_off);
  std::int64_t old = *word;
  *word = old + addend;
  if (fetched) *fetched = old;
  c.wait_until(t.initiator_complete);
  return DMAPP_RC_SUCCESS;
}

}  // namespace ugnirt::dmapp
