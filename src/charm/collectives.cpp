#include "charm/collectives.hpp"

#include <cassert>
#include <cstring>

namespace ugnirt::charm {

using converse::CmiAlloc;
using converse::CmiFree;
using converse::CmiMyPe;
using converse::CmiSetHandler;
using converse::CmiSyncSendAndFree;
using converse::kCmiHeaderBytes;
using converse::msg_payload;

namespace {

struct BarrierReleaseMsg {
  std::int32_t barrier_id;
};

struct GatherMsg {
  std::int32_t gather_id;
  std::int32_t src_pe;
  std::uint32_t len;
  // blob bytes follow
};

struct SectionMsg {
  std::int32_t section_id;
  std::int32_t handler_id;
  std::int32_t vrank;  // position of the receiving PE within the section
  std::uint32_t len;
  // payload bytes follow
};

}  // namespace

Collectives::Collectives(Charm& charm) : charm_(&charm) {
  barrier_release_handler_ =
      charm_->machine().register_handler([this](void* msg) {
        const auto* bm = msg_payload<BarrierReleaseMsg>(msg);
        barriers_[static_cast<std::size_t>(bm->barrier_id)].on_release();
        CmiFree(msg);
      });

  gather_handler_ = charm_->machine().register_handler([this](void* msg) {
    const auto* gm = msg_payload<GatherMsg>(msg);
    Gather& g = gathers_[static_cast<std::size_t>(gm->gather_id)];
    const auto* bytes =
        reinterpret_cast<const std::uint8_t*>(gm) + sizeof(GatherMsg);
    g.blobs[static_cast<std::size_t>(gm->src_pe)].assign(bytes,
                                                         bytes + gm->len);
    CmiFree(msg);
    if (++g.received == charm_->machine().num_pes()) {
      auto blobs = std::move(g.blobs);
      g.blobs.assign(static_cast<std::size_t>(charm_->machine().num_pes()),
                     {});
      g.received = 0;
      g.cb(blobs);
    }
  });

  section_handler_ = charm_->machine().register_handler(
      [this](void* msg) { section_deliver(msg); });
}

// ---------------------------------------------------------------------------
// Barrier: reduction up, broadcast release down.
// ---------------------------------------------------------------------------

int Collectives::register_barrier(std::function<void()> on_release) {
  Barrier b;
  b.on_release = std::move(on_release);
  int id = static_cast<int>(barriers_.size());
  b.reduction_id = charm_->register_reduction_sum([this, id](std::uint64_t) {
    // Completed on PE 0: release everyone (including PE 0) via broadcast.
    std::uint32_t total = static_cast<std::uint32_t>(
        kCmiHeaderBytes + sizeof(BarrierReleaseMsg));
    void* msg = CmiAlloc(total);
    msg_payload<BarrierReleaseMsg>(msg)->barrier_id = id;
    CmiSetHandler(msg, barrier_release_handler_);
    converse::CmiSyncBroadcastAllAndFree(total, msg);
  });
  barriers_.push_back(std::move(b));
  return id;
}

void Collectives::arrive(int barrier_id) {
  charm_->contribute(
      barriers_[static_cast<std::size_t>(barrier_id)].reduction_id, 1);
}

// ---------------------------------------------------------------------------
// Gather
// ---------------------------------------------------------------------------

int Collectives::register_gather(
    std::function<void(const std::vector<std::vector<std::uint8_t>>&)>
        at_root) {
  Gather g;
  g.cb = std::move(at_root);
  g.blobs.assign(static_cast<std::size_t>(charm_->machine().num_pes()), {});
  gathers_.push_back(std::move(g));
  return static_cast<int>(gathers_.size()) - 1;
}

void Collectives::contribute_blob(int gather_id, const void* bytes,
                                  std::uint32_t len) {
  std::uint32_t total = static_cast<std::uint32_t>(
      kCmiHeaderBytes + sizeof(GatherMsg) + len);
  void* msg = CmiAlloc(total);
  auto* gm = msg_payload<GatherMsg>(msg);
  gm->gather_id = gather_id;
  gm->src_pe = CmiMyPe();
  gm->len = len;
  if (len) {
    std::memcpy(reinterpret_cast<std::uint8_t*>(gm) + sizeof(GatherMsg),
                bytes, len);
  }
  CmiSetHandler(msg, gather_handler_);
  CmiSyncSendAndFree(0, total, msg);
}

// ---------------------------------------------------------------------------
// Section multicast
// ---------------------------------------------------------------------------

int Collectives::create_section(std::vector<int> pes) {
  assert(!pes.empty());
  sections_.push_back(std::move(pes));
  return static_cast<int>(sections_.size()) - 1;
}

int Collectives::register_section_handler(
    std::function<void(const void* payload, std::uint32_t len)> fn) {
  section_handlers_.push_back(std::move(fn));
  return static_cast<int>(section_handlers_.size()) - 1;
}

void Collectives::multicast(int section_id, int handler_id,
                            const void* payload, std::uint32_t len) {
  const auto& pes = sections_[static_cast<std::size_t>(section_id)];
  // Send to the section root (vrank 0); it forwards down the section tree.
  std::uint32_t total = static_cast<std::uint32_t>(
      kCmiHeaderBytes + sizeof(SectionMsg) + len);
  void* msg = CmiAlloc(total);
  auto* sm = msg_payload<SectionMsg>(msg);
  sm->section_id = section_id;
  sm->handler_id = handler_id;
  sm->vrank = 0;
  sm->len = len;
  if (len) {
    std::memcpy(reinterpret_cast<std::uint8_t*>(sm) + sizeof(SectionMsg),
                payload, len);
  }
  CmiSetHandler(msg, section_handler_);
  CmiSyncSendAndFree(pes[0], total, msg);
}

void Collectives::section_deliver(void* msg) {
  const auto* sm = msg_payload<SectionMsg>(msg);
  const auto& pes = sections_[static_cast<std::size_t>(sm->section_id)];
  const void* payload =
      reinterpret_cast<const std::uint8_t*>(sm) + sizeof(SectionMsg);
  const std::uint32_t total = converse::header_of(msg)->size;

  // Forward to this member's children in the section tree (fanout 4).
  for (int k = 1; k <= converse::Machine::kTreeFanout; ++k) {
    int vchild = sm->vrank * converse::Machine::kTreeFanout + k;
    if (vchild >= static_cast<int>(pes.size())) break;
    void* copy = CmiAlloc(total);
    std::memcpy(copy, msg, total);
    converse::header_of(copy)->alloc_pe = CmiMyPe();
    msg_payload<SectionMsg>(copy)->vrank = vchild;
    CmiSetHandler(copy, section_handler_);
    CmiSyncSendAndFree(pes[static_cast<std::size_t>(vchild)], total, copy);
  }
  section_handlers_[static_cast<std::size_t>(sm->handler_id)](payload,
                                                              sm->len);
  CmiFree(msg);
}

}  // namespace ugnirt::charm
