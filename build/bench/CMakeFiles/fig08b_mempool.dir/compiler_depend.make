# Empty compiler generated dependencies file for fig08b_mempool.
# This may be replaced when dependencies are built.
