file(REMOVE_RECURSE
  "libugnirt_mempool.a"
)
