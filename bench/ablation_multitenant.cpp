// Multi-tenant ablation: what per-job QoS classes buy a latency-sensitive
// victim that shares one torus with aggressor jobs (the Jha et al. regime
// the tenancy subsystem reproduces).
//
// On a 32-PE machine (4 PEs per node, so jobs share NICs and BTE
// engines wherever placement mixes them on a node), three jobs share the
// PE space:
//
//   victim    8 PEs, kNeighbor halo, QoS class `latency`
//   shuffle  16 PEs, all-to-all storm, QoS class `bulk`
//   ckpt      8 PEs, checkpoint-IO bursts, QoS class `scavenger`
//
// For each placement policy (compact slab / scattered deal / seeded
// random-fragmented) three legs run:
//
//   alone   the victim with the rest of the machine idle — the floor
//   noqos   victim + aggressors, flow control on, QoS classes OFF
//   qos     victim + aggressors, flow control on, QoS classes ON
//
// The victim's per-message delivery p99 comes straight out of the
// standard per-job metrics row (`job.0.delivery_us`).  Results land in
// BENCH_multitenant.json for tools/bench_report.py; the scatter leg is
// guard-railed in-binary (QoS must cut victim p99 by >= 1.5x vs noqos)
// and in CI (`bench_report.py check --min`).  Why scatter: compact never
// shares a node (isolated by construction, QoS moot) and random strands
// lone victim PEs on fully saturated nodes that no window bound can
// rescue; the dealt placement is where per-job classes earn their keep —
// bulk/scavenger ceilings keep each shared node's EWMA load below the
// governor's hot threshold, so the victim's 2 KiB rendezvous pulls are
// never demoted off the FMA fast path into the storm's BTE backlog.
//
// A final leg asserts the zero-cost claim: a single-job run on a machine
// whose options merely *mention* tenancy (enable=false, knobs perturbed)
// finishes at the same virtual instant as stock, bit for bit.
//
// `ablation_multitenant soak` instead runs a two-job faulted kNeighbor
// soak (fault plan from UGNIRT_FAULT_* env) and exits nonzero on any
// victim or aggressor message loss — the CI tenant-soak job's workload.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "converse/machine.hpp"
#include "lrts/runtime.hpp"
#include "tenancy/generators.hpp"
#include "tenancy/tenancy.hpp"
#include "trace/metrics.hpp"

using namespace ugnirt;

namespace {

constexpr int kPes = 32;
constexpr int kVictimPes = 8;
constexpr int kShufflePes = 16;
constexpr int kCkptPes = 8;

struct Metric {
  std::string name;
  double value = 0;
  std::string unit;
  const char* better = "lower";  // "lower" | "higher" | "info"
};

void write_bench_json(const char* path, const std::vector<Metric>& ms) {
  std::ofstream out(path);
  out << "{\n  \"suite\": \"multitenant\",\n  \"schema\": 1,\n"
      << "  \"metrics\": {\n";
  for (std::size_t i = 0; i < ms.size(); ++i) {
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.9g", ms[i].value);
    out << "    \"";
    benchtool::json_escape_to(out, ms[i].name);
    out << "\": {\"value\": " << buf << ", \"unit\": \"" << ms[i].unit
        << "\", \"better\": \"" << ms[i].better << "\"}";
    if (i + 1 < ms.size()) out << ',';
    out << '\n';
  }
  out << "  }\n}\n";
  std::printf("wrote %s\n", path);
}

converse::MachineOptions leg_options(const std::string& placement,
                                     bool qos_on, int pes = kPes) {
  converse::MachineOptions o;
  o.layer = converse::LayerKind::kUgni;
  o.pes = pes;
  o.pes_per_node = 4;  // nodes are shared: placement decides which jobs
                       // split a NIC/BTE engine — the multi-tenant coupling
  // Flow control is on in BOTH contended legs; the QoS classes riding the
  // governor are the only delta between noqos and qos.
  o.flow.enable = true;
  o.tenancy.enable = true;
  o.tenancy.placement = placement;
  o.tenancy.qos_enable = qos_on;
  return o;
}

struct LegResult {
  double p99_us = 0;
  double mean_us = 0;
  std::uint64_t msgs = 0;
  SimTime end_ns = 0;
};

/// Place the victim (plus aggressors when asked), drive every job with
/// its generator, and report the victim's delivery-latency stats from
/// the per-job histogram.
LegResult run_leg(const std::string& placement, bool aggressors,
                  bool qos_on) {
  auto m = lrts::make_machine(converse::LayerKind::kUgni,
                              leg_options(placement, qos_on));
  tenancy::JobManager jobs(*m, m->options().tenancy);
  const tenancy::JobId victim = jobs.add_job(
      {"victim", kVictimPes, tenancy::QosClass::kLatency});
  tenancy::JobId shuffle = -1;
  tenancy::JobId ckpt = -1;
  if (aggressors) {
    shuffle = jobs.add_job(
        {"shuffle", kShufflePes, tenancy::QosClass::kBulk});
    ckpt = jobs.add_job({"ckpt", kCkptPes, tenancy::QosClass::kScavenger});
  }
  jobs.place();

  std::vector<std::unique_ptr<tenancy::TrafficGenerator>> gens;
  {
    tenancy::GeneratorOptions vo;
    vo.pattern = tenancy::TrafficPattern::kKNeighborHalo;
    vo.iterations = 8;
    vo.k = 2;
    // Small rendezvous messages: above the SMSG cap (so the governor
    // paces them) but under the FMA/BTE threshold even after the hot-node
    // demotion halves it — the victim's pulls stay on the latency-optimal
    // CPU-driven path as long as its node stays cool.  QoS is what keeps
    // the node cool.
    vo.payload = 2048;
    gens.push_back(
        std::make_unique<tenancy::TrafficGenerator>(jobs, victim, vo));
  }
  if (aggressors) {
    tenancy::GeneratorOptions so;
    so.pattern = tenancy::TrafficPattern::kAllToAllShuffle;
    so.iterations = 8;
    so.payload = 32 * 1024;  // BTE bulk pulls: each hold of a shared DMA
                             // engine also carries its route's link waits
    gens.push_back(
        std::make_unique<tenancy::TrafficGenerator>(jobs, shuffle, so));
    tenancy::GeneratorOptions co;
    co.pattern = tenancy::TrafficPattern::kCheckpointBurst;
    co.iterations = 8;
    co.io_ranks = 2;
    co.payload = 32 * 1024;
    gens.push_back(
        std::make_unique<tenancy::TrafficGenerator>(jobs, ckpt, co));
  }
  for (auto& g : gens) g->launch();
  m->run();

  for (auto& g : gens) {
    if (g->received() != g->expected_messages()) {
      std::printf("FAIL: job %d lost messages (%llu/%llu)\n", g->job(),
                  static_cast<unsigned long long>(g->received()),
                  static_cast<unsigned long long>(g->expected_messages()));
      std::exit(1);
    }
  }
  const trace::Histogram& h = jobs.delivery_hist(victim);
  LegResult res;
  res.p99_us = h.p99();
  res.mean_us = h.count() ? h.mean() : 0;
  res.msgs = h.count();
  res.end_ns = m->engine().now();
  return res;
}

/// Virtual end time of a fixed single-job workload; `mention_tenancy`
/// leaves tenancy disabled but perturbs every knob, which must not move
/// the clock by a single tick.
SimTime run_stock_probe(bool mention_tenancy) {
  converse::MachineOptions o;
  o.layer = converse::LayerKind::kUgni;
  o.pes = 8;
  o.pes_per_node = 1;
  o.flow.enable = true;
  if (mention_tenancy) {
    o.tenancy.enable = false;  // the master switch stays off...
    o.tenancy.placement = "random";  // ...so none of these may matter
    o.tenancy.seed = 12345;
    o.tenancy.jobs = "ghost:latency:8";
    o.tenancy.qos_latency_floor = 17;
    o.tenancy.qos_bulk_ceiling = 3;
  }
  auto m = lrts::make_machine(converse::LayerKind::kUgni, o);
  int h_sink = m->register_handler([](void* msg) { converse::CmiFree(msg); });
  const std::uint32_t total = 4096 + converse::kCmiHeaderBytes;
  for (int pe = 0; pe < 8; ++pe) {
    m->start(pe, [pe, total, h_sink] {
      for (int i = 0; i < 8; ++i) {
        void* msg = converse::CmiAlloc(total);
        converse::CmiSetHandler(msg, h_sink);
        converse::CmiSyncSendAndFree((pe + 1 + i) % 8, total, msg);
      }
    });
  }
  m->run();
  return m->engine().now();
}

/// Two-tenant faulted soak: victim halo + shuffle storm on 16 PEs, fault
/// plan from UGNIRT_FAULT_* env (applied inside make_machine), QoS on.
/// Exits nonzero on any message loss in either job.
int run_soak() {
  auto m = lrts::make_machine(converse::LayerKind::kUgni,
                              leg_options("scatter", true, 16));
  tenancy::JobManager jobs(*m, m->options().tenancy);
  const tenancy::JobId victim =
      jobs.add_job({"victim", 8, tenancy::QosClass::kLatency});
  const tenancy::JobId aggr =
      jobs.add_job({"shuffle", 8, tenancy::QosClass::kBulk});
  jobs.place();

  tenancy::GeneratorOptions vo;
  vo.pattern = tenancy::TrafficPattern::kKNeighborHalo;
  vo.iterations = 12;
  vo.k = 2;
  vo.payload = 2048;
  tenancy::TrafficGenerator vgen(jobs, victim, vo);
  tenancy::GeneratorOptions so;
  so.pattern = tenancy::TrafficPattern::kAllToAllShuffle;
  so.iterations = 6;
  so.payload = 16 * 1024;
  tenancy::TrafficGenerator agen(jobs, aggr, so);
  vgen.launch();
  agen.launch();
  m->run();

  bool ok = true;
  for (const tenancy::TrafficGenerator* g : {&vgen, &agen}) {
    std::printf("soak: job %d delivered %llu/%llu\n", g->job(),
                static_cast<unsigned long long>(g->received()),
                static_cast<unsigned long long>(g->expected_messages()));
    if (g->received() != g->expected_messages()) ok = false;
  }
  const bool faulted = m->options().fault.enabled && m->options().fault.any();
  std::printf("soak: faults %s, victim p99 %.1f us -> %s\n",
              faulted ? "armed" : "off",
              jobs.delivery_hist(victim).p99(), ok ? "OK" : "FAIL");
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "soak") == 0) return run_soak();

  benchtool::Table table("ablation_multitenant", "placement");
  table.add_column("alone_p99_us");
  table.add_column("noqos_p99_us");
  table.add_column("qos_p99_us");
  table.add_column("speedup_x");

  std::vector<Metric> ms;
  double scatter_speedup = 0;
  for (const char* placement : {"compact", "scatter", "random"}) {
    const LegResult alone = run_leg(placement, false, true);
    const LegResult noqos = run_leg(placement, true, false);
    const LegResult qos = run_leg(placement, true, true);
    const double speedup =
        qos.p99_us > 0 ? noqos.p99_us / qos.p99_us : 0;
    // Scatter is the guard-railed point: compact never shares a node
    // (isolation by construction, QoS moot) and random's fragmentation
    // leaves lone victim PEs on saturated nodes QoS can only partly
    // rescue — the dealt placement is where the classes pay off.
    if (std::strcmp(placement, "scatter") == 0) scatter_speedup = speedup;
    table.add_row(placement,
                  {alone.p99_us, noqos.p99_us, qos.p99_us, speedup});
    const std::string p = placement;
    ms.push_back({p + ".victim_alone_p99_us", alone.p99_us, "us", "info"});
    ms.push_back({p + ".noqos_p99_us", noqos.p99_us, "us", "info"});
    ms.push_back({p + ".qos_p99_us", qos.p99_us, "us", "lower"});
    ms.push_back(
        {p + ".qos_isolation_speedup_x", speedup, "x", "higher"});
    std::printf("multitenant: %s done (victim %llu msgs, %.1f -> %.1f us "
                "p99, %.2fx)\n",
                placement, static_cast<unsigned long long>(qos.msgs),
                noqos.p99_us, qos.p99_us, speedup);
    std::fflush(stdout);
  }
  table.print();

  // Zero-cost claim: mentioning tenancy with enable=false must not move
  // virtual time at all.
  const SimTime plain = run_stock_probe(false);
  const SimTime mention = run_stock_probe(true);
  ms.push_back({"tenancy_off_end_ns_delta",
                static_cast<double>(plain > mention ? plain - mention
                                                    : mention - plain),
                "ns", "lower"});
  write_bench_json("BENCH_multitenant.json", ms);

  bool ok = true;
  if (scatter_speedup < 1.5) {
    std::printf("FAIL: scatter QoS isolation speedup %.2fx < 1.5x\n",
                scatter_speedup);
    ok = false;
  }
  if (plain != mention) {
    std::printf("FAIL: tenancy-off run moved virtual time (%llu != %llu)\n",
                static_cast<unsigned long long>(plain),
                static_cast<unsigned long long>(mention));
    ok = false;
  }
  std::printf(
      "Shape: with QoS classes on, the victim's kNeighbor p99 under the\n"
      "all-to-all storm recovers toward its alone floor on every\n"
      "placement; with classes off the storm owns the links.\n");
  return ok ? 0 : 1;
}
