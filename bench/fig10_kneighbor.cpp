// Figure 10: kNeighbor — 3 cores on 3 nodes, k=1 ring exchange with acks,
// 32 B .. 1 MiB (paper §V-B).
#include "apps/microbench/microbench.hpp"
#include "bench_util.hpp"

using namespace ugnirt;
using namespace ugnirt::apps;

int main() {
  benchtool::Table table("fig10_kneighbor", "msg_bytes");
  table.add_column("uGNI_CHARM_us");
  table.add_column("MPI_CHARM_us");

  auto run = [](converse::LayerKind layer, std::uint64_t size) {
    converse::MachineOptions o;
    o.layer = layer;
    o.pes = 3;
    o.pes_per_node = 1;  // 3 cores on 3 different nodes (paper setup)
    return apps::bench::charm_kneighbor(o, static_cast<std::uint32_t>(size),
                                        /*k=*/1, /*iters=*/8);
  };

  for (std::uint64_t size : benchtool::size_sweep(32, 1024 * 1024)) {
    table.add_row(benchtool::size_label(size),
                  {to_us(run(converse::LayerKind::kUgni, size)),
                   to_us(run(converse::LayerKind::kMpi, size))});
  }
  table.print();
  std::printf("Paper shape: MPI-based CHARM++ needs about twice the time of\n"
              "the uGNI layer even at 1 MiB — the blocking MPI_Recv in the\n"
              "progress engine serializes concurrent receives, while the\n"
              "BTE keeps transferring under the uGNI layer.\n");
  return 0;
}
