// NAMD-shaped synthetic workload (paper §V-D substitution; see DESIGN.md).
//
// Reproduces NAMD's per-step communication and compute signature on the
// CHARM++ layer without the chemistry: cutoff-sized *patches* multicast
// atom positions (1-16 KiB messages) to *pair/self computes*, computes
// return forces, a PME-like phase does patch->pencil aggregation, two
// transpose all-to-alls among pencils, and force return; patches integrate
// and report.  Per-object compute costs are calibrated so ApoA1 (92,224
// atoms, PME every step) costs ~1.97 s of single-core work per step — the
// paper's 2-core baseline of ~985 ms/step (Table II).
//
// The measurement-based greedy load balancer runs after warmup steps, as
// NAMD's LB framework does.
#pragma once

#include <cstdint>
#include <string>

#include "converse/machine.hpp"
#include "trace/tracer.hpp"

namespace ugnirt::apps::namdmodel {

struct MolecularSystem {
  std::string name;
  int atoms = 0;
};

/// The paper's benchmark systems (§V-D).
MolecularSystem apoa1();   // 92,224 atoms
MolecularSystem dhfr();    // 23,558 atoms
MolecularSystem iapp();    // 5,570 atoms

struct NamdConfig {
  MolecularSystem system;
  int warmup_steps = 2;   // measured-load collection before LB
  int steps = 4;          // measured steps after LB
  /// Single-core work per atom per step (ns); 21,400 ns calibrates ApoA1
  /// to the paper's 2-core 985 ms/step with PME every step.
  SimTime ns_per_atom_step = 21'400;
  /// NAMD-like patch sizing; 480 atoms puts position/force messages at
  /// ~7.7 KiB — inside the paper's "1K to 16K" band and mostly below the
  /// MPI eager threshold, as on the real machine.
  int target_atoms_per_patch = 480;
};

struct NamdResult {
  double ms_per_step = 0;   // average measured virtual step time
  int patches = 0;
  int computes = 0;
  int pme_objects = 0;
  int migrations = 0;       // objects moved by the load balancer
  double lb_max_before = 0; // max PE load before/after LB (ns per step)
  double lb_max_after = 0;
  std::uint64_t messages = 0;
};

NamdResult run_namd_model(const converse::MachineOptions& options,
                          const NamdConfig& config,
                          trace::Tracer* tracer = nullptr);

}  // namespace ugnirt::apps::namdmodel
