// Figure 9(c): one-to-all latency on 16 nodes — PE 0 sends one message to
// a core on every remote node, each acks back; 32 B .. 1 MiB (paper §V-A).
#include "apps/microbench/microbench.hpp"
#include "bench_util.hpp"

using namespace ugnirt;
using namespace ugnirt::apps;

int main() {
  benchtool::Table table("fig09c_onetoall", "msg_bytes");
  table.add_column("uGNI_CHARM_us");
  table.add_column("MPI_CHARM_us");

  auto run = [](converse::LayerKind layer, std::uint64_t size) {
    converse::MachineOptions o;
    o.layer = layer;
    o.pes = 16;
    o.pes_per_node = 1;  // 16 nodes of Hopper, one active core per node
    return apps::bench::charm_onetoall(o, static_cast<std::uint32_t>(size));
  };

  for (std::uint64_t size : benchtool::size_sweep(32, 1024 * 1024)) {
    table.add_row(benchtool::size_label(size),
                  {to_us(run(converse::LayerKind::kUgni, size)),
                   to_us(run(converse::LayerKind::kMpi, size))});
  }
  table.print();
  std::printf("Paper shape: uGNI-based CHARM++ wins by a wide margin for\n"
              "small messages (less CPU per message); the gap closes as\n"
              "sizes grow.\n");
  return 0;
}
