// Sequential bitmask N-Queens solver.
//
// The classic three-bitmask backtracking kernel: `cols` marks occupied
// columns, `diag_l`/`diag_r` the occupied diagonals shifted per row.  Used
// (a) to solve subtrees below the parallelization threshold, (b) to count
// nodes so task compute cost can be charged in virtual time, and (c) to
// build the sampled subtree-cost model for board sizes too large to
// enumerate exactly on this container (see DESIGN.md).
#pragma once

#include <cstdint>

namespace ugnirt::apps::nqueens {

struct SolveResult {
  std::uint64_t solutions = 0;
  std::uint64_t nodes = 0;  // search-tree nodes visited (cost proxy)
};

/// Count all completions of a partial placement.  `row` rows are already
/// placed; the masks describe their attacks.  O(tree size), no allocation.
SolveResult solve(int n, int row, std::uint32_t cols, std::uint32_t diag_l,
                  std::uint32_t diag_r);

/// Full-board convenience: solve(n, 0, 0, 0, 0).
SolveResult solve_all(int n);

/// Known solution counts for validation (n in [1, 18]).
std::uint64_t known_solutions(int n);

}  // namespace ugnirt::apps::nqueens
