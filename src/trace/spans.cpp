#include "trace/spans.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <string>

#include "trace/metrics.hpp"
#include "util/config.hpp"

namespace ugnirt::trace {

const char* stage_name(Stage s) {
  switch (s) {
    case Stage::kSubmit:
      return "submit";
    case Stage::kAggEnqueue:
      return "agg_enqueue";
    case Stage::kAggFlush:
      return "agg_flush";
    case Stage::kGovDefer:
      return "gov_defer";
    case Stage::kGovAdmit:
      return "gov_admit";
    case Stage::kTransportPost:
      return "transport_post";
    case Stage::kRxArrive:
      return "rx_arrive";
    case Stage::kCqComplete:
      return "cq_complete";
    case Stage::kDeliver:
      return "deliver";
  }
  return "unknown";
}

// ---------------------------------------------------------------------------
// SpanConfig <-> Config ("span.*" keys / UGNIRT_SPAN_* env)
// ---------------------------------------------------------------------------

namespace {
constexpr const char* kSpanKeys[] = {"span.sample", "span.max_spans"};
}  // namespace

SpanConfig SpanConfig::from(const Config& cfg) {
  SpanConfig s;
  s.sample = static_cast<std::uint64_t>(
      cfg.get_int_or("span.sample", static_cast<std::int64_t>(s.sample)));
  s.max_spans = static_cast<std::uint64_t>(cfg.get_int_or(
      "span.max_spans", static_cast<std::int64_t>(s.max_spans)));
  return s;
}

void SpanConfig::export_to(Config& cfg) const {
  cfg.set("span.sample", std::to_string(sample));
  cfg.set("span.max_spans", std::to_string(max_spans));
}

const char* const* SpanConfig::config_keys(std::size_t* count) {
  *count = sizeof(kSpanKeys) / sizeof(kSpanKeys[0]);
  return kSpanKeys;
}

// ---------------------------------------------------------------------------
// SpanCollector
// ---------------------------------------------------------------------------

std::uint32_t SpanCollector::begin(std::int32_t src_pe, std::int32_t dst_pe,
                                   std::uint32_t bytes, SimTime t) {
  if (cfg_.sample == 0) return 0;
  const std::uint64_t seq = submit_seq_++;
  if (seq % cfg_.sample != 0) return 0;
  if (spans_.size() >= cfg_.max_spans) return 0;
  Span sp;
  sp.id = static_cast<std::uint32_t>(spans_.size()) + 1;
  sp.bytes = bytes;
  sp.src_pe = src_pe;
  sp.dst_pe = dst_pe;
  sp.marks.push_back(SpanMark{Stage::kSubmit, src_pe, t});
  spans_.push_back(std::move(sp));
  return spans_.back().id;
}

void SpanCollector::mark(std::uint32_t id, Stage stage, std::int32_t pe,
                         SimTime t) {
  if (id == 0 || id > spans_.size()) return;
  spans_[id - 1].marks.push_back(SpanMark{stage, pe, t});
}

const Span* SpanCollector::find(std::uint32_t id) const {
  if (id == 0 || id > spans_.size()) return nullptr;
  return &spans_[id - 1];
}

void SpanCollector::fill_histograms(MetricsRegistry& reg) const {
  // Reset-then-fill so a second flush of the same session stays idempotent.
  Histogram* stage_hist[kStageCount] = {};
  for (int i = 0; i < kStageCount; ++i) {
    stage_hist[i] = &reg.histogram(std::string("span.stage.") +
                                   stage_name(static_cast<Stage>(i)));
    stage_hist[i]->reset();
  }
  Histogram& total = reg.histogram("span.total_ns");
  total.reset();
  for (const Span& sp : spans_) {
    if (sp.marks.size() < 2) continue;  // never progressed past submit
    for (std::size_t i = 1; i < sp.marks.size(); ++i) {
      const SimTime d = sp.marks[i].t - sp.marks[i - 1].t;
      stage_hist[static_cast<int>(sp.marks[i].stage)]->add(
          static_cast<double>(d));
    }
    total.add(static_cast<double>(sp.marks.back().t - sp.marks.front().t));
  }
}

void SpanCollector::write_chrome_json(std::ostream& out) const {
  // Async ("b"/"n"/"e") events share an id namespace per category; each
  // span becomes one async track named by its size class.
  out << "{\"traceEvents\":[";
  bool first = true;
  for (const Span& sp : spans_) {
    if (sp.marks.empty()) continue;
    const double ts0 = static_cast<double>(sp.marks.front().t) / 1000.0;
    const double ts1 = static_cast<double>(sp.marks.back().t) / 1000.0;
    if (!first) out << ",";
    first = false;
    out << "{\"ph\":\"b\",\"cat\":\"span\",\"id\":" << sp.id
        << ",\"name\":\"msg " << sp.bytes << "B\",\"pid\":0,\"tid\":"
        << sp.src_pe << ",\"ts\":" << ts0 << ",\"args\":{\"src\":"
        << sp.src_pe << ",\"dst\":" << sp.dst_pe << ",\"bytes\":" << sp.bytes
        << "}}";
    for (std::size_t i = 1; i + 1 < sp.marks.size(); ++i) {
      const SpanMark& mk = sp.marks[i];
      out << ",{\"ph\":\"n\",\"cat\":\"span\",\"id\":" << sp.id
          << ",\"name\":\"" << stage_name(mk.stage)
          << "\",\"pid\":0,\"tid\":" << mk.pe
          << ",\"ts\":" << static_cast<double>(mk.t) / 1000.0 << "}";
    }
    out << ",{\"ph\":\"e\",\"cat\":\"span\",\"id\":" << sp.id
        << ",\"name\":\"msg " << sp.bytes << "B\",\"pid\":0,\"tid\":"
        << sp.marks.back().pe << ",\"ts\":" << ts1 << ",\"args\":{\"last\":\""
        << stage_name(sp.marks.back().stage) << "\"}}";
  }
  out << "]}";
}

void SpanCollector::write_breakdown(std::ostream& out) const {
  Histogram per_stage[kStageCount];
  Histogram total;
  std::uint64_t complete = 0;
  for (const Span& sp : spans_) {
    if (sp.marks.size() < 2) continue;
    for (std::size_t i = 1; i < sp.marks.size(); ++i) {
      per_stage[static_cast<int>(sp.marks[i].stage)].add(
          static_cast<double>(sp.marks[i].t - sp.marks[i - 1].t));
    }
    total.add(static_cast<double>(sp.marks.back().t - sp.marks.front().t));
    ++complete;
  }
  out << "== span breakdown (" << complete << " of " << spans_.size()
      << " sampled spans progressed past submit) ==\n";
  if (complete == 0) return;
  out << "  " << std::left << std::setw(16) << "stage" << std::right
      << std::setw(10) << "count" << std::setw(12) << "mean_ns"
      << std::setw(12) << "p50_ns" << std::setw(12) << "p99_ns"
      << std::setw(12) << "sum_ns" << std::setw(8) << "share" << "\n";
  const double grand = total.sum() > 0 ? total.sum() : 1.0;
  for (int i = 0; i < kStageCount; ++i) {
    const Histogram& h = per_stage[i];
    if (h.count() == 0) continue;
    out << "  " << std::left << std::setw(16)
        << stage_name(static_cast<Stage>(i)) << std::right << std::setw(10)
        << h.count() << std::setw(12) << std::llround(h.mean())
        << std::setw(12) << std::llround(h.p50()) << std::setw(12)
        << std::llround(h.p99()) << std::setw(12)
        << std::llround(h.sum()) << std::setw(7) << std::fixed
        << std::setprecision(1) << 100.0 * h.sum() / grand << "%"
        << std::defaultfloat << "\n";
  }
  out << "  " << std::left << std::setw(16) << "end-to-end" << std::right
      << std::setw(10) << total.count() << std::setw(12)
      << std::llround(total.mean()) << std::setw(12)
      << std::llround(total.p50()) << std::setw(12)
      << std::llround(total.p99()) << std::setw(12)
      << std::llround(total.sum()) << std::setw(8) << "100.0%" << "\n"
      << std::left;
}

void SpanCollector::clear() {
  spans_.clear();
  submit_seq_ = 0;
}

// ---------------------------------------------------------------------------
// Global installation
// ---------------------------------------------------------------------------

namespace detail {
SpanCollector* g_spans = nullptr;
}

void set_span_collector(SpanCollector* c) { detail::g_spans = c; }

std::uint32_t span_begin(std::int32_t src_pe, std::int32_t dst_pe,
                         std::uint32_t bytes, SimTime t) {
  SpanCollector* c = detail::g_spans;
  return c ? c->begin(src_pe, dst_pe, bytes, t) : 0;
}

void span_mark(std::uint32_t id, Stage stage, std::int32_t pe, SimTime t) {
  SpanCollector* c = detail::g_spans;
  if (c) c->mark(id, stage, pe, t);
}

}  // namespace ugnirt::trace
