# Empty dependencies file for table1_nqueens.
# This may be replaced when dependencies are built.
