// minimd: a miniature molecular-dynamics application on the CHARM++ layer.
//
// Stands in for NAMD in the runnable examples (the full NAMD cannot be
// reproduced here; see DESIGN.md).  It keeps NAMD's structure at toy scale:
// space is decomposed into cutoff-sized *patches* (a chare array); every
// step each patch sends its atom positions to its 26 neighbors, computes
// Lennard-Jones forces between its own atoms and all atoms it heard about,
// integrates with velocity Verlet, migrates atoms that crossed patch
// boundaries, and contributes energy to a reduction.  The physics is real
// (doubles, periodic boundaries, energy bookkeeping); in addition each
// patch charges modeled per-pair compute time so the communication/compute
// ratio in virtual time matches a 2012-era core.
#pragma once

#include <cstdint>
#include <vector>

#include "converse/machine.hpp"

namespace ugnirt::apps::minimd {

struct Vec3 {
  double x = 0, y = 0, z = 0;
};

struct MdConfig {
  int patches_x = 3, patches_y = 3, patches_z = 3;
  double patch_len = 5.0;       // reduced units; also the force cutoff
  int atoms_per_patch = 16;     // initialized on a jittered lattice
  double dt = 0.001;
  int steps = 20;
  double epsilon = 1.0;         // LJ well depth
  double sigma = 1.0;           // LJ length scale
  double initial_temp = 0.8;    // reduced temperature for velocity init
  SimTime ns_per_pair = 40;     // modeled cost per pair interaction
  std::uint64_t seed = 2012;
  int energy_every = 1;         // reduction cadence
};

struct MdResult {
  int steps = 0;
  std::vector<double> energy;       // total energy per sampled step
  double max_energy_drift = 0;      // |E - E0| / |E0| over the run
  Vec3 total_momentum{};            // should stay ~0
  SimTime elapsed = 0;              // virtual time for the whole run
  SimTime per_step = 0;             // virtual ms/step equivalent in ns
  std::uint64_t migrations = 0;     // atoms that changed patch
  std::uint64_t pair_interactions = 0;
};

/// Run the simulation on a machine built from `options`.
MdResult run_minimd(const converse::MachineOptions& options,
                    const MdConfig& config);

}  // namespace ugnirt::apps::minimd
