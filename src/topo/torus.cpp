#include "topo/torus.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdlib>

namespace ugnirt::topo {

Torus3D::Torus3D(int dim_x, int dim_y, int dim_z)
    : dims_{dim_x, dim_y, dim_z} {
  assert(dim_x >= 1 && dim_y >= 1 && dim_z >= 1);
}

Torus3D Torus3D::for_nodes(int nodes) {
  assert(nodes >= 1);
  if (nodes <= 2) return Torus3D(1, 1, nodes);
  // Jobs on a real XE6 land on a slice of a genuinely 3-D torus with full
  // 6-way connectivity; a degenerate 1-D factorization (e.g. 5 = 1x1x5)
  // would starve the job of links it physically has.  Choose the smallest
  // near-cubic torus with every dimension >= 2 that holds `nodes`; slots
  // beyond `nodes` are simply unoccupied.
  int best_x = 2, best_y = 2, best_z = (nodes + 3) / 4;
  long best_volume = 4L * best_z;
  for (int x = 2; x * x * x <= 4 * nodes; ++x) {
    for (int y = x; x * y * y <= 4 * nodes; ++y) {
      int z = std::max(y, (nodes + x * y - 1) / (x * y));
      long volume = static_cast<long>(x) * y * z;
      if (volume < best_volume ||
          (volume == best_volume && z - x < best_z - best_x)) {
        best_volume = volume;
        best_x = x;
        best_y = y;
        best_z = z;
      }
    }
  }
  return Torus3D(best_x, best_y, best_z);
}

Coord Torus3D::coord_of(int node) const {
  assert(node >= 0 && node < nodes());
  Coord c;
  c.x = node % dims_[0];
  c.y = (node / dims_[0]) % dims_[1];
  c.z = node / (dims_[0] * dims_[1]);
  return c;
}

int Torus3D::node_of(const Coord& c) const {
  assert(c.x >= 0 && c.x < dims_[0]);
  assert(c.y >= 0 && c.y < dims_[1]);
  assert(c.z >= 0 && c.z < dims_[2]);
  return c.x + dims_[0] * (c.y + dims_[1] * c.z);
}

int Torus3D::ring_delta(int a, int b, int n) {
  int fwd = (b - a + n) % n;   // hops going positive
  int bwd = n - fwd;           // hops going negative
  if (fwd == 0) return 0;
  return (fwd <= bwd) ? fwd : -bwd;
}

int Torus3D::hops(int from, int to) const {
  Coord a = coord_of(from);
  Coord b = coord_of(to);
  return std::abs(ring_delta(a.x, b.x, dims_[0])) +
         std::abs(ring_delta(a.y, b.y, dims_[1])) +
         std::abs(ring_delta(a.z, b.z, dims_[2]));
}

int Torus3D::neighbor(int node, int dim, bool positive) const {
  Coord c = coord_of(node);
  int* axis = dim == 0 ? &c.x : dim == 1 ? &c.y : &c.z;
  int n = dims_[dim];
  *axis = (*axis + (positive ? 1 : n - 1)) % n;
  return node_of(c);
}

std::vector<LinkId> Torus3D::route(int from, int to) const {
  return route_order(from, to, {0, 1, 2});
}

std::vector<LinkId> Torus3D::route_order(int from, int to,
                                         const std::array<int, 3>& order)
    const {
  std::vector<LinkId> links;
  if (from == to) return links;
  Coord a = coord_of(from);
  Coord b = coord_of(to);
  int cur = from;
  const int deltas[3] = {ring_delta(a.x, b.x, dims_[0]),
                         ring_delta(a.y, b.y, dims_[1]),
                         ring_delta(a.z, b.z, dims_[2])};
  for (int dim : order) {
    int d = deltas[dim];
    bool positive = d > 0;
    for (int step = 0; step < std::abs(d); ++step) {
      links.push_back(LinkId{cur, static_cast<std::uint8_t>(dim), positive});
      cur = neighbor(cur, dim, positive);
    }
  }
  assert(cur == to);
  return links;
}

int Torus3D::diameter() const {
  return dims_[0] / 2 + dims_[1] / 2 + dims_[2] / 2;
}

}  // namespace ugnirt::topo
