// Congestion-control subsystem tests: FlowConfig round-trip + env
// overrides, the EWMA congestion estimator, the AIMD injection governor
// (admission, pacing, threshold adaptation), LinkSchedule reservation
// properties (sorted/bounded intervals, backfill past stale cursors),
// congestion-aware adaptive routing, the hotspot end-to-end path with
// pacing on (zero loss, stalls drained), the fault-matrix rerun with
// flow control enabled, and seeded determinism of the traced timelines.
#include <gtest/gtest.h>

#include <array>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "converse/machine.hpp"
#include "fault/fault.hpp"
#include "flowcontrol/config.hpp"
#include "flowcontrol/flowcontrol.hpp"
#include "gemini/network.hpp"
#include "lrts/runtime.hpp"
#include "trace/events.hpp"
#include "trace/metrics.hpp"
#include "util/config.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace ugnirt {
namespace {

using converse::CmiAlloc;
using converse::CmiFree;
using converse::CmiMyPe;
using converse::CmiSetHandler;
using converse::CmiSyncSendAndFree;
using converse::kCmiHeaderBytes;
using converse::LayerKind;
using converse::MachineOptions;
using flowcontrol::CongestionEstimator;
using flowcontrol::FlowConfig;
using flowcontrol::InjectionGovernor;

// ----------------------------------------------------------------- config ----

TEST(FlowConfig, RoundTrip) {
  FlowConfig p;
  p.enable = true;
  p.ewma_alpha = 0.25;
  p.hot_threshold = 0.4;
  p.window_min = 3;
  p.window_max = 48;
  p.window_start = 12;
  p.aimd_increase = 2.0;
  p.aimd_decrease = 0.75;
  p.pace_rendezvous = false;
  p.adaptive_routing = true;
  p.adapt_thresholds = false;
  p.sample_period_ns = 12345;
  Config cfg;
  p.export_to(cfg);
  FlowConfig q = FlowConfig::from(cfg);
  EXPECT_TRUE(q.enable);
  EXPECT_DOUBLE_EQ(q.ewma_alpha, 0.25);
  EXPECT_DOUBLE_EQ(q.hot_threshold, 0.4);
  EXPECT_EQ(q.window_min, 3u);
  EXPECT_EQ(q.window_max, 48u);
  EXPECT_EQ(q.window_start, 12u);
  EXPECT_DOUBLE_EQ(q.aimd_increase, 2.0);
  EXPECT_DOUBLE_EQ(q.aimd_decrease, 0.75);
  EXPECT_FALSE(q.pace_rendezvous);
  EXPECT_TRUE(q.adaptive_routing);
  EXPECT_FALSE(q.adapt_thresholds);
  EXPECT_EQ(q.sample_period_ns, 12345);
}

// Hostile overrides cannot wedge the governor: the window floor stays
// >= 1 and the start is clamped into [min, max].
TEST(FlowConfig, ClampsWindowBounds) {
  Config cfg;
  cfg.set("flow.window_min", "0");
  cfg.set("flow.window_max", "0");
  cfg.set("flow.window_start", "99");
  FlowConfig f = FlowConfig::from(cfg);
  EXPECT_GE(f.window_min, 1u);
  EXPECT_GE(f.window_max, f.window_min);
  EXPECT_GE(f.window_start, f.window_min);
  EXPECT_LE(f.window_start, f.window_max);
}

TEST(FlowConfig, EnvOverridesApplyInMakeMachine) {
  ::setenv("UGNIRT_FLOW_ENABLE", "1", 1);
  ::setenv("UGNIRT_FLOW_WINDOW_START", "4", 1);
  ::setenv("UGNIRT_FLOW_ADAPTIVE_ROUTING", "1", 1);
  MachineOptions o;
  o.pes = 2;
  auto m = lrts::make_machine(LayerKind::kUgni, o);
  ::unsetenv("UGNIRT_FLOW_ENABLE");
  ::unsetenv("UGNIRT_FLOW_WINDOW_START");
  ::unsetenv("UGNIRT_FLOW_ADAPTIVE_ROUTING");
  EXPECT_TRUE(m->options().flow.enable);
  EXPECT_EQ(m->options().flow.window_start, 4u);
  EXPECT_TRUE(m->options().flow.adaptive_routing);
  EXPECT_NE(m->congestion_estimator(), nullptr);
  EXPECT_EQ(m->network().congestion_estimator(), m->congestion_estimator());
}

// Defaults preserve stock behavior: no estimator is even constructed and
// the metric dump carries no flow.* rows (byte-compat with the seed).
TEST(FlowConfig, DisabledByDefaultLeavesStockMachine) {
  MachineOptions o;
  o.pes = 2;
  auto m = lrts::make_machine(LayerKind::kUgni, o);
  EXPECT_FALSE(m->options().flow.enable);
  EXPECT_EQ(m->congestion_estimator(), nullptr);
  EXPECT_EQ(m->network().congestion_estimator(), nullptr);
  m->collect_metrics();
  std::ostringstream csv;
  m->metrics().write_csv(csv);
  EXPECT_EQ(csv.str().find("flow."), std::string::npos);
  EXPECT_EQ(csv.str().find("net.adaptive_reroutes"), std::string::npos);
}

// -------------------------------------------------------------- estimator ----

TEST(FlowEstimator, WaitFreeTrafficKeepsLoadZero) {
  FlowConfig cfg;
  CongestionEstimator est(cfg, 6, 1);
  for (int i = 0; i < 100; ++i) {
    est.on_link_reserve(0, 0, /*wait_ns=*/0, /*duration_ns=*/1000, i * 1000);
  }
  EXPECT_DOUBLE_EQ(est.link_load(0), 0.0);
  EXPECT_DOUBLE_EQ(est.node_load(0), 0.0);
  EXPECT_FALSE(est.node_hot(0));
  EXPECT_EQ(est.samples(), 100u);
}

TEST(FlowEstimator, SustainedQueueingConvergesTowardWaitFraction) {
  FlowConfig cfg;  // alpha = 0.125
  CongestionEstimator est(cfg, 6, 1);
  // Every reservation waits 3x its service time: sample = 0.75.
  double prev = 0.0;
  for (int i = 0; i < 80; ++i) {
    est.on_link_reserve(2, 0, /*wait_ns=*/3000, /*duration_ns=*/1000,
                        i * 1000);
    EXPECT_GT(est.link_load(2), prev);  // monotone approach from below
    prev = est.link_load(2);
  }
  EXPECT_NEAR(est.link_load(2), 0.75, 0.01);
  EXPECT_NEAR(est.node_load(0), 0.75, 0.01);
  EXPECT_TRUE(est.node_hot(0));
  // The untouched link stays cold.
  EXPECT_DOUBLE_EQ(est.link_load(0), 0.0);
}

TEST(FlowEstimator, HotRecoversWhenCongestionClears) {
  FlowConfig cfg;
  cfg.ewma_alpha = 0.25;
  CongestionEstimator est(cfg, 6, 2);
  for (int i = 0; i < 40; ++i) {
    est.on_link_reserve(1, 1, 1000, 1000, i * 1000);  // sample = 0.5
  }
  ASSERT_TRUE(est.node_hot(1));
  for (int i = 0; i < 40; ++i) {
    est.on_link_reserve(1, 1, 0, 1000, (40 + i) * 1000);  // sample = 0
  }
  EXPECT_FALSE(est.node_hot(1));
  EXPECT_LT(est.link_load(1), 0.01);
}

// --------------------------------------------------------------- governor ----

TEST(FlowGovernor, AdmitsUpToWindowThenStalls) {
  FlowConfig cfg;
  cfg.window_start = 4;
  auto gov_p = flowcontrol::make_governor(cfg, nullptr, 2);
  InjectionGovernor& gov = *gov_p;
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(gov.would_admit(0));
    EXPECT_TRUE(gov.try_acquire(0, 1, 4096, i));
  }
  EXPECT_EQ(gov.outstanding(0), 4u);
  EXPECT_FALSE(gov.would_admit(0));
  EXPECT_FALSE(gov.try_acquire(0, 1, 4096, 99));
  // Windows are per PE: PE 1 is unaffected.
  EXPECT_TRUE(gov.would_admit(1));
  // A completion frees exactly one slot.
  gov.on_complete(0, 0, 100);
  EXPECT_EQ(gov.outstanding(0), 3u);
  EXPECT_TRUE(gov.would_admit(0));
}

TEST(FlowGovernor, PacingOffNeverRefuses) {
  FlowConfig cfg;
  cfg.window_start = 1;
  cfg.pace_rendezvous = false;
  auto gov_p = flowcontrol::make_governor(cfg, nullptr, 1);
  InjectionGovernor& gov = *gov_p;
  for (int i = 0; i < 32; ++i) {
    EXPECT_TRUE(gov.try_acquire(0, 0, 128, i));
  }
  EXPECT_EQ(gov.outstanding(0), 32u);
}

TEST(FlowGovernor, CoolCompletionsGrowWindowAdditively) {
  FlowConfig cfg;
  cfg.window_start = 2;
  cfg.window_max = 8;
  auto gov_p = flowcontrol::make_governor(cfg, nullptr, 1);  // no estimator
  InjectionGovernor& gov = *gov_p;  // (null estimator: always cool)
  // cwnd += increase/cwnd per completion: one window's worth of
  // completions adds ~1 to the window (classic AIMD congestion
  // avoidance), so it takes a while — but it must reach the cap.
  for (int i = 0; i < 200; ++i) {
    gov.note_post(0);
    gov.on_complete(0, 0, i);
  }
  EXPECT_EQ(gov.window(0), cfg.window_max);
}

TEST(FlowGovernor, HotCompletionsShrinkWindowMultiplicativelyToFloor) {
  FlowConfig cfg;
  cfg.window_start = 32;
  cfg.window_min = 2;
  CongestionEstimator est(cfg, 6, 1);
  for (int i = 0; i < 40; ++i) {
    est.on_link_reserve(0, 0, 3000, 1000, i * 1000);  // node 0 hot
  }
  ASSERT_TRUE(est.node_hot(0));
  auto gov_p = flowcontrol::make_governor(cfg, &est, 1);
  InjectionGovernor& gov = *gov_p;
  gov.note_post(0);
  gov.on_complete(0, 0, 0);
  EXPECT_EQ(gov.window(0), 16u);  // 32 * 0.5
  gov.on_complete(0, 0, 1);
  gov.on_complete(0, 0, 2);
  gov.on_complete(0, 0, 3);
  EXPECT_EQ(gov.window(0), 2u);  // floored at window_min
  gov.on_complete(0, 0, 4);
  EXPECT_EQ(gov.window(0), 2u);  // never below the floor
}

TEST(FlowGovernor, ThresholdsAdaptOnlyWhileHot) {
  FlowConfig cfg;
  CongestionEstimator est(cfg, 6, 2);
  for (int i = 0; i < 40; ++i) {
    est.on_link_reserve(0, 0, 3000, 1000, i * 1000);  // node 0: load ~0.75
  }
  ASSERT_GE(est.node_load(0), 2 * cfg.hot_threshold);
  ASSERT_FALSE(est.node_hot(1));
  auto gov_p = flowcontrol::make_governor(cfg, &est, 1);
  InjectionGovernor& gov = *gov_p;
  // Cool destination: the configured constants pass through untouched.
  EXPECT_EQ(gov.eager_cap(1024, 1), 1024u);
  EXPECT_EQ(gov.rdma_threshold(16384, 1), 16384u);
  // Very hot destination: eager cap quarters, FMA/BTE boundary halves.
  EXPECT_EQ(gov.eager_cap(1024, 0), 256u);
  EXPECT_EQ(gov.rdma_threshold(16384, 0), 8192u);
  // Floors: tiny bases never adapt below the protocol minima.
  EXPECT_EQ(gov.eager_cap(136, 0), 128u);
  EXPECT_EQ(gov.rdma_threshold(1024, 0), 1024u);
  // Adaptation is a knob.
  FlowConfig fixed = cfg;
  fixed.adapt_thresholds = false;
  auto gov2_p = flowcontrol::make_governor(fixed, &est, 1);
  InjectionGovernor& gov2 = *gov2_p;
  EXPECT_EQ(gov2.eager_cap(1024, 0), 1024u);
  EXPECT_EQ(gov2.rdma_threshold(16384, 0), 16384u);
}

// ----------------------------------------------- LinkSchedule properties ----

// Random seeded reservation sequences preserve the schedule invariants:
// intervals sorted by start, non-overlapping, bounded by kMaxIntervals,
// and every returned start honors `earliest`.
TEST(LinkScheduleProperty, InvariantsUnderRandomReservations) {
  for (std::uint64_t seed : {1ull, 42ull, 0xBEEFull, 0xF10ull}) {
    Rng rng(seed);
    gemini::LinkSchedule sched;
    SimTime clock = 0;
    for (int i = 0; i < 500; ++i) {
      // A mix of in-order, stale (behind the clock) and far-future
      // cursors, like concurrent PEs with skewed local times produce.
      const SimTime earliest =
          std::max<SimTime>(0, clock + static_cast<SimTime>(
                                            rng.next_below(20000)) -
                                   5000);
      const SimTime duration = 1 + rng.next_below(2000);
      bool waited = false;
      const SimTime start = sched.reserve(earliest, duration, &waited);
      EXPECT_GE(start, earliest);
      if (!waited) {
        EXPECT_EQ(start, earliest);
      }
      clock += rng.next_below(1500);

      const auto& iv = sched.intervals();
      ASSERT_LE(iv.size(), gemini::LinkSchedule::kMaxIntervals);
      for (std::size_t k = 0; k < iv.size(); ++k) {
        EXPECT_LT(iv[k].start, iv[k].end);
        if (k > 0) {
          EXPECT_GT(iv[k].start, iv[k - 1].end);  // strict gaps
        }
      }
    }
    EXPECT_EQ(sched.reservations(), 500u);
  }
}

// Backfill: a reservation parked far in the future must not block the
// link for earlier traffic — a stale cursor slots into the idle gap in
// front of it without waiting.
TEST(LinkScheduleProperty, StaleCursorBackfillsBeforeFutureReservation) {
  gemini::LinkSchedule sched;
  bool waited = false;
  EXPECT_EQ(sched.reserve(1'000'000, 5000, &waited), 1'000'000);
  EXPECT_FALSE(waited);
  // An at-time-0 sender fits long before the future-dated interval.
  waited = false;
  EXPECT_EQ(sched.reserve(0, 5000, &waited), 0);
  EXPECT_FALSE(waited);
  // A request that does NOT fit in the gap queues behind the future one.
  waited = false;
  EXPECT_EQ(sched.reserve(999'000, 5000, &waited), 1'005'000);
  EXPECT_TRUE(waited);
  EXPECT_EQ(sched.waits(), 1u);
}

// Reserving past every existing interval always starts exactly at
// `earliest` — pruning may over-reserve inside the busy span but must
// never extend it rightward.
TEST(LinkScheduleProperty, ReservePastAllIntervalsStartsImmediately) {
  Rng rng(7);
  gemini::LinkSchedule sched;
  SimTime horizon = 0;
  bool waited = false;
  for (int i = 0; i < 100; ++i) {
    const SimTime duration = 1 + rng.next_below(3000);
    const SimTime earliest = horizon + 1 + rng.next_below(500);
    waited = false;
    EXPECT_EQ(sched.reserve(earliest, duration, &waited), earliest);
    EXPECT_FALSE(waited);
    horizon = earliest + duration;
  }
  EXPECT_EQ(sched.waits(), 0u);
}

// --------------------------------------------------------- traffic helper ----

MachineOptions flow_options(int pes, bool enable = true) {
  MachineOptions o;
  o.layer = LayerKind::kUgni;
  o.pes = pes;
  o.pes_per_node = 1;  // every PE has its own NIC and torus links
  o.flow.enable = enable;
  return o;
}

/// Hotspot: every PE != 0 streams `msgs` rendezvous-sized messages at PE
/// 0 (the paper's one-to-all inverse — the congestion pattern flow
/// control targets).  Returns messages received at PE 0.
int run_hotspot(converse::Machine& m, int msgs, std::uint32_t payload) {
  const int pes = m.num_pes();
  int received = 0;
  int h = m.register_handler([&](void* msg) {
    ++received;
    CmiFree(msg);
  });
  const std::uint32_t total = payload + kCmiHeaderBytes;
  for (int pe = 1; pe < pes; ++pe) {
    m.start(pe, [&m, msgs, total, h] {
      for (int i = 0; i < msgs; ++i) {
        void* msg = CmiAlloc(total);
        CmiSetHandler(msg, h);
        CmiSyncSendAndFree(0, total, msg);
      }
    });
  }
  m.run();
  return received;
}

// ------------------------------------------------------ end-to-end pacing ----

// A tight window under hotspot load forces injection stalls; every
// deferred GET must still drain (no loss, no deadlock) and the flow.*
// observability surface must be populated.
TEST(FlowEndToEnd, HotspotPacingStallsButLosesNothing) {
  trace::EventTracer tracer(1u << 18);
  trace::set_tracer(&tracer);
  auto o = flow_options(8);
  o.flow.window_min = 1;
  o.flow.window_start = 1;
  o.flow.window_max = 2;
  constexpr int kMsgs = 6;
  auto m = lrts::make_machine(LayerKind::kUgni, o);
  const int received = run_hotspot(*m, kMsgs, 16 * 1024);
  m->collect_metrics();
  trace::set_tracer(nullptr);
  EXPECT_EQ(received, 7 * kMsgs);

  EXPECT_GT(m->metrics().counter("flow.injection_stalls").value(), 0u);
  EXPECT_GT(m->metrics().counter("flow.admits").value(), 0u);
  EXPECT_GT(m->metrics().counter("flow.samples").value(), 0u);
  EXPECT_GT(tracer.count_of(trace::Ev::kInjectionStall), 0u);
  EXPECT_GT(tracer.count_of(trace::Ev::kCongestionSample), 0u);

  std::ostringstream csv;
  m->metrics().write_csv(csv);
  const std::string s = csv.str();
  for (const char* name :
       {"flow.samples", "flow.injection_stalls", "flow.admits",
        "flow.window_avg", "flow.max_link_load", "net.adaptive_reroutes"}) {
    EXPECT_NE(s.find(name), std::string::npos) << "metric " << name;
  }
}

// Adaptive routing steers minimal routes off loaded links under hotspot
// pressure — and stays strictly on stock routes when the knob is off.
TEST(FlowEndToEnd, AdaptiveRoutingReroutesUnderHotspot) {
  for (bool adaptive : {false, true}) {
    auto o = flow_options(12);
    o.flow.adaptive_routing = adaptive;
    auto m = lrts::make_machine(LayerKind::kUgni, o);
    const int received = run_hotspot(*m, 8, 16 * 1024);
    EXPECT_EQ(received, 11 * 8);
    const auto& st = m->network().stats();
    if (adaptive) {
      EXPECT_GT(st.adaptive_reroutes, 0u);
    } else {
      EXPECT_EQ(st.adaptive_reroutes, 0u);
    }
  }
}

// ------------------------------------------------------------ fault matrix ---

fault::FaultPlan base_plan() {
  fault::FaultPlan p;
  p.enabled = true;
  p.seed = 0xF10;
  return p;
}

/// k-neighbor exchange (same shape as the aggregation suite) returning
/// per-PE receive counts.
std::vector<int> run_kneighbor(converse::Machine& m, int k, int msgs,
                               std::uint32_t payload) {
  const int pes = m.num_pes();
  std::vector<int> received(static_cast<std::size_t>(pes), 0);
  int h = m.register_handler([&](void* msg) {
    received[static_cast<std::size_t>(CmiMyPe())]++;
    CmiFree(msg);
  });
  const std::uint32_t total = payload + kCmiHeaderBytes;
  for (int pe = 0; pe < pes; ++pe) {
    m.start(pe, [&m, pe, pes, k, msgs, total, h] {
      for (int i = 0; i < msgs; ++i) {
        for (int d = 1; d <= k; ++d) {
          for (int dest : {(pe + d) % pes, (pe - d + pes) % pes}) {
            void* msg = CmiAlloc(total);
            CmiSetHandler(msg, h);
            CmiSyncSendAndFree(dest, total, msg);
          }
        }
      }
    });
  }
  m.run();
  return received;
}

// The full 7-class fault matrix reruns with flow control AND adaptive
// routing on: pacing defers GETs and rerouting changes link orders, but
// retry/backoff must still deliver everything exactly once.
TEST(FlowFault, MatrixZeroLossWithFlowControlEnabled) {
  struct Case {
    const char* label;
    fault::FaultPlan plan;
  };
  std::vector<Case> cases;
  {
    Case c{"post_error", base_plan()};
    c.plan.p_post_error = 0.3;
    cases.push_back(c);
  }
  {
    Case c{"reg_error", base_plan()};
    c.plan.p_reg_error = 0.3;
    cases.push_back(c);
  }
  {
    Case c{"smsg_error", base_plan()};
    c.plan.p_smsg_error = 0.3;
    cases.push_back(c);
  }
  {
    Case c{"cq_overrun", base_plan()};
    c.plan.p_cq_overrun = 0.05;
    cases.push_back(c);
  }
  {
    Case c{"smsg_starve", base_plan()};
    c.plan.p_smsg_starve = 0.2;
    c.plan.smsg_starve_ns = 20000;
    cases.push_back(c);
  }
  {
    Case c{"link_degrade", base_plan()};
    c.plan.p_link_degrade = 0.3;
    c.plan.link_slowdown = 8.0;
    cases.push_back(c);
  }
  {
    Case c{"link_blackout", base_plan()};
    c.plan.p_link_blackout = 0.2;
    c.plan.link_blackout_ns = 100000;
    cases.push_back(c);
  }
  for (const Case& fc : cases) {
    auto o = flow_options(8);
    o.flow.adaptive_routing = true;
    o.flow.window_start = 2;
    o.fault = fc.plan;
    constexpr int kK = 2, kMsgs = 4;
    auto m = lrts::make_machine(LayerKind::kUgni, o);
    // 4 KiB payloads: rendezvous-size, so the faulted wire carries
    // governed GETs, not just SMSG.
    auto received = run_kneighbor(*m, kK, kMsgs, 4096);
    for (int pe = 0; pe < 8; ++pe) {
      EXPECT_EQ(received[static_cast<std::size_t>(pe)], 2 * kK * kMsgs)
          << fc.label << " pe " << pe;
    }
  }
}

// ------------------------------------------------------------ determinism ----

std::string traced_flow_run(std::uint64_t seed) {
  trace::EventTracer tracer(1u << 18);
  trace::set_tracer(&tracer);
  auto o = flow_options(8);
  o.flow.adaptive_routing = true;
  o.flow.window_min = 1;
  o.flow.window_start = 1;
  o.flow.window_max = 4;
  o.fault = base_plan();
  o.fault.seed = seed;
  o.fault.p_post_error = 0.2;
  o.fault.p_link_degrade = 0.2;
  o.fault.link_slowdown = 4.0;
  auto m = lrts::make_machine(LayerKind::kUgni, o);
  const int received = run_hotspot(*m, 4, 8 * 1024);
  EXPECT_EQ(received, 7 * 4);
  m->collect_metrics();
  trace::set_tracer(nullptr);
  std::ostringstream out;
  tracer.write_csv(out);          // full virtual-time event timeline
  m->metrics().write_csv(out);    // plus the counter surface
  return out.str();
}

// Same seeds + same flow config => identical virtual-time timelines:
// estimator and governor state are pure functions of the deterministic
// reserve/completion sequences, so congestion control cannot introduce
// run-to-run divergence.
TEST(FlowDeterminism, SameSeedSameEventTraceWithFlowControl) {
  const std::string a = traced_flow_run(0xF10);
  const std::string b = traced_flow_run(0xF10);
  EXPECT_EQ(a, b);
  EXPECT_NE(a.find("injection_stall"), std::string::npos);
}

}  // namespace
}  // namespace ugnirt
