# Empty dependencies file for ugnirt_topo.
# This may be replaced when dependencies are built.
