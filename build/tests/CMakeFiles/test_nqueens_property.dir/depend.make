# Empty dependencies file for test_nqueens_property.
# This may be replaced when dependencies are built.
