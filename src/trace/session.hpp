// Process-wide trace session, driven by environment knobs:
//
//   UGNIRT_TRACE=1            enable tracing (unset / empty / "0" = off)
//   UGNIRT_TRACE_FILE=base    output file base (default "ugnirt_trace")
//   UGNIRT_TRACE_RING=N       per-PE event-ring capacity (default 65536)
//   UGNIRT_SPAN_SAMPLE=N      sample every Nth message's lifecycle span
//                             (activates the session even without
//                             UGNIRT_TRACE; 0/unset = spans off)
//   UGNIRT_SPAN_MAX_SPANS=N   retained-span cap (default 1M)
//
// When active, the session installs a global EventTracer (see events.hpp)
// — plus a global SpanCollector when span sampling is on (spans.hpp) —
// and accumulates per-Machine MetricsRegistry snapshots that Machines
// absorb into it at destruction.  At process exit — or on an explicit
// flush() — it writes:
//
//   <base>.trace.json    Chrome trace_event JSON (Perfetto-loadable)
//   <base>.events.csv    flat event rows
//   <base>.metrics.csv   metric,kind,count,sum,mean,min,max,p50,p90,p99
//   <base>.metrics.json  the same registry as one JSON object
//   <base>.spans.json    Chrome async spans (only when sampling is on)
//
// plus a human-readable metrics table — and, with spans, a critical-path
// breakdown — on stderr.  benchtool::Table points the base at the bench
// name so each figure gets its own trace files.
#pragma once

#include <iosfwd>
#include <memory>
#include <string>

#include "trace/events.hpp"
#include "trace/metrics.hpp"
#include "trace/spans.hpp"

namespace ugnirt::trace {

class TraceSession {
 public:
  /// The singleton, or nullptr when UGNIRT_TRACE is off.  The first call
  /// reads the environment; later calls are a plain pointer load.
  static TraceSession* active();

  EventTracer& events() { return events_; }
  MetricsRegistry& metrics() { return metrics_; }

  /// Non-null when span sampling is active (UGNIRT_SPAN_SAMPLE > 0).
  SpanCollector* span_collector() { return spans_.get(); }

  /// Fold a Machine's registry into the session-wide aggregate.
  void absorb(const MetricsRegistry& m) { metrics_.merge_from(m); }

  /// Redirect output files to `<base>.trace.json` etc.  An explicit
  /// UGNIRT_TRACE_FILE in the environment wins over this, so a user's
  /// chosen name is not overridden by the bench harness.  No effect on
  /// anything already flushed.
  void set_output_base(const std::string& base) {
    if (!base_from_env_) output_base_ = base;
  }
  const std::string& output_base() const { return output_base_; }

  /// Write all output files and the stderr table now.  Idempotent per
  /// accumulated state; called automatically at process exit.
  void flush();

  ~TraceSession();

  TraceSession(const TraceSession&) = delete;
  TraceSession& operator=(const TraceSession&) = delete;

 private:
  TraceSession(std::size_t ring_capacity, std::string output_base,
               bool base_from_env, SpanConfig span_cfg);

  EventTracer events_;
  MetricsRegistry metrics_;
  std::unique_ptr<SpanCollector> spans_;  // null when sampling is off
  std::string output_base_;
  bool base_from_env_ = false;
  bool flushed_ = false;
};

}  // namespace ugnirt::trace
