file(REMOVE_RECURSE
  "libugnirt_sim.a"
)
