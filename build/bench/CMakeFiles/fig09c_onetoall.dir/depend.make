# Empty dependencies file for fig09c_onetoall.
# This may be replaced when dependencies are built.
