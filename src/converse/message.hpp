// Converse message envelope.
//
// Every message carries a fixed header (the Converse "envelope"): total
// size, destination handler index, flags, and provenance.  The header
// travels with the payload through whichever machine layer is active, so a
// message created with CmiAlloc on one PE can be executed on any other.
#pragma once

#include <cstdint>
#include <cstring>

namespace ugnirt::converse {

// Header flag bits.
constexpr std::uint16_t kMsgFlagSystem = 1u << 0;   // excluded from QD counts
constexpr std::uint16_t kMsgFlagNoFree = 1u << 1;   // runtime-owned buffer
                                                    // (persistent channel)
constexpr std::uint16_t kMsgFlagBcast = 1u << 2;    // spanning-tree forward
constexpr std::uint16_t kMsgFlagAggBatch = 1u << 3;  // aggregation batch:
                                                     // payload is a frame of
                                                     // coalesced messages
                                                     // (aggregation/frame.hpp)

struct CmiMsgHeader {
  std::uint32_t size = 0;       // total bytes, header included
  std::uint16_t handler = 0;    // registered handler index
  std::uint16_t flags = 0;
  std::int32_t src_pe = -1;     // logical sender
  std::int32_t alloc_pe = -1;   // PE whose allocator owns this buffer
  std::uint32_t bcast_root = 0; // spanning-tree root for broadcasts
  std::uint32_t span_id = 0;    // lifecycle-span id (0 = unsampled); rides
                                // the envelope so it survives memcpy hops
};

static_assert(sizeof(CmiMsgHeader) == 24, "envelope layout is part of ABI");

constexpr std::size_t kCmiHeaderBytes = sizeof(CmiMsgHeader);

inline CmiMsgHeader* header_of(void* msg) {
  return static_cast<CmiMsgHeader*>(msg);
}
inline const CmiMsgHeader* header_of(const void* msg) {
  return static_cast<const CmiMsgHeader*>(msg);
}

/// First payload byte (after the envelope).
inline void* payload_of(void* msg) {
  return static_cast<std::uint8_t*>(msg) + kCmiHeaderBytes;
}
inline const void* payload_of(const void* msg) {
  return static_cast<const std::uint8_t*>(msg) + kCmiHeaderBytes;
}

/// Typed payload access: CmiMsgPayload<T>(msg) (T must be trivially
/// copyable; messages travel by memcpy).
template <typename T>
T* msg_payload(void* msg) {
  static_assert(std::is_trivially_copyable_v<T>);
  return reinterpret_cast<T*>(payload_of(msg));
}

template <typename T>
const T* msg_payload(const void* msg) {
  static_assert(std::is_trivially_copyable_v<T>);
  return reinterpret_cast<const T*>(payload_of(msg));
}

}  // namespace ugnirt::converse
