// The aggregation batch frame — the one wire format every transport shares.
//
// A *batch* is a single Converse message (flag kMsgFlagAggBatch) whose
// payload carries many coalesced small messages.  Because the batch is an
// ordinary message, it rides whatever single-transaction path the active
// machine layer picks for its size — an SMSG mailbox write on the uGNI
// layer, a pxshm queue slot intra-node, one comm-thread SMSG in SMP mode,
// one eager mpilite send on the MPI layer — and the receive side unpacks
// it back into individual messages before they reach any handler.  One
// pack/unpack implementation lives here so the three layers cannot drift
// apart (this header is public API; the layout is versioned).
//
// Layout, starting at the batch message's payload (after its CmiMsgHeader):
//
//     +--------------------------------------------------+
//     | FrameHeader  { magic:u32, version:u16, count:u16 }|  8 bytes
//     +--------------------------------------------------+
//     | SubMsgHeader { len:u32 }                          |  per record,
//     | sub-message bytes  (len bytes, starts with its    |  padded to
//     |                     own CmiMsgHeader envelope)    |  8-byte
//     | padding to the next 8-byte boundary               |  alignment
//     +--------------------------------------------------+
//     | ... count records total ...                       |
//     +--------------------------------------------------+
//
// Every sub-message is a complete Converse message (envelope + payload);
// its handler index, source PE and flags travel inside it untouched, so
// unpack is handler-transparent: delivery semantics are identical to the
// un-aggregated path, in the same per-record order they were packed.
#pragma once

#include <cstdint>
#include <cstring>

#include "converse/message.hpp"

namespace ugnirt::aggregation {

/// "AGFR" — present at the start of every batch payload.
constexpr std::uint32_t kFrameMagic = 0x41474652u;
/// Bumped on any layout change; unpack rejects versions it does not know.
constexpr std::uint16_t kFrameVersion = 1;

struct FrameHeader {
  std::uint32_t magic = kFrameMagic;
  std::uint16_t version = kFrameVersion;
  std::uint16_t count = 0;  // number of sub-message records
};

struct SubMsgHeader {
  std::uint32_t len = 0;  // sub-message bytes (envelope included), unpadded
};

static_assert(sizeof(FrameHeader) == 8, "frame header layout is wire ABI");
static_assert(sizeof(SubMsgHeader) == 4, "record header layout is wire ABI");
static_assert(alignof(FrameHeader) <= 8 && alignof(SubMsgHeader) <= 8,
              "records are packed on 8-byte boundaries");

/// Records are padded so each record starts 8-byte aligned; the envelope
/// inside begins sizeof(SubMsgHeader) = 4 bytes in, which still satisfies
/// alignof(CmiMsgHeader) — readers (including the in-place batch delivery
/// path) may inspect and mutate a sub-message's CmiMsgHeader in place.
constexpr std::uint32_t kRecordAlign = 8;

static_assert(alignof(converse::CmiMsgHeader) <= 4,
              "in-place sub-message envelope access relies on 4-byte "
              "alignment after the record header");

constexpr std::uint32_t padded(std::uint32_t n) {
  return (n + (kRecordAlign - 1)) & ~(kRecordAlign - 1);
}

/// Frame bytes consumed by one record carrying a `len`-byte sub-message.
constexpr std::uint32_t record_bytes(std::uint32_t len) {
  return padded(static_cast<std::uint32_t>(sizeof(SubMsgHeader)) + len);
}

/// Packs sub-messages into a caller-provided buffer.  The writer never
/// allocates: append() fails (returns false) when the record would not
/// fit, and the caller flushes and starts a new frame.
class FrameWriter {
 public:
  FrameWriter(void* buf, std::uint32_t capacity)
      : base_(static_cast<std::uint8_t*>(buf)), capacity_(capacity) {
    FrameHeader h;
    std::memcpy(base_, &h, sizeof(h));
    used_ = sizeof(FrameHeader);
  }

  /// True when a `len`-byte sub-message would still fit.
  bool fits(std::uint32_t len) const {
    return used_ + record_bytes(len) <= capacity_;
  }

  bool append(const void* msg, std::uint32_t len) {
    if (!fits(len) || count_ == UINT16_MAX) return false;
    SubMsgHeader sh{len};
    std::memcpy(base_ + used_, &sh, sizeof(sh));
    std::memcpy(base_ + used_ + sizeof(sh), msg, len);
    const std::uint32_t rec = record_bytes(len);
    // Zero the alignment tail so frames are bit-deterministic.
    std::memset(base_ + used_ + sizeof(sh) + len, 0,
                rec - sizeof(sh) - len);
    used_ += rec;
    ++count_;
    FrameHeader h;
    h.count = count_;
    std::memcpy(base_, &h, sizeof(h));
    return true;
  }

  std::uint16_t count() const { return count_; }
  /// Frame bytes written so far (header included).
  std::uint32_t bytes() const { return used_; }

 private:
  std::uint8_t* base_;
  std::uint32_t capacity_;
  std::uint32_t used_ = 0;
  std::uint16_t count_ = 0;
};

/// Walks a frame, invoking `fn(sub_msg_ptr, len)` for each record in pack
/// order.  Returns false (possibly after some deliveries) on a malformed
/// frame: bad magic, unknown version, or a record overrunning `frame_len`.
template <typename Fn>
bool for_each_submessage(const void* frame, std::uint32_t frame_len, Fn&& fn) {
  const auto* p = static_cast<const std::uint8_t*>(frame);
  if (frame_len < sizeof(FrameHeader)) return false;
  FrameHeader h;
  std::memcpy(&h, p, sizeof(h));
  if (h.magic != kFrameMagic || h.version != kFrameVersion) return false;
  std::uint32_t off = sizeof(FrameHeader);
  for (std::uint16_t i = 0; i < h.count; ++i) {
    if (off + sizeof(SubMsgHeader) > frame_len) return false;
    SubMsgHeader sh;
    std::memcpy(&sh, p + off, sizeof(sh));
    if (sh.len < converse::kCmiHeaderBytes ||
        off + record_bytes(sh.len) > frame_len) {
      return false;
    }
    fn(p + off + sizeof(SubMsgHeader), sh.len);
    off += record_bytes(sh.len);
  }
  return true;
}

}  // namespace ugnirt::aggregation
