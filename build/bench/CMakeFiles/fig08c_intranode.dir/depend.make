# Empty dependencies file for fig08c_intranode.
# This may be replaced when dependencies are built.
