// The uGNI-based LRTS machine layer — the paper's primary contribution.
//
// Protocols implemented (paper §III-C and §IV):
//
//   * Small messages (size <= SMSG cap, which shrinks with job size): sent
//     directly with GNI_SmsgSendWTag; the receiver polls the RX CQ, copies
//     the message out of the mailbox and hands it to Converse.
//   * Large messages: GET-based rendezvous (Fig 5).  The sender registers
//     (or pool-resolves) the buffer and sends a small INIT_TAG control
//     message carrying {address, memory handle, size}.  The receiver
//     allocates + registers a buffer and issues an FMA GET (< rdma
//     threshold) or BTE GET (>= threshold).  On GET completion it sends
//     ACK_TAG so the sender can deregister/free.  Cost without the pool is
//     the paper's Equation 1: 2(Tmalloc+Tregister) + Trdma + 2 Tsmsg.
//   * Memory pool (§IV-B, Fig 7b): all message buffers come from
//     pre-registered slabs, removing Tmalloc/Tregister from the path.
//   * Persistent messages (§IV-A, Fig 7a): the receiver pre-allocates a
//     registered landing buffer; sends become a single PUT followed by a
//     PERSISTENT_TAG notification: Tcost = Trdma + Tsmsg.
//   * Intra-node pxshm (§IV-C): POSIX-shared-memory style queues between
//     PEs of one node, in double-copy or sender-side single-copy mode;
//     disabled, intra-node traffic goes through the NIC (the "original"
//     curve of Fig 8c).
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <unordered_map>
#include <vector>

#include "converse/machine.hpp"
#include "fault/retry.hpp"
#include "flowcontrol/flowcontrol.hpp"
#include "lrts/layer_stats.hpp"
#include "lrts/retry_util.hpp"
#include "mempool/mempool.hpp"
#include "ugni/ugni.hpp"

namespace ugnirt::lrts {

class UgniLayer final : public converse::MachineLayer {
 public:
  UgniLayer();
  ~UgniLayer() override;

  const char* name() const override { return "uGNI"; }

  void init_pe(converse::Pe& pe) override;
  void* alloc(sim::Context& ctx, converse::Pe& pe, std::size_t bytes) override;
  void free_msg(sim::Context& ctx, converse::Pe& pe, void* msg) override;
  void submit(sim::Context& ctx, converse::Pe& src, int dest_pe,
              converse::MsgView msg,
              const converse::SendOptions& opts) override;
  std::uint32_t recommended_batch_bytes(converse::Pe& src,
                                        int dest_pe) const override;
  void advance(sim::Context& ctx, converse::Pe& pe) override;
  bool has_backlog(const converse::Pe& pe) const override;

  converse::PersistentHandle create_persistent(
      sim::Context& ctx, converse::Pe& src, int dest_pe,
      std::uint32_t max_bytes) override;

  /// Snapshot of this layer's registry-backed counters (zeros before the
  /// first init_pe binds them).
  LayerStats stats() const;

  void collect_metrics(trace::MetricsRegistry& reg) override;

  /// Job-wide SMSG payload cap (depends on PE count; paper §III-C).
  std::uint32_t smsg_cap() const { return smsg_cap_; }

  /// Total SMSG mailbox memory committed across the job — the linear-in-
  /// peers cost of §II-B.
  std::uint64_t total_mailbox_bytes() const;

  /// The injection governor, or nullptr when flow control is disabled.
  const flowcontrol::InjectionGovernor* governor() const {
    return governor_.get();
  }
  /// Mutable access for the tenancy subsystem's per-job QoS installation
  /// (MachineLayer interface).
  flowcontrol::InjectionGovernor* governor() override {
    return governor_.get();
  }

 private:
  struct PeState;
  struct NodeShm;

  PeState& state(converse::Pe& pe);
  PeState& state_of(int pe_id);

  void ensure_domain(converse::Machine& m);
  /// Endpoint to `dest_pe` via ugni::Nic::get_or_connect — the uGNI API
  /// owns channel creation and its first-touch cost; the layer only
  /// counts the two mailbox registrations when a channel is established.
  ugni::gni_ep_handle_t connect(PeState& src, int dest_pe);

  /// Send a tagged SMSG (control or data), queueing on credit exhaustion.
  void smsg_send(sim::Context& ctx, PeState& src, int dest_pe,
                 std::uint8_t tag, const void* bytes, std::uint32_t len,
                 void* owned_msg);
  void flush_backlog(sim::Context& ctx, PeState& s);
  /// Convert the backlog's front kTagData entry to a rendezvous INIT
  /// (credit-free path) after sustained SMSG starvation.
  bool demote_front_to_rendezvous(sim::Context& ctx, PeState& s);
  /// Start the rendezvous protocol for `msg` (register or pool-resolve,
  /// then send/queue the INIT control message).
  void begin_rendezvous(sim::Context& ctx, PeState& s, int dest_pe,
                        std::uint32_t size, void* msg);
  /// Single PUT + notification down a pre-negotiated channel (Fig 7a).
  void persistent_send(sim::Context& ctx, converse::Pe& src,
                       converse::PersistentHandle handle, std::uint32_t size,
                       void* msg);

  /// Post the (fully prepared) rendezvous GET of one LargeRecv: endpoint
  /// lookup, descriptor post with retry, counters and trace.
  void issue_rendezvous_get(sim::Context& ctx, PeState& s, std::uint64_t rid);
  /// Re-try governor admission for GETs deferred under hotspot load;
  /// called from advance() as completions free window slots.
  void drain_deferred_gets(sim::Context& ctx, PeState& s);

  void handle_smsg(sim::Context& ctx, converse::Pe& pe, PeState& s,
                   int src_inst);
  /// Shared protocol demux for small messages arriving via SMSG or MSGQ.
  /// `arrival` is the virtual wire-arrival instant of the control/data
  /// bytes (== ctx.now() for paths that cannot observe it earlier).
  /// One flat-table indirect call per message (kTagTable below), not a
  /// switch re-tested per event in the CQ drain loop.
  void handle_protocol_msg(sim::Context& ctx, converse::Pe& pe, PeState& s,
                           std::uint8_t tag, const void* bytes,
                           SimTime arrival);
  // Per-tag protocol handlers (the former switch arms).
  void on_tag_data(sim::Context& ctx, converse::Pe& pe, PeState& s,
                   const void* bytes, SimTime arrival);
  void on_tag_init(sim::Context& ctx, converse::Pe& pe, PeState& s,
                   const void* bytes, SimTime arrival);
  void on_tag_ack(sim::Context& ctx, converse::Pe& pe, PeState& s,
                  const void* bytes, SimTime arrival);
  void on_tag_persist(sim::Context& ctx, converse::Pe& pe, PeState& s,
                      const void* bytes, SimTime arrival);
  using TagFn = void (UgniLayer::*)(sim::Context&, converse::Pe&, PeState&,
                                    const void*, SimTime);
  /// Indexed by SMSG protocol tag (1-based; slot 0 is unused).
  static const TagFn kTagTable[5];
  void handle_completion(sim::Context& ctx, converse::Pe& pe, PeState& s,
                         const ugni::gni_cq_entry_t& ev);

  void pxshm_send(sim::Context& ctx, converse::Pe& src, int dest_pe,
                  std::uint32_t size, void* msg);
  void pxshm_poll(sim::Context& ctx, converse::Pe& pe);

  converse::Machine* machine_ = nullptr;
  std::unique_ptr<ugni::Domain> domain_;
  std::vector<PeState*> states_;  // borrowed; owned by Pe::layer_state
  std::vector<std::unique_ptr<NodeShm>> node_shm_;
  std::uint32_t smsg_cap_ = 1024;
  // Machine options snapshotted at ensure_domain: the progress engine and
  // send path test these once per call instead of chasing
  // machine_->options() per event.
  bool use_pxshm_ = false;
  bool use_msgq_ = false;
  fault::RetryPolicy retry_{};
  /// AIMD injection pacing + adaptive thresholds; null when flow control
  /// is off (the hot paths then cost exactly one pointer test).
  std::unique_ptr<flowcontrol::InjectionGovernor> governor_;

  // Hot-path counters, bound to the machine registry in ensure_domain
  // (std::map node addresses are stable, so the pointers stay valid).
  trace::Counter* c_smsg_sends_ = nullptr;
  trace::Counter* c_rendezvous_gets_ = nullptr;
  trace::Counter* c_persistent_puts_ = nullptr;
  trace::Counter* c_pxshm_msgs_ = nullptr;
  trace::Counter* c_credit_stalls_ = nullptr;
  trace::Counter* c_registrations_ = nullptr;
  trace::Counter* c_retry_smsg_ = nullptr;
  trace::Counter* c_retry_post_ = nullptr;
  trace::Counter* c_retry_mem_register_ = nullptr;
  trace::Counter* c_retry_escalations_ = nullptr;
  trace::Counter* c_fallback_rendezvous_ = nullptr;
  trace::Counter* c_fallback_heap_ = nullptr;
  trace::Counter* c_cq_recovered_ = nullptr;
};

}  // namespace ugnirt::lrts
