// Figure 9(a): ping-pong one-way latency — uGNI-based CHARM++, MPI-based
// CHARM++, pure MPI with same and different send/recv buffers, and pure
// uGNI, 8 B .. 64 KiB (paper §V-A).
#include "apps/microbench/microbench.hpp"
#include "bench_util.hpp"

using namespace ugnirt;
using namespace ugnirt::apps;

int main() {
  gemini::MachineConfig mc;
  benchtool::Table table("fig09a_latency", "msg_bytes");
  table.add_column("uGNI_CHARM_us");
  table.add_column("MPI_CHARM_us");
  table.add_column("MPI_samebuf_us");
  table.add_column("MPI_diffbuf_us");
  table.add_column("pure_uGNI_us");

  converse::MachineOptions ugni_charm;
  ugni_charm.layer = converse::LayerKind::kUgni;
  ugni_charm.pes_per_node = 1;
  converse::MachineOptions mpi_charm = ugni_charm;
  mpi_charm.layer = converse::LayerKind::kMpi;

  for (std::uint64_t size : benchtool::size_sweep(8, 64 * 1024)) {
    bench::PingPongOptions pp;
    pp.payload = static_cast<std::uint32_t>(size);
    table.add_row(
        benchtool::size_label(size),
        {to_us(bench::charm_pingpong(ugni_charm, pp)),
         to_us(bench::charm_pingpong(mpi_charm, pp)),
         to_us(bench::pure_mpi_pingpong(mc, static_cast<std::uint32_t>(size), true)),
         to_us(bench::pure_mpi_pingpong(mc, static_cast<std::uint32_t>(size), false)),
         to_us(bench::pure_ugni_pingpong(mc, static_cast<std::uint32_t>(size)))});
  }
  table.print();
  std::printf("Paper anchors: 8-byte one-way ~1.2us pure uGNI, ~1.6us\n"
              "uGNI-CHARM++, ~3us MPI-CHARM++; a latency jump appears past\n"
              "the SMSG limit; MPI with different buffers loses to MPI with\n"
              "one buffer once rendezvous registration kicks in.\n");
  return 0;
}
