#include "apps/namdmodel/namdmodel.hpp"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <cmath>
#include <cstring>
#include <memory>
#include <set>
#include <vector>

#include "charm/array.hpp"
#include "charm/charm.hpp"
#include "charm/lb.hpp"
#include "lrts/runtime.hpp"
#include "topo/torus.hpp"

namespace ugnirt::apps::namdmodel {

using converse::CmiAlloc;
using converse::CmiFree;
using converse::CmiMyPe;
using converse::CmiSetHandler;
using converse::CmiSyncSendAndFree;
using converse::kCmiHeaderBytes;

MolecularSystem apoa1() { return MolecularSystem{"ApoA1", 92224}; }
MolecularSystem dhfr() { return MolecularSystem{"DHFR", 23558}; }
MolecularSystem iapp() { return MolecularSystem{"IAPP", 5570}; }

namespace {

// Array methods.
constexpr int kPositions = 1;  // patch -> compute
constexpr int kForces = 2;     // compute -> patch
constexpr int kPmeCharge = 3;  // patch -> pme
constexpr int kPmeTransA = 4;  // pme -> pme (first all-to-all)
constexpr int kPmeTransB = 5;  // pme -> pme (second all-to-all)
constexpr int kPmeForce = 6;   // pme -> patch
constexpr int kDoneAgg = 7;    // patch -> aggregator patch (done counts)

struct MsgHead {
  std::int32_t step;
  std::int32_t from;  // element id
};

struct Model;

/// Common base so one ArrayManager holds patches, computes and PME pencils.
class NamdObject : public charm::ArrayElement {
 public:
  explicit NamdObject(Model& m) : m_(&m) {}

 protected:
  Model* m_;
};

struct Model {
  NamdConfig cfg;
  converse::Machine* machine = nullptr;
  charm::ArrayManager* array = nullptr;

  int npatch = 0, ncomp = 0, npme = 0;

  struct PatchInfo {
    int atoms = 0;
    std::vector<int> computes;  // element ids
    int pme = -1;               // element id
    SimTime integrate_work = 0;
  };
  struct CompInfo {
    int p1 = -1, p2 = -1;  // patch element ids (p2 < 0: self compute)
    SimTime work = 0;
  };
  struct PmeInfo {
    std::vector<int> src_patches;
    SimTime phase_work = 0;      // charged 3x per step
    std::uint32_t trans_bytes = 0;
    // Grid-structured transposes (NAMD pencil decomposition): phase A
    // exchanges within the pencil's row, phase B within its column.
    std::vector<int> row_peers;  // element ids
    std::vector<int> col_peers;
  };
  std::vector<PatchInfo> patches;
  std::vector<CompInfo> computes;
  std::vector<PmeInfo> pmes;

  int comp_id(int i) const { return npatch + i; }
  int pme_id(int i) const { return npatch + ncomp + i; }

  // Done-aggregation tree (first nagg patches collect group counts).
  int nagg = 1;
  std::vector<int> agg_expected;

  // Controller state (PE 0).
  int dones = 0;
  int step = 0;
  bool measuring = false;
  SimTime measure_start = 0;
  SimTime measure_end = 0;
  int start_handler = -1;
  int done_handler = -1;
  NamdResult result;

  void send_msg(int dest_elem, int method, int from, std::uint32_t bytes);
  void controller_step_done(int count);
  void broadcast_step();
};

class PatchObj final : public NamdObject {
 public:
  PatchObj(Model& m, int id) : NamdObject(m), id_(id) {}

  void begin(int step) {
    step_ = step;
    forces_ = 0;
    pme_force_ = false;
    const auto& info = m_->patches[static_cast<std::size_t>(id_)];
    const std::uint32_t pos_bytes =
        static_cast<std::uint32_t>(info.atoms) * 16 + 16;
    for (int c : info.computes) {
      m_->send_msg(c, kPositions, id_, pos_bytes);
    }
    m_->send_msg(info.pme, kPmeCharge, id_,
                 static_cast<std::uint32_t>(info.atoms) * 8 + 16);
  }

  void receive(int method, const void* payload, std::uint32_t) override {
    if (method == kDoneAgg) {
      std::int32_t count = 0;
      std::memcpy(&count,
                  static_cast<const std::uint8_t*>(payload) + sizeof(MsgHead),
                  sizeof(count));
      aggregate_done(count);
      return;
    }
    MsgHead head;
    std::memcpy(&head, payload, sizeof(head));
    assert(head.step == step_);
    const auto& info = m_->patches[static_cast<std::size_t>(id_)];
    if (method == kForces) {
      ++forces_;
    } else if (method == kPmeForce) {
      pme_force_ = true;
    } else {
      assert(false && "patch: unexpected method");
    }
    if (forces_ < static_cast<int>(info.computes.size()) || !pme_force_) {
      return;
    }
    // All forces in: integrate and report through the aggregation tree
    // (direct all-to-root dones would make PE 0 a probe hotspot).
    converse::CmiChargeWork(info.integrate_work);
    report_done(1);
  }

  void aggregate_done(int count) {
    agg_count_ += count;
    if (agg_count_ < m_->agg_expected[static_cast<std::size_t>(id_)]) return;
    agg_count_ = 0;
    send_controller_done(
        m_->agg_expected[static_cast<std::size_t>(id_)]);
  }

 private:
  void report_done(int count) {
    const int agg = id_ % m_->nagg;
    if (agg == id_) {
      aggregate_done(count);
      return;
    }
    std::vector<std::uint8_t> buf(sizeof(MsgHead) + sizeof(std::int32_t));
    auto* head = reinterpret_cast<MsgHead*>(buf.data());
    head->step = m_->step;
    head->from = id_;
    std::int32_t c32 = count;
    std::memcpy(buf.data() + sizeof(MsgHead), &c32, sizeof(c32));
    m_->array->invoke(agg, kDoneAgg, buf.data(),
                      static_cast<std::uint32_t>(buf.size()));
  }

  void send_controller_done(int count) {
    std::uint32_t total = static_cast<std::uint32_t>(kCmiHeaderBytes + 8);
    void* msg = CmiAlloc(total);
    *converse::msg_payload<std::int32_t>(msg) = count;
    CmiSetHandler(msg, m_->done_handler);
    CmiSyncSendAndFree(0, total, msg);
  }

  int id_;
  int step_ = -1;
  int forces_ = 0;
  int agg_count_ = 0;
  bool pme_force_ = false;
};

class ComputeObj final : public NamdObject {
 public:
  ComputeObj(Model& m, int id) : NamdObject(m), id_(id) {}

  void receive(int method, const void* payload, std::uint32_t) override {
    assert(method == kPositions);
    (void)method;
    MsgHead head;
    std::memcpy(&head, payload, sizeof(head));
    if (head.step != step_) {
      assert(head.step == step_ + 1);
      step_ = head.step;
      inputs_ = 0;
    }
    const auto& info =
        m_->computes[static_cast<std::size_t>(id_ - m_->npatch)];
    const int needed = info.p2 < 0 ? 1 : 2;
    if (++inputs_ < needed) return;
    converse::CmiChargeWork(info.work);
    auto force_bytes = [&](int p) {
      return static_cast<std::uint32_t>(
                 m_->patches[static_cast<std::size_t>(p)].atoms) *
                 16 +
             16;
    };
    m_->send_msg(info.p1, kForces, id_, force_bytes(info.p1));
    if (info.p2 >= 0) m_->send_msg(info.p2, kForces, id_, force_bytes(info.p2));
  }

 private:
  int id_;
  int step_ = -1;
  int inputs_ = 0;
};

class PmeObj final : public NamdObject {
 public:
  PmeObj(Model& m, int id) : NamdObject(m), id_(id) {}

  void receive(int method, const void* payload, std::uint32_t) override {
    MsgHead head;
    std::memcpy(&head, payload, sizeof(head));
    if (head.step != step_) {
      assert(head.step == step_ + 1);
      step_ = head.step;
      charges_ = trans_a_ = trans_b_ = 0;
    }
    const auto& info = m_->pmes[static_cast<std::size_t>(my_index())];
    const int row_peers = static_cast<int>(info.row_peers.size());
    const int col_peers = static_cast<int>(info.col_peers.size());
    switch (method) {
      case kPmeCharge:
        if (++charges_ < static_cast<int>(info.src_patches.size())) return;
        phase(kPmeTransA, info.row_peers, info);
        if (row_peers == 0) {
          phase(kPmeTransB, info.col_peers, info);
          if (col_peers == 0) finish(info);
        }
        return;
      case kPmeTransA:
        if (++trans_a_ < row_peers) return;
        phase(kPmeTransB, info.col_peers, info);
        if (col_peers == 0) finish(info);
        return;
      case kPmeTransB:
        if (++trans_b_ < col_peers) return;
        finish(info);
        return;
      default:
        assert(false && "pme: unexpected method");
    }
  }

 private:
  int my_index() const { return id_ - m_->npatch - m_->ncomp; }

  /// Charge one FFT phase and fan out a transpose round to the group.
  void phase(int round, const std::vector<int>& peers,
             const Model::PmeInfo& info) {
    converse::CmiChargeWork(info.phase_work);
    for (int j : peers) {
      m_->send_msg(j, round, id_, info.trans_bytes);
    }
  }

  void finish(const Model::PmeInfo& info) {
    converse::CmiChargeWork(info.phase_work);
    for (int p : info.src_patches) {
      std::uint32_t bytes =
          static_cast<std::uint32_t>(
              m_->patches[static_cast<std::size_t>(p)].atoms) *
              16 +
          16;
      m_->send_msg(p, kPmeForce, id_, bytes);
    }
  }

  int id_;
  int step_ = -1;
  int charges_ = 0;
  int trans_a_ = 0;
  int trans_b_ = 0;
};

void Model::send_msg(int dest_elem, int method, int from,
                     std::uint32_t bytes) {
  // Payload: MsgHead followed by `bytes` of (synthetic) data.
  std::vector<std::uint8_t> buf(sizeof(MsgHead) + bytes);
  auto* head = reinterpret_cast<MsgHead*>(buf.data());
  head->step = step;
  head->from = from;
  array->invoke(dest_elem, method, buf.data(),
                static_cast<std::uint32_t>(buf.size()));
}

void Model::broadcast_step() {
  std::uint32_t total = static_cast<std::uint32_t>(kCmiHeaderBytes + 8);
  void* msg = CmiAlloc(total);
  CmiSetHandler(msg, start_handler);
  converse::CmiSyncBroadcastAllAndFree(total, msg);
}

void Model::controller_step_done(int count) {
  dones += count;
  if (dones < npatch) return;
  dones = 0;
  if (getenv("UGNIRT_NAMDDBG")) {
    fprintf(stderr, "STEP %d done at %.3f ms\n", step,
            to_ms(machine->current_pe().ctx().now()));
  }

  const int total_steps = cfg.warmup_steps + cfg.steps;
  sim::Context& ctx = machine->current_pe().ctx();

  if (step + 1 == cfg.warmup_steps) {
    // Load balance on the measured (warmup) loads, then start measuring.
    charm::LbResult lb = charm::greedy_lb(
        array->measured_load(),
        [&] {
          std::vector<int> cur(static_cast<std::size_t>(array->size()));
          for (int i = 0; i < array->size(); ++i) cur[static_cast<std::size_t>(i)] = array->location_of(i);
          return cur;
        }(),
        machine->num_pes());
    result.migrations = array->migrate_to(lb.assignment);
    result.lb_max_before = lb.max_load_before / cfg.warmup_steps;
    result.lb_max_after = lb.max_load_after / cfg.warmup_steps;
    array->reset_load();
    measure_start = ctx.now();
    measuring = true;
  }
  if (step + 1 == total_steps) {
    measure_end = ctx.now();
    return;  // done; engine drains
  }
  ++step;
  broadcast_step();
}

}  // namespace

NamdResult run_namd_model(const converse::MachineOptions& options,
                          const NamdConfig& config,
                          trace::Tracer* tracer) {
  auto machine = lrts::make_machine(options.layer, options);
  if (tracer) {
    tracer->set_pe_count(options.pes);
    machine->set_tracer(tracer);
  }
  charm::Charm charm(*machine);

  Model model;
  model.cfg = config;
  model.machine = machine.get();

  const int atoms = config.system.atoms;
  model.npatch =
      std::max(8, (atoms + config.target_atoms_per_patch - 1) /
                      config.target_atoms_per_patch);
  // Factor the patch count into a 3-D grid (same helper as the torus).
  auto dims = topo::Torus3D::for_nodes(model.npatch).dims();
  const int px = dims[0], py = dims[1], pz = dims[2];
  model.npatch = px * py * pz;
  // PME pencil decomposition scales with the machine (NAMD chooses pencil
  // counts from the grid and the core count); cap at 3x the patch count.
  model.npme = std::clamp(options.pes / 4, 4, model.npatch);

  // Patches and their 26-neighbourhoods (deduplicated, half-shell).
  model.patches.resize(static_cast<std::size_t>(model.npatch));
  const int base_atoms = atoms / model.npatch;
  int extra = atoms % model.npatch;
  for (auto& p : model.patches) {
    p.atoms = base_atoms + (extra-- > 0 ? 1 : 0);
  }

  auto pidx = [&](int x, int y, int z) {
    x = (x + px) % px;
    y = (y + py) % py;
    z = (z + pz) % pz;
    return x + px * (y + py * z);
  };
  double pair_units = 0;  // sum of a_i*a_j (and a_i^2/2 for self)
  for (int z = 0; z < pz; ++z) {
    for (int y = 0; y < py; ++y) {
      for (int x = 0; x < px; ++x) {
        int me = pidx(x, y, z);
        // Self compute.
        Model::CompInfo self;
        self.p1 = me;
        pair_units += 0.5 * model.patches[static_cast<std::size_t>(me)].atoms *
                      model.patches[static_cast<std::size_t>(me)].atoms;
        model.computes.push_back(self);
        // Half-shell pair computes (each neighbor pair once).
        std::set<int> seen;
        for (int dz = -1; dz <= 1; ++dz) {
          for (int dy = -1; dy <= 1; ++dy) {
            for (int dx = -1; dx <= 1; ++dx) {
              if (dx == 0 && dy == 0 && dz == 0) continue;
              int nb = pidx(x + dx, y + dy, z + dz);
              if (nb <= me || !seen.insert(nb).second) continue;
              Model::CompInfo pair;
              pair.p1 = me;
              pair.p2 = nb;
              pair_units +=
                  0.25 *  // partial cutoff overlap between neighbor cells
                  static_cast<double>(
                      model.patches[static_cast<std::size_t>(me)].atoms) *
                  model.patches[static_cast<std::size_t>(nb)].atoms;
              model.computes.push_back(pair);
            }
          }
        }
      }
    }
  }
  model.ncomp = static_cast<int>(model.computes.size());

  // Work calibration: total per-step work = atoms * ns_per_atom_step,
  // split 82% short-range, 12% PME, 6% integration.
  const double total_work = static_cast<double>(atoms) *
                            static_cast<double>(config.ns_per_atom_step);
  const double short_work = 0.82 * total_work;
  const double pme_work = 0.12 * total_work;
  const double integ_work = 0.06 * total_work;
  {
    for (auto& c : model.computes) {
      double units = c.p2 < 0
          ? 0.5 * model.patches[static_cast<std::size_t>(c.p1)].atoms *
                model.patches[static_cast<std::size_t>(c.p1)].atoms
          : 0.25 *
                static_cast<double>(
                    model.patches[static_cast<std::size_t>(c.p1)].atoms) *
                model.patches[static_cast<std::size_t>(c.p2)].atoms;
      c.work = static_cast<SimTime>(short_work * units / pair_units);
    }
  }
  for (auto& p : model.patches) {
    p.integrate_work =
        static_cast<SimTime>(integ_work / model.npatch);
  }

  // PME pencils: patch -> pencil by index hash; grid-structured transposes
  // (row exchange, then column exchange), as in NAMD's pencil FFT.
  model.pmes.resize(static_cast<std::size_t>(model.npme));
  const double grid_bytes = static_cast<double>(atoms) * 4.0;
  int g = 1;
  while (g * g < model.npme) ++g;
  for (int i = 0; i < model.npme; ++i) {
    auto& pme = model.pmes[static_cast<std::size_t>(i)];
    pme.phase_work = static_cast<SimTime>(pme_work / model.npme / 3.0);
    pme.trans_bytes = static_cast<std::uint32_t>(
        std::max(512.0, grid_bytes / model.npme / g));
    const int row = i / g, col = i % g;
    for (int j = 0; j < model.npme; ++j) {
      if (j == i) continue;
      if (j / g == row) pme.row_peers.push_back(model.pme_id(j));
      if (j % g == col) pme.col_peers.push_back(model.pme_id(j));
    }
  }
  for (int p = 0; p < model.npatch; ++p) {
    int target = p % model.npme;
    model.patches[static_cast<std::size_t>(p)].pme = model.pme_id(target);
    model.pmes[static_cast<std::size_t>(target)].src_patches.push_back(p);
  }
  // Done-aggregation groups: ~16 collectors.
  model.nagg = std::max(1, std::min(16, model.npatch));
  model.agg_expected.assign(static_cast<std::size_t>(model.npatch), 0);
  for (int p = 0; p < model.npatch; ++p) {
    model.agg_expected[static_cast<std::size_t>(p % model.nagg)] += 1;
  }

  // Wire patch -> compute lists.
  for (int c = 0; c < model.ncomp; ++c) {
    const auto& info = model.computes[static_cast<std::size_t>(c)];
    model.patches[static_cast<std::size_t>(info.p1)].computes.push_back(
        model.comp_id(c));
    if (info.p2 >= 0) {
      model.patches[static_cast<std::size_t>(info.p2)].computes.push_back(
          model.comp_id(c));
    }
  }

  const int nelems = model.npatch + model.ncomp + model.npme;
  charm::ArrayManager array(charm, nelems, [&](int idx) -> std::unique_ptr<charm::ArrayElement> {
    if (idx < model.npatch) {
      return std::make_unique<PatchObj>(model, idx);
    }
    if (idx < model.npatch + model.ncomp) {
      return std::make_unique<ComputeObj>(model, idx);
    }
    return std::make_unique<PmeObj>(model, idx);
  });
  model.array = &array;

  model.done_handler = machine->register_handler([&](void* msg) {
    int count = *converse::msg_payload<std::int32_t>(msg);
    CmiFree(msg);
    model.controller_step_done(count);
  });
  model.start_handler = machine->register_handler([&](void* msg) {
    CmiFree(msg);
    int me = CmiMyPe();
    for (int p = 0; p < model.npatch; ++p) {
      if (array.location_of(p) == me) {
        static_cast<PatchObj*>(array.element(p))->begin(model.step);
      }
    }
  });

  machine->start(0, [&] { model.broadcast_step(); });
  machine->run();

  NamdResult result = model.result;
  result.patches = model.npatch;
  result.computes = model.ncomp;
  result.pme_objects = model.npme;
  result.messages = machine->stats().msgs_sent;
  if (getenv("UGNIRT_NAMDDBG")) {
    const auto& ns = machine->network().stats();
    fprintf(stderr,
            "net: transfers=%llu smsgB=%.1fMB fmaB=%.1fMB bteB=%.1fMB conflicts=%llu\n",
            (unsigned long long)ns.transfers, ns.bytes_smsg / 1e6,
            ns.bytes_fma / 1e6, ns.bytes_bte / 1e6,
            (unsigned long long)ns.link_conflicts);
    fprintf(stderr, "steps=%llu execs=%llu sent=%llu\n",
            (unsigned long long)machine->stats().steps,
            (unsigned long long)machine->stats().msgs_executed,
            (unsigned long long)machine->stats().msgs_sent);
  }
  if (tracer) tracer->finalize(model.measure_end);
  SimTime elapsed = model.measure_end - model.measure_start;
  result.ms_per_step =
      config.steps > 0 ? to_ms(elapsed / config.steps) : 0;
  return result;
}

}  // namespace ugnirt::apps::namdmodel
