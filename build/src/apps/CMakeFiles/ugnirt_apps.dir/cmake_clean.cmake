file(REMOVE_RECURSE
  "CMakeFiles/ugnirt_apps.dir/microbench/microbench.cpp.o"
  "CMakeFiles/ugnirt_apps.dir/microbench/microbench.cpp.o.d"
  "CMakeFiles/ugnirt_apps.dir/minimd/minimd.cpp.o"
  "CMakeFiles/ugnirt_apps.dir/minimd/minimd.cpp.o.d"
  "CMakeFiles/ugnirt_apps.dir/namdmodel/namdmodel.cpp.o"
  "CMakeFiles/ugnirt_apps.dir/namdmodel/namdmodel.cpp.o.d"
  "CMakeFiles/ugnirt_apps.dir/nqueens/parallel.cpp.o"
  "CMakeFiles/ugnirt_apps.dir/nqueens/parallel.cpp.o.d"
  "CMakeFiles/ugnirt_apps.dir/nqueens/solver.cpp.o"
  "CMakeFiles/ugnirt_apps.dir/nqueens/solver.cpp.o.d"
  "CMakeFiles/ugnirt_apps.dir/nqueens/subtree_model.cpp.o"
  "CMakeFiles/ugnirt_apps.dir/nqueens/subtree_model.cpp.o.d"
  "libugnirt_apps.a"
  "libugnirt_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ugnirt_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
