#include "lrts/runtime.hpp"

#include "lrts/mpi_layer.hpp"
#include "lrts/smp_layer.hpp"
#include "lrts/ugni_layer.hpp"

namespace ugnirt::lrts {

std::unique_ptr<converse::Machine> make_machine(
    converse::LayerKind kind, const converse::MachineOptions& options_in) {
  converse::MachineOptions options = options_in;
  options.layer = kind;
  // Honor UGNIRT_GEMINI_* / UGNIRT_FAULT_* / UGNIRT_RETRY_* / UGNIRT_AGG_*
  // / UGNIRT_FLOW_* / UGNIRT_SIM_* environment overrides for every model
  // constant, fault knob, retry knob, aggregation knob, flow-control knob
  // and the engine's queue backend, so experiments and ablations can
  // retune the machine without rebuilds.
  {
    Config cfg;
    options.mc.export_to(cfg);
    options.fault.export_to(cfg);
    options.retry.export_to(cfg);
    options.aggregation.export_to(cfg);
    options.flow.export_to(cfg);
    options.tenancy.export_to(cfg);
    cfg.set("sim.queue", sim::to_string(options.sim_queue));
    cfg.set("sim.shards", std::to_string(options.sim_shards));
    cfg.set("sim.lookahead_ns", std::to_string(options.sim_lookahead_ns));
    cfg.set("sim.arena", options.sim_arena ? "1" : "0");
    cfg.set("sim.flat_dispatch", options.flat_dispatch ? "1" : "0");
    cfg.apply_env_overrides();
    options.mc = gemini::MachineConfig::from(cfg);
    options.fault = fault::FaultPlan::from(cfg);
    options.retry = fault::RetryPolicy::from(cfg);
    options.aggregation = aggregation::AggregationConfig::from(cfg);
    options.flow = flowcontrol::FlowConfig::from(cfg);
    options.tenancy = tenancy::TenancyConfig::from(cfg);
    sim::queue_kind_from_string(cfg.get_string_or("sim.queue", "heap"),
                                &options.sim_queue);
    options.sim_shards = static_cast<int>(cfg.get_int_or("sim.shards", 1));
    options.sim_lookahead_ns =
        static_cast<SimTime>(cfg.get_int_or("sim.lookahead_ns", 0));
    options.sim_arena = cfg.get_int_or("sim.arena", 1) != 0;
    options.flat_dispatch = cfg.get_int_or("sim.flat_dispatch", 1) != 0;
  }
  std::unique_ptr<converse::MachineLayer> layer;
  switch (kind) {
    case converse::LayerKind::kUgni:
      if (options.smp_mode) {
        layer = std::make_unique<SmpLayer>();
      } else {
        layer = std::make_unique<UgniLayer>();
      }
      break;
    case converse::LayerKind::kMpi:
      layer = std::make_unique<MpiLayer>();
      break;
  }
  return std::make_unique<converse::Machine>(options, std::move(layer));
}

}  // namespace ugnirt::lrts
