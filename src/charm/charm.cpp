#include "charm/charm.hpp"

#include <cassert>
#include <cstring>

namespace ugnirt::charm {

using converse::CmiAlloc;
using converse::CmiFree;
using converse::CmiMyPe;
using converse::CmiSetHandler;
using converse::CmiSyncSendAndFree;
using converse::header_of;
using converse::kCmiHeaderBytes;
using converse::kMsgFlagSystem;
using converse::Machine;
using converse::msg_payload;

namespace {

struct TaskHead {
  std::int32_t task_id;
  std::uint32_t bytes;
  // payload follows
};

struct RedMsg {
  std::int32_t red_id;
  std::uint64_t round;
  std::uint64_t vu;
  double vd;
};

struct QdWaveMsg {
  std::uint64_t round;
};

struct QdReportMsg {
  std::uint64_t round;
  std::uint64_t created;
  std::uint64_t processed;
  std::int32_t reports;  // how many PEs this partial covers
};

}  // namespace

Charm::Charm(converse::Machine& machine) : machine_(&machine) {
  task_handler_ = machine_->register_handler([this](void* msg) {
    const auto* head = msg_payload<TaskHead>(msg);
    assert(head->task_id >= 0 &&
           head->task_id < static_cast<int>(tasks_.size()));
    const void* payload =
        reinterpret_cast<const std::uint8_t*>(head) + sizeof(TaskHead);
    tasks_[static_cast<std::size_t>(head->task_id)](payload, head->bytes);
    CmiFree(msg);
  });

  reduction_handler_ = machine_->register_handler([this](void* msg) {
    const auto* rm = msg_payload<RedMsg>(msg);
    reduction_arrive(rm->red_id, CmiMyPe(), rm->round, rm->vu, rm->vd);
    CmiFree(msg);
  });

  qd_wave_handler_ = machine_->register_handler([this](void* msg) {
    const auto* wm = msg_payload<QdWaveMsg>(msg);
    int pe = CmiMyPe();
    QdPeRound& s = qd_slot(pe, wm->round);
    s.wave_seen = true;
    s.created += machine_->qd_created(pe);
    s.processed += machine_->qd_processed(pe);
    s.reports += 1;
    CmiFree(msg);
    qd_try_forward(pe);
  });

  qd_report_handler_ = machine_->register_handler([this](void* msg) {
    const auto* rm = msg_payload<QdReportMsg>(msg);
    int pe = CmiMyPe();
    QdPeRound& s = qd_slot(pe, rm->round);
    s.created += rm->created;
    s.processed += rm->processed;
    s.reports += rm->reports;
    CmiFree(msg);
    qd_try_forward(pe);
  });
}

// ---------------------------------------------------------------------------
// Tasks
// ---------------------------------------------------------------------------

int Charm::register_task(TaskFn fn) {
  tasks_.push_back(std::move(fn));
  return static_cast<int>(tasks_.size()) - 1;
}

void Charm::seed_task_to(int pe, int task_id, const void* payload,
                         std::uint32_t bytes) {
  std::uint32_t total = static_cast<std::uint32_t>(
      kCmiHeaderBytes + sizeof(TaskHead) + bytes);
  void* msg = CmiAlloc(total);
  auto* head = msg_payload<TaskHead>(msg);
  head->task_id = task_id;
  head->bytes = bytes;
  if (bytes) {
    std::memcpy(reinterpret_cast<std::uint8_t*>(head) + sizeof(TaskHead),
                payload, bytes);
  }
  CmiSetHandler(msg, task_handler_);
  CmiSyncSendAndFree(pe, total, msg);
}

void Charm::seed_task(int task_id, const void* payload, std::uint32_t bytes) {
  // The random seed balancer: "After a new task is dynamically created, it
  // is randomly assigned to a processor" (paper §V-C).
  converse::Pe& pe = machine_->current_pe();
  int dest = static_cast<int>(
      pe.rng().next_below(static_cast<std::uint32_t>(machine_->num_pes())));
  seed_task_to(dest, task_id, payload, bytes);
}

// ---------------------------------------------------------------------------
// Reductions (k-ary tree rooted at PE 0)
// ---------------------------------------------------------------------------

int Charm::register_reduction_sum(ReductionCb at_root) {
  Reduction r;
  r.cb_u64 = std::move(at_root);
  r.state.resize(static_cast<std::size_t>(machine_->num_pes()));
  r.next_round.assign(static_cast<std::size_t>(machine_->num_pes()), 0);
  reductions_.push_back(std::move(r));
  return static_cast<int>(reductions_.size()) - 1;
}

int Charm::register_reduction_sum_d(ReductionCbD at_root) {
  Reduction r;
  r.cb_d = std::move(at_root);
  r.is_double = true;
  r.state.resize(static_cast<std::size_t>(machine_->num_pes()));
  r.next_round.assign(static_cast<std::size_t>(machine_->num_pes()), 0);
  reductions_.push_back(std::move(r));
  return static_cast<int>(reductions_.size()) - 1;
}

int Charm::register_reduction_max(ReductionCb at_root) {
  Reduction r;
  r.cb_u64 = std::move(at_root);
  r.is_max = true;
  r.state.resize(static_cast<std::size_t>(machine_->num_pes()));
  r.next_round.assign(static_cast<std::size_t>(machine_->num_pes()), 0);
  reductions_.push_back(std::move(r));
  return static_cast<int>(reductions_.size()) - 1;
}

int Charm::expected_contributions(int pe) const {
  std::vector<int> children;
  machine_->tree_children(pe, children);
  return 1 + static_cast<int>(children.size());
}

void Charm::contribute(int red_id, std::uint64_t value) {
  int pe = CmiMyPe();
  // A contribution is a sync point: ship any coalesced stragglers now so
  // an aggregation buffer never gates the dependency chain behind the
  // reduction (no-op when aggregation is off).
  machine_->flush_aggregation();
  Reduction& r = reductions_[static_cast<std::size_t>(red_id)];
  std::uint64_t round = r.next_round[static_cast<std::size_t>(pe)]++;
  reduction_arrive(red_id, pe, round, value, 0.0);
}

void Charm::contribute_d(int red_id, double value) {
  int pe = CmiMyPe();
  machine_->flush_aggregation();
  Reduction& r = reductions_[static_cast<std::size_t>(red_id)];
  std::uint64_t round = r.next_round[static_cast<std::size_t>(pe)]++;
  reduction_arrive(red_id, pe, round, 0, value);
}

void Charm::reduction_arrive(int red_id, int pe, std::uint64_t round,
                             std::uint64_t vu, double vd) {
  Reduction& r = reductions_[static_cast<std::size_t>(red_id)];
  auto& rounds = r.state[static_cast<std::size_t>(pe)];
  if (rounds.size() <= round) rounds.resize(round + 1);
  Reduction::Round& slot = rounds[round];
  if (r.is_max) {
    slot.acc_u64 = slot.contributions == 0 ? vu : std::max(slot.acc_u64, vu);
  } else {
    slot.acc_u64 += vu;
  }
  slot.acc_d += vd;
  slot.contributions += 1;
  if (slot.contributions < expected_contributions(pe)) return;

  if (pe == 0) {
    if (r.is_double) {
      r.cb_d(slot.acc_d);
    } else {
      r.cb_u64(slot.acc_u64);
    }
    return;
  }
  // Forward the combined partial to the tree parent.
  int parent = machine_->tree_parent(pe);
  std::uint32_t total =
      static_cast<std::uint32_t>(kCmiHeaderBytes + sizeof(RedMsg));
  void* msg = CmiAlloc(total);
  auto* rm = msg_payload<RedMsg>(msg);
  rm->red_id = red_id;
  rm->round = round;
  rm->vu = slot.acc_u64;
  rm->vd = slot.acc_d;
  CmiSetHandler(msg, reduction_handler_);
  CmiSyncSendAndFree(parent, total, msg);
}

// ---------------------------------------------------------------------------
// Quiescence detection
// ---------------------------------------------------------------------------

void Charm::start_quiescence(std::function<void()> cb) {
  assert(!qd_active_ && "one quiescence detection at a time");
  qd_active_ = true;
  qd_cb_ = std::move(cb);
  qd_prev_created_ = ~0ull;
  qd_prev_processed_ = ~0ull;
  qd_waves_ = 0;
  qd_start_wave();
}

void Charm::qd_start_wave() {
  ++qd_round_;
  ++qd_waves_;
  // Broadcast the wave as a *system* message so QD traffic does not perturb
  // the counters it reads.
  std::uint32_t total =
      static_cast<std::uint32_t>(kCmiHeaderBytes + sizeof(QdWaveMsg));
  void* msg = CmiAlloc(total);
  header_of(msg)->flags |= kMsgFlagSystem;
  msg_payload<QdWaveMsg>(msg)->round = qd_round_;
  CmiSetHandler(msg, qd_wave_handler_);
  converse::CmiSyncBroadcastAllAndFree(total, msg);
}

Charm::QdPeRound& Charm::qd_slot(int pe, std::uint64_t round) {
  if (qd_pe_.size() < static_cast<std::size_t>(machine_->num_pes())) {
    qd_pe_.resize(static_cast<std::size_t>(machine_->num_pes()));
  }
  QdPeRound& s = qd_pe_[static_cast<std::size_t>(pe)];
  if (!s.valid || s.round != round) {
    s = QdPeRound{};
    s.round = round;
    s.valid = true;
  }
  return s;
}

void Charm::qd_try_forward(int pe) {
  QdPeRound& s = qd_pe_[static_cast<std::size_t>(pe)];
  if (!s.wave_seen) return;
  const std::uint64_t round = s.round;

  // A PE's subtree is complete when it has its own wave plus one partial
  // per child subtree; partials carry how many PEs they aggregate.
  std::vector<int> children;
  machine_->tree_children(pe, children);
  int subtree = 1;
  for (int c : children) {
    // Subtree sizes under a k-ary tree: count nodes rooted at c.
    int stack[64];
    int top = 0;
    stack[top++] = c;
    int count = 0;
    std::vector<int> kids;
    while (top) {
      int n = stack[--top];
      ++count;
      machine_->tree_children(n, kids);
      for (int k : kids) stack[top++] = k;
    }
    subtree += count;
  }
  if (s.reports < subtree) return;
  assert(s.reports == subtree);

  if (pe != 0) {
    int parent = machine_->tree_parent(pe);
    std::uint32_t total =
        static_cast<std::uint32_t>(kCmiHeaderBytes + sizeof(QdReportMsg));
    void* msg = CmiAlloc(total);
    header_of(msg)->flags |= kMsgFlagSystem;
    auto* rm = msg_payload<QdReportMsg>(msg);
    rm->round = round;
    rm->created = s.created;
    rm->processed = s.processed;
    rm->reports = s.reports;
    CmiSetHandler(msg, qd_report_handler_);
    CmiSyncSendAndFree(parent, total, msg);
    s.valid = false;  // round done at this PE
    return;
  }

  // Root: evaluate the wave.
  std::uint64_t created = s.created;
  std::uint64_t processed = s.processed;
  s.valid = false;
  if (created == processed && created == qd_prev_created_ &&
      processed == qd_prev_processed_) {
    qd_active_ = false;
    auto cb = std::move(qd_cb_);
    qd_cb_ = nullptr;
    cb();
    return;
  }
  qd_prev_created_ = created;
  qd_prev_processed_ = processed;
  // Let in-flight work drain a little before the next wave.
  converse::Pe& mype = machine_->current_pe();
  mype.ctx().charge(machine_->options().mc.sched_loop_ns);
  Machine* m = machine_;
  machine_->scheduler_for_pe(0).schedule_at(
      mype.ctx().now() + 20'000, [this, m] {
    // Re-enter through a PE context: run the wave start as a step on PE 0.
    m->start(0, [this] { qd_start_wave(); });
  });
}

}  // namespace ugnirt::charm
