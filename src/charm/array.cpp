#include "charm/array.hpp"

#include <cstring>

namespace ugnirt::charm {

using converse::CmiAlloc;
using converse::CmiFree;
using converse::CmiSetHandler;
using converse::CmiSyncSendAndFree;
using converse::kCmiHeaderBytes;
using converse::msg_payload;

namespace {

struct ArrayMsgHead {
  std::int32_t idx;
  std::int32_t method;
  std::uint32_t bytes;
};

}  // namespace

ArrayManager::ArrayManager(Charm& charm, int n, Factory factory)
    : charm_(&charm), n_(n) {
  elements_.resize(static_cast<std::size_t>(n));
  location_.resize(static_cast<std::size_t>(n));
  load_.assign(static_cast<std::size_t>(n), 0.0);
  const int pes = charm_->machine().num_pes();
  // Block placement: idx -> pe, balanced remainders.
  for (int i = 0; i < n; ++i) {
    location_[static_cast<std::size_t>(i)] =
        static_cast<int>((static_cast<std::int64_t>(i) * pes) / n);
    elements_[static_cast<std::size_t>(i)] = factory(i);
    elements_[static_cast<std::size_t>(i)]->index_ = i;
  }
  handler_ = charm_->machine().register_handler([this](void* msg) {
    const auto* head = msg_payload<ArrayMsgHead>(msg);
    const void* payload =
        reinterpret_cast<const std::uint8_t*>(head) + sizeof(ArrayMsgHead);
    deliver(head->idx, head->method, payload, head->bytes);
    CmiFree(msg);
  });
}

void ArrayManager::invoke(int idx, int method, const void* payload,
                          std::uint32_t bytes) {
  assert(idx >= 0 && idx < n_);
  std::uint32_t total = static_cast<std::uint32_t>(
      kCmiHeaderBytes + sizeof(ArrayMsgHead) + bytes);
  void* msg = CmiAlloc(total);
  auto* head = msg_payload<ArrayMsgHead>(msg);
  head->idx = idx;
  head->method = method;
  head->bytes = bytes;
  if (bytes) {
    std::memcpy(reinterpret_cast<std::uint8_t*>(head) + sizeof(ArrayMsgHead),
                payload, bytes);
  }
  CmiSetHandler(msg, handler_);
  CmiSyncSendAndFree(location_[static_cast<std::size_t>(idx)], total, msg);
}

void ArrayManager::invoke_all(int method, const void* payload,
                              std::uint32_t bytes) {
  for (int i = 0; i < n_; ++i) invoke(i, method, payload, bytes);
}

void ArrayManager::deliver(int idx, int method, const void* payload,
                           std::uint32_t bytes) {
  ArrayElement* e = elements_[static_cast<std::size_t>(idx)].get();
  assert(e);
  assert(location_[static_cast<std::size_t>(idx)] ==
             converse::CmiMyPe() &&
         "array message delivered to a stale location");
  sim::Context& ctx = charm_->machine().current_pe().ctx();
  SimTime before = ctx.app_total();
  e->receive(method, payload, bytes);
  load_[static_cast<std::size_t>(idx)] +=
      static_cast<double>(ctx.app_total() - before);
}

void ArrayManager::reset_load() {
  load_.assign(static_cast<std::size_t>(n_), 0.0);
}

int ArrayManager::migrate_to(const std::vector<int>& new_location) {
  assert(static_cast<int>(new_location.size()) == n_);
  converse::Machine& m = charm_->machine();
  int moves = 0;
  // Charge each source PE the packing + send cost and each destination the
  // receive cost; advance per-PE availability so the next application step
  // starts after the migration traffic.
  const auto& mc = m.options().mc;
  for (int i = 0; i < n_; ++i) {
    int from = location_[static_cast<std::size_t>(i)];
    int to = new_location[static_cast<std::size_t>(i)];
    if (from == to) continue;
    ++moves;
    std::uint32_t bytes = elements_[static_cast<std::size_t>(i)]->pack_size();
    gemini::TransferRequest req;
    req.mech = bytes >= mc.rdma_threshold ? gemini::Mechanism::kBtePut
                                          : gemini::Mechanism::kFmaPut;
    req.initiator_node = m.node_of_pe(from);
    req.remote_node = m.node_of_pe(to);
    req.bytes = bytes;
    req.issue = m.pe(from).ctx().now();
    gemini::TransferTimes t = m.network().transfer(req);
    m.pe(from).ctx().wait_until(t.cpu_done);
    m.pe(to).ctx().wait_until(t.data_arrival);
    location_[static_cast<std::size_t>(i)] = to;
  }
  return moves;
}

}  // namespace ugnirt::charm
