// Sequential deterministic discrete-event engine.
//
// Everything in the reproduction runs on virtual time: simulated PEs,
// the Gemini NIC model, and the runtime protocol state machines schedule
// callbacks here.  Events with equal timestamps fire in scheduling order
// (a monotonically increasing sequence number breaks ties), which makes
// every run bit-reproducible.
//
// The pending-event set lives behind sim::EventQueue (event_queue.hpp):
// a binary-heap oracle or an O(1) calendar queue, selected per engine.
// Both backends honor the same (time, seq) total order, so the choice
// affects wall-clock speed only — never the event sequence.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "sim/event_queue.hpp"
#include "util/units.hpp"

namespace ugnirt::sim {

class Engine;

/// Handle to a scheduled event; allows cancellation (e.g. timeouts that are
/// disarmed when the awaited completion arrives first).
class EventHandle {
 public:
  EventHandle() = default;

  /// Prevent the callback from running.  Safe to call multiple times and
  /// after the event fired (no-op).  Cancellation never touches the
  /// queue: it flips the shared tombstone and the engine skips the dead
  /// event when it surfaces.
  void cancel();

  bool valid() const { return !token_.expired(); }

 private:
  friend class Engine;
  explicit EventHandle(std::weak_ptr<bool> token) : token_(std::move(token)) {}
  std::weak_ptr<bool> token_;
};

class Engine {
 public:
  /// Default backend comes from UGNIRT_SIM_QUEUE (heap when unset) so
  /// standalone engines — tests, benches — honor the knob too.
  Engine() : Engine(queue_kind_from_env()) {}
  explicit Engine(QueueKind kind);
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  SimTime now() const { return now_; }

  /// Schedule `fn` at absolute virtual time `when` (clamped to now()).
  EventHandle schedule_at(SimTime when, std::function<void()> fn);

  /// Schedule `fn` after `delay` nanoseconds.
  EventHandle schedule_after(SimTime delay, std::function<void()> fn) {
    return schedule_at(now_ + delay, std::move(fn));
  }

  /// Run until the event queue drains or stop() is called.
  /// Returns the number of events executed.
  std::uint64_t run();

  /// Run until virtual time exceeds `until` (events at exactly `until` run).
  std::uint64_t run_until(SimTime until);

  /// Request run()/run_until() to return after the current event.
  void stop() { stopped_ = true; }

  bool empty() const { return queue_->empty(); }
  std::size_t pending() const { return queue_->size(); }
  std::uint64_t executed() const { return executed_; }
  QueueKind queue_kind() const { return kind_; }

 private:
  bool pop_and_run();

  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  bool stopped_ = false;
  QueueKind kind_;
  std::unique_ptr<EventQueue> queue_;
};

}  // namespace ugnirt::sim
