#include "tenancy/generators.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "converse/message.hpp"
#include "util/rng.hpp"

namespace ugnirt::tenancy {

const char* pattern_name(TrafficPattern p) {
  switch (p) {
    case TrafficPattern::kKNeighborHalo:
      return "kneighbor";
    case TrafficPattern::kAllToAllShuffle:
      return "alltoall";
    case TrafficPattern::kCheckpointBurst:
      return "checkpoint";
  }
  return "?";
}

bool pattern_from_string(const std::string& s, TrafficPattern* out) {
  if (s == "kneighbor") {
    *out = TrafficPattern::kKNeighborHalo;
  } else if (s == "alltoall") {
    *out = TrafficPattern::kAllToAllShuffle;
  } else if (s == "checkpoint") {
    *out = TrafficPattern::kCheckpointBurst;
  } else {
    return false;
  }
  return true;
}

namespace {
inline SimTime now_ns() {
  return static_cast<SimTime>(converse::CmiWallTimer() * 1e9);
}
}  // namespace

struct TrafficGenerator::State {
  converse::Machine* m = nullptr;
  trace::Histogram* hist = nullptr;
  GeneratorOptions opts;
  std::vector<int> pes;      // job-local rank -> global PE
  std::vector<int> rank_of;  // global PE -> job-local rank (-1 outside)
  int n = 0;                 // job size
  int k = 0;                 // effective halo depth
  int io = 1;                // effective checkpoint IO ranks
  std::uint32_t total_bytes = 0;  // payload + Converse header
  int handler = -1;
  std::uint64_t received = 0;
  std::uint64_t expected = 0;
  std::vector<std::uint32_t> got;  // per-rank arrivals since last advance
  std::vector<int> iter;           // per-rank iterations already sent
  // Shuffle: per-rank seeded destination permutation (excludes self).
  std::vector<std::vector<int>> order;

  void send_to(int dest_rank) {
    void* msg = converse::CmiAlloc(total_bytes);
    const SimTime sent = now_ns();
    std::memcpy(converse::payload_of(msg), &sent, sizeof(sent));
    converse::CmiSetHandler(msg, handler);
    converse::CmiSyncSendAndFree(pes[static_cast<std::size_t>(dest_rank)],
                                 total_bytes, msg);
  }

  /// One iteration's worth of sends from rank `r`.
  void send_iteration(int r) {
    switch (opts.pattern) {
      case TrafficPattern::kKNeighborHalo:
        for (int d = 1; d <= k; ++d) {
          send_to((r + d) % n);
          send_to((r - d + n) % n);
        }
        break;
      case TrafficPattern::kAllToAllShuffle:
        for (int dest : order[static_cast<std::size_t>(r)]) send_to(dest);
        break;
      case TrafficPattern::kCheckpointBurst:
        // Driven start-fn-side (bursts separated by think time); nothing
        // is handler-driven.
        break;
    }
  }

  /// Arrivals a rank needs before advancing to its next iteration.
  std::uint32_t arrivals_per_iteration() const {
    switch (opts.pattern) {
      case TrafficPattern::kKNeighborHalo:
        return static_cast<std::uint32_t>(2 * k);
      case TrafficPattern::kAllToAllShuffle:
        return static_cast<std::uint32_t>(n - 1);
      case TrafficPattern::kCheckpointBurst:
        return 0;
    }
    return 0;
  }

  void on_receive(void* msg) {
    SimTime sent;
    std::memcpy(&sent, converse::payload_of(msg), sizeof(sent));
    hist->add(static_cast<double>(now_ns() - sent) / 1000.0);
    ++received;
    const int r = rank_of[static_cast<std::size_t>(converse::CmiMyPe())];
    const std::uint32_t quorum = arrivals_per_iteration();
    if (quorum > 0 && r >= 0) {
      // Count-based advance: any `quorum` arrivals release the next
      // iteration (per-pair FIFO keeps this deterministic even when a
      // fast neighbor runs ahead).
      std::uint32_t& g = got[static_cast<std::size_t>(r)];
      int& it = iter[static_cast<std::size_t>(r)];
      if (++g >= quorum && it + 1 < opts.iterations) {
        g -= quorum;
        ++it;
        send_iteration(r);
      }
    }
    converse::CmiFree(msg);
  }
};

TrafficGenerator::TrafficGenerator(JobManager& jobs, JobId job,
                                   GeneratorOptions opts)
    : jobs_(&jobs), job_(job), opts_(opts), state_(std::make_shared<State>()) {
  assert(jobs.placed() && "construct generators after JobManager::place()");
  State& st = *state_;
  st.m = &jobs.machine();
  st.opts = opts_;
  st.opts.iterations = std::max(st.opts.iterations, 1);
  st.opts.payload = std::max<std::uint32_t>(st.opts.payload, 16);
  st.pes = jobs.job(job).pes();
  st.n = static_cast<int>(st.pes.size());
  st.rank_of.assign(static_cast<std::size_t>(st.m->num_pes()), -1);
  for (std::size_t r = 0; r < st.pes.size(); ++r) {
    st.rank_of[static_cast<std::size_t>(st.pes[r])] = static_cast<int>(r);
  }
  st.k = std::clamp(st.opts.k, 0, st.n > 0 ? (st.n - 1) / 2 : 0);
  st.io = std::clamp(st.opts.io_ranks, 1, std::max(st.n, 1));
  st.total_bytes = st.opts.payload + converse::kCmiHeaderBytes;
  st.hist = &jobs.delivery_hist(job);
  st.got.assign(static_cast<std::size_t>(st.n), 0);
  st.iter.assign(static_cast<std::size_t>(st.n), 0);

  const std::uint64_t it = static_cast<std::uint64_t>(st.opts.iterations);
  switch (st.opts.pattern) {
    case TrafficPattern::kKNeighborHalo:
      st.expected = static_cast<std::uint64_t>(st.n) * 2 *
                    static_cast<std::uint64_t>(st.k) * it;
      break;
    case TrafficPattern::kAllToAllShuffle: {
      // Per-rank destination order: seeded Fisher-Yates so the storm's
      // hot spots move around deterministically.
      const std::uint64_t base =
          st.opts.seed != 0
              ? st.opts.seed
              : st.m->options().seed ^
                    (0x9e3779b97f4a7c15ULL * (static_cast<std::uint64_t>(job_) + 1));
      st.order.resize(static_cast<std::size_t>(st.n));
      for (int r = 0; r < st.n; ++r) {
        auto& ord = st.order[static_cast<std::size_t>(r)];
        ord.reserve(static_cast<std::size_t>(st.n - 1));
        for (int d = 0; d < st.n; ++d) {
          if (d != r) ord.push_back(d);
        }
        Rng rng(SplitMix64(base ^ static_cast<std::uint64_t>(r)).next());
        for (std::size_t i = ord.size(); i > 1; --i) {
          std::swap(ord[i - 1], ord[rng.next_below(static_cast<std::uint32_t>(i))]);
        }
      }
      st.expected = static_cast<std::uint64_t>(st.n) *
                    static_cast<std::uint64_t>(st.n - 1) * it;
      break;
    }
    case TrafficPattern::kCheckpointBurst:
      // IO ranks (the first `io` job-local ranks) don't dump to
      // themselves; everyone else checkpoints every burst.
      st.expected = static_cast<std::uint64_t>(st.n - st.io) * it;
      break;
  }
}

void TrafficGenerator::launch() {
  std::shared_ptr<State> st = state_;
  st->handler =
      st->m->register_handler([st](void* msg) { st->on_receive(msg); });
  switch (st->opts.pattern) {
    case TrafficPattern::kKNeighborHalo:
    case TrafficPattern::kAllToAllShuffle:
      if (st->expected == 0) return;  // degenerate job (n too small)
      for (int r = 0; r < st->n; ++r) {
        st->m->start(st->pes[static_cast<std::size_t>(r)],
                     [st, r] { st->send_iteration(r); });
      }
      break;
    case TrafficPattern::kCheckpointBurst:
      for (int r = st->io; r < st->n; ++r) {
        const int target = r % st->io;
        st->m->start(st->pes[static_cast<std::size_t>(r)], [st, target] {
          for (int b = 0; b < st->opts.iterations; ++b) {
            if (b > 0) converse::CmiChargeWork(st->opts.burst_gap_ns);
            st->send_to(target);
          }
        });
      }
      break;
  }
}

std::uint64_t TrafficGenerator::expected_messages() const {
  return state_->expected;
}

std::uint64_t TrafficGenerator::received() const { return state_->received; }

}  // namespace ugnirt::tenancy
