file(REMOVE_RECURSE
  "CMakeFiles/test_minimd_property.dir/minimd_property_test.cpp.o"
  "CMakeFiles/test_minimd_property.dir/minimd_property_test.cpp.o.d"
  "test_minimd_property"
  "test_minimd_property.pdb"
  "test_minimd_property[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_minimd_property.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
