file(REMOVE_RECURSE
  "CMakeFiles/fig06_initial_ugni.dir/fig06_initial_ugni.cpp.o"
  "CMakeFiles/fig06_initial_ugni.dir/fig06_initial_ugni.cpp.o.d"
  "fig06_initial_ugni"
  "fig06_initial_ugni.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_initial_ugni.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
