// Per-PE, per-destination small-message coalescing (TRAM-lite).
//
// Fine-grained apps (kNeighbor, NQueens) pay one full SMSG transaction —
// mailbox credit, CQ event, scheduler wakeup — per tiny message.  The
// aggregator sits between Converse's unified submit() entry and the LRTS
// layer: outgoing messages smaller than `agg.threshold` are packed into a
// per-destination framed batch (see frame.hpp) which ships as ONE ordinary
// Converse message (flag kMsgFlagAggBatch) when
//
//   * the buffer fills (capacity = min(agg.buffer_bytes, what the layer
//     moves in a single transaction to that destination)),
//   * `agg.max_delay_ns` of virtual time passes since the buffer's first
//     message (timer armed through the owning PE's scheduler), or
//   * the PE goes idle / reaches an explicit barrier flush.
//
// Ordering: per-(source, destination) FIFO is preserved.  Messages append
// to the buffer in send order; any message that must bypass the aggregator
// (too big, persistent, layer opted the pair out) first flushes that
// destination's pending buffer so it cannot overtake earlier traffic.
//
// Buffers are leased from the machine layer's allocator — on the uGNI
// layer that is the pre-registered mempool, so a flush needs no
// registration and batches ride the same zero-copy paths as any message.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "aggregation/config.hpp"
#include "aggregation/frame.hpp"
#include "util/units.hpp"

namespace ugnirt::sim {
class Context;
}
namespace ugnirt {
class RunningStat;
}
namespace ugnirt::trace {
class Counter;
}
namespace ugnirt::converse {
class Machine;
class Pe;
}

namespace ugnirt::aggregation {

/// Why a buffer is being shipped (drives the agg.flush_* metrics).
enum class FlushReason : std::uint8_t {
  kFull,     // next message would not fit
  kTimeout,  // agg.max_delay_ns expired
  kIdle,     // owning PE drained its scheduler queue
  kBarrier,  // explicit flush (ordering barrier before a bypass send)
};

class Aggregator {
 public:
  Aggregator(converse::Machine& machine, const AggregationConfig& cfg);
  ~Aggregator();
  Aggregator(const Aggregator&) = delete;
  Aggregator& operator=(const Aggregator&) = delete;

  const AggregationConfig& config() const { return cfg_; }

  /// Try to coalesce `msg` (already enveloped; src_pe stamped) bound for
  /// `dest_pe`.  On success ownership of `msg` ends here (its bytes are
  /// packed and the buffer freed) and true is returned.  False means the
  /// pair is not aggregable (layer opted out, or the message can never
  /// fit a frame) and the caller must send it directly — flush_dest() has
  /// already run, so a direct send cannot overtake packed traffic.
  bool enqueue(sim::Context& ctx, converse::Pe& src, int dest_pe, void* msg);

  /// Ship the (src, dest_pe) buffer now, if one is pending.
  void flush_dest(sim::Context& ctx, converse::Pe& src, int dest_pe,
                  FlushReason reason = FlushReason::kBarrier);

  /// Ship every buffer on `src` whose deadline has passed.
  void flush_expired(sim::Context& ctx, converse::Pe& src);

  /// Ship every buffer on `src` (idle / barrier flush).
  void flush_all(sim::Context& ctx, converse::Pe& src,
                 FlushReason reason = FlushReason::kIdle);

  /// Earliest pending flush deadline on `pe_id`, or kNever.  The scheduler
  /// uses this to keep a wake armed while buffers are outstanding.
  SimTime earliest_deadline(int pe_id) const;

  /// True when `pe_id` holds any unsent messages (tests / diagnostics).
  bool has_pending(int pe_id) const;

 private:
  struct Buf {
    void* msg = nullptr;  // the batch message (Converse envelope at front)
    std::optional<FrameWriter> writer;
    SimTime deadline = kNever;
  };
  struct PeAgg {
    // std::map: deterministic flush order across runs.
    std::map<int, Buf> bufs;
  };

  void ship(sim::Context& ctx, converse::Pe& src, int dest_pe, Buf& buf,
            FlushReason reason);

  converse::Machine& machine_;
  AggregationConfig cfg_;
  std::vector<PeAgg> per_pe_;

  // Hot-path instruments (address-stable registry storage).
  trace::Counter* c_batched_ = nullptr;
  trace::Counter* c_bypass_ = nullptr;
  trace::Counter* c_flushes_ = nullptr;
  trace::Counter* c_flush_full_ = nullptr;
  trace::Counter* c_flush_timeout_ = nullptr;
  trace::Counter* c_flush_idle_ = nullptr;
  RunningStat* s_flush_msgs_ = nullptr;
  RunningStat* s_flush_bytes_ = nullptr;
};

}  // namespace ugnirt::aggregation
