// Lightweight statistics helpers used by benchmarks and the tracer.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

namespace ugnirt {

/// Streaming mean / min / max / stddev (Welford's algorithm).
class RunningStat {
 public:
  void add(double x) {
    ++n_;
    double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
    sum_ += x;
  }

  /// Fold another stream into this one (parallel Welford / Chan et al.),
  /// preserving exact count/mean/variance as if all samples were added here.
  void merge(const RunningStat& o) {
    if (o.n_ == 0) return;
    if (n_ == 0) {
      *this = o;
      return;
    }
    const double delta = o.mean_ - mean_;
    const std::uint64_t n = n_ + o.n_;
    mean_ += delta * static_cast<double>(o.n_) / static_cast<double>(n);
    m2_ += o.m2_ + delta * delta * static_cast<double>(n_) *
                       static_cast<double>(o.n_) / static_cast<double>(n);
    n_ = n;
    sum_ += o.sum_;
    min_ = std::min(min_, o.min_);
    max_ = std::max(max_, o.max_);
  }

  std::uint64_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double sum() const { return sum_; }
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  double stddev() const { return std::sqrt(variance()); }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Stores samples; supports exact percentiles.  Fine for bench-scale counts.
class Samples {
 public:
  void add(double x) {
    data_.push_back(x);
    sorted_ = false;
  }

  std::size_t count() const { return data_.size(); }

  double percentile(double p) {
    if (data_.empty()) return 0.0;
    sort_if_needed();
    double rank = p / 100.0 * static_cast<double>(data_.size() - 1);
    auto lo = static_cast<std::size_t>(rank);
    auto hi = std::min(lo + 1, data_.size() - 1);
    double frac = rank - static_cast<double>(lo);
    return data_[lo] * (1.0 - frac) + data_[hi] * frac;
  }

  double median() { return percentile(50.0); }

  double mean() const {
    if (data_.empty()) return 0.0;
    double s = 0.0;
    for (double x : data_) s += x;
    return s / static_cast<double>(data_.size());
  }

  double max() {
    if (data_.empty()) return 0.0;
    sort_if_needed();
    return data_.back();
  }

  double min() {
    if (data_.empty()) return 0.0;
    sort_if_needed();
    return data_.front();
  }

  const std::vector<double>& raw() const { return data_; }

 private:
  void sort_if_needed() {
    if (!sorted_) {
      std::sort(data_.begin(), data_.end());
      sorted_ = true;
    }
  }

  std::vector<double> data_;
  bool sorted_ = false;
};

/// Fixed-bin histogram over [lo, hi); out-of-range values clamp to end bins.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins)
      : lo_(lo), hi_(hi), counts_(bins, 0) {}

  void add(double x) {
    double span = hi_ - lo_;
    std::size_t bins = counts_.size();
    std::size_t idx = 0;
    if (span > 0 && x >= lo_) {
      idx = static_cast<std::size_t>((x - lo_) / span *
                                     static_cast<double>(bins));
      if (idx >= bins) idx = bins - 1;
    }
    ++counts_[idx];
    ++total_;
  }

  std::uint64_t bin(std::size_t i) const { return counts_.at(i); }
  std::size_t bins() const { return counts_.size(); }
  std::uint64_t total() const { return total_; }

 private:
  double lo_;
  double hi_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

}  // namespace ugnirt
