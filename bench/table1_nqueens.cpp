// Table I: best core count and run time for N-Queens, N = 14..19, on the
// uGNI-based and MPI-based CHARM++ (paper §V-C).  The core counts are the
// paper's own "best" columns; times are what this reproduction measures at
// exactly those scales.
#include "bench_util.hpp"
#include "nqueens_bench_util.hpp"

using namespace ugnirt;
using namespace ugnirt::apps::nqueens;

int main() {
  benchtool::NqModels models;
  benchtool::Table table("table1_nqueens", "queens");
  table.add_column("uGNI_cores");
  table.add_column("MPI_cores");
  table.add_column("uGNI_time_s");
  table.add_column("MPI_time_s");
  table.add_column("paper_uGNI_s");
  table.add_column("paper_MPI_s");

  struct Row {
    int n;
    int ugni_cores, mpi_cores;
    double paper_ugni_s, paper_mpi_s;
  };
  // Core counts and reference times straight from the paper's Table I.
  const Row rows[] = {
      {14, 256, 48, 0.005, 0.02},   {15, 480, 120, 0.007, 0.03},
      {16, 1536, 384, 0.014, 0.056}, {17, 3840, 1536, 0.029, 0.19},
      {18, 7680, 3840, 0.09, 0.35}, {19, 15360, 7680, 0.33, 1.42},
  };

  for (const Row& row : rows) {
    int thr = benchtool::nq_threshold(row.n);
    auto run = [&](converse::LayerKind layer, int cores) {
      converse::MachineOptions o;
      o.pes = cores;
      o.layer = layer;
      NQueensConfig cfg;
      cfg.n = row.n;
      cfg.threshold = thr;
      cfg.model = models.get(row.n, thr);
      return run_nqueens(o, cfg);
    };
    NQueensResult ug = run(converse::LayerKind::kUgni, row.ugni_cores);
    NQueensResult mp = run(converse::LayerKind::kMpi, row.mpi_cores);
    table.add_row(std::to_string(row.n),
                  {static_cast<double>(row.ugni_cores),
                   static_cast<double>(row.mpi_cores), to_s(ug.elapsed),
                   to_s(mp.elapsed), row.paper_ugni_s, row.paper_mpi_s});
    std::printf("  [n=%d] uGNI tasks=%llu  MPI tasks=%llu\n", row.n,
                static_cast<unsigned long long>(ug.tasks),
                static_cast<unsigned long long>(mp.tasks));
    std::fflush(stdout);
  }
  table.print();
  std::printf("Paper shape: at every N the uGNI layer runs at more cores in\n"
              "much less time; 19-Queens reaches 15,360 cores with ~70%%\n"
              "less time than the MPI-based runtime.\n");
  return 0;
}
