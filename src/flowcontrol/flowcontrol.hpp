// Congestion control: link-load telemetry and adaptive injection pacing.
//
// The gemini::Network reproduces torus contention through FIFO link
// reservations, but every layer above it injects blindly: rendezvous GETs
// post as fast as INIT messages arrive, and the eager/rendezvous and
// FMA/BTE size thresholds are fixed MachineConfig constants.  Under
// hotspot traffic that floods the victim node's links and the tail
// latency explodes (Jha et al., "A Study of Network Congestion in Two
// Supercomputing High-Speed Interconnects").
//
// This subsystem closes the loop:
//
//   * CongestionEstimator — fed by Network::reserve_route with one O(1)
//     EWMA update per link reservation (sample = wait/(wait+duration)),
//     it tracks a smoothed wait fraction per directional link and per
//     NIC.  The network also consults it for congestion-aware minimal
//     adaptive routing (see Network::pick_route).
//   * InjectionGovernor — owned by the uGNI LRTS layer.  An AIMD window
//     per PE caps outstanding FMA/BTE transactions: rendezvous GETs that
//     would exceed the window are deferred (kInjectionStall) and drained
//     from the progress engine as completions free slots.  Completions
//     on hot paths shrink the window multiplicatively; cool completions
//     grow it additively.  The governor also adapts the eager cap and
//     the FMA/BTE threshold while the destination NIC is hot.
//
// Everything is a deterministic function of the (deterministic) reserve
// and completion sequences, so seeded runs stay bit-reproducible.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "flowcontrol/config.hpp"
#include "trace/metrics.hpp"
#include "util/units.hpp"

namespace ugnirt::flowcontrol {

/// EWMA link/NIC load estimates, updated on every link reservation.
class CongestionEstimator {
 public:
  CongestionEstimator(const FlowConfig& cfg, std::size_t num_links,
                      std::size_t num_nodes);

  /// Fold one reservation into the estimates: the link carried
  /// `duration_ns` of traffic after `wait_ns` of queueing, initiated by
  /// `initiator_node`'s NIC.  O(1); called from Network::reserve_route.
  void on_link_reserve(std::size_t link, int initiator_node, SimTime wait_ns,
                       SimTime duration_ns, SimTime now);

  /// Smoothed wait fraction of one directional link, in [0, 1).
  double link_load(std::size_t link) const { return link_load_[link]; }
  /// Smoothed wait fraction over all reservations initiated by this
  /// node's NIC — the hotspot signal the governor keys off.
  double node_load(int node) const {
    return node_load_[static_cast<std::size_t>(node)];
  }
  bool node_hot(int node) const {
    return node_load(node) >= cfg_.hot_threshold;
  }

  const FlowConfig& config() const { return cfg_; }

  std::uint64_t samples() const { return samples_; }

  /// Publish flow.samples / flow.hot_samples counters plus link-load
  /// gauges into the registry.
  void collect_metrics(trace::MetricsRegistry& reg) const;

 private:
  FlowConfig cfg_;
  std::vector<double> link_load_;   // per directional link
  std::vector<double> node_load_;   // per NIC (initiator node)
  std::vector<SimTime> last_sample_;  // kCongestionSample rate limiting
  std::uint64_t samples_ = 0;
  std::uint64_t hot_samples_ = 0;  // samples taken while the NIC was hot
};

/// Per-PE quality-of-service bounds layered onto the AIMD window by the
/// tenancy subsystem (JobManager::place maps a job's QoS class to one of
/// these per PE).  Default-constructed params are inert: the window keeps
/// the configured [window_min, window_max] range and deferred-GET drains
/// stay unbounded, so a governor with no QoS set behaves bit-identically
/// to stock.
struct QosParams {
  /// AIMD floor; 0 keeps FlowConfig::window_min.  Latency-class jobs
  /// raise it so hotspot backoff cannot starve their rendezvous GETs.
  std::uint32_t window_floor = 0;
  /// AIMD ceiling; 0 keeps FlowConfig::window_max.  Bulk/scavenger jobs
  /// lower it so their storms cannot monopolize links.
  std::uint32_t window_ceiling = 0;
  /// Max deferred-GET re-admissions per drain_deferred_gets pass;
  /// 0 = unbounded.  The weighted-admission knob: scavengers trickle
  /// their queued GETs while latency jobs drain freely.
  std::uint32_t drain_quota = 0;
};

/// Per-PE AIMD window over outstanding governed transactions, plus
/// runtime-adapted protocol thresholds.  Construct via make_governor()
/// (enforced by tools/check_deprecated_sends.sh) so every call site is
/// QoS-capable.
class InjectionGovernor {
 public:
  InjectionGovernor(const FlowConfig& cfg, const CongestionEstimator* est,
                    int num_pes);

  /// Admission check for a governed post (rendezvous GET).  On success
  /// the transaction counts against `pe`'s window.  On refusal (window
  /// full and pacing on) the caller must defer and re-try from its
  /// progress engine; a kInjectionStall event is emitted.
  bool try_acquire(int pe, int dest, std::uint32_t bytes, SimTime now);

  /// Whether try_acquire would admit, without side effects — progress
  /// engines poll this so drain retries don't inflate the stall count.
  bool would_admit(int pe) const {
    const PeWindow& w = pe_[static_cast<std::size_t>(pe)];
    return !cfg_.pace_rendezvous ||
           w.outstanding < static_cast<std::uint32_t>(w.cwnd);
  }

  /// Count an ungoverned post (persistent PUT: latency-critical, never
  /// deferred) against the window so its completion drives AIMD too.
  void note_post(int pe);

  /// A governed/noted transaction completed; `node` is the completing
  /// PE's node, whose estimated load steers the AIMD update.
  void on_complete(int pe, int node, SimTime now);

  std::uint32_t window(int pe) const {
    return static_cast<std::uint32_t>(pe_[static_cast<std::size_t>(pe)].cwnd);
  }
  std::uint32_t outstanding(int pe) const {
    return pe_[static_cast<std::size_t>(pe)].outstanding;
  }

  /// Install per-PE QoS bounds (tenancy: job QoS class -> window bounds +
  /// drain quota).  The current window is clamped into the new range
  /// immediately; AIMD updates stay inside it from then on.
  void set_pe_qos(int pe, const QosParams& qos);
  /// The PE's deferred-GET re-admission quota per drain pass (0 = none
  /// set: drain everything the window admits).
  std::uint32_t drain_quota(int pe) const {
    return pe_[static_cast<std::size_t>(pe)].drain_quota;
  }

  /// Eager/rendezvous boundary: the configured cap while the node is
  /// cool, shrunk while it is hot so mid-size messages take the paced
  /// rendezvous path instead of stuffing SMSG mailboxes.
  std::uint32_t eager_cap(std::uint32_t base, int node) const;

  /// FMA/BTE GET boundary: hot nodes switch to the offloaded BTE engine
  /// earlier, freeing the CPU to drain completions.
  std::uint32_t rdma_threshold(std::uint32_t base, int node) const;

  void collect_metrics(trace::MetricsRegistry& reg) const;

 private:
  struct PeWindow {
    double cwnd = 0;
    std::uint32_t outstanding = 0;
    // Effective AIMD bounds: FlowConfig::window_{min,max} until QoS
    // narrows them (see set_pe_qos).
    std::uint32_t floor = 1;
    std::uint32_t ceiling = 1;
    std::uint32_t drain_quota = 0;
  };

  FlowConfig cfg_;
  const CongestionEstimator* est_;  // may be null (telemetry disabled)
  std::vector<PeWindow> pe_;
  std::uint64_t admits_ = 0;
  std::uint64_t stalls_ = 0;
  std::uint64_t increases_ = 0;
  std::uint64_t decreases_ = 0;
  mutable std::uint64_t eager_shrinks_ = 0;
  mutable std::uint64_t rdma_shifts_ = 0;
  std::uint64_t qos_pes_ = 0;  // PEs with QoS bounds installed
};

/// The one sanctioned way to build an InjectionGovernor.  Layers and tests
/// go through here (direct construction outside src/flowcontrol and
/// src/tenancy trips the deprecated-send lint) so per-job QoS classes can
/// never be bypassed by a new call site growing its own governor.
std::unique_ptr<InjectionGovernor> make_governor(const FlowConfig& cfg,
                                                 const CongestionEstimator* est,
                                                 int num_pes);

}  // namespace ugnirt::flowcontrol
