// Figure 1: ping-pong one-way latency of pure uGNI, pure MPI, and the
// MPI-based CHARM++, 32 B .. 64 KiB (paper §I).
#include "apps/microbench/microbench.hpp"
#include "bench_util.hpp"

using namespace ugnirt;
using namespace ugnirt::apps;

int main() {
  gemini::MachineConfig mc;
  benchtool::Table table("fig01_pingpong_layers", "msg_bytes");
  table.add_column("uGNI_us");
  table.add_column("MPI_us");
  table.add_column("MPI_CHARM_us");

  converse::MachineOptions mpi_charm;
  mpi_charm.layer = converse::LayerKind::kMpi;
  mpi_charm.pes_per_node = 1;

  for (std::uint64_t size : benchtool::size_sweep(32, 64 * 1024)) {
    SimTime ugni = bench::pure_ugni_pingpong(mc, static_cast<std::uint32_t>(size));
    SimTime mpi = bench::pure_mpi_pingpong(mc, static_cast<std::uint32_t>(size),
                                           /*same_buffer=*/true);
    bench::PingPongOptions pp;
    pp.payload = static_cast<std::uint32_t>(size);
    SimTime charm = bench::charm_pingpong(mpi_charm, pp);
    table.add_row(benchtool::size_label(size),
                  {to_us(ugni), to_us(mpi), to_us(charm)});
  }
  table.print();
  std::printf("Paper shape: MPI adds overhead over uGNI; MPI-based CHARM++ "
              "is slowest at every size.\n");
  return 0;
}
