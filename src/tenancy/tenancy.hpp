// Multi-tenant job management over one simulated torus.
//
// The paper evaluates the runtime with a single job owning the machine,
// but on production Gemini systems the dominant tail-latency driver is
// *other jobs'* traffic sharing the torus (Jha et al., PAPERS.md).  This
// subsystem reproduces that regime without forking the runtime: one
// Machine (shared Network + Engine) hosts many jobs, each owning a
// disjoint set of PEs.
//
//   * JobManager — owns the job table and the PE allocation.  place()
//     carves the machine's PE space by policy (compact slab, scattered
//     round-robin deal, or seeded random-fragmented — the allocation
//     shapes Jha et al. measure), pushes each job's QoS class into the
//     InjectionGovernor as per-PE window bounds + drain quotas, and
//     installs job attribution on the Network (per-job link queueing) and
//     the EventTracer (a `job` column on exported trace rows).
//   * QoS classes — `latency` jobs get an AIMD window floor so hotspot
//     backoff cannot starve them; `bulk` and `scavenger` jobs get window
//     ceilings and deferred-GET drain quotas so their storms cannot
//     monopolize links.  Enforcement lives entirely in the existing
//     governor (flowcontrol::QosParams); with flow control off, QoS is
//     silently skipped and jobs only partition the PE space.
//   * Metrics — per-job rows (`job.<id>.pes`, `job.<id>.msgs_executed`,
//     `job.<id>.delivery_us`, `job.<id>.link_wait_ns`, ...) ride the
//     existing MetricsRegistry CSV/JSON pipeline, so a victim job's p99
//     reads straight out of the standard exports.
//
// Everything is a deterministic function of the seeds, so multi-tenant
// runs stay bit-reproducible across shard counts and queue backends.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "converse/machine.hpp"
#include "tenancy/config.hpp"
#include "trace/metrics.hpp"

namespace ugnirt::tenancy {

/// Per-job service class, mapped onto governor window bounds by place().
enum class QosClass : std::uint8_t {
  kLatency,    // tail-latency sensitive: window floor, unbounded drain
  kBulk,       // throughput batch: window ceiling + drain quota
  kScavenger,  // background filler: tight ceiling, trickle drain
};

const char* qos_name(QosClass q);
bool qos_from_string(const std::string& s, QosClass* out);

/// How a job's PEs are carved out of the machine (Jha et al.'s
/// allocation shapes).
enum class Placement : std::uint8_t {
  kCompact,  // contiguous slab of PE ids
  kScatter,  // round-robin deal across the PE space
  kRandom,   // seeded shuffle: fragmented all over the torus
};

const char* placement_name(Placement p);
bool placement_from_string(const std::string& s, Placement* out);

using JobId = int;

struct JobSpec {
  std::string name;
  int pes = 0;
  QosClass qos = QosClass::kBulk;
};

/// One placed job: its spec plus the global PEs it owns (ascending, so
/// job-local rank order is deterministic under every placement).
class Job {
 public:
  Job(JobId id, JobSpec spec) : id_(id), spec_(std::move(spec)) {}

  JobId id() const { return id_; }
  const JobSpec& spec() const { return spec_; }
  const std::string& name() const { return spec_.name; }
  QosClass qos() const { return spec_.qos; }
  int size() const { return spec_.pes; }
  /// Global PE of job-local rank `r`.
  int pe(int r) const { return pes_[static_cast<std::size_t>(r)]; }
  const std::vector<int>& pes() const { return pes_; }

 private:
  friend class JobManager;
  JobId id_;
  JobSpec spec_;
  std::vector<int> pes_;
};

class JobManager {
 public:
  /// Binds to `m` (not owned; must outlive the manager) and pre-loads
  /// jobs from cfg.jobs ("name:qos:pes,..." — see TenancyConfig).
  JobManager(converse::Machine& m, const TenancyConfig& cfg);

  /// Add one job before place(); returns its id (dense, 0-based).
  JobId add_job(JobSpec spec);

  /// Carve the PE space by the configured placement, push QoS into the
  /// governor (when flow control is on and cfg.qos_enable), and install
  /// job attribution on the network and tracer.  Call exactly once, after
  /// every add_job.
  void place();
  bool placed() const { return placed_; }

  int num_jobs() const { return static_cast<int>(jobs_.size()); }
  const Job& job(JobId id) const {
    return jobs_[static_cast<std::size_t>(id)];
  }
  Placement placement() const { return placement_; }
  const TenancyConfig& config() const { return cfg_; }
  converse::Machine& machine() { return *m_; }

  /// Owning job of a global PE, -1 when unassigned.
  int job_of_pe(int pe) const {
    return job_of_pe_[static_cast<std::size_t>(pe)];
  }
  /// Job-local rank of a global PE, -1 when unassigned.
  int rank_of_pe(int pe) const {
    return rank_of_pe_[static_cast<std::size_t>(pe)];
  }
  /// The per-PE job map (indexed by global PE; -1 = unassigned), as
  /// installed on the tracer/network.  Valid after place().
  const std::vector<std::int16_t>& job_map() const { return job_of_pe_; }

  /// "job.<id>.<suffix>" — the registry naming scheme for per-job rows.
  static std::string metric_name(JobId id, const char* suffix);

  /// Per-message delivery-latency histogram of a job
  /// ("job.<id>.delivery_us" in the machine registry): generators feed
  /// it, and its p50/p90/p99 ride the standard CSV/JSON exports.
  trace::Histogram& delivery_hist(JobId id);

  /// Publish job.<id>.pes / job.<id>.msgs_executed; the per-job link
  /// rows come from Network::collect_metrics once attribution is
  /// installed.  Call before Machine::collect_metrics-driven dumps.
  void collect_metrics();

 private:
  void parse_jobs_spec(const std::string& spec);
  void assign_pes();
  void apply_qos();
  void install_attribution();

  converse::Machine* m_;
  TenancyConfig cfg_;
  Placement placement_ = Placement::kCompact;
  std::vector<Job> jobs_;
  std::vector<std::int16_t> job_of_pe_;
  std::vector<int> rank_of_pe_;
  bool placed_ = false;
};

}  // namespace ugnirt::tenancy
