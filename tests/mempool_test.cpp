#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <vector>

#include "sim/engine.hpp"
#include "mempool/mempool.hpp"
#include "util/rng.hpp"

namespace ugnirt::mempool {
namespace {

class MemPoolFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    net_ = std::make_unique<gemini::Network>(
        engine_.scheduler(), topo::Torus3D::for_nodes(2), gemini::MachineConfig{});
    dom_ = std::make_unique<ugni::Domain>(*net_);
    ctx_ = std::make_unique<sim::Context>(engine_.scheduler(), 0);
    sim::ScopedContext guard(*ctx_);
    ASSERT_EQ(ugni::GNI_CdmAttach(dom_.get(), 0, 0, &nic_),
              ugni::GNI_RC_SUCCESS);
    pool_ = std::make_unique<MemPool>(nic_, 64 * 1024);
  }

  void TearDown() override {
    sim::ScopedContext guard(*ctx_);
    pool_.reset();
  }

  sim::Engine engine_{sim::EngineOptions{}};
  std::unique_ptr<gemini::Network> net_;
  std::unique_ptr<ugni::Domain> dom_;
  std::unique_ptr<sim::Context> ctx_;
  ugni::gni_nic_handle_t nic_ = nullptr;
  std::unique_ptr<MemPool> pool_;
};

TEST_F(MemPoolFixture, AllocReturnsUsableRegisteredMemory) {
  sim::ScopedContext guard(*ctx_);
  void* p = pool_->alloc(1000);
  ASSERT_NE(p, nullptr);
  EXPECT_TRUE(pool_->owns(p));
  EXPECT_GE(pool_->block_size(p), 1000u);
  std::memset(p, 0xAB, 1000);

  // The handle must point at a registered region covering the buffer.
  ugni::gni_mem_handle_t h = pool_->handle_of(p);
  EXPECT_NE(h.qword1, 0u);
  EXPECT_GE(nic_->registered_bytes(), 64u * 1024u);
  pool_->free(p);
}

TEST_F(MemPoolFixture, FreeThenAllocReusesBlock) {
  sim::ScopedContext guard(*ctx_);
  void* a = pool_->alloc(512);
  pool_->free(a);
  void* b = pool_->alloc(512);
  EXPECT_EQ(a, b);
  EXPECT_EQ(pool_->stats().freelist_hits, 1u);
  pool_->free(b);
}

TEST_F(MemPoolFixture, SizeClassesAreIsolated) {
  sim::ScopedContext guard(*ctx_);
  void* small = pool_->alloc(64);
  void* big = pool_->alloc(8192);
  pool_->free(small);
  // A big request must not be satisfied by the freed small block.
  void* big2 = pool_->alloc(8192);
  EXPECT_NE(big2, small);
  pool_->free(big);
  pool_->free(big2);
}

TEST_F(MemPoolFixture, RecycledAllocIsCheaperThanExpansion) {
  sim::ScopedContext guard(*ctx_);
  // First large alloc may expand the pool (malloc+register = expensive).
  SimTime t0 = ctx_->now();
  void* a = pool_->alloc(256 * 1024);
  SimTime first_cost = ctx_->now() - t0;
  pool_->free(a);
  t0 = ctx_->now();
  void* b = pool_->alloc(256 * 1024);
  SimTime second_cost = ctx_->now() - t0;
  // Recycle path charges only mempool_alloc_ns.
  EXPECT_EQ(second_cost, net_->config().mempool_alloc_ns);
  EXPECT_GT(first_cost, 20 * second_cost);
  pool_->free(b);
}

TEST_F(MemPoolFixture, ExpandsWhenExhausted) {
  sim::ScopedContext guard(*ctx_);
  std::vector<void*> blocks;
  std::uint64_t initial_expansions = pool_->stats().expansions;
  for (int i = 0; i < 64; ++i) blocks.push_back(pool_->alloc(4096));
  EXPECT_GT(pool_->stats().expansions, initial_expansions);
  for (void* p : blocks) {
    EXPECT_TRUE(pool_->owns(p));
    pool_->free(p);
  }
  EXPECT_EQ(pool_->stats().outstanding, 0u);
}

TEST_F(MemPoolFixture, BlocksDoNotOverlap) {
  sim::ScopedContext guard(*ctx_);
  std::map<std::uintptr_t, std::size_t> spans;
  std::vector<void*> blocks;
  Rng rng(11);
  for (int i = 0; i < 200; ++i) {
    std::size_t size = 64u << rng.next_below(8);  // 64B .. 8KB
    void* p = pool_->alloc(size);
    std::uintptr_t addr = reinterpret_cast<std::uintptr_t>(p);
    std::size_t span = pool_->block_size(p);
    // Check against all existing blocks.
    for (const auto& [a, s] : spans) {
      EXPECT_TRUE(addr + span <= a || a + s <= addr)
          << "block overlap at iteration " << i;
    }
    spans[addr] = span;
    blocks.push_back(p);
  }
  for (void* p : blocks) pool_->free(p);
}

TEST_F(MemPoolFixture, StressRandomAllocFreeWithPatternVerify) {
  sim::ScopedContext guard(*ctx_);
  struct Live {
    void* p;
    std::size_t size;
    std::uint8_t pattern;
  };
  std::vector<Live> live;
  Rng rng(77);
  for (int iter = 0; iter < 3000; ++iter) {
    if (live.empty() || rng.next_below(100) < 60) {
      std::size_t size = 1 + rng.next_below(32 * 1024);
      auto pattern = static_cast<std::uint8_t>(rng.next_below(256));
      void* p = pool_->alloc(size);
      std::memset(p, pattern, size);
      live.push_back({p, size, pattern});
    } else {
      std::size_t idx = rng.next_below(static_cast<std::uint32_t>(live.size()));
      Live& l = live[idx];
      // Verify the pattern survived neighboring alloc/free traffic.
      auto* bytes = static_cast<std::uint8_t*>(l.p);
      bool intact = true;
      for (std::size_t i = 0; i < l.size; ++i) {
        if (bytes[i] != l.pattern) {
          intact = false;
          break;
        }
      }
      EXPECT_TRUE(intact) << "corruption detected at iteration " << iter;
      pool_->free(l.p);
      live[idx] = live.back();
      live.pop_back();
    }
  }
  for (const auto& l : live) pool_->free(l.p);
  EXPECT_EQ(pool_->stats().outstanding, 0u);
  EXPECT_EQ(pool_->stats().allocs, pool_->stats().frees);
}

TEST_F(MemPoolFixture, BinLookupIsConstantTimePerAlloc) {
  sim::ScopedContext guard(*ctx_);
  // The size class resolves via bit_ceil + countr_zero — exactly one O(1)
  // lookup per alloc, never a search.  On a success-only workload the
  // counter must track allocs one-for-one (a failed slab expansion rolls
  // back the alloc count but not the lookup, so only successful-alloc
  // workloads can assert equality).
  std::vector<void*> held;
  for (int round = 0; round < 4; ++round) {
    for (std::size_t size : {1u, 64u, 65u, 4096u, 32u * 1024u}) {
      held.push_back(pool_->alloc(size));
    }
    for (void* p : held) pool_->free(p);
    held.clear();
  }
  const auto& st = pool_->stats();
  EXPECT_EQ(st.bin_lookups, st.allocs);
  EXPECT_EQ(st.bin_lookups, 20u);
}

TEST_F(MemPoolFixture, OversizedAllocationThrows) {
  sim::ScopedContext guard(*ctx_);
  EXPECT_THROW(pool_->alloc(MemPool::kMaxBlock * 2), std::length_error);
}

TEST_F(MemPoolFixture, OwnsRejectsForeignAndFreedPointers) {
  sim::ScopedContext guard(*ctx_);
  int local = 0;
  EXPECT_FALSE(pool_->owns(&local));
  EXPECT_FALSE(pool_->owns(nullptr));
  void* p = pool_->alloc(128);
  EXPECT_TRUE(pool_->owns(p));
  pool_->free(p);
  EXPECT_FALSE(pool_->owns(p));
}

}  // namespace
}  // namespace ugnirt::mempool
