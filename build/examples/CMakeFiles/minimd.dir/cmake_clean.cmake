file(REMOVE_RECURSE
  "CMakeFiles/minimd.dir/minimd.cpp.o"
  "CMakeFiles/minimd.dir/minimd.cpp.o.d"
  "minimd"
  "minimd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minimd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
