# Empty dependencies file for minimd.
# This may be replaced when dependencies are built.
