# Empty compiler generated dependencies file for ugnirt_util.
# This may be replaced when dependencies are built.
