#include "apps/nqueens/parallel.hpp"

#include <cassert>
#include <cstring>
#include <vector>

#include "charm/charm.hpp"
#include "lrts/runtime.hpp"

namespace ugnirt::apps::nqueens {

namespace {

/// 56-byte task payload: with the 24-byte Converse envelope and the 8-byte
/// task head this makes each seed exactly 88 bytes on the wire.
struct TaskPayload {
  std::uint8_t n;
  std::uint8_t threshold;
  std::uint8_t depth;
  std::uint8_t pad0;
  std::uint32_t cols;
  std::uint32_t diag_l;
  std::uint32_t diag_r;
  std::uint8_t pad[40];
};
static_assert(sizeof(TaskPayload) == 56);

}  // namespace

NQueensResult run_nqueens(const converse::MachineOptions& options,
                          const NQueensConfig& config,
                          trace::Tracer* tracer) {
  auto machine = lrts::make_machine(options.layer, options);
  if (tracer) {
    tracer->set_pe_count(options.pes);
    machine->set_tracer(tracer);
  }
  charm::Charm charm(*machine);

  const std::uint32_t all = (1u << config.n) - 1;
  const ExactModel exact_model;
  const SubtreeCostModel& model =
      config.model ? *config.model
                   : static_cast<const SubtreeCostModel&>(exact_model);

  std::vector<std::uint64_t> solutions(
      static_cast<std::size_t>(options.pes), 0);
  std::vector<std::uint64_t> nodes(static_cast<std::size_t>(options.pes), 0);
  std::uint64_t tasks_spawned = 0;

  NQueensResult result;

  int task_id = -1;
  task_id = charm.register_task([&](const void* payload, std::uint32_t len) {
    assert(len == sizeof(TaskPayload));
    (void)len;
    TaskPayload t;
    std::memcpy(&t, payload, sizeof(t));
    int pe = converse::CmiMyPe();

    if (t.depth >= t.threshold) {
      // Leaf: solve the remaining rows sequentially (or consult the model)
      // and charge the modeled sequential time.
      SolveResult r = model.subtree(t.n, t.depth, t.cols, t.diag_l, t.diag_r);
      converse::CmiChargeWork(static_cast<SimTime>(r.nodes) *
                              config.ns_per_node);
      solutions[static_cast<std::size_t>(pe)] += r.solutions;
      nodes[static_cast<std::size_t>(pe)] += r.nodes;
      return;
    }

    // Interior: expand one row, fire children at random PEs.
    nodes[static_cast<std::size_t>(pe)] += 1;
    converse::CmiChargeWork(config.ns_per_node);
    std::uint32_t free = all & ~(t.cols | t.diag_l | t.diag_r);
    while (free) {
      std::uint32_t bit = free & (0u - free);
      free ^= bit;
      TaskPayload child{};
      child.n = t.n;
      child.threshold = t.threshold;
      child.depth = static_cast<std::uint8_t>(t.depth + 1);
      child.cols = t.cols | bit;
      child.diag_l = ((t.diag_l | bit) << 1) & all;
      child.diag_r = (t.diag_r | bit) >> 1;
      ++tasks_spawned;
      charm.seed_task(task_id, &child, sizeof(child));
    }
  });

  SimTime t_start = 0;
  SimTime t_done = -1;
  machine->start(0, [&] {
    t_start = machine->current_pe().ctx().now();
    TaskPayload root{};
    root.n = static_cast<std::uint8_t>(config.n);
    root.threshold = static_cast<std::uint8_t>(config.threshold);
    root.depth = 0;
    ++tasks_spawned;
    charm.seed_task_to(0, task_id, &root, sizeof(root));
    charm.start_quiescence([&] {
      t_done = machine->current_pe().ctx().now();
    });
  });
  machine->run();
  assert(t_done >= 0 && "quiescence was never detected");

  for (int pe = 0; pe < options.pes; ++pe) {
    result.solutions += solutions[static_cast<std::size_t>(pe)];
    result.nodes += nodes[static_cast<std::size_t>(pe)];
  }
  result.tasks = tasks_spawned;
  result.elapsed = t_done - t_start;
  result.qd_waves = charm.qd_waves();
  double seq = static_cast<double>(result.nodes) *
               static_cast<double>(config.ns_per_node);
  result.speedup =
      result.elapsed > 0 ? seq / static_cast<double>(result.elapsed) : 0;
  if (tracer) tracer->finalize(t_done);
  return result;
}

}  // namespace ugnirt::apps::nqueens
