#include "tenancy/tenancy.hpp"

#include <algorithm>
#include <cassert>
#include <cstdlib>
#include <numeric>

#include "flowcontrol/flowcontrol.hpp"
#include "gemini/network.hpp"
#include "trace/events.hpp"
#include "util/rng.hpp"

namespace ugnirt::tenancy {

// ---------------------------------------------------------------------------
// TenancyConfig
// ---------------------------------------------------------------------------

namespace {
constexpr const char* kTenancyKeys[] = {
    "tenancy.enable",
    "tenancy.placement",
    "tenancy.seed",
    "tenancy.jobs",
    "tenancy.qos_enable",
    "tenancy.qos_latency_floor",
    "tenancy.qos_bulk_ceiling",
    "tenancy.qos_bulk_quota",
    "tenancy.qos_scavenger_ceiling",
    "tenancy.qos_scavenger_quota",
};

std::string tkey(const char* name) { return std::string("tenancy.") + name; }
}  // namespace

TenancyConfig TenancyConfig::from(const Config& cfg) {
  TenancyConfig t;
  t.enable = cfg.get_bool_or(tkey("enable"), t.enable);
  t.placement = cfg.get_string_or(tkey("placement"), t.placement);
  t.seed = static_cast<std::uint64_t>(
      cfg.get_int_or(tkey("seed"), static_cast<std::int64_t>(t.seed)));
  t.jobs = cfg.get_string_or(tkey("jobs"), t.jobs);
  t.qos_enable = cfg.get_bool_or(tkey("qos_enable"), t.qos_enable);
  t.qos_latency_floor = static_cast<std::uint32_t>(
      cfg.get_int_or(tkey("qos_latency_floor"), t.qos_latency_floor));
  t.qos_bulk_ceiling = static_cast<std::uint32_t>(
      cfg.get_int_or(tkey("qos_bulk_ceiling"), t.qos_bulk_ceiling));
  t.qos_bulk_quota = static_cast<std::uint32_t>(
      cfg.get_int_or(tkey("qos_bulk_quota"), t.qos_bulk_quota));
  t.qos_scavenger_ceiling = static_cast<std::uint32_t>(
      cfg.get_int_or(tkey("qos_scavenger_ceiling"), t.qos_scavenger_ceiling));
  t.qos_scavenger_quota = static_cast<std::uint32_t>(
      cfg.get_int_or(tkey("qos_scavenger_quota"), t.qos_scavenger_quota));
  // Keep the classes meaningful whatever the overrides say: a latency
  // floor of 0 would demote the class to best-effort, and ceilings of 0
  // would wedge bulk jobs outright.
  t.qos_latency_floor = std::max<std::uint32_t>(t.qos_latency_floor, 1);
  t.qos_bulk_ceiling = std::max<std::uint32_t>(t.qos_bulk_ceiling, 1);
  t.qos_scavenger_ceiling =
      std::max<std::uint32_t>(t.qos_scavenger_ceiling, 1);
  Placement p;
  if (!placement_from_string(t.placement, &p)) t.placement = "compact";
  return t;
}

void TenancyConfig::export_to(Config& cfg) const {
  cfg.set(tkey("enable"), enable ? "true" : "false");
  cfg.set(tkey("placement"), placement);
  cfg.set(tkey("seed"), std::to_string(seed));
  cfg.set(tkey("jobs"), jobs);
  cfg.set(tkey("qos_enable"), qos_enable ? "true" : "false");
  cfg.set(tkey("qos_latency_floor"), std::to_string(qos_latency_floor));
  cfg.set(tkey("qos_bulk_ceiling"), std::to_string(qos_bulk_ceiling));
  cfg.set(tkey("qos_bulk_quota"), std::to_string(qos_bulk_quota));
  cfg.set(tkey("qos_scavenger_ceiling"),
          std::to_string(qos_scavenger_ceiling));
  cfg.set(tkey("qos_scavenger_quota"), std::to_string(qos_scavenger_quota));
}

const char* const* TenancyConfig::config_keys(std::size_t* count) {
  *count = sizeof(kTenancyKeys) / sizeof(kTenancyKeys[0]);
  return kTenancyKeys;
}

// ---------------------------------------------------------------------------
// Enums
// ---------------------------------------------------------------------------

const char* qos_name(QosClass q) {
  switch (q) {
    case QosClass::kLatency:
      return "latency";
    case QosClass::kBulk:
      return "bulk";
    case QosClass::kScavenger:
      return "scavenger";
  }
  return "?";
}

bool qos_from_string(const std::string& s, QosClass* out) {
  if (s == "latency") {
    *out = QosClass::kLatency;
  } else if (s == "bulk") {
    *out = QosClass::kBulk;
  } else if (s == "scavenger") {
    *out = QosClass::kScavenger;
  } else {
    return false;
  }
  return true;
}

const char* placement_name(Placement p) {
  switch (p) {
    case Placement::kCompact:
      return "compact";
    case Placement::kScatter:
      return "scatter";
    case Placement::kRandom:
      return "random";
  }
  return "?";
}

bool placement_from_string(const std::string& s, Placement* out) {
  if (s == "compact") {
    *out = Placement::kCompact;
  } else if (s == "scatter") {
    *out = Placement::kScatter;
  } else if (s == "random") {
    *out = Placement::kRandom;
  } else {
    return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// JobManager
// ---------------------------------------------------------------------------

JobManager::JobManager(converse::Machine& m, const TenancyConfig& cfg)
    : m_(&m), cfg_(cfg) {
  placement_from_string(cfg_.placement, &placement_);  // validated by from()
  job_of_pe_.assign(static_cast<std::size_t>(m.num_pes()), -1);
  rank_of_pe_.assign(static_cast<std::size_t>(m.num_pes()), -1);
  if (!cfg_.jobs.empty()) parse_jobs_spec(cfg_.jobs);
}

void JobManager::parse_jobs_spec(const std::string& spec) {
  // "name:qos:pes,name:qos:pes,..." — malformed entries are skipped
  // (a bad env override must not crash a soak; the job count check in
  // place() still catches an empty table).
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    const std::string entry = spec.substr(pos, comma - pos);
    pos = comma + 1;
    const std::size_t c1 = entry.find(':');
    const std::size_t c2 =
        c1 == std::string::npos ? std::string::npos : entry.find(':', c1 + 1);
    if (c1 == std::string::npos || c2 == std::string::npos) continue;
    JobSpec js;
    js.name = entry.substr(0, c1);
    if (!qos_from_string(entry.substr(c1 + 1, c2 - c1 - 1), &js.qos)) continue;
    js.pes = std::atoi(entry.c_str() + c2 + 1);
    if (js.name.empty() || js.pes <= 0) continue;
    add_job(std::move(js));
  }
}

JobId JobManager::add_job(JobSpec spec) {
  assert(!placed_ && "add_job after place()");
  const JobId id = static_cast<JobId>(jobs_.size());
  jobs_.emplace_back(id, std::move(spec));
  return id;
}

void JobManager::place() {
  assert(!placed_ && "place() is one-shot");
  assert(!jobs_.empty() && "place() with no jobs");
  int total = 0;
  for (const Job& j : jobs_) total += j.size();
  assert(total <= m_->num_pes() && "jobs oversubscribe the machine");
  (void)total;
  assign_pes();
  apply_qos();
  install_attribution();
  placed_ = true;
}

void JobManager::assign_pes() {
  const int n = m_->num_pes();
  std::vector<int> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  switch (placement_) {
    case Placement::kCompact:
      // Contiguous slabs in job order: the friendly allocation.
      break;
    case Placement::kScatter: {
      // Round-robin deal: pe 0 -> job 0, pe 1 -> job 1, ... wrapping, so
      // every job is striped across the whole machine.  Realized by
      // permuting the id space so slab-slicing below lands the stripes.
      std::vector<int> striped;
      striped.reserve(order.size());
      std::vector<std::vector<int>> per_job(jobs_.size());
      std::size_t next = 0;
      std::vector<int> need(jobs_.size());
      for (std::size_t j = 0; j < jobs_.size(); ++j) need[j] = jobs_[j].size();
      for (int pe = 0; pe < n; ++pe) {
        // The next job (cyclic) still short of PEs takes this id.
        std::size_t tried = 0;
        while (tried < jobs_.size() && need[next] == 0) {
          next = (next + 1) % jobs_.size();
          ++tried;
        }
        if (tried == jobs_.size()) break;  // all jobs full
        per_job[next].push_back(pe);
        --need[next];
        next = (next + 1) % jobs_.size();
      }
      striped.clear();
      for (const auto& v : per_job) striped.insert(striped.end(), v.begin(), v.end());
      // Unassigned ids (machine bigger than the job sum) go last.
      for (int pe = 0; pe < n; ++pe) {
        bool taken = false;
        for (const auto& v : per_job) {
          if (std::binary_search(v.begin(), v.end(), pe)) {
            taken = true;
            break;
          }
        }
        if (!taken) striped.push_back(pe);
      }
      order = std::move(striped);
      break;
    }
    case Placement::kRandom: {
      // Seeded Fisher-Yates: the fragmented allocation of a busy
      // scheduler.  Seed 0 derives from the machine seed so one knob
      // reseeds the whole run.
      Rng rng(cfg_.seed != 0 ? cfg_.seed
                             : (m_->options().seed ^ 0x7e9a'9c1e'5eed'0001ULL));
      for (std::size_t i = order.size(); i > 1; --i) {
        const std::size_t j = rng.next_below(static_cast<std::uint32_t>(i));
        std::swap(order[i - 1], order[j]);
      }
      break;
    }
  }
  std::size_t cursor = 0;
  for (Job& job : jobs_) {
    job.pes_.assign(order.begin() + static_cast<std::ptrdiff_t>(cursor),
                    order.begin() +
                        static_cast<std::ptrdiff_t>(cursor + job.size()));
    cursor += static_cast<std::size_t>(job.size());
    // Ascending global ids: job-local rank order is deterministic and
    // placement-independent.
    std::sort(job.pes_.begin(), job.pes_.end());
    for (std::size_t r = 0; r < job.pes_.size(); ++r) {
      job_of_pe_[static_cast<std::size_t>(job.pes_[r])] =
          static_cast<std::int16_t>(job.id());
      rank_of_pe_[static_cast<std::size_t>(job.pes_[r])] =
          static_cast<int>(r);
    }
  }
}

void JobManager::apply_qos() {
  if (!cfg_.qos_enable) return;
  flowcontrol::InjectionGovernor* gov = m_->layer().governor();
  if (!gov) return;  // flow control off: nothing to bound
  const flowcontrol::FlowConfig& fc = m_->options().flow;
  for (const Job& job : jobs_) {
    flowcontrol::QosParams qp;
    switch (job.qos()) {
      case QosClass::kLatency:
        // Floor above the AIMD minimum so hotspot backoff (driven by the
        // aggressors' own congestion) cannot starve the victim's GETs;
        // ceiling and drain stay at the config-wide defaults.
        qp.window_floor = std::max(fc.window_min, cfg_.qos_latency_floor);
        break;
      case QosClass::kBulk:
        qp.window_ceiling = std::min(fc.window_max, cfg_.qos_bulk_ceiling);
        qp.drain_quota = cfg_.qos_bulk_quota;
        break;
      case QosClass::kScavenger:
        qp.window_ceiling =
            std::min(fc.window_max, cfg_.qos_scavenger_ceiling);
        qp.drain_quota = cfg_.qos_scavenger_quota;
        break;
    }
    for (int pe : job.pes()) gov->set_pe_qos(pe, qp);
  }
}

void JobManager::install_attribution() {
  // Network: per-node job map (a node carries its job's id only when all
  // its PEs belong to one job — mixed nodes stay unattributed rather
  // than guessing).
  const int nodes = m_->options().nodes();
  std::vector<std::int16_t> job_of_node(static_cast<std::size_t>(nodes), -1);
  const int ppn = m_->options().effective_pes_per_node();
  for (int node = 0; node < nodes; ++node) {
    std::int16_t job = -2;  // unset
    for (int p = node * ppn; p < (node + 1) * ppn && p < m_->num_pes(); ++p) {
      const std::int16_t j = job_of_pe_[static_cast<std::size_t>(p)];
      if (job == -2) {
        job = j;
      } else if (job != j) {
        job = -1;  // mixed node
        break;
      }
    }
    job_of_node[static_cast<std::size_t>(node)] = job == -2 ? -1 : job;
  }
  m_->network().set_job_of_node(std::move(job_of_node), num_jobs());
  // Tracer: exported event rows gain a `job` column keyed by PE.
  if (trace::enabled()) trace::tracer()->set_job_of_pe(job_of_pe_);
}

std::string JobManager::metric_name(JobId id, const char* suffix) {
  return "job." + std::to_string(id) + "." + suffix;
}

trace::Histogram& JobManager::delivery_hist(JobId id) {
  return m_->metrics().histogram(metric_name(id, "delivery_us"));
}

void JobManager::collect_metrics() {
  for (const Job& job : jobs_) {
    m_->metrics()
        .gauge(metric_name(job.id(), "pes"))
        .set(static_cast<double>(job.size()));
    std::uint64_t executed = 0;
    for (int pe : job.pes()) executed += m_->pe(pe).msgs_executed();
    m_->metrics().counter(metric_name(job.id(), "msgs_executed")).set(executed);
  }
}

}  // namespace ugnirt::tenancy
