#include "sim/engine.hpp"

#include <algorithm>
#include <cassert>
#include <condition_variable>
#include <cstdlib>
#include <thread>
#include <utility>

namespace ugnirt::sim {

namespace {

/// The shard currently executing an event on this thread.  Thread-local so
/// the threaded window drive gives every worker its own notion of "here";
/// the engine pointer disambiguates nested engines (benches build several).
struct ExecutingShard {
  const Engine* engine = nullptr;
  int shard = -1;
};
thread_local ExecutingShard t_executing;

}  // namespace

// ---------------------------------------------------------------------------
// EventHandle
// ---------------------------------------------------------------------------

void EventHandle::cancel() {
  // The lock proves the owning shard (and so the record's storage) is
  // still alive; the generation check proves the record has not been
  // recycled for a later event.  pop_and_run flips `alive` before running
  // the callback and bumps `gen` only after, so a self-cancel from inside
  // the firing event sees alive == false and is a no-op.
  if (auto live = live_.lock()) {
    if (rec_ != nullptr && rec_->gen == gen_ && rec_->alive) {
      rec_->alive = false;
      // First successful cancel of a not-yet-fired event: it is no longer
      // pending work.
      live->fetch_sub(1, std::memory_order_relaxed);
    }
  }
}

bool EventHandle::valid() const {
  auto live = live_.lock();
  return live && rec_ != nullptr && rec_->gen == gen_ && rec_->alive;
}

// ---------------------------------------------------------------------------
// Scheduler — the concrete {engine, shard} handle
// ---------------------------------------------------------------------------

SimTime Scheduler::now() const { return engine_->scheduler_now(shard_); }

EventHandle Scheduler::schedule_at(SimTime when, SmallFn fn) {
  return engine_->schedule_from(shard_, when, std::move(fn));
}

// ---------------------------------------------------------------------------
// EngineOptions
// ---------------------------------------------------------------------------

const char* to_string(DriveMode mode) {
  switch (mode) {
    case DriveMode::kReplay:
      return "replay";
    case DriveMode::kWindow:
      return "window";
  }
  return "replay";
}

EngineOptions EngineOptions::from_env() {
  EngineOptions o;
  o.queue = queue_kind_from_env();
  if (const char* env = std::getenv("UGNIRT_SIM_SHARDS")) {
    o.shards = std::max(1, std::atoi(env));
  }
  if (const char* env = std::getenv("UGNIRT_SIM_LOOKAHEAD_NS")) {
    o.lookahead_ns = std::max<SimTime>(1, std::atoll(env));
  }
  if (const char* env = std::getenv("UGNIRT_SIM_ARENA")) {
    o.arena = std::atoi(env) != 0;
  }
  return o;
}

// ---------------------------------------------------------------------------
// Engine::Shard
// ---------------------------------------------------------------------------

Engine::Shard::Shard(Engine& engine, int index, QueueKind kind, bool arena)
    : engine_(&engine),
      index_(index),
      queue_(make_event_queue(kind)),
      live_(std::make_shared<std::atomic<std::int64_t>>(0)),
      arena_(arena) {}

EventRecord* Engine::Shard::acquire_mailbox_record() {
  if (mailbox_free_ != nullptr) {
    EventRecord* rec = mailbox_free_;
    mailbox_free_ = rec->next_free;
    rec->next_free = nullptr;
    return rec;
  }
  mailbox_records_.push_back(std::make_unique<EventRecord>());
  EventRecord* rec = mailbox_records_.back().get();
  rec->mailbox_owned = true;
  return rec;
}

void Engine::Shard::release_record(EventRecord* rec) {
  if (rec->mailbox_owned) {
    // Rare path: a mailboxed cross-shard event retired by its target.
    // The pool mutex also guards the freelist against a concurrent
    // acquire from another shard's worker mid-round.
    std::lock_guard<std::mutex> lock(mailbox_mu_);
    rec->fn.reset();
    rec->alive = false;
    ++rec->gen;
    rec->next_free = mailbox_free_;
    mailbox_free_ = rec;
    return;
  }
  arena_.release(rec);
}

// ---------------------------------------------------------------------------
// Engine
// ---------------------------------------------------------------------------

Engine::Engine(const EngineOptions& options)
    : queue_kind_(options.queue),
      mode_(options.mode),
      lookahead_(std::max<SimTime>(1, options.lookahead_ns)),
      arena_enabled_(options.arena),
      global_sched_(this, Scheduler::kCurrentShard) {
  const int nshards = std::max(1, options.shards);
  threads_ = std::clamp(options.threads, 0, nshards);
  shards_.reserve(static_cast<std::size_t>(nshards));
  shard_scheds_.reserve(static_cast<std::size_t>(nshards));
  for (int i = 0; i < nshards; ++i) {
    shards_.push_back(
        std::make_unique<Shard>(*this, i, options.queue, options.arena));
    shard_scheds_.push_back(Scheduler(this, i));
  }
}

// Queued-but-never-popped callbacks are destroyed by the slab (and
// mailbox-pool) destructors — EventRecord's SmallFn member owns them — so
// teardown needs no explicit queue drain.
Engine::~Engine() = default;

Scheduler& Engine::scheduler(int shard) {
  assert(shard >= 0 && shard < shards());
  return shard_scheds_[static_cast<std::size_t>(shard)];
}

SimTime Engine::shard_now(int shard) const {
  assert(shard >= 0 && shard < shards());
  return shards_[static_cast<std::size_t>(shard)]->now_;
}

int Engine::current_shard() const {
  return t_executing.engine == this ? t_executing.shard : -1;
}

const EventArena& Engine::arena(int shard) const {
  assert(shard >= 0 && shard < shards());
  return shards_[static_cast<std::size_t>(shard)]->arena_;
}

std::size_t Engine::pending() const {
  std::int64_t live = 0;
  for (const auto& s : shards_) {
    live += s->live_->load(std::memory_order_relaxed);
  }
  return live > 0 ? static_cast<std::size_t>(live) : 0;
}

SimTime Engine::scheduler_now(int shard) const {
  // Under replay the shards execute in one merged global order, so the
  // engine clock is the honest local time (a shard's own clock only
  // advances when one of its events pops).  Under the window drive a
  // pinned scheduler reports the real local clock.
  if (shard < 0 || mode_ == DriveMode::kReplay) return now_;
  return shards_[static_cast<std::size_t>(shard)]->now_;
}

std::uint64_t Engine::next_seq(int scheduling_shard) {
  if (mode_ == DriveMode::kReplay) {
    // One global stream: scheduling order == seq order, exactly as the
    // sequential engine assigned it (replay executes the identical global
    // sequence, so the assignment is reproducible for any shard count).
    return next_seq_++;
  }
  // Window drive: striped per-shard streams (seq = local * S + shard).
  // Each stream depends only on its own shard's execution, so equal-time
  // cross-shard ties break the same way no matter how worker threads
  // interleave on wall-clock.
  Shard& s = *shards_[static_cast<std::size_t>(scheduling_shard)];
  return s.local_seq_++ * static_cast<std::uint64_t>(shards_.size()) +
         static_cast<std::uint64_t>(scheduling_shard);
}

EventHandle Engine::schedule_at(SimTime when, SmallFn fn) {
  return schedule_from(Scheduler::kCurrentShard, when, std::move(fn));
}

EventHandle Engine::schedule_from(int shard, SimTime when, SmallFn fn) {
  if (shard < 0) {
    const int cur = current_shard();
    shard = cur >= 0 ? cur : 0;
  }
  return schedule_on(shard, when, std::move(fn));
}

EventHandle Engine::schedule_on(int target, SimTime when, SmallFn fn) {
  assert(target >= 0 && target < shards());
  Shard& dst = *shards_[static_cast<std::size_t>(target)];
  const int src = current_shard();
  const std::uint64_t seq = next_seq(src >= 0 ? src : target);

  if (mode_ == DriveMode::kReplay) {
    // Replay is single-threaded by contract: plain arithmetic, no
    // lock-prefixed RMW on the schedule hot path.
    dst.live_->store(dst.live_->load(std::memory_order_relaxed) + 1,
                     std::memory_order_relaxed);
  } else {
    dst.live_->fetch_add(1, std::memory_order_relaxed);
  }

  if (mode_ == DriveMode::kWindow && src >= 0 && src != target) {
    // Cross-shard while a round drains: the target may already be past
    // `when` inside this round, so the event parks in the target's
    // mailbox and merges at the barrier.  The conservative contract makes
    // that safe: when >= src clock + lookahead >= round floor + lookahead
    // = horizon, i.e. no shard has drained past it.  A violating schedule
    // is counted and clamped to the target's clock at merge time.
    if (when < round_horizon_) {
      lookahead_violations_.fetch_add(1, std::memory_order_relaxed);
    }
    std::lock_guard<std::mutex> lock(dst.mailbox_mu_);
    EventRecord* rec = dst.acquire_mailbox_record();
    rec->fn = std::move(fn);
    rec->alive = true;
    const std::uint64_t gen = rec->gen;
    dst.mailbox_.push_back(Event{when, seq, rec});
    return EventHandle{dst.live_, rec, gen};
  }

  // Same-shard (or outside execution): straight into the queue.  Clamp to
  // the local floor so inserts stay monotone for the backends.
  const SimTime floor = mode_ == DriveMode::kReplay ? now_ : dst.now_;
  if (when < floor) when = floor;
  if (src >= 0 && src != target) ++cross_shard_events_;  // replay only
  EventRecord* rec = dst.arena_.acquire();
  rec->fn = std::move(fn);
  rec->alive = true;
  dst.queue_->push(Event{when, seq, rec});
  return EventHandle{dst.live_, rec, rec->gen};
}

Engine::Shard* Engine::earliest_shard() {
  Shard* best = nullptr;
  const Event* best_head = nullptr;
  for (auto& s : shards_) {
    const Event* head = s->queue_->peek_earliest();
    if (!head) continue;
    if (!best_head || head->time < best_head->time ||
        (head->time == best_head->time && head->seq < best_head->seq)) {
      best = s.get();
      best_head = head;
    }
  }
  return best;
}

SimTime Engine::earliest_time_global() {
  SimTime earliest = kNever;
  for (auto& s : shards_) {
    earliest = std::min(earliest, s->queue_->earliest_time());
  }
  return earliest;
}

bool Engine::pop_and_run(Shard& shard) {
  // Replay-only (the window drive drains in drain_shard_to): exactly one
  // thread runs here, so the counters use plain load/store arithmetic —
  // no lock-prefixed RMW per event.  The caller owns the t_executing
  // guard (set once around the drive loop, not once per event).
  Event ev = shard.queue_->pop_earliest();
  now_ = ev.time;
  shard.now_ = ev.time;
  EventRecord* rec = ev.rec;
  if (!rec->alive) {  // tombstone: cancelled, already uncounted
    shard.release_record(rec);
    return false;
  }
  rec->alive = false;  // fired: a late cancel() must be a no-op
  shard.live_->store(shard.live_->load(std::memory_order_relaxed) - 1,
                     std::memory_order_relaxed);
  executed_.store(executed_.load(std::memory_order_relaxed) + 1,
                  std::memory_order_relaxed);
  rec->fn();
  // Release AFTER the call: the callback may hold a handle to itself
  // (self-cancel is a no-op on alive == false, and the record must not be
  // recycled under it).  The arena only grows during the call — slabs are
  // stable — so `rec` cannot move.
  shard.release_record(rec);
  return true;
}

std::uint64_t Engine::run() {
  return mode_ == DriveMode::kWindow ? run_window(kNever) : run_replay(kNever);
}

std::uint64_t Engine::run_until(SimTime until) {
  return mode_ == DriveMode::kWindow ? run_window(until) : run_replay(until);
}

std::uint64_t Engine::run_replay(SimTime until) {
  stopped_.store(false, std::memory_order_relaxed);
  const bool bounded = until != kNever;
  std::uint64_t ran = 0;
  const ExecutingShard prev = t_executing;
  if (shards_.size() == 1) {
    // Sequential fast path: no tournament, exactly the classic engine.
    Shard& s = *shards_[0];
    t_executing = {this, 0};
    while (!stopped_.load(std::memory_order_relaxed)) {
      const Event* head = s.queue_->peek_earliest();
      if (!head || (bounded && head->time > until)) break;
      if (pop_and_run(s)) ++ran;
    }
  } else {
    while (!stopped_.load(std::memory_order_relaxed)) {
      Shard* s = earliest_shard();
      if (!s) break;
      if (bounded && s->queue_->peek_earliest()->time > until) break;
      t_executing = {this, s->index_};
      if (pop_and_run(*s)) ++ran;
    }
  }
  t_executing = prev;
  if (bounded && now_ < until && earliest_time_global() > until) {
    now_ = until;
  }
  return ran;
}

void Engine::merge_mailboxes() {
  for (auto& sp : shards_) {
    Shard& s = *sp;
    std::vector<Event> arrived;
    {
      std::lock_guard<std::mutex> lock(s.mailbox_mu_);
      arrived.swap(s.mailbox_);
    }
    cross_shard_events_ += arrived.size();
    for (Event& ev : arrived) {
      // A lookahead violation could date the event inside the target's
      // past; clamping to the shard clock keeps queue inserts monotone.
      if (ev.time < s.now_) ev.time = s.now_;
      s.queue_->push(ev);
    }
  }
}

std::uint64_t Engine::drain_shard_to(Shard& shard, SimTime horizon) {
  std::uint64_t ran = 0;
  const ExecutingShard prev = t_executing;
  t_executing = {this, shard.index_};
  while (!stopped_.load(std::memory_order_relaxed)) {
    const Event* head = shard.queue_->peek_earliest();
    if (!head || head->time >= horizon) break;
    Event ev = shard.queue_->pop_earliest();
    shard.now_ = ev.time;
    EventRecord* rec = ev.rec;
    if (!rec->alive) {
      shard.release_record(rec);
      continue;
    }
    rec->alive = false;
    shard.live_->fetch_sub(1, std::memory_order_relaxed);
    executed_.fetch_add(1, std::memory_order_relaxed);
    rec->fn();
    shard.release_record(rec);
    ++ran;
  }
  t_executing = prev;
  return ran;
}

std::uint64_t Engine::run_window(SimTime until) {
  stopped_.store(false, std::memory_order_relaxed);
  const bool bounded = until != kNever;
  std::uint64_t ran = 0;

  // Round-synchronization state for the worker pool (threads_ > 0).
  struct Pool {
    std::mutex mu;
    std::condition_variable cv_start;
    std::condition_variable cv_done;
    std::uint64_t round = 0;
    SimTime horizon = 0;
    int working = 0;
    bool quit = false;
    std::uint64_t round_ran = 0;
  } pool;
  std::vector<std::thread> workers;
  const int nthreads = std::min(threads_, shards());
  if (nthreads > 0) {
    workers.reserve(static_cast<std::size_t>(nthreads));
    for (int w = 0; w < nthreads; ++w) {
      workers.emplace_back([this, w, nthreads, &pool] {
        std::uint64_t seen = 0;
        for (;;) {
          std::unique_lock<std::mutex> lock(pool.mu);
          pool.cv_start.wait(
              lock, [&] { return pool.quit || pool.round != seen; });
          if (pool.quit) return;
          seen = pool.round;
          const SimTime horizon = pool.horizon;
          lock.unlock();
          std::uint64_t local = 0;
          for (int s = w; s < shards(); s += nthreads) {
            local += drain_shard_to(*shards_[static_cast<std::size_t>(s)],
                                    horizon);
          }
          lock.lock();
          pool.round_ran += local;
          if (--pool.working == 0) pool.cv_done.notify_one();
        }
      });
    }
  }

  while (!stopped_.load(std::memory_order_relaxed)) {
    merge_mailboxes();
    const SimTime floor = earliest_time_global();
    if (floor == kNever || (bounded && floor > until)) break;
    round_floor_ = floor;
    // Exclusive horizon: every event strictly inside [floor, floor + L)
    // is independent across shards by the conservative contract.  Bounded
    // runs still execute events at exactly `until`.
    SimTime horizon = floor + lookahead_;
    if (bounded && horizon > until) horizon = until + 1;
    round_horizon_ = horizon;
    ++rounds_;
    if (nthreads > 0) {
      std::unique_lock<std::mutex> lock(pool.mu);
      pool.horizon = horizon;
      pool.working = nthreads;
      pool.round_ran = 0;
      ++pool.round;
      pool.cv_start.notify_all();
      pool.cv_done.wait(lock, [&] { return pool.working == 0; });
      ran += pool.round_ran;
    } else {
      for (auto& sp : shards_) ran += drain_shard_to(*sp, horizon);
    }
    for (auto& sp : shards_) now_ = std::max(now_, sp->now_);
  }

  if (nthreads > 0) {
    {
      std::lock_guard<std::mutex> lock(pool.mu);
      pool.quit = true;
    }
    pool.cv_start.notify_all();
    for (std::thread& t : workers) t.join();
  }

  if (bounded && now_ < until && earliest_time_global() > until) {
    now_ = until;
  }
  return ran;
}

}  // namespace ugnirt::sim
