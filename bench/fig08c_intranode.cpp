// Figure 8(c): intra-node ping-pong — pxshm double copy, pxshm single
// copy, pure MPI, and the original scheme (through the NIC), 1 KiB .. 512
// KiB (paper §IV-C).
#include "apps/microbench/microbench.hpp"
#include "bench_util.hpp"

using namespace ugnirt;
using namespace ugnirt::apps;

int main() {
  gemini::MachineConfig mc;
  benchtool::Table table("fig08c_intranode", "msg_bytes");
  table.add_column("pxshm_double_us");
  table.add_column("pxshm_single_us");
  table.add_column("pure_MPI_us");
  table.add_column("orig_uGNI_us");

  converse::MachineOptions double_copy;
  double_copy.layer = converse::LayerKind::kUgni;
  double_copy.pes_per_node = 2;  // both PEs on one node
  double_copy.pxshm_single_copy = false;

  converse::MachineOptions single_copy = double_copy;
  single_copy.pxshm_single_copy = true;

  converse::MachineOptions orig = double_copy;
  orig.use_pxshm = false;  // intra-node messages go through the NIC

  for (std::uint64_t size : benchtool::size_sweep(1024, 512 * 1024)) {
    bench::PingPongOptions pp;
    pp.payload = static_cast<std::uint32_t>(size);
    table.add_row(
        benchtool::size_label(size),
        {to_us(bench::charm_pingpong(double_copy, pp)),
         to_us(bench::charm_pingpong(single_copy, pp)),
         to_us(bench::pure_mpi_pingpong(mc, static_cast<std::uint32_t>(size),
                                        /*same_buffer=*/true,
                                        /*intranode=*/true)),
         to_us(bench::charm_pingpong(orig, pp))});
  }
  table.print();
  std::printf("Paper shape: double copy tracks MPI below ~16 KiB and loses\n"
              "beyond (MPI switches to XPMEM single copy); the CHARM++\n"
              "single-copy scheme beats MPI overall.\n");
  return 0;
}
