// Pre-registered memory pool (paper §IV-B).
//
// The CHARM++ runtime owns message allocation, so the uGNI machine layer can
// pre-allocate and pre-register large slabs and serve every message buffer
// from them: Tmalloc and Tregister disappear from the large-message send
// path (paper Equation 1 -> Tcost = 2*Tmempool + Trdma + 2*Tsmsg).
//
// Design: power-of-two size classes with per-class free lists, carved out of
// registered slabs.  When the pool overflows it expands dynamically (paper:
// "In the case when the memory pool overflows, it can be dynamically
// expanded") — the expansion pays the full malloc+registration cost once,
// after which buffers recycle for free.
//
// The free lists are INTRUSIVE: the link lives in the spare half of the
// 16-byte block header, and the list heads are a fixed inline array in the
// pool object.  At full-machine scale (150k+ pools, one per PE) every
// alloc/free walks cold memory, so the hot path is sized in cache lines:
// intrusive links touch only the pool object and the block header — both
// lines the operation must touch anyway — where the old vector-of-vectors
// design paid two further dependent loads (outer array, inner buffer) per
// operation, plus their reallocation churn.
#pragma once

#include <array>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "ugni/ugni.hpp"

namespace ugnirt::mempool {

struct MemPoolStats {
  std::uint64_t allocs = 0;
  std::uint64_t frees = 0;
  std::uint64_t expansions = 0;     // new slabs registered
  std::uint64_t slab_bytes = 0;     // total registered pool memory
  std::uint64_t outstanding = 0;    // live allocations
  std::uint64_t freelist_hits = 0;  // allocs served without carving
  std::uint64_t bin_lookups = 0;    // O(1) size-class resolutions (== allocs)
};

class MemPool {
 public:
  /// Creates the pool with one initial slab of `initial_bytes`, registered
  /// on `nic`.  Charges the initial malloc+registration to the current PE.
  MemPool(ugni::gni_nic_handle_t nic, std::uint64_t initial_bytes);
  ~MemPool();

  MemPool(const MemPool&) = delete;
  MemPool& operator=(const MemPool&) = delete;

  /// Allocate a buffer of at least `bytes`.  O(1) except on expansion.
  /// Charges mempool_alloc_ns (plus expansion costs when a new slab is
  /// needed).  Returned memory is always inside a registered region.
  /// Returns nullptr when the pool must expand but slab registration fails
  /// (GNI_RC_ERROR_RESOURCE) — callers fall back to a heap-registered
  /// buffer and retry registration under their own backoff policy.
  void* alloc(std::size_t bytes);

  /// Return a buffer to its size-class free list.  Charges mempool_free_ns.
  void free(void* p);

  /// Registered-memory handle covering `p` (for RDMA descriptors).
  ugni::gni_mem_handle_t handle_of(const void* p) const;

  /// True when `p` was produced by alloc() and is currently live.
  bool owns(const void* p) const;

  /// Usable size class of the allocation at `p`.
  std::size_t block_size(const void* p) const;

  /// Usable bytes of the block alloc(bytes) would return — the power-of-
  /// two size class covering `bytes`.  Lease-sized buffers (aggregation
  /// batches) round their capacity up to this so no registered pool bytes
  /// are stranded.
  static std::size_t usable_size(std::size_t bytes);

  const MemPoolStats& stats() const { return stats_; }
  ugni::gni_nic_handle_t nic() const { return nic_; }

  static constexpr std::size_t kMinBlock = 64;
  static constexpr std::size_t kMaxBlock = 64ull << 20;  // 64 MiB

 private:
  struct Slab {
    std::unique_ptr<std::uint8_t[]> memory;
    std::size_t size = 0;
    std::size_t used = 0;  // bump-carve offset
    ugni::gni_mem_handle_t handle{};
  };

  // Block header stamped just before every returned pointer.  The spare
  // 8 bytes carry the intrusive freelist link while the block is free
  // (never read while live, so payload bytes are untouched either way).
  struct Header {
    std::uint32_t magic = 0;
    std::uint16_t bin = 0;
    std::uint16_t slab = 0;
    void* next_free = nullptr;
  };
  static constexpr std::size_t kHeaderSize = 16;  // keep payload aligned
  static_assert(sizeof(Header) == kHeaderSize,
                "freelist link must fit the spare header bytes");
  static constexpr std::uint32_t kMagicLive = 0x9D00DA11u;
  static constexpr std::uint32_t kMagicFree = 0xFEE1DEADu;

  static std::size_t bin_of(std::size_t bytes);
  static std::size_t bin_block_size(std::size_t bin);

  /// Carve a block of `block` bytes for `bin`, expanding if needed.
  /// Returns nullptr when expansion fails.
  void* carve(std::size_t bin, std::size_t block);
  /// False when the slab's registration was refused by the NIC.
  bool add_slab(std::size_t min_bytes);

  Header* header_of(void* p) const {
    return reinterpret_cast<Header*>(static_cast<std::uint8_t*>(p) -
                                     kHeaderSize);
  }
  const Header* header_of(const void* p) const {
    return reinterpret_cast<const Header*>(
        static_cast<const std::uint8_t*>(p) - kHeaderSize);
  }

  /// One size class per power of two in [kMinBlock, kMaxBlock].
  static constexpr std::size_t kBins =
      std::countr_zero(kMaxBlock) - std::countr_zero(kMinBlock) + 1;

  ugni::gni_nic_handle_t nic_;
  std::vector<Slab> slabs_;
  std::array<void*, kBins> free_head_{};  // intrusive per-class freelists
  MemPoolStats stats_;
};

}  // namespace ugnirt::mempool
