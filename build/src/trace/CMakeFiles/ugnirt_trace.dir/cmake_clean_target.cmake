file(REMOVE_RECURSE
  "libugnirt_trace.a"
)
