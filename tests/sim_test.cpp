#include <gtest/gtest.h>

#include <vector>

#include "sim/context.hpp"
#include "sim/engine.hpp"

namespace ugnirt::sim {
namespace {

TEST(Engine, RunsEventsInTimeOrder) {
  Engine e{EngineOptions{}};
  std::vector<int> order;
  e.schedule_at(30, [&] { order.push_back(3); });
  e.schedule_at(10, [&] { order.push_back(1); });
  e.schedule_at(20, [&] { order.push_back(2); });
  EXPECT_EQ(e.run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(e.now(), 30);
}

TEST(Engine, TiesBreakInSchedulingOrder) {
  Engine e{EngineOptions{}};
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    e.schedule_at(5, [&order, i] { order.push_back(i); });
  }
  e.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(Engine, PastTimesClampToNow) {
  Engine e{EngineOptions{}};
  SimTime seen = -1;
  e.schedule_at(100, [&] {
    e.schedule_at(50, [&] { seen = e.now(); });  // in the past
  });
  e.run();
  EXPECT_EQ(seen, 100);
}

TEST(Engine, EventsCanScheduleMoreEvents) {
  Engine e{EngineOptions{}};
  int count = 0;
  std::function<void()> chain = [&] {
    if (++count < 5) e.schedule_after(10, chain);
  };
  e.schedule_at(0, chain);
  e.run();
  EXPECT_EQ(count, 5);
  EXPECT_EQ(e.now(), 40);
}

TEST(Engine, CancelPreventsExecution) {
  Engine e{EngineOptions{}};
  bool ran = false;
  auto h = e.schedule_at(10, [&] { ran = true; });
  h.cancel();
  e.run();
  EXPECT_FALSE(ran);
  EXPECT_EQ(e.executed(), 0u);
}

TEST(Engine, CancelAfterFireIsSafe) {
  Engine e{EngineOptions{}};
  bool ran = false;
  auto h = e.schedule_at(10, [&] { ran = true; });
  e.run();
  EXPECT_TRUE(ran);
  h.cancel();  // no-op
  EXPECT_FALSE(h.valid());
}

TEST(Engine, StopInterruptsRun) {
  Engine e{EngineOptions{}};
  int count = 0;
  for (int i = 0; i < 10; ++i) {
    e.schedule_at(i * 10, [&] {
      if (++count == 3) e.stop();
    });
  }
  e.run();
  EXPECT_EQ(count, 3);
  EXPECT_EQ(e.pending(), 7u);
  // run() again resumes.
  e.run();
  EXPECT_EQ(count, 10);
}

TEST(Engine, RunUntilStopsAtBoundaryAndAdvancesClock) {
  Engine e{EngineOptions{}};
  std::vector<SimTime> fired;
  for (SimTime t : {10, 20, 30, 40}) {
    e.schedule_at(t, [&fired, &e] { fired.push_back(e.now()); });
  }
  e.run_until(25);
  EXPECT_EQ(fired, (std::vector<SimTime>{10, 20}));
  EXPECT_EQ(e.now(), 25);  // clock advanced to the horizon
  e.run_until(100);
  EXPECT_EQ(fired.size(), 4u);
}

TEST(Engine, DeterministicAcrossRuns) {
  auto run_once = [] {
    Engine e{EngineOptions{}};
    std::vector<std::pair<SimTime, int>> log;
    for (int i = 0; i < 50; ++i) {
      e.schedule_at((i * 7) % 13, [&log, i, &e] {
        log.emplace_back(e.now(), i);
        if (i % 3 == 0) {
          e.schedule_after(2, [&log, i, &e] { log.emplace_back(e.now(), 100 + i); });
        }
      });
    }
    e.run();
    return log;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(Context, ChargeAdvancesCursorAndTotals) {
  Engine e{EngineOptions{}};
  Context c(e.scheduler(), 3);
  EXPECT_EQ(c.pe(), 3);
  EXPECT_EQ(c.now(), 0);
  c.charge(100);
  c.charge_app(50);
  EXPECT_EQ(c.now(), 150);
  EXPECT_EQ(c.overhead_total(), 100);
  EXPECT_EQ(c.app_total(), 50);
}

TEST(Context, WaitUntilOnlyMovesForward) {
  Engine e{EngineOptions{}};
  Context c(e.scheduler(), 0);
  c.set_now(100);
  c.wait_until(50);  // no-op
  EXPECT_EQ(c.now(), 100);
  c.wait_until(200);
  EXPECT_EQ(c.now(), 200);
  EXPECT_EQ(c.overhead_total(), 100);  // waiting counts as non-app time
}

TEST(Context, ScopedContextNestsCorrectly) {
  Engine e{EngineOptions{}};
  Context outer(e.scheduler(), 1);
  Context inner(e.scheduler(), 2);
  EXPECT_EQ(current(), nullptr);
  {
    ScopedContext s1(outer);
    EXPECT_EQ(current(), &outer);
    {
      ScopedContext s2(inner);
      EXPECT_EQ(current(), &inner);
    }
    EXPECT_EQ(current(), &outer);
  }
  EXPECT_EQ(current(), nullptr);
}

}  // namespace
}  // namespace ugnirt::sim
