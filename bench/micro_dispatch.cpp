// Host hot-path microbenchmarks (google-benchmark): the two A/Bs behind
// the events/sec overhaul, measured in isolation.
//
//   * BM_EventChurn      — slab-recycling event arena on vs off.  Off
//     carves a fresh record per event (the no-reuse baseline); on pops
//     the per-shard freelist, so steady-state scheduling never touches
//     the allocator.
//   * BM_SmallFnBind     — SmallFn (72-byte inline SBO) vs std::function
//     for an engine-sized capture: construct + invoke + destroy.
//   * BM_DispatchFlood   — converse flat kind-table dispatch vs the
//     classic branch-per-flag path, driven by the kNeighbor flood (the
//     fine-grained regime where per-message dispatch overhead shows).
//
// Like micro_components, these measure *host* performance; virtual-time
// results are identical across every variant by construction (the trace
// byte-identity guard in tests/scale_test.cpp holds them to it).
#include <benchmark/benchmark.h>

#include <cstdint>
#include <functional>

#include "apps/microbench/microbench.hpp"
#include "converse/machine.hpp"
#include "sim/engine.hpp"
#include "sim/small_fn.hpp"

namespace {

using namespace ugnirt;

void BM_EventChurn(benchmark::State& state) {
  const bool arena = state.range(0) != 0;
  constexpr int kTimers = 4096;
  struct Timer {
    sim::Engine* eng;
    std::uint32_t lcg;
    void operator()() {
      lcg = lcg * 1664525u + 1013904223u;
      eng->scheduler(0).schedule_after(64 + (lcg >> 21), *this);
    }
  };
  std::uint64_t events = 0;
  for (auto _ : state) {
    sim::EngineOptions eo;
    eo.arena = arena;
    sim::Engine e(eo);
    for (int i = 0; i < kTimers; ++i) {
      e.scheduler(0).schedule_at(
          i % 977, Timer{&e, static_cast<std::uint32_t>(i) * 2654435761u});
    }
    e.run_until(20'000);
    events = e.executed();
    benchmark::DoNotOptimize(events);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(events));
  state.SetLabel(arena ? "arena" : "fresh-carve");
}
BENCHMARK(BM_EventChurn)->Arg(0)->Arg(1);

// One engine-typical capture: two pointers + a couple of scalars.
struct Capture {
  void* a = nullptr;
  void* b = nullptr;
  std::uint64_t t = 0;
  std::uint32_t n = 0;
};

void BM_SmallFnBind(benchmark::State& state) {
  const bool small = state.range(0) != 0;
  Capture c;
  std::uint64_t sink = 0;
  for (auto _ : state) {
    c.t = sink;
    if (small) {
      sim::SmallFn fn([c, &sink] { sink += c.t + c.n; });
      fn();
    } else {
      std::function<void()> fn([c, &sink] { sink += c.t + c.n; });
      fn();
    }
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(small ? "SmallFn" : "std::function");
}
BENCHMARK(BM_SmallFnBind)->Arg(0)->Arg(1);

void BM_DispatchFlood(benchmark::State& state) {
  const bool flat = state.range(0) != 0;
  converse::MachineOptions o;
  o.layer = converse::LayerKind::kUgni;
  o.pes = 16;
  o.pes_per_node = 1;
  o.flat_dispatch = flat;
  std::uint64_t msgs = 0;
  for (auto _ : state) {
    apps::bench::KNeighborFloodResult r =
        apps::bench::charm_kneighbor_flood(o, /*rounds=*/16);
    msgs = r.messages;
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(msgs));
  state.SetLabel(flat ? "flat-table" : "classic");
}
BENCHMARK(BM_DispatchFlood)->Arg(0)->Arg(1);

}  // namespace

BENCHMARK_MAIN();
