// Projections-lite: utilization tracing for the paper's Figure 12.
//
// The real paper uses the Projections tool to render per-time-interval CPU
// utilization split into useful work (yellow), idle (white) and runtime
// overhead (black).  This tracer accumulates exactly those three series
// into fixed-width virtual-time bins across all PEs and dumps them as CSV.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "util/units.hpp"

namespace ugnirt::trace {

enum class SpanKind : std::uint8_t {
  kApp = 0,       // useful application compute
  kOverhead = 1,  // runtime + communication bookkeeping
};

class Tracer {
 public:
  /// `bin_ns` is the profile resolution (Projections interval size).
  explicit Tracer(SimTime bin_ns = 1'000'000) : bin_ns_(bin_ns) {}

  void set_pe_count(int pes) { pes_ = pes; }

  /// Record that `pe` spent [t0, t1) doing `kind` work.  Spans may cross
  /// bin boundaries; time is apportioned to each overlapped bin.  Calls
  /// after finalize() are ignored.
  void record(int pe, SimTime t0, SimTime t1, SpanKind kind);

  /// Close the trace at `end`: everything not recorded as app/overhead in
  /// [0, end) across `pes` PEs is idle time.
  void finalize(SimTime end);

  std::size_t bins() const { return app_.size(); }
  SimTime bin_ns() const { return bin_ns_; }
  SimTime end() const { return end_; }

  /// Per-bin totals in ns (summed over PEs).
  double app_ns(std::size_t bin) const { return app_.at(bin); }
  double overhead_ns(std::size_t bin) const { return overhead_.at(bin); }
  double idle_ns(std::size_t bin) const { return idle_.at(bin); }

  /// Percentages of total PE-time per bin (0..100, stack to 100).
  double app_pct(std::size_t bin) const;
  double overhead_pct(std::size_t bin) const;
  double idle_pct(std::size_t bin) const;

  /// Whole-run aggregates.
  double total_app_pct() const;
  double total_overhead_pct() const;
  double total_idle_pct() const;

  /// "time_ms,app_pct,overhead_pct,idle_pct" rows (Fig 12 as data).
  void write_csv(std::ostream& out) const;

 private:
  double bin_capacity(std::size_t bin) const;

  SimTime bin_ns_;
  int pes_ = 1;
  SimTime end_ = 0;
  bool finalized_ = false;
  std::vector<double> app_;
  std::vector<double> overhead_;
  std::vector<double> idle_;
};

}  // namespace ugnirt::trace
