file(REMOVE_RECURSE
  "CMakeFiles/ugnirt_mpilite.dir/mpilite.cpp.o"
  "CMakeFiles/ugnirt_mpilite.dir/mpilite.cpp.o.d"
  "libugnirt_mpilite.a"
  "libugnirt_mpilite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ugnirt_mpilite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
