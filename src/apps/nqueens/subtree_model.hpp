// Subtree cost models for the parallel N-Queens search.
//
// Below the parallelization threshold each task solves its subtree
// sequentially.  For board sizes whose full enumeration is too slow for
// this container (N >= 16; 19-Queens visits ~10^10 nodes), a *sampled*
// model solves a deterministic sample of threshold-depth subtrees exactly
// and assigns every unsampled subtree a draw from the resulting empirical
// distribution, keyed by a hash of the prefix.  This preserves the two
// properties the scaling experiment depends on: total work magnitude and
// the heavy-tailed per-task cost distribution that causes the end-of-run
// load imbalance in the paper's Figure 12.  Set UGNIRT_NQ_FULL=1 to force
// exact solving everywhere (see DESIGN.md).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "apps/nqueens/solver.hpp"
#include "util/rng.hpp"

namespace ugnirt::apps::nqueens {

class SubtreeCostModel {
 public:
  virtual ~SubtreeCostModel() = default;

  /// Work (nodes) and solutions for the subtree under the given prefix.
  virtual SolveResult subtree(int n, int row, std::uint32_t cols,
                              std::uint32_t diag_l,
                              std::uint32_t diag_r) const = 0;

  /// True when subtree() returns exact values (totals will verify against
  /// known_solutions()).
  virtual bool exact() const = 0;
};

/// Solves every subtree for real.
class ExactModel final : public SubtreeCostModel {
 public:
  SolveResult subtree(int n, int row, std::uint32_t cols,
                      std::uint32_t diag_l,
                      std::uint32_t diag_r) const override {
    return solve(n, row, cols, diag_l, diag_r);
  }
  bool exact() const override { return true; }
};

/// Deterministic sampling model (see file comment).
class SampledModel final : public SubtreeCostModel {
 public:
  /// Enumerate all prefixes of depth `threshold`, exactly solve a sample of
  /// `samples` of them, and fit the empirical distribution.
  static std::unique_ptr<SampledModel> build(int n, int threshold,
                                             int samples,
                                             std::uint64_t seed = 0xA11CE);

  SolveResult subtree(int n, int row, std::uint32_t cols,
                      std::uint32_t diag_l,
                      std::uint32_t diag_r) const override;
  bool exact() const override { return false; }

  std::uint64_t prefix_count() const { return prefix_count_; }
  /// Estimated totals for the whole board (sample mean * prefix count).
  std::uint64_t est_total_nodes() const { return est_nodes_; }
  std::uint64_t est_total_solutions() const { return est_solutions_; }

 private:
  int n_ = 0;
  int threshold_ = 0;
  std::uint64_t prefix_count_ = 0;
  std::uint64_t est_nodes_ = 0;
  std::uint64_t est_solutions_ = 0;
  // Exact results for sampled prefixes, keyed by packed prefix state.
  std::vector<std::pair<std::uint64_t, SolveResult>> sampled_;
  // Empirical distribution (sorted by nodes) used for unsampled prefixes.
  std::vector<SolveResult> empirical_;
};

/// Packed key for a prefix state (n, row, masks).
std::uint64_t prefix_key(int row, std::uint32_t cols, std::uint32_t diag_l,
                         std::uint32_t diag_r);

}  // namespace ugnirt::apps::nqueens
