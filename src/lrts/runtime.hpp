// The one factory that links an application against an LRTS layer.
//
// "All the following benchmark programs and applications are written in
// CHARM++, but linked with either MPI- or uGNI-based message-driven runtime
// for comparison" (paper §V) — this factory is that link step.
//
// `make_machine(kind, options)` is the canonical entry point: the layer is
// an explicit argument (it *is* the link decision, not another tunable
// buried in the options bag), and every config sub-struct riding in
// MachineOptions — the gemini::MachineConfig cost model, the
// fault::FaultPlan and the fault::RetryPolicy — is re-resolved through a
// Config round trip so UGNIRT_GEMINI_* / UGNIRT_FAULT_* / UGNIRT_RETRY_*
// environment overrides apply without a rebuild.
#pragma once

#include <memory>

#include "converse/machine.hpp"

namespace ugnirt::lrts {

/// Build a machine running layer `kind` (overrides `options.layer`), with
/// UGNIRT_GEMINI_* / UGNIRT_FAULT_* / UGNIRT_RETRY_* environment overrides
/// applied on top of the passed-in options.
std::unique_ptr<converse::Machine> make_machine(
    converse::LayerKind kind, const converse::MachineOptions& options = {});

/// Deprecated shim: the layer hides inside the options bag.  Call
/// make_machine(kind, options) instead.
[[deprecated("use make_machine(LayerKind, const MachineOptions&)")]]
inline std::unique_ptr<converse::Machine> make_machine(
    const converse::MachineOptions& options) {
  return make_machine(options.layer, options);
}

}  // namespace ugnirt::lrts
