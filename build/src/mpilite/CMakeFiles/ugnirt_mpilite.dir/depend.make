# Empty dependencies file for ugnirt_mpilite.
# This may be replaced when dependencies are built.
