#include <gtest/gtest.h>

#include <cstdlib>
#include <set>

#include "util/config.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/units.hpp"

namespace ugnirt {
namespace {

using namespace ugnirt::literals;

// ---------------------------------------------------------------- units ----

TEST(Units, Conversions) {
  EXPECT_EQ(microseconds(1.5), 1500);
  EXPECT_EQ(milliseconds(2.0), 2'000'000);
  EXPECT_EQ(seconds(1.0), 1'000'000'000);
  EXPECT_DOUBLE_EQ(to_us(1500), 1.5);
  EXPECT_DOUBLE_EQ(to_ms(2'000'000), 2.0);
  EXPECT_EQ(3_us, 3000);
  EXPECT_EQ(2_ms, 2'000'000);
}

TEST(Units, TransferTimeRoundsUpAndHandlesZeroBandwidth) {
  EXPECT_EQ(transfer_time(1000, 1.0), 1000);
  EXPECT_EQ(transfer_time(1001, 2.0), 501);  // 500.5 rounds up
  EXPECT_EQ(transfer_time(0, 5.0), 0);
  EXPECT_EQ(transfer_time(12345, 0.0), 0);
}

TEST(Units, GbPerSecondIsBytesPerNanosecond) {
  EXPECT_DOUBLE_EQ(gb_per_s(6.0), 6.0);
  // 6 GB/s moves 6 KB in 1 us.
  EXPECT_EQ(transfer_time(6000, gb_per_s(6.0)), 1000);
}

// ------------------------------------------------------------------ rng ----

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, NextBelowStaysInRange) {
  Rng r(7);
  for (std::uint32_t bound : {1u, 2u, 3u, 17u, 1000u, 1u << 30}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(r.next_below(bound), bound);
  }
  EXPECT_EQ(r.next_below(0), 0u);
}

TEST(Rng, NextBelowCoversAllValues) {
  Rng r(99);
  std::set<std::uint32_t> seen;
  for (int i = 0; i < 400; ++i) seen.insert(r.next_below(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng r(3);
  for (int i = 0; i < 1000; ++i) {
    double d = r.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, DerivedStreamsAreIndependentAndStable) {
  Rng root(1234);
  Rng a1 = root.derive(1);
  Rng a2 = root.derive(1);
  Rng b = root.derive(2);
  EXPECT_EQ(a1.next_u64(), a2.next_u64());
  EXPECT_NE(a1.next_u64(), b.next_u64());
}

TEST(Rng, ExponentialHasRoughlyRightMean) {
  Rng r(5);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += r.next_exponential(10.0);
  double mean = sum / n;
  EXPECT_NEAR(mean, 10.0, 0.5);
}

// --------------------------------------------------------------- config ----

TEST(Config, ParsesKeyValuesCommentsAndBlanks) {
  Config c;
  ASSERT_TRUE(c.parse_string(
      "# a comment\n"
      "alpha = 1\n"
      "\n"
      "beta=2.5  # trailing comment\n"
      "  name  =  hello world  \n"));
  EXPECT_EQ(c.get_int_or("alpha", -1), 1);
  EXPECT_DOUBLE_EQ(c.get_double_or("beta", -1.0), 2.5);
  EXPECT_EQ(c.get_string_or("name", ""), "hello world");
  EXPECT_EQ(c.size(), 3u);
}

TEST(Config, RejectsMalformedLines) {
  Config c;
  EXPECT_FALSE(c.parse_string("this has no equals\n"));
  EXPECT_NE(c.last_error().find("line 1"), std::string::npos);
  Config c2;
  EXPECT_FALSE(c2.parse_string("= value\n"));
}

TEST(Config, TypedGettersRejectGarbage) {
  Config c;
  ASSERT_TRUE(c.parse_string("x = notanumber\ny = 12abc\n"));
  EXPECT_FALSE(c.get_int("x").has_value());
  EXPECT_FALSE(c.get_int("y").has_value());
  EXPECT_FALSE(c.get_double("x").has_value());
  EXPECT_EQ(c.get_int_or("x", 7), 7);
}

TEST(Config, BoolParsing) {
  Config c;
  ASSERT_TRUE(c.parse_string(
      "a = true\nb = FALSE\nc = 1\nd = off\ne = maybe\n"));
  EXPECT_TRUE(c.get_bool_or("a", false));
  EXPECT_FALSE(c.get_bool_or("b", true));
  EXPECT_TRUE(c.get_bool_or("c", false));
  EXPECT_FALSE(c.get_bool_or("d", true));
  EXPECT_TRUE(c.get_bool_or("e", true));  // unparsable -> fallback
}

TEST(Config, SetOverridesAndDumpIsSorted) {
  Config c;
  c.set("z", "1");
  c.set("a", "2");
  c.set("z", "3");
  EXPECT_EQ(c.dump(), "a = 2\nz = 3\n");
}

TEST(Config, EnvOverrideAppliesToKnownAndExtraKeys) {
  Config c;
  ASSERT_TRUE(c.parse_string("some.key = 1\n"));
  ::setenv("UGNIRT_SOME_KEY", "42", 1);
  ::setenv("UGNIRT_EXTRA_KEY", "7", 1);
  c.apply_env_overrides({"extra.key"});
  EXPECT_EQ(c.get_int_or("some.key", -1), 42);
  EXPECT_EQ(c.get_int_or("extra.key", -1), 7);
  ::unsetenv("UGNIRT_SOME_KEY");
  ::unsetenv("UGNIRT_EXTRA_KEY");
}

// ---------------------------------------------------------------- stats ----

TEST(Stats, RunningStatBasics) {
  RunningStat s;
  for (double x : {1.0, 2.0, 3.0, 4.0}) s.add(x);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_DOUBLE_EQ(s.sum(), 10.0);
  EXPECT_NEAR(s.stddev(), 1.29099, 1e-4);
}

TEST(Stats, EmptyRunningStatIsZero) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
}

TEST(Stats, SamplesPercentiles) {
  Samples s;
  for (int i = 1; i <= 100; ++i) s.add(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 100.0);
  EXPECT_NEAR(s.median(), 50.5, 0.01);
  EXPECT_NEAR(s.percentile(99), 99.01, 0.1);
  EXPECT_NEAR(s.mean(), 50.5, 1e-9);
}

TEST(Stats, HistogramBinsAndClamping) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);    // bin 0
  h.add(9.99);   // bin 9
  h.add(-5.0);   // clamps to bin 0
  h.add(100.0);  // clamps to bin 9
  EXPECT_EQ(h.bin(0), 2u);
  EXPECT_EQ(h.bin(9), 2u);
  EXPECT_EQ(h.total(), 4u);
}

}  // namespace
}  // namespace ugnirt
