file(REMOVE_RECURSE
  "libugnirt_util.a"
)
