// Measurement-based load balancing strategies.
//
// "The dynamic measurement-based load balancing framework in CHARM++ is
// deployed in NAMD for balancing computation across processors" (paper
// §V-D).  Strategies take measured per-object loads and produce an
// object -> PE assignment; ArrayManager::migrate_to applies it.
#pragma once

#include <cstdint>
#include <vector>

namespace ugnirt::charm {

struct LbResult {
  std::vector<int> assignment;
  double max_load_before = 0;
  double max_load_after = 0;
  int migrations = 0;
};

/// Greedy: heaviest object first onto the currently least-loaded PE.
/// Classic GreedyLB; ignores current placement (may migrate everything).
LbResult greedy_lb(const std::vector<double>& loads,
                   const std::vector<int>& current, int pes);

/// Refinement: move objects off overloaded PEs only until within
/// `tolerance` of the average (RefineLB); keeps migrations low.
LbResult refine_lb(const std::vector<double>& loads,
                   const std::vector<int>& current, int pes,
                   double tolerance = 1.05);

/// Utility: per-PE total loads under an assignment.
std::vector<double> pe_loads(const std::vector<double>& loads,
                             const std::vector<int>& assignment, int pes);

}  // namespace ugnirt::charm
