// Slab-recycling event-record arena: the engine's zero-alloc hot path.
//
// Every scheduled event owns an EventRecord — the callback plus the
// cancellation state that used to live in a per-event
// std::make_shared<bool> tombstone.  Records live in per-shard slabs and
// recycle through an intrusive freelist, so steady-state schedule/pop
// cycles never touch the heap: acquire() is a freelist pop (or a bump
// into the newest slab), release() destroys the callback, bumps the
// generation and pushes the record back.
//
// Slabs are never freed or moved while the arena lives, which is the
// property the cancellation scheme leans on: an EventHandle keeps a raw
// EventRecord* plus the generation it was issued at.  The pointer stays
// dereferenceable for the engine's whole lifetime, and the generation
// check makes a handle to a recycled record a guaranteed no-op — the
// moral equivalent of the old weak_ptr tombstone without the control
// block, the allocation, or the atomics.
//
// recycle=false (UGNIRT_SIM_ARENA=0) is the measurement/debug baseline:
// every acquire carves a fresh record (slabs still grow, nothing is
// reused until teardown), which restores one-allocation-per-event
// behavior for A/B benches while keeping stale handles safe.  The
// micro_dispatch bench and the scale_test bit-identity guard drive both
// modes.
//
// Thread contract: an arena belongs to one shard and is touched only by
// whichever thread currently owns that shard (the driving thread under
// kReplay, the shard's worker inside a kWindow round).  Cross-shard
// window-mode schedules do NOT use the target's arena — they go through
// the shard's mutex-guarded mailbox record pool (see engine.cpp).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "sim/small_fn.hpp"

namespace ugnirt::sim {

/// One scheduled event's identity: callback, liveness, reuse generation.
/// Exactly 128 bytes (two cache lines) with the 72-byte SmallFn buffer.
struct EventRecord {
  SmallFn fn;                       ///< the event callback
  std::uint64_t gen = 0;            ///< bumped on release; stale-handle guard
  EventRecord* next_free = nullptr; ///< intrusive freelist link
  bool alive = false;               ///< flipped false by cancel() or firing
  bool mailbox_owned = false;       ///< release through the mailbox pool
};

class EventArena {
 public:
  /// Records per slab: 512 x 128 B = 64 KiB — big enough that steady
  /// workloads sit in one or two slabs, small enough that a tiny engine
  /// (unit tests build thousands) stays cheap.
  static constexpr std::size_t kSlabRecords = 512;

  explicit EventArena(bool recycle = true) : recycle_(recycle) {}
  EventArena(const EventArena&) = delete;
  EventArena& operator=(const EventArena&) = delete;

  /// A record ready to arm: fn empty, alive false, gen preserved from the
  /// previous life (handles from that life are already stale).
  EventRecord* acquire() {
    ++acquires_;
    if (free_head_ != nullptr) {
      EventRecord* rec = free_head_;
      free_head_ = rec->next_free;
      rec->next_free = nullptr;
      ++in_use_;
      return rec;
    }
    if (slabs_.empty() || next_in_slab_ == kSlabRecords) {
      slabs_.push_back(std::make_unique<EventRecord[]>(kSlabRecords));
      next_in_slab_ = 0;
    }
    EventRecord* rec = &slabs_.back()[next_in_slab_++];
    ++in_use_;
    return rec;
  }

  /// Retire a popped record: destroy the callback, invalidate outstanding
  /// handles (gen bump), recycle (or strand it until teardown in the
  /// no-recycle baseline).
  void release(EventRecord* rec) {
    rec->fn.reset();
    rec->alive = false;
    ++rec->gen;
    --in_use_;
    if (recycle_) {
      rec->next_free = free_head_;
      free_head_ = rec;
    }
  }

  // Introspection for tests and the micro bench.
  std::size_t slabs() const { return slabs_.size(); }
  std::size_t in_use() const { return in_use_; }
  std::uint64_t acquires() const { return acquires_; }
  bool recycling() const { return recycle_; }

 private:
  bool recycle_;
  std::vector<std::unique_ptr<EventRecord[]>> slabs_;
  std::size_t next_in_slab_ = 0;
  EventRecord* free_head_ = nullptr;
  std::size_t in_use_ = 0;
  std::uint64_t acquires_ = 0;
};

}  // namespace ugnirt::sim
