#include <gtest/gtest.h>

#include "topo/torus.hpp"

namespace ugnirt::topo {
namespace {

TEST(Torus, CoordinateRoundTrip) {
  Torus3D t(4, 3, 2);
  EXPECT_EQ(t.nodes(), 24);
  for (int n = 0; n < t.nodes(); ++n) {
    EXPECT_EQ(t.node_of(t.coord_of(n)), n);
  }
}

TEST(Torus, FactoringCoversNodesWithNearCubicVolume) {
  for (int n : {1, 2, 3, 5, 8, 16, 24, 64, 100, 128, 160, 640, 6384}) {
    Torus3D t = Torus3D::for_nodes(n);
    auto d = t.dims();
    // Enough slots for the job, without gross overallocation, and no
    // degenerate 1-wide dimensions past the 2-node case (real jobs sit on
    // slices of a genuinely 3-D torus).
    EXPECT_GE(d[0] * d[1] * d[2], n) << "n=" << n;
    EXPECT_LE(d[0] * d[1] * d[2], std::max(8, 2 * n)) << "n=" << n;
    if (n > 2) {
      EXPECT_GE(d[0], 2) << "n=" << n;
      EXPECT_GE(d[1], 2) << "n=" << n;
    }
  }
  // Perfect cubes factor perfectly.
  auto d = Torus3D::for_nodes(64).dims();
  EXPECT_EQ(d[0], 4);
  EXPECT_EQ(d[1], 4);
  EXPECT_EQ(d[2], 4);
}

TEST(Torus, HopsAreSymmetricAndZeroOnSelf) {
  Torus3D t(4, 4, 4);
  for (int a = 0; a < t.nodes(); a += 7) {
    EXPECT_EQ(t.hops(a, a), 0);
    for (int b = 0; b < t.nodes(); b += 5) {
      EXPECT_EQ(t.hops(a, b), t.hops(b, a));
    }
  }
}

TEST(Torus, WraparoundShortensRoutes) {
  Torus3D t(8, 1, 1);
  // 0 -> 7 is one hop backwards around the ring, not 7 forward.
  EXPECT_EQ(t.hops(0, 7), 1);
  EXPECT_EQ(t.hops(0, 4), 4);  // antipodal
  EXPECT_EQ(t.hops(1, 6), 3);
}

TEST(Torus, RouteLengthMatchesHopsAndEndsAtTarget) {
  Torus3D t(4, 3, 5);
  for (int a = 0; a < t.nodes(); a += 3) {
    for (int b = 0; b < t.nodes(); b += 7) {
      auto route = t.route(a, b);
      EXPECT_EQ(static_cast<int>(route.size()), t.hops(a, b));
      // Walk the route and confirm it lands on b.
      int cur = a;
      for (const auto& link : route) {
        EXPECT_EQ(link.node, cur);
        cur = t.neighbor(cur, link.dim, link.positive);
      }
      EXPECT_EQ(cur, b);
    }
  }
}

TEST(Torus, RouteIsDimensionOrdered) {
  Torus3D t(4, 4, 4);
  auto route = t.route(0, t.node_of({2, 1, 3}));
  // x links first, then y, then z.
  int last_dim = -1;
  for (const auto& link : route) {
    EXPECT_GE(static_cast<int>(link.dim), last_dim);
    last_dim = link.dim;
  }
}

TEST(Torus, SelfRouteIsEmpty) {
  Torus3D t(3, 3, 3);
  EXPECT_TRUE(t.route(5, 5).empty());
}

// Every dimension-order permutation yields a minimal route that walks to
// the destination — the invariant congestion-aware adaptive routing
// relies on when it picks among them by estimated link load.
TEST(Torus, RouteOrderAllPermutationsMinimalAndCorrect) {
  constexpr std::array<std::array<int, 3>, 6> kOrders = {{{0, 1, 2},
                                                          {0, 2, 1},
                                                          {1, 0, 2},
                                                          {1, 2, 0},
                                                          {2, 0, 1},
                                                          {2, 1, 0}}};
  Torus3D t(4, 3, 5);
  for (int a = 0; a < t.nodes(); a += 5) {
    for (int b = 0; b < t.nodes(); b += 3) {
      for (const auto& order : kOrders) {
        auto route = t.route_order(a, b, order);
        EXPECT_EQ(static_cast<int>(route.size()), t.hops(a, b));
        int cur = a;
        std::size_t pos = 0;  // dims must be corrected in `order` order
        for (const auto& link : route) {
          EXPECT_EQ(link.node, cur);
          while (pos < 3 && order[pos] != static_cast<int>(link.dim)) ++pos;
          ASSERT_LT(pos, 3u) << "dim " << int(link.dim)
                             << " out of permutation order";
          cur = t.neighbor(cur, link.dim, link.positive);
        }
        EXPECT_EQ(cur, b);
      }
    }
  }
}

TEST(Torus, RouteOrderStockPermutationMatchesRoute) {
  Torus3D t(4, 4, 2);
  for (int a = 0; a < t.nodes(); a += 3) {
    for (int b = 0; b < t.nodes(); b += 5) {
      EXPECT_EQ(t.route_order(a, b, {0, 1, 2}), t.route(a, b));
    }
  }
}

TEST(Torus, NeighborWrapsBothDirections) {
  Torus3D t(3, 1, 1);
  EXPECT_EQ(t.neighbor(2, 0, true), 0);
  EXPECT_EQ(t.neighbor(0, 0, false), 2);
}

TEST(Torus, LinkIndexIsDenseAndUnique) {
  Torus3D t(2, 2, 2);
  std::vector<bool> seen(t.total_links(), false);
  for (int n = 0; n < t.nodes(); ++n) {
    for (std::uint8_t dim = 0; dim < 3; ++dim) {
      for (bool pos : {false, true}) {
        std::size_t idx = link_index(LinkId{n, dim, pos});
        ASSERT_LT(idx, t.total_links());
        EXPECT_FALSE(seen[idx]);
        seen[idx] = true;
      }
    }
  }
}

TEST(Torus, DiameterBoundsHops) {
  Torus3D t(6, 4, 4);
  int max_hops = 0;
  for (int a = 0; a < t.nodes(); a += 5) {
    for (int b = 0; b < t.nodes(); ++b) {
      max_hops = std::max(max_hops, t.hops(a, b));
    }
  }
  EXPECT_LE(max_hops, t.diameter());
  EXPECT_EQ(t.diameter(), 3 + 2 + 2);
}

TEST(Torus, DegenerateSingleNode) {
  Torus3D t = Torus3D::for_nodes(1);
  EXPECT_EQ(t.nodes(), 1);
  EXPECT_EQ(t.hops(0, 0), 0);
  EXPECT_TRUE(t.route(0, 0).empty());
}

}  // namespace
}  // namespace ugnirt::topo
