# Empty compiler generated dependencies file for fig09b_bandwidth.
# This may be replaced when dependencies are built.
