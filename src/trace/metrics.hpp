// Runtime-wide metrics registry (the "counters" half of Projections-full).
//
// Every machine layer, the mempool, the uGNI emulation and the Gemini
// network model publish named metrics here instead of keeping private
// ad-hoc stats structs.  Three metric flavors:
//
//   * Counter — monotonically increasing event count; cheap enough to stay
//     always-on (one pointer-indirect increment on the hot path).
//   * Gauge   — point-in-time value sampled at collection time (mailbox
//     bytes, CQ depth, pool slab bytes); tracks its high-water mark.
//   * Stat    — RunningStat-backed distribution (per-sample count / mean /
//     min / max), for quantities like per-link occupancy.
//   * Histogram — log-bucketed distribution with mergeable buckets and
//     quantile estimates (p50/p90/p99), for latency-style quantities where
//     the tail matters and mean/min/max hide it.
//
// Naming convention is dotted lowercase, `<subsystem>.<what>`:
// "ugni.smsg_sends", "mempool.freelist_hits", "net.link_conflicts",
// "cq.max_depth".  The registry dumps a sorted text table and a CSV with
// header `metric,kind,count,sum,mean,min,max,p50,p90,p99` at end of run,
// plus a JSON object mirroring the same data for machine consumers.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <limits>
#include <map>
#include <string>
#include <vector>

#include "util/stats.hpp"

namespace ugnirt::trace {

class Counter {
 public:
  void inc(std::uint64_t n = 1) { value_ += n; }
  void set(std::uint64_t v) { value_ = v; }
  std::uint64_t value() const { return value_; }
  void reset() { value_ = 0; }

 private:
  std::uint64_t value_ = 0;
};

class Gauge {
 public:
  void set(double v) {
    value_ = v;
    if (v > max_) max_ = v;
  }
  double value() const { return value_; }
  double max() const { return max_; }
  void reset() { value_ = max_ = 0.0; }

 private:
  double value_ = 0.0;
  double max_ = 0.0;
};

/// Log-bucketed histogram: bucket 0 covers [0,1), then 8 sub-buckets per
/// power-of-two octave, so the relative quantile error is bounded by one
/// sub-bucket width (12.5%).  Buckets are plain counts, which makes merge()
/// exact (element-wise add) and associative — per-PE histograms fold into a
/// run-wide one without losing tail resolution the way mean/stddev do.
class Histogram {
 public:
  void add(double v);
  void merge(const Histogram& other);

  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const { return count_ ? sum_ / static_cast<double>(count_) : 0.0; }
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }

  /// Quantile estimate for p in [0,100]; linear interpolation inside the
  /// selected bucket, clamped to the exact observed [min,max].
  double quantile(double p) const;
  double p50() const { return quantile(50.0); }
  double p90() const { return quantile(90.0); }
  double p99() const { return quantile(99.0); }

  void reset();

  /// Number of (bucket, count) pairs with non-zero counts (for tests).
  std::size_t nonzero_buckets() const;

 private:
  static constexpr int kSubBuckets = 8;       // per octave
  static constexpr int kOctaves = 64;         // covers doubles up to 2^64
  static constexpr int kBucketCount = 1 + kOctaves * kSubBuckets;

  static int bucket_index(double v);
  static double bucket_lo(int idx);
  static double bucket_hi(int idx);

  std::vector<std::uint64_t> buckets_;  // lazily sized to kBucketCount
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

class MetricsRegistry {
 public:
  /// Find-or-create.  Returned references stay valid for the registry's
  /// lifetime (std::map nodes are address-stable), so hot paths cache the
  /// pointer once and increment without a lookup.
  Counter& counter(const std::string& name) { return counters_[name]; }
  Gauge& gauge(const std::string& name) { return gauges_[name]; }
  RunningStat& stat(const std::string& name) { return stats_[name]; }
  Histogram& histogram(const std::string& name) { return histograms_[name]; }

  std::size_t size() const {
    return counters_.size() + gauges_.size() + stats_.size() +
           histograms_.size();
  }
  std::size_t counter_count() const { return counters_.size(); }

  const Counter* find_counter(const std::string& name) const;
  const Gauge* find_gauge(const std::string& name) const;
  const Histogram* find_histogram(const std::string& name) const;

  /// Fold another registry into this one: counters add, gauges keep the
  /// maximum observed value, stats merge their sample moments, histograms
  /// add their buckets.  Used by the trace session to aggregate per-Machine
  /// registries over a whole bench.
  void merge_from(const MetricsRegistry& other);

  /// Human-readable sorted table ("== metrics ==" plus one row per metric).
  void dump_table(std::ostream& out) const;

  /// Machine-readable dump: `metric,kind,count,sum,mean,min,max,p50,p90,p99`.
  /// Counters and gauges repeat their value across the distribution columns;
  /// stats repeat their mean in the quantile columns (no shape information);
  /// histograms report true quantile estimates.
  void write_csv(std::ostream& out) const;

  /// JSON object keyed by kind then metric name; same data as the CSV.
  void write_json(std::ostream& out) const;

  void reset();

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, RunningStat> stats_;
  std::map<std::string, Histogram> histograms_;
};

}  // namespace ugnirt::trace
