// Shared retry/backoff policy for the LRTS machine layers.
//
// Real uGNI code paths treat GNI_RC_NOT_DONE, GNI_RC_ERROR_RESOURCE and
// GNI_RC_TRANSACTION_ERROR as *transient*: the Gemini driver expects the
// caller to back off and re-issue (credits return, CQ space frees, the
// adapter retransmits).  All three layers (UgniLayer / SmpLayer / MpiLayer)
// share this one policy object so an experiment tunes retry behavior once:
//
//   * bounded "polite" phase — `max_retries` attempts with exponential
//     backoff in *virtual* time (base * mult^attempt, capped);
//   * escalation — after the polite phase the stall is logged once and
//     counted in the `retry_escalations` metric, but the runtime keeps
//     retrying at the capped backoff so no message is ever dropped
//     (the simulated fault processes are transient by construction);
//   * demotion — an SMSG send that stays credit-starved for
//     `demote_after` attempts is demoted to the rendezvous (INIT/GET/ACK)
//     path, which does not consume mailbox credits.
//
// Config keys live under "retry.*" and are overridable via
// UGNIRT_RETRY_<NAME> environment variables (see Config::apply_env_overrides).
#pragma once

#include <algorithm>
#include <cstdint>

#include "util/units.hpp"

namespace ugnirt {
class Config;
}

namespace ugnirt::fault {

struct RetryPolicy {
  /// Attempts before a stall is escalated (logged + counted).
  int max_retries = 8;
  /// First backoff interval, virtual nanoseconds.
  SimTime backoff_base_ns = 500;
  /// Multiplier applied per attempt.
  double backoff_mult = 2.0;
  /// Ceiling on a single backoff interval.
  SimTime backoff_max_ns = 64000;
  /// Credit-starved SMSG sends demote to rendezvous after this many
  /// attempts (UgniLayer only; 0 disables demotion).
  int demote_after = 4;

  /// Backoff before retry number `attempt` (1-based): capped exponential.
  SimTime backoff_for(int attempt) const {
    if (attempt < 1) attempt = 1;
    double b = static_cast<double>(backoff_base_ns);
    for (int i = 1; i < attempt && b < static_cast<double>(backoff_max_ns);
         ++i) {
      b *= backoff_mult;
    }
    return std::min(static_cast<SimTime>(b), backoff_max_ns);
  }

  /// Read "retry.*" keys, falling back to the defaults above.
  static RetryPolicy from(const Config& cfg);
  /// Write every knob back as "retry.*" (for env-override round trips).
  void export_to(Config& cfg) const;
  /// The "retry.*" key list, for Config::apply_env_overrides.
  static const char* const* config_keys(std::size_t* count);
};

}  // namespace ugnirt::fault
