file(REMOVE_RECURSE
  "CMakeFiles/ugnirt_gemini.dir/machine_config.cpp.o"
  "CMakeFiles/ugnirt_gemini.dir/machine_config.cpp.o.d"
  "CMakeFiles/ugnirt_gemini.dir/network.cpp.o"
  "CMakeFiles/ugnirt_gemini.dir/network.cpp.o.d"
  "libugnirt_gemini.a"
  "libugnirt_gemini.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ugnirt_gemini.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
