#include "ugni/msgq.hpp"

#include <cassert>
#include <cstring>

#include "trace/events.hpp"

namespace ugnirt::ugni {

namespace {

/// Extra per-message protocol cost of the shared-queue path over SMSG:
/// remote atomic slot claim + queue descriptor handling.
constexpr SimTime kMsgqExtraNs = 650;

/// Wire overhead per MSGQ message.
constexpr std::uint32_t kMsgqSysHeader = 32;

sim::Context& ctx() {
  sim::Context* c = sim::current();
  assert(c && "MSGQ calls must run inside a simulated PE context");
  return *c;
}

}  // namespace

gni_return_t GNI_MsgqInit(gni_nic_handle_t nic, std::uint32_t pool_bytes,
                          gni_msgq_handle_t* msgq_out) {
  if (!nic || !msgq_out || pool_bytes < 1024) return GNI_RC_INVALID_PARAM;
  if (nic->msgq()) return GNI_RC_INVALID_STATE;
  sim::Context& c = ctx();
  // The shared pool is registered once; this is the whole memory story:
  // one pool per NIC regardless of peer count.
  c.charge(nic->domain()->config().reg_cost(pool_bytes));
  nic->set_msgq(new Msgq(nic, pool_bytes));
  *msgq_out = nic->msgq();
  return GNI_RC_SUCCESS;
}

gni_return_t GNI_MsgqSend(gni_nic_handle_t nic, std::int32_t remote_inst,
                          const void* header, std::uint32_t header_len,
                          const void* data, std::uint32_t data_len,
                          std::uint8_t tag) {
  if (!nic) return GNI_RC_INVALID_PARAM;
  if ((header_len > 0 && !header) || (data_len > 0 && !data)) {
    return GNI_RC_INVALID_PARAM;
  }
  Domain* dom = nic->domain();
  Nic* remote = dom->nic_by_inst(remote_inst);
  if (!remote || !remote->msgq()) return GNI_RC_INVALID_STATE;
  Msgq* q = remote->msgq();

  const std::uint32_t total = header_len + data_len;
  if (total + kMsgqSysHeader > q->pool_bytes_) return GNI_RC_SIZE_ERROR;
  if (q->used_bytes_ + total + kMsgqSysHeader > q->pool_bytes_) {
    return GNI_RC_NOT_DONE;  // receiver must drain first
  }

  sim::Context& c = ctx();
  gemini::TransferRequest req;
  req.mech = gemini::Mechanism::kSmsg;
  req.initiator_node = nic->node();
  req.remote_node = remote->node();
  req.bytes = total + kMsgqSysHeader;
  req.issue = c.now();
  gemini::TransferTimes t = dom->network().transfer(req);
  c.wait_until(t.cpu_done);
  c.charge(kMsgqExtraNs);  // slot claim + descriptor write

  // The shared queue serializes concurrent enqueues from different peers.
  SimTime arrive = std::max(t.data_arrival, q->enqueue_free_) + kMsgqExtraNs;
  q->enqueue_free_ = arrive;

  Msgq::Msg msg;
  msg.bytes.resize(total);
  if (header_len) std::memcpy(msg.bytes.data(), header, header_len);
  if (data_len) {
    std::memcpy(msg.bytes.data() + header_len, data, data_len);
  }
  msg.tag = tag;
  msg.source = nic->inst_id();
  msg.at = arrive;
  q->used_bytes_ += total + kMsgqSysHeader;
  q->rx_.push_back(std::move(msg));
  if (q->notify_) {
    dom->scheduler().schedule_at(arrive, [q, arrive] { q->notify_(arrive); });
  }
  if (trace::enabled()) {
    trace::emit(trace::Ev::kMsgqSend, req.issue, arrive - req.issue,
                remote_inst, total);
  }
  return GNI_RC_SUCCESS;
}

gni_return_t GNI_MsgqProgress(gni_msgq_handle_t msgq, void** data_out,
                              std::uint32_t* len_out, std::uint8_t* tag_out,
                              std::int32_t* source_out) {
  if (!msgq || !data_out || !len_out || !tag_out || !source_out) {
    return GNI_RC_INVALID_PARAM;
  }
  sim::Context& c = ctx();
  const auto& mc = msgq->nic_->domain()->config();
  c.charge(mc.cq_poll_ns);
  if (msgq->rx_.empty() || msgq->rx_.front().at > c.now()) {
    return GNI_RC_NOT_DONE;
  }
  c.charge(mc.cq_event_ns);
  Msgq::Msg& front = msgq->rx_.front();
  msgq->last_delivered_ = std::move(front.bytes);
  *data_out = msgq->last_delivered_.data();
  *len_out = static_cast<std::uint32_t>(msgq->last_delivered_.size());
  *tag_out = front.tag;
  *source_out = front.source;
  msgq->used_bytes_ -=
      static_cast<std::uint32_t>(msgq->last_delivered_.size()) +
      kMsgqSysHeader;
  msgq->rx_.pop_front();
  return GNI_RC_SUCCESS;
}

}  // namespace ugnirt::ugni
