file(REMOVE_RECURSE
  "CMakeFiles/ugnirt_sim.dir/context.cpp.o"
  "CMakeFiles/ugnirt_sim.dir/context.cpp.o.d"
  "CMakeFiles/ugnirt_sim.dir/engine.cpp.o"
  "CMakeFiles/ugnirt_sim.dir/engine.cpp.o.d"
  "libugnirt_sim.a"
  "libugnirt_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ugnirt_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
