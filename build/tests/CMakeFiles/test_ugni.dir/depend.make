# Empty dependencies file for test_ugni.
# This may be replaced when dependencies are built.
