# Empty dependencies file for fig13_namd_weak.
# This may be replaced when dependencies are built.
