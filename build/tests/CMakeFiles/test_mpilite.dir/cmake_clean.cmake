file(REMOVE_RECURSE
  "CMakeFiles/test_mpilite.dir/mpilite_test.cpp.o"
  "CMakeFiles/test_mpilite.dir/mpilite_test.cpp.o.d"
  "test_mpilite"
  "test_mpilite.pdb"
  "test_mpilite[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mpilite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
