file(REMOVE_RECURSE
  "CMakeFiles/ugnirt_util.dir/config.cpp.o"
  "CMakeFiles/ugnirt_util.dir/config.cpp.o.d"
  "CMakeFiles/ugnirt_util.dir/log.cpp.o"
  "CMakeFiles/ugnirt_util.dir/log.cpp.o.d"
  "CMakeFiles/ugnirt_util.dir/rng.cpp.o"
  "CMakeFiles/ugnirt_util.dir/rng.cpp.o.d"
  "libugnirt_util.a"
  "libugnirt_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ugnirt_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
