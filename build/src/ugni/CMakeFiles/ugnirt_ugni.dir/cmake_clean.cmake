file(REMOVE_RECURSE
  "CMakeFiles/ugnirt_ugni.dir/dmapp.cpp.o"
  "CMakeFiles/ugnirt_ugni.dir/dmapp.cpp.o.d"
  "CMakeFiles/ugnirt_ugni.dir/msgq.cpp.o"
  "CMakeFiles/ugnirt_ugni.dir/msgq.cpp.o.d"
  "CMakeFiles/ugnirt_ugni.dir/ugni.cpp.o"
  "CMakeFiles/ugnirt_ugni.dir/ugni.cpp.o.d"
  "libugnirt_ugni.a"
  "libugnirt_ugni.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ugnirt_ugni.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
