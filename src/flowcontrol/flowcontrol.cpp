#include "flowcontrol/flowcontrol.hpp"

#include <algorithm>
#include <string>

#include "trace/events.hpp"
#include "util/stats.hpp"

namespace ugnirt::flowcontrol {

// ---------------------------------------------------------------------------
// FlowConfig
// ---------------------------------------------------------------------------

namespace {
constexpr const char* kFlowKeys[] = {
    "flow.enable",          "flow.ewma_alpha",
    "flow.hot_threshold",   "flow.window_min",
    "flow.window_max",      "flow.window_start",
    "flow.aimd_increase",   "flow.aimd_decrease",
    "flow.pace_rendezvous", "flow.adaptive_routing",
    "flow.adapt_thresholds", "flow.sample_period_ns",
};

std::string fkey(const char* name) { return std::string("flow.") + name; }
}  // namespace

FlowConfig FlowConfig::from(const Config& cfg) {
  FlowConfig f;
  f.enable = cfg.get_bool_or(fkey("enable"), f.enable);
  f.ewma_alpha = cfg.get_double_or(fkey("ewma_alpha"), f.ewma_alpha);
  f.hot_threshold =
      cfg.get_double_or(fkey("hot_threshold"), f.hot_threshold);
  f.window_min = static_cast<std::uint32_t>(
      cfg.get_int_or(fkey("window_min"), f.window_min));
  f.window_max = static_cast<std::uint32_t>(
      cfg.get_int_or(fkey("window_max"), f.window_max));
  f.window_start = static_cast<std::uint32_t>(
      cfg.get_int_or(fkey("window_start"), f.window_start));
  f.aimd_increase =
      cfg.get_double_or(fkey("aimd_increase"), f.aimd_increase);
  f.aimd_decrease =
      cfg.get_double_or(fkey("aimd_decrease"), f.aimd_decrease);
  f.pace_rendezvous =
      cfg.get_bool_or(fkey("pace_rendezvous"), f.pace_rendezvous);
  f.adaptive_routing =
      cfg.get_bool_or(fkey("adaptive_routing"), f.adaptive_routing);
  f.adapt_thresholds =
      cfg.get_bool_or(fkey("adapt_thresholds"), f.adapt_thresholds);
  f.sample_period_ns =
      cfg.get_int_or(fkey("sample_period_ns"), f.sample_period_ns);
  // Keep the window sane whatever the overrides say: min >= 1 so the
  // governor can never wedge a PE, and start inside [min, max].
  f.window_min = std::max<std::uint32_t>(f.window_min, 1);
  f.window_max = std::max(f.window_max, f.window_min);
  f.window_start = std::clamp(f.window_start, f.window_min, f.window_max);
  return f;
}

void FlowConfig::export_to(Config& cfg) const {
  cfg.set(fkey("enable"), enable ? "true" : "false");
  cfg.set(fkey("ewma_alpha"), std::to_string(ewma_alpha));
  cfg.set(fkey("hot_threshold"), std::to_string(hot_threshold));
  cfg.set(fkey("window_min"), std::to_string(window_min));
  cfg.set(fkey("window_max"), std::to_string(window_max));
  cfg.set(fkey("window_start"), std::to_string(window_start));
  cfg.set(fkey("aimd_increase"), std::to_string(aimd_increase));
  cfg.set(fkey("aimd_decrease"), std::to_string(aimd_decrease));
  cfg.set(fkey("pace_rendezvous"), pace_rendezvous ? "true" : "false");
  cfg.set(fkey("adaptive_routing"), adaptive_routing ? "true" : "false");
  cfg.set(fkey("adapt_thresholds"), adapt_thresholds ? "true" : "false");
  cfg.set(fkey("sample_period_ns"), std::to_string(sample_period_ns));
}

const char* const* FlowConfig::config_keys(std::size_t* count) {
  *count = sizeof(kFlowKeys) / sizeof(kFlowKeys[0]);
  return kFlowKeys;
}

// ---------------------------------------------------------------------------
// CongestionEstimator
// ---------------------------------------------------------------------------

CongestionEstimator::CongestionEstimator(const FlowConfig& cfg,
                                         std::size_t num_links,
                                         std::size_t num_nodes)
    : cfg_(cfg),
      link_load_(num_links, 0.0),
      node_load_(num_nodes, 0.0),
      last_sample_(num_links, 0) {}

void CongestionEstimator::on_link_reserve(std::size_t link,
                                          int initiator_node, SimTime wait_ns,
                                          SimTime duration_ns, SimTime now) {
  const double total =
      static_cast<double>(wait_ns) + static_cast<double>(duration_ns);
  const double sample =
      total > 0 ? static_cast<double>(wait_ns) / total : 0.0;
  const double a = cfg_.ewma_alpha;
  double& ll = link_load_[link];
  ll += a * (sample - ll);
  double& nl = node_load_[static_cast<std::size_t>(initiator_node)];
  nl += a * (sample - nl);
  ++samples_;
  if (nl >= cfg_.hot_threshold) ++hot_samples_;
  if (trace::enabled()) {
    if (now - last_sample_[link] >= cfg_.sample_period_ns) {
      last_sample_[link] = now;
      // size carries the smoothed load in parts-per-million, peer the link.
      trace::emit(trace::Ev::kCongestionSample, now, 0,
                  static_cast<int>(link),
                  static_cast<std::uint32_t>(ll * 1e6));
    } else {
      // Suppressed by the per-link sample period: record the drop so the
      // exported sample stream is never mistaken for the full load signal.
      trace::tracer()->note_rate_limited(trace::Ev::kCongestionSample);
    }
  }
}

void CongestionEstimator::collect_metrics(trace::MetricsRegistry& reg) const {
  reg.counter("flow.samples").set(samples_);
  reg.counter("flow.hot_samples").set(hot_samples_);
  double max_load = 0.0;
  std::uint64_t hot_links = 0;
  RunningStat& loads = reg.stat("flow.link_load");
  for (double l : link_load_) {
    if (l <= 0.0) continue;  // untouched links skew the mean
    loads.add(l);
    max_load = std::max(max_load, l);
    if (l >= cfg_.hot_threshold) ++hot_links;
  }
  reg.gauge("flow.max_link_load").set(max_load);
  reg.gauge("flow.hot_links").set(static_cast<double>(hot_links));
}

// ---------------------------------------------------------------------------
// InjectionGovernor
// ---------------------------------------------------------------------------

InjectionGovernor::InjectionGovernor(const FlowConfig& cfg,
                                     const CongestionEstimator* est,
                                     int num_pes)
    : cfg_(cfg), est_(est) {
  PeWindow w;
  w.cwnd = static_cast<double>(cfg_.window_start);
  w.floor = cfg_.window_min;
  w.ceiling = cfg_.window_max;
  pe_.assign(static_cast<std::size_t>(num_pes), w);
}

void InjectionGovernor::set_pe_qos(int pe, const QosParams& qos) {
  PeWindow& w = pe_[static_cast<std::size_t>(pe)];
  w.floor = qos.window_floor > 0 ? std::max(qos.window_floor, 1u)
                                 : cfg_.window_min;
  w.ceiling = qos.window_ceiling > 0 ? qos.window_ceiling : cfg_.window_max;
  w.ceiling = std::max(w.ceiling, w.floor);
  w.drain_quota = qos.drain_quota;
  w.cwnd = std::clamp(w.cwnd, static_cast<double>(w.floor),
                      static_cast<double>(w.ceiling));
  ++qos_pes_;
}

bool InjectionGovernor::try_acquire(int pe, int dest, std::uint32_t bytes,
                                    SimTime now) {
  PeWindow& w = pe_[static_cast<std::size_t>(pe)];
  if (cfg_.pace_rendezvous &&
      w.outstanding >= static_cast<std::uint32_t>(w.cwnd)) {
    ++stalls_;
    if (trace::enabled()) {
      trace::emit(trace::Ev::kInjectionStall, now, 0, dest, bytes);
    }
    return false;
  }
  ++w.outstanding;
  ++admits_;
  return true;
}

void InjectionGovernor::note_post(int pe) {
  ++pe_[static_cast<std::size_t>(pe)].outstanding;
  ++admits_;
}

void InjectionGovernor::on_complete(int pe, int node, SimTime /*now*/) {
  PeWindow& w = pe_[static_cast<std::size_t>(pe)];
  if (w.outstanding > 0) --w.outstanding;
  const double load = est_ ? est_->node_load(node) : 0.0;
  // AIMD inside the PE's effective bounds: [window_min, window_max] until
  // tenancy QoS narrows them via set_pe_qos.
  if (load >= cfg_.hot_threshold) {
    const double next = std::max(static_cast<double>(w.floor),
                                 w.cwnd * cfg_.aimd_decrease);
    if (next < w.cwnd) ++decreases_;
    w.cwnd = next;
  } else {
    // Classic AIMD: +increase per window's worth of completions.
    const double next =
        std::min(static_cast<double>(w.ceiling),
                 w.cwnd + cfg_.aimd_increase / std::max(1.0, w.cwnd));
    if (next > w.cwnd) ++increases_;
    w.cwnd = next;
  }
}

std::uint32_t InjectionGovernor::eager_cap(std::uint32_t base,
                                           int node) const {
  if (!cfg_.adapt_thresholds || !est_) return base;
  const double load = est_->node_load(node);
  if (load < cfg_.hot_threshold) return base;
  ++eager_shrinks_;
  std::uint32_t cap = base / 2;
  if (load >= 2 * cfg_.hot_threshold) cap = base / 4;
  return std::max<std::uint32_t>(cap, 128);
}

std::uint32_t InjectionGovernor::rdma_threshold(std::uint32_t base,
                                                int node) const {
  if (!cfg_.adapt_thresholds || !est_) return base;
  if (est_->node_load(node) < cfg_.hot_threshold) return base;
  ++rdma_shifts_;
  return std::max<std::uint32_t>(base / 2, 1024);
}

void InjectionGovernor::collect_metrics(trace::MetricsRegistry& reg) const {
  reg.counter("flow.admits").set(admits_);
  reg.counter("flow.injection_stalls").set(stalls_);
  reg.counter("flow.window_increases").set(increases_);
  reg.counter("flow.window_decreases").set(decreases_);
  reg.counter("flow.eager_shrinks").set(eager_shrinks_);
  reg.counter("flow.rdma_shifts").set(rdma_shifts_);
  // Published only once tenancy installed QoS bounds, so stock metric
  // dumps stay byte-identical to pre-tenancy runs.
  if (qos_pes_ > 0) reg.counter("flow.qos_pes").set(qos_pes_);
  double sum = 0.0;
  double min_w = pe_.empty() ? 0.0 : pe_.front().cwnd;
  for (const PeWindow& w : pe_) {
    sum += w.cwnd;
    min_w = std::min(min_w, w.cwnd);
  }
  reg.gauge("flow.window_avg")
      .set(pe_.empty() ? 0.0 : sum / static_cast<double>(pe_.size()));
  reg.gauge("flow.window_min_seen").set(min_w);
}

std::unique_ptr<InjectionGovernor> make_governor(const FlowConfig& cfg,
                                                 const CongestionEstimator* est,
                                                 int num_pes) {
  return std::make_unique<InjectionGovernor>(cfg, est, num_pes);
}

}  // namespace ugnirt::flowcontrol
