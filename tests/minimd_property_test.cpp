// Parameterized physics and runtime properties of minimd.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "apps/minimd/minimd.hpp"

namespace ugnirt::apps::minimd {
namespace {

using converse::LayerKind;
using converse::MachineOptions;

// ---- conservation holds across decompositions and layers ----

using MdParam = std::tuple<int, int, LayerKind>;  // grid, pes, layer

class MdGrid : public ::testing::TestWithParam<MdParam> {};

TEST_P(MdGrid, EnergyAndMomentumConserved) {
  auto [grid, pes, layer] = GetParam();
  MdConfig cfg;
  cfg.patches_x = cfg.patches_y = cfg.patches_z = grid;
  cfg.steps = 20;
  cfg.atoms_per_patch = 6;
  MachineOptions o;
  o.pes = pes;
  o.layer = layer;
  MdResult r = run_minimd(o, cfg);
  EXPECT_LT(r.max_energy_drift, 0.05);
  EXPECT_LT(std::abs(r.total_momentum.x) + std::abs(r.total_momentum.y) +
                std::abs(r.total_momentum.z),
            1e-8);
}

std::string md_name(const ::testing::TestParamInfo<MdParam>& info) {
  auto [grid, pes, layer] = info.param;
  return "g" + std::to_string(grid) + "_p" + std::to_string(pes) +
         (layer == LayerKind::kUgni ? "_uGNI" : "_MPI");
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MdGrid,
    ::testing::Combine(::testing::Values(2, 3),
                       ::testing::Values(1, 4, 8),
                       ::testing::Values(LayerKind::kUgni, LayerKind::kMpi)),
    md_name);

// ---- physics independent of the machine layer, including SMP ----

TEST(MiniMdProperty, IdenticalTrajectoriesOnAllThreeLayers) {
  MdConfig cfg;
  cfg.steps = 15;
  cfg.atoms_per_patch = 6;
  auto run = [&](bool smp, LayerKind layer) {
    MachineOptions o;
    o.pes = 9;
    o.layer = layer;
    o.smp_mode = smp;
    o.pes_per_node = 3;
    return run_minimd(o, cfg);
  };
  MdResult a = run(false, LayerKind::kUgni);
  MdResult b = run(false, LayerKind::kMpi);
  MdResult c = run(true, LayerKind::kUgni);
  ASSERT_EQ(a.energy.size(), b.energy.size());
  ASSERT_EQ(a.energy.size(), c.energy.size());
  for (std::size_t i = 0; i < a.energy.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.energy[i], b.energy[i]);
    EXPECT_DOUBLE_EQ(a.energy[i], c.energy[i]);
  }
}

TEST(MiniMdProperty, PairCountInvariantUnderParallelism) {
  MdConfig cfg;
  cfg.steps = 8;
  cfg.atoms_per_patch = 8;
  auto pairs = [&](int pes) {
    MachineOptions o;
    o.pes = pes;
    return run_minimd(o, cfg).pair_interactions;
  };
  std::uint64_t p1 = pairs(1);
  EXPECT_EQ(p1, pairs(4));
  EXPECT_EQ(p1, pairs(27));
}

TEST(MiniMdProperty, HotterGasDoesMoreMixing) {
  auto migrations = [&](double temp) {
    MdConfig cfg;
    cfg.steps = 250;
    cfg.atoms_per_patch = 8;
    cfg.initial_temp = temp;
    MachineOptions o;
    o.pes = 4;
    return run_minimd(o, cfg).migrations;
  };
  EXPECT_GE(migrations(3.0), migrations(0.2));
}

TEST(MiniMdProperty, StepTimeScalesWithWorkModel) {
  // Doubling the modeled per-pair cost must increase virtual step time
  // (compute-bound regime) but leave the physics identical.
  MdConfig cheap;
  cheap.steps = 6;
  cheap.atoms_per_patch = 10;
  cheap.ns_per_pair = 20;
  MdConfig costly = cheap;
  costly.ns_per_pair = 200;
  MachineOptions o;
  o.pes = 3;
  MdResult a = run_minimd(o, cheap);
  MdResult b = run_minimd(o, costly);
  EXPECT_GT(b.per_step, 2 * a.per_step);
  ASSERT_EQ(a.energy.size(), b.energy.size());
  for (std::size_t i = 0; i < a.energy.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.energy[i], b.energy[i]);
  }
}

}  // namespace
}  // namespace ugnirt::apps::minimd
