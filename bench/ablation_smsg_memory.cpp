// Ablation: the SMSG memory-scalability trade-off the paper discusses in
// §II-B — per-pair mailbox memory grows linearly with connected peers
// (which is why Cray shrinks the per-message cap as jobs grow, §III-C),
// versus MSGQ whose memory grows only with node count.
#include "bench_util.hpp"
#include "gemini/machine_config.hpp"
#include "lrts/runtime.hpp"
#include "lrts/ugni_layer.hpp"

using namespace ugnirt;

namespace {

/// Build a job of `pes` PEs, have PE 0 exchange one message with `peers`
/// distinct PEs (establishing SMSG channels lazily), and report the
/// mailbox memory the whole job committed.
double measured_mailbox_kb(int pes, int peers) {
  converse::MachineOptions o;
  o.pes = pes;
  o.use_pxshm = false;  // force every pair onto SMSG channels
  o.pes_per_node = 1;
  auto m = lrts::make_machine(converse::LayerKind::kUgni, o);
  int h = m->register_handler([&](void* msg) { converse::CmiFree(msg); });
  m->start(0, [&, h] {
    for (int p = 1; p <= peers; ++p) {
      void* msg = converse::CmiAlloc(converse::kCmiHeaderBytes + 64);
      converse::CmiSetHandler(msg, h);
      converse::CmiSyncSendAndFree(p, converse::kCmiHeaderBytes + 64, msg);
    }
  });
  m->run();
  auto* layer = dynamic_cast<lrts::UgniLayer*>(&m->layer());
  return static_cast<double>(layer->total_mailbox_bytes()) / 1024.0;
}

}  // namespace

int main() {
  gemini::MachineConfig mc;

  // Part 1: per-message SMSG cap shrinking with job size (paper §III-C).
  benchtool::Table cap("ablation_smsg_cap", "job_pes");
  cap.add_column("smsg_max_bytes");
  for (int pes : {24, 512, 1024, 2048, 4096, 15360, 131072}) {
    cap.add_row(std::to_string(pes),
                {static_cast<double>(mc.smsg_max_for_job(pes))});
  }
  cap.print();

  // Part 2: measured mailbox memory as PE 0's peer set grows.
  benchtool::Table mem("ablation_smsg_memory", "peers");
  mem.add_column("measured_smsg_KB");
  mem.add_column("msgq_model_KB");
  for (int peers : {4, 16, 64, 256, 1023}) {
    double smsg_kb = measured_mailbox_kb(1024, peers);
    // MSGQ-style alternative: one shared queue per connected *node* pair.
    const double per_pair_kb =
        mc.smsg_mailbox_credits * (mc.smsg_max_for_job(1024) + 16.0) / 1024.0;
    double msgq_kb =
        per_pair_kb * 2.0 * (peers / mc.cores_per_node + 1);
    mem.add_row(std::to_string(peers), {smsg_kb, msgq_kb});
  }
  mem.print();
  std::printf("Takeaway: SMSG memory grows linearly with connected peers;\n"
              "an MSGQ-style per-node scheme stays near-flat — the §II-B\n"
              "trade of memory for small-message latency.\n");
  return 0;
}
