file(REMOVE_RECURSE
  "CMakeFiles/fig10_kneighbor.dir/fig10_kneighbor.cpp.o"
  "CMakeFiles/fig10_kneighbor.dir/fig10_kneighbor.cpp.o.d"
  "fig10_kneighbor"
  "fig10_kneighbor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_kneighbor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
