#include <gtest/gtest.h>

#include "apps/nqueens/parallel.hpp"
#include "apps/nqueens/solver.hpp"
#include "apps/nqueens/subtree_model.hpp"

namespace ugnirt::apps::nqueens {
namespace {

using converse::LayerKind;
using converse::MachineOptions;

MachineOptions opts(int pes, LayerKind layer = LayerKind::kUgni) {
  MachineOptions o;
  o.pes = pes;
  o.layer = layer;
  return o;
}

// ---------------------------------------------------------------- solver ----

TEST(Solver, MatchesKnownCountsSmall) {
  for (int n = 1; n <= 11; ++n) {
    EXPECT_EQ(solve_all(n).solutions, known_solutions(n)) << "n=" << n;
  }
}

TEST(Solver, MatchesKnownCountsMedium) {
  EXPECT_EQ(solve_all(12).solutions, 14200u);
  EXPECT_EQ(solve_all(13).solutions, 73712u);
}

TEST(Solver, SubtreeDecompositionIsExact) {
  // Sum over all depth-2 prefixes must equal the full count.
  const int n = 10;
  const std::uint32_t all = (1u << n) - 1;
  std::uint64_t total = 0;
  for (int c0 = 0; c0 < n; ++c0) {
    std::uint32_t b0 = 1u << c0;
    std::uint32_t cols = b0, dl = (b0 << 1) & all, dr = b0 >> 1;
    for (int c1 = 0; c1 < n; ++c1) {
      std::uint32_t b1 = 1u << c1;
      if (b1 & (cols | dl | dr)) continue;
      total += solve(n, 2, cols | b1, ((dl | b1) << 1) & all,
                     (dr | b1) >> 1).solutions;
    }
  }
  EXPECT_EQ(total, known_solutions(n));
}

TEST(Solver, NodesGrowWithBoardSize) {
  EXPECT_GT(solve_all(10).nodes, solve_all(8).nodes);
  EXPECT_GT(solve_all(12).nodes, 10 * solve_all(10).nodes / 2);
}

// ------------------------------------------------------------ cost model ----

TEST(SampledModel, ExactForSampledPrefixesAndPlausibleTotals) {
  // Sample everything: estimates must be exact.
  auto full = SampledModel::build(10, 3, 1 << 20);
  EXPECT_EQ(full->est_total_solutions(), known_solutions(10));
  auto exact = solve_all(10);
  EXPECT_EQ(full->est_total_nodes() + /* interior nodes not in subtrees */ 0,
            full->est_total_nodes());
  EXPECT_LE(full->est_total_nodes(), exact.nodes);

  // Partial sample: totals within a loose factor of truth.
  auto part = SampledModel::build(12, 4, 300);
  double ratio = static_cast<double>(part->est_total_solutions()) /
                 static_cast<double>(known_solutions(12));
  EXPECT_GT(ratio, 0.5);
  EXPECT_LT(ratio, 2.0);
}

TEST(SampledModel, DeterministicDraws) {
  auto m1 = SampledModel::build(11, 3, 50);
  auto m2 = SampledModel::build(11, 3, 50);
  // Same prefix -> same draw across independently built models.
  auto r1 = m1->subtree(11, 3, 0x7, (0x7 << 1) & 0x7ff, 0x7 >> 1);
  auto r2 = m2->subtree(11, 3, 0x7, (0x7 << 1) & 0x7ff, 0x7 >> 1);
  EXPECT_EQ(r1.nodes, r2.nodes);
  EXPECT_EQ(r1.solutions, r2.solutions);
}

// --------------------------------------------------------------- parallel ----

class NQueensBothLayers : public ::testing::TestWithParam<LayerKind> {};

TEST_P(NQueensBothLayers, FindsAllSolutionsExactMode) {
  for (int pes : {1, 7, 32}) {
    NQueensConfig cfg;
    cfg.n = 10;
    cfg.threshold = 3;
    NQueensResult r = run_nqueens(opts(pes, GetParam()), cfg);
    EXPECT_EQ(r.solutions, known_solutions(10)) << "pes=" << pes;
    EXPECT_GT(r.tasks, 100u);
    EXPECT_GT(r.elapsed, 0);
  }
}

TEST_P(NQueensBothLayers, ThresholdControlsTaskCount) {
  NQueensConfig shallow;
  shallow.n = 10;
  shallow.threshold = 2;
  NQueensConfig deep = shallow;
  deep.threshold = 4;
  auto layer = GetParam();
  NQueensResult rs = run_nqueens(opts(8, layer), shallow);
  NQueensResult rd = run_nqueens(opts(8, layer), deep);
  EXPECT_GT(rd.tasks, 5 * rs.tasks);
  EXPECT_EQ(rs.solutions, rd.solutions);
}

INSTANTIATE_TEST_SUITE_P(Layers, NQueensBothLayers,
                         ::testing::Values(LayerKind::kUgni, LayerKind::kMpi),
                         [](const auto& info) {
                           return info.param == LayerKind::kUgni ? "uGNI"
                                                                 : "MPI";
                         });

TEST(NQueensParallel, SpeedupGrowsWithPes) {
  NQueensConfig cfg;
  cfg.n = 12;
  cfg.threshold = 4;
  NQueensResult r4 = run_nqueens(opts(4), cfg);
  NQueensResult r32 = run_nqueens(opts(32), cfg);
  EXPECT_EQ(r4.solutions, known_solutions(12));
  EXPECT_EQ(r32.solutions, known_solutions(12));
  EXPECT_GT(r32.speedup, 2.0 * r4.speedup);
  EXPECT_LE(r32.speedup, 32.01);
}

TEST(NQueensParallel, UgniFasterThanMpiAtScale) {
  // The paper's headline N-Queens result: many tiny messages favor the
  // uGNI layer (Fig 11 / Table I).
  NQueensConfig cfg;
  cfg.n = 12;
  cfg.threshold = 4;
  NQueensResult ug = run_nqueens(opts(64, LayerKind::kUgni), cfg);
  NQueensResult mp = run_nqueens(opts(64, LayerKind::kMpi), cfg);
  EXPECT_EQ(ug.solutions, mp.solutions);
  EXPECT_LT(ug.elapsed, mp.elapsed);
}

TEST(NQueensParallel, SampledModelRunsAndEstimates) {
  auto model = SampledModel::build(13, 4, 200);
  NQueensConfig cfg;
  cfg.n = 13;
  cfg.threshold = 4;
  cfg.model = model.get();
  NQueensResult r = run_nqueens(opts(16), cfg);
  double ratio = static_cast<double>(r.solutions) /
                 static_cast<double>(known_solutions(13));
  EXPECT_GT(ratio, 0.5);
  EXPECT_LT(ratio, 2.0);
  EXPECT_GT(r.tasks, 500u);
}

TEST(NQueensParallel, DeterministicAcrossRuns) {
  NQueensConfig cfg;
  cfg.n = 9;
  cfg.threshold = 3;
  NQueensResult a = run_nqueens(opts(8), cfg);
  NQueensResult b = run_nqueens(opts(8), cfg);
  EXPECT_EQ(a.elapsed, b.elapsed);
  EXPECT_EQ(a.tasks, b.tasks);
  EXPECT_EQ(a.solutions, b.solutions);
}

TEST(NQueensParallel, TracerProducesUtilizationProfile) {
  trace::Tracer tracer(50'000);  // 50us bins
  NQueensConfig cfg;
  cfg.n = 11;
  cfg.threshold = 3;
  NQueensResult r = run_nqueens(opts(8), cfg, &tracer);
  EXPECT_EQ(r.solutions, known_solutions(11));
  EXPECT_GT(tracer.bins(), 0u);
  // Utilization percentages are sane and the run did useful work.
  EXPECT_GT(tracer.total_app_pct(), 10.0);
  EXPECT_LE(tracer.total_app_pct() + tracer.total_overhead_pct() +
                tracer.total_idle_pct(),
            100.5);
}

}  // namespace
}  // namespace ugnirt::apps::nqueens
