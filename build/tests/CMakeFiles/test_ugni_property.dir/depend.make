# Empty dependencies file for test_ugni_property.
# This may be replaced when dependencies are built.
