// Structured protocol-event tracing (the "timeline" half of
// Projections-full).
//
// Every protocol-path action in the runtime — SMSG send/recv, rendezvous
// INIT/GET/ACK, FMA/BTE post and completion, memory registration, mempool
// hit/miss/expand, persistent PUT, pxshm enqueue/dequeue — can record a
// typed event with its virtual timestamp into a per-PE bounded ring
// buffer.  Rings overwrite their oldest entry when full (drops counted),
// so tracing a long run costs bounded memory.
//
// Tracing is off by default and *zero-cost* when off: emission sites are
// guarded by `trace::enabled()`, a single inlined pointer test against the
// installed global tracer.  Enable via `UGNIRT_TRACE=1` (see session.hpp)
// or install an EventTracer programmatically with `set_tracer()`.
//
// Exports: Chrome `trace_event` JSON (open in chrome://tracing or
// https://ui.perfetto.dev) and a flat CSV.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "util/units.hpp"

namespace ugnirt::trace {

enum class Ev : std::uint8_t {
  kSmsgSend = 0,    // mailbox write issued (wire-level)
  kSmsgRecv,        // message pulled out of a mailbox
  kMsgqSend,        // shared-MSGQ send (flat-memory small-message path)
  kRdvInit,         // rendezvous INIT_TAG shipped (Fig 5 step 1)
  kRdvGet,          // receiver posted the FMA/BTE GET (Fig 5 step 2)
  kRdvAck,          // ACK_TAG sent back, sender may free (Fig 5 step 3)
  kFmaPost,         // CPU-driven one-sided transaction posted
  kBtePost,         // DMA-offloaded transaction posted
  kPostDone,        // local completion claimed via GNI_GetCompleted
  kMemReg,          // GNI_MemRegister
  kMemDereg,        // GNI_MemDeregister
  kPoolHit,         // mempool alloc served from a free list
  kPoolMiss,        // mempool alloc had to carve from a slab
  kPoolExpand,      // mempool registered a new slab
  kPersistPut,      // persistent-channel PUT posted (Fig 7a)
  kPxshmEnq,        // intra-node shm enqueue at the sender
  kPxshmDeq,        // intra-node shm dequeue at the receiver
  kCreditStall,     // SMSG send deferred on mailbox-credit exhaustion
  kMsgExec,         // scheduler executed a message handler
  kFaultInject,     // the fault injector forced a transient failure
  kRetryBackoff,    // a layer backed off (virtual time) before retrying
  kFallback,        // degraded path taken (heap send, rendezvous demotion)
  kCqRecover,       // CQ overrun recovered via GNI_CqErrorRecover
  kAggFlush,        // aggregation batch shipped (size = batch bytes,
                    // peer = destination PE)
  kCongestionSample,  // EWMA link-load sample (peer = link index,
                      // size = smoothed load in parts-per-million)
  kInjectionStall,  // governor deferred a post: AIMD window full
                    // (peer = destination, size = payload bytes)
};
constexpr int kEvCount = static_cast<int>(Ev::kInjectionStall) + 1;

const char* event_name(Ev type);

struct Event {
  SimTime t = 0;        // virtual start time (ns)
  SimTime dur = 0;      // duration (0 for instants)
  std::int32_t peer = -1;  // remote PE/node, -1 when not applicable
  std::uint32_t size = 0;  // payload bytes, 0 when not applicable
  Ev type = Ev::kSmsgSend;
};

/// Fixed-capacity ring of events.  When full, the oldest entry is
/// overwritten and counted as dropped.
class EventRing {
 public:
  explicit EventRing(std::size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  void push(const Event& ev);

  std::size_t size() const { return buf_.size(); }
  std::size_t capacity() const { return capacity_; }
  std::uint64_t dropped() const { return dropped_; }

  /// The i-th retained event in chronological push order (0 = oldest).
  const Event& at(std::size_t i) const {
    return buf_[(head_ + i) % buf_.size()];
  }

 private:
  std::size_t capacity_;
  std::size_t head_ = 0;  // index of the oldest entry once wrapped
  std::uint64_t dropped_ = 0;
  std::vector<Event> buf_;
};

/// Per-PE event rings plus exporters.  One tracer spans all Machines alive
/// while it is installed; negative "pe" ids are comm-thread actors.
class EventTracer {
 public:
  explicit EventTracer(std::size_t ring_capacity = 1u << 16)
      : ring_capacity_(ring_capacity) {}

  void record(int pe, Ev type, SimTime t, SimTime dur = 0, int peer = -1,
              std::uint32_t size = 0);

  /// An emission site suppressed an event before it reached the ring
  /// (e.g. kCongestionSample under its sample-period rate limit).  Counted
  /// per kind so capped telemetry is never mistaken for complete telemetry.
  void note_rate_limited(Ev type) {
    ++dropped_by_type_[static_cast<int>(type)];
  }

  std::size_t pe_count() const { return rings_.size(); }
  std::uint64_t total_events() const { return total_events_; }
  std::uint64_t total_dropped() const;
  std::uint64_t count_of(Ev type) const {
    return type_counts_[static_cast<int>(type)];
  }
  /// Events of this kind lost to ring eviction or rate limiting.
  std::uint64_t dropped_of(Ev type) const {
    return dropped_by_type_[static_cast<int>(type)];
  }
  const EventRing* ring(int pe) const;

  /// Install per-PE job attribution (tenancy: JobManager::place installs
  /// its job map here).  Exports then carry each row's owning job —
  /// write_csv gains a trailing `job` column and the Chrome JSON args a
  /// "job" field.  Recording stays untouched (attribution is resolved at
  /// export, costing the hot path nothing); with no map installed the
  /// output formats are byte-identical to stock.
  void set_job_of_pe(std::vector<std::int16_t> jobs) {
    job_of_pe_ = std::move(jobs);
  }
  /// Owning job of a PE per the installed map (-1 when unmapped).
  int job_of(int pe) const {
    return pe >= 0 && static_cast<std::size_t>(pe) < job_of_pe_.size()
               ? job_of_pe_[static_cast<std::size_t>(pe)]
               : -1;
  }

  /// Chrome trace_event JSON ("X" complete events, ts/dur in microseconds;
  /// loads in chrome://tracing and Perfetto).
  void write_chrome_json(std::ostream& out) const;

  /// Flat rows: `pe,t_ns,dur_ns,event,peer,size` (plus a trailing `job`
  /// column once set_job_of_pe installed an attribution map).
  void write_csv(std::ostream& out) const;

  void clear();

 private:
  std::size_t ring_capacity_;
  std::map<int, EventRing> rings_;  // keyed by pe id (sorted for export)
  std::uint64_t total_events_ = 0;
  std::uint64_t type_counts_[kEvCount] = {};
  std::uint64_t dropped_by_type_[kEvCount] = {};  // evicted + rate-limited
  std::vector<std::int16_t> job_of_pe_;  // tenancy attribution (may be empty)
};

// ---- global installation ----------------------------------------------

namespace detail {
extern EventTracer* g_tracer;
}

/// True when an EventTracer is installed; the one test hot paths make.
inline bool enabled() { return detail::g_tracer != nullptr; }

inline EventTracer* tracer() { return detail::g_tracer; }

/// Install (or with nullptr, remove) the process-wide tracer.  Not owned.
void set_tracer(EventTracer* t);

/// Record on behalf of the currently-executing simulated PE (via
/// sim::current()); no-op outside a PE context or when tracing is off.
/// Call only after checking enabled() so the disabled path stays free.
void emit(Ev type, SimTime t, SimTime dur = 0, int peer = -1,
          std::uint32_t size = 0);

}  // namespace ugnirt::trace
