file(REMOVE_RECURSE
  "libugnirt_ugni.a"
)
