// MPI subset modeling Cray MPI on Gemini (the paper's baseline substrate).
//
// Cray's MPI is itself implemented on uGNI [Pritchard et al., "A uGNI-based
// MPICH2 Nemesis network module for the Cray XE"], and this emulation takes
// the same structure over our simulated uGNI:
//
//   * E0 eager  (size <= SMSG cap): payload inline in an SMSG message; the
//     library copies it out of the mailbox into an unexpected-message slot,
//     and MPI_Recv copies again into the user buffer.
//   * E1 eager  (cap < size <= eager threshold, 8 KiB): the sender copies
//     the payload into a pre-registered bounce buffer and sends a control
//     SMSG; the receiver GETs into its own pre-registered landing buffer as
//     soon as the control arrives, and MPI_Recv copies out.  Both copies
//     are the "extra memory copy between CHARM++ and MPI memory space" the
//     paper blames for MPI-based CHARM++'s mid-size latency.
//   * R0 rendezvous (size > 8 KiB): RTS carries the registered user send
//     buffer; MPI_Recv registers the user receive buffer (through a
//     uDREG-style registration cache), posts a BTE GET, and *blocks* until
//     it completes — the behavior that serializes the MPI-based CHARM++
//     progress engine in the paper's kNeighbor experiment (§V-B).
//
// Scope: exactly what the paper's benchmarks need.  MPI_Recv requires the
// message envelope to have already arrived (callers probe first); this
// matches every use in the benchmarks and the MPI-based machine layer.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <list>
#include <memory>
#include <unordered_map>
#include <vector>

#include "fault/retry.hpp"
#include "gemini/network.hpp"
#include "sim/context.hpp"
#include "ugni/ugni.hpp"

namespace ugnirt::mpilite {

constexpr int MPI_ANY_SOURCE = -1;
constexpr int MPI_ANY_TAG = -1;

struct Status {
  int source = -1;
  int tag = -1;
  std::uint32_t count = 0;  // bytes
};

/// Nonblocking-send request.  Owned by the caller; complete() flips when
/// the library no longer needs the user buffer.
struct Request {
  bool done = false;
  std::uint64_t id = 0;
};

/// uDREG-style registration cache statistics (paper §IV-B discusses why
/// CHARM++ can beat this approach).
struct UdregStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
};

struct MpiStats {
  std::uint64_t sends_e0 = 0;
  std::uint64_t sends_e1 = 0;
  std::uint64_t sends_rndv = 0;
  std::uint64_t unexpected = 0;
  // Fault-recovery accounting (see fault::RetryPolicy).
  std::uint64_t smsg_retries = 0;
  std::uint64_t reg_retries = 0;
  std::uint64_t cq_overruns_recovered = 0;
  std::uint64_t escalations = 0;
};

class MpiComm {
 public:
  /// `ranks` MPI processes on the given network; rank r lives on
  /// node_of(r).  All calls must run inside a sim context.
  MpiComm(gemini::Network& network, int ranks,
          std::function<int(int)> node_of);
  ~MpiComm();
  MpiComm(const MpiComm&) = delete;
  MpiComm& operator=(const MpiComm&) = delete;

  int ranks() const { return ranks_; }

  /// Initialize rank-local resources (NIC, CQs, eager pools); charged to
  /// the calling context.  Must be called once per rank before traffic.
  void init_rank(int rank);

  /// Invoked (at arrival virtual time) when rank gets new traffic; lets a
  /// polling driver sleep instead of spinning.
  void set_wake(int rank, std::function<void(SimTime)> fn);

  // ---- point to point ----

  /// Nonblocking standard-mode send.  Buffered (E0/E1) sends complete
  /// immediately; rendezvous completes when the receiver's GET finishes.
  void isend(int rank, int dest, int tag, const void* buf,
             std::uint32_t bytes, Request* req);

  /// Blocking send: isend + wait (buffered modes return immediately).
  void send(int rank, int dest, int tag, const void* buf,
            std::uint32_t bytes);

  /// Has `req` completed?  (MPI_Test; also drives progress.)
  bool test(int rank, Request* req);

  /// Is there a matching message?  (MPI_Iprobe; drives progress.)
  bool iprobe(int rank, int source, int tag, Status* status);

  /// Blocking probe for ping-pong style drivers: if a matching message is
  /// already in flight toward this rank, spin (advance the caller's
  /// virtual clock) until its envelope is visible and return true; return
  /// false when nothing is in flight at all.
  bool wait_probe(int rank, int source, int tag, Status* status);

  /// Blocking receive of an already-probed message.  Asserts that a
  /// matching envelope has arrived (see header comment).  For rendezvous
  /// messages this blocks the caller for the whole transfer.
  void recv(int rank, int source, int tag, void* buf, std::uint32_t max_bytes,
            Status* status);

  /// Drain completion queues / protocol work for this rank.
  void advance(int rank);

  /// Drop registration-cache entries overlapping [addr, addr+len): the
  /// uDREG correctness hook that fires when user memory is freed (Wyckoff &
  /// Wu, cited as [21] by the paper).  Applications that free and
  /// reallocate buffers — like the MPI-based CHARM++ — pay a fresh
  /// registration on every large transfer because of this.
  void udreg_invalidate(int rank, const void* addr, std::uint32_t len);

  /// True when rank has arrived messages waiting to be probed/received.
  bool has_pending(int rank) const;

  /// True when rank has credit-stalled outgoing control messages.
  bool has_send_backlog(int rank) const;

  const MpiStats& stats() const { return stats_; }
  const UdregStats& udreg_stats() const { return udreg_; }

  /// Policy governing retry/backoff on transient uGNI failures (defaults
  /// are sane; layers pass the machine-wide policy through).
  void set_retry_policy(const fault::RetryPolicy& p) { retry_ = p; }

 private:
  struct RankState;

  struct Envelope {
    std::int32_t src = -1;
    std::int32_t tag = 0;
    std::uint32_t size = 0;
    std::uint64_t req_id = 0;
  };

  /// An arrived-but-unreceived message.
  struct InMsg {
    Envelope env;
    enum class Proto : std::uint8_t {
      kE0,    // eager inline
      kE1,    // eager via bounce buffer GET
      kRndv,  // rendezvous (receive-side BTE GET)
      kShm,   // intra-node double copy via shared memory
      kShmX,  // intra-node single copy via XPMEM mapping
    } proto = Proto::kE0;
    std::vector<std::uint8_t> inline_data;  // E0: payload copy
    // E1: local landing slot the GET targeted + completion time.
    std::vector<std::uint8_t> landing;
    SimTime data_ready = 0;
    // Rendezvous / XPMEM: remote buffer info for the receive-side copy.
    std::uint64_t raddr = 0;
    ugni::gni_mem_handle_t rhndl{};
  };

  RankState& st(int rank) { return *ranks_state_[static_cast<size_t>(rank)]; }

  /// Registration cache lookup; charges hit or miss cost and returns the
  /// handle for [addr, addr+len).
  ugni::gni_mem_handle_t udreg_lookup(sim::Context& ctx, RankState& s,
                                      const void* addr, std::uint32_t len);

  void ensure_bounce_pool(RankState& s);
  /// GNI_MemRegister with backoff on transient GNI_RC_ERROR_RESOURCE.
  void register_with_retry(sim::Context& ctx, RankState& s,
                           std::uint64_t addr, std::uint64_t len,
                           ugni::gni_mem_handle_t* hndl_out);
  /// Endpoint to `dest` via ugni::Nic::get_or_connect (lazy first-touch
  /// channel setup; the uGNI API charges the initiator).
  ugni::gni_ep_handle_t connect(RankState& src, int dest);
  void smsg_send_ctrl(sim::Context& ctx, RankState& s, int dest,
                      std::uint8_t tag, const void* bytes, std::uint32_t len);
  void flush_backlog(sim::Context& ctx, RankState& s);
  void drain(sim::Context& ctx, RankState& s);
  void handle_smsg(sim::Context& ctx, RankState& s, int src_inst);
  InMsg* find_match(RankState& s, int source, int tag, SimTime now);

  gemini::Network* network_;
  int ranks_;
  std::function<int(int)> node_of_;
  std::unique_ptr<ugni::Domain> domain_;
  std::vector<std::unique_ptr<RankState>> ranks_state_;
  MpiStats stats_;
  UdregStats udreg_;
  fault::RetryPolicy retry_{};
  std::uint64_t next_req_id_ = 1;
};

}  // namespace ugnirt::mpilite
