file(REMOVE_RECURSE
  "CMakeFiles/test_gemini.dir/gemini_test.cpp.o"
  "CMakeFiles/test_gemini.dir/gemini_test.cpp.o.d"
  "test_gemini"
  "test_gemini.pdb"
  "test_gemini[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gemini.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
