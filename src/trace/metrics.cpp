#include "trace/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <vector>

namespace ugnirt::trace {

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_num(double v) {
  if (!std::isfinite(v)) return "0";
  std::ostringstream os;
  os << std::setprecision(15) << v;
  return os.str();
}

}  // namespace

int Histogram::bucket_index(double v) {
  if (!(v >= 1.0)) return 0;  // [0,1), negatives, and NaN all land in 0
  int octave;
  double frac = std::frexp(v, &octave);  // v = frac * 2^octave, frac in [0.5,1)
  --octave;                              // now v = (2*frac) * 2^octave
  if (octave >= kOctaves) return kBucketCount - 1;
  int sub = static_cast<int>((2.0 * frac - 1.0) * kSubBuckets);
  if (sub >= kSubBuckets) sub = kSubBuckets - 1;
  return 1 + octave * kSubBuckets + sub;
}

double Histogram::bucket_lo(int idx) {
  if (idx <= 0) return 0.0;
  int octave = (idx - 1) / kSubBuckets;
  int sub = (idx - 1) % kSubBuckets;
  return std::ldexp(1.0 + static_cast<double>(sub) / kSubBuckets, octave);
}

double Histogram::bucket_hi(int idx) {
  if (idx <= 0) return 1.0;
  int octave = (idx - 1) / kSubBuckets;
  int sub = (idx - 1) % kSubBuckets;
  return std::ldexp(1.0 + static_cast<double>(sub + 1) / kSubBuckets, octave);
}

void Histogram::add(double v) {
  if (buckets_.empty()) buckets_.assign(kBucketCount, 0);
  if (std::isnan(v)) return;
  if (v < 0.0) v = 0.0;
  ++buckets_[static_cast<std::size_t>(bucket_index(v))];
  ++count_;
  sum_ += v;
  min_ = std::min(min_, v);
  max_ = std::max(max_, v);
}

void Histogram::merge(const Histogram& other) {
  if (other.count_ == 0) return;
  if (buckets_.empty()) buckets_.assign(kBucketCount, 0);
  for (std::size_t i = 0; i < other.buckets_.size(); ++i) {
    buckets_[i] += other.buckets_[i];
  }
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double Histogram::quantile(double p) const {
  if (count_ == 0) return 0.0;
  if (p <= 0.0) return min_;
  if (p >= 100.0) return max_;
  // Rank in [0, count-1]; find the bucket holding that rank and interpolate
  // within its bounds.
  const double rank = p / 100.0 * static_cast<double>(count_ - 1);
  std::uint64_t below = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    const std::uint64_t n = buckets_[i];
    if (n == 0) continue;
    if (rank < static_cast<double>(below + n)) {
      const double lo = bucket_lo(static_cast<int>(i));
      const double hi = bucket_hi(static_cast<int>(i));
      const double within =
          (rank - static_cast<double>(below)) / static_cast<double>(n);
      double v = lo + (hi - lo) * within;
      return std::clamp(v, min_, max_);
    }
    below += n;
  }
  return max_;
}

void Histogram::reset() {
  buckets_.clear();
  count_ = 0;
  sum_ = 0.0;
  min_ = std::numeric_limits<double>::infinity();
  max_ = -std::numeric_limits<double>::infinity();
}

std::size_t Histogram::nonzero_buckets() const {
  std::size_t n = 0;
  for (std::uint64_t b : buckets_) {
    if (b != 0) ++n;
  }
  return n;
}

const Counter* MetricsRegistry::find_counter(const std::string& name) const {
  auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : &it->second;
}

const Gauge* MetricsRegistry::find_gauge(const std::string& name) const {
  auto it = gauges_.find(name);
  return it == gauges_.end() ? nullptr : &it->second;
}

const Histogram* MetricsRegistry::find_histogram(
    const std::string& name) const {
  auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : &it->second;
}

void MetricsRegistry::merge_from(const MetricsRegistry& other) {
  for (const auto& [name, c] : other.counters_) {
    counters_[name].inc(c.value());
  }
  for (const auto& [name, g] : other.gauges_) {
    Gauge& mine = gauges_[name];
    // Keep the larger of the two high-water marks; the merged "current"
    // value is the max as well (per-machine gauges are peak-style).
    mine.set(std::max(mine.max(), g.max()));
  }
  for (const auto& [name, s] : other.stats_) {
    stats_[name].merge(s);
  }
  for (const auto& [name, h] : other.histograms_) {
    histograms_[name].merge(h);
  }
}

void MetricsRegistry::dump_table(std::ostream& out) const {
  out << "== metrics ==\n";
  for (const auto& [name, c] : counters_) {
    out << "  " << std::left << std::setw(36) << name << std::right
        << std::setw(16) << c.value() << "\n";
  }
  for (const auto& [name, g] : gauges_) {
    out << "  " << std::left << std::setw(36) << name << std::right
        << std::setw(16) << g.value() << "  (max " << g.max() << ")\n";
  }
  for (const auto& [name, s] : stats_) {
    out << "  " << std::left << std::setw(36) << name << std::right
        << std::setw(16) << s.mean() << "  (n=" << s.count()
        << " min=" << s.min() << " max=" << s.max() << ")\n";
  }
  for (const auto& [name, h] : histograms_) {
    out << "  " << std::left << std::setw(36) << name << std::right
        << std::setw(16) << h.p50() << "  (n=" << h.count()
        << " p99=" << h.p99() << " max=" << h.max() << ")\n";
  }
  out << std::left;
}

void MetricsRegistry::write_csv(std::ostream& out) const {
  out << "metric,kind,count,sum,mean,min,max,p50,p90,p99\n";
  for (const auto& [name, c] : counters_) {
    out << name << ",counter," << c.value() << ',' << c.value() << ','
        << c.value() << ',' << c.value() << ',' << c.value() << ','
        << c.value() << ',' << c.value() << ',' << c.value() << '\n';
  }
  for (const auto& [name, g] : gauges_) {
    out << name << ",gauge,1," << g.value() << ',' << g.value() << ','
        << g.value() << ',' << g.max() << ',' << g.value() << ','
        << g.value() << ',' << g.value() << '\n';
  }
  for (const auto& [name, s] : stats_) {
    out << name << ",stat," << s.count() << ',' << s.sum() << ',' << s.mean()
        << ',' << s.min() << ',' << s.max() << ',' << s.mean() << ','
        << s.mean() << ',' << s.mean() << '\n';
  }
  for (const auto& [name, h] : histograms_) {
    out << name << ",histogram," << h.count() << ',' << h.sum() << ','
        << h.mean() << ',' << h.min() << ',' << h.max() << ',' << h.p50()
        << ',' << h.p90() << ',' << h.p99() << '\n';
  }
}

void MetricsRegistry::write_json(std::ostream& out) const {
  out << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    out << (first ? "" : ",") << "\n    \"" << json_escape(name)
        << "\": " << c.value();
    first = false;
  }
  out << (first ? "" : "\n  ") << "},\n  \"gauges\": {";
  first = true;
  for (const auto& [name, g] : gauges_) {
    out << (first ? "" : ",") << "\n    \"" << json_escape(name)
        << "\": {\"value\": " << json_num(g.value())
        << ", \"max\": " << json_num(g.max()) << "}";
    first = false;
  }
  out << (first ? "" : "\n  ") << "},\n  \"stats\": {";
  first = true;
  for (const auto& [name, s] : stats_) {
    out << (first ? "" : ",") << "\n    \"" << json_escape(name)
        << "\": {\"count\": " << s.count() << ", \"sum\": " << json_num(s.sum())
        << ", \"mean\": " << json_num(s.mean())
        << ", \"min\": " << json_num(s.min())
        << ", \"max\": " << json_num(s.max()) << "}";
    first = false;
  }
  out << (first ? "" : "\n  ") << "},\n  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms_) {
    out << (first ? "" : ",") << "\n    \"" << json_escape(name)
        << "\": {\"count\": " << h.count() << ", \"sum\": " << json_num(h.sum())
        << ", \"mean\": " << json_num(h.mean())
        << ", \"min\": " << json_num(h.min())
        << ", \"max\": " << json_num(h.max())
        << ", \"p50\": " << json_num(h.p50())
        << ", \"p90\": " << json_num(h.p90())
        << ", \"p99\": " << json_num(h.p99()) << "}";
    first = false;
  }
  out << (first ? "" : "\n  ") << "}\n}\n";
}

void MetricsRegistry::reset() {
  counters_.clear();
  gauges_.clear();
  stats_.clear();
  histograms_.clear();
}

}  // namespace ugnirt::trace
