# Empty dependencies file for ugnirt_lrts.
# This may be replaced when dependencies are built.
