file(REMOVE_RECURSE
  "libugnirt_gemini.a"
)
