// Congestion-control ablation: what link-load telemetry, AIMD injection
// pacing and congestion-aware adaptive routing buy under contention.
//
//   1. One-to-all burst, 16 KiB rendezvous payloads: PE 0 blasts every
//      remote PE; per-message delivery latency (p99) and total link
//      queueing, flow off vs on.
//   2. Hotspot: the same one-to-all burst while every other PE streams
//      background traffic at PE 0's +x neighbor, saturating the links
//      the stock x-first routes share — the congested regime the
//      subsystem targets.  This is the guard-railed leg: flow on must
//      beat flow off on BOTH p99 delivery latency and net.link_waits,
//      or the binary exits 1.
//
// With UGNIRT_CSV=1 the hotspot legs additionally dump per-link
// occupancy heatmaps (ablation_flowcontrol_links_{off,on}.csv) via
// Network::write_link_csv for EXPERIMENTS.md.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "converse/machine.hpp"
#include "lrts/runtime.hpp"
#include "trace/metrics.hpp"

using namespace ugnirt;

namespace {

constexpr int kPes = 16;
constexpr std::uint32_t kPayload = 16 * 1024;  // rendezvous-size
constexpr int kRounds = 8;                     // one-to-all bursts
constexpr int kBgMsgs = 8;                     // background msgs per sender

converse::MachineOptions leg_options(bool flow_on) {
  converse::MachineOptions o;
  o.layer = converse::LayerKind::kUgni;
  o.pes = kPes;
  o.pes_per_node = 1;  // every PE owns a NIC and its torus links
  o.flow.enable = flow_on;
  o.flow.adaptive_routing = flow_on;
  return o;
}

struct LegResult {
  double p99_us = 0;
  double mean_us = 0;
  std::uint64_t link_waits = 0;
  double link_wait_ms = 0;
  std::uint64_t stalls = 0;
  std::uint64_t reroutes = 0;
};

/// One-to-all burst from PE 0 (kRounds x 16 KiB to every remote PE),
/// optionally under background load hammering PE 0's +x neighbor.
/// Returns delivery-latency stats of the one-to-all messages plus the
/// network-wide queueing counters.
LegResult run_leg(bool flow_on, bool hotspot,
                  const char* link_csv_name = nullptr) {
  auto m =
      lrts::make_machine(converse::LayerKind::kUgni, leg_options(flow_on));
  // Log-bucketed histogram (trace::Histogram): constant memory for any
  // message count and the same p99 estimator the span layer reports, so
  // bench numbers and BENCH_*.json stay directly comparable.
  trace::Histogram lat_us;

  int h_measured = m->register_handler([&](void* msg) {
    SimTime sent;
    std::memcpy(&sent, converse::payload_of(msg), sizeof(sent));
    const SimTime now = static_cast<SimTime>(converse::CmiWallTimer() * 1e9);
    lat_us.add(static_cast<double>(now - sent) / 1000.0);
    converse::CmiFree(msg);
  });
  int h_bg = m->register_handler([](void* msg) { converse::CmiFree(msg); });

  const std::uint32_t total = kPayload + converse::kCmiHeaderBytes;
  m->start(0, [&m, h_measured, total] {
    for (int r = 0; r < kRounds; ++r) {
      for (int dest = 1; dest < kPes; ++dest) {
        void* msg = converse::CmiAlloc(total);
        const SimTime now =
            static_cast<SimTime>(converse::CmiWallTimer() * 1e9);
        std::memcpy(converse::payload_of(msg), &now, sizeof(now));
        converse::CmiSetHandler(msg, h_measured);
        converse::CmiSyncSendAndFree(dest, total, msg);
      }
    }
  });
  if (hotspot) {
    // The victim shares PE 0's first x-hop, so stock x-first routes from
    // PE 0 queue behind the background flood while other dimension
    // orders leave node 0 over idle links.
    const int victim = m->network().torus().neighbor(0, 0, true);
    const std::uint32_t bg_total = 8 * 1024 + converse::kCmiHeaderBytes;
    for (int pe = 1; pe < kPes; ++pe) {
      if (pe == victim) continue;
      m->start(pe, [victim, bg_total, h_bg] {
        for (int i = 0; i < kBgMsgs; ++i) {
          void* msg = converse::CmiAlloc(bg_total);
          converse::CmiSetHandler(msg, h_bg);
          converse::CmiSyncSendAndFree(victim, bg_total, msg);
        }
      });
    }
  }
  m->run();

  LegResult res;
  res.p99_us = lat_us.p99();
  res.mean_us = lat_us.count() ? lat_us.mean() : 0;
  const auto& net = m->network();
  for (std::size_t i = 0; i < net.torus().total_links(); ++i) {
    res.link_waits += net.link_schedule(i).waits();
    res.link_wait_ms +=
        static_cast<double>(net.link_schedule(i).wait_ns()) / 1e6;
  }
  res.reroutes = net.stats().adaptive_reroutes;
  m->collect_metrics();
  res.stalls = m->metrics().counter("flow.injection_stalls").value();
  if (link_csv_name && benchtool::csv_enabled()) {
    std::ofstream out(link_csv_name);
    net.write_link_csv(out);
  }
  return res;
}

void add_leg_rows(benchtool::Table& t, const char* label,
                  const LegResult& off, const LegResult& on) {
  t.add_row(std::string(label) + "_off",
            {off.p99_us, off.mean_us, static_cast<double>(off.link_waits),
             off.link_wait_ms, static_cast<double>(off.stalls),
             static_cast<double>(off.reroutes)});
  t.add_row(std::string(label) + "_on",
            {on.p99_us, on.mean_us, static_cast<double>(on.link_waits),
             on.link_wait_ms, static_cast<double>(on.stalls),
             static_cast<double>(on.reroutes)});
}

}  // namespace

int main() {
  benchtool::Table table("ablation_flowcontrol", "leg");
  table.add_column("p99_us");
  table.add_column("mean_us");
  table.add_column("link_waits");
  table.add_column("link_wait_ms");
  table.add_column("stalls");
  table.add_column("reroutes");

  // 1. Uncongested one-to-all: flow control should be near-free here.
  const LegResult o2a_off = run_leg(false, false);
  const LegResult o2a_on = run_leg(true, false);
  add_leg_rows(table, "onetoall", o2a_off, o2a_on);

  // 2. Hotspot: the guard-railed congested regime.
  const LegResult hot_off =
      run_leg(false, true, "ablation_flowcontrol_links_off.csv");
  const LegResult hot_on =
      run_leg(true, true, "ablation_flowcontrol_links_on.csv");
  add_leg_rows(table, "hotspot", hot_off, hot_on);
  table.print();

  std::printf(
      "Shape: with telemetry + pacing + adaptive routing on, hotspot\n"
      "one-to-all p99 drops (%.1f us -> %.1f us) and link queueing\n"
      "shrinks (%llu -> %llu waits); the uncongested leg is unaffected\n"
      "to first order.\n",
      hot_off.p99_us, hot_on.p99_us,
      static_cast<unsigned long long>(hot_off.link_waits),
      static_cast<unsigned long long>(hot_on.link_waits));

  bool ok = true;
  if (hot_on.p99_us >= hot_off.p99_us) {
    std::printf("FAIL: hotspot p99 did not improve with flow control\n");
    ok = false;
  }
  if (hot_on.link_waits >= hot_off.link_waits) {
    std::printf("FAIL: hotspot link_waits did not improve with flow control\n");
    ok = false;
  }
  if (hot_on.reroutes == 0) {
    std::printf("FAIL: adaptive routing never rerouted under hotspot\n");
    ok = false;
  }
  return ok ? 0 : 1;
}
