file(REMOVE_RECURSE
  "CMakeFiles/test_ugni_property.dir/ugni_property_test.cpp.o"
  "CMakeFiles/test_ugni_property.dir/ugni_property_test.cpp.o.d"
  "test_ugni_property"
  "test_ugni_property.pdb"
  "test_ugni_property[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ugni_property.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
