#!/usr/bin/env bash
# Lint: the deprecated MachineLayer send virtuals are GONE.  The
# `sync_send` / layer-level `send_persistent` shims were deleted from
# MachineLayer once every caller had moved to the unified
# Machine::submit()/send()/broadcast() path, so today the symbol
# `sync_send` must not exist anywhere in the tree — not as a
# declaration, not as a call, not behind a typedef.  The public
# Machine::send_persistent API remains; only layer-qualified calls
# (the old per-layer virtual) are forbidden.
#
# Usage: check_deprecated_sends.sh [repo-root]
# Exits non-zero and prints offending lines if the dead symbols resurface.
set -u

root="${1:-$(cd "$(dirname "$0")/.." && pwd)}"
cd "$root" || exit 2

status=0

# 1. `sync_send` is a dead symbol: zero occurrences allowed anywhere
#    (runtime core included).  Mentioning it in a comment would only
#    confuse readers about an API that no longer exists, so comments
#    are not exempt.
dead=$(grep -rEn '\bsync_send\b' \
    --include='*.cpp' --include='*.hpp' --include='*.h' \
    src bench examples tests 2>/dev/null)
if [ -n "$dead" ]; then
  echo "error: 'sync_send' was removed from MachineLayer; the symbol" >&2
  echo "must not reappear (use Machine::submit()/send() or Cmi*):" >&2
  echo "$dead" >&2
  status=1
fi

# 2. The layer-level send_persistent virtual is equally dead: no code may
#    invoke send_persistent through a MachineLayer (layer()-qualified).
#    Machine::send_persistent — the public API used by benches and tests —
#    is fine and not matched here.
layer_calls=$(grep -rEn 'layer\(\)(\.|->)send_persistent[[:space:]]*\(' \
    --include='*.cpp' --include='*.hpp' --include='*.h' \
    src bench examples tests 2>/dev/null)
if [ -n "$layer_calls" ]; then
  echo "error: layer-level send_persistent was removed; call" >&2
  echo "Machine::send_persistent (persistent channels) instead:" >&2
  echo "$layer_calls" >&2
  status=1
fi

# 3. Belt and braces: MachineLayer itself must not re-grow the virtual.
#    A declaration would slip past rule 2 (no call site) and rule 1 only
#    covers sync_send.
decl=$(grep -En 'virtual[^;]*send_persistent' src/converse/machine.hpp 2>/dev/null)
if [ -n "$decl" ]; then
  echo "error: MachineLayer declares a send_persistent virtual again;" >&2
  echo "the per-layer send surface is submit() only:" >&2
  echo "$decl" >&2
  status=1
fi

# 4. `ensure_channel` is a dead symbol: the eager per-layer channel-setup
#    helpers were deleted when lazy first-touch connection moved into
#    ugni::Nic::get_or_connect.  Re-introducing a layer-side setup path
#    would quietly bring back O(N^2) job-wide endpoint state, so zero
#    occurrences are allowed anywhere (comments included, same rationale
#    as rule 1).
eager=$(grep -rEn '\bensure_channel\b' \
    --include='*.cpp' --include='*.hpp' --include='*.h' \
    src bench examples tests 2>/dev/null)
if [ -n "$eager" ]; then
  echo "error: 'ensure_channel' was removed; per-peer channels are" >&2
  echo "established lazily by ugni::Nic::get_or_connect (first touch):" >&2
  echo "$eager" >&2
  status=1
fi

# 5. The old Engine constructors are gone: Engine() sniffed UGNIRT_SIM_QUEUE
#    from the environment and Engine(QueueKind) predated sharding.  All
#    construction goes through explicit sim::EngineOptions now — tests use
#    EngineOptions{} (hermetic defaults), drivers opt into the environment
#    with EngineOptions::from_env().  queue_kind_from_env() is the from_env
#    helper's implementation detail and must not be called outside src/sim.
#    Matched shapes: the ctor declarations themselves (Engine(); /
#    Engine(QueueKind)) and instances built from a bare QueueKind
#    (Engine name{QueueKind...}).  Plain member declarations
#    (sim::Engine engine_;) are fine — with no default ctor the compiler
#    already forces an EngineOptions initializer.
legacy_ctor=$(grep -rEn \
    -e 'Engine[[:space:]]*\([[:space:]]*\)[[:space:]]*;' \
    -e 'Engine[[:space:]]*\([[:space:]]*(sim::)?QueueKind' \
    -e '\bEngine[[:space:]]+[[:alnum:]_]+[[:space:]]*[({][[:space:]]*(sim::)?QueueKind' \
    -e 'new[[:space:]]+(sim::)?Engine[[:space:]]*[({][[:space:]]*(sim::)?QueueKind' \
    --include='*.cpp' --include='*.hpp' --include='*.h' \
    src bench examples tests 2>/dev/null \
    | grep -v 'EngineOptions' | grep -v '~Engine')
if [ -n "$legacy_ctor" ]; then
  echo "error: legacy sim::Engine constructors were removed; construct with" >&2
  echo "sim::EngineOptions{...} or sim::EngineOptions::from_env():" >&2
  echo "$legacy_ctor" >&2
  status=1
fi
env_sniff=$(grep -rEn '\bqueue_kind_from_env[[:space:]]*\(' \
    --include='*.cpp' --include='*.hpp' --include='*.h' \
    src bench examples tests 2>/dev/null \
    | grep -v '^src/sim/')
if [ -n "$env_sniff" ]; then
  echo "error: queue_kind_from_env() is private to src/sim; callers must" >&2
  echo "use sim::EngineOptions::from_env() for environment-driven config:" >&2
  echo "$env_sniff" >&2
  status=1
fi

# 6. InjectionGovernor is built ONLY through flowcontrol::make_governor.
#    Direct construction (stack instance, make_unique, new) outside
#    src/flowcontrol/ and src/tenancy/ would mint a governor the tenancy
#    subsystem never sees, silently bypassing per-job QoS window bounds
#    and drain quotas.  Type mentions (pointers, references, accessors,
#    unique_ptr members) are fine and not matched here.
gov_ctor=$(grep -rEn \
    -e 'new[[:space:]]+(flowcontrol::)?InjectionGovernor' \
    -e 'make_unique<[[:space:]]*(flowcontrol::)?InjectionGovernor' \
    -e '\bInjectionGovernor[[:space:]]+[[:alnum:]_]+[[:space:]]*[({]' \
    --include='*.cpp' --include='*.hpp' --include='*.h' \
    src bench examples tests 2>/dev/null \
    | grep -v '^src/flowcontrol/' | grep -v '^src/tenancy/')
if [ -n "$gov_ctor" ]; then
  echo "error: InjectionGovernor must be constructed via" >&2
  echo "flowcontrol::make_governor() (QoS classes bind there); direct" >&2
  echo "construction is confined to src/flowcontrol/ + src/tenancy/:" >&2
  echo "$gov_ctor" >&2
  status=1
fi

if [ "$status" -ne 0 ]; then
  exit 1
fi

echo "check_deprecated_sends: OK (deprecated send symbols absent from the tree)"
exit 0
