// DMAPP (PGAS-style one-sided API over the simulated Gemini) tests.
#include <gtest/gtest.h>

#include <cstring>
#include <numeric>

#include "sim/context.hpp"
#include "sim/engine.hpp"
#include "ugni/dmapp.hpp"

namespace ugnirt::dmapp {
namespace {

class DmappFixture : public ::testing::Test {
 protected:
  static constexpr int kPes = 4;
  static constexpr std::uint64_t kHeap = 64 * 1024;

  void SetUp() override {
    net_ = std::make_unique<gemini::Network>(
        engine_.scheduler(), topo::Torus3D::for_nodes(4), gemini::MachineConfig{});
    dom_ = std::make_unique<ugni::Domain>(*net_);
    for (int i = 0; i < kPes; ++i) {
      ctx_.push_back(std::make_unique<sim::Context>(engine_.scheduler(), i));
    }
    sim::ScopedContext g(*ctx_[0]);
    job_ = std::make_unique<DmappJob>(*dom_, kPes, kHeap);
  }

  sim::Context& ctx(int i) { return *ctx_[static_cast<std::size_t>(i)]; }

  sim::Engine engine_{sim::EngineOptions{}};
  std::unique_ptr<gemini::Network> net_;
  std::unique_ptr<ugni::Domain> dom_;
  std::vector<std::unique_ptr<sim::Context>> ctx_;
  std::unique_ptr<DmappJob> job_;
};

TEST_F(DmappFixture, SymmetricMallocGivesSameOffsetEverywhere) {
  std::uint64_t a = 0, b = 0;
  EXPECT_EQ(job_->sheap_malloc(100, &a), DMAPP_RC_SUCCESS);
  EXPECT_EQ(job_->sheap_malloc(100, &b), DMAPP_RC_SUCCESS);
  EXPECT_NE(a, b);
  EXPECT_EQ(b % 16, 0u);  // aligned
  // Exhaustion reports NO_SPACE.
  std::uint64_t big = 0;
  EXPECT_EQ(job_->sheap_malloc(kHeap, &big), DMAPP_RC_NO_SPACE);
}

TEST_F(DmappFixture, BlockingPutGetRoundTrip) {
  std::uint64_t off = 0;
  ASSERT_EQ(job_->sheap_malloc(4096, &off), DMAPP_RC_SUCCESS);
  std::vector<std::uint8_t> src(4096), dst(4096);
  std::iota(src.begin(), src.end(), 1);

  sim::ScopedContext g(ctx(0));
  SimTime before = ctx(0).now();
  ASSERT_EQ(job_->put(0, 2, off, src.data(), src.size()), DMAPP_RC_SUCCESS);
  EXPECT_GT(ctx(0).now(), before);  // blocking put took time
  EXPECT_EQ(std::memcmp(job_->addr_of(2, off), src.data(), 4096), 0);

  ASSERT_EQ(job_->get(0, 2, off, dst.data(), dst.size()), DMAPP_RC_SUCCESS);
  EXPECT_EQ(dst, src);
}

TEST_F(DmappFixture, NbiPutsOverlapThenFence) {
  std::uint64_t off = 0;
  ASSERT_EQ(job_->sheap_malloc(1 << 20, &off), DMAPP_RC_NO_SPACE);
  ASSERT_EQ(job_->sheap_malloc(32 * 1024, &off), DMAPP_RC_SUCCESS);
  std::vector<std::uint8_t> chunk(16 * 1024, 0x5A);

  sim::ScopedContext g(ctx(1));
  SimTime t0 = ctx(1).now();
  ASSERT_EQ(job_->put_nbi(1, 3, off, chunk.data(), chunk.size()),
            DMAPP_RC_SUCCESS);
  ASSERT_EQ(job_->put_nbi(1, 2, off, chunk.data(), chunk.size()),
            DMAPP_RC_SUCCESS);
  SimTime after_posts = ctx(1).now() - t0;
  ASSERT_EQ(job_->gsync_wait(1), DMAPP_RC_SUCCESS);
  SimTime after_fence = ctx(1).now() - t0;
  // NBI initiation is cheaper than waiting for the data to land.
  EXPECT_GT(after_fence, after_posts);
  EXPECT_EQ(std::memcmp(job_->addr_of(3, off), chunk.data(), chunk.size()),
            0);
  EXPECT_EQ(std::memcmp(job_->addr_of(2, off), chunk.data(), chunk.size()),
            0);
}

TEST_F(DmappFixture, AtomicFetchAddSerializesCounters) {
  std::uint64_t off = 0;
  ASSERT_EQ(job_->sheap_malloc(8, &off), DMAPP_RC_SUCCESS);
  *reinterpret_cast<std::int64_t*>(job_->addr_of(0, off)) = 100;

  std::int64_t seen[3] = {};
  for (int pe = 1; pe < 4; ++pe) {
    sim::ScopedContext g(ctx(pe));
    ASSERT_EQ(job_->afadd_qw(pe, 0, off, 10, &seen[pe - 1]),
              DMAPP_RC_SUCCESS);
  }
  EXPECT_EQ(*reinterpret_cast<std::int64_t*>(job_->addr_of(0, off)), 130);
  EXPECT_EQ(seen[0], 100);
  EXPECT_EQ(seen[1], 110);
  EXPECT_EQ(seen[2], 120);
  // Misaligned or out-of-range atomics are rejected.
  std::int64_t dummy;
  EXPECT_EQ(job_->afadd_qw(1, 0, off + 4, 1, &dummy),
            DMAPP_RC_INVALID_PARAM);
  EXPECT_EQ(job_->afadd_qw(1, 0, kHeap, 1, &dummy), DMAPP_RC_INVALID_PARAM);
}

TEST_F(DmappFixture, OutOfRangeTransfersRejected) {
  std::vector<std::uint8_t> buf(128);
  sim::ScopedContext g(ctx(0));
  EXPECT_EQ(job_->put(0, 1, kHeap - 64, buf.data(), 128),
            DMAPP_RC_INVALID_PARAM);
  EXPECT_EQ(job_->get(0, 9, 0, buf.data(), 128), DMAPP_RC_INVALID_PARAM);
  EXPECT_EQ(job_->put(-1, 1, 0, buf.data(), 128), DMAPP_RC_INVALID_PARAM);
}

TEST_F(DmappFixture, LargePutUsesBteAndReachesFullBandwidth) {
  std::uint64_t off = 0;
  ASSERT_EQ(job_->sheap_malloc(48 * 1024, &off), DMAPP_RC_SUCCESS);
  std::vector<std::uint8_t> big(48 * 1024, 0x7);
  sim::ScopedContext g(ctx(0));
  SimTime t0 = ctx(0).now();
  ASSERT_EQ(job_->put(0, 1, off, big.data(), big.size()), DMAPP_RC_SUCCESS);
  SimTime took = ctx(0).now() - t0;
  // ~48 KiB at ~5.9 GB/s plus startup: one-digit microseconds x ~2.
  EXPECT_GT(took, microseconds(8.0));
  EXPECT_LT(took, microseconds(40.0));
}

}  // namespace
}  // namespace ugnirt::dmapp
