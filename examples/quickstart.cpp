// Quickstart: the smallest complete program on the runtime.
//
// Builds a CHARM++-style machine on the simulated Gemini interconnect,
// registers a handler, bounces a message between two PEs on the uGNI-based
// and the MPI-based machine layer, and prints the one-way latencies —
// reproducing the paper's headline comparison in ~60 lines.
//
// Run:  ./quickstart
#include <cstdio>

#include "converse/machine.hpp"
#include "lrts/runtime.hpp"

using namespace ugnirt;
using namespace ugnirt::converse;

namespace {

SimTime pingpong_once(LayerKind layer, std::uint32_t payload) {
  MachineOptions options;
  options.pes = 2;
  options.pes_per_node = 1;  // put the two PEs on different torus nodes

  auto machine = lrts::make_machine(layer, options);

  const std::uint32_t total = payload + kCmiHeaderBytes;
  int legs = 0;
  SimTime t0 = 0, t1 = 0;
  int handler = -1;

  handler = machine->register_handler([&](void* msg) {
    ++legs;
    if (legs == 2) t0 = Machine::running()->current_pe().ctx().now();
    if (legs == 4) {  // one warmup round trip, one measured
      t1 = Machine::running()->current_pe().ctx().now();
      CmiFree(msg);
      return;
    }
    // Bounce the same buffer back, as the paper's benchmark does.
    CmiSetHandler(msg, handler);
    CmiSyncSendAndFree(1 - CmiMyPe(), total, msg);
  });

  machine->start(0, [&] {
    void* msg = CmiAlloc(total);
    CmiSetHandler(msg, handler);
    CmiSyncSendAndFree(1, total, msg);
  });
  machine->run();
  return (t1 - t0) / 2;  // one-way
}

}  // namespace

int main() {
  std::printf("ping-pong one-way latency (virtual time on the simulated "
              "Gemini):\n\n");
  std::printf("%10s %16s %16s\n", "bytes", "uGNI layer (us)",
              "MPI layer (us)");
  for (std::uint32_t payload : {8u, 1024u, 65536u}) {
    std::printf("%10u %16.3f %16.3f\n", payload,
                to_us(pingpong_once(LayerKind::kUgni, payload)),
                to_us(pingpong_once(LayerKind::kMpi, payload)));
  }
  std::printf("\nThe uGNI machine layer wins at every size — the paper's\n"
              "central result, reproduced in one page of code.\n");
  return 0;
}
