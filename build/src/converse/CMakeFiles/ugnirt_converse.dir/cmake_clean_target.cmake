file(REMOVE_RECURSE
  "libugnirt_converse.a"
)
