# Empty dependencies file for table2_namd_strong.
# This may be replaced when dependencies are built.
