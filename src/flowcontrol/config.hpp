// Congestion-control (flow) configuration.
//
// Lives in its own header so converse/machine.hpp can embed it in
// MachineOptions without pulling in the estimator/governor machinery.
// Keys live under "flow.*" and are overridable via UGNIRT_FLOW_*
// environment variables; `lrts::make_machine` applies them automatically,
// same as the gemini/fault/retry/agg knobs.
//
// Every default preserves stock behavior bit-for-bit: with `enable`
// false no estimator or governor is even constructed, so the hot paths
// stay on the exact seed code (a single null-pointer test, the same
// pattern as the fault injector).
#pragma once

#include <cstdint>

#include "util/config.hpp"
#include "util/units.hpp"

namespace ugnirt::flowcontrol {

struct FlowConfig {
  /// Master switch (UGNIRT_FLOW_ENABLE).  Off by default: congestion
  /// control only pays for itself under contention, and the stock
  /// behavior is the paper's calibrated baseline.
  bool enable = false;

  /// EWMA smoothing factor for per-link / per-NIC load estimates
  /// (UGNIRT_FLOW_EWMA_ALPHA).  Each reserve folds in one sample:
  /// load' = (1-a)*load + a*wait/(wait+duration).
  double ewma_alpha = 0.125;

  /// A NIC (node) whose smoothed wait fraction is at or above this is
  /// "hot": the AIMD window backs off, thresholds adapt, routing avoids
  /// its loaded links (UGNIRT_FLOW_HOT_THRESHOLD).
  double hot_threshold = 0.25;

  /// AIMD window bounds on outstanding governed transactions per PE
  /// (UGNIRT_FLOW_WINDOW_MIN / _MAX / _START).
  std::uint32_t window_min = 2;
  std::uint32_t window_max = 64;
  std::uint32_t window_start = 8;

  /// Additive increase per completion-window when the path is cool, and
  /// the multiplicative factor applied when it is hot
  /// (UGNIRT_FLOW_AIMD_INCREASE / UGNIRT_FLOW_AIMD_DECREASE).
  double aimd_increase = 1.0;
  double aimd_decrease = 0.5;

  /// Defer rendezvous GET issue once the AIMD window is full; deferred
  /// GETs drain from the progress engine as completions free slots
  /// (UGNIRT_FLOW_PACE_RENDEZVOUS).
  bool pace_rendezvous = true;

  /// Choose among minimal dimension-order route permutations by
  /// estimated link load instead of fixed x->y->z order
  /// (UGNIRT_FLOW_ADAPTIVE_ROUTING).  Off keeps stock routes even when
  /// the subsystem is otherwise enabled.
  bool adaptive_routing = false;

  /// Adapt the eager/rendezvous and FMA/BTE size thresholds at runtime
  /// under hotspot load instead of using the fixed MachineConfig
  /// constants (UGNIRT_FLOW_ADAPT_THRESHOLDS).
  bool adapt_thresholds = true;

  /// Rate limit (per link, virtual ns) on kCongestionSample trace
  /// events (UGNIRT_FLOW_SAMPLE_PERIOD_NS).
  SimTime sample_period_ns = 5000;

  /// Read "flow.*" keys, falling back to the defaults above.
  static FlowConfig from(const Config& cfg);
  /// Write every knob back as "flow.*" (for env-override round trips).
  void export_to(Config& cfg) const;
  /// The "flow.*" key list, for Config::apply_env_overrides.
  static const char* const* config_keys(std::size_t* count);
};

}  // namespace ugnirt::flowcontrol
