file(REMOVE_RECURSE
  "CMakeFiles/fig13_namd_weak.dir/fig13_namd_weak.cpp.o"
  "CMakeFiles/fig13_namd_weak.dir/fig13_namd_weak.cpp.o.d"
  "fig13_namd_weak"
  "fig13_namd_weak.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_namd_weak.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
