# Empty dependencies file for fig09a_latency.
# This may be replaced when dependencies are built.
