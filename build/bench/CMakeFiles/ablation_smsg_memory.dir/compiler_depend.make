# Empty compiler generated dependencies file for ablation_smsg_memory.
# This may be replaced when dependencies are built.
