// The narrow scheduling surface protocol state machines are allowed to
// hold.
//
// Everything below the Converse scheduler — the Gemini network model, the
// uGNI CQ/SMSG emulation, the MPI library model, retry backoff timers —
// only ever needs four things: the current virtual time, absolute and
// relative scheduling, and cancellation.  They must never see the whole
// sim::Engine, whose run()/run_until()/stop() surface belongs to the code
// that *drives* the simulation (converse::Machine, benches, tests).
// Handing an FSM a Scheduler instead of an Engine keeps that split a
// compile-time guarantee.
//
// Scheduler is deliberately CONCRETE and final: it is a {engine, shard}
// handle whose methods are plain functions, not virtuals.  The old
// abstract-base design put a vtable dispatch on every schedule_at/now —
// once per simulated event, millions of times per full-machine sweep —
// for exactly one implementation (the engine and its shards).  The
// narrow-surface guarantee never needed virtual dispatch; it needs a
// type that exposes nothing else, which this is.  Engine::scheduler()
// returns the engine-wide handle (events land on the shard currently
// executing) and Engine::scheduler(i) the per-shard one whose now() is
// that shard's local clock.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>

#include "sim/small_fn.hpp"
#include "util/units.hpp"

namespace ugnirt::sim {

class Engine;
struct EventRecord;

/// Handle to a scheduled event; allows cancellation (e.g. timeouts that are
/// disarmed when the awaited completion arrives first).
class EventHandle {
 public:
  EventHandle() = default;

  /// Prevent the callback from running.  Safe to call multiple times and
  /// after the event fired (no-op).  Cancellation never touches the
  /// queue: it flips the record's tombstone (and drops the owning
  /// shard's live-event count); the engine skips the dead event when it
  /// surfaces.  The record pointer is guarded twice: the weak guard
  /// proves the engine (and so the record's slab) is still alive, and
  /// the generation check makes a handle to a recycled record a no-op.
  /// Must be called from the shard that owns the event (in a threaded
  /// window drive, the worker draining it) — the tombstone is not
  /// synchronized against a concurrent pop.
  void cancel();

  /// True while the event is still scheduled and uncancelled.
  bool valid() const;

 private:
  friend class Engine;
  EventHandle(std::weak_ptr<std::atomic<std::int64_t>> live, EventRecord* rec,
              std::uint64_t gen)
      : live_(std::move(live)), rec_(rec), gen_(gen) {}
  // The owning shard's live-event counter.  Doubles as the liveness
  // guard: it expires with the shard, so a handle that outlives the
  // engine never touches the (freed) record.
  std::weak_ptr<std::atomic<std::int64_t>> live_;
  EventRecord* rec_ = nullptr;
  std::uint64_t gen_ = 0;
};

/// What a protocol state machine holds.  now()/schedule_at()/
/// schedule_after()/cancel() — nothing else; no run/stop controls.
class Scheduler final {
 public:
  // Copyable handle (two words); only Engine mints new ones.
  Scheduler(const Scheduler&) = default;
  Scheduler& operator=(const Scheduler&) = default;

  /// Current virtual time of this scheduling domain (the whole engine, or
  /// one shard's local clock).  Defined in engine.cpp.
  SimTime now() const;

  /// Schedule `fn` at absolute virtual time `when` (clamped to now()).
  /// Defined in engine.cpp.
  EventHandle schedule_at(SimTime when, SmallFn fn);

  /// Schedule `fn` after `delay` nanoseconds.
  EventHandle schedule_after(SimTime delay, SmallFn fn) {
    return schedule_at(now() + delay, std::move(fn));
  }

  /// Disarm a previously scheduled event (sugar over EventHandle::cancel
  /// so FSM code reads uniformly against the interface).
  void cancel(EventHandle& handle) { handle.cancel(); }

 private:
  friend class Engine;
  Scheduler(Engine* engine, int shard) : engine_(engine), shard_(shard) {}
  Engine* engine_;
  int shard_;  // >= 0: that shard; kCurrentShard: wherever execution is
  static constexpr int kCurrentShard = -1;
};

}  // namespace ugnirt::sim
