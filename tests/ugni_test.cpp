#include <gtest/gtest.h>

#include <array>
#include <cstring>
#include <vector>

#include "sim/context.hpp"
#include "sim/engine.hpp"
#include "ugni/ugni.hpp"

namespace ugnirt::ugni {
namespace {

/// Two-NIC harness: inst 0 on node 0, inst 1 on node 1, SMSG channel up in
/// both directions, one rx CQ and one tx CQ per NIC.
class UgniFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    net_ = std::make_unique<gemini::Network>(
        engine_.scheduler(), topo::Torus3D::for_nodes(8), gemini::MachineConfig{});
    dom_ = std::make_unique<Domain>(*net_);
    for (int i = 0; i < 2; ++i) {
      ctx_[i] = std::make_unique<sim::Context>(engine_.scheduler(), i);
    }
    sim::ScopedContext guard(*ctx_[0]);
    ASSERT_EQ(GNI_CdmAttach(dom_.get(), 0, 0, &nic_[0]), GNI_RC_SUCCESS);
    ASSERT_EQ(GNI_CdmAttach(dom_.get(), 1, 1, &nic_[1]), GNI_RC_SUCCESS);
    for (int i = 0; i < 2; ++i) {
      ASSERT_EQ(GNI_CqCreate(nic_[i], 1024, &rx_cq_[i]), GNI_RC_SUCCESS);
      ASSERT_EQ(GNI_CqCreate(nic_[i], 1024, &tx_cq_[i]), GNI_RC_SUCCESS);
      nic_[i]->set_smsg_rx_cq(rx_cq_[i]);
    }
    ASSERT_EQ(GNI_EpCreate(nic_[0], tx_cq_[0], &ep01_), GNI_RC_SUCCESS);
    ASSERT_EQ(GNI_EpCreate(nic_[1], tx_cq_[1], &ep10_), GNI_RC_SUCCESS);
    ASSERT_EQ(GNI_EpBind(ep01_, 1), GNI_RC_SUCCESS);
    ASSERT_EQ(GNI_EpBind(ep10_, 0), GNI_RC_SUCCESS);
    gni_smsg_attr_t attr;  // defaults: 1024 max, 8 credits
    ASSERT_EQ(GNI_SmsgInit(ep01_, attr, attr), GNI_RC_SUCCESS);
    ASSERT_EQ(GNI_SmsgInit(ep10_, attr, attr), GNI_RC_SUCCESS);
  }

  /// Send a tagged payload 0 -> 1 and return GNI's status.
  gni_return_t send01(const std::string& payload, std::uint8_t tag) {
    sim::ScopedContext guard(*ctx_[0]);
    return GNI_SmsgSendWTag(ep01_, payload.data(),
                            static_cast<std::uint32_t>(payload.size()),
                            nullptr, 0, 0, tag);
  }

  sim::Engine engine_{sim::EngineOptions{}};
  std::unique_ptr<gemini::Network> net_;
  std::unique_ptr<Domain> dom_;
  std::unique_ptr<sim::Context> ctx_[2];
  gni_nic_handle_t nic_[2] = {};
  gni_cq_handle_t rx_cq_[2] = {};
  gni_cq_handle_t tx_cq_[2] = {};
  gni_ep_handle_t ep01_ = nullptr;
  gni_ep_handle_t ep10_ = nullptr;
};

// ----------------------------------------------------------------- SMSG ----

TEST_F(UgniFixture, SmsgDeliversBytesAndTag) {
  ASSERT_EQ(send01("hello gemini", 7), GNI_RC_SUCCESS);

  sim::ScopedContext guard(*ctx_[1]);
  // Before arrival the receiver sees nothing.
  gni_cq_entry_t ev;
  EXPECT_EQ(GNI_CqGetEvent(rx_cq_[1], &ev), GNI_RC_NOT_DONE);

  ctx_[1]->wait_until(1'000'000);  // well past the ~1.2us flight time
  ASSERT_EQ(GNI_CqGetEvent(rx_cq_[1], &ev), GNI_RC_SUCCESS);
  EXPECT_EQ(ev.type, CqEventType::kSmsg);
  EXPECT_EQ(ev.source_inst, 0);

  void* data = nullptr;
  std::uint8_t tag = 0;
  ASSERT_EQ(GNI_SmsgGetNextWTag(ep10_, &data, &tag), GNI_RC_SUCCESS);
  EXPECT_EQ(tag, 7);
  EXPECT_EQ(std::memcmp(data, "hello gemini", 12), 0);
  EXPECT_EQ(GNI_SmsgRelease(ep10_), GNI_RC_SUCCESS);
}

TEST_F(UgniFixture, SmsgPreservesFifoOrderPerChannel) {
  for (int i = 0; i < 5; ++i) {
    std::string msg = "msg" + std::to_string(i);
    ASSERT_EQ(send01(msg, static_cast<std::uint8_t>(i)), GNI_RC_SUCCESS);
  }
  sim::ScopedContext guard(*ctx_[1]);
  ctx_[1]->wait_until(10'000'000);
  for (int i = 0; i < 5; ++i) {
    void* data = nullptr;
    std::uint8_t tag = 0;
    ASSERT_EQ(GNI_SmsgGetNextWTag(ep10_, &data, &tag), GNI_RC_SUCCESS);
    EXPECT_EQ(tag, i);
    ASSERT_EQ(GNI_SmsgRelease(ep10_), GNI_RC_SUCCESS);
  }
}

TEST_F(UgniFixture, SmsgRunsOutOfCreditsThenRecoversAfterRelease) {
  // Default mailbox has 8 credits.
  for (int i = 0; i < 8; ++i) {
    ASSERT_EQ(send01("x", 0), GNI_RC_SUCCESS) << i;
  }
  EXPECT_EQ(send01("x", 0), GNI_RC_NOT_DONE);

  // Receiver drains one message; credit flows back to the sender.
  {
    sim::ScopedContext guard(*ctx_[1]);
    ctx_[1]->wait_until(10'000'000);
    void* data = nullptr;
    std::uint8_t tag = 0;
    gni_cq_entry_t ev;
    ASSERT_EQ(GNI_CqGetEvent(rx_cq_[1], &ev), GNI_RC_SUCCESS);
    ASSERT_EQ(GNI_SmsgGetNextWTag(ep10_, &data, &tag), GNI_RC_SUCCESS);
    ASSERT_EQ(GNI_SmsgRelease(ep10_), GNI_RC_SUCCESS);
  }
  engine_.run();  // deliver the credit-return event
  ctx_[0]->wait_until(engine_.now());
  EXPECT_EQ(send01("x", 0), GNI_RC_SUCCESS);
}

TEST_F(UgniFixture, SmsgRejectsOversizedMessages) {
  std::string big(2048, 'a');
  EXPECT_EQ(send01(big, 0), GNI_RC_SIZE_ERROR);
}

TEST_F(UgniFixture, SmsgReleaseWithoutGetIsInvalid) {
  ASSERT_EQ(send01("x", 0), GNI_RC_SUCCESS);
  sim::ScopedContext guard(*ctx_[1]);
  ctx_[1]->wait_until(10'000'000);
  EXPECT_EQ(GNI_SmsgRelease(ep10_), GNI_RC_INVALID_STATE);
}

TEST_F(UgniFixture, MailboxMemoryGrowsLinearlyWithPeers) {
  // Each SmsgInit commits credits * (maxsize + header) bytes: the SMSG
  // scalability problem the paper contrasts with MSGQ.
  std::uint64_t before = nic_[0]->mailbox_bytes();
  EXPECT_GT(before, 0u);
  gni_ep_handle_t extra = nullptr;
  gni_nic_handle_t nic2 = nullptr;
  {
    sim::ScopedContext guard(*ctx_[0]);
    ASSERT_EQ(GNI_CdmAttach(dom_.get(), 2, 2, &nic2), GNI_RC_SUCCESS);
    ASSERT_EQ(GNI_EpCreate(nic_[0], tx_cq_[0], &extra), GNI_RC_SUCCESS);
    ASSERT_EQ(GNI_EpBind(extra, 2), GNI_RC_SUCCESS);
    gni_smsg_attr_t attr;
    ASSERT_EQ(GNI_SmsgInit(extra, attr, attr), GNI_RC_SUCCESS);
  }
  EXPECT_EQ(nic_[0]->mailbox_bytes(), 2 * before);
}

// ----------------------------------------------------- memory handles ----

TEST_F(UgniFixture, RegisterValidatesAndDeregisterInvalidates) {
  sim::ScopedContext guard(*ctx_[0]);
  std::vector<std::uint8_t> buf(4096);
  gni_mem_handle_t h;
  ASSERT_EQ(GNI_MemRegister(nic_[0],
                            reinterpret_cast<std::uint64_t>(buf.data()),
                            buf.size(), nullptr, 0, &h),
            GNI_RC_SUCCESS);
  EXPECT_EQ(nic_[0]->active_regions(), 1u);
  EXPECT_GE(nic_[0]->registered_bytes(), 4096u);
  ASSERT_EQ(GNI_MemDeregister(nic_[0], &h), GNI_RC_SUCCESS);
  EXPECT_EQ(nic_[0]->active_regions(), 0u);
  // Handle is now zeroed; a second deregister fails.
  EXPECT_EQ(GNI_MemDeregister(nic_[0], &h), GNI_RC_INVALID_PARAM);
}

TEST_F(UgniFixture, RegistrationCostGrowsWithSize) {
  sim::ScopedContext guard(*ctx_[0]);
  std::vector<std::uint8_t> small(4096), big(1 << 20);
  gni_mem_handle_t h1, h2;
  SimTime t0 = ctx_[0]->now();
  ASSERT_EQ(GNI_MemRegister(nic_[0],
                            reinterpret_cast<std::uint64_t>(small.data()),
                            small.size(), nullptr, 0, &h1),
            GNI_RC_SUCCESS);
  SimTime small_cost = ctx_[0]->now() - t0;
  t0 = ctx_[0]->now();
  ASSERT_EQ(GNI_MemRegister(nic_[0],
                            reinterpret_cast<std::uint64_t>(big.data()),
                            big.size(), nullptr, 0, &h2),
            GNI_RC_SUCCESS);
  SimTime big_cost = ctx_[0]->now() - t0;
  EXPECT_GT(big_cost, 10 * small_cost);
}

// ------------------------------------------------------------ FMA/RDMA ----

class UgniRdmaFixture : public UgniFixture {
 protected:
  void SetUp() override {
    UgniFixture::SetUp();
    src_.resize(kLen);
    dst_.resize(kLen);
    for (std::size_t i = 0; i < kLen; ++i) {
      src_[i] = static_cast<std::uint8_t>(i * 31 + 7);
    }
    sim::ScopedContext g0(*ctx_[0]);
    ASSERT_EQ(GNI_MemRegister(nic_[0],
                              reinterpret_cast<std::uint64_t>(src_.data()),
                              kLen, nullptr, 0, &src_h_),
              GNI_RC_SUCCESS);
    sim::ScopedContext g1(*ctx_[1]);
    ASSERT_EQ(GNI_MemRegister(nic_[1],
                              reinterpret_cast<std::uint64_t>(dst_.data()),
                              kLen, rx_cq_[1], 0, &dst_h_),
              GNI_RC_SUCCESS);
  }

  gni_post_descriptor_t make_put() {
    gni_post_descriptor_t d;
    d.type = GNI_POST_RDMA_PUT;
    d.local_addr = reinterpret_cast<std::uint64_t>(src_.data());
    d.local_mem_hndl = src_h_;
    d.remote_addr = reinterpret_cast<std::uint64_t>(dst_.data());
    d.remote_mem_hndl = dst_h_;
    d.length = kLen;
    return d;
  }

  static constexpr std::size_t kLen = 32768;
  std::vector<std::uint8_t> src_, dst_;
  gni_mem_handle_t src_h_{}, dst_h_{};
};

TEST_F(UgniRdmaFixture, RdmaPutMovesDataAndCompletesLocally) {
  gni_post_descriptor_t d = make_put();
  d.post_id = 4242;
  {
    sim::ScopedContext guard(*ctx_[0]);
    ASSERT_EQ(GNI_PostRdma(ep01_, &d), GNI_RC_SUCCESS);
  }
  EXPECT_EQ(std::memcmp(src_.data(), dst_.data(), kLen), 0);

  sim::ScopedContext guard(*ctx_[0]);
  ctx_[0]->wait_until(100'000'000);
  gni_cq_entry_t ev;
  ASSERT_EQ(GNI_CqGetEvent(tx_cq_[0], &ev), GNI_RC_SUCCESS);
  EXPECT_EQ(ev.type, CqEventType::kPostLocal);
  gni_post_descriptor_t* done = nullptr;
  ASSERT_EQ(GNI_GetCompleted(tx_cq_[0], ev, &done), GNI_RC_SUCCESS);
  EXPECT_EQ(done, &d);
  EXPECT_EQ(done->post_id, 4242u);
}

TEST_F(UgniRdmaFixture, RemoteEventDeliveredToDstCq) {
  gni_post_descriptor_t d = make_put();
  d.cq_mode = GNI_CQMODE_LOCAL_EVENT | GNI_CQMODE_REMOTE_EVENT;
  d.post_id = 99;
  {
    sim::ScopedContext guard(*ctx_[0]);
    ASSERT_EQ(GNI_PostRdma(ep01_, &d), GNI_RC_SUCCESS);
  }
  sim::ScopedContext guard(*ctx_[1]);
  ctx_[1]->wait_until(100'000'000);
  gni_cq_entry_t ev;
  ASSERT_EQ(GNI_CqGetEvent(rx_cq_[1], &ev), GNI_RC_SUCCESS);
  EXPECT_EQ(ev.type, CqEventType::kPostRemote);
  EXPECT_EQ(ev.data, 99u);
  EXPECT_EQ(ev.source_inst, 0);
}

TEST_F(UgniRdmaFixture, FmaGetPullsRemoteData) {
  gni_post_descriptor_t d;
  d.type = GNI_POST_FMA_GET;
  // Initiator is NIC 1: pulls from src_ (on 0) into dst_ (on 1).
  d.local_addr = reinterpret_cast<std::uint64_t>(dst_.data());
  d.local_mem_hndl = dst_h_;
  d.remote_addr = reinterpret_cast<std::uint64_t>(src_.data());
  d.remote_mem_hndl = src_h_;
  d.length = 1024;
  sim::ScopedContext guard(*ctx_[1]);
  ASSERT_EQ(GNI_PostFma(ep10_, &d), GNI_RC_SUCCESS);
  EXPECT_EQ(std::memcmp(dst_.data(), src_.data(), 1024), 0);
}

TEST_F(UgniRdmaFixture, PostRejectsUnregisteredMemory) {
  std::vector<std::uint8_t> rogue(kLen);
  gni_post_descriptor_t d = make_put();
  d.local_addr = reinterpret_cast<std::uint64_t>(rogue.data());
  sim::ScopedContext guard(*ctx_[0]);
  EXPECT_EQ(GNI_PostRdma(ep01_, &d), GNI_RC_PERMISSION_ERROR);
}

TEST_F(UgniRdmaFixture, PostRejectsStaleHandleAfterDeregister) {
  {
    sim::ScopedContext guard(*ctx_[1]);
    gni_mem_handle_t copy = dst_h_;
    ASSERT_EQ(GNI_MemDeregister(nic_[1], &copy), GNI_RC_SUCCESS);
  }
  gni_post_descriptor_t d = make_put();
  sim::ScopedContext guard(*ctx_[0]);
  EXPECT_EQ(GNI_PostRdma(ep01_, &d), GNI_RC_PERMISSION_ERROR);
}

TEST_F(UgniRdmaFixture, PostRejectsOutOfRangeWindow) {
  gni_post_descriptor_t d = make_put();
  d.remote_addr += kLen - 8;  // runs past the registered region
  d.length = 64;
  d.local_addr = reinterpret_cast<std::uint64_t>(src_.data());
  sim::ScopedContext guard(*ctx_[0]);
  EXPECT_EQ(GNI_PostRdma(ep01_, &d), GNI_RC_PERMISSION_ERROR);
}

TEST_F(UgniRdmaFixture, MismatchedPostFunctionAndTypeFails) {
  gni_post_descriptor_t d = make_put();  // RDMA type
  sim::ScopedContext guard(*ctx_[0]);
  EXPECT_EQ(GNI_PostFma(ep01_, &d), GNI_RC_INVALID_PARAM);
  d.type = GNI_POST_FMA_PUT;
  EXPECT_EQ(GNI_PostRdma(ep01_, &d), GNI_RC_INVALID_PARAM);
}

// ----------------------------------------------------------------- AMO ----

TEST_F(UgniRdmaFixture, AmoFetchAddAndCswap) {
  alignas(8) std::uint64_t counter = 10;
  alignas(8) std::uint64_t fetched = 0;
  gni_mem_handle_t ch;
  sim::ScopedContext guard(*ctx_[0]);
  // Register the counter on NIC 1's side (it lives in shared sim memory).
  {
    sim::ScopedContext g1(*ctx_[1]);
    ASSERT_EQ(GNI_MemRegister(nic_[1],
                              reinterpret_cast<std::uint64_t>(&counter), 8,
                              nullptr, 0, &ch),
              GNI_RC_SUCCESS);
  }
  gni_post_descriptor_t d;
  d.type = GNI_POST_AMO;
  d.amo_cmd = GNI_FMA_ATOMIC_FADD;
  d.remote_addr = reinterpret_cast<std::uint64_t>(&counter);
  d.remote_mem_hndl = ch;
  d.local_addr = reinterpret_cast<std::uint64_t>(&fetched);
  d.length = 8;
  d.first_operand = 5;
  ASSERT_EQ(GNI_PostFma(ep01_, &d), GNI_RC_SUCCESS);
  EXPECT_EQ(counter, 15u);
  EXPECT_EQ(fetched, 10u);

  d.amo_cmd = GNI_FMA_ATOMIC_CSWAP;
  d.first_operand = 15;  // expected
  d.second_operand = 77;
  ASSERT_EQ(GNI_PostFma(ep01_, &d), GNI_RC_SUCCESS);
  EXPECT_EQ(counter, 77u);
  EXPECT_EQ(fetched, 15u);

  // AMO via PostRdma is illegal.
  EXPECT_EQ(GNI_PostRdma(ep01_, &d), GNI_RC_ILLEGAL_OP);
}

// ------------------------------------------------------------- domain ----

TEST_F(UgniFixture, DomainLookupAndDuplicateInstRejected) {
  EXPECT_EQ(dom_->nic_by_inst(0), nic_[0]);
  EXPECT_EQ(dom_->nic_by_inst(1), nic_[1]);
  EXPECT_EQ(dom_->nic_by_inst(42), nullptr);
  gni_nic_handle_t dup = nullptr;
  sim::ScopedContext guard(*ctx_[0]);
  EXPECT_EQ(GNI_CdmAttach(dom_.get(), 0, 0, &dup), GNI_RC_INVALID_STATE);
  EXPECT_EQ(GNI_CdmAttach(dom_.get(), 5, 999, &dup), GNI_RC_INVALID_PARAM);
}

TEST_F(UgniFixture, CqOverrunSetsErrorState) {
  sim::ScopedContext guard(*ctx_[0]);
  gni_cq_handle_t tiny = nullptr;
  ASSERT_EQ(GNI_CqCreate(nic_[1], 2, &tiny), GNI_RC_SUCCESS);
  nic_[1]->set_smsg_rx_cq(tiny);
  for (int i = 0; i < 3; ++i) {
    ASSERT_EQ(send01("x", 0), GNI_RC_SUCCESS);
  }
  sim::ScopedContext g1(*ctx_[1]);
  ctx_[1]->wait_until(10'000'000);
  gni_cq_entry_t ev;
  EXPECT_EQ(GNI_CqGetEvent(tiny, &ev), GNI_RC_ERROR_RESOURCE);
  EXPECT_TRUE(tiny->overrun());
}

}  // namespace
}  // namespace ugnirt::ugni
