// Convenience constructors: a Machine wired to the requested LRTS layer.
//
// "All the following benchmark programs and applications are written in
// CHARM++, but linked with either MPI- or uGNI-based message-driven runtime
// for comparison" (paper §V) — this factory is that link step.
#pragma once

#include <memory>

#include "converse/machine.hpp"

namespace ugnirt::lrts {

/// Build a machine running the layer named in `options.layer`.
std::unique_ptr<converse::Machine> make_machine(
    const converse::MachineOptions& options);

}  // namespace ugnirt::lrts
