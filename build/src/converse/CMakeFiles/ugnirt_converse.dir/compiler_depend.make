# Empty compiler generated dependencies file for ugnirt_converse.
# This may be replaced when dependencies are built.
