#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "charm/array.hpp"
#include "charm/charm.hpp"
#include "charm/lb.hpp"
#include "lrts/runtime.hpp"

namespace ugnirt::charm {
namespace {

using converse::LayerKind;
using converse::MachineOptions;
using lrts::make_machine;

MachineOptions opts(int pes) {
  MachineOptions o;
  o.pes = pes;
  return o;
}

// ------------------------------------------------------------ reductions ----

TEST(CharmReduction, SumsAcrossAllPes) {
  auto m = make_machine(LayerKind::kUgni, opts(13));
  Charm charm(*m);
  std::uint64_t result = 0;
  int red = charm.register_reduction_sum([&](std::uint64_t v) { result = v; });
  for (int pe = 0; pe < 13; ++pe) {
    m->start(pe, [&charm, red, pe] {
      charm.contribute(red, static_cast<std::uint64_t>(pe + 1));
    });
  }
  m->run();
  EXPECT_EQ(result, 13u * 14u / 2u);
}

TEST(CharmReduction, DoubleSum) {
  auto m = make_machine(LayerKind::kUgni, opts(7));
  Charm charm(*m);
  double result = 0;
  int red = charm.register_reduction_sum_d([&](double v) { result = v; });
  for (int pe = 0; pe < 7; ++pe) {
    m->start(pe, [&charm, red, pe] { charm.contribute_d(red, 0.5 * pe); });
  }
  m->run();
  EXPECT_DOUBLE_EQ(result, 0.5 * (0 + 1 + 2 + 3 + 4 + 5 + 6));
}

TEST(CharmReduction, MaxReduction) {
  auto m = make_machine(LayerKind::kUgni, opts(9));
  Charm charm(*m);
  std::uint64_t result = 0;
  int red = charm.register_reduction_max([&](std::uint64_t v) { result = v; });
  for (int pe = 0; pe < 9; ++pe) {
    m->start(pe, [&charm, red, pe] {
      charm.contribute(red, static_cast<std::uint64_t>((pe * 37) % 23));
    });
  }
  m->run();
  EXPECT_EQ(result, 20u);  // max of (pe*37)%23 over pe 0..8 is at pe=8
}

TEST(CharmReduction, MultipleRoundsStaySeparated) {
  auto m = make_machine(LayerKind::kUgni, opts(5));
  Charm charm(*m);
  std::vector<std::uint64_t> results;
  int red = charm.register_reduction_sum(
      [&](std::uint64_t v) { results.push_back(v); });
  for (int pe = 0; pe < 5; ++pe) {
    m->start(pe, [&charm, red] {
      charm.contribute(red, 1);  // round 0
      charm.contribute(red, 10); // round 1
    });
  }
  m->run();
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0], 5u);
  EXPECT_EQ(results[1], 50u);
}

// ------------------------------------------------------------------- QD ----

TEST(CharmQd, FiresForImmediateQuiet) {
  auto m = make_machine(LayerKind::kUgni, opts(6));
  Charm charm(*m);
  bool fired = false;
  m->start(0, [&] { charm.start_quiescence([&] { fired = true; }); });
  m->run();
  EXPECT_TRUE(fired);
}

TEST(CharmQd, WaitsForOutstandingWork) {
  // A chain of 50 hops must fully complete before QD fires.
  auto m = make_machine(LayerKind::kUgni, opts(8));
  Charm charm(*m);
  int hops_done = 0;
  bool fired = false;
  int task = -1;
  task = charm.register_task([&](const void* p, std::uint32_t) {
    int ttl = *static_cast<const int*>(p);
    converse::CmiChargeWork(5'000);  // keep the chain slow vs QD waves
    ++hops_done;
    if (ttl > 0) {
      int next = ttl - 1;
      charm.seed_task(task, &next, sizeof(next));
    }
  });
  m->start(0, [&] {
    int ttl = 49;
    charm.seed_task(task, &ttl, sizeof(ttl));
    charm.start_quiescence([&] {
      fired = true;
      EXPECT_EQ(hops_done, 50);
    });
  });
  m->run();
  EXPECT_TRUE(fired);
  EXPECT_EQ(hops_done, 50);
  EXPECT_GE(charm.qd_waves(), 2);
}

TEST(CharmQd, WorksOnMpiLayerToo) {
  auto m = make_machine(LayerKind::kMpi, opts(4));
  Charm charm(*m);
  int done = 0;
  bool fired = false;
  int task = charm.register_task([&](const void*, std::uint32_t) { ++done; });
  m->start(0, [&] {
    for (int i = 0; i < 20; ++i) charm.seed_task(task, nullptr, 0);
    charm.start_quiescence([&] {
      fired = true;
      EXPECT_EQ(done, 20);
    });
  });
  m->run();
  EXPECT_TRUE(fired);
}

// ------------------------------------------------------------ seed tasks ----

TEST(CharmSeeds, RandomSeedingSpreadsAcrossPes) {
  auto m = make_machine(LayerKind::kUgni, opts(16));
  Charm charm(*m);
  std::vector<int> per_pe(16, 0);
  int task = charm.register_task([&](const void*, std::uint32_t) {
    per_pe[static_cast<std::size_t>(converse::CmiMyPe())]++;
  });
  m->start(0, [&] {
    for (int i = 0; i < 1600; ++i) charm.seed_task(task, nullptr, 0);
    charm.start_quiescence([] {});
  });
  m->run();
  int total = std::accumulate(per_pe.begin(), per_pe.end(), 0);
  EXPECT_EQ(total, 1600);
  for (int pe = 0; pe < 16; ++pe) {
    EXPECT_GT(per_pe[static_cast<std::size_t>(pe)], 40) << "pe " << pe;
    EXPECT_LT(per_pe[static_cast<std::size_t>(pe)], 200) << "pe " << pe;
  }
}

TEST(CharmSeeds, PayloadTravelsIntact) {
  auto m = make_machine(LayerKind::kUgni, opts(4));
  Charm charm(*m);
  struct Payload {
    int a;
    double b;
    char c[16];
  };
  int seen = 0;
  int task = charm.register_task([&](const void* p, std::uint32_t bytes) {
    ASSERT_EQ(bytes, sizeof(Payload));
    Payload pl;
    std::memcpy(&pl, p, sizeof(pl));
    EXPECT_EQ(pl.a, 42);
    EXPECT_DOUBLE_EQ(pl.b, 3.25);
    EXPECT_STREQ(pl.c, "hello");
    ++seen;
  });
  m->start(0, [&] {
    Payload pl{42, 3.25, "hello"};
    charm.seed_task_to(3, task, &pl, sizeof(pl));
    charm.start_quiescence([] {});
  });
  m->run();
  EXPECT_EQ(seen, 1);
}

// ---------------------------------------------------------------- arrays ----

struct EchoElem final : ArrayElement {
  void receive(int method, const void* payload, std::uint32_t bytes) override {
    last_method = method;
    last_bytes = bytes;
    if (bytes >= sizeof(int)) {
      std::memcpy(&last_value, payload, sizeof(int));
    }
    ++invocations;
    converse::CmiChargeWork(work_ns);
  }
  int last_method = -1;
  std::uint32_t last_bytes = 0;
  int last_value = 0;
  int invocations = 0;
  SimTime work_ns = 1000;
};

TEST(CharmArray, InvokeRoutesToElements) {
  auto m = make_machine(LayerKind::kUgni, opts(4));
  Charm charm(*m);
  ArrayManager arr(charm, 10, [](int) { return std::make_unique<EchoElem>(); });
  m->start(0, [&] {
    for (int i = 0; i < 10; ++i) {
      int v = i * 7;
      arr.invoke(i, 3, &v, sizeof(v));
    }
    charm.start_quiescence([] {});
  });
  m->run();
  for (int i = 0; i < 10; ++i) {
    auto* e = static_cast<EchoElem*>(arr.element(i));
    EXPECT_EQ(e->invocations, 1);
    EXPECT_EQ(e->last_method, 3);
    EXPECT_EQ(e->last_value, i * 7);
  }
}

TEST(CharmArray, BlockPlacementCoversAllPes) {
  auto m = make_machine(LayerKind::kUgni, opts(4));
  Charm charm(*m);
  ArrayManager arr(charm, 16, [](int) { return std::make_unique<EchoElem>(); });
  std::vector<int> count(4, 0);
  for (int i = 0; i < 16; ++i) count[static_cast<std::size_t>(arr.location_of(i))]++;
  for (int pe = 0; pe < 4; ++pe) EXPECT_EQ(count[static_cast<std::size_t>(pe)], 4);
}

TEST(CharmArray, LoadMeasurementAndMigration) {
  auto m = make_machine(LayerKind::kUgni, opts(4));
  Charm charm(*m);
  ArrayManager arr(charm, 8, [](int idx) {
    auto e = std::make_unique<EchoElem>();
    e->work_ns = (idx == 0) ? 50'000 : 1'000;  // one heavy element
    return e;
  });
  m->start(0, [&] {
    arr.invoke_all(1, nullptr, 0);
    charm.start_quiescence([] {});
  });
  m->run();
  const auto& load = arr.measured_load();
  EXPECT_GT(load[0], load[1] * 10);

  // Migrate everything to PE 3 and verify routing still works.
  std::vector<int> everywhere(8, 3);
  int moves = arr.migrate_to(everywhere);
  EXPECT_GT(moves, 0);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(arr.location_of(i), 3);

  auto m2_done = 0;
  (void)m2_done;
  m->start(0, [&] {
    arr.invoke_all(2, nullptr, 0);
    charm.start_quiescence([] {});
  });
  m->run();
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(static_cast<EchoElem*>(arr.element(i))->invocations, 2);
  }
}

// -------------------------------------------------------------------- LB ----

TEST(LoadBalancer, GreedyBalancesHeavyTail) {
  std::vector<double> loads{100, 1, 1, 1, 1, 1, 1, 1, 50, 40};
  std::vector<int> current(10, 0);  // everything on PE 0
  LbResult r = greedy_lb(loads, current, 4);
  EXPECT_DOUBLE_EQ(r.max_load_before, 197.0);
  EXPECT_LE(r.max_load_after, 100.0 + 1.0);
  auto pl = pe_loads(loads, r.assignment, 4);
  for (double l : pl) EXPECT_LE(l, 100.0 + 1e-9);
}

TEST(LoadBalancer, GreedyIsDeterministic) {
  std::vector<double> loads{5, 3, 3, 2, 8, 1, 9, 4};
  std::vector<int> current(8, 0);
  auto a = greedy_lb(loads, current, 3).assignment;
  auto b = greedy_lb(loads, current, 3).assignment;
  EXPECT_EQ(a, b);
}

TEST(LoadBalancer, RefineMovesFewObjects) {
  // Mostly balanced already; one PE slightly hot.
  std::vector<double> loads{10, 10, 10, 10, 5, 5};
  std::vector<int> current{0, 0, 1, 2, 1, 2};  // PE0: 20, PE1: 15, PE2: 15
  LbResult greedy = greedy_lb(loads, current, 3);
  LbResult refine = refine_lb(loads, current, 3, 1.2);
  EXPECT_LE(refine.migrations, greedy.migrations);
  EXPECT_LE(refine.max_load_after, refine.max_load_before);
}

TEST(LoadBalancer, PeLoadsSumsMatch) {
  std::vector<double> loads{1, 2, 3, 4};
  std::vector<int> assign{0, 1, 0, 1};
  auto pl = pe_loads(loads, assign, 2);
  EXPECT_DOUBLE_EQ(pl[0], 4.0);
  EXPECT_DOUBLE_EQ(pl[1], 6.0);
}

}  // namespace
}  // namespace ugnirt::charm
