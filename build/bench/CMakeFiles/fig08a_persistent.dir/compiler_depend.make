# Empty compiler generated dependencies file for fig08a_persistent.
# This may be replaced when dependencies are built.
