// Figure 6: one-way latency of pure uGNI, MPI-based CHARM++, and the
// *initial* uGNI-based CHARM++ (no memory pool: every large message pays
// malloc + registration on both sides), 32 B .. 1 MiB (paper §III-C).
#include "apps/microbench/microbench.hpp"
#include "bench_util.hpp"

using namespace ugnirt;
using namespace ugnirt::apps;

int main() {
  gemini::MachineConfig mc;
  benchtool::Table table("fig06_initial_ugni", "msg_bytes");
  table.add_column("uGNI_CHARM_us");   // initial version (Equation 1 costs)
  table.add_column("MPI_CHARM_us");
  table.add_column("pure_uGNI_us");

  converse::MachineOptions initial;
  initial.layer = converse::LayerKind::kUgni;
  initial.use_mempool = false;  // the §III-C initial design
  initial.pes_per_node = 1;

  converse::MachineOptions mpi_charm;
  mpi_charm.layer = converse::LayerKind::kMpi;
  mpi_charm.pes_per_node = 1;

  for (std::uint64_t size : benchtool::size_sweep(32, 1024 * 1024)) {
    bench::PingPongOptions pp;
    pp.payload = static_cast<std::uint32_t>(size);
    SimTime ug_charm = bench::charm_pingpong(initial, pp);
    SimTime mpi_c = bench::charm_pingpong(mpi_charm, pp);
    SimTime pure = bench::pure_ugni_pingpong(mc, static_cast<std::uint32_t>(size));
    table.add_row(benchtool::size_label(size),
                  {to_us(ug_charm), to_us(mpi_c), to_us(pure)});
  }
  table.print();
  std::printf("Paper shape: the initial uGNI-based CHARM++ tracks pure uGNI\n"
              "for SMSG-sized messages but loses to MPI-based CHARM++ for\n"
              "large ones because of 2*(Tmalloc+Tregister) in Equation 1.\n");
  return 0;
}
