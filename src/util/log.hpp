// Minimal leveled logger.  Off by default; enable with UGNIRT_LOG=debug
// (or trace/info/warn/error/off).  When a simulated PE context is active,
// messages are prefixed with the virtual time and PE id, e.g.
// `[ugnirt DEBUG t=123456ns pe=3] ...` — the context comes from a provider
// hook installed by the sim layer so util stays dependency-free.
#pragma once

#include <sstream>
#include <string>

namespace ugnirt {

enum class LogLevel {
  kTrace = 0,
  kDebug = 1,
  kInfo = 2,
  kWarn = 3,
  kError = 4,
  kOff = 5,
};

LogLevel log_threshold();
void set_log_threshold(LogLevel level);
void log_message(LogLevel level, const std::string& msg);

inline bool log_enabled(LogLevel level) {
  return static_cast<int>(level) >= static_cast<int>(log_threshold());
}

/// Hook filling in (virtual time ns, pe id); returns false when no
/// simulation context is active.  Installed once by the sim layer.
using LogContextProvider = bool (*)(long long* t_ns, int* pe);
void set_log_context_provider(LogContextProvider provider);

/// Hook receiving every formatted line instead of stderr; pass nullptr to
/// restore stderr.  For tests.
using LogSink = void (*)(LogLevel level, const std::string& line);
void set_log_sink(LogSink sink);

}  // namespace ugnirt

#define UGNIRT_LOG(level, expr)                                \
  do {                                                         \
    if (::ugnirt::log_enabled(level)) {                        \
      std::ostringstream ugnirt_log_ss;                        \
      ugnirt_log_ss << expr;                                   \
      ::ugnirt::log_message(level, ugnirt_log_ss.str());       \
    }                                                          \
  } while (0)

#define UGNIRT_TRACELOG(expr) UGNIRT_LOG(::ugnirt::LogLevel::kTrace, expr)
#define UGNIRT_DEBUG(expr) UGNIRT_LOG(::ugnirt::LogLevel::kDebug, expr)
#define UGNIRT_INFO(expr) UGNIRT_LOG(::ugnirt::LogLevel::kInfo, expr)
#define UGNIRT_WARN(expr) UGNIRT_LOG(::ugnirt::LogLevel::kWarn, expr)
#define UGNIRT_ERROR(expr) UGNIRT_LOG(::ugnirt::LogLevel::kError, expr)
