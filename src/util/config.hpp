// Key=value configuration store.
//
// Every tunable in the machine model (latencies, bandwidths, thresholds,
// crossovers) is resolved through a Config so experiments and ablations can
// override any constant from a file or `UGNIRT_<KEY>` environment variables
// without recompiling.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace ugnirt {

class Config {
 public:
  Config() = default;

  /// Parse "key = value" lines; '#' starts a comment; blank lines ignored.
  /// Returns false (and records an error) on malformed input.
  bool parse_string(const std::string& text);
  bool parse_file(const std::string& path);

  /// Apply overrides from environment variables named UGNIRT_<UPPERCASE_KEY>
  /// for each key already present plus any listed extra keys.
  void apply_env_overrides(const std::vector<std::string>& extra_keys = {});

  void set(const std::string& key, const std::string& value);

  bool contains(const std::string& key) const;

  /// Typed getters; the _or forms return the fallback when absent.
  std::optional<std::string> get_string(const std::string& key) const;
  std::optional<std::int64_t> get_int(const std::string& key) const;
  std::optional<double> get_double(const std::string& key) const;
  std::optional<bool> get_bool(const std::string& key) const;

  std::string get_string_or(const std::string& key,
                            const std::string& fallback) const;
  std::int64_t get_int_or(const std::string& key, std::int64_t fallback) const;
  double get_double_or(const std::string& key, double fallback) const;
  bool get_bool_or(const std::string& key, bool fallback) const;

  const std::string& last_error() const { return error_; }
  std::size_t size() const { return values_.size(); }

  /// Deterministic (sorted) dump used by tests and experiment logs.
  std::string dump() const;

 private:
  std::map<std::string, std::string> values_;
  std::string error_;
};

}  // namespace ugnirt
