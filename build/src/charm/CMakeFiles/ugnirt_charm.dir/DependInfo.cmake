
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/charm/array.cpp" "src/charm/CMakeFiles/ugnirt_charm.dir/array.cpp.o" "gcc" "src/charm/CMakeFiles/ugnirt_charm.dir/array.cpp.o.d"
  "/root/repo/src/charm/charm.cpp" "src/charm/CMakeFiles/ugnirt_charm.dir/charm.cpp.o" "gcc" "src/charm/CMakeFiles/ugnirt_charm.dir/charm.cpp.o.d"
  "/root/repo/src/charm/collectives.cpp" "src/charm/CMakeFiles/ugnirt_charm.dir/collectives.cpp.o" "gcc" "src/charm/CMakeFiles/ugnirt_charm.dir/collectives.cpp.o.d"
  "/root/repo/src/charm/lb.cpp" "src/charm/CMakeFiles/ugnirt_charm.dir/lb.cpp.o" "gcc" "src/charm/CMakeFiles/ugnirt_charm.dir/lb.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/converse/CMakeFiles/ugnirt_converse.dir/DependInfo.cmake"
  "/root/repo/build/src/gemini/CMakeFiles/ugnirt_gemini.dir/DependInfo.cmake"
  "/root/repo/build/src/topo/CMakeFiles/ugnirt_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ugnirt_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/ugnirt_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ugnirt_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
